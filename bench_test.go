package repro

// Benchmark harness: one benchmark family per row of the paper's
// complexity tables (see EXPERIMENTS.md for the recorded series), plus
// the ablations called out in DESIGN.md and substrate micro-benchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Table I rows scale in the *query* (the problems are Σ₂ᵖ-complete in
// combined complexity — Theorem 3.6 — so the reduction families grow
// exponentially) and stay polynomial in the *data* for a fixed query
// (BenchmarkDataComplexity). Table II rows likewise follow their
// classes: coNP via the 3SAT family, NEXPTIME via tiling witnesses, Σ₃ᵖ
// via ∃∀∃-3SAT.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/mdm"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/reductions"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/server"
	"repro/internal/textq"
	"repro/internal/tiling"
)

// ---------------------------------------------------------------------
// Table I — RCDP
// ---------------------------------------------------------------------

func forallExistsInstance(b *testing.B, nVars int) *reductions.RCDPInstance {
	b.Helper()
	phi := benchCNF(nVars, nVars+2, int64(nVars))
	inst, err := reductions.ForallExistsToRCDP(phi, nVars/2)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkRCDP_CQ_INDs_ForallExists is the Table I row (CQ, INDs):
// query complexity on the Theorem 3.6 reduction family (exponential in
// the variable count, as Σ₂ᵖ-hardness demands).
func BenchmarkRCDP_CQ_INDs_ForallExists(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		inst := forallExistsInstance(b, n)
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(inst.Q, inst.D, inst.Dm, inst.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func crmScenario(customers int) (*mdm.Scenario, *cc.Set) {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = customers
	cfg.Employees = customers / 10
	cfg.Completeness = 1.0
	return mdm.Generate(cfg), cc.NewSet(mdm.Phi0(), mdm.Phi1(cfg.MaxSupport))
}

// BenchmarkRCDP_CQ_CQ_DataComplexity is the Table I row (CQ, CQ): data
// complexity on the CRM workload — the query and constraints are fixed
// while the database grows, and the checker stays polynomial.
func BenchmarkRCDP_CQ_CQ_DataComplexity(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400} {
		s, v := crmScenario(n)
		q := mdm.Q0("908")
		b.Run(fmt.Sprintf("customers=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRCDP_UCQ is the Table I row (UCQ, UCQ): disjunct sweep.
func BenchmarkRCDP_UCQ(b *testing.B) {
	s, v := crmScenario(50)
	for _, k := range []int{1, 2, 4, 6} {
		q := areaUnion(k)
		b.Run(fmt.Sprintf("disjuncts=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRCDP_EFO is the Table I row (∃FO⁺, ∃FO⁺): the same workload
// expressed with nested disjunction, going through DNF expansion.
func BenchmarkRCDP_EFO(b *testing.B) {
	s, v := crmScenario(50)
	for _, k := range []int{2, 3, 4} {
		q := areaEFO(k)
		b.Run(fmt.Sprintf("orWidth=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Table II — RCQP
// ---------------------------------------------------------------------

// BenchmarkRCQP_CQ_INDs_3SAT is the Table II row (CQ, INDs): the
// coNP-complete case on the Theorem 4.5(1) reduction family.
func BenchmarkRCQP_CQ_INDs_3SAT(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		phi := benchCNF(n, 3*n, int64(n)+17)
		inst, err := reductions.ThreeSATToRCQP(phi)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("vars=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCQP(inst.Q, inst.Dm, inst.V, inst.Schemas); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRCQP_Tiling is the Table II row (CQ, CQ): the
// NEXPTIME-complete case — witness construction plus RCDP verification
// on the Theorem 4.5(2) reduction.
func BenchmarkRCQP_Tiling(b *testing.B) {
	for _, n := range []int{1, 2} {
		in := tiling.New(2, n)
		in.AllowV(0, 1)
		in.AllowV(1, 0)
		in.AllowH(0, 1)
		in.AllowH(1, 0)
		g, ok := in.Solve()
		if !ok {
			b.Fatal("unsolvable")
		}
		inst, err := reductions.TilingToRCQP(in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w, err := reductions.TilingWitness(inst, in, g)
				if err != nil {
					b.Fatal(err)
				}
				r, err := core.RCDP(inst.Q, w, inst.Dm, inst.V)
				if err != nil || !r.Complete {
					b.Fatalf("witness rejected: %v %v", r, err)
				}
			}
		})
	}
}

// BenchmarkRCQP_EFE is the Table II fixed-(Dm, V) row: Σ₃ᵖ via the
// Corollary 4.6 reduction, verifying the proof's witness with RCDP.
func BenchmarkRCQP_EFE(b *testing.B) {
	for _, dims := range [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}} {
		phi := benchCNF(dims[0]+dims[1]+dims[2], dims[0]+dims[1]+dims[2]+1,
			int64(dims[0]*100+dims[1]*10+dims[2]))
		inst, err := reductions.ExistsForallExistsToRCQP(phi, dims[0], dims[1])
		if err != nil {
			b.Fatal(err)
		}
		wx, ok := sat.ExistsWitness(phi, dims[0], dims[1])
		if !ok {
			wx = map[int]bool{}
		}
		d := reductions.EFEWitness(inst, wx)
		b.Run(fmt.Sprintf("x%dy%dz%d", dims[0], dims[1], dims[2]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(inst.Q, d, inst.Dm, inst.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRCQP_CRM measures the certificate search on the MDM
// workload (the Section 2.3 paradigms).
func BenchmarkRCQP_CRM(b *testing.B) {
	s, _ := crmScenario(30)
	v := cc.NewSet(mdm.Phi0())
	q := mdm.Q0("908")
	b.Run("Q0/phi0", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RCQP(q, s.Dm, v, s.Schemas); err != nil {
				b.Fatal(err)
			}
		}
	})
	vIND := cc.NewSet(mdm.CidIND())
	q2 := mdm.Q2("e00")
	b.Run("Q2/cidIND", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RCQP(q2, s.Dm, vIND, s.Schemas); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Parallel engine (workers ablation)
// ---------------------------------------------------------------------

// benchWorkerCounts is the workers axis for the parallel-engine series:
// the sequential ablation (1), the hardware default (GOMAXPROCS), and a
// fixed oversubscribed point (8) so the series is comparable across
// machines. Duplicates are removed.
func benchWorkerCounts() []int {
	counts := []int{1, runtime.GOMAXPROCS(0), 8}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// BenchmarkRCDP_Workers is the sequential-vs-parallel series on the
// ∀∃-3SAT RCDP family: the same instances as
// BenchmarkRCDP_CQ_INDs_ForallExists, swept over the workers axis.
// Verdicts and witnesses are identical across the axis (see
// TestParallelRCDPMatchesSequential); only wall-clock may differ.
func BenchmarkRCDP_Workers(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		inst := forallExistsInstance(b, n)
		for _, w := range benchWorkerCounts() {
			ck := &core.Checker{Workers: w}
			b.Run(fmt.Sprintf("vars=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ck.RCDP(inst.Q, inst.D, inst.Dm, inst.V); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRCQP_Workers is the workers series on the coNP 3SAT RCQP
// family (E3/E4 disjunct races plus nested RCDP confirmations on the
// shared pool).
func BenchmarkRCQP_Workers(b *testing.B) {
	for _, n := range []int{8, 12} {
		phi := benchCNF(n, 3*n, int64(n)+17)
		inst, err := reductions.ThreeSATToRCQP(phi)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range benchWorkerCounts() {
			ck := &core.QPChecker{Checker: core.Checker{Workers: w}}
			b.Run(fmt.Sprintf("vars=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ck.RCQP(inst.Q, inst.Dm, inst.V, inst.Schemas); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md ABL-1..3)
// ---------------------------------------------------------------------

// BenchmarkAblationSearch compares the optimized valuation search
// (inequality pruning, IND pruning, inert-variable collapsing,
// relevant-value restriction, fresh symmetry) against the naive full
// Adom product. The instance is deliberately tiny — on anything larger
// the naive mode does not terminate in reasonable time, which is itself
// the ablation's headline result (the ∀∃-3SAT family at 4 variables
// already has ~15 tableau variables over a dozen-value Adom, i.e. a
// naive product beyond 10¹⁵ leaves).
func BenchmarkAblationSearch(b *testing.B) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 2))
	d := relation.NewDatabase(mdm.Schemas()[mdm.Supt])
	d.MustAdd(mdm.Supt, "e0", "s", "c1")
	d.MustAdd(mdm.Supt, "e0", "s", "c2")
	dm := relation.NewDatabase(relation.NewSchema("M", relation.Attr("x")))
	q := mdm.Q2("e0")
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RCDP(q, d, dm, vset); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		ck := &core.Checker{Naive: true}
		for i := 0; i < b.N; i++ {
			if _, err := ck.RCDP(q, d, dm, vset); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDeltaCC compares differential constraint checking
// against full re-evaluation on extension checks.
func BenchmarkAblationDeltaCC(b *testing.B) {
	s, v := crmScenario(200)
	delta := relation.NewDatabase(mdm.Schemas()[mdm.Supt])
	delta.MustAdd(mdm.Supt, "e00", "sales", "c019")
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := v.SatisfiedDelta(s.D, delta, s.Dm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			union := s.D.Union(delta)
			if _, err := v.Satisfied(union, s.Dm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndexJoin compares the indexed, plan-aware join
// engine against the pure nested-loop scan (-noindex) on the medium and
// large CRM valuation-search workloads — the same instances as
// BenchmarkRCDP_CQ_CQ_DataComplexity. The indexed engine must win by
// ≥ 2× on these sizes (see EXPERIMENTS.md for the recorded series).
func BenchmarkAblationIndexJoin(b *testing.B) {
	defer cq.SetIndexJoin(cq.SetIndexJoin(true))
	for _, n := range []int{200, 400} {
		for _, mode := range []struct {
			name string
			on   bool
		}{{"indexed", true}, {"noindex", false}} {
			b.Run(fmt.Sprintf("customers=%d/%s", n, mode.name), func(b *testing.B) {
				// Fresh scenario and query per mode: lazily built
				// secondary indexes, sorted caches and compiled plans
				// must not leak from one mode's iterations into the
				// other's.
				s, v := crmScenario(n)
				q := mdm.Q0("908")
				cq.SetIndexJoin(mode.on)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationIndexEvalJoin is the same ablation at the CQ
// evaluation layer, without the valuation search on top.
func BenchmarkAblationIndexEvalJoin(b *testing.B) {
	defer cq.SetIndexJoin(cq.SetIndexJoin(true))
	for _, mode := range []struct {
		name string
		on   bool
	}{{"indexed", true}, {"noindex", false}} {
		b.Run(mode.name, func(b *testing.B) {
			// Fresh scenario and query per mode (see
			// BenchmarkAblationIndexJoin).
			s, _ := crmScenario(500)
			q := qlang.Underlying(mdm.Q0("908")).(*cq.CQ)
			cq.SetIndexJoin(mode.on)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Eval(s.D)
			}
		})
	}
}

// BenchmarkAblationIntern compares the interned columnar engine
// (dictionary ids, posting-list joins) against the legacy string-map
// oracle (-nointern) on the CRM valuation-search workloads. Storage
// mode is fixed at instance construction, so each mode rebuilds its
// scenario under its own toggle. The interned engine must win by ≥ 3×
// at 400 customers (see EXPERIMENTS.md for the recorded series).
func BenchmarkAblationIntern(b *testing.B) {
	defer relation.SetInterning(relation.SetInterning(true))
	for _, n := range []int{200, 400} {
		for _, mode := range []struct {
			name string
			on   bool
		}{{"interned", true}, {"nointern", false}} {
			b.Run(fmt.Sprintf("customers=%d/%s", n, mode.name), func(b *testing.B) {
				// The toggle must be set before Generate: it selects the
				// storage representation of the instances being built.
				relation.SetInterning(mode.on)
				s, v := crmScenario(n)
				q := mdm.Q0("908")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationInternEval is the interning ablation at the pure CQ
// evaluation layer — the allocs/op column is the headline: the interned
// engine binds ids into slot arrays instead of allocating per-row
// binding entries and per-leaf head strings.
func BenchmarkAblationInternEval(b *testing.B) {
	defer relation.SetInterning(relation.SetInterning(true))
	for _, mode := range []struct {
		name string
		on   bool
	}{{"interned", true}, {"nointern", false}} {
		b.Run(mode.name, func(b *testing.B) {
			relation.SetInterning(mode.on)
			s, _ := crmScenario(500)
			q := qlang.Underlying(mdm.Q0("908")).(*cq.CQ)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Eval(s.D)
			}
		})
	}
}

// BenchmarkInternOverhead measures the one place interning pays rather
// than gains: instance construction, where every value goes through the
// shared dictionary. The legacy baseline clones tuples into a string
// map instead. Regressions in dictionary construction show up here
// before they show up anywhere else.
func BenchmarkInternOverhead(b *testing.B) {
	defer relation.SetInterning(relation.SetInterning(true))
	const rows = 2000
	tuples := make([]relation.Tuple, rows)
	for i := range tuples {
		tuples[i] = relation.T(fmt.Sprintf("c%d", i), fmt.Sprintf("name%d", i%97), fmt.Sprintf("a%d", i%13))
	}
	schema := relation.NewSchema("B", relation.Attr("id"), relation.Attr("name"), relation.Attr("area"))
	for _, mode := range []struct {
		name string
		on   bool
	}{{"interned", true}, {"nointern", false}} {
		b.Run(mode.name, func(b *testing.B) {
			relation.SetInterning(mode.on)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := relation.NewInstance(schema)
				for _, t := range tuples {
					in.MustAdd(t)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Substrate micro-benchmarks
// ---------------------------------------------------------------------

func BenchmarkCQEvalJoin(b *testing.B) {
	for _, n := range []int{100, 1000} {
		s, _ := crmScenario(n / 2)
		q := qlang.Underlying(mdm.Q0("908")).(*cq.CQ)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Eval(s.D)
			}
		})
	}
}

// BenchmarkEvalGateOverhead measures the governance tax on the hot
// evaluation path: the same CQ join evaluated with a nil gate (the
// ungoverned fast path, identical to Eval) and under a live gate with
// uncapped budgets, where every join row pays an atomic increment plus
// a cancellation check. EXPERIMENTS.md records the series; the target
// is < 3% overhead.
func BenchmarkEvalGateOverhead(b *testing.B) {
	for _, mode := range []string{"ungated", "gated"} {
		b.Run(mode, func(b *testing.B) {
			s, _ := crmScenario(500)
			q := qlang.Underlying(mdm.Q0("908")).(*cq.CQ)
			var g *query.Gate
			if mode == "gated" {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				g = query.NewGate(ctx, 0, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.EvalGate(s.D, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the instrumentation tax of the obs
// metrics layer: the same workloads with collection enabled (the
// default) and disabled (obs.SetEnabled(false) turns every counter
// flush into a no-op, leaving only the dead branch). The acceptance
// target is ≤ 5% on both the raw CQ evaluation hot path and a full
// RCDP check; per-row costs are stack-local (see internal/obs), so the
// difference is a handful of atomic adds per evaluation.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"enabled", true}, {"disabled", false}} {
		b.Run("eval/"+mode.name, func(b *testing.B) {
			s, _ := crmScenario(500)
			q := qlang.Underlying(mdm.Q0("908")).(*cq.CQ)
			defer obs.SetEnabled(obs.SetEnabled(mode.on))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Eval(s.D)
			}
		})
		b.Run("rcdp/"+mode.name, func(b *testing.B) {
			s, v := crmScenario(200)
			q := mdm.Q0("908")
			defer obs.SetEnabled(obs.SetEnabled(mode.on))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RCDP(q, s.D, s.Dm, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDatalogTC(b *testing.B) {
	for _, n := range []int{50, 200} {
		e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
		d := relation.NewDatabase(e)
		for i := 0; i < n; i++ {
			d.MustAdd("E", fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1))
		}
		p := datalog.TransitiveClosure("E", "TC")
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Eval(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConstraintCheck(b *testing.B) {
	s, v := crmScenario(400)
	b.Run("satisfied", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ok, err := v.Satisfied(s.D, s.Dm); err != nil || !ok {
				b.Fatal("constraints must hold")
			}
		}
	})
}

// benchCNF is a deterministic random CNF generator (no math/rand to
// keep benchmark inputs stable across runs).
func benchCNF(nVars, nClauses int, seed int64) *sat.CNF {
	f := sat.NewCNF(nVars)
	s := seed
	next := func(m int) int {
		s = s*6364136223846793005 + 1442695040888963407
		v := int((s >> 33) % int64(m))
		if v < 0 {
			v += m
		}
		return v
	}
	for i := 0; i < nClauses; i++ {
		cl := make(sat.Clause, 3)
		for j := range cl {
			l := sat.Literal(next(nVars) + 1)
			if next(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// areaUnion and areaEFO mirror the relbench workload builders.
func areaUnion(disjuncts int) qlang.Query {
	codes := []string{"908", "973", "201", "609", "212", "914"}
	if disjuncts > len(codes) {
		disjuncts = len(codes)
	}
	var ds []*cq.CQ
	for i := 0; i < disjuncts; i++ {
		c, n, ccv, a, p := query.Var("C"), query.Var("N"), query.Var("CC"), query.Var("A"), query.Var("P")
		e, dd := query.Var("E"), query.Var("D")
		ds = append(ds, cq.New(fmt.Sprintf("U%d", i+1), []query.Term{c},
			[]query.RelAtom{
				query.Atom(mdm.Cust, c, n, ccv, a, p),
				query.Atom(mdm.Supt, e, dd, c),
			},
			query.Eq(ccv, query.C("01")),
			query.Eq(a, query.C(codes[i]))))
	}
	return qlang.FromUCQ(cq.Union("U", ds...))
}

func areaEFO(width int) qlang.Query {
	codes := []string{"908", "973", "201", "609"}
	if width > len(codes) {
		width = len(codes)
	}
	c, n, ccv, a, p := query.Var("C"), query.Var("N"), query.Var("CC"), query.Var("A"), query.Var("P")
	e, dd := query.Var("E"), query.Var("D")
	var opts []cq.EFO
	for i := 0; i < width; i++ {
		opts = append(opts, cq.FEq(a, query.C(codes[i])))
	}
	body := cq.And(
		cq.FAtom(mdm.Cust, c, n, ccv, a, p),
		cq.FAtom(mdm.Supt, e, dd, c),
		cq.FEq(ccv, query.C("01")),
		cq.Or(opts...),
	)
	return qlang.FromEFO(cq.NewEFO("Qefo", []query.Term{c}, body))
}

// ---------------------------------------------------------------------
// Serving layer — batch amortization
// ---------------------------------------------------------------------

// batchBenchServer starts a relserve instance with a generated CRM
// catalog registered, mirroring the relgen/relserve production shape
// so the benchmark measures the real serving path (HTTP, JSON decode,
// db-facts parse, admission) rather than the checker alone.
func batchBenchServer(b *testing.B) (*httptest.Server, string, string) {
	b.Helper()
	s := mdm.Generate(mdm.DefaultConfig())
	srv := server.New(server.Config{Workers: 1})
	_, err := srv.Catalog().Register("crm", textq.ProblemSource{
		Schemas:       textq.FormatSchemas(mdm.Schemas()),
		MasterSchemas: textq.FormatSchemas(mdm.MasterSchemas()),
		Master:        textq.FormatDatabase(s.Dm),
		Constraints:   "cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]",
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	db := textq.FormatDatabase(s.D)
	query := "Q0(C) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01, A = 908"
	return ts, db, query
}

// BenchmarkBatchAmortization compares N checks sent as N sequential
// POST /v1/rcdp requests against the same N sent as one POST /v1/batch:
// the batch pays the HTTP round-trip, JSON decode, catalog resolution
// and db-facts parse once instead of N times. Both report ns/query for
// direct comparison; the ratio is the amortization factor recorded in
// EXPERIMENTS.md.
func BenchmarkBatchAmortization(b *testing.B) {
	const nQueries = 32
	ts, db, query := batchBenchServer(b)

	b.Run("sequential", func(b *testing.B) {
		body, err := json.Marshal(server.CheckRequest{Catalog: "crm", DB: db, Query: query})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for q := 0; q < nQueries; q++ {
				resp, err := http.Post(ts.URL+"/v1/rcdp", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				var out server.CheckResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || out.Verdict == "" {
					b.Fatalf("status %d verdict %q", resp.StatusCode, out.Verdict)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nQueries), "ns/query")
	})

	b.Run("batch", func(b *testing.B) {
		queries := make([]string, nQueries)
		for i := range queries {
			queries[i] = query
		}
		body, err := json.Marshal(server.BatchRequest{Catalog: "crm", DB: db, Queries: queries})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			lines := 0
			dec := json.NewDecoder(resp.Body)
			for {
				var line server.BatchLine
				if err := dec.Decode(&line); err != nil {
					break
				}
				if line.Error != "" || line.Response == nil || line.Response.Verdict == "" {
					b.Fatalf("line %d: %+v", lines, line)
				}
				lines++
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || lines != nQueries {
				b.Fatalf("status %d, %d lines", resp.StatusCode, lines)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nQueries), "ns/query")
	})
}
