# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-workers fmt-check

ci: vet build test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel valuation-search engine is validated under the race
# detector; internal/core contains all shared-state code paths.
race:
	$(GO) test -race ./internal/core/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in every package: catches bit-rotted
# benchmark code in CI without paying for real measurement runs.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Sequential-vs-parallel series only (see EXPERIMENTS.md).
bench-workers:
	$(GO) test -bench='Workers' -run=^$$ .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
