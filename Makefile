# Tier-1 gate: everything `make ci` runs must stay green.

GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-diff bench-workers fmt-check vuln fuzz-smoke cover-check doc-sync examples-build server-smoke cluster-smoke mutate-smoke approx-smoke mine-smoke

ci: fmt-check vet build examples-build test race bench-smoke bench-diff cover-check doc-sync fuzz-smoke vuln server-smoke cluster-smoke mutate-smoke approx-smoke mine-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Shared-state code paths run under the race detector: the parallel
# valuation search (core), the admission-controlled serving layer
# (server), the cross-request caches it leans on (cq compiled tableaux,
# cc p(Dm) memoization), and the interned storage layer (relation: the
# shared dictionary, its sort-order cache, and the lazy posting-list
# builds), including the interned-vs-legacy cross-validation suites,
# and the approximation engine (approx: oracle calls fan out through
# the same worker pool) plus the constraint miner (mine: its oracle
# re-validation runs the parallel checker across evidence pairs).
race:
	$(GO) test -race ./internal/core/... ./internal/server/... ./internal/cq/... ./internal/cc/... ./internal/relation/... ./internal/approx/... ./internal/mine/...

# End-to-end relserve smoke: random port, one Example 2.1 RCDP request
# must come back "complete", /healthz must answer, SIGTERM must drain
# and exit 0.
server-smoke:
	sh scripts/server_smoke.sh

# Scale-out smoke: two relserve backends plus a consistent-hash router
# and a -fanout router on random ports, driven by relload; verdicts
# through both routers must match the direct-backend run, with zero
# transport errors and zero drops.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Incremental-maintenance smoke: register a maintained catalog with a
# watched incomplete query, insert the missing support edge through
# POST /v1/catalog/{name}/insert, and assert the maintained verdict
# flips to complete in place (no restart, no re-posted check).
mutate-smoke:
	sh scripts/mutate_smoke.sh

# Acquisition-advice smoke: register a maintained catalog with a
# watched incomplete query, ask POST /v1/advise what to acquire, feed
# the returned all_facts to POST /v1/catalog/{name}/insert, and assert
# the maintained verdict flips to complete — the full advice loop over
# live HTTP.
approx-smoke:
	sh scripts/approx_smoke.sh

# Mining + degree smoke: relmine recovers planted constraints from
# generated evidence with full precision, the same evidence document
# mines over POST /v1/mine, and a degree-requesting /v1/rcdp call
# returns an exact quantitative completeness score — CLI and HTTP legs
# of the relmine pipeline end to end.
mine-smoke:
	sh scripts/mine_smoke.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of every benchmark in every package: catches bit-rotted
# benchmark code in CI without paying for real measurement runs. The
# relbench smoke runs both storage engines — interned columnar (the
# default) and the -nointern string-map ablation — so a regression in
# either representation, or in their agreement, surfaces here.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) build -o /tmp/relbench-smoke ./cmd/relbench
	/tmp/relbench-smoke -quick -json > /dev/null
	/tmp/relbench-smoke -quick -json -nointern > /dev/null
	rm -f /tmp/relbench-smoke

# Bench-regression gate: three quick single-worker relbench runs are
# median-merged and compared against the committed BENCH_BASELINE.json
# by scripts/bench_diff.go. The comparison is scale-normalized (see the
# script), so it passes on any machine speed but fails when one
# benchmark regresses >25% relative to the rest of the suite. Refresh
# the baseline after intentional performance changes with:
#   go run ./scripts -baseline BENCH_BASELINE.json -write <runs...>
bench-diff:
	$(GO) build -o /tmp/relbench-diff ./cmd/relbench
	/tmp/relbench-diff -quick -json -workers 1 > /tmp/relbench-d1.json
	/tmp/relbench-diff -quick -json -workers 1 > /tmp/relbench-d2.json
	/tmp/relbench-diff -quick -json -workers 1 > /tmp/relbench-d3.json
	$(GO) run ./scripts -baseline BENCH_BASELINE.json /tmp/relbench-d1.json /tmp/relbench-d2.json /tmp/relbench-d3.json
	rm -f /tmp/relbench-diff /tmp/relbench-d1.json /tmp/relbench-d2.json /tmp/relbench-d3.json

# Sequential-vs-parallel series only (see EXPERIMENTS.md).
bench-workers:
	$(GO) test -bench='Workers' -run=^$$ .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Every example program must keep compiling (go build ./... covers them
# too, but a dedicated target makes the failure unambiguous in CI logs).
examples-build:
	$(GO) build ./examples/...

# Doc/CLI sync: every flag defined in the commands must be documented
# in README.md. Catches flags added without a docs pass. Scans every
# .go file under cmd/ (not just main.go) so commands that split flag
# definitions across files stay covered, and first checks that every
# cmd/ subdirectory actually contributes a main.go to the glob — a new
# command that dodged the scan would silently exempt its flags.
doc-sync:
	@set -e; missing=0; \
	for d in cmd/*/; do \
		if [ ! -f "$$d/main.go" ]; then \
			echo "doc-sync: $$d has no main.go (scan glob would miss it)"; missing=1; \
		fi; \
	done; \
	flags=$$(grep -hoE 'flag\.[A-Za-z0-9]+\((&[A-Za-z0-9.]+, )?"[a-z-]+"' cmd/*/*.go \
		| grep -oE '"[a-z-]+"' | tr -d '"' | sort -u); \
	for f in $$flags; do \
		if ! grep -q -- "-$$f" README.md; then \
			echo "doc-sync: flag -$$f is not documented in README.md"; missing=1; \
		fi; \
	done; \
	if [ "$$missing" != 0 ]; then exit 1; fi; \
	echo "doc-sync: all $$(echo "$$flags" | wc -w) CLI flags documented in README.md"

# Known-vulnerability scan. Skipped with a notice when govulncheck is
# not on PATH (the CI image has no network to install it); when present
# it must pass.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed; skipping"; \
	fi

# Native fuzz smoke: each textq fuzz target runs for a short budget
# (go test accepts one -fuzz pattern per invocation), catching
# parser/formatter regressions without a long fuzz session.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/textq/ -run='^$$' -fuzz=FuzzParseSchemas -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/textq/ -run='^$$' -fuzz=FuzzParseDatabase -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/textq/ -run='^$$' -fuzz=FuzzParseQuery -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/textq/ -run='^$$' -fuzz=FuzzParseConstraints -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/textq/ -run='^$$' -fuzz=FuzzMutationBatch -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/mine/ -run='^$$' -fuzz=FuzzMineEvidence -fuzztime=$(FUZZTIME)

# Coverage floors for the decision-procedure packages (set ~2 points
# under the measured coverage at the time the floor was introduced so
# legitimate refactors have headroom but a dropped test suite fails).
cover-check:
	@set -e; \
	check() { \
		pct=$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for $$1"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v f="$$2" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover: $$1 at $$pct% is below floor $$2%"; exit 1; fi; \
		echo "cover: $$1 $$pct% (floor $$2%)"; \
	}; \
	check ./internal/core/ 87; \
	check ./internal/cq/ 84.5; \
	check ./internal/cc/ 84.5; \
	check ./internal/server/ 81; \
	check ./internal/approx/ 83; \
	check ./internal/mine/ 80
