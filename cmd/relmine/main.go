// Command relmine discovers containment constraints from evidence: a
// collection of (D, Dm) pairs, each a database observed against its
// master data. It enumerates candidate constraints level-wise (plain
// inclusion dependencies, wider projections, two-atom joins, then
// Var = Const selection fragments of candidates that failed on the
// evidence), scores each by support and confidence, and — in the
// default complete oracle mode — emits only candidates certified by
// the unmodified core checker: every evidence database must be
// Complete for the candidate's own left-hand-side query relative to
// (Dm, {candidate}).
//
// Evidence comes from a file in the package repro/internal/mine
// evidence grammar (-evidence), or is generated on the fly by the
// repro/internal/mdm CRM generator (-pairs and friends); generated
// evidence can be dumped with -emit-evidence for later runs.
// -ground-truth scores the mined output against the generator's
// planted constraints (precision/recall, subsumption-aware).
//
// Usage:
//
//	relmine -evidence pairs.ev [-oracle complete|closure] [-json]
//	relmine -pairs 6 -customers 12 -support-intl 3 -ground-truth
//
// Mining knobs: -min-support, -min-confidence, -max-selector-card,
// -max-constants, -max-candidates; oracle knobs: -oracle, -workers,
// -timeout, -max-valuations. -metrics serves the observability
// endpoint (relcomp_mine_* counters) while mining runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/textq"
)

func main() {
	var (
		evidencePath = flag.String("evidence", "", "evidence document to mine (omit to generate with the mdm flags)")
		emitEvidence = flag.String("emit-evidence", "", "write the evidence document to this file before mining")

		pairs        = flag.Int("pairs", 6, "generated evidence pairs")
		customers    = flag.Int("customers", 12, "generated domestic (master) customers per pair")
		intl         = flag.Int("intl", 4, "generated international customers per pair")
		employees    = flag.Int("employees", 5, "generated support employees per pair")
		completeness = flag.Float64("completeness", 1.0, "fraction of master customers present in each generated database")
		saturate     = flag.Bool("saturate", true, "guarantee every generated customer a support row (keeps planted constraints oracle-complete)")
		supportIntl  = flag.Int("support-intl", 0, "generated supported international customers per pair (falsifies the blanket cid inclusion)")
		unregistered = flag.Int("unregistered", 3, "generated unregistered domestic customers per pair (negative examples)")
		seed         = flag.Int64("seed", 1, "generator seed of the first pair")

		minSupport    = flag.Float64("min-support", 0, "minimum evidence support of a candidate (0 = default 0.5)")
		minConfidence = flag.Float64("min-confidence", 0, "minimum evidence confidence of a candidate (0 = default 1.0)")
		maxSelCard    = flag.Int("max-selector-card", 0, "max distinct values of a selection column (0 = default 8)")
		maxConstants  = flag.Int("max-constants", 0, "max constants tried per selection column (0 = default 4)")
		maxCandidates = flag.Int("max-candidates", 0, "cap on scored candidates (0 = default 256)")
		oracle        = flag.String("oracle", "complete", "validation mode: complete (checker-certified) or closure (confidence only)")
		workers       = flag.Int("workers", 0, "oracle checker parallelism (0 = sequential)")
		timeout       = flag.Duration("timeout", 0, "wall-clock budget per oracle check (0 = default 1s)")
		maxValuations = flag.Int("max-valuations", 0, "valuation budget per oracle disjunct (0 = default 100000)")

		groundTruth = flag.Bool("ground-truth", false, "score mined output against the generator's planted constraints")
		jsonOut     = flag.Bool("json", false, "print the result as JSON")
		verbose     = flag.Bool("v", false, "print the evidence summary before mining")
		metricsAddr = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	)
	flag.Parse()
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relmine: -metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "relmine: metrics on http://%s/metrics\n", addr)
	}
	opt := mine.Options{
		MinSupport:      *minSupport,
		MinConfidence:   *minConfidence,
		MaxSelectorCard: *maxSelCard,
		MaxConstants:    *maxConstants,
		MaxCandidates:   *maxCandidates,
		Oracle:          mine.OracleMode(*oracle),
		Workers:         *workers,
		Budget:          core.Budget{Timeout: *timeout, MaxValuations: *maxValuations},
	}
	gen := genConfig{
		pairs: *pairs, customers: *customers, intl: *intl, employees: *employees,
		completeness: *completeness, saturate: *saturate, supportIntl: *supportIntl,
		unregistered: *unregistered, seed: *seed,
	}
	if err := run(*evidencePath, *emitEvidence, gen, opt, *groundTruth, *jsonOut, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "relmine:", err)
		os.Exit(1)
	}
}

type genConfig struct {
	pairs, customers, intl, employees int
	supportIntl, unregistered         int
	completeness                      float64
	saturate                          bool
	seed                              int64
}

// jsonResult is the -json output document.
type jsonResult struct {
	Constraints []jsonConstraint `json:"constraints"`
	Stats       mine.Stats       `json:"stats"`
	Evaluation  *jsonEvaluation  `json:"evaluation,omitempty"`
}

type jsonConstraint struct {
	Name       string  `json:"name"`
	Text       string  `json:"text"`
	Signature  string  `json:"signature"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Validated  bool    `json:"validated"`
}

type jsonEvaluation struct {
	Precision float64         `json:"precision"`
	Recall    float64         `json:"recall"`
	Matched   map[string]bool `json:"matched"`
	Extra     []string        `json:"extra,omitempty"`
}

func run(evidencePath, emitEvidence string, gen genConfig, opt mine.Options, groundTruth, jsonOut, verbose bool) error {
	var pairs []mine.Pair
	if evidencePath != "" {
		text, err := os.ReadFile(evidencePath)
		if err != nil {
			return err
		}
		pairs, err = mine.ParseEvidence(string(text))
		if err != nil {
			return err
		}
	} else {
		cfg := mdm.DefaultConfig()
		cfg.Seed = gen.seed
		cfg.DomesticCustomers = gen.customers
		cfg.InternationalCustomers = gen.intl
		cfg.Employees = gen.employees
		cfg.Completeness = gen.completeness
		cfg.SaturateSupport = gen.saturate
		cfg.SupportInternational = gen.supportIntl
		cfg.UnregisteredDomestic = gen.unregistered
		for _, s := range mdm.Evidence(cfg, gen.pairs) {
			pairs = append(pairs, mine.Pair{D: s.D, Dm: s.Dm})
		}
	}
	if emitEvidence != "" {
		text, err := mine.FormatEvidence(pairs)
		if err != nil {
			return err
		}
		if err := os.WriteFile(emitEvidence, []byte(text), 0o644); err != nil {
			return err
		}
	}
	if verbose {
		for i, p := range pairs {
			dn, mn := 0, 0
			for _, r := range p.D.Relations() {
				dn += len(p.D.Instance(r).Tuples())
			}
			for _, r := range p.Dm.Relations() {
				mn += len(p.Dm.Instance(r).Tuples())
			}
			fmt.Fprintf(os.Stderr, "pair %d: %d db tuples, %d master tuples\n", i, dn, mn)
		}
	}

	res, err := mine.Mine(context.Background(), pairs, opt)
	if err != nil {
		return err
	}

	var ev *mine.Evaluation
	if groundTruth {
		e := mine.Evaluate(res.Mined, mdm.PlantedConstraints(), mine.SchemasOf(pairs))
		ev = &e
	}
	if jsonOut {
		return printJSON(res, ev)
	}
	printText(res, ev)
	return nil
}

func printJSON(res *mine.Result, ev *mine.Evaluation) error {
	out := jsonResult{Stats: res.Stats, Constraints: []jsonConstraint{}}
	for _, m := range res.Mined {
		out.Constraints = append(out.Constraints, jsonConstraint{
			Name:       m.Constraint.Name,
			Text:       constraintText(m.Constraint),
			Signature:  m.Signature,
			Support:    m.Support,
			Confidence: m.Confidence,
			Validated:  m.Validated,
		})
	}
	if ev != nil {
		out.Evaluation = &jsonEvaluation{
			Precision: ev.Precision, Recall: ev.Recall,
			Matched: ev.Matched, Extra: ev.Extra,
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printText(res *mine.Result, ev *mine.Evaluation) {
	fmt.Printf("MINE: %d pairs, %d candidates enumerated, %d survivors, %d subsumed, %d oracle-rejected, %d emitted",
		res.Stats.Pairs, res.Stats.Enumerated, res.Stats.Survivors,
		res.Stats.Subsumed, res.Stats.OracleRejected, res.Stats.Emitted)
	if res.Stats.Truncated {
		fmt.Printf(" (truncated)")
	}
	fmt.Println()
	for _, m := range res.Mined {
		fmt.Printf("  %s: support=%.2f confidence=%.2f validated=%v\n    %s\n",
			m.Constraint.Name, m.Support, m.Confidence, m.Validated,
			constraintText(m.Constraint))
	}
	if ev != nil {
		fmt.Printf("GROUND TRUTH: precision=%.2f recall=%.2f\n", ev.Precision, ev.Recall)
		names := make([]string, 0, len(ev.Matched))
		for name := range ev.Matched {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			status := "missed"
			if ev.Matched[name] {
				status = "recovered"
			}
			fmt.Printf("  planted %s: %s\n", name, status)
		}
		for _, s := range ev.Extra {
			fmt.Printf("  extra: %s\n", s)
		}
	}
}

// constraintText renders a constraint in the textq grammar, falling
// back to its Go string form.
func constraintText(c *cc.Constraint) string {
	src, err := textq.FormatConstraints(cc.NewSet(c))
	if err != nil {
		return c.String()
	}
	// FormatConstraints emits one "cc name: …" line per constraint.
	return trimNewline(src)
}

func trimNewline(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}
