// Command relbench regenerates the evaluation artifacts of Fan &
// Geerts — the complexity tables I (RCDP) and II (RCQP) — empirically:
// for every decidable row it validates the decision procedure against
// an independent ground truth and reports runtime scaling on the
// hardness-reduction workload of that row's proof; for every
// undecidable row it validates the executable reduction on bounded
// instances. See EXPERIMENTS.md for the recorded results.
//
// Usage: relbench [-table 0|1|2|3] [-quick] [-workers N] [-json] [-noindex]
//
//	[-nointern] [-timeout D] [-steps N] [-metrics addr] [-trace file]
//
// -nointern disables the interned columnar storage engine and runs every
// sweep on the legacy string-map representation (the SetInterning
// ablation); pair an interned and a -nointern run to measure what
// dictionary encoding buys end to end.
//
// -timeout and -steps govern every timed check (wall-clock deadline and
// join-row step budget respectively); a check stopped by governance
// reports verdict "unknown" with the exhausted dimension as its reason.
// -metrics serves the repro/internal/obs endpoint (Prometheus text,
// expvar, pprof) while the sweeps run; -trace streams JSONL search
// events to a file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/automata"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/mdm"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/reductions"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/tiling"
)

var (
	// checker carries the -workers setting into every sweep (1 =
	// sequential engine, >1 = parallel valuation search).
	checker  core.Checker
	jsonMode bool
	noIndex  bool
	noIntern bool
	records  []benchRecord
)

// benchRecord is one timed sweep data point for -json output. Verdict
// and Reason report the governed outcome: verdict "unknown" plus the
// exhausted dimension when -timeout/-steps stopped the check, empty
// reason otherwise.
type benchRecord struct {
	Table       string `json:"table"`
	Name        string `json:"name"`
	Param       int    `json:"param"`
	Workers     int    `json:"workers"`
	NoIndex     bool   `json:"no_index"`
	Interning   bool   `json:"interning"`
	DurationNS  int64  `json:"duration_ns"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	Agree       *bool  `json:"agree,omitempty"`
	Verdict     string `json:"verdict,omitempty"`
	Reason      string `json:"reason,omitempty"`
}

func record(table, name string, param int, dur time.Duration, allocs int64, agree *bool, verdict string, reason core.Reason) {
	records = append(records, benchRecord{
		Table: table, Name: name, Param: param,
		Workers: checker.Workers, NoIndex: noIndex, Interning: !noIntern,
		DurationNS: dur.Nanoseconds(), AllocsPerOp: allocs, Agree: agree,
		Verdict: verdict, Reason: reason.String(),
	})
}

// timed runs f once, returning its wall time and the heap allocation
// count attributable to the run (total Mallocs delta across all
// goroutines — comparable between -noindex runs at equal -workers).
func timed(f func() error) (time.Duration, int64, error) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	start := time.Now()
	err := f()
	dur := time.Since(start)
	runtime.ReadMemStats(&ms)
	return dur, int64(ms.Mallocs - before), err
}

func main() {
	table := flag.Int("table", 0, "which table to regenerate (1, 2, 3 = incremental maintenance, or 0 for all)")
	quick := flag.Bool("quick", false, "smaller sweeps")
	workers := flag.Int("workers", 0, "valuation-search workers (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per governed check (0 = unlimited)")
	steps := flag.Int64("steps", 0, "join-row step budget per governed check (0 = unlimited)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
	tracePath := flag.String("trace", "", "append JSONL search-trace events to this file")
	flag.BoolVar(&jsonMode, "json", false, "emit timed sweep results as JSON instead of tables")
	flag.BoolVar(&noIndex, "noindex", false, "disable the indexed join engine (ablation baseline)")
	flag.BoolVar(&noIntern, "nointern", false, "disable interned columnar storage (string-map ablation baseline)")
	flag.Parse()
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "relbench: metrics on http://%s/metrics\n", addr)
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		tr := obs.NewTracer(f)
		tr.Timings = true
		obs.SetTracer(tr)
		defer func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "relbench: -trace:", err)
			}
		}()
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	checker = core.Checker{Workers: *workers,
		Budget: core.Budget{Timeout: *timeout, MaxJoinRows: *steps}}
	cq.SetIndexJoin(!noIndex)
	relation.SetInterning(!noIntern)
	if *table == 0 || *table == 1 {
		if err := tableI(*quick); err != nil {
			fail(err)
		}
	}
	if *table == 0 || *table == 2 {
		if err := tableII(*quick); err != nil {
			fail(err)
		}
	}
	if *table == 0 || *table == 3 {
		if err := tableIncremental(*quick); err != nil {
			fail(err)
		}
	}
	if jsonMode {
		if records == nil {
			records = []benchRecord{} // emit [] rather than null when no sweeps ran
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "relbench:", err)
	os.Exit(1)
}

func header(s string) {
	if jsonMode {
		return
	}
	fmt.Printf("\n%s\n", s)
	for range s {
		fmt.Print("=")
	}
	fmt.Println()
}

func row(format string, args ...any) {
	if jsonMode {
		return
	}
	fmt.Printf("  "+format+"\n", args...)
}

// ---------------------------------------------------------------------
// Table I — RCDP(L_Q, L_C)
// ---------------------------------------------------------------------

func tableI(quick bool) error {
	header("Table I — complexity of RCDP(L_Q, L_C)")

	// Rows 1–4: undecidable (Theorem 3.1). Validate the reductions.
	n, err := validateFOSatRCDP()
	if err != nil {
		return err
	}
	row("(FO, CQ)          undecidable   [Thm 3.1(1)] FO-sat reduction validated on %d instances", n)
	row("(CQ, FO)          undecidable   [Thm 3.1(2)] FO-sat reduction validated on %d instances", n)
	n, err = validateDFASimulation()
	if err != nil {
		return err
	}
	row("(FP, CQ)          undecidable   [Thm 3.1(3)] 2-head-DFA simulation validated on %d words", n)
	row("(fixed FP, FP)    undecidable   [Thm 3.1(4)] same machine model (bounded demo)")

	// Row 5: (CQ/UCQ/∃FO⁺, INDs) — Σ₂ᵖ-complete. Query-complexity sweep
	// on the ∀∃-3SAT reduction (exponential) + data-complexity sweep on
	// the CRM workload (polynomial).
	sizes := []int{4, 6, 8}
	if !quick {
		sizes = append(sizes, 10, 12)
	}
	if !jsonMode {
		fmt.Println()
	}
	row("(CQ, INDs)        Σ₂ᵖ-complete  [Thm 3.6(1)] ∀∃-3SAT query-complexity sweep (fixed Dm, V — Cor 3.7):")
	for _, nv := range sizes {
		dur, agree, err := sweepForallExists(nv)
		if err != nil {
			return err
		}
		row("    |X|+|Y| = %2d vars: %10v   (verdict agrees with QBF: %v)", nv, dur, agree)
	}
	row("(CQ, CQ)          Σ₂ᵖ-complete  [Thm 3.6(2)] CRM data-complexity sweep (fixed Q0, φ0; growing D):")
	dataSizes := []int{50, 100, 200}
	if !quick {
		dataSizes = append(dataSizes, 400, 800)
	}
	for _, dc := range dataSizes {
		dur, err := sweepCRMData(dc)
		if err != nil {
			return err
		}
		row("    |DCust| = %4d: %10v", dc, dur)
	}
	durU, err := sweepUCQ(4)
	if err != nil {
		return err
	}
	row("(UCQ, UCQ)        Σ₂ᵖ-complete  [Thm 3.6(3)] 4-disjunct union on CRM: %v", durU)
	durE, err := sweepEFO()
	if err != nil {
		return err
	}
	row("(∃FO⁺, ∃FO⁺)      Σ₂ᵖ-complete  [Thm 3.6(4)] ∃FO⁺ via DNF expansion: %v", durE)
	return nil
}

// validateFOSatRCDP runs the Theorem 3.1(1)/(2) reductions on FO queries
// with known satisfiability.
func validateFOSatRCDP() (int, error) {
	x, y := query.Var("x"), query.Var("y")
	cases := []struct {
		q   *fo.Query
		sat bool
	}{
		{fo.NewQuery("q", nil, fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNeq(x, y)))), true},
		{fo.NewQuery("q", nil, fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNot(fo.FAtom("E", x, y))))), false},
		{fo.NewQuery("q", nil, fo.FExists([]string{"x"}, fo.FAtom("E", x, x))), true},
	}
	count := 0
	for _, c := range cases {
		for _, build := range []func(*fo.Query) (*reductions.RCDPInstance, error){
			reductions.FOSatToRCDP, reductions.FOSatToRCDPviaCC,
		} {
			inst, err := build(c.q)
			if err != nil {
				return 0, err
			}
			r, err := core.BoundedRCDP(inst.Q, inst.D, inst.Dm, inst.V, core.BoundedOpts{MaxAdd: 1, FreshValues: 2})
			if err != nil {
				return 0, err
			}
			if r.Incomplete != c.sat {
				return 0, fmt.Errorf("FO-sat reduction disagrees on %s", c.q)
			}
			count++
		}
	}
	return count, nil
}

func validateDFASimulation() (int, error) {
	a := automata.New(3, 0, 2)
	for _, s := range []automata.Symbol{automata.Sym0, automata.Sym1} {
		a.AddWild2(0, s, 1, automata.Advance)
		a.AddWild2(1, s, 0, automata.Advance)
	}
	a.AddWild2(0, automata.Epsilon, 2, automata.Stay)
	words := []string{"", "0", "1", "01", "10", "010", "0101", "11011"}
	for _, ws := range words {
		sym, err := automata.Word(ws)
		if err != nil {
			return 0, err
		}
		got, err := reductions.DFAQueryAcceptsEncoding(a, sym)
		if err != nil {
			return 0, err
		}
		if got != a.Accepts(sym) {
			return 0, fmt.Errorf("DFA simulation mismatch on %q", ws)
		}
	}
	return len(words), nil
}

func randomCNFFor(nVars, nClauses int, seed int64) *sat.CNF {
	f := sat.NewCNF(nVars)
	s := seed
	next := func(m int) int {
		s = s*6364136223846793005 + 1442695040888963407
		v := int((s >> 33) % int64(m))
		if v < 0 {
			v += m
		}
		return v
	}
	for i := 0; i < nClauses; i++ {
		cl := make(sat.Clause, 3)
		for j := range cl {
			l := sat.Literal(next(nVars) + 1)
			if next(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

func sweepForallExists(nVars int) (time.Duration, bool, error) {
	phi := randomCNFFor(nVars, nVars+2, int64(nVars))
	nX := nVars / 2
	inst, err := reductions.ForallExistsToRCDP(phi, nX)
	if err != nil {
		return 0, false, err
	}
	var r *core.RCDPResult
	dur, allocs, err := timed(func() error {
		var e error
		r, e = checker.RCDPCtx(context.Background(), inst.Q, inst.D, inst.Dm, inst.V)
		return e
	})
	if err != nil {
		return 0, false, err
	}
	if r.Verdict == core.VerdictUnknown {
		record("I", "forall-exists-3sat", nVars, dur, allocs, nil, r.Verdict.String(), r.Reason)
		return dur, true, nil
	}
	agree := true
	if nVars <= 10 {
		agree = r.Complete == sat.ForallExists(phi, nX)
	}
	record("I", "forall-exists-3sat", nVars, dur, allocs, &agree, r.Verdict.String(), r.Reason)
	return dur, agree, nil
}

func sweepCRMData(customers int) (time.Duration, error) {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = customers
	cfg.Employees = customers / 10
	cfg.Completeness = 1.0
	s := mdm.Generate(cfg)
	vset := cc.NewSet(mdm.Phi0(), mdm.Phi1(cfg.MaxSupport))
	q := mdm.Q0("908")
	var r *core.RCDPResult
	dur, allocs, err := timed(func() error {
		var e error
		r, e = checker.RCDPCtx(context.Background(), q, s.D, s.Dm, vset)
		return e
	})
	if err != nil {
		return 0, err
	}
	record("I", "crm-data", customers, dur, allocs, nil, r.Verdict.String(), r.Reason)
	return dur, nil
}

func sweepUCQ(disjuncts int) (time.Duration, error) {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 50
	s := mdm.Generate(cfg)
	vset := cc.NewSet(mdm.Phi0())
	u := buildAreaUnion(disjuncts)
	var r *core.RCDPResult
	dur, allocs, err := timed(func() error {
		var e error
		r, e = checker.RCDPCtx(context.Background(), u, s.D, s.Dm, vset)
		return e
	})
	if err != nil {
		return 0, err
	}
	record("I", "ucq-union", disjuncts, dur, allocs, nil, r.Verdict.String(), r.Reason)
	return dur, nil
}

func sweepEFO() (time.Duration, error) {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 50
	s := mdm.Generate(cfg)
	vset := cc.NewSet(mdm.Phi0())
	q := buildAreaEFO()
	var r *core.RCDPResult
	dur, allocs, err := timed(func() error {
		var e error
		r, e = checker.RCDPCtx(context.Background(), q, s.D, s.Dm, vset)
		return e
	})
	if err != nil {
		return 0, err
	}
	record("I", "efo-dnf", 0, dur, allocs, nil, r.Verdict.String(), r.Reason)
	return dur, nil
}

// ---------------------------------------------------------------------
// Incremental maintenance — RecheckDelta vs cold RCDP
// ---------------------------------------------------------------------

// tableIncremental benchmarks the catalog-mutation maintenance path on
// the CRM scenario. The cold full decision procedure is the baseline;
// a master-side batch of duplicate tuples passes the extensional-
// invisibility gate and rides the cached verdict through RecheckDelta
// (at most a witness revalidation of work); a batch carrying fresh
// values fails the gate and falls through to a cold re-search over the
// incrementally patched indexes. Every recheck verdict is oracle-tested
// against an independent cold rerun over identically mutated data, and
// the gate-hit path must beat the cold baseline by at least 5×.
func tableIncremental(quick bool) error {
	header("Incremental maintenance — RecheckDelta vs cold RCDP")
	customers := 400
	if quick {
		customers = 100
	}
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = customers
	cfg.Employees = customers / 10
	cfg.Completeness = 1.0
	build := func() (*mdm.Scenario, *cc.Set) {
		return mdm.Generate(cfg), cc.NewSet(mdm.Phi0(), mdm.Phi1(cfg.MaxSupport))
	}

	// Cold baseline: the full decision procedure from scratch.
	s, vset := build()
	q := mdm.Q0("908")
	var prev *core.RCDPResult
	durCold, allocs, err := timed(func() error {
		var e error
		prev, e = checker.RCDPCtx(context.Background(), q, s.D, s.Dm, vset)
		return e
	})
	if err != nil {
		return err
	}
	record("inc", "crm-cold", customers, durCold, allocs, nil, prev.Verdict.String(), prev.Reason)
	row("cold RCDP          |DCust| = %4d: %12v  (%s)", customers, durCold, prev.Verdict)

	// oracle reruns the cold procedure on a fresh scenario with the same
	// deltas applied and reports whether the verdicts agree.
	oracle := func(got *core.RCDPResult, deltas ...*core.Delta) (*bool, error) {
		s2, v2 := build()
		for _, dl := range deltas {
			if _, _, err := dl.Apply(s2.D, s2.Dm, v2); err != nil {
				return nil, err
			}
		}
		want, err := checker.RCDPCtx(context.Background(), mdm.Q0("908"), s2.D, s2.Dm, v2)
		if err != nil {
			return nil, err
		}
		agree := want.Verdict == got.Verdict
		return &agree, nil
	}

	// Gate hit: duplicate master tuples stay inside every pre-batch
	// p(Dm) projection and the active domain, so the cached verdict is
	// reused without re-searching.
	dup := append([]relation.Tuple(nil), s.Dm.Instance(mdm.DCust).Tuples()[:4]...)
	dlDup := &core.Delta{Master: true, Inserts: map[string][]relation.Tuple{mdm.DCust: dup}}
	var res *core.RCDPResult
	var reused bool
	durReuse, allocs, err := timed(func() error {
		var e error
		res, reused, e = checker.RecheckDeltaCtx(context.Background(), q, s.D, s.Dm, vset, prev, dlDup)
		return e
	})
	if err != nil {
		return err
	}
	if !reused {
		return fmt.Errorf("incremental: duplicate master batch missed the invisibility gate")
	}
	agree, err := oracle(res, dlDup)
	if err != nil {
		return err
	}
	if !*agree {
		return fmt.Errorf("incremental: reused verdict %s disagrees with the cold oracle", res.Verdict)
	}
	record("inc", "crm-recheck-reused", customers, durReuse, allocs, agree, res.Verdict.String(), res.Reason)
	row("recheck (reused)   |ΔDm|  = %4d: %12v  (%s, oracle agrees)", len(dup), durReuse, res.Verdict)

	// Gate miss: a tuple with values outside the active domain forces a
	// cold re-search, but over incrementally patched indexes and memos.
	fresh := relation.Tuple{"x999", "fresh-customer", "908", "5559999"}
	dlFresh := &core.Delta{Master: true, Inserts: map[string][]relation.Tuple{mdm.DCust: {fresh}}}
	var res2 *core.RCDPResult
	durMiss, allocs, err := timed(func() error {
		var e error
		res2, reused, e = checker.RecheckDeltaCtx(context.Background(), q, s.D, s.Dm, vset, res, dlFresh)
		return e
	})
	if err != nil {
		return err
	}
	if reused {
		return fmt.Errorf("incremental: fresh-value batch must not pass the invisibility gate")
	}
	agree2, err := oracle(res2, dlDup, dlFresh)
	if err != nil {
		return err
	}
	if !*agree2 {
		return fmt.Errorf("incremental: cold recheck verdict %s disagrees with the cold oracle", res2.Verdict)
	}
	record("inc", "crm-recheck-cold", customers, durMiss, allocs, agree2, res2.Verdict.String(), res2.Reason)
	row("recheck (cold)     |ΔDm|  = %4d: %12v  (%s, oracle agrees)", 1, durMiss, res2.Verdict)

	if durReuse*5 > durCold {
		return fmt.Errorf("incremental: reused recheck (%v) is not ≥5× faster than cold RCDP (%v)",
			durReuse, durCold)
	}
	row("gate-hit speedup: %.0f× over cold", float64(durCold)/float64(durReuse))
	return nil
}

// ---------------------------------------------------------------------
// Table II — RCQP(L_Q, L_C)
// ---------------------------------------------------------------------

func tableII(quick bool) error {
	header("Table II — complexity of RCQP(L_Q, L_C)")
	row("(FO, fixed FO)    undecidable   [Thm 4.1(1)] 2-head-DFA machinery (bounded demo)")
	n, err := validateFOSatRCQP()
	if err != nil {
		return err
	}
	row("(CQ, FO)          undecidable   [Thm 4.1(2)] FO-sat reduction validated on %d instances", n)
	row("(FP, fixed FP)    undecidable   [Thm 4.1(3)] 2-head-DFA machinery (bounded demo)")
	row("(CQ, FP)          undecidable   [Thm 4.1(4)] 2-head-DFA machinery (bounded demo)")

	if !jsonMode {
		fmt.Println()
	}
	sizes := []int{4, 8, 12}
	if !quick {
		sizes = append(sizes, 16, 20)
	}
	row("(CQ, INDs)        coNP-complete [Thm 4.5(1)] 3SAT sweep (fixed Dm, V):")
	for _, nv := range sizes {
		dur, agree, err := sweepThreeSAT(nv)
		if err != nil {
			return err
		}
		row("    %2d vars: %10v   (verdict agrees with DPLL: %v)", nv, dur, agree)
	}
	row("(CQ, CQ)          NEXPTIME-complete [Thm 4.5(2)] 2ⁿ×2ⁿ tiling:")
	for _, tn := range []int{1, 2} {
		dur, err := sweepTiling(tn)
		if err != nil {
			return err
		}
		row("    n = %d (%dx%d grid): %10v (witness construction + RCDP verification)", tn, 1<<tn, 1<<tn, dur)
	}
	row("(CQ, CQ) fixed    Σ₃ᵖ-complete  [Cor 4.6]   ∃∀∃-3SAT sweep:")
	efeSizes := [][3]int{{1, 1, 1}, {2, 1, 1}, {2, 2, 1}}
	if !quick {
		efeSizes = append(efeSizes, [3]int{2, 2, 2})
	}
	for _, dims := range efeSizes {
		dur, agree, err := sweepEFE(dims[0], dims[1], dims[2])
		if err != nil {
			return err
		}
		row("    |X|,|Y|,|Z| = %d,%d,%d: %10v   (witness verdicts agree with QBF: %v)", dims[0], dims[1], dims[2], dur, agree)
	}
	return nil
}

func validateFOSatRCQP() (int, error) {
	x, y := query.Var("x"), query.Var("y")
	cases := []struct {
		q   *fo.Query
		sat bool
	}{
		{fo.NewQuery("q", nil, fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNeq(x, y)))), true},
		{fo.NewQuery("q", nil, fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNot(fo.FAtom("E", x, y))))), false},
	}
	for _, c := range cases {
		inst, err := reductions.FOSatToRCQP(c.q)
		if err != nil {
			return 0, err
		}
		br, err := core.BoundedRCQP(inst.Q, inst.Dm, inst.V, inst.Schemas, 1,
			core.BoundedOpts{MaxAdd: 2, FreshValues: 2})
		if err != nil {
			return 0, err
		}
		if br.Found == c.sat {
			return 0, fmt.Errorf("FO-sat RCQP reduction disagrees on %s", c.q)
		}
	}
	return len(cases), nil
}

func sweepThreeSAT(nVars int) (time.Duration, bool, error) {
	phi := randomCNFFor(nVars, 3*nVars, int64(nVars)+17)
	inst, err := reductions.ThreeSATToRCQP(phi)
	if err != nil {
		return 0, false, err
	}
	var res *core.RCQPResult
	dur, allocs, err := timed(func() error {
		var e error
		res, e = (&core.QPChecker{Checker: checker}).RCQPCtx(context.Background(), inst.Q, inst.Dm, inst.V, inst.Schemas)
		return e
	})
	if err != nil {
		return 0, false, err
	}
	if res.Status == core.Unknown && res.Reason != core.ReasonNone {
		record("II", "3sat-rcqp", nVars, dur, allocs, nil, res.Status.String(), res.Reason)
		return dur, true, nil
	}
	_, satisfiable := phi.Solve()
	agree := (res.Status == core.No) == satisfiable
	record("II", "3sat-rcqp", nVars, dur, allocs, &agree, res.Status.String(), res.Reason)
	return dur, agree, nil
}

func sweepTiling(n int) (time.Duration, error) {
	in := tiling.New(2, n)
	in.AllowV(0, 1)
	in.AllowV(1, 0)
	in.AllowH(0, 1)
	in.AllowH(1, 0)
	g, ok := in.Solve()
	if !ok {
		return 0, fmt.Errorf("checkerboard unsolvable")
	}
	inst, err := reductions.TilingToRCQP(in)
	if err != nil {
		return 0, err
	}
	var verdict core.Verdict
	var reason core.Reason
	dur, allocs, err := timed(func() error {
		w, e := reductions.TilingWitness(inst, in, g)
		if e != nil {
			return e
		}
		r, e := checker.RCDPCtx(context.Background(), inst.Q, w, inst.Dm, inst.V)
		if e != nil {
			return e
		}
		verdict, reason = r.Verdict, r.Reason
		if r.Verdict == core.VerdictUnknown {
			return nil
		}
		if !r.Complete {
			return fmt.Errorf("tiling witness rejected")
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	record("II", "tiling", n, dur, allocs, nil, verdict.String(), reason)
	return dur, nil
}

func sweepEFE(nX, nY, nZ int) (time.Duration, bool, error) {
	phi := randomCNFFor(nX+nY+nZ, nX+nY+nZ+1, int64(nX*100+nY*10+nZ))
	inst, err := reductions.ExistsForallExistsToRCQP(phi, nX, nY)
	if err != nil {
		return 0, false, err
	}
	agree := true
	var verdict core.Verdict
	var reason core.Reason
	dur, allocs, err := timed(func() error {
		witnessX, holds := sat.ExistsWitness(phi, nX, nY)
		if !holds {
			witnessX = map[int]bool{}
		}
		d := reductions.EFEWitness(inst, witnessX)
		r, e := checker.RCDPCtx(context.Background(), inst.Q, d, inst.Dm, inst.V)
		if e != nil {
			return e
		}
		verdict, reason = r.Verdict, r.Reason
		if r.Verdict != core.VerdictUnknown {
			agree = r.Complete == holds
		}
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	record("II", "efe-3sat", nX+nY+nZ, dur, allocs, &agree, verdict.String(), reason)
	return dur, agree, nil
}
