package main

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/mdm"
	"repro/internal/qlang"
	"repro/internal/query"
)

var sweepAreaCodes = []string{"908", "973", "201", "609", "212", "914"}

// buildAreaUnion builds a UCQ with one disjunct per area code: the
// Table I row-3 workload.
func buildAreaUnion(disjuncts int) qlang.Query {
	if disjuncts > len(sweepAreaCodes) {
		disjuncts = len(sweepAreaCodes)
	}
	var ds []*cq.CQ
	for i := 0; i < disjuncts; i++ {
		ds = append(ds, areaCQ(fmt.Sprintf("U%d", i+1), sweepAreaCodes[i]))
	}
	return qlang.FromUCQ(cq.Union("U", ds...))
}

// buildAreaEFO builds the same union as an ∃FO⁺ query with nested
// disjunction: the Table I row-4 workload, exercising DNF expansion.
func buildAreaEFO() qlang.Query {
	c, n, ccv, a, p := query.Var("C"), query.Var("N"), query.Var("CC"), query.Var("A"), query.Var("P")
	e, d := query.Var("E"), query.Var("D")
	disj := cq.Or(
		cq.FEq(a, query.C("908")),
		cq.FEq(a, query.C("973")),
		cq.FEq(a, query.C("201")),
	)
	body := cq.And(
		cq.FAtom(mdm.Cust, c, n, ccv, a, p),
		cq.FAtom(mdm.Supt, e, d, c),
		cq.FEq(ccv, query.C("01")),
		disj,
	)
	return qlang.FromEFO(cq.NewEFO("Qefo", []query.Term{c}, body))
}

// areaCQ is Q0 for one area code as a raw CQ (Q0 wraps it in qlang).
func areaCQ(name, ac string) *cq.CQ {
	c, n, ccv, a, p := query.Var("C"), query.Var("N"), query.Var("CC"), query.Var("A"), query.Var("P")
	e, d := query.Var("E"), query.Var("D")
	return cq.New(name, []query.Term{c},
		[]query.RelAtom{
			query.Atom(mdm.Cust, c, n, ccv, a, p),
			query.Atom(mdm.Supt, e, d, c),
		},
		query.Eq(ccv, query.C("01")),
		query.Eq(a, query.C(ac)))
}
