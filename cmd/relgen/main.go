// Command relgen generates a synthetic CRM/master-data scenario (the
// Example 1.1 workload of Fan & Geerts) in the textq file format, ready
// for relcheck:
//
//	relgen -out dir [-seed 1] [-customers 20] [-international 5]
//	       [-employees 5] [-support 2] [-maxsupport 3]
//	       [-completeness 1.0] [-depth 4]
//
// It writes r.schema, rm.schema, d.facts, dm.facts, v.cc and two query
// files (q0.cq for the area-code query, q2.cq for Example 1.1's Q₂).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mdm"
	"repro/internal/textq"
)

func main() {
	var (
		out          = flag.String("out", "", "output directory (required)")
		seed         = flag.Int64("seed", 1, "generator seed")
		customers    = flag.Int("customers", 20, "domestic customers in master data")
		intl         = flag.Int("international", 5, "international customers")
		employees    = flag.Int("employees", 5, "support employees")
		support      = flag.Int("support", 2, "customers supported per employee")
		maxSupport   = flag.Int("maxsupport", 3, "cardinality bound k of φ₁")
		completeness = flag.Float64("completeness", 1.0, "fraction of master customers present in D")
		depth        = flag.Int("depth", 4, "management chain depth")
		ac           = flag.String("ac", "908", "area code used by the generated Q0/Q1 queries")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "relgen: -out is required")
		os.Exit(1)
	}
	cfg := mdm.Config{
		Seed:                   *seed,
		DomesticCustomers:      *customers,
		InternationalCustomers: *intl,
		Employees:              *employees,
		SupportPerEmployee:     *support,
		MaxSupport:             *maxSupport,
		Completeness:           *completeness,
		ManageDepth:            *depth,
	}
	if err := run(cfg, *out, *ac); err != nil {
		fmt.Fprintln(os.Stderr, "relgen:", err)
		os.Exit(1)
	}
}

func run(cfg mdm.Config, out, ac string) error {
	s := mdm.Generate(cfg)
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	files := map[string]string{
		"r.schema":  textq.FormatSchemas(mdm.Schemas()),
		"rm.schema": textq.FormatSchemas(mdm.MasterSchemas()),
		"d.facts":   textq.FormatDatabase(s.D),
		"dm.facts":  textq.FormatDatabase(s.Dm),
		"v.cc": fmt.Sprintf(
			"# φ0: supported domestic customers (cid, ac) are bounded by master data\n"+
				"cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]\n"+
				"# φ1: an employee supports at most %d customers\n%s",
			cfg.MaxSupport, atMostKText(cfg.MaxSupport)),
		"q0.cq": fmt.Sprintf(
			"# Q0: all supported domestic customers with area code %s\n"+
				"Q0(C) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01, A = %s\n", ac, ac),
		"q2.cq": "# Q2: all customers supported by employee e00\nQ2(C) :- Supt(E, D, C), E = e00\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(out, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote scenario to %s: |DCust|=%d |Cust|=%d |Supt|=%d |Manage|=%d\n",
		out,
		s.Dm.Instance(mdm.DCust).Len(), s.D.Instance(mdm.Cust).Len(),
		s.D.Instance(mdm.Supt).Len(), s.D.Instance(mdm.Manage).Len())
	return nil
}

// atMostKText renders φ₁ for the given k in textq constraint syntax:
// k+1 Supt atoms sharing the employee with pairwise distinct customers.
func atMostKText(k int) string {
	body := ""
	for i := 0; i <= k; i++ {
		if i > 0 {
			body += ", "
		}
		body += fmt.Sprintf("Supt(E, D%d, C%d)", i, i)
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			body += fmt.Sprintf(", C%d != C%d", i, j)
		}
	}
	return "cc phi1(E) :- " + body + " <= empty\n"
}
