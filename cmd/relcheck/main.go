// Command relcheck decides relative information completeness for a
// query over a partially closed database, per Fan & Geerts: it runs
// RCDP (is this database complete for the query relative to the master
// data and containment constraints?) and/or RCQP (does any complete
// database exist?), printing verdicts and witnesses.
//
// Usage:
//
//	relcheck -schemas r.schema -master-schemas rm.schema \
//	         -db d.facts -master dm.facts \
//	         -constraints v.cc -query q.cq [-mode rcdp|rcqp|both]
//	         [-degree] [-approximate] [-advise]
//	         [-timeout D] [-steps N] [-metrics addr] [-trace file]
//
// All files use the textq format (see package repro/internal/textq).
// -timeout and -steps bound the decision procedures (wall clock and
// join-row steps); a governed stop prints an UNKNOWN verdict naming the
// exhausted dimension instead of running unboundedly — the Σ₂ᵖ/Σ₃ᵖ
// lower bounds mean no useful completion deadline can be promised.
//
// When the RCDP verdict is INCOMPLETE, -approximate searches the
// selection lattice for certified-complete specializations and
// generalizations of the query, and -advise prints ranked tuple
// acquisitions whose insertion flips the verdict to COMPLETE (both via
// package repro/internal/approx; every printed result is re-certified
// by the exact checker).
//
// -metrics serves the observability endpoint of package
// repro/internal/obs (Prometheus text at /metrics, expvar JSON at
// /debug/vars, pprof under /debug/pprof/) for the lifetime of the
// process; -trace streams structured JSONL search events to a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/approx"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

func main() {
	var (
		schemasPath   = flag.String("schemas", "", "database schema declarations (required)")
		mSchemasPath  = flag.String("master-schemas", "", "master data schema declarations")
		dbPath        = flag.String("db", "", "database facts (required for rcdp)")
		masterPath    = flag.String("master", "", "master data facts")
		constraintsPp = flag.String("constraints", "", "containment constraints")
		queryPath     = flag.String("query", "", "query (required)")
		mode          = flag.String("mode", "rcdp", "rcdp, rcqp or both")
		degree        = flag.Bool("degree", false, "also measure the quantitative degree of completeness (fraction of covered candidate valuations)")
		approximate   = flag.Bool("approximate", false, "on an incomplete rcdp verdict, print certified-complete specializations and generalizations of the query")
		advise        = flag.Bool("advise", false, "on an incomplete rcdp verdict, print ranked tuple acquisitions that make the database complete")
		verbose       = flag.Bool("v", false, "print inputs before deciding")
		timeout       = flag.Duration("timeout", 0, "wall-clock budget per check (0 = unlimited)")
		steps         = flag.Int64("steps", 0, "join-row step budget per check (0 = unlimited)")
		metricsAddr   = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090)")
		tracePath     = flag.String("trace", "", "append JSONL search-trace events to this file")
	)
	flag.Parse()
	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relcheck: -metrics:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "relcheck: metrics on http://%s/metrics\n", addr)
	}
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relcheck: -trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		tr := obs.NewTracer(f)
		tr.Timings = true
		obs.SetTracer(tr)
		defer func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "relcheck: -trace:", err)
			}
		}()
	}
	budget := core.Budget{Timeout: *timeout, MaxJoinRows: *steps}
	if err := run(*schemasPath, *mSchemasPath, *dbPath, *masterPath, *constraintsPp, *queryPath, *mode, *verbose, *approximate, *advise, *degree, budget); err != nil {
		fmt.Fprintln(os.Stderr, "relcheck:", err)
		os.Exit(1)
	}
}

func run(schemasPath, mSchemasPath, dbPath, masterPath, constraintsPath, queryPath, mode string, verbose, approximate, advise, degree bool, budget core.Budget) error {
	if schemasPath == "" || queryPath == "" {
		return fmt.Errorf("-schemas and -query are required")
	}
	src := textq.ProblemSource{}
	for _, part := range []struct {
		dst  *string
		path string
	}{
		{&src.Schemas, schemasPath},
		{&src.MasterSchemas, mSchemasPath},
		{&src.DB, dbPath},
		{&src.Master, masterPath},
		{&src.Constraints, constraintsPath},
		{&src.Query, queryPath},
	} {
		if part.path == "" {
			continue
		}
		text, err := os.ReadFile(part.path)
		if err != nil {
			return err
		}
		*part.dst = string(text)
	}
	p, err := textq.ParseProblem(src)
	if err != nil {
		return err
	}
	if verbose {
		fmt.Printf("query (%v):\n%s\n\nconstraints:\n%s\n\n", p.Q.Lang(), p.Q, p.V)
	}

	doRCDP := mode == "rcdp" || mode == "both"
	doRCQP := mode == "rcqp" || mode == "both"
	if !doRCDP && !doRCQP {
		return fmt.Errorf("unknown -mode %q", mode)
	}

	if doRCDP {
		if dbPath == "" {
			return fmt.Errorf("-db is required for rcdp")
		}
		if err := reportRCDP(p.Q, p.D, p.Dm, p.V, budget); err != nil {
			return err
		}
		if degree {
			if err := reportDegree(p.Q, p.D, p.Dm, p.V, budget); err != nil {
				return err
			}
		}
		if approximate {
			if err := reportApproximate(p.Q, p.D, p.Dm, p.V, budget); err != nil {
				return err
			}
		}
		if advise {
			if err := reportAdvise(p.Q, p.D, p.Dm, p.V, budget); err != nil {
				return err
			}
		}
	}
	if doRCQP {
		if err := reportRCQP(p.Q, p.Dm, p.V, p.Schemas, budget); err != nil {
			return err
		}
	}
	return nil
}

// governedStop renders an Unknown verdict's budget report.
func governedStop(reason core.Reason, stats core.BudgetStats) string {
	return fmt.Sprintf("stopped by %s budget (rows=%d, tuples=%d, elapsed=%v)",
		reason, stats.JoinRows, stats.Tuples, stats.Elapsed.Round(time.Millisecond))
}

func reportRCDP(q qlang.Query, d, dm *relation.Database, vset *cc.Set, budget core.Budget) error {
	if !q.Lang().Monotone() || !vset.AllMonotone() {
		r, err := core.BoundedRCDPCtx(context.Background(), q, d, dm, vset, core.BoundedOpts{Budget: budget})
		if err != nil {
			return err
		}
		if r.Verdict == core.VerdictUnknown {
			fmt.Printf("RCDP: UNKNOWN (undecidable fragment, bounded search) — %s\n", governedStop(r.Reason, r.Stats))
			return nil
		}
		if r.Incomplete {
			fmt.Printf("RCDP: INCOMPLETE (undecidable fragment, bounded search)\n  extension:\n%s", indent(r.Extension.String()))
			if r.NewTuple != nil {
				fmt.Printf("  new answer: %v\n", r.NewTuple)
			}
		} else {
			fmt.Printf("RCDP: complete up to extensions of %d tuples (undecidable fragment — Theorem 3.1; %d candidates explored)\n", r.MaxAdd, r.Explored)
		}
		return nil
	}
	ck := core.Checker{Budget: budget}
	r, err := ck.RCDPCtx(context.Background(), q, d, dm, vset)
	if err != nil {
		return err
	}
	if r.Verdict == core.VerdictUnknown {
		fmt.Printf("RCDP: UNKNOWN — %s\n", governedStop(r.Reason, r.Stats))
		return nil
	}
	if r.Complete {
		fmt.Printf("RCDP: COMPLETE — D answers the query completely relative to (Dm, V) (%d valuations checked)\n", r.Valuations)
		return nil
	}
	fmt.Printf("RCDP: INCOMPLETE — the following partially closed extension changes the answer:\n%s  new answer: %v\n",
		indent(r.Extension.String()), r.NewTuple)
	return nil
}

// reportDegree runs the counting enumeration of core.DegreeCtx and
// prints the covered fraction: exact on exhaustive runs, a prefix-
// sample estimate with its Wilson 95% interval under a budget.
func reportDegree(q qlang.Query, d, dm *relation.Database, vset *cc.Set, budget core.Budget) error {
	if !q.Lang().Monotone() || !vset.AllMonotone() {
		return fmt.Errorf("-degree needs the monotone (decidable) fragment")
	}
	ck := core.Checker{Budget: budget}
	res, err := ck.DegreeCtx(context.Background(), q, d, dm, vset)
	if err != nil {
		return err
	}
	if res.Exact {
		fmt.Printf("DEGREE: %.4f exact (%d candidate valuations, %d counterexamples)\n",
			res.Degree, res.Candidates, res.Counterexamples)
		return nil
	}
	fmt.Printf("DEGREE: %.4f estimated in [%.4f, %.4f] (95%% CI; %d candidates sampled, %d counterexamples) — %s\n",
		res.Degree, res.Lo, res.Hi, res.Candidates, res.Counterexamples,
		governedStop(res.Reason, res.Stats))
	return nil
}

func reportRCQP(q qlang.Query, dm *relation.Database, vset *cc.Set, schemas map[string]*relation.Schema, budget core.Budget) error {
	if !q.Lang().Monotone() || !vset.AllMonotone() {
		return fmt.Errorf("RCQP for FO/FP inputs is undecidable (Theorem 4.1); no bounded mode is wired into relcheck")
	}
	ck := core.QPChecker{Checker: core.Checker{Budget: budget}}
	res, err := ck.RCQPCtx(context.Background(), q, dm, vset, schemas)
	if err != nil {
		return err
	}
	if res.Status == core.Unknown && res.Reason != core.ReasonNone {
		fmt.Printf("RCQP: UNKNOWN — %s\n", governedStop(res.Reason, res.Stats))
		return nil
	}
	switch res.Status {
	case core.Yes:
		fmt.Printf("RCQP: YES — a relatively complete database exists (method %s)\n", res.Method)
		if res.Witness != nil {
			fmt.Printf("  witness (verified complete):\n%s", indent(res.Witness.String()))
		}
	case core.No:
		fmt.Printf("RCQP: NO — no database is complete for this query (method %s)\n  %s\n", res.Method, res.Detail)
	default:
		fmt.Printf("RCQP: UNKNOWN — %s\n", res.Detail)
	}
	return nil
}

// reportApproximate runs the specialization/generalization lattice
// search of package approx and prints every certified-complete
// candidate. On a COMPLETE or UNKNOWN base verdict it reports that
// nothing needed approximating.
func reportApproximate(q qlang.Query, d, dm *relation.Database, vset *cc.Set, budget core.Budget) error {
	res, err := approx.Approximate(context.Background(), q, d, dm, vset,
		approx.Options{Checker: &core.Checker{Budget: budget}})
	if err != nil {
		return fmt.Errorf("-approximate: %w", err)
	}
	if res.Verdict != core.VerdictIncomplete {
		fmt.Printf("APPROX: nothing to approximate — base verdict is %s\n", res.Verdict)
		return nil
	}
	fmt.Printf("APPROX: %d candidates explored, %d certified complete\n", res.Explored, res.Certified)
	for _, spec := range res.Specializations {
		fmt.Printf("  specialization (certified COMPLETE):\n%s", indent(formatCandidate(spec.Query)))
	}
	for _, gen := range res.Generalizations {
		var dropped []string
		for _, c := range gen.Dropped {
			v, val := c.L, c.R
			if !v.IsVar {
				v, val = c.R, c.L
			}
			dropped = append(dropped, v.Name+" = "+string(val.Val))
		}
		fmt.Printf("  generalization (certified COMPLETE, dropped %s):\n%s",
			strings.Join(dropped, ", "), indent(formatCandidate(gen.Query)))
	}
	if len(res.Specializations) == 0 && len(res.Generalizations) == 0 {
		fmt.Println("  no certified-complete approximation within the search bounds")
	}
	return nil
}

// reportAdvise runs the witness-driven acquisition loop of package
// approx and prints the ranked tuples whose insertion flips the
// verdict, fact-formatted so they can be appended to the -db file.
func reportAdvise(q qlang.Query, d, dm *relation.Database, vset *cc.Set, budget core.Budget) error {
	adv, err := approx.Advise(context.Background(), q, d, dm, vset,
		approx.Options{Checker: &core.Checker{Budget: budget}})
	if err != nil {
		return fmt.Errorf("-advise: %w", err)
	}
	if adv.Verdict != core.VerdictIncomplete {
		fmt.Printf("ADVISE: nothing to acquire — base verdict is %s\n", adv.Verdict)
		return nil
	}
	if adv.Flipped {
		fmt.Printf("ADVISE: acquiring the following %d tuples makes D COMPLETE (%d witness rounds; ⊥ values are placeholders to resolve):\n",
			len(adv.Items), adv.Rounds)
	} else {
		fmt.Printf("ADVISE: no certified flip within %d witness rounds; partial advice (final verdict %s):\n",
			adv.Rounds, adv.Final)
	}
	for _, it := range adv.Items {
		fmt.Printf("    %s\n", textq.FormatFact(it.Relation, it.Tuple))
	}
	return nil
}

// formatCandidate renders an approximation candidate in the textq
// grammar, falling back to Go syntax if formatting fails.
func formatCandidate(q *cq.CQ) string {
	src, err := textq.FormatQuery(qlang.FromCQ(q))
	if err != nil {
		return q.String()
	}
	return strings.TrimRight(src, "\n")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
