// Command relserve serves relative-completeness checking over HTTP: a
// long-running JSON service exposing the governed decision procedures
// of internal/core behind a bounded worker pool with admission control
// (see internal/server).
//
// Endpoints:
//
//	POST /v1/rcdp     is D complete for Q relative to (Dm, V)?
//	POST /v1/rcqp     does any complete database exist for Q?
//	POST /v1/bounded  bounded search for FO/FP (undecidable) fragments
//	POST /v1/approximate  complete specializations/generalizations of Q
//	POST /v1/advise   ranked tuples whose acquisition makes D complete
//	POST /v1/batch    many queries against one context, streamed as JSONL
//	POST /v1/mine     propose + validate containment constraints from evidence
//	POST /v1/partial  one partition slice of an RCDP check (fan-out leg)
//	POST /v1/catalog  register a named (Dm, V) master-data context
//	GET  /v1/catalog  list registered contexts
//	GET  /healthz     process liveness
//	GET  /readyz      readiness (503 while draining)
//
// Request bodies carry the textq problem parts inline, or reference a
// catalog entry by name so master data is parsed and indexed once for
// the whole request stream. Responses carry the three-valued verdict,
// the exhaustion reason and the consumed budget; per-request budget
// overrides are clamped to the -max-* ceilings.
//
// With -route backend1,backend2,... relserve runs as a stateless
// router instead: requests are consistent-hashed by catalog name (else
// query text) onto a backend so warm caches are reused, catalog
// registrations are broadcast to every backend, GET /v1/backends
// reports per-backend health, and -fanout answers /v1/rcdp by
// scattering partition slices (/v1/partial) across all backends and
// merging the results into the single-process verdict.
//
// SIGTERM/SIGINT starts a graceful drain: new requests get 503,
// in-flight requests finish (up to -drain-timeout), then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/textq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var catalogs []string
	var (
		addr          = flag.String("addr", ":8080", "listen address for the JSON API (use :0 for a random port)")
		route         = flag.String("route", "", "run as a router over these comma-separated backend URLs instead of serving checks locally")
		fanout        = flag.Bool("fanout", false, "with -route: answer /v1/rcdp by fanning partition slices across all backends and merging")
		addrFile      = flag.String("addr-file", "", "write the bound listen address to this file (for scripts using -addr :0)")
		workers       = flag.Int("workers", 0, "checks executing concurrently (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 0, "admitted requests waiting beyond -workers before 429 (0 = 2x workers)")
		checkWorkers  = flag.Int("check-workers", 1, "valuation-search workers inside each check (0 = 1, sequential)")
		timeout       = flag.Duration("timeout", 0, "default wall-clock budget per check (0 = unlimited)")
		steps         = flag.Int64("steps", 0, "default join-row step budget per check (0 = unlimited)")
		maxTimeout    = flag.Duration("max-timeout", 0, "ceiling on per-request wall-clock budgets (0 = unlimited)")
		maxValuations = flag.Int("max-valuations", 0, "ceiling on per-request valuation budgets (0 = unlimited)")
		maxSteps      = flag.Int64("max-steps", 0, "ceiling on per-request join-row budgets (0 = unlimited)")
		maxTuples     = flag.Int64("max-tuples", 0, "ceiling on per-request tuple budgets (0 = unlimited)")
		maxApproxCand = flag.Int("max-approx-candidates", 0, "ceiling on oracle calls per /v1/approximate or /v1/advise request (0 = 256)")
		maxMineCand   = flag.Int("max-mine-candidates", 0, "ceiling on candidate constraints per /v1/mine request (0 = 256)")
		maxDegreeVals = flag.Int("max-degree-valuations", 0, "ceiling on per-disjunct valuations of degree-requesting checks (0 = 100000)")
		reprobe       = flag.Duration("reprobe", 0, "with -route: how often an ejected backend is probed for re-admission (0 = 5s)")
		retryAfter    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight checks")
		metricsAddr   = flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof, /healthz and /readyz on this address (e.g. :9090)")
		tracePath     = flag.String("trace", "", "append JSONL request/search-trace events to this file")
	)
	flag.Func("catalog", "preload a catalog entry from a scenario directory, as name=dir (repeatable; reads r.schema, rm.schema, dm.facts, v.cc)", func(v string) error {
		catalogs = append(catalogs, v)
		return nil
	})
	flag.Parse()

	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		defer f.Close()
		tr := obs.NewTracer(f)
		tr.Timings = true
		obs.SetTracer(tr)
		defer func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "relserve: -trace:", err)
			}
		}()
	}

	if *fanout && *route == "" {
		return fmt.Errorf("-fanout requires -route")
	}
	if *route != "" {
		if len(catalogs) > 0 {
			return fmt.Errorf("-catalog is backend-only; register catalogs through the router's POST /v1/catalog broadcast")
		}
		backends := strings.Split(*route, ",")
		for i := range backends {
			backends[i] = strings.TrimSpace(backends[i])
		}
		rt, err := server.NewRouter(server.RouterConfig{
			Backends:        backends,
			Fanout:          *fanout,
			RetryAfter:      *retryAfter,
			ReprobeInterval: *reprobe,
		})
		if err != nil {
			return err
		}
		obs.SetReady(func() bool { return !rt.Draining() })
		if *metricsAddr != "" {
			maddr, err := obs.Serve(*metricsAddr)
			if err != nil {
				return fmt.Errorf("-metrics: %w", err)
			}
			fmt.Fprintf(os.Stderr, "relserve: metrics on http://%s/metrics\n", maddr)
		}
		banner := fmt.Sprintf("routing to %d backends (fanout=%v)", len(backends), *fanout)
		return serveUntilSignal(rt.Handler(), *addr, *addrFile, *drainTimeout, banner, rt.Drain)
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CheckWorkers: *checkWorkers,
		DefaultBudget: core.Budget{
			Timeout:     *timeout,
			MaxJoinRows: *steps,
		},
		MaxBudget: core.Budget{
			Timeout:       *maxTimeout,
			MaxValuations: *maxValuations,
			MaxJoinRows:   *maxSteps,
			MaxTuples:     *maxTuples,
		},
		RetryAfter:          *retryAfter,
		MaxApproxCandidates: *maxApproxCand,
		MaxMineCandidates:   *maxMineCand,
		MaxDegreeValuations: *maxDegreeVals,
	})
	for _, spec := range catalogs {
		name, dir, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-catalog: want name=dir, got %q", spec)
		}
		if err := loadCatalogDir(srv, name, dir); err != nil {
			return fmt.Errorf("-catalog %s: %w", spec, err)
		}
		fmt.Fprintf(os.Stderr, "relserve: catalog %q loaded from %s\n", name, dir)
	}

	// The metrics listener shares the readiness state: during a drain
	// /readyz flips to 503 on both listeners.
	obs.SetReady(func() bool { return !srv.Draining() })
	if *metricsAddr != "" {
		maddr, err := obs.Serve(*metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		fmt.Fprintf(os.Stderr, "relserve: metrics on http://%s/metrics\n", maddr)
	}

	banner := fmt.Sprintf("workers=%d, queue capacity=%d", *workers, srv.Capacity())
	return serveUntilSignal(srv.Handler(), *addr, *addrFile, *drainTimeout, banner, srv.Drain)
}

// serveUntilSignal binds addr, serves h, and on SIGTERM/SIGINT drains
// via drain (backend or router mode) before exiting cleanly.
func serveUntilSignal(h http.Handler, addr, addrFile string, drainTimeout time.Duration, banner string, drain func(context.Context) error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "relserve: listening on http://%s (%s)\n", bound, banner)
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("-addr-file: %w", err)
		}
	}

	httpSrv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "relserve: %v: draining (timeout %v)\n", sig, drainTimeout)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "relserve: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "relserve: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "relserve: drained, exiting")
	return nil
}

// loadCatalogDir registers one catalog entry from a relgen-style
// scenario directory: r.schema (required), plus rm.schema, dm.facts
// and v.cc when present.
func loadCatalogDir(srv *server.Server, name, dir string) error {
	read := func(base string, required bool) (string, error) {
		b, err := os.ReadFile(filepath.Join(dir, base))
		if err != nil {
			if os.IsNotExist(err) && !required {
				return "", nil
			}
			return "", err
		}
		return string(b), nil
	}
	var src textq.ProblemSource
	var err error
	if src.Schemas, err = read("r.schema", true); err != nil {
		return err
	}
	if src.MasterSchemas, err = read("rm.schema", false); err != nil {
		return err
	}
	if src.Master, err = read("dm.facts", false); err != nil {
		return err
	}
	if src.Constraints, err = read("v.cc", false); err != nil {
		return err
	}
	_, err = srv.Catalog().Register(name, src)
	return err
}
