// Command relload is the load generator for relserve: it fires
// completeness-check requests at one or more relserve targets (backends
// or a router), paces them open-loop at a fixed rate or closed-loop at
// a fixed concurrency, and reports throughput, per-status and
// per-verdict counts and a latency distribution (exact percentiles
// plus the internal/obs histogram buckets) as JSON.
//
// The problem parts come from a relgen-style scenario directory:
// d.facts supplies the database and q0.cq the default query. With
// -catalog the requests reference a preregistered catalog entry by
// name (the realistic serving shape: master data parsed once
// server-side); without it, the scenario's r.schema, rm.schema,
// dm.facts and v.cc ride inline in every request.
//
// Open-loop mode (-rate > 0) sends at the target rate regardless of
// response latency, bounded by -concurrency in-flight requests; a tick
// that finds no free slot is counted as dropped rather than queued, so
// the report separates server pushback (429/503) from client-side
// saturation. Closed-loop mode (-rate 0) keeps exactly -concurrency
// requests in flight.
//
// With -mutate F (requires -catalog), fraction F of the requests are
// catalog mutations (POST /v1/catalog/{name}/insert|delete) instead of
// checks, exercising the incremental-maintenance path under load.
// -mutate-target db cycles insert/delete pairs over the scenario's
// d.facts, so the resident database oscillates around its seed;
// -mutate-target master re-inserts existing dm.facts rows, which are
// tuple-level no-ops that drive the witness-reuse gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relload:", err)
		os.Exit(1)
	}
}

// loadConfig is the parsed flag set.
type loadConfig struct {
	targets      []string
	endpoint     string
	catalog      string
	scenario     string
	query        string
	n            int
	duration     time.Duration
	rate         float64
	concurrency  int
	batch        int
	warmup       int
	timeout      time.Duration
	jsonPath     string
	mutate       float64
	mutateTarget string
}

func run() error {
	var cfg loadConfig
	var addr string
	flag.StringVar(&addr, "addr", "http://127.0.0.1:8080", "comma-separated relserve base URLs, load-balanced round-robin")
	flag.StringVar(&cfg.endpoint, "endpoint", "rcdp", "check endpoint to drive: rcdp, rcqp or bounded")
	flag.StringVar(&cfg.catalog, "catalog", "", "reference this preregistered catalog entry instead of sending master data inline")
	flag.StringVar(&cfg.scenario, "scenario", "", "relgen scenario directory (d.facts, q0.cq; plus r.schema, rm.schema, dm.facts, v.cc when -catalog is unset)")
	flag.StringVar(&cfg.query, "query", "", "query text (default: the scenario's q0.cq)")
	flag.IntVar(&cfg.n, "n", 100, "total requests to send (ignored when -duration is set)")
	flag.DurationVar(&cfg.duration, "duration", 0, "send for this long instead of a fixed -n")
	flag.Float64Var(&cfg.rate, "rate", 0, "open-loop request rate per second (0 = closed loop at -concurrency)")
	flag.IntVar(&cfg.concurrency, "concurrency", 16, "maximum in-flight requests (open-loop ticks beyond this are dropped)")
	flag.IntVar(&cfg.batch, "batch", 0, "send /v1/batch requests with this many queries each instead of single checks")
	flag.IntVar(&cfg.warmup, "warmup", 0, "untimed warmup requests before the measured run")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request timeout")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the JSON report to this file (\"-\" = stdout; default: human summary)")
	flag.Float64Var(&cfg.mutate, "mutate", 0, "fraction of requests sent as catalog mutations (requires -catalog; 0 = none)")
	flag.StringVar(&cfg.mutateTarget, "mutate-target", "db", "mutation target: db (insert/delete cycles over d.facts) or master (duplicate inserts from dm.facts)")
	flag.Parse()

	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.targets = append(cfg.targets, strings.TrimSuffix(a, "/"))
		}
	}
	if len(cfg.targets) == 0 {
		return fmt.Errorf("-addr: at least one target is required")
	}
	if cfg.scenario == "" {
		return fmt.Errorf("-scenario is required")
	}
	if cfg.concurrency <= 0 {
		return fmt.Errorf("-concurrency must be positive")
	}
	if cfg.n <= 0 && cfg.duration <= 0 {
		return fmt.Errorf("one of -n or -duration is required")
	}
	if cfg.mutate < 0 || cfg.mutate > 1 {
		return fmt.Errorf("-mutate must be in [0, 1]")
	}
	if cfg.mutate > 0 && cfg.catalog == "" {
		return fmt.Errorf("-mutate requires -catalog (mutations address /v1/catalog/{name}/...)")
	}

	body, path, err := buildRequest(&cfg)
	if err != nil {
		return err
	}
	muts, err := buildMutations(&cfg)
	if err != nil {
		return err
	}
	rep, err := drive(&cfg, path, body, muts)
	if err != nil {
		return err
	}
	return rep.emit(cfg.jsonPath)
}

// buildRequest assembles the constant request body and URL path from
// the scenario directory.
func buildRequest(cfg *loadConfig) ([]byte, string, error) {
	read := func(base string, required bool) (string, error) {
		b, err := os.ReadFile(filepath.Join(cfg.scenario, base))
		if err != nil {
			if os.IsNotExist(err) && !required {
				return "", nil
			}
			return "", err
		}
		return string(b), nil
	}
	db, err := read("d.facts", true)
	if err != nil {
		return nil, "", err
	}
	query := cfg.query
	if query == "" {
		if query, err = read("q0.cq", true); err != nil {
			return nil, "", fmt.Errorf("no -query and no q0.cq: %w", err)
		}
	}
	req := map[string]any{"db": db}
	if cfg.catalog != "" {
		req["catalog"] = cfg.catalog
	} else {
		for file, field := range map[string]string{
			"r.schema":  "schemas",
			"rm.schema": "master_schemas",
			"dm.facts":  "master",
			"v.cc":      "constraints",
		} {
			v, err := read(file, file == "r.schema")
			if err != nil {
				return nil, "", err
			}
			if v != "" {
				req[field] = v
			}
		}
	}
	path := "/v1/" + cfg.endpoint
	if cfg.batch > 0 {
		queries := make([]string, cfg.batch)
		for i := range queries {
			queries[i] = query
		}
		req["queries"] = queries
		if cfg.endpoint != "rcdp" {
			req["endpoint"] = cfg.endpoint
		}
		path = "/v1/batch"
	} else {
		req["query"] = query
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	return body, path, nil
}

// mutation is one prebuilt catalog-mutation request.
type mutation struct {
	path string
	body []byte
}

// buildMutations prebuilds the mutation cycle for -mutate: one
// single-fact batch per line of the scenario facts file. DB-target
// mutations come as insert/delete pairs so the resident database
// oscillates around its seed instead of drifting; master-target
// mutations are insert-only duplicates of existing rows — tuple-level
// no-ops that exercise the invisibility gate and verdict reuse.
func buildMutations(cfg *loadConfig) ([]mutation, error) {
	if cfg.mutate <= 0 {
		return nil, nil
	}
	factsFile := "d.facts"
	if cfg.mutateTarget == "master" {
		factsFile = "dm.facts"
	} else if cfg.mutateTarget != "db" {
		return nil, fmt.Errorf("-mutate-target must be db or master")
	}
	raw, err := os.ReadFile(filepath.Join(cfg.scenario, factsFile))
	if err != nil {
		return nil, fmt.Errorf("-mutate: %w", err)
	}
	var facts []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			facts = append(facts, line)
		}
	}
	if len(facts) == 0 {
		return nil, fmt.Errorf("-mutate: %s has no facts", factsFile)
	}
	base := "/v1/catalog/" + cfg.catalog + "/"
	var muts []mutation
	for _, f := range facts {
		body, err := json.Marshal(map[string]string{"target": cfg.mutateTarget, "facts": f})
		if err != nil {
			return nil, err
		}
		muts = append(muts, mutation{path: base + "insert", body: body})
		if cfg.mutateTarget == "db" {
			muts = append(muts, mutation{path: base + "delete", body: body})
		}
	}
	return muts, nil
}

// report is the run summary, emitted as JSON with -json.
type report struct {
	Targets       []string         `json:"targets"`
	Endpoint      string           `json:"endpoint"`
	Batch         int              `json:"batch,omitempty"`
	Sent          int64            `json:"sent"`
	OK            int64            `json:"ok"`
	Errors        int64            `json:"errors"`
	Dropped       int64            `json:"dropped"`
	Mutations     int64            `json:"mutations,omitempty"`
	MutReused     int64            `json:"mutations_reused,omitempty"`
	MutRechecked  int64            `json:"mutations_rechecked,omitempty"`
	Status        map[string]int64 `json:"status"`
	Verdicts      map[string]int64 `json:"verdicts"`
	DurationS     float64          `json:"duration_s"`
	ThroughputRPS float64          `json:"throughput_rps"`
	LatencyMS     latencySummary   `json:"latency_ms"`
	Histogram     map[string]int64 `json:"latency_histogram_s"`
}

type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// collector aggregates per-request outcomes. The histogram lives in a
// private obs registry so a relload embedded next to a server process
// never collides with the serving metrics.
type collector struct {
	mu         sync.Mutex
	status     map[string]int64
	verdicts   map[string]int64
	latencies  []float64 // seconds
	errors     int64
	mutations  int64
	mReused    int64
	mRechecked int64
	hist       *obs.Histogram
}

func newCollector() *collector {
	reg := obs.NewRegistry()
	return &collector{
		status:   map[string]int64{},
		verdicts: map[string]int64{},
		hist:     reg.Histogram("relload_latency_seconds", "relload request latency", obs.DefBuckets),
	}
}

func (c *collector) record(status int, verdicts []string, latency time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		return
	}
	c.status[strconv.Itoa(status)]++
	for _, v := range verdicts {
		if v != "" {
			c.verdicts[v]++
		}
	}
	c.latencies = append(c.latencies, latency.Seconds())
	c.hist.Observe(latency.Seconds())
}

func (c *collector) recordMutation(status int, reused, rechecked int64, latency time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		return
	}
	c.mutations++
	c.mReused += reused
	c.mRechecked += rechecked
	c.status[strconv.Itoa(status)]++
	c.latencies = append(c.latencies, latency.Seconds())
	c.hist.Observe(latency.Seconds())
}

// drive runs the warmup then the measured load and builds the report.
func drive(cfg *loadConfig, path string, body []byte, muts []mutation) (*report, error) {
	client := &http.Client{Timeout: cfg.timeout}
	next := atomic.Int64{}
	mutSeq := atomic.Int64{}
	// Every mutPeriod-th request is a mutation, approximating the
	// -mutate fraction deterministically.
	mutPeriod := int64(0)
	if cfg.mutate > 0 && len(muts) > 0 {
		mutPeriod = int64(1.0/cfg.mutate + 0.5)
		if mutPeriod < 1 {
			mutPeriod = 1
		}
	}
	fire := func(c *collector) {
		i := next.Add(1)
		target := cfg.targets[int(i-1)%len(cfg.targets)]
		if mutPeriod > 0 && i%mutPeriod == 0 {
			m := muts[int(mutSeq.Add(1)-1)%len(muts)]
			start := time.Now()
			status, reused, rechecked, err := postMutation(client, target+m.path, m.body)
			c.recordMutation(status, reused, rechecked, time.Since(start), err)
			return
		}
		start := time.Now()
		status, verdicts, err := postCheck(client, target+path, body, cfg.batch > 0)
		c.record(status, verdicts, time.Since(start), err)
	}

	warm := newCollector()
	for i := 0; i < cfg.warmup; i++ {
		fire(warm)
	}

	c := newCollector()
	var sent, dropped atomic.Int64
	start := time.Now()
	deadline := time.Time{}
	if cfg.duration > 0 {
		deadline = start.Add(cfg.duration)
	}
	more := func() bool {
		if !deadline.IsZero() {
			return time.Now().Before(deadline)
		}
		return sent.Load() < int64(cfg.n)
	}

	var wg sync.WaitGroup
	if cfg.rate > 0 {
		// Open loop: a ticker paces sends; a full slot table means the
		// tick is dropped, not delayed.
		slots := make(chan struct{}, cfg.concurrency)
		interval := time.Duration(float64(time.Second) / cfg.rate)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for more() {
			<-ticker.C
			if !more() {
				break
			}
			sent.Add(1)
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					fire(c)
				}()
			default:
				dropped.Add(1)
			}
		}
	} else {
		// Closed loop: exactly -concurrency requests in flight.
		for w := 0; w < cfg.concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if deadline.IsZero() {
						if sent.Add(1) > int64(cfg.n) {
							return
						}
					} else {
						if !time.Now().Before(deadline) {
							return
						}
						sent.Add(1)
					}
					fire(c)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Targets:      cfg.targets,
		Endpoint:     cfg.endpoint,
		Batch:        cfg.batch,
		Errors:       c.errors,
		Dropped:      dropped.Load(),
		Mutations:    c.mutations,
		MutReused:    c.mReused,
		MutRechecked: c.mRechecked,
		Status:       c.status,
		Verdicts:     c.verdicts,
		DurationS:    elapsed.Seconds(),
	}
	rep.Sent = int64(len(c.latencies)) + c.errors + dropped.Load()
	rep.OK = c.status["200"]
	completed := float64(len(c.latencies))
	if elapsed > 0 {
		rep.ThroughputRPS = completed / elapsed.Seconds()
	}
	rep.LatencyMS = summarize(c.latencies)
	rep.Histogram = bucketCounts(c.hist, c.latencies)
	return rep, nil
}

// postMutation fires one catalog mutation and extracts the maintained
// verdicts' reuse split.
func postMutation(client *http.Client, url string, body []byte) (int, int64, int64, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	var out struct {
		Reused    int64 `json:"reused"`
		Rechecked int64 `json:"rechecked"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Reused, out.Rechecked, nil
}

// postCheck fires one request and extracts status plus verdicts (one
// per batch line, or the single response's verdict).
func postCheck(client *http.Client, url string, body []byte, batch bool) (int, []string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if batch && resp.StatusCode == http.StatusOK {
		var verdicts []string
		dec := json.NewDecoder(resp.Body)
		for {
			var line struct {
				Response struct {
					Verdict string `json:"verdict"`
				} `json:"response"`
			}
			if err := dec.Decode(&line); err != nil {
				if err == io.EOF {
					break
				}
				return resp.StatusCode, verdicts, err
			}
			verdicts = append(verdicts, line.Response.Verdict)
		}
		return resp.StatusCode, verdicts, nil
	}
	var out struct {
		Verdict string `json:"verdict"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, []string{out.Verdict}, nil
}

// summarize computes exact percentiles from the recorded latencies.
func summarize(lat []float64) latencySummary {
	if len(lat) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pick := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i] * 1e3
	}
	return latencySummary{
		Mean: sum / float64(len(sorted)) * 1e3,
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
		Max:  sorted[len(sorted)-1] * 1e3,
	}
}

// bucketCounts renders the obs histogram's cumulative buckets for the
// report (Prometheus "le" semantics, seconds).
func bucketCounts(h *obs.Histogram, lat []float64) map[string]int64 {
	out := make(map[string]int64, len(obs.DefBuckets)+1)
	for _, bound := range obs.DefBuckets {
		var n int64
		for _, v := range lat {
			if v <= bound {
				n++
			}
		}
		out[strconv.FormatFloat(bound, 'g', -1, 64)] = n
	}
	out["+Inf"] = h.Count()
	return out
}

// emit writes the report as JSON (to path or stdout), or a human
// summary when -json is unset.
func (r *report) emit(path string) error {
	if path != "" {
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if path == "-" {
			_, err = os.Stdout.Write(b)
			return err
		}
		return os.WriteFile(path, b, 0o644)
	}
	fmt.Printf("relload: %d sent, %d ok, %d errors, %d dropped in %.2fs (%.1f req/s)\n",
		r.Sent, r.OK, r.Errors, r.Dropped, r.DurationS, r.ThroughputRPS)
	fmt.Printf("relload: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		r.LatencyMS.P50, r.LatencyMS.P90, r.LatencyMS.P99, r.LatencyMS.Max)
	if r.Mutations > 0 {
		fmt.Printf("relload: mutations %d (verdicts reused %d, rechecked %d)\n",
			r.Mutations, r.MutReused, r.MutRechecked)
	}
	for v, n := range r.Verdicts {
		fmt.Printf("relload: verdict %s: %d\n", v, n)
	}
	return nil
}
