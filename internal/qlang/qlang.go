// Package qlang provides a uniform Query interface over the five query
// languages of Fan & Geerts — CQ, UCQ, ∃FO⁺, FO and FP — so that the
// decision procedures (which are parameterized by L_Q and L_C) and the
// containment constraints can handle any language through one API.
package qlang

import (
	"fmt"
	"sync"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/fo"
	"repro/internal/query"
	"repro/internal/relation"
)

// Lang identifies a query language.
type Lang int

// The query languages of the paper, ordered by expressiveness.
const (
	CQ Lang = iota
	UCQ
	EFO
	FO
	FP
)

func (l Lang) String() string {
	switch l {
	case CQ:
		return "CQ"
	case UCQ:
		return "UCQ"
	case EFO:
		return "∃FO+"
	case FO:
		return "FO"
	case FP:
		return "FP"
	default:
		return fmt.Sprintf("Lang(%d)", int(l))
	}
}

// Monotone reports whether queries of the language are preserved under
// database extension. CQ, UCQ and ∃FO⁺ are monotone (their inequality
// atoms compare within one match, never across the database); FO is
// not; FP with inequality is grouped with FO on the conservative side,
// matching the paper's decidability frontier.
func (l Lang) Monotone() bool { return l == CQ || l == UCQ || l == EFO }

// Query is the uniform query abstraction.
type Query interface {
	// Eval evaluates the query over a database.
	Eval(d *relation.Database) ([]relation.Tuple, error)
	// EvalGate evaluates the query under gate governance: evaluation
	// charges row-steps on g and aborts with the gate's error on
	// cancellation or budget exhaustion. A nil gate makes EvalGate
	// equivalent to Eval. The step unit is language-dependent (join
	// rows for CQ/UCQ/∃FO⁺/FP, variable assignments for FO); see
	// DESIGN.md "Resource governance".
	EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error)
	// Arity is the output arity.
	Arity() int
	// Lang is the query language.
	Lang() Lang
	// Tableaux returns the CQ tableaux of the query (one per
	// satisfiable disjunct) for the monotone languages and nil for
	// FO/FP.
	Tableaux() []*cq.Tableau
	// Constants returns all constants occurring in the query.
	Constants() []relation.Value
	String() string
}

type cqQuery struct {
	q       *cq.CQ
	tabOnce sync.Once
	tabs    []*cq.Tableau
}

type ucqQuery struct{ q *cq.UCQ }

type efoQuery struct{ q *cq.EFOQuery }

type foQuery struct{ q *fo.Query }

type fpQuery struct{ p *datalog.Program }

// FromCQ wraps a conjunctive query.
func FromCQ(q *cq.CQ) Query { return &cqQuery{q: q} }

// FromUCQ wraps a union of conjunctive queries.
func FromUCQ(q *cq.UCQ) Query { return &ucqQuery{q: q} }

// FromEFO wraps an ∃FO⁺ query; its UCQ expansion is cached.
func FromEFO(q *cq.EFOQuery) Query { return &efoQuery{q: q} }

// FromFO wraps a first-order query.
func FromFO(q *fo.Query) Query { return &foQuery{q: q} }

// FromFP wraps a datalog program.
func FromFP(p *datalog.Program) Query { return &fpQuery{p: p} }

// AsCQ unwraps q when it wraps a conjunctive query.
func AsCQ(q Query) (*cq.CQ, bool) {
	if w, ok := q.(*cqQuery); ok {
		return w.q, true
	}
	return nil, false
}

// AsUCQ unwraps q when it wraps a union of conjunctive queries.
func AsUCQ(q Query) (*cq.UCQ, bool) {
	if w, ok := q.(*ucqQuery); ok {
		return w.q, true
	}
	return nil, false
}

// AsFP unwraps q when it wraps a datalog program.
func AsFP(q Query) (*datalog.Program, bool) {
	if w, ok := q.(*fpQuery); ok {
		return w.p, true
	}
	return nil, false
}

func (w *cqQuery) Eval(d *relation.Database) ([]relation.Tuple, error) { return w.q.Eval(d), nil }
func (w *cqQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return w.q.EvalGate(d, g)
}
func (w *cqQuery) Arity() int { return w.q.Arity() }
func (w *cqQuery) Lang() Lang { return CQ }
func (w *cqQuery) Tableaux() []*cq.Tableau {
	w.tabOnce.Do(func() {
		if t, err := w.q.Compiled(); err == nil {
			w.tabs = []*cq.Tableau{t}
		}
	})
	return w.tabs
}
func (w *cqQuery) Constants() []relation.Value { return w.q.Constants() }
func (w *cqQuery) String() string              { return w.q.String() }

func (w *ucqQuery) Eval(d *relation.Database) ([]relation.Tuple, error) { return w.q.Eval(d), nil }
func (w *ucqQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return w.q.EvalGate(d, g)
}
func (w *ucqQuery) Arity() int                  { return w.q.Arity() }
func (w *ucqQuery) Lang() Lang                  { return UCQ }
func (w *ucqQuery) Tableaux() []*cq.Tableau     { return w.q.Tableaux() }
func (w *ucqQuery) Constants() []relation.Value { return w.q.Constants() }
func (w *ucqQuery) String() string              { return w.q.String() }

func (w *efoQuery) Eval(d *relation.Database) ([]relation.Tuple, error) {
	// ToUCQ memoizes the DNF expansion on the EFOQuery itself (behind a
	// sync.Once), so the wrapper needs no cache of its own.
	return w.q.ToUCQ().Eval(d), nil
}
func (w *efoQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return w.q.ToUCQ().EvalGate(d, g)
}
func (w *efoQuery) Arity() int                  { return w.q.Arity() }
func (w *efoQuery) Lang() Lang                  { return EFO }
func (w *efoQuery) Tableaux() []*cq.Tableau     { return w.q.ToUCQ().Tableaux() }
func (w *efoQuery) Constants() []relation.Value { return w.q.ToUCQ().Constants() }
func (w *efoQuery) String() string              { return w.q.String() }

func (w *foQuery) Eval(d *relation.Database) ([]relation.Tuple, error) { return w.q.Eval(d), nil }
func (w *foQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return w.q.EvalGate(d, g)
}
func (w *foQuery) Arity() int                  { return w.q.Arity() }
func (w *foQuery) Lang() Lang                  { return FO }
func (w *foQuery) Tableaux() []*cq.Tableau     { return nil }
func (w *foQuery) Constants() []relation.Value { return w.q.Constants() }
func (w *foQuery) String() string              { return w.q.String() }

func (w *fpQuery) Eval(d *relation.Database) ([]relation.Tuple, error) { return w.p.Eval(d) }
func (w *fpQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return w.p.EvalGate(d, g)
}
func (w *fpQuery) Arity() int                  { return w.p.OutputArity() }
func (w *fpQuery) Lang() Lang                  { return FP }
func (w *fpQuery) Tableaux() []*cq.Tableau     { return nil }
func (w *fpQuery) Constants() []relation.Value { return w.p.Constants() }
func (w *fpQuery) String() string              { return w.p.String() }

// Underlying returns the wrapped concrete query object (a *cq.CQ,
// *cq.UCQ, *cq.EFOQuery, *fo.Query or *datalog.Program).
func Underlying(q Query) any {
	switch w := q.(type) {
	case *cqQuery:
		return w.q
	case *ucqQuery:
		return w.q
	case *efoQuery:
		return w.q
	case *foQuery:
		return w.q
	case *fpQuery:
		return w.p
	default:
		return nil
	}
}
