package qlang

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/fo"
	"repro/internal/query"
	"repro/internal/relation"
)

func edgeDB() *relation.Database {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(e)
	d.MustAdd("E", "1", "2")
	d.MustAdd("E", "2", "3")
	return d
}

func TestWrappers(t *testing.T) {
	x, y, z := query.Var("x"), query.Var("y"), query.Var("z")
	cqq := cq.New("q", []query.Term{x}, []query.RelAtom{query.Atom("E", x, y)})
	ucq := cq.Union("u", cqq, cqq.Clone())
	efo := cq.NewEFO("e", []query.Term{x}, cq.FAtom("E", x, y))
	foq := fo.NewQuery("f", []query.Term{x},
		fo.FExists([]string{"y"}, fo.FAtom("E", x, y)))
	fpq := datalog.NewProgram("p", "TC",
		datalog.NewRule(query.Atom("TC", x, y), datalog.L("E", x, y)),
		datalog.NewRule(query.Atom("TC", x, y), datalog.L("E", x, z), datalog.L("TC", z, y)))

	d := edgeDB()
	cases := []struct {
		q       Query
		lang    Lang
		arity   int
		answers int
		tabs    bool
	}{
		{FromCQ(cqq), CQ, 1, 2, true},
		{FromUCQ(ucq), UCQ, 1, 2, true},
		{FromEFO(efo), EFO, 1, 2, true},
		{FromFO(foq), FO, 1, 2, false},
		{FromFP(fpq), FP, 2, 3, false},
	}
	for _, c := range cases {
		if c.q.Lang() != c.lang {
			t.Fatalf("%s: lang %v", c.q, c.q.Lang())
		}
		if c.q.Arity() != c.arity {
			t.Fatalf("%v: arity %d", c.lang, c.q.Arity())
		}
		got, err := c.q.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != c.answers {
			t.Fatalf("%v: answers %v", c.lang, got)
		}
		if (c.q.Tableaux() != nil) != c.tabs {
			t.Fatalf("%v: tableaux presence wrong", c.lang)
		}
		if c.q.String() == "" {
			t.Fatalf("%v: empty String", c.lang)
		}
		if Underlying(c.q) == nil {
			t.Fatalf("%v: Underlying nil", c.lang)
		}
	}
}

func TestLangProperties(t *testing.T) {
	if !CQ.Monotone() || !UCQ.Monotone() || !EFO.Monotone() {
		t.Fatal("positive languages must be monotone")
	}
	if FO.Monotone() || FP.Monotone() {
		t.Fatal("FO/FP must not be monotone")
	}
	names := map[Lang]string{CQ: "CQ", UCQ: "UCQ", EFO: "∃FO+", FO: "FO", FP: "FP"}
	for l, want := range names {
		if l.String() != want {
			t.Fatalf("Lang %d String %s", l, l.String())
		}
	}
}
