package mdm

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/relation"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if !a.D.Equal(b.D) || !a.Dm.Equal(b.Dm) {
		t.Fatal("generation must be deterministic for equal configs")
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := Generate(cfg)
	if a.D.Equal(c.D) {
		t.Fatal("different seeds should give different data")
	}
}

func TestGeneratedSizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DomesticCustomers = 30
	cfg.InternationalCustomers = 7
	cfg.Completeness = 1.0
	s := Generate(cfg)
	if s.Dm.Instance(DCust).Len() != 30 {
		t.Fatalf("DCust size %d", s.Dm.Instance(DCust).Len())
	}
	if s.D.Instance(Cust).Len() != 37 {
		t.Fatalf("Cust size %d", s.D.Instance(Cust).Len())
	}
	if s.D.Instance(Manage).Len() != cfg.ManageDepth {
		t.Fatalf("Manage size %d", s.D.Instance(Manage).Len())
	}
}

func TestGeneratedPartiallyClosed(t *testing.T) {
	s := Generate(DefaultConfig())
	v := cc.NewSet(Phi0(), Phi0Cid(), Phi1(DefaultConfig().MaxSupport), ManageIND(), CidIND())
	if err := v.Validate(s.Dm); err != nil {
		t.Fatal(err)
	}
	ok, err := v.Satisfied(s.D, s.Dm)
	if err != nil || !ok {
		t.Fatalf("generated scenario must satisfy the standard constraints: %v %v", ok, err)
	}
	// The FD eid → dept, cid (Example 3.1's alternative scenario) is
	// deliberately violated by multi-customer support.
	single := Generate(Config{Seed: 2, DomesticCustomers: 6, Employees: 3,
		SupportPerEmployee: 1, MaxSupport: 1, Completeness: 1, ManageDepth: 2})
	fdSet := cc.NewSet(SuptFD()...)
	ok, err = fdSet.Satisfied(single.D, single.Dm)
	if err != nil || !ok {
		t.Fatalf("single-support scenario must satisfy the FD: %v %v", ok, err)
	}
}

func TestIncompleteScenarioDetected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DomesticCustomers = 6
	cfg.Employees = 2
	cfg.Completeness = 0.5
	s := Generate(cfg)
	v := cc.NewSet(Phi0())
	q := Q0("908")
	r, err := core.RCDP(q, s.D, s.Dm, v)
	if err != nil {
		t.Fatal(err)
	}
	// With half the domestic customers missing, Q0 over any populated
	// area code is very likely incomplete; assert the checker runs and,
	// when incomplete, produces a verifiable witness.
	if !r.Complete {
		union := s.D.Union(r.Extension)
		if ok, _ := v.Satisfied(union, s.Dm); !ok {
			t.Fatal("counterexample not partially closed")
		}
	}
}

func TestCompleteScenarioQ1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DomesticCustomers = 8
	cfg.Employees = 2
	cfg.Completeness = 1.0
	s := Generate(cfg)

	// Saturate: support every domestic customer from e00 so Q1 answers
	// cover everything the master data allows for its area code.
	for _, mt := range s.Dm.Instance(DCust).Tuples() {
		s.D.MustAdd(Supt, "e00", "sales", string(mt[0]))
	}
	v := cc.NewSet(Phi0())
	q := Q1("e00", "908")
	r, err := core.RCDP(q, s.D, s.Dm, v)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("saturated Q1 must be complete; extension %v", r.Extension)
	}
}

func TestQ2WithAtMostK(t *testing.T) {
	// Example 1.1's cardinality argument on generated data: saturate one
	// employee to the bound k, then Q2 is complete.
	cfg := DefaultConfig()
	cfg.Employees = 1
	cfg.SupportPerEmployee = 0
	s := Generate(cfg)
	k := 3
	for i := 0; i < k; i++ {
		s.D.MustAdd(Supt, "e00", "sales", string(rune('a'+i)))
	}
	v := cc.NewSet(Phi1(k))
	r, err := core.RCDP(Q2("e00"), s.D, s.Dm, v)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("Q2 at the k bound must be complete; extension %v", r.Extension)
	}
}

func TestQ3DatalogVsCQ(t *testing.T) {
	// Example 1.1's Q3 discussion: the datalog query computes the full
	// chain; the 1-hop CQ only the direct manager.
	s := Generate(DefaultConfig())
	full, err := Q3Datalog("e00").Eval(s.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != s.Config.ManageDepth {
		t.Fatalf("datalog chain length %d, want %d", len(full), s.Config.ManageDepth)
	}
	hop1, err := Q3CQ("e00", 1).Eval(s.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(hop1) != 1 {
		t.Fatalf("1-hop CQ answers %v", hop1)
	}
	// The CQ for 2 hops finds exactly the grandmanager.
	hop2, err := Q3CQ("e00", 2).Eval(s.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(hop2) != 1 || hop2[0][0] != relation.Value("e02") {
		t.Fatalf("2-hop CQ answers %v", hop2)
	}
}

// TestQ3RelativeCompleteness reproduces the Manage/ManageM analysis:
// with Manage bounded by master data (an IND), the k-hop CQ is
// relatively complete; on a database missing an edge it is incomplete,
// and completion adds the missing edge.
func TestQ3RelativeCompleteness(t *testing.T) {
	s := Generate(DefaultConfig())
	v := cc.NewSet(ManageIND())
	q := Q3CQ("e00", 2)

	res, err := core.RCQP(q, s.Dm, v, s.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Yes {
		t.Fatalf("k-hop query over IND-bounded Manage must be relatively complete: %+v", res)
	}

	// Remove one edge: the database becomes incomplete; MakeComplete
	// restores it.
	d := s.D.Clone()
	d.Instance(Manage).Remove(relation.T("e02", "e01"))
	r, err := core.RCDP(q, d, s.Dm, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("database missing a management edge must be incomplete")
	}
	done, _, err := core.MakeComplete(q, d, s.Dm, v, 20)
	if err != nil {
		t.Fatal(err)
	}
	r, err = core.RCDP(q, done, s.Dm, v)
	if err != nil || !r.Complete {
		t.Fatalf("MakeComplete failed: %v %v", r, err)
	}
}
