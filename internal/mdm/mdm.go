// Package mdm provides the master-data-management scenario of the
// paper's motivating Example 1.1 — the Customer Relationship
// Management setting with master relation DCust and database relations
// Cust, Supt and Manage — together with a deterministic synthetic data
// generator with controllable sizes and completeness, the standard
// containment constraints (φ₀, φ₁, the FDs of Examples 2.1/3.1), and
// the queries Q₀–Q₃. The paper's enterprise data is hypothetical, so
// this generator is the substitute workload for the examples and
// benchmark harness (see DESIGN.md, substitutions).
package mdm

import (
	"fmt"
	"math/rand"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Schema names.
const (
	DCust  = "DCust"  // master: domestic customers (cid, name, ac, phn)
	Cust   = "Cust"   // customers (cid, name, cc, ac, phn)
	Supt   = "Supt"   // support (eid, dept, cid)
	Manage = "Manage" // reporting edges (eid1, eid2)
	// ManageM is the master reporting relation of Example 1.1.
	ManageM = "ManageM"
)

// Schemas returns the database schemas R = (Cust, Supt, Manage).
func Schemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		Cust: relation.NewSchema(Cust,
			relation.Attr("cid"), relation.Attr("name"), relation.Attr("cc"),
			relation.Attr("ac"), relation.Attr("phn")),
		Supt: relation.NewSchema(Supt,
			relation.Attr("eid"), relation.Attr("dept"), relation.Attr("cid")),
		Manage: relation.NewSchema(Manage,
			relation.Attr("eid1"), relation.Attr("eid2")),
	}
}

// MasterSchemas returns the master data schemas Rm = (DCust, ManageM).
func MasterSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		DCust: relation.NewSchema(DCust,
			relation.Attr("cid"), relation.Attr("name"), relation.Attr("ac"), relation.Attr("phn")),
		ManageM: relation.NewSchema(ManageM,
			relation.Attr("eid1"), relation.Attr("eid2")),
	}
}

// Config controls the synthetic scenario.
type Config struct {
	// Seed drives all pseudo-random choices.
	Seed int64
	// DomesticCustomers is the master customer count.
	DomesticCustomers int
	// InternationalCustomers are Cust rows not bounded by master data.
	InternationalCustomers int
	// Employees is the support-staff count.
	Employees int
	// SupportPerEmployee is the number of customers each employee
	// supports (kept within MaxSupport).
	SupportPerEmployee int
	// MaxSupport is the cardinality bound k of constraint φ₁.
	MaxSupport int
	// Completeness in [0, 1] is the fraction of domestic customers
	// present in Cust (and supportable): 1.0 yields databases complete
	// for the domestic-customer queries.
	Completeness float64
	// ManageDepth is the height of the management chain in ManageM.
	ManageDepth int
	// SaturateSupport guarantees every present customer at least one
	// Supt row. On saturated scenarios the planted constraints'
	// left-hand-side queries are complete for (D, Dm, planted V) — the
	// property the mining oracle and the degree=1.0 ⇔ Complete law
	// exercise — whereas unsaturated scenarios leave unsupported master
	// customers as legal extensions.
	SaturateSupport bool
	// SupportInternational adds that many international customers WITH
	// support rows. Example 1.1's φ₀ bounds only supported *domestic*
	// customers by master data, so these rows make the blanket
	// inclusion π_cid(Supt) ⊆ π_cid(DCust) genuinely false while φ₀
	// stays true — the evidence regime in which mining must recover the
	// join+selection shape rather than the stronger plain IND.
	SupportInternational int
	// UnregisteredDomestic adds cc='01' customers that are neither in
	// master data nor supported. φ₀ still holds (they are unsupported),
	// but any mined constraint bounding *all* domestic customers by
	// DCust is false on such evidence — these rows are the negative
	// examples that keep spurious Cust-only fragments out of mining
	// output.
	UnregisteredDomestic int
}

// DefaultConfig returns a small, fully complete scenario.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		DomesticCustomers:      20,
		InternationalCustomers: 5,
		Employees:              5,
		SupportPerEmployee:     2,
		MaxSupport:             3,
		Completeness:           1.0,
		ManageDepth:            4,
	}
}

// Scenario is a generated CRM instance.
type Scenario struct {
	Config  Config
	D       *relation.Database
	Dm      *relation.Database
	Schemas map[string]*relation.Schema
}

// Generate builds the scenario deterministically from the config.
func Generate(cfg Config) *Scenario {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ss := Schemas()
	ms := MasterSchemas()
	d := relation.NewDatabase(ss[Cust], ss[Supt], ss[Manage])
	dm := relation.NewDatabase(ms[DCust], ms[ManageM])

	areaCodes := []string{"908", "973", "201", "609"}
	cid := func(i int) string { return fmt.Sprintf("c%03d", i) }
	eid := func(i int) string { return fmt.Sprintf("e%02d", i) }

	// Master: all domestic customers.
	for i := 0; i < cfg.DomesticCustomers; i++ {
		dm.MustAdd(DCust, cid(i), fmt.Sprintf("name%d", i),
			areaCodes[rng.Intn(len(areaCodes))], fmt.Sprintf("555%04d", i))
	}
	// Database customers: a Completeness fraction of the domestic ones
	// (with master-consistent attributes) plus international ones.
	var present []string
	for i := 0; i < cfg.DomesticCustomers; i++ {
		if rng.Float64() < cfg.Completeness {
			mt := dm.Instance(DCust).Tuples()[0] // placeholder; replaced below
			_ = mt
			// Re-read the matching master tuple by key.
			for _, t := range dm.Instance(DCust).Tuples() {
				if string(t[0]) == cid(i) {
					d.MustAdd(Cust, cid(i), string(t[1]), "01", string(t[2]), string(t[3]))
					break
				}
			}
			present = append(present, cid(i))
		}
	}
	for i := 0; i < cfg.InternationalCustomers; i++ {
		d.MustAdd(Cust, fmt.Sprintf("i%03d", i), fmt.Sprintf("iname%d", i),
			fmt.Sprintf("%02d", 2+rng.Intn(80)), "020", fmt.Sprintf("777%04d", i))
	}
	// Support assignments over present customers.
	if len(present) > 0 {
		per := cfg.SupportPerEmployee
		if per > cfg.MaxSupport {
			per = cfg.MaxSupport
		}
		for e := 0; e < cfg.Employees; e++ {
			seen := make(map[string]bool)
			for s := 0; s < per; s++ {
				c := present[rng.Intn(len(present))]
				if seen[c] {
					continue
				}
				seen[c] = true
				d.MustAdd(Supt, eid(e), "sales", c)
			}
		}
	}
	if cfg.SaturateSupport && len(present) > 0 && cfg.Employees > 0 {
		supported := make(map[string]bool)
		for _, t := range d.Instance(Supt).Tuples() {
			supported[string(t[2])] = true
		}
		next := 0
		for _, c := range present {
			if supported[c] {
				continue
			}
			d.MustAdd(Supt, eid(next%cfg.Employees), "sales", c)
			next++
		}
	}
	// Management chain: e0 reports to e1 reports to … in ManageM; the
	// database Manage starts with the direct edges only (so transitive
	// queries are incomplete until closed).
	for lvl := 0; lvl+1 <= cfg.ManageDepth; lvl++ {
		dm.MustAdd(ManageM, eid(lvl+1), eid(lvl))
		d.MustAdd(Manage, eid(lvl+1), eid(lvl))
	}
	// The two mining-evidence knobs draw from rng strictly after every
	// existing draw, so default (zero) configs generate byte-identical
	// scenarios to earlier revisions.
	if cfg.SupportInternational > 0 && cfg.Employees > 0 {
		for i := 0; i < cfg.SupportInternational; i++ {
			sid := fmt.Sprintf("s%03d", i)
			d.MustAdd(Cust, sid, fmt.Sprintf("sname%d", i),
				fmt.Sprintf("%02d", 2+rng.Intn(80)),
				areaCodes[rng.Intn(len(areaCodes))], fmt.Sprintf("666%04d", i))
			d.MustAdd(Supt, eid(rng.Intn(cfg.Employees)), "sales", sid)
		}
	}
	if cfg.UnregisteredDomestic > 0 {
		// Area codes mix the master pool with an out-of-pool value so
		// that neither σ_ac=const nor σ_cc='01' Cust fragments survive
		// confidence scoring across evidence pairs.
		pool := append(append([]string(nil), areaCodes...), "999")
		for i := 0; i < cfg.UnregisteredDomestic; i++ {
			d.MustAdd(Cust, fmt.Sprintf("u%03d", i), fmt.Sprintf("uname%d", i),
				"01", pool[rng.Intn(len(pool))], fmt.Sprintf("888%04d", i))
		}
	}
	return &Scenario{Config: cfg, D: d, Dm: dm, Schemas: ss}
}

// Evidence returns n independently seeded scenarios drawn from cfg —
// the (D, Dm) observation pairs that constraint mining consumes. Every
// pair satisfies the planted constraints by construction, with
// per-pair variation in which customers, support assignments and area
// codes appear.
func Evidence(cfg Config, n int) []*Scenario {
	out := make([]*Scenario, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		out = append(out, Generate(c))
	}
	return out
}

// PlantedConstraints is the ground truth for mining evaluation: the
// containment constraints every generated scenario satisfies by
// construction. Phi0Cid is the join+selection shape, ManageIND the
// two-column inclusion, CidIND the single-column inclusion.
func PlantedConstraints() []*cc.Constraint {
	return []*cc.Constraint{Phi0Cid(), ManageIND(), CidIND()}
}

// Phi0 is the CC φ₀ of Example 2.1: supported domestic customers are
// bounded by the master relation, here over the (cid, ac) pair so that
// area-code queries are meaningful.
func Phi0() *cc.Constraint {
	q := cq.New("phi0", []query.Term{query.Var("c"), query.Var("a")},
		[]query.RelAtom{
			query.Atom(Cust, query.Var("c"), query.Var("n"), query.Var("cc"),
				query.Var("a"), query.Var("p")),
			query.Atom(Supt, query.Var("e"), query.Var("d"), query.Var("c")),
		},
		query.Eq(query.Var("cc"), query.C("01")))
	return cc.FromCQ("phi0", q, cc.Proj(DCust, 0, 2))
}

// Phi0Cid is the paper's original φ₀ bounding only supported domestic
// customer ids by π_cid(DCust).
func Phi0Cid() *cc.Constraint {
	q := cq.New("phi0cid", []query.Term{query.Var("c")},
		[]query.RelAtom{
			query.Atom(Cust, query.Var("c"), query.Var("n"), query.Var("cc"),
				query.Var("a"), query.Var("p")),
			query.Atom(Supt, query.Var("e"), query.Var("d"), query.Var("c")),
		},
		query.Eq(query.Var("cc"), query.C("01")))
	return cc.FromCQ("phi0cid", q, cc.Proj(DCust, 0))
}

// Phi1 is the CC φ₁ of Example 2.1: each employee supports at most k
// customers.
func Phi1(k int) *cc.Constraint {
	return cc.AtMostK("phi1", Supt, 3, []int{0}, 2, k)
}

// SuptFD is the FD eid → dept, cid of Example 1.1 as CCs.
func SuptFD() []*cc.Constraint {
	fd := &cc.FD{Name: "suptfd", Rel: Supt, From: []int{0}, To: []int{1, 2}}
	return fd.ToCCs(3)
}

// ManageIND bounds Manage by the master reporting relation ManageM.
func ManageIND() *cc.Constraint {
	return cc.NewIND("manageIND", Manage, []int{0, 1}, 2, cc.Proj(ManageM, 0, 1))
}

// CidIND bounds supported customer ids by master data as a plain IND
// π_cid(Supt) ⊆ π_cid(DCust), the IND variant used by the L_C = INDs
// rows of the benchmarks.
func CidIND() *cc.Constraint {
	return cc.NewIND("cidIND", Supt, []int{2}, 3, cc.Proj(DCust, 0))
}

// Q0 finds all customers with the given area code (query Q₀ of Section
// 2.3): Q0(c) :- Cust(c, n, cc, a, p), Supt(e, d, c), cc = '01', a = ac.
func Q0(ac string) qlang.Query {
	q := cq.New("Q0", []query.Term{query.Var("c")},
		[]query.RelAtom{
			query.Atom(Cust, query.Var("c"), query.Var("n"), query.Var("cc"),
				query.Var("a"), query.Var("p")),
			query.Atom(Supt, query.Var("e"), query.Var("d"), query.Var("c")),
		},
		query.Eq(query.Var("cc"), query.C("01")),
		query.Eq(query.Var("a"), query.C(ac)))
	return qlang.FromCQ(q)
}

// Q1 finds the ac-area customers supported by the given employee
// (query Q₁ of Example 1.1).
func Q1(employee, ac string) qlang.Query {
	q := cq.New("Q1", []query.Term{query.Var("c")},
		[]query.RelAtom{
			query.Atom(Supt, query.Var("e"), query.Var("d"), query.Var("c")),
			query.Atom(Cust, query.Var("c"), query.Var("n"), query.Var("cc"),
				query.Var("a"), query.Var("p")),
		},
		query.Eq(query.Var("e"), query.C(employee)),
		query.Eq(query.Var("cc"), query.C("01")),
		query.Eq(query.Var("a"), query.C(ac)))
	return qlang.FromCQ(q)
}

// Q2 finds all customers supported by the given employee (query Q₂ of
// Example 1.1).
func Q2(employee string) qlang.Query {
	q := cq.New("Q2", []query.Term{query.Var("c")},
		[]query.RelAtom{query.Atom(Supt, query.Var("e"), query.Var("d"), query.Var("c"))},
		query.Eq(query.Var("e"), query.C(employee)))
	return qlang.FromCQ(q)
}

// Q3Datalog finds everyone above the given employee in the management
// hierarchy, as an FP query (query Q₃ of Example 1.1).
func Q3Datalog(employee string) qlang.Query {
	x, y, z := query.Var("x"), query.Var("y"), query.Var("z")
	prog := datalog.NewProgram("Q3", "Above",
		datalog.NewRule(query.Atom("Up", x, y), datalog.L(Manage, x, y)),
		datalog.NewRule(query.Atom("Up", x, y), datalog.L(Manage, x, z), datalog.L("Up", z, y)),
		datalog.NewRule(query.Atom("Above", x), datalog.L("Up", x, query.C(employee))),
	)
	return qlang.FromFP(prog)
}

// Q3CQ is the k-hop conjunctive approximation of Q₃: managers exactly
// k levels above the employee.
func Q3CQ(employee string, k int) qlang.Query {
	if k < 1 {
		k = 1
	}
	cur := query.Term(query.C(employee))
	var atoms []query.RelAtom
	for i := 1; i <= k; i++ {
		next := query.Var(fmt.Sprintf("m%d", i))
		atoms = append(atoms, query.Atom(Manage, next, cur))
		cur = next
	}
	q := cq.New("Q3cq", []query.Term{cur}, atoms)
	return qlang.FromCQ(q)
}
