// Package obs is the zero-dependency observability layer of the
// completeness engines: a concurrent metrics registry (atomic counters,
// gauges and bucketed latency histograms), a lightweight structured
// tracer emitting JSONL events, and an HTTP exposition surface
// (Prometheus text format, expvar JSON and net/http/pprof).
//
// # Design
//
// The engine packages (core, cq, cc, query, relation) charge a fixed
// set of process-global metrics declared below. Hot loops never touch
// an atomic per event: they accumulate into stack-local counters and
// flush once per evaluation, mirroring the gateState batching of the
// cq join engine, so the instrumented path stays within measurement
// noise of the uninstrumented one (see BenchmarkObsOverhead and the
// EXPERIMENTS.md instrumentation-overhead series). SetEnabled(false)
// turns every flush into a no-op for ablation benchmarks.
//
// Tracing is opt-in: SetTracer installs a process-global tracer and
// engines emit coarse-grained events (check lifecycle, per-disjunct
// search summaries, cache builds, gate trips) only while one is
// installed; Tracing() is a single atomic load, so the disabled path
// costs nothing. See trace.go for the event schema.
//
// The exposition surface is wired by Handler/Serve: the relcheck and
// relbench CLIs expose it behind their -metrics flag, and
// core.BudgetStats consumers read the same counters through the
// registry snapshot.
package obs

import "sync/atomic"

// enabled gates every metric write; default on. Disabling exists for
// the instrumented-vs-uninstrumented overhead ablation, not for
// production use — the whole design keeps the enabled path free enough
// to leave on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled toggles metric collection process-wide and returns the
// previous setting, so callers can restore it:
// defer obs.SetEnabled(obs.SetEnabled(false)).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// Default is the process-global registry all engine metrics live in.
// The HTTP handler and the expvar snapshot read it; tests may create
// private registries with NewRegistry.
var Default = NewRegistry()

// The engine metric set. Every instrumented package charges these
// process-global instruments; they are declared centrally so the
// exposition names stay consistent and greppable.
var (
	// Evals counts completed tableau evaluations (cq.Tableau.EvalFuncGate
	// and EvalFuncDeltaGate enumerations).
	Evals = NewCounter("relcomp_cq_evals_total",
		"completed tableau join enumerations")
	// JoinRows counts candidate join rows enumerated by the cq join
	// engine (the same unit the row-step budget charges).
	JoinRows = NewCounter("relcomp_cq_join_rows_total",
		"candidate join rows enumerated")
	// IndexProbes counts join steps answered from a column hash index.
	IndexProbes = NewCounter("relcomp_cq_index_probes_total",
		"join steps answered by an index bucket lookup")
	// FullScans counts join steps that fell back to a full instance scan.
	FullScans = NewCounter("relcomp_cq_full_scans_total",
		"join steps answered by a full instance scan")
	// TableauBuilds counts tableau compilations (compiled-query cache
	// misses plus direct BuildTableau calls).
	TableauBuilds = NewCounter("relcomp_cq_tableau_builds_total",
		"tableau compilations (compiled-query cache misses)")
	// CompiledLookups counts compiled-query cache lookups; hits are
	// CompiledLookups - TableauBuilds (up to direct BuildTableau calls).
	CompiledLookups = NewCounter("relcomp_cq_compiled_lookups_total",
		"compiled-query cache lookups")
	// PDmHits counts master-side projection p(Dm) cache hits.
	PDmHits = NewCounter("relcomp_cc_pdm_cache_hits_total",
		"master-side projection cache hits")
	// PDmMisses counts master-side projection p(Dm) cache misses
	// (projection evaluations over the master data).
	PDmMisses = NewCounter("relcomp_cc_pdm_cache_misses_total",
		"master-side projection cache misses")
	// PDmPatches counts master-side projection memos extended in place
	// by an insert-only master batch instead of rebuilt.
	PDmPatches = NewCounter("relcomp_cc_pdm_cache_patches_total",
		"master-side projection cache incremental patches")
	// IndexBuilds counts secondary column-index materializations in the
	// relation substrate (legacy hash indexes and interned posting
	// columns alike).
	IndexBuilds = NewCounter("relcomp_relation_index_builds_total",
		"column hash-index builds")
	// DictSize gauges the number of distinct values interned in the
	// process-wide dictionary (relation.Shared). It only grows: ids are
	// never reused.
	DictSize = NewGauge("relcomp_relation_dict_values",
		"distinct values in the shared interning dictionary")
	// Valuations counts candidate valuations inspected by the
	// completeness search across all disjuncts and checks.
	Valuations = NewCounter("relcomp_core_valuations_total",
		"candidate valuations inspected by the completeness search")
	// RecheckReused counts incremental rechecks answered from the cached
	// verdict because the mutation passed the invisibility gate
	// (core.Delta.WitnessReusable).
	RecheckReused = NewCounter("relcomp_core_recheck_reused_total",
		"incremental rechecks answered from the cached verdict")
	// RecheckCold counts incremental rechecks that fell back to a full
	// RCDP search.
	RecheckCold = NewCounter("relcomp_core_recheck_cold_total",
		"incremental rechecks that re-ran the full search")
	// PoolTasks counts branch tasks executed by the parallel search
	// worker pool.
	PoolTasks = NewCounter("relcomp_core_pool_tasks_total",
		"branch tasks executed by the worker pool")
	// PoolBusyNS accumulates wall-clock nanoseconds worker goroutines
	// (including the submitting caller) spent executing branch tasks;
	// together with PoolTasks and PoolWorkers it yields utilization.
	PoolBusyNS = NewCounter("relcomp_core_pool_busy_nanoseconds_total",
		"nanoseconds spent executing pool tasks")
	// PoolWorkers gauges the goroutines currently draining pool tasks.
	PoolWorkers = NewGauge("relcomp_core_pool_workers",
		"goroutines currently draining pool tasks")
	// Checks counts governed checks by kind (rcdp, rcqp, bounded-rcdp,
	// bounded-rcqp).
	Checks = NewCounterVec("relcomp_core_checks_total",
		"completeness checks started", "check")
	// Verdicts counts finished checks by verdict string (complete,
	// incomplete, unknown; yes/no/unknown for RCQP).
	Verdicts = NewCounterVec("relcomp_core_verdicts_total",
		"completeness check outcomes", "verdict")
	// Exhaustions counts Unknown verdicts by the governance dimension
	// that ran out (cancelled, deadline, valuations, join-rows, tuples).
	Exhaustions = NewCounterVec("relcomp_core_exhaustions_total",
		"governed checks stopped by budget exhaustion", "reason")
	// GateTrips counts governance gates tripping for the first time, by
	// reason; a gate trips at most once however many loops observe it.
	GateTrips = NewCounterVec("relcomp_gate_trips_total",
		"governance gates tripped", "reason")
	// CheckSeconds is the wall-clock latency histogram of governed
	// checks (all kinds).
	CheckSeconds = NewHistogram("relcomp_core_check_seconds",
		"completeness check latency", DefBuckets)
)

// The approximation metric set (package internal/approx): the
// specialization/generalization lattice search and the witness-driven
// acquisition-advice loop.
var (
	// ApproxCandidates counts candidate queries the approximation
	// lattice search submitted to the oracle (certified or not).
	ApproxCandidates = NewCounter("relcomp_approx_candidates_total",
		"approximation candidates submitted to the oracle checker")
	// ApproxCertified counts oracle-certified approximation results by
	// kind (specialization, generalization).
	ApproxCertified = NewCounterVec("relcomp_approx_certified_total",
		"oracle-certified complete approximations", "kind")
	// AdviceRounds counts witness-acquisition rounds of the advice loop
	// (one RecheckDeltaCtx round trip each).
	AdviceRounds = NewCounter("relcomp_approx_advice_rounds_total",
		"acquisition-advice witness rounds")
	// AdviceFlips counts advice batches certified to flip the verdict
	// from incomplete to complete.
	AdviceFlips = NewCounter("relcomp_approx_advice_flips_total",
		"advice batches certified to flip the verdict to complete")
	// ApproxSeconds is the wall-clock latency histogram of approximation
	// engine calls (Approximate and Advise alike).
	ApproxSeconds = NewHistogram("relcomp_approx_seconds",
		"approximation engine call latency", DefBuckets)
)

// The constraint-mining metric set (package internal/mine): level-wise
// candidate enumeration over evidence pairs with oracle validation.
var (
	// MineRuns counts Mine invocations.
	MineRuns = NewCounter("relcomp_mine_runs_total",
		"constraint-mining runs")
	// MineCandidates counts scored candidate constraints across runs.
	MineCandidates = NewCounter("relcomp_mine_candidates_total",
		"constraint candidates enumerated and scored")
	// MineEmitted counts constraints that survived scoring, subsumption
	// and the completeness oracle.
	MineEmitted = NewCounter("relcomp_mine_emitted_total",
		"mined constraints emitted")
	// MineOracleRejections counts confidence survivors the completeness
	// oracle refuted.
	MineOracleRejections = NewCounter("relcomp_mine_oracle_rejections_total",
		"mined candidates rejected by the completeness oracle")
	// MineSeconds is the wall-clock latency histogram of Mine runs.
	MineSeconds = NewHistogram("relcomp_mine_seconds",
		"constraint-mining run latency", DefBuckets)
)

// The quantitative-completeness metric set (core.DegreeCtx): counting
// candidate valuations to score verdicts as degrees in [0, 1].
var (
	// DegreeChecks counts degree measurements by exactness (exact,
	// sampled).
	DegreeChecks = NewCounterVec("relcomp_degree_checks_total",
		"degree-of-completeness measurements", "mode")
	// DegreeCandidates counts candidate valuations inspected by degree
	// measurements.
	DegreeCandidates = NewCounter("relcomp_degree_candidates_total",
		"candidate valuations inspected by degree measurements")
	// DegreeCounterexamples counts counterexample valuations seen by
	// degree measurements.
	DegreeCounterexamples = NewCounter("relcomp_degree_counterexamples_total",
		"counterexample valuations seen by degree measurements")
)

// The serving-layer metric set (package internal/server / cmd/relserve).
// Declared here with the engine metrics so every relcomp exposition
// name lives in one place.
var (
	// ServeRequests counts HTTP check requests by endpoint (rcdp, rcqp,
	// bounded, catalog), admitted or not.
	ServeRequests = NewCounterVec("relserve_requests_total",
		"completeness-service requests received", "endpoint")
	// ServeRejections counts requests refused by admission control, by
	// reason (queue-full, draining).
	ServeRejections = NewCounterVec("relserve_rejected_total",
		"completeness-service requests rejected by admission control", "reason")
	// ServeVerdicts counts served check responses by verdict string.
	ServeVerdicts = NewCounterVec("relserve_verdicts_total",
		"completeness-service check responses by verdict", "verdict")
	// ServeInflight gauges requests admitted and not yet answered
	// (queued plus executing).
	ServeInflight = NewGauge("relserve_inflight_requests",
		"admitted completeness-service requests in flight")
	// ServeSeconds is the admission-to-response latency histogram of
	// admitted check requests (queue wait included).
	ServeSeconds = NewHistogram("relserve_request_seconds",
		"completeness-service request latency", DefBuckets)
	// ServeQueryCache counts compiled-query cache lookups of the
	// serving layer by result (hit, miss).
	ServeQueryCache = NewCounterVec("relserve_query_cache_total",
		"serving-layer compiled-query cache lookups", "result")
	// ServeQueueOccupancy gauges admitted requests waiting for a worker
	// slot (executing requests excluded): rising occupancy is the
	// leading saturation indicator, visible before 429s start.
	ServeQueueOccupancy = NewGauge("relserve_queue_occupancy",
		"admitted completeness-service requests waiting for a worker slot")
	// RouteRequests counts router-mode forwards by backend.
	RouteRequests = NewCounterVec("relserve_route_requests_total",
		"router-mode requests forwarded, by backend", "backend")
	// RouteRetries counts router-mode failovers a backend received
	// because an earlier ring candidate was ejected or failed.
	RouteRetries = NewCounterVec("relserve_route_retries_total",
		"router-mode failovers received from ejected or failing peers, by backend", "backend")
	// RouteFailures counts router-mode forwards that failed on
	// connection error, by backend.
	RouteFailures = NewCounterVec("relserve_route_failures_total",
		"router-mode forwards failed on connection error, by backend", "backend")
	// RouteEjections counts backends ejected from the routing rotation
	// after a connection failure, by backend.
	RouteEjections = NewCounterVec("relserve_route_ejections_total",
		"router-mode backends ejected from the routing rotation, by backend", "backend")
)
