package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	Evals.Inc() // ensure at least one nonzero engine counter
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE relcomp_cq_evals_total counter",
		"# TYPE relcomp_core_check_seconds histogram",
		"relcomp_core_check_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHandlerExpvar(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	rc, ok := vars["relcomp"].(map[string]any)
	if !ok {
		t.Fatalf("expvar missing relcomp snapshot: %v", vars["relcomp"])
	}
	if _, ok := rc["relcomp_cq_evals_total"]; !ok {
		t.Fatal("snapshot missing engine counter")
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestServe(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "relcomp_core_checks_total") {
		t.Fatal("served /metrics missing engine metrics")
	}
}

func TestHandlerHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
			t.Fatalf("%s = %d %q, want 200 ok", path, resp.StatusCode, body)
		}
	}
}

func TestHandlerReadyzProbe(t *testing.T) {
	var ready atomic.Bool
	prev := SetReady(ready.Load)
	defer SetReady(prev)

	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "draining" {
		t.Fatalf("/readyz while not ready = %d %q, want 503 draining", resp.StatusCode, body)
	}
	// /healthz stays green regardless of readiness.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while not ready = %d, want 200", resp.StatusCode)
	}

	ready.Store(true)
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after ready = %d, want 200", resp.StatusCode)
	}
}
