package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Tracer emits structured search events as JSON Lines: one object per
// line with a monotone sequence number, an event name and a flat field
// object. Field maps are marshaled by encoding/json, which sorts keys,
// so a trace of a deterministic (Workers=1, Timings off) run is
// byte-reproducible — the tracer golden test relies on this.
//
// The event vocabulary emitted by the engines:
//
//	check_start    check (rcdp|rcqp|bounded-rcdp|bounded-rcqp), workers
//	disjunct_done  check=rcdp: disjunct index, valuations tried, witness?
//	tableau_build  a compiled-query cache miss (query name)
//	pdm_build      a master-side projection p(Dm) cache miss (relation)
//	gate_trip      a governance gate tripped (reason)
//	pool_run       a parallel fan-out (tasks, workers)
//	check_done     verdict, reason, valuations, join_rows, tuples
//	               (+ elapsed_ns when Timings is on)
//
// All methods are safe for concurrent use; events from concurrent
// workers interleave at line granularity.
type Tracer struct {
	// Timings includes wall-clock fields (elapsed_ns) in events. Off,
	// the stream is deterministic for sequential runs; the CLIs turn it
	// on.
	Timings bool

	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
}

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Emit writes one event. Nil-safe: a nil tracer drops the event. The
// fields map must not contain "seq" or "ev" (they are reserved and
// would be overwritten).
func (t *Tracer) Emit(ev string, fields map[string]any) {
	if t == nil {
		return
	}
	if fields == nil {
		fields = map[string]any{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.seq++
	fields["seq"] = t.seq
	fields["ev"] = ev
	line, err := json.Marshal(fields)
	if err != nil {
		t.err = err
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = err
	}
}

// Err returns the first write or marshal error, after which the tracer
// drops all events.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// current is the process-global tracer; nil when tracing is off.
var current atomic.Pointer[Tracer]

// SetTracer installs t as the process-global tracer (nil turns tracing
// off) and returns the previous one.
func SetTracer(t *Tracer) *Tracer {
	prev := current.Load()
	current.Store(t)
	return prev
}

// CurrentTracer returns the installed tracer, or nil.
func CurrentTracer() *Tracer { return current.Load() }

// Tracing reports whether a tracer is installed. Call sites guard
// event-field construction with it so the disabled path allocates
// nothing.
func Tracing() bool { return current.Load() != nil }

// Emit forwards one event to the installed tracer, if any. Callers on
// warm paths should guard with Tracing() before building the fields
// map.
func Emit(ev string, fields map[string]any) { current.Load().Emit(ev, fields) }
