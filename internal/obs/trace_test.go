package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTracerGolden(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	tr.Emit("check_start", map[string]any{"check": "rcdp", "workers": 1})
	tr.Emit("disjunct_done", map[string]any{"disjunct": 0, "valuations": 3, "witness": false})
	tr.Emit("check_done", nil)
	want := `{"check":"rcdp","ev":"check_start","seq":1,"workers":1}
{"disjunct":0,"ev":"disjunct_done","seq":2,"valuations":3,"witness":false}
{"ev":"check_done","seq":3}
`
	if got := b.String(); got != want {
		t.Fatalf("trace:\n%s\nwant:\n%s", got, want)
	}
	if tr.Err() != nil {
		t.Fatalf("Err = %v", tr.Err())
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("ev", nil) // must not panic
	if tr.Err() != nil {
		t.Fatal("nil tracer reported an error")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestTracerErrorLatches(t *testing.T) {
	fw := &failWriter{n: 1}
	tr := NewTracer(fw)
	tr.Emit("ok", nil)
	tr.Emit("fails", nil)
	tr.Emit("dropped", nil)
	if tr.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if fw.n != 0 {
		t.Fatal("writer state wrong")
	}
}

func TestGlobalTracer(t *testing.T) {
	if Tracing() {
		t.Fatal("tracing unexpectedly on at test start")
	}
	Emit("dropped", nil) // no tracer installed: must be a no-op

	var b strings.Builder
	tr := NewTracer(&b)
	prev := SetTracer(tr)
	defer SetTracer(prev)
	if !Tracing() || CurrentTracer() != tr {
		t.Fatal("SetTracer did not install")
	}
	Emit("hello", map[string]any{"x": 1})
	if got := b.String(); got != `{"ev":"hello","seq":1,"x":1}`+"\n" {
		t.Fatalf("global emit wrote %q", got)
	}
	if got := SetTracer(nil); got != tr {
		t.Fatalf("SetTracer returned %v, want the previous tracer", got)
	}
	if Tracing() {
		t.Fatal("tracing still on after SetTracer(nil)")
	}
}

// TestTracerConcurrent checks (under -race) that concurrent emitters
// interleave at line granularity with strictly sequential seq numbers.
func TestTracerConcurrent(t *testing.T) {
	var b syncBuffer
	tr := NewTracer(&b)
	var wg sync.WaitGroup
	const n = 50
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				tr.Emit("e", map[string]any{"i": i})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4*n {
		t.Fatalf("got %d lines, want %d", len(lines), 4*n)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("torn line %q", l)
		}
	}
}

type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
