package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(0)  // no-op
	c.Add(-3) // counters are monotone: negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c.Inc()
	if got := c.Value(); got != 5 {
		t.Fatalf("disabled Inc applied: Value = %d, want 5", got)
	}
}

func TestGaugeAppliesWhileDisabled(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Add(1)
	prev := SetEnabled(false)
	g.Add(-1) // paired decrement must land even while disabled
	SetEnabled(prev)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value = %d, want 0", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("Set: Value = %d, want 7", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_vec_total", "help", "kind")
	v.Inc("a")
	v.Add("b", 3)
	if v.Value("a") != 1 || v.Value("b") != 3 || v.Value("missing") != 0 {
		t.Fatalf("values: a=%d b=%d missing=%d", v.Value("a"), v.Value("b"), v.Value("missing"))
	}
	snap := v.snapshot().(map[string]int64)
	if len(snap) != 2 || snap["a"] != 1 || snap["b"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; got != want {
		t.Fatalf("Sum = %g, want %g", got, want)
	}
	// Cumulative le-semantics: 0.05 and 0.1 land in le="0.1" (bounds are
	// inclusive), 0.5 adds to le="1", 2 to le="10", 100 only to +Inf.
	cum := h.cumulative()
	want := []int64{2, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
	if cum[len(cum)-1] != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", cum[len(cum)-1], h.Count())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "help")
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aaa_total", "counts things")
	c.Add(2)
	g := r.Gauge("bbb_gauge", "gauges things")
	g.Set(-4)
	v := r.CounterVec("ccc_total", "labeled", "kind")
	v.Inc("z")
	v.Inc("a")
	h := r.Histogram("ddd_seconds", "latency", []float64{0.25, 10})
	h.Observe(0.2)

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP aaa_total counts things
# TYPE aaa_total counter
aaa_total 2
# HELP bbb_gauge gauges things
# TYPE bbb_gauge gauge
bbb_gauge -4
# HELP ccc_total labeled
# TYPE ccc_total counter
ccc_total{kind="a"} 1
ccc_total{kind="z"} 1
# HELP ddd_seconds latency
# TYPE ddd_seconds histogram
ddd_seconds_bucket{le="0.25"} 1
ddd_seconds_bucket{le="10"} 1
ddd_seconds_bucket{le="+Inf"} 1
ddd_seconds_sum 0.2
ddd_seconds_count 1
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "h").Add(3)
	r.Gauge("two_gauge", "h").Set(9)
	snap := r.Snapshot()
	if snap["one_total"].(int64) != 3 || snap["two_gauge"].(int64) != 9 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{
		0.0001: "0.0001",
		0.25:   "0.25",
		1:      "1",
		10:     "10",
	}
	for in, want := range cases {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestConcurrentWriters hammers every instrument kind from parallel
// goroutines; run under -race it checks the lock-free paths, and the
// final values check that no increment is lost.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_counter_total", "h")
	g := r.Gauge("conc_gauge", "h")
	v := r.CounterVec("conc_vec_total", "h", "worker")
	h := r.Histogram("conc_seconds", "h", []float64{0.5})

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w%2)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				v.Inc(label)
				h.Observe(0.25)
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d", c.Value(), total)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if got := v.Value("w0") + v.Value("w1"); got != total {
		t.Errorf("vec total = %d, want %d", got, total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	if h.Sum() != 0.25*total {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), 0.25*float64(total))
	}
}

// TestSnapshotUnderLoad takes snapshots while writers run: counter reads
// must be monotone between snapshots and the histogram +Inf bucket must
// equal its count within every single read pass.
func TestSnapshotUnderLoad(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("load_counter_total", "h")
	h := r.Histogram("load_seconds", "h", []float64{1})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.5)
				}
			}
		}()
	}
	var last int64
	for i := 0; i < 100; i++ {
		snap := r.Snapshot()
		cur := snap["load_counter_total"].(int64)
		if cur < last {
			t.Fatalf("counter went backwards: %d -> %d", last, cur)
		}
		last = cur
		hs := snap["load_seconds"].(map[string]any)
		buckets := hs["buckets"].(map[string]int64)
		// +Inf is cumulative over all buckets; it may lag or lead count
		// (separate atomics), but never exceeds a later count read.
		if inf := buckets["+Inf"]; inf < 0 {
			t.Fatalf("negative bucket: %d", inf)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEnginesMetricsRegistered(t *testing.T) {
	// The engine metric set must live in the Default registry under the
	// names the exposition surface documents.
	for _, name := range []string{
		"relcomp_cq_evals_total",
		"relcomp_cq_join_rows_total",
		"relcomp_cq_index_probes_total",
		"relcomp_cq_full_scans_total",
		"relcomp_cq_tableau_builds_total",
		"relcomp_cq_compiled_lookups_total",
		"relcomp_cc_pdm_cache_hits_total",
		"relcomp_cc_pdm_cache_misses_total",
		"relcomp_relation_index_builds_total",
		"relcomp_core_valuations_total",
		"relcomp_core_pool_tasks_total",
		"relcomp_core_pool_busy_nanoseconds_total",
		"relcomp_core_pool_workers",
		"relcomp_core_checks_total",
		"relcomp_core_verdicts_total",
		"relcomp_core_exhaustions_total",
		"relcomp_gate_trips_total",
		"relcomp_core_check_seconds",
	} {
		if Default.get(name) == nil {
			t.Errorf("metric %s not registered", name)
		}
	}
}
