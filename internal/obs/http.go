package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// publishOnce guards the expvar publication of the Default registry:
// expvar.Publish panics on duplicate names, and Handler may be called
// more than once (tests, multiple servers).
var publishOnce sync.Once

// readiness holds the process-wide readiness probe consulted by
// /readyz. nil (the default) means always ready.
var readiness atomic.Pointer[func() bool]

// SetReady installs the readiness probe behind the /readyz endpoint of
// Handler and returns the previous probe. A long-running server (see
// cmd/relserve) points it at its drain state so load balancers stop
// routing to an instance that is shutting down; nil restores the
// always-ready default. /healthz is intentionally not configurable: it
// reports process liveness only.
func SetReady(probe func() bool) func() bool {
	var prev *func() bool
	if probe == nil {
		prev = readiness.Swap(nil)
	} else {
		prev = readiness.Swap(&probe)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// Ready reports the current readiness probe's answer (true when no
// probe is installed).
func Ready() bool {
	p := readiness.Load()
	return p == nil || (*p)()
}

// Handler returns the observability HTTP surface:
//
//	/metrics            Prometheus text exposition of the Default registry
//	/debug/vars         expvar JSON (registry snapshot under "relcomp",
//	                    plus the standard cmdline/memstats)
//	/debug/pprof/...    net/http/pprof profiles
//	/healthz            process liveness (always 200 "ok")
//	/readyz             readiness: 200 "ok", or 503 "draining" while the
//	                    SetReady probe reports not ready
//
// The handler is stateless; the registry is read at request time, so a
// long-running check shows live counters.
func Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("relcomp", expvar.Func(func() any { return Default.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		Default.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", HealthzHandler)
	mux.HandleFunc("/readyz", ReadyzHandler)
	return mux
}

// HealthzHandler answers process-liveness probes: 200 "ok" for as long
// as the process can serve HTTP at all.
func HealthzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// ReadyzHandler answers readiness probes against the SetReady probe:
// 200 "ok" when ready, 503 "draining" when not.
func ReadyzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// server runs until the process exits — the CLIs expose it for the
// duration of a check.
func Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
