package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// publishOnce guards the expvar publication of the Default registry:
// expvar.Publish panics on duplicate names, and Handler may be called
// more than once (tests, multiple servers).
var publishOnce sync.Once

// Handler returns the observability HTTP surface:
//
//	/metrics            Prometheus text exposition of the Default registry
//	/debug/vars         expvar JSON (registry snapshot under "relcomp",
//	                    plus the standard cmdline/memstats)
//	/debug/pprof/...    net/http/pprof profiles
//
// The handler is stateless; the registry is read at request time, so a
// long-running check shows live counters.
func Handler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("relcomp", expvar.Func(func() any { return Default.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		Default.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// server runs until the process exits — the CLIs expose it for the
// duration of a check.
func Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
