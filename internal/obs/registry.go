package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is the common surface of every registered instrument: a stable
// name, a help line, a JSON-friendly snapshot value and a Prometheus
// text-exposition block.
type metric interface {
	name() string
	help() string
	snapshot() any
	promWrite(b *strings.Builder)
}

// Registry is a concurrent collection of named instruments. Lookups and
// registrations take a mutex; the instruments themselves are lock-free,
// so hot paths never touch the registry — they hold *Counter (etc.)
// pointers obtained once at init.
type Registry struct {
	mu sync.RWMutex
	m  map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]metric)} }

// register adds m under its name, panicking on duplicates: the metric
// set is declared statically, so a clash is a programming error.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[m.name()]; dup {
		panic("obs: duplicate metric " + m.name())
	}
	r.m[m.name()] = m
}

// names returns the registered metric names in sorted order.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// get returns the named metric, or nil.
func (r *Registry) get(name string) metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[name]
}

// Snapshot returns a point-in-time view of every instrument: counter
// and gauge values as int64, counter vectors as label→value maps,
// histograms as {buckets, sum, count}. Individual reads are atomic;
// the snapshot as a whole is not a consistent cut across instruments
// (concurrent writers may land between reads), but every counter value
// read is monotone with respect to earlier snapshots.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, n := range r.names() {
		out[n] = r.get(n).snapshot()
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(b *strings.Builder) {
	for _, n := range r.names() {
		r.get(n).promWrite(b)
	}
}

// promHeader writes the # HELP / # TYPE preamble of one metric.
func promHeader(b *strings.Builder, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(help)
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

// ---------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------

// Counter is a monotone int64 counter. All methods are safe for
// concurrent use; writes are a single atomic add guarded by the global
// enabled flag.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// NewCounter creates a counter and registers it in the Default
// registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// Counter creates a counter registered in r.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nm: name, hp: help}
	r.register(c)
	return c
}

// Add increments the counter by n (no-op when collection is disabled
// or n <= 0 — counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 && enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) name() string  { return c.nm }
func (c *Counter) help() string  { return c.hp }
func (c *Counter) snapshot() any { return c.Value() }

func (c *Counter) promWrite(b *strings.Builder) {
	promHeader(b, c.nm, c.hp, "counter")
	fmt.Fprintf(b, "%s %d\n", c.nm, c.Value())
}

// ---------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------

// Gauge is an int64 value that can go up and down (e.g. live worker
// count). Safe for concurrent use.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// NewGauge creates a gauge and registers it in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// Gauge creates a gauge registered in r.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nm: name, hp: help}
	r.register(g)
	return g
}

// Add moves the gauge by n (possibly negative). Unlike counters,
// gauges track live state (worker counts), so paired Add(+1)/Add(-1)
// calls apply even while collection is disabled — otherwise a toggle
// mid-flight would leave the gauge skewed forever.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set assigns the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string  { return g.nm }
func (g *Gauge) help() string  { return g.hp }
func (g *Gauge) snapshot() any { return g.Value() }

func (g *Gauge) promWrite(b *strings.Builder) {
	promHeader(b, g.nm, g.hp, "gauge")
	fmt.Fprintf(b, "%s %d\n", g.nm, g.Value())
}

// ---------------------------------------------------------------------
// CounterVec
// ---------------------------------------------------------------------

// CounterVec is a family of counters distinguished by one label (e.g.
// verdicts by outcome). Children are created on first use; With is a
// read-locked map lookup, so callers on warm paths should cache the
// child.
type CounterVec struct {
	nm, hp, label string

	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// NewCounterVec creates a one-label counter family and registers it in
// the Default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	return Default.CounterVec(name, help, label)
}

// CounterVec creates a one-label counter family registered in r.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nm: name, hp: help, label: label, m: make(map[string]*atomic.Int64)}
	r.register(v)
	return v
}

// Add increments the child for the given label value by n.
func (v *CounterVec) Add(value string, n int64) {
	if n <= 0 || !enabled.Load() {
		return
	}
	v.child(value).Add(n)
}

// Inc increments the child for the given label value by one.
func (v *CounterVec) Inc(value string) { v.Add(value, 1) }

// Value returns the child count for the given label value (0 when the
// child has never been incremented).
func (v *CounterVec) Value(value string) int64 {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Load()
}

func (v *CounterVec) child(value string) *atomic.Int64 {
	v.mu.RLock()
	c := v.m[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[value]; c == nil {
		c = new(atomic.Int64)
		v.m[value] = c
	}
	return c
}

// values returns the label values in sorted order.
func (v *CounterVec) values() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for k := range v.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (v *CounterVec) name() string { return v.nm }
func (v *CounterVec) help() string { return v.hp }

func (v *CounterVec) snapshot() any {
	out := make(map[string]int64)
	for _, val := range v.values() {
		out[val] = v.Value(val)
	}
	return out
}

func (v *CounterVec) promWrite(b *strings.Builder) {
	promHeader(b, v.nm, v.hp, "counter")
	for _, val := range v.values() {
		fmt.Fprintf(b, "%s{%s=%q} %d\n", v.nm, v.label, val, v.Value(val))
	}
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond CQ evaluations up to the multi-second hardness-
// reduction sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a cumulative bucketed distribution (Prometheus
// histogram semantics): observation v lands in every bucket whose
// upper bound is >= v, plus the implicit +Inf bucket. Bucket counts
// and the total count are atomic; the sum is maintained with a
// compare-and-swap loop over the float bits.
type Histogram struct {
	nm, hp string
	bounds []float64 // sorted upper bounds, excluding +Inf

	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

// NewHistogram creates a histogram with the given upper bounds
// (sorted ascending; +Inf is implicit) and registers it in the Default
// registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return Default.Histogram(name, help, bounds)
}

// Histogram creates a histogram registered in r.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{nm: name, hp: help, bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) name() string { return h.nm }
func (h *Histogram) help() string { return h.hp }

// cumulative returns the per-bucket cumulative counts (Prometheus
// "le" semantics), ending with the +Inf bucket.
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.buckets))
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		out[i] = acc
	}
	return out
}

func (h *Histogram) snapshot() any {
	cum := h.cumulative()
	buckets := make(map[string]int64, len(cum))
	for i, bound := range h.bounds {
		buckets[formatBound(bound)] = cum[i]
	}
	buckets["+Inf"] = cum[len(cum)-1]
	return map[string]any{"buckets": buckets, "sum": h.Sum(), "count": h.Count()}
}

func (h *Histogram) promWrite(b *strings.Builder) {
	promHeader(b, h.nm, h.hp, "histogram")
	cum := h.cumulative()
	for i, bound := range h.bounds {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.nm, formatBound(bound), cum[i])
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum[len(cum)-1])
	fmt.Fprintf(b, "%s_sum %g\n", h.nm, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", h.nm, h.Count())
}

// formatBound renders a bucket bound the way Prometheus clients do
// (shortest representation that round-trips).
func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
