package textq

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// Native fuzz targets for the textq surface: every parser must be
// panic-free on arbitrary input, and whenever a parse succeeds and the
// corresponding formatter can represent the result, formatting and
// reparsing must reach a fixed point (parse ∘ format = identity on the
// formatted text). The seed corpus mirrors the grammar constructs the
// examples and unit tests exercise.

// fuzzSchemas is the fixed schema context for the query, constraint and
// database targets (fuzzing the context too would make almost every
// input fail at the schema stage instead of exercising the layer under
// test).
const fuzzSchemas = `
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
rel Manage(eid1, eid2)
rel F(p: {0, 1})
`

func fuzzContext(t *testing.T) map[string]*relation.Schema {
	t.Helper()
	ss, err := ParseSchemas(fuzzSchemas)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// representableValue reports whether a constant survives the grammar's
// quoting rules (no line breaks, not both quote characters).
func representableValue(s string) bool {
	if strings.ContainsRune(s, '\n') {
		return false
	}
	return !(strings.ContainsRune(s, '\'') && strings.ContainsRune(s, '"'))
}

// representable reports whether every value of d is representable.
func representable(d *relation.Database) bool {
	for _, rel := range d.Relations() {
		for _, tup := range d.Instance(rel).Tuples() {
			for _, v := range tup {
				if !representableValue(string(v)) {
					return false
				}
			}
		}
	}
	return true
}

func FuzzParseSchemas(f *testing.F) {
	f.Add(fuzzSchemas)
	f.Add("rel R(a, b)\n")
	f.Add("rel R(a: {x, y}, b)\nrel S(c)\n")
	f.Add("rel R(a: {\"v 1\", 'v2'})\n")
	f.Add("# comment\nrel R(a)")
	f.Add("relx R(a)")
	f.Fuzz(func(t *testing.T, src string) {
		ss, err := ParseSchemas(src)
		if err != nil {
			return
		}
		// Formatted schemas must reparse, and formatting must be a fixed
		// point — unless a finite-domain value is unrepresentable.
		for _, s := range ss {
			for _, a := range s.Attrs {
				for _, v := range a.Domain.Values {
					if !representableValue(string(v)) {
						return
					}
				}
			}
		}
		out := FormatSchemas(ss)
		ss2, err := ParseSchemas(out)
		if err != nil {
			t.Fatalf("formatted schemas do not reparse: %v\n%s", err, out)
		}
		if out2 := FormatSchemas(ss2); out2 != out {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", out, out2)
		}
	})
}

func FuzzParseDatabase(f *testing.F) {
	f.Add("Supt(e0, sales, c1).\nF(1).\n")
	f.Add("Cust(c1, Ann, 01, 908, 5550001).\n")
	f.Add(`Supt(e0, sales, "c 2").` + "\n")
	f.Add("Supt(e0, sales, c1)")
	f.Add("Nope(a).")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, src string) {
		ss, err := ParseSchemas(fuzzSchemas)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ParseDatabase(src, ss)
		if err != nil {
			return
		}
		if !representable(d) {
			return
		}
		out := FormatDatabase(d)
		d2, err := ParseDatabase(out, ss)
		if err != nil {
			t.Fatalf("formatted database does not reparse: %v\n%s", err, out)
		}
		if !d.Equal(d2) {
			t.Fatalf("database changed across round trip:\n%v\nvs\n%v", d, d2)
		}
	})
}

// FuzzMutationBatch drives the pipeline behind the catalog mutation
// endpoints: facts text parses into per-relation tuple lists, applying
// them as an insert batch to an empty database over the same schemas
// must rebuild exactly the parsed database (reapplying must be a
// no-op — tuple-level idempotence is what makes mutation replay safe),
// the rebuilt database must round-trip through the formatter, and a
// batch that inserts and deletes the same tuples must drain back to
// empty (inserts apply before deletes).
func FuzzMutationBatch(f *testing.F) {
	f.Add("Supt(e0, sales, c1).\nF(1).\n")
	f.Add("Cust(c1, Ann, 01, 908, 5550001).\nCust(c1, Ann, 01, 908, 5550001).\n")
	f.Add("Supt(e0, sales, c1). Supt(e0, sales, c2). Manage(e1, e0).")
	f.Add("# comment\nF(0).\n")
	f.Add("Nope(a).")
	f.Add("F(2).")
	f.Fuzz(func(t *testing.T, src string) {
		ss := fuzzContext(t)
		d, err := ParseFacts(src, ss)
		if err != nil {
			return
		}
		ins := make(map[string][]relation.Tuple)
		for _, rel := range d.Relations() {
			if ts := d.Instance(rel).Tuples(); len(ts) > 0 {
				ins[rel] = append([]relation.Tuple(nil), ts...)
			}
		}
		fresh := func() *relation.Database {
			db := relation.NewDatabase()
			for _, rel := range d.Relations() {
				db.AddSchema(d.Schema(rel))
			}
			return db
		}

		db := fresh()
		n, del, err := db.ApplyBatch(relation.Batch{Inserts: ins})
		if err != nil {
			t.Fatalf("insert batch of parsed facts rejected: %v\n%s", err, src)
		}
		if n != d.TupleCount() || del != 0 {
			t.Fatalf("insert batch applied %d/%d rows, deleted %d", n, d.TupleCount(), del)
		}
		if !db.Equal(d) {
			t.Fatalf("insert batch does not rebuild the parsed database:\n%v\nvs\n%v", db, d)
		}
		if n, del, err = db.ApplyBatch(relation.Batch{Inserts: ins}); err != nil || n != 0 || del != 0 {
			t.Fatalf("reapplied insert batch not a no-op: ins %d del %d err %v", n, del, err)
		}
		if representable(db) {
			out := FormatDatabase(db)
			d2, err := ParseFacts(out, ss)
			if err != nil {
				t.Fatalf("rebuilt database does not reparse: %v\n%s", err, out)
			}
			if !d2.Equal(db) {
				t.Fatalf("rebuilt database changed across round trip:\n%v\nvs\n%v", db, d2)
			}
		}
		if _, del, err = db.ApplyBatch(relation.Batch{Deletes: ins}); err != nil || del != d.TupleCount() {
			t.Fatalf("delete batch removed %d/%d rows, err %v", del, d.TupleCount(), err)
		}
		if !db.IsEmpty() {
			t.Fatalf("database not empty after deleting every inserted tuple:\n%v", db)
		}
		if _, del, err = db.ApplyBatch(relation.Batch{Deletes: ins}); err != nil || del != 0 {
			t.Fatalf("absent deletes not a no-op: del %d err %v", del, err)
		}

		// Insert and delete in one batch: inserts apply first, so the
		// self-cancelling batch must drain to empty.
		db2 := fresh()
		if _, _, err := db2.ApplyBatch(relation.Batch{Inserts: ins, Deletes: ins}); err != nil {
			t.Fatalf("self-cancelling batch rejected: %v", err)
		}
		if !db2.IsEmpty() {
			t.Fatalf("self-cancelling batch left tuples:\n%v", db2)
		}
	})
}

func FuzzParseQuery(f *testing.F) {
	f.Add("Q(C) :- Supt(E, D, C), E = e0, C != 'c9'")
	f.Add("Q(C) :- Supt(E, D, C), E = e0\nQ(C) :- Supt(E, D, C), E = e1\n")
	f.Add("output Above\nUp(X, Y) :- Manage(X, Y)\nUp(X, Y) :- Manage(X, Z), Up(Z, Y)\nAbove(X) :- Up(X, e0)\n")
	f.Add("Q() :- F(1)")
	f.Add("Q(X) :- Manage(X, X)")
	f.Add("Q(X) :- ")
	f.Fuzz(func(t *testing.T, src string) {
		ss := fuzzContext(t)
		q, err := ParseQuery(src, ss)
		if err != nil {
			return
		}
		out, err := FormatQuery(q)
		if err != nil {
			return // unrepresentable constants
		}
		q2, err := ParseQuery(out, ss)
		if err != nil {
			t.Fatalf("formatted query does not reparse: %v\n%s", err, out)
		}
		if q2.Lang() != q.Lang() || q2.Arity() != q.Arity() {
			t.Fatalf("query shape changed: %v/%d vs %v/%d\n%s", q.Lang(), q.Arity(), q2.Lang(), q2.Arity(), out)
		}
		out2, err := FormatQuery(q2)
		if err != nil {
			t.Fatalf("reformat failed: %v\n%s", err, out)
		}
		if out2 != out {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", out, out2)
		}
	})
}

func FuzzParseConstraints(f *testing.F) {
	f.Add("cc phi0(C) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0]\n")
	f.Add("cc phi1() :- Supt(E, D1, C1), Supt(E, D2, C2), C1 != C2 <= empty\n")
	f.Add("cc p(C, N) :- Cust(C, N, CC, A, P) <= DCust[0, 1]\n")
	f.Add("cc p(C) :- Supt(E, D, C)")
	f.Fuzz(func(t *testing.T, src string) {
		ss := fuzzContext(t)
		dm, err := ParseDatabase("DCust(c1, Ann, 908, 5550001).",
			map[string]*relation.Schema{
				"DCust": relation.NewSchema("DCust",
					relation.Attr("cid"), relation.Attr("name"), relation.Attr("ac"), relation.Attr("phn")),
			})
		if err != nil {
			t.Fatal(err)
		}
		set, err := ParseConstraints(src, ss, dm)
		if err != nil {
			return
		}
		out, err := FormatConstraints(set)
		if err != nil {
			return // unrepresentable constants
		}
		set2, err := ParseConstraints(out, ss, dm)
		if err != nil {
			t.Fatalf("formatted constraints do not reparse: %v\n%s", err, out)
		}
		if set2.Len() != set.Len() {
			t.Fatalf("constraint count changed: %d vs %d\n%s", set.Len(), set2.Len(), out)
		}
		out2, err := FormatConstraints(set2)
		if err != nil {
			t.Fatalf("reformat failed: %v\n%s", err, out)
		}
		if out2 != out {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", out, out2)
		}
	})
}
