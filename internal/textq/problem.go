package textq

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// ProblemSource bundles the textual inputs of one completeness-checking
// problem, all in this package's grammar. Empty optional fields default
// to the natural empty object (no master schemas, empty databases, no
// constraints). It is the shared input shape of the relcheck CLI and
// the relserve HTTP service.
type ProblemSource struct {
	// Schemas declares the database relations R (required).
	Schemas string
	// MasterSchemas declares the master relations Rm (optional).
	MasterSchemas string
	// DB lists the facts of the partially closed database D (optional;
	// RCQP needs no D).
	DB string
	// Master lists the master data facts Dm (optional).
	Master string
	// Constraints lists the containment constraints V (optional).
	Constraints string
	// Query is the query Q (required).
	Query string
}

// Problem is a fully parsed completeness-checking problem.
type Problem struct {
	Schemas       map[string]*relation.Schema
	MasterSchemas map[string]*relation.Schema
	D             *relation.Database
	Dm            *relation.Database
	V             *cc.Set
	Q             qlang.Query
}

// ParseProblem parses every part of src, wiring the parts together the
// way the deciders expect: facts are checked against their schema set,
// constraints against the database schemas and validated against Dm.
// Errors name the offending part. The Schemas and Query parts are
// required; ParseQuery of the query part may be skipped by callers that
// cache parsed queries (see ParseProblemData).
func ParseProblem(src ProblemSource) (*Problem, error) {
	p, err := ParseProblemData(src)
	if err != nil {
		return nil, err
	}
	if src.Query == "" {
		return nil, fmt.Errorf("textq: query: missing")
	}
	q, err := ParseQuery(src.Query, p.Schemas)
	if err != nil {
		return nil, fmt.Errorf("textq: query: %w", err)
	}
	p.Q = q
	return p, nil
}

// ParseProblemData parses the data parts of src — schemas, databases
// and constraints — leaving Q nil. Serving layers that memoize parsed
// queries per catalog use it for the per-request remainder.
func ParseProblemData(src ProblemSource) (*Problem, error) {
	if src.Schemas == "" {
		return nil, fmt.Errorf("textq: schemas: missing")
	}
	schemas, err := ParseSchemas(src.Schemas)
	if err != nil {
		return nil, fmt.Errorf("textq: schemas: %w", err)
	}
	mSchemas := map[string]*relation.Schema{}
	if src.MasterSchemas != "" {
		if mSchemas, err = ParseSchemas(src.MasterSchemas); err != nil {
			return nil, fmt.Errorf("textq: master schemas: %w", err)
		}
	}
	d, err := ParseFacts(src.DB, schemas)
	if err != nil {
		return nil, fmt.Errorf("textq: db: %w", err)
	}
	dm, err := ParseFacts(src.Master, mSchemas)
	if err != nil {
		return nil, fmt.Errorf("textq: master: %w", err)
	}
	vset := cc.NewSet()
	if src.Constraints != "" {
		if vset, err = ParseConstraints(src.Constraints, schemas, dm); err != nil {
			return nil, fmt.Errorf("textq: constraints: %w", err)
		}
	}
	return &Problem{Schemas: schemas, MasterSchemas: mSchemas, D: d, Dm: dm, V: vset}, nil
}

// ParseFacts parses a fact list against schemas; an empty source
// yields an empty database over the schema set (ParseDatabase, by
// contrast, requires at least the grammar's EOF on a real source).
func ParseFacts(src string, schemas map[string]*relation.Schema) (*relation.Database, error) {
	if src == "" {
		ss := make([]*relation.Schema, 0, len(schemas))
		for _, s := range schemas {
			ss = append(ss, s)
		}
		return relation.NewDatabase(ss...), nil
	}
	return ParseDatabase(src, schemas)
}
