package textq_test

import (
	"fmt"

	"repro/internal/textq"
)

// ExampleParseQuery parses the text form of a conjunctive query and
// prints it back through FormatQuery, showing the round-trip grammar
// the relcheck/relbench CLIs accept.
func ExampleParseQuery() {
	schemas, err := textq.ParseSchemas(`rel Cust(id, area: {"908", "212"})`)
	if err != nil {
		panic(err)
	}
	q, err := textq.ParseQuery(`Q(I) :- Cust(I, A), A = "908"`, schemas)
	if err != nil {
		panic(err)
	}
	out, err := textq.FormatQuery(q)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// Q(I) :- Cust(I, A), A = '908'
}

// ExampleParseDatabase parses dot-terminated fact lines against a
// schema and evaluates a query over the result.
func ExampleParseDatabase() {
	schemas, err := textq.ParseSchemas(`rel Cust(id, area: {"908", "212"})`)
	if err != nil {
		panic(err)
	}
	d, err := textq.ParseDatabase(`
		Cust(c1, "908").
		Cust(c2, "212").
	`, schemas)
	if err != nil {
		panic(err)
	}
	fmt.Print(textq.FormatDatabase(d))
	// Output:
	// Cust(c1, 908).
	// Cust(c2, 212).
}

// ExampleParseConstraints parses a containment constraint whose right
// side projects columns of a master relation, the form used throughout
// the testdata suites.
func ExampleParseConstraints() {
	schemas, err := textq.ParseSchemas(`
		rel Cust(id, area: {"908", "212"})
		rel MCust(id, area: {"908", "212"})
	`)
	if err != nil {
		panic(err)
	}
	dm, err := textq.ParseDatabase(`MCust(c1, "908").`, schemas)
	if err != nil {
		panic(err)
	}
	vset, err := textq.ParseConstraints(
		`cc phi(I, A) :- Cust(I, A) <= MCust[0, 1]`, schemas, dm)
	if err != nil {
		panic(err)
	}
	out, err := textq.FormatConstraints(vset)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// cc phi(I, A) :- Cust(I, A) <= MCust[0, 1]
}
