package textq

import (
	"testing"

	"repro/internal/relation"
)

func TestFormatRoundTrip(t *testing.T) {
	ss := mustSchemas(t)
	src := `
Supt(e0, sales, c1).
Supt(e1, marketing, "c 2").
F(1).
`
	d, err := ParseDatabase(src, ss)
	if err != nil {
		t.Fatal(err)
	}
	// schemas → text → schemas
	ss2, err := ParseSchemas(FormatSchemas(ss))
	if err != nil {
		t.Fatalf("schema round trip: %v\n%s", err, FormatSchemas(ss))
	}
	if len(ss2) != len(ss) {
		t.Fatal("schema count changed")
	}
	for n, s := range ss {
		s2 := ss2[n]
		if s2 == nil || s2.Arity() != s.Arity() {
			t.Fatalf("schema %s lost", n)
		}
		for i := range s.Attrs {
			if !s.Attrs[i].Domain.Equal(s2.Attrs[i].Domain) {
				t.Fatalf("domain of %s.%s changed", n, s.Attrs[i].Name)
			}
		}
	}
	// database → text → database
	d2, err := ParseDatabase(FormatDatabase(d), ss2)
	if err != nil {
		t.Fatalf("db round trip: %v\n%s", err, FormatDatabase(d))
	}
	if !d.Equal(d2) {
		t.Fatalf("database changed:\n%v\nvs\n%v", d, d2)
	}
}

func TestQuoteIfNeeded(t *testing.T) {
	if quoteIfNeeded("abc") != "abc" || quoteIfNeeded("a b") != `"a b"` || quoteIfNeeded("") != `""` {
		t.Fatal("quoting rules wrong")
	}
}

func TestFormatDeterministic(t *testing.T) {
	ss := mustSchemas(t)
	d := relation.NewDatabase(ss["Supt"])
	d.MustAdd("Supt", "b", "x", "y")
	d.MustAdd("Supt", "a", "x", "y")
	if FormatDatabase(d) != FormatDatabase(d.Clone()) {
		t.Fatal("formatting not deterministic")
	}
}
