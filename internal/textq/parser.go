package textq

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// parser is a single-token-lookahead recursive-descent parser.
type parser struct {
	lx  *lexer
	tok token
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("textq: line %d: expected %s, got %s", p.tok.line, what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

// isVarName reports whether an identifier denotes a variable: the
// datalog convention, an initial uppercase letter or underscore.
func isVarName(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return (c >= 'A' && c <= 'Z') || c == '_'
}

// term parses a variable, identifier constant or quoted constant.
func (p *parser) term() (query.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return query.Term{}, err
		}
		if isVarName(name) {
			return query.Var(name), nil
		}
		return query.C(name), nil
	case tokString:
		val := p.tok.text
		if err := p.advance(); err != nil {
			return query.Term{}, err
		}
		return query.C(val), nil
	default:
		return query.Term{}, fmt.Errorf("textq: line %d: expected a term, got %s", p.tok.line, p.tok)
	}
}

// termList parses "( t, t, … )" (possibly empty).
func (p *parser) termList() ([]query.Term, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var out []query.Term
	if p.tok.kind == tokRParen {
		return out, p.advance()
	}
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return out, nil
}

// bodyItem is one parsed body element: either an atom or a condition.
type bodyItem struct {
	atom *query.RelAtom
	cond *query.EqAtom
}

// body parses "item, item, …" until a terminator token (anything that
// cannot start an item).
func (p *parser) body() ([]bodyItem, error) {
	var out []bodyItem
	for {
		item, err := p.oneBodyItem()
		if err != nil {
			return nil, err
		}
		out = append(out, item)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return out, nil
	}
}

func (p *parser) oneBodyItem() (bodyItem, error) {
	// Lookahead: Ident '(' → atom (relation names may be capitalized,
	// so case does not decide); otherwise term (=|!=) term.
	if p.tok.kind == tokIdent {
		name := p.tok.text
		save := *p.lx
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return bodyItem{}, err
		}
		if p.tok.kind == tokLParen {
			args, err := p.termList()
			if err != nil {
				return bodyItem{}, err
			}
			a := query.Atom(name, args...)
			return bodyItem{atom: &a}, nil
		}
		// Not an atom: rewind and parse as a condition term.
		*p.lx = save
		p.tok = saveTok
	}
	l, err := p.term()
	if err != nil {
		return bodyItem{}, err
	}
	var neg bool
	switch p.tok.kind {
	case tokEq:
	case tokNeq:
		neg = true
	default:
		return bodyItem{}, fmt.Errorf("textq: line %d: expected '=' or '!=', got %s", p.tok.line, p.tok)
	}
	if err := p.advance(); err != nil {
		return bodyItem{}, err
	}
	r, err := p.term()
	if err != nil {
		return bodyItem{}, err
	}
	e := query.EqAtom{L: l, R: r, Neg: neg}
	return bodyItem{cond: &e}, nil
}

func splitBody(items []bodyItem) (atoms []query.RelAtom, conds []query.EqAtom) {
	for _, it := range items {
		if it.atom != nil {
			atoms = append(atoms, *it.atom)
		} else {
			conds = append(conds, *it.cond)
		}
	}
	return atoms, conds
}

// ParseSchemas parses "rel Name(attr, attr: {v, v}, …)" declarations.
func ParseSchemas(src string) (map[string]*relation.Schema, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*relation.Schema)
	for p.tok.kind != tokEOF {
		kw, err := p.expect(tokIdent, "'rel'")
		if err != nil {
			return nil, err
		}
		if kw.text != "rel" {
			return nil, fmt.Errorf("textq: line %d: expected 'rel', got %q", kw.line, kw.text)
		}
		name, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var attrs []relation.Attribute
		for {
			an, err := p.expect(tokIdent, "attribute name")
			if err != nil {
				return nil, err
			}
			attr := relation.Attr(an.text)
			if p.tok.kind == tokColon {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokLBrace, "'{'"); err != nil {
					return nil, err
				}
				var vals []relation.Value
				for {
					v, err := p.term()
					if err != nil {
						return nil, err
					}
					if v.IsVar {
						vals = append(vals, relation.Value(v.Name))
					} else {
						vals = append(vals, v.Val)
					}
					if p.tok.kind == tokComma {
						if err := p.advance(); err != nil {
							return nil, err
						}
						continue
					}
					break
				}
				if _, err := p.expect(tokRBrace, "'}'"); err != nil {
					return nil, err
				}
				attr = relation.Attribute{Name: an.text, Domain: relation.FiniteDomain(vals...)}
			}
			attrs = append(attrs, attr)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		s := relation.NewSchema(name.text, attrs...)
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if _, dup := out[name.text]; dup {
			return nil, fmt.Errorf("textq: duplicate schema %s", name.text)
		}
		out[name.text] = s
	}
	return out, nil
}

// ParseDatabase parses fact lines "Name(v, v, …)." over the schemas.
func ParseDatabase(src string, schemas map[string]*relation.Schema) (*relation.Database, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var ss []*relation.Schema
	for _, s := range schemas {
		ss = append(ss, s)
	}
	d := relation.NewDatabase(ss...)
	for p.tok.kind != tokEOF {
		name, err := p.expect(tokIdent, "relation name")
		if err != nil {
			return nil, err
		}
		args, err := p.termList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		tup := make(relation.Tuple, len(args))
		for i, a := range args {
			// Facts carry constants only; identifiers that look like
			// variables are read as constants of the same spelling.
			if a.IsVar {
				tup[i] = relation.Value(a.Name)
			} else {
				tup[i] = a.Val
			}
		}
		if err := d.Add(name.text, tup); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// rule is a parsed "Head(args) :- body" line.
type rule struct {
	head  query.RelAtom
	items []bodyItem
}

func (p *parser) rules(stopAtSubset bool) ([]rule, error) {
	var out []rule
	for p.tok.kind != tokEOF {
		headName, err := p.expect(tokIdent, "rule head")
		if err != nil {
			return nil, err
		}
		headArgs, err := p.termList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokTurnstile, "':-'"); err != nil {
			return nil, err
		}
		items, err := p.body()
		if err != nil {
			return nil, err
		}
		out = append(out, rule{head: query.Atom(headName.text, headArgs...), items: items})
		if stopAtSubset && p.tok.kind == tokSubset {
			return out, nil
		}
	}
	return out, nil
}

// ParseQuery parses one or more CQ rules with the same head predicate
// into a CQ (single rule) or UCQ, or — when the source begins with an
// "output <pred>" directive — a datalog (FP) program. The result is
// validated against the schemas.
func ParseQuery(src string, schemas map[string]*relation.Schema) (qlang.Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokIdent && p.tok.text == "output" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		out, err := p.expect(tokIdent, "output predicate")
		if err != nil {
			return nil, err
		}
		rules, err := p.rules(false)
		if err != nil {
			return nil, err
		}
		prog := datalog.NewProgram("Q", out.text)
		for _, r := range rules {
			var body []datalog.Literal
			for _, it := range r.items {
				if it.atom != nil {
					a := *it.atom
					body = append(body, datalog.Literal{Atom: &a})
				} else {
					e := *it.cond
					body = append(body, datalog.Literal{Cond: &e})
				}
			}
			prog.Rules = append(prog.Rules, datalog.Rule{Head: r.head, Body: body})
		}
		if err := prog.Validate(schemas); err != nil {
			return nil, err
		}
		return qlang.FromFP(prog), nil
	}

	rules, err := p.rules(false)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("textq: no query rules")
	}
	headName := rules[0].head.Rel
	var disjuncts []*cq.CQ
	for i, r := range rules {
		if r.head.Rel != headName {
			return nil, fmt.Errorf("textq: UCQ disjuncts must share the head predicate (%s vs %s)", headName, r.head.Rel)
		}
		atoms, conds := splitBody(r.items)
		disjuncts = append(disjuncts, cq.New(fmt.Sprintf("%s_%d", headName, i+1), r.head.Args, atoms, conds...))
	}
	if len(disjuncts) == 1 {
		q := disjuncts[0]
		q.Name = headName
		if err := q.Validate(schemas); err != nil {
			return nil, err
		}
		return qlang.FromCQ(q), nil
	}
	u := cq.Union(headName, disjuncts...)
	if err := u.Validate(schemas); err != nil {
		return nil, err
	}
	return qlang.FromUCQ(u), nil
}

// ParseConstraints parses containment-constraint lines of the form
//
//	cc name(args) :- body <= Master[col, col]
//	cc name()     :- body <= empty
//
// and validates them against the master data.
func ParseConstraints(src string, schemas map[string]*relation.Schema, dm *relation.Database) (*cc.Set, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	set := cc.NewSet()
	for p.tok.kind != tokEOF {
		kw, err := p.expect(tokIdent, "'cc'")
		if err != nil {
			return nil, err
		}
		if kw.text != "cc" {
			return nil, fmt.Errorf("textq: line %d: expected 'cc', got %q", kw.line, kw.text)
		}
		name, err := p.expect(tokIdent, "constraint name")
		if err != nil {
			return nil, err
		}
		headArgs, err := p.termList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokTurnstile, "':-'"); err != nil {
			return nil, err
		}
		items, err := p.body()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSubset, "'<='"); err != nil {
			return nil, err
		}
		proj, err := p.projection()
		if err != nil {
			return nil, err
		}
		atoms, conds := splitBody(items)
		q := cq.New(name.text, headArgs, atoms, conds...)
		if err := q.Validate(schemas); err != nil {
			return nil, err
		}
		set.Add(cc.FromCQ(name.text, q, proj))
	}
	if err := set.Validate(dm); err != nil {
		return nil, err
	}
	return set, nil
}

// projection parses "empty" or "Name[col, col, …]".
func (p *parser) projection() (cc.Projection, error) {
	name, err := p.expect(tokIdent, "master relation or 'empty'")
	if err != nil {
		return cc.Projection{}, err
	}
	if name.text == "empty" {
		return cc.EmptySet(), nil
	}
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return cc.Projection{}, err
	}
	var cols []int
	for {
		t, err := p.expect(tokIdent, "column index")
		if err != nil {
			return cc.Projection{}, err
		}
		var col int
		if _, err := fmt.Sscanf(t.text, "%d", &col); err != nil {
			return cc.Projection{}, fmt.Errorf("textq: line %d: bad column index %q", t.line, t.text)
		}
		cols = append(cols, col)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return cc.Projection{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return cc.Projection{}, err
	}
	return cc.Proj(name.text, cols...), nil
}
