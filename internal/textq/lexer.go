// Package textq provides a small text syntax — and its parser — for
// schemas, databases, queries (CQ/UCQ/FP) and containment constraints,
// used by the command-line tools and the examples:
//
//	# schemas                     (attribute domains default to infinite)
//	rel Supt(eid, dept, cid)
//	rel F(p: {0, 1})
//
//	# facts
//	Supt(e0, sales, c1).
//
//	# queries: uppercase identifiers are variables, everything else is
//	# a constant; several rules with the same head form a UCQ
//	Q(C) :- Supt(E, D, C), E = e0, C != c9
//
//	# datalog (FP): an output directive turns rules into a program
//	output Above
//	Up(X, Y)  :- Manage(X, Y)
//	Up(X, Y)  :- Manage(X, Z), Up(Z, Y)
//	Above(X)  :- Up(X, e0)
//
//	# containment constraints: right-hand side after <= names a master
//	# relation projection, or "empty" for ⊆ ∅
//	cc phi0(C) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0]
//	cc phi1()  :- Supt(E, D1, C1), Supt(E, D2, C2), C1 != C2 <= empty
package textq

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted constant
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokDot
	tokTurnstile // :-
	tokEq        // =
	tokNeq       // !=
	tokSubset    // <=
)

type token struct {
	kind tokenKind
	text string
	pos  int
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("textq: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

// next returns the next token, skipping whitespace and # comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
scan:
	start := l.pos
	mk := func(k tokenKind, n int) (token, error) {
		t := token{kind: k, text: l.src[start : start+n], pos: start, line: l.line}
		l.pos += n
		return t, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		return mk(tokLParen, 1)
	case ')':
		return mk(tokRParen, 1)
	case '{':
		return mk(tokLBrace, 1)
	case '}':
		return mk(tokRBrace, 1)
	case '[':
		return mk(tokLBracket, 1)
	case ']':
		return mk(tokRBracket, 1)
	case ',':
		return mk(tokComma, 1)
	case '.':
		return mk(tokDot, 1)
	case '=':
		return mk(tokEq, 1)
	case ':':
		if strings.HasPrefix(l.src[l.pos:], ":-") {
			return mk(tokTurnstile, 2)
		}
		return mk(tokColon, 1)
	case '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			return mk(tokNeq, 2)
		}
		return token{}, l.errf("unexpected '!'")
	case '<':
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			return mk(tokSubset, 2)
		}
		return token{}, l.errf("unexpected '<'")
	case '\'', '"':
		quote := c
		i := l.pos + 1
		for i < len(l.src) && l.src[i] != quote {
			if l.src[i] == '\n' {
				return token{}, l.errf("unterminated string")
			}
			i++
		}
		if i == len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		t := token{kind: tokString, text: l.src[l.pos+1 : i], pos: l.pos, line: l.line}
		l.pos = i + 1
		return t, nil
	}
	if isIdentRune(rune(c)) {
		i := l.pos
		for i < len(l.src) && isIdentRune(rune(l.src[i])) {
			i++
		}
		t := token{kind: tokIdent, text: l.src[l.pos:i], pos: l.pos, line: l.line}
		l.pos = i
		return t, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
