package textq

import (
	"strings"
	"testing"

	"repro/internal/qlang"
	"repro/internal/relation"
)

const crmSchemaSrc = `
# CRM schemas
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
rel Manage(eid1, eid2)
rel F(p: {0, 1})
`

func mustSchemas(t *testing.T) map[string]*relation.Schema {
	t.Helper()
	ss, err := ParseSchemas(crmSchemaSrc)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestParseSchemas(t *testing.T) {
	ss := mustSchemas(t)
	if len(ss) != 4 {
		t.Fatalf("want 4 schemas, got %d", len(ss))
	}
	if ss["Cust"].Arity() != 5 || ss["Supt"].Arity() != 3 {
		t.Fatal("arities wrong")
	}
	fp := ss["F"].Attrs[0]
	if fp.Domain.Kind != relation.Finite || len(fp.Domain.Values) != 2 {
		t.Fatalf("finite domain not parsed: %v", fp.Domain)
	}
}

func TestParseSchemasErrors(t *testing.T) {
	for _, src := range []string{
		"relx Cust(a)",
		"rel Cust(a",
		"rel Cust()",
		"rel Cust(a) rel Cust(b)",
		"rel Cust(a: {x})", // finite domain must have >= 2 values
	} {
		if _, err := ParseSchemas(src); err == nil {
			t.Errorf("accepted bad schema source %q", src)
		}
	}
}

func TestParseDatabase(t *testing.T) {
	ss := mustSchemas(t)
	d, err := ParseDatabase(`
Supt(e0, sales, c1).
Supt(e0, sales, "c 2").
Cust(c1, Ann, 01, 908, 5550001).
F(1).
`, ss)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instance("Supt").Len() != 2 || d.Instance("Cust").Len() != 1 {
		t.Fatalf("db sizes wrong:\n%v", d)
	}
	if !d.Contains("Supt", relation.T("e0", "sales", "c 2")) {
		t.Fatal("quoted constant lost")
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	ss := mustSchemas(t)
	for _, src := range []string{
		"Supt(e0, sales, c1)",  // missing dot
		"Supt(e0, sales).",     // arity
		"Nope(a).",             // unknown relation
		"F(7).",                // finite-domain violation
		"Supt(e0, sales, 'c1'", // unterminated
	} {
		if _, err := ParseDatabase(src, ss); err == nil {
			t.Errorf("accepted bad fact source %q", src)
		}
	}
}

func TestParseQueryCQ(t *testing.T) {
	ss := mustSchemas(t)
	q, err := ParseQuery(`Q(C) :- Supt(E, D, C), E = e0, C != 'c9'`, ss)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lang() != qlang.CQ || q.Arity() != 1 {
		t.Fatalf("lang %v arity %d", q.Lang(), q.Arity())
	}
	d, _ := ParseDatabase(`
Supt(e0, s, c1).
Supt(e0, s, c9).
Supt(e1, s, c2).
`, ss)
	got, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "c1" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestParseQueryUCQ(t *testing.T) {
	ss := mustSchemas(t)
	q, err := ParseQuery(`
Q(C) :- Supt(E, D, C), E = e0
Q(C) :- Supt(E, D, C), E = e1
`, ss)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lang() != qlang.UCQ {
		t.Fatalf("lang %v", q.Lang())
	}
	d, _ := ParseDatabase(`
Supt(e0, s, c1).
Supt(e1, s, c2).
Supt(e2, s, c3).
`, ss)
	got, _ := q.Eval(d)
	if len(got) != 2 {
		t.Fatalf("Eval = %v", got)
	}
}

func TestParseQueryDatalog(t *testing.T) {
	ss := mustSchemas(t)
	q, err := ParseQuery(`
output Above
Up(X, Y) :- Manage(X, Y)
Up(X, Y) :- Manage(X, Z), Up(Z, Y)
Above(X) :- Up(X, e0)
`, ss)
	if err != nil {
		t.Fatal(err)
	}
	if q.Lang() != qlang.FP {
		t.Fatalf("lang %v", q.Lang())
	}
	d, _ := ParseDatabase(`
Manage(e1, e0).
Manage(e2, e1).
`, ss)
	got, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Eval = %v", got)
	}
}

func TestParseQueryErrors(t *testing.T) {
	ss := mustSchemas(t)
	for _, src := range []string{
		"",
		"Q(C) :- Nope(C)",
		"Q(C) :- Supt(E, D, C) P(C) :- Supt(E, D, C)", // mixed heads
		"Q(C) :- Supt(E, D)",                          // arity
		"Q(Z) :- Supt(E, D, C)",                       // unsafe
		"Q(C) : Supt(E, D, C)",                        // bad turnstile
		"output Nope\nUp(X, Y) :- Manage(X, Y)",       // missing output rule
	} {
		if _, err := ParseQuery(src, ss); err == nil {
			t.Errorf("accepted bad query %q", src)
		}
	}
}

func TestParseConstraints(t *testing.T) {
	ss := mustSchemas(t)
	dm, err := ParseDatabase(`DCust(c1, Ann, 908, 5550001).`,
		map[string]*relation.Schema{
			"DCust": relation.NewSchema("DCust",
				relation.Attr("cid"), relation.Attr("name"), relation.Attr("ac"), relation.Attr("phn")),
		})
	if err != nil {
		t.Fatal(err)
	}
	set, err := ParseConstraints(`
cc phi0(C) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0]
cc phi1() :- Supt(E, D1, C1), Supt(E, D2, C2), C1 != C2 <= empty
`, ss, dm)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("constraints: %d", set.Len())
	}
	d, _ := ParseDatabase(`
Cust(c1, Ann, 01, 908, 5550001).
Supt(e0, s, c1).
`, ss)
	ok, err := set.Satisfied(d, dm)
	if err != nil || !ok {
		t.Fatalf("constraints should hold: %v %v", ok, err)
	}
	d.MustAdd("Supt", "e0", "s", "cX")
	ok, _ = set.Satisfied(d, dm)
	if ok {
		t.Fatal("phi1 violation not detected")
	}
}

func TestParseConstraintsErrors(t *testing.T) {
	ss := mustSchemas(t)
	dm := relation.NewDatabase(relation.NewSchema("M", relation.Attr("x")))
	for _, src := range []string{
		"phi0(C) :- Supt(E, D, C) <= M[0]",    // missing cc keyword
		"cc p(C) :- Supt(E, D, C) <= Nope[0]", // unknown master rel
		"cc p(C) :- Supt(E, D, C) <= M[9]",    // bad column
		"cc p(C) :- Supt(E, D, C) <= M[x]",    // non-numeric column
		"cc p(C, D) :- Supt(E, D, C) <= M[0]", // arity mismatch
		"cc p(C) :- Supt(E, D, C)",            // missing rhs
	} {
		if _, err := ParseConstraints(src, ss, dm); err == nil {
			t.Errorf("accepted bad constraint %q", src)
		}
	}
}

func TestLexerComments(t *testing.T) {
	ss, err := ParseSchemas("# leading comment\nrel R(a) # trailing\n# end")
	if err != nil || len(ss) != 1 {
		t.Fatalf("comments mishandled: %v %v", ss, err)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"rel R(a!b)", "rel R('a)", "rel R(<a)"} {
		if _, err := ParseSchemas(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if !strings.Contains(mustErr(ParseSchemas("rel R(a\nb")).Error(), "line") {
		t.Fatal("errors should carry line numbers")
	}
}

func mustErr[T any](_ T, err error) error { return err }
