package textq

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// FormatSchemas renders schemas as "rel …" declarations in name order.
func FormatSchemas(schemas map[string]*relation.Schema) string {
	names := make([]string, 0, len(schemas))
	for n := range schemas {
		names = append(names, n)
	}
	sortStrings(names)
	var b strings.Builder
	for _, n := range names {
		s := schemas[n]
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			if a.Domain.Kind == relation.Finite {
				vals := make([]string, len(a.Domain.Values))
				for j, v := range a.Domain.Values {
					vals[j] = quoteIfNeeded(string(v))
				}
				parts[i] = fmt.Sprintf("%s: {%s}", a.Name, strings.Join(vals, ", "))
			} else {
				parts[i] = a.Name
			}
		}
		fmt.Fprintf(&b, "rel %s(%s)\n", s.Name, strings.Join(parts, ", "))
	}
	return b.String()
}

// FormatDatabase renders a database as fact lines, relation by relation
// in name order, tuples in deterministic order.
func FormatDatabase(d *relation.Database) string {
	var b strings.Builder
	for _, name := range d.Relations() {
		for _, t := range d.Instance(name).Tuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = quoteIfNeeded(string(v))
			}
			fmt.Fprintf(&b, "%s(%s).\n", name, strings.Join(parts, ", "))
		}
	}
	return b.String()
}

// quoteIfNeeded quotes values the lexer could not re-read bare: empty
// strings, values with non-identifier characters, and identifiers that
// would parse as variables.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	bare := true
	for _, r := range s {
		if !isIdentRune(r) {
			bare = false
			break
		}
	}
	if bare {
		return s
	}
	return `"` + s + `"`
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
