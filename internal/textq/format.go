package textq

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// FormatSchemas renders schemas as "rel …" declarations in name order.
func FormatSchemas(schemas map[string]*relation.Schema) string {
	names := make([]string, 0, len(schemas))
	for n := range schemas {
		names = append(names, n)
	}
	sortStrings(names)
	var b strings.Builder
	for _, n := range names {
		s := schemas[n]
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			if a.Domain.Kind == relation.Finite {
				vals := make([]string, len(a.Domain.Values))
				for j, v := range a.Domain.Values {
					vals[j] = quoteIfNeeded(string(v))
				}
				parts[i] = fmt.Sprintf("%s: {%s}", a.Name, strings.Join(vals, ", "))
			} else {
				parts[i] = a.Name
			}
		}
		fmt.Fprintf(&b, "rel %s(%s)\n", s.Name, strings.Join(parts, ", "))
	}
	return b.String()
}

// FormatDatabase renders a database as fact lines, relation by relation
// in name order, tuples in deterministic order.
func FormatDatabase(d *relation.Database) string {
	var b strings.Builder
	for _, name := range d.Relations() {
		for _, t := range d.Instance(name).Tuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = quoteIfNeeded(string(v))
			}
			fmt.Fprintf(&b, "%s(%s).\n", name, strings.Join(parts, ", "))
		}
	}
	return b.String()
}

// FormatFact renders one fact line in ParseFacts' grammar (the
// per-tuple unit FormatDatabase emits).
func FormatFact(rel string, t relation.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = quoteIfNeeded(string(v))
	}
	return rel + "(" + strings.Join(parts, ", ") + ")."
}

// FormatQuery renders a parsed query back into ParseQuery's grammar:
// CQs and UCQs as rule lines, datalog programs as an "output" header
// plus rules. It errors for query forms the grammar has no syntax for
// (FO, ∃FO⁺) and for constant values no quoting can represent (a value
// containing a line break, or both quote characters).
func FormatQuery(q qlang.Query) (string, error) {
	if c, ok := qlang.AsCQ(q); ok {
		line, err := formatRule(c.Name, c.Head, c.Atoms, c.Conds)
		if err != nil {
			return "", err
		}
		return line + "\n", nil
	}
	if u, ok := qlang.AsUCQ(q); ok {
		var b strings.Builder
		for _, d := range u.Disjuncts {
			// Disjuncts carry generated names (Q_1, Q_2, …); the grammar
			// wants every disjunct under the union's head predicate.
			line, err := formatRule(u.Name, d.Head, d.Atoms, d.Conds)
			if err != nil {
				return "", err
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return b.String(), nil
	}
	if p, ok := qlang.AsFP(q); ok {
		var b strings.Builder
		fmt.Fprintf(&b, "output %s\n", p.Output)
		for _, r := range p.Rules {
			head, err := formatAtom(r.Head)
			if err != nil {
				return "", err
			}
			parts := make([]string, len(r.Body))
			for i, l := range r.Body {
				var err error
				if l.Atom != nil {
					parts[i], err = formatAtom(*l.Atom)
				} else {
					parts[i], err = formatCond(*l.Cond)
				}
				if err != nil {
					return "", err
				}
			}
			fmt.Fprintf(&b, "%s :- %s\n", head, strings.Join(parts, ", "))
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("textq: no textual form for %v queries", q.Lang())
}

// FormatConstraints renders a constraint set back into
// ParseConstraints' grammar. Reverse containments and non-CQ bodies
// have no syntax and error.
func FormatConstraints(s *cc.Set) (string, error) {
	var b strings.Builder
	for _, c := range s.Constraints {
		if c.Reverse {
			return "", fmt.Errorf("textq: no textual form for reverse containment %s", c.Name)
		}
		cqq, ok := qlang.AsCQ(c.Q)
		if !ok {
			return "", fmt.Errorf("textq: constraint %s has a non-CQ body", c.Name)
		}
		line, err := formatRule(cqq.Name, cqq.Head, cqq.Atoms, cqq.Conds)
		if err != nil {
			return "", err
		}
		rhs := "empty"
		if !c.P.IsEmptySet() {
			cols := make([]string, len(c.P.Cols))
			for i, col := range c.P.Cols {
				cols[i] = strconv.Itoa(col)
			}
			rhs = c.P.Rel + "[" + strings.Join(cols, ", ") + "]"
		}
		fmt.Fprintf(&b, "cc %s <= %s\n", line, rhs)
	}
	return b.String(), nil
}

// formatRule renders one "Name(head) :- body" line.
func formatRule(name string, head []query.Term, atoms []query.RelAtom, conds []query.EqAtom) (string, error) {
	args := make([]string, len(head))
	for i, t := range head {
		var err error
		if args[i], err = formatTerm(t); err != nil {
			return "", err
		}
	}
	parts := make([]string, 0, len(atoms)+len(conds))
	for _, a := range atoms {
		s, err := formatAtom(a)
		if err != nil {
			return "", err
		}
		parts = append(parts, s)
	}
	for _, c := range conds {
		s, err := formatCond(c)
		if err != nil {
			return "", err
		}
		parts = append(parts, s)
	}
	return fmt.Sprintf("%s(%s) :- %s", name, strings.Join(args, ", "), strings.Join(parts, ", ")), nil
}

func formatAtom(a query.RelAtom) (string, error) {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		var err error
		if parts[i], err = formatTerm(t); err != nil {
			return "", err
		}
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")", nil
}

func formatCond(e query.EqAtom) (string, error) {
	l, err := formatTerm(e.L)
	if err != nil {
		return "", err
	}
	r, err := formatTerm(e.R)
	if err != nil {
		return "", err
	}
	op := " = "
	if e.Neg {
		op = " != "
	}
	return l + op + r, nil
}

// formatTerm renders a term in query position: variables bare,
// constants always quoted (a bare identifier constant starting with an
// upper-case letter would re-parse as a variable).
func formatTerm(t query.Term) (string, error) {
	if t.IsVar {
		return t.Name, nil
	}
	s := string(t.Val)
	if strings.ContainsRune(s, '\n') {
		return "", fmt.Errorf("textq: constant %q contains a line break; no quoting can represent it", s)
	}
	if !strings.ContainsRune(s, '\'') {
		return "'" + s + "'", nil
	}
	if !strings.ContainsRune(s, '"') {
		return `"` + s + `"`, nil
	}
	return "", fmt.Errorf("textq: constant %q contains both quote characters; no quoting can represent it", s)
}

// quoteIfNeeded quotes values the lexer could not re-read bare: empty
// strings and values with non-identifier characters. The quote
// character is chosen to avoid one embedded in the value; a value
// containing both quote characters or a line break has no
// representation in the grammar (callers holding such values cannot
// round-trip — see FuzzParseDatabase).
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	bare := true
	for _, r := range s {
		if !isIdentRune(r) {
			bare = false
			break
		}
	}
	if bare {
		return s
	}
	if !strings.ContainsRune(s, '"') {
		return `"` + s + `"`
	}
	return "'" + s + "'"
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
