package textq

import (
	"strings"
	"testing"

	"repro/internal/qlang"
)

// example21 is the Example 2.1 CRM problem in text form, the same
// instance the quickstart example builds programmatically: e0 supports
// the only area-908 domestic customer, so D is complete for Q1.
var example21 = ProblemSource{
	Schemas: `
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
rel Manage(eid1, eid2)
`,
	MasterSchemas: `rel DCust(cid, name, ac, phn)`,
	Master: `
DCust(c1, Ann, 908, 5550001).
DCust(c2, Bob, 973, 5550002).
`,
	DB: `
Cust(c1, Ann, 01, 908, 5550001).
Cust(c2, Bob, 01, 973, 5550002).
Supt(e0, sales, c1).
`,
	Constraints: `cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]`,
	Query:       `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`,
}

func TestParseProblem(t *testing.T) {
	p, err := ParseProblem(example21)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Schemas) != 3 || len(p.MasterSchemas) != 1 {
		t.Fatalf("schemas %d master %d", len(p.Schemas), len(p.MasterSchemas))
	}
	if p.D.Instance("Cust").Len() != 2 || p.Dm.Instance("DCust").Len() != 2 {
		t.Fatal("facts not parsed")
	}
	if p.V.Len() != 1 || !p.V.AllMonotone() {
		t.Fatalf("constraints: %v", p.V)
	}
	if p.Q.Lang() != qlang.CQ || p.Q.Arity() != 1 {
		t.Fatalf("query: lang %v arity %d", p.Q.Lang(), p.Q.Arity())
	}
	got, err := p.Q.Eval(p.D)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "c1" {
		t.Fatalf("Q1(D) = %v", got)
	}
}

func TestParseProblemOptionalParts(t *testing.T) {
	p, err := ParseProblem(ProblemSource{
		Schemas: `rel R(a, b)`,
		Query:   `Q(X) :- R(X, Y)`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.D.Instance("R").Len() != 0 {
		t.Fatal("empty DB not built over schemas")
	}
	if p.Dm == nil || p.V.Len() != 0 {
		t.Fatal("defaults missing")
	}
}

func TestParseProblemErrors(t *testing.T) {
	cases := []struct {
		name string
		src  ProblemSource
		part string
	}{
		{"missing schemas", ProblemSource{Query: "Q(X) :- R(X)"}, "schemas"},
		{"missing query", ProblemSource{Schemas: "rel R(a)"}, "query"},
		{"bad schemas", ProblemSource{Schemas: "relx R(a)", Query: "Q(X) :- R(X)"}, "schemas"},
		{"bad db", ProblemSource{Schemas: "rel R(a)", DB: "R(x)", Query: "Q(X) :- R(X)"}, "db"},
		{"bad master", ProblemSource{Schemas: "rel R(a)", MasterSchemas: "rel M(a)",
			Master: "Nope(x).", Query: "Q(X) :- R(X)"}, "master"},
		{"bad constraints", ProblemSource{Schemas: "rel R(a)",
			Constraints: "cc p(X) :- R(X) <= Nope[0]", Query: "Q(X) :- R(X)"}, "constraints"},
		{"bad query", ProblemSource{Schemas: "rel R(a)", Query: "Q(X) :- Nope(X)"}, "query"},
	}
	for _, tc := range cases {
		_, err := ParseProblem(tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.part) {
			t.Errorf("%s: error %q does not name part %q", tc.name, err, tc.part)
		}
	}
}
