// Package approx turns an Incomplete RCDP verdict from a dead end into
// a product surface, following Corman/Nutt/Savković ("Complete
// Approximations of Incomplete Queries") and Section 2.3 of Fan &
// Geerts (completeness checking as a guide for data collection):
//
//   - Approximate computes complete approximations of an incomplete
//     query Q: maximal complete specializations (Q plus added
//     constant selections, drawn from the active domain and the
//     master-side p(Dm) projections, whose RCDP verdict is Complete)
//     and minimal complete generalizations (Q with constant-equality
//     selections dropped).
//   - Advise computes acquisition advice: a ranked set of candidate
//     tuples, derived from the witness valuations the RCDP search
//     already produces, whose insertion into D flips the verdict to
//     Complete — each batch re-verified through the incremental
//     core.Checker.RecheckDeltaCtx path.
//
// Both engines are correct by construction rather than heuristic:
// every candidate they return has been certified by the existing
// checker acting as oracle (an RCDP run for verdicts, a Chandra–Merlin
// containment test for the lattice direction), so a returned
// specialization IS complete and a returned advice batch DOES flip the
// verdict — there is nothing to trust beyond the checker itself.
//
// The specialization search is a level-wise (Apriori-style) walk of
// the finite lattice of selection sets: level k holds the candidates
// with k added selections, a candidate is expanded only while its
// verdict is Incomplete (a Complete candidate is already maximal along
// that branch, and its refinements are strictly less general), and
// supersets of certified-complete selection sets are pruned so the
// returned frontier is an antichain. Termination is structural: the
// candidate value pool per variable is finite (capped by
// MaxValuesPerVar), the lattice depth is capped by MaxSelections, the
// total oracle spend by MaxCandidates, and each oracle call is a
// decidable RCDP instance governed by the caller's Checker budget.
package approx

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Options configures the approximation engines. The zero value applies
// the documented defaults.
type Options struct {
	// Checker is the oracle every candidate is certified with; nil uses
	// a default sequential checker. Its Budget governs each individual
	// oracle call.
	Checker *core.Checker
	// MaxSelections caps the specialization lattice depth (added
	// selections per candidate; default 2).
	MaxSelections int
	// MaxCandidates caps the total oracle calls one Approximate run may
	// spend across specializations and generalizations (default 64).
	MaxCandidates int
	// MaxValuesPerVar caps the candidate constants considered per query
	// variable (default 8).
	MaxValuesPerVar int
	// MaxRounds caps the witness-acquisition rounds of Advise
	// (default 8).
	MaxRounds int
}

func (o Options) checker() *core.Checker {
	if o.Checker != nil {
		return o.Checker
	}
	return &core.Checker{Workers: 1}
}

func (o Options) maxSelections() int {
	if o.MaxSelections > 0 {
		return o.MaxSelections
	}
	return 2
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates > 0 {
		return o.MaxCandidates
	}
	return 64
}

func (o Options) maxValuesPerVar() int {
	if o.MaxValuesPerVar > 0 {
		return o.MaxValuesPerVar
	}
	return 8
}

func (o Options) maxRounds() int {
	if o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 8
}

// Selection is one added constant selection (Var = Value).
type Selection struct {
	Var   string
	Value relation.Value
}

// Specialization is one certified-complete specialization of Q: Query
// is Q extended with Selections, its RCDP verdict over (D, Dm, V) is
// Complete, and Query ⊆ Q holds by the containment oracle.
type Specialization struct {
	Query      *cq.CQ
	Selections []Selection
}

// Generalization is one certified-complete generalization of Q: Query
// is Q with the Dropped constant-equality conditions removed, its RCDP
// verdict is Complete, and Q ⊆ Query holds by the containment oracle.
type Generalization struct {
	Query   *cq.CQ
	Dropped []query.EqAtom
}

// Result is the outcome of Approximate.
type Result struct {
	// Verdict is the oracle's verdict for Q itself. Specializations and
	// Generalizations are populated only when it is Incomplete — a
	// Complete query needs no approximation and an Unknown one gives the
	// lattice no anchor.
	Verdict core.Verdict
	// Base is the underlying RCDP result for Q.
	Base *core.RCDPResult
	// Specializations are the maximal complete specializations found
	// (an antichain: no returned selection set contains another).
	Specializations []Specialization
	// Generalizations are the minimal complete generalizations found
	// (an antichain over dropped-condition sets).
	Generalizations []Generalization
	// Explored counts the oracle calls spent on candidates; Certified
	// counts the candidates that certified Complete.
	Explored  int
	Certified int
}

// Approximate computes the complete approximations of Q over
// (D, Dm, V). Q must be a conjunctive query (the selection lattice is
// a CQ construction); use Advise for the other monotone languages.
// Every returned candidate is certified: its RCDP verdict re-checks
// Complete and its containment relation to Q holds.
func Approximate(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set, opts Options) (*Result, error) {
	start := time.Now()
	defer func() { obs.ApproxSeconds.Observe(time.Since(start).Seconds()) }()

	qc, ok := qlang.AsCQ(q)
	if !ok {
		return nil, fmt.Errorf("approx: approximation requires a CQ query, got %v", q.Lang())
	}
	ck := opts.checker()
	base, err := ck.RCDPCtx(ctx, q, d, dm, v)
	if err != nil {
		return nil, err
	}
	res := &Result{Verdict: base.Verdict, Base: base}
	if base.Verdict != core.VerdictIncomplete {
		return res, nil
	}

	schemas := schemasOf(d)
	e := &engine{
		ctx:     ctx,
		ck:      ck,
		qc:      qc,
		d:       d,
		dm:      dm,
		v:       v,
		schemas: schemas,
		budget:  opts.maxCandidates(),
	}
	if err := e.specialize(res, opts); err != nil {
		return nil, err
	}
	if err := e.generalize(res, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// engine carries the shared state of one Approximate run.
type engine struct {
	ctx     context.Context
	ck      *core.Checker
	qc      *cq.CQ
	d, dm   *relation.Database
	v       *cc.Set
	schemas map[string]*relation.Schema
	budget  int // remaining oracle calls
}

// oracle runs one certified RCDP check on a candidate query, charging
// the shared candidate budget.
func (e *engine) oracle(cand *cq.CQ) (core.Verdict, error) {
	if e.budget <= 0 {
		return core.VerdictUnknown, nil
	}
	e.budget--
	obs.ApproxCandidates.Inc()
	res, err := e.ck.RCDPCtx(e.ctx, qlang.FromCQ(cand), e.d, e.dm, e.v)
	if err != nil {
		return core.VerdictUnknown, err
	}
	return res.Verdict, nil
}

// specialize runs the level-wise lattice search over added selections.
func (e *engine) specialize(res *Result, opts Options) error {
	sels := e.candidateSelections(opts.maxValuesPerVar())
	if len(sels) == 0 {
		return nil
	}
	// A node is a strictly increasing set of indices into sels; its
	// candidate query is qc plus those selections.
	type node struct{ idx []int }
	frontier := make([]node, 0, len(sels))
	for i := range sels {
		frontier = append(frontier, node{idx: []int{i}})
	}
	var completeSets [][]int
	isSubsumed := func(idx []int) bool {
		for _, cs := range completeSets {
			if subset(cs, idx) {
				return true
			}
		}
		return false
	}
	for level := 1; level <= opts.maxSelections() && len(frontier) > 0; level++ {
		var next []node
		for _, nd := range frontier {
			if e.budget <= 0 {
				return nil
			}
			if isSubsumed(nd.idx) {
				continue // refines an already-certified spec: not maximal
			}
			cand := specQuery(e.qc, sels, nd.idx)
			if _, err := cand.Compiled(); err != nil {
				continue // unsatisfiable under the added selections
			}
			verdict, err := e.oracle(cand)
			if err != nil {
				return err
			}
			res.Explored++
			switch verdict {
			case core.VerdictComplete:
				// Certify the lattice direction too: cand ⊆ Q. By
				// construction this holds (cand is Q plus conditions);
				// the containment oracle makes it checked, not assumed.
				sub, err := cq.Specializes(cand, e.qc, e.schemas)
				if err != nil || !sub {
					continue
				}
				obs.ApproxCertified.Inc("specialization")
				res.Certified++
				completeSets = append(completeSets, nd.idx)
				spec := Specialization{Query: cand}
				for _, i := range nd.idx {
					spec.Selections = append(spec.Selections, sels[i])
				}
				res.Specializations = append(res.Specializations, spec)
			case core.VerdictIncomplete:
				// Expand: add one more selection on a later index over a
				// variable not already selected (two selections on one
				// variable are unsatisfiable together).
				last := nd.idx[len(nd.idx)-1]
				for j := last + 1; j < len(sels); j++ {
					if selectsVar(sels, nd.idx, sels[j].Var) {
						continue
					}
					child := append(append([]int(nil), nd.idx...), j)
					next = append(next, node{idx: child})
				}
			}
			// Unknown: the oracle budget or governance stopped this
			// candidate; neither certify nor expand.
		}
		frontier = next
	}
	return nil
}

// generalize runs the level-wise search over dropped constant-equality
// conditions of Q.
func (e *engine) generalize(res *Result, opts Options) error {
	droppable := droppableConds(e.qc)
	if len(droppable) == 0 {
		return nil
	}
	type node struct{ idx []int }
	frontier := make([]node, 0, len(droppable))
	for i := range droppable {
		frontier = append(frontier, node{idx: []int{i}})
	}
	var completeSets [][]int
	for len(frontier) > 0 {
		var next []node
		for _, nd := range frontier {
			if e.budget <= 0 {
				return nil
			}
			subsumed := false
			for _, cs := range completeSets {
				if subset(cs, nd.idx) {
					subsumed = true
					break
				}
			}
			if subsumed {
				continue // drops more than an already-certified gen: not minimal
			}
			cand := genQuery(e.qc, droppable, nd.idx)
			if err := cand.Validate(e.schemas); err != nil {
				continue // dropping the condition made the query unsafe
			}
			verdict, err := e.oracle(cand)
			if err != nil {
				return err
			}
			res.Explored++
			switch verdict {
			case core.VerdictComplete:
				// Certify the direction: Q ⊆ cand.
				sup, err := cq.Specializes(e.qc, cand, e.schemas)
				if err != nil || !sup {
					continue
				}
				obs.ApproxCertified.Inc("generalization")
				res.Certified++
				completeSets = append(completeSets, nd.idx)
				gen := Generalization{Query: cand}
				for _, i := range nd.idx {
					gen.Dropped = append(gen.Dropped, e.qc.Conds[droppable[i]])
				}
				res.Generalizations = append(res.Generalizations, gen)
			case core.VerdictIncomplete:
				last := nd.idx[len(nd.idx)-1]
				for j := last + 1; j < len(droppable); j++ {
					child := append(append([]int(nil), nd.idx...), j)
					next = append(next, node{idx: child})
				}
			}
		}
		frontier = next
	}
	return nil
}

// candidateSelections builds the atomic selection pool: for every query
// variable, constants drawn from D's columns at the variable's atom
// positions and from the master-side p(Dm) projection columns aligned
// with those positions through the constraints' head variables —
// exactly the values a complete specialization can meaningfully pin,
// since the valuation search ranges over the active domain. Values are
// filtered by the variable's implied attribute domain, deduplicated,
// sorted and capped per variable for determinism.
func (e *engine) candidateSelections(maxPerVar int) []Selection {
	positions := varPositions(e.qc)
	doms, satisfiable := e.qc.VarDomains(e.schemas)
	if !satisfiable {
		return nil
	}
	fixed := fixedVars(e.qc)
	var out []Selection
	vars := make([]string, 0, len(positions))
	for v := range positions {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, name := range vars {
		if fixed[name] {
			continue // already pinned to a constant in Q itself
		}
		seen := make(map[relation.Value]bool)
		for _, pos := range positions[name] {
			if in := e.d.Instance(pos.rel); in != nil {
				for _, t := range in.Project([]int{pos.col}) {
					seen[t[0]] = true
				}
			}
			for _, val := range e.projectionValues(pos) {
				seen[val] = true
			}
		}
		dom := doms[name]
		vals := relation.SortedValues(seen)
		n := 0
		for _, val := range vals {
			if n >= maxPerVar {
				break
			}
			if dom.Kind == relation.Finite && !dom.Contains(val) {
				continue
			}
			out = append(out, Selection{Var: name, Value: val})
			n++
		}
	}
	return out
}

// position is one (relation, column) occurrence of a variable.
type position struct {
	rel string
	col int
}

// varPositions maps each variable of q to its atom positions.
func varPositions(q *cq.CQ) map[string][]position {
	out := make(map[string][]position)
	for _, a := range q.Atoms {
		for i, t := range a.Args {
			if t.IsVar {
				out[t.Name] = append(out[t.Name], position{rel: a.Rel, col: i})
			}
		}
	}
	return out
}

// fixedVars reports the variables q already equates to a constant.
func fixedVars(q *cq.CQ) map[string]bool {
	out := make(map[string]bool)
	for _, c := range q.Conds {
		if c.Neg {
			continue
		}
		if c.L.IsVar && !c.R.IsVar {
			out[c.L.Name] = true
		}
		if c.R.IsVar && !c.L.IsVar {
			out[c.R.Name] = true
		}
	}
	return out
}

// projectionValues returns the master-side p(Dm) values aligned with a
// database position: for every constraint whose head variable occupies
// pos in the constraint body, the Dm values of the corresponding
// projection column. These are the values the containment constraints
// allow at that position in any legal extension, so selections over
// them are the ones with a chance of carving out a complete fragment.
func (e *engine) projectionValues(pos position) []relation.Value {
	if e.v == nil || e.dm == nil {
		return nil
	}
	var out []relation.Value
	for _, c := range e.v.Constraints {
		if c.Reverse || c.P.IsEmptySet() {
			continue
		}
		cqc, ok := qlang.AsCQ(c.Q)
		if !ok || len(cqc.Head) != len(c.P.Cols) {
			continue
		}
		in := e.dm.Instance(c.P.Rel)
		if in == nil {
			continue
		}
		for k, h := range cqc.Head {
			if !h.IsVar || !occursAt(cqc, h.Name, pos) {
				continue
			}
			for _, t := range in.Project([]int{c.P.Cols[k]}) {
				out = append(out, t[0])
			}
		}
	}
	return out
}

// occursAt reports whether variable name occupies pos in some atom of q.
func occursAt(q *cq.CQ, name string, pos position) bool {
	for _, a := range q.Atoms {
		if a.Rel != pos.rel || pos.col >= len(a.Args) {
			continue
		}
		t := a.Args[pos.col]
		if t.IsVar && t.Name == name {
			return true
		}
	}
	return false
}

// specQuery builds Q plus the chosen selections as a fresh CQ.
func specQuery(q *cq.CQ, sels []Selection, idx []int) *cq.CQ {
	cand := q.Clone()
	cand.Name = q.Name + "_spec"
	for _, i := range idx {
		cand.Conds = append(cand.Conds, query.Eq(query.Var(sels[i].Var), query.Const(sels[i].Value)))
	}
	return cand
}

// droppableConds returns the indices of Q's constant-equality
// conditions (the selections generalization may remove).
func droppableConds(q *cq.CQ) []int {
	var out []int
	for i, c := range q.Conds {
		if c.Neg {
			continue
		}
		if (c.L.IsVar && !c.R.IsVar) || (c.R.IsVar && !c.L.IsVar) {
			out = append(out, i)
		}
	}
	return out
}

// genQuery builds Q minus the chosen droppable conditions as a fresh CQ.
func genQuery(q *cq.CQ, droppable []int, idx []int) *cq.CQ {
	drop := make(map[int]bool, len(idx))
	for _, i := range idx {
		drop[droppable[i]] = true
	}
	cand := q.Clone()
	cand.Name = q.Name + "_gen"
	cand.Conds = cand.Conds[:0]
	for i, c := range q.Conds {
		if !drop[i] {
			cand.Conds = append(cand.Conds, c)
		}
	}
	return cand
}

// selectsVar reports whether the node already selects a value for name.
func selectsVar(sels []Selection, idx []int, name string) bool {
	for _, i := range idx {
		if sels[i].Var == name {
			return true
		}
	}
	return false
}

// subset reports a ⊆ b for strictly increasing index slices.
func subset(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// schemasOf collects the schema map of a database.
func schemasOf(d *relation.Database) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	for _, name := range d.Relations() {
		out[name] = d.Schema(name)
	}
	return out
}
