package approx

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// AdviceItem is one candidate acquisition: insert Tuple into Relation
// of D. Items come from witness valuations — each is a tuple some
// legal extension of D must be able to contain — so they are exactly
// the facts whose absence the counterexample exploits. Fresh counts
// the placeholder values (⊥1, ⊥2, …) in the tuple: 0 means a fully
// concrete fact ready to insert as-is, >0 means a pattern whose
// placeholder positions the acquirer must fill with real values.
type AdviceItem struct {
	// Round is the witness round that produced the item (1-based).
	Round int
	// Relation and Tuple are the fact to acquire.
	Relation string
	Tuple    relation.Tuple
	// Fresh counts placeholder values in Tuple.
	Fresh int
}

// Advice is the outcome of Advise.
type Advice struct {
	// Verdict is the initial verdict for Q over the untouched D.
	Verdict core.Verdict
	// Items are the candidate acquisitions, ranked concrete-first
	// (ascending Fresh), then by round, relation and tuple.
	Items []AdviceItem
	// Rounds is the number of witness rounds run.
	Rounds int
	// Flipped reports whether inserting every item into D was certified
	// (via the incremental recheck path) to flip the verdict to
	// Complete. When false, the rounds or budget cap stopped the loop
	// with the verdict still Incomplete (or governance answered
	// Unknown); Final holds that last verdict.
	Flipped bool
	// Final is the certified verdict of D plus all Items.
	Final core.Verdict
}

// Advise computes acquisition advice for an incomplete (Q, D, Dm, V):
// tuples whose insertion into D flips the RCDP verdict to Complete.
//
// The loop is witness-driven: while the verdict is Incomplete, the
// checker's counterexample witness Δ = μ(T) is recorded as advice and
// inserted — into a private clone of D, never the caller's database —
// through core.Checker.RecheckDeltaCtx, whose D-side delta always
// takes the full re-verification path. Each round strictly grows Q(D')
// (the witness's NewTuple is an answer over D ∪ Δ that was missing
// before), and the final Complete verdict, when reached, certifies the
// whole batch: the advice is guaranteed to work because the checker
// itself said so on exactly the mutated state.
//
// Master-side advice is never produced, and not for lack of trying:
// inserting into Dm only grows the projections p(Dm), so any valid
// witness valuation against (D, Dm) stays valid against (D, Dm ∪ Δm)
// while Q(D) is untouched — master-side inserts preserve
// incompleteness. Only acquiring data for D can flip the verdict.
func Advise(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set, opts Options) (*Advice, error) {
	start := time.Now()
	defer func() { obs.ApproxSeconds.Observe(time.Since(start).Seconds()) }()

	ck := opts.checker()
	res, err := ck.RCDPCtx(ctx, q, d, dm, v)
	if err != nil {
		return nil, err
	}
	adv := &Advice{Verdict: res.Verdict, Final: res.Verdict}
	if res.Verdict != core.VerdictIncomplete {
		return adv, nil // nothing to flip: the verdict was never Incomplete
	}

	// RecheckDeltaCtx applies each delta in place; work on clones so the
	// caller's databases stay untouched.
	dc := d.Clone()
	dmc := dm
	if dm != nil {
		dmc = dm.Clone()
	}
	for round := 1; round <= opts.maxRounds(); round++ {
		if res.Extension == nil {
			break // incomplete without a witness cannot happen; stop defensively
		}
		obs.AdviceRounds.Inc()
		adv.Rounds = round
		dl := &core.Delta{Inserts: make(map[string][]relation.Tuple)}
		for _, rel := range res.Extension.Relations() {
			for _, t := range res.Extension.Instance(rel).Tuples() {
				adv.Items = append(adv.Items, AdviceItem{
					Round:    round,
					Relation: rel,
					Tuple:    t,
					Fresh:    freshCount(t),
				})
				dl.Inserts[rel] = append(dl.Inserts[rel], t)
			}
		}
		res, _, err = ck.RecheckDeltaCtx(ctx, q, dc, dmc, v, res, dl)
		if err != nil {
			return nil, fmt.Errorf("approx: advice round %d: %w", round, err)
		}
		adv.Final = res.Verdict
		if res.Verdict != core.VerdictIncomplete {
			break
		}
	}
	if adv.Final == core.VerdictComplete {
		adv.Flipped = true
		obs.AdviceFlips.Inc()
	}
	rankItems(adv.Items)
	return adv, nil
}

// freshCount counts placeholder values in a tuple.
func freshCount(t relation.Tuple) int {
	n := 0
	for _, val := range t {
		if core.IsFreshValue(val) {
			n++
		}
	}
	return n
}

// rankItems orders advice concrete-first: ascending placeholder count,
// then round, relation name and tuple bytes — a deterministic order
// that puts ready-to-insert facts ahead of patterns needing values.
func rankItems(items []AdviceItem) {
	sort.SliceStable(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.Fresh != b.Fresh {
			return a.Fresh < b.Fresh
		}
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		return tupleKey(a.Tuple) < tupleKey(b.Tuple)
	})
}

func tupleKey(t relation.Tuple) string {
	out := ""
	for _, v := range t {
		out += string(v) + "\x00"
	}
	return out
}
