package approx

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

// The Example 2.1 CRM problem (the same instance the server tests pin):
// DCust pins the (cid, ac) pairs of supported domestic customers.
const (
	crmSchemas = `
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
rel Manage(eid1, eid2)
`
	crmMasterSchemas = `rel DCust(cid, name, ac, phn)`
	crmMaster        = `
DCust(c1, Ann, 908, 5550001).
DCust(c2, Bob, 973, 5550002).
`
	crmDB = `
Cust(c1, Ann, 01, 908, 5550001).
Cust(c2, Bob, 01, 973, 5550002).
Supt(e0, sales, c1).
`
	crmConstraints = `cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]`
	// crmQuery drops Q1's A selection: "which domestic customers have
	// support?" — incomplete over crmDB, since a legal extension can
	// give the area-973 customer c2 a support edge.
	crmQuery = `Q2(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), CC = 01`
)

// The generalization fixture: c1 is recorded with the wrong country
// code, so the selective query is incomplete (a legal extension can add
// a domestic c1 row), while dropping CC = 01 yields a query whose only
// possible answer c1 is already present.
const (
	genSchemas       = `rel Cust(cid, name, cc, ac, phn)`
	genMasterSchemas = `rel DCustIDs(cid)`
	genMaster        = `DCustIDs(c1).`
	genDB            = `Cust(c1, Ann, 02, 908, 5550001).`
	genConstraints   = `cc psi(C) :- Cust(C, N, CC, A, P) <= DCustIDs[0]`
	genQuerySrc      = `Qg(C) :- Cust(C, N, CC, A, P), CC = 01, A = 908`
)

func parseProblem(t *testing.T, src textq.ProblemSource) *textq.Problem {
	t.Helper()
	p, err := textq.ParseProblem(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func crmProblem(t *testing.T) *textq.Problem {
	return parseProblem(t, textq.ProblemSource{
		Schemas:       crmSchemas,
		MasterSchemas: crmMasterSchemas,
		DB:            crmDB,
		Master:        crmMaster,
		Constraints:   crmConstraints,
		Query:         crmQuery,
	})
}

func genProblem(t *testing.T) *textq.Problem {
	return parseProblem(t, textq.ProblemSource{
		Schemas:       genSchemas,
		MasterSchemas: genMasterSchemas,
		DB:            genDB,
		Master:        genMaster,
		Constraints:   genConstraints,
		Query:         genQuerySrc,
	})
}

// rebuildProblem reconstructs the problem's databases in fresh storage
// under the current SetInterning mode (storage representation is fixed
// at construction; see the core intern ablation suite).
func rebuildProblem(t *testing.T, p *textq.Problem) (*relation.Database, *relation.Database) {
	t.Helper()
	return rebuildDB(t, p.D), rebuildDB(t, p.Dm)
}

func rebuildDB(t *testing.T, db *relation.Database) *relation.Database {
	t.Helper()
	if db == nil {
		return nil
	}
	names := db.Relations()
	ss := make([]*relation.Schema, 0, len(names))
	for _, name := range names {
		ss = append(ss, db.Schema(name))
	}
	nd := relation.NewDatabase(ss...)
	for _, name := range names {
		for _, tup := range db.Instance(name).Tuples() {
			if err := nd.Add(name, tup); err != nil {
				t.Fatalf("rebuild %s: %v", name, err)
			}
		}
	}
	return nd
}

// forEachEngine runs fn across Workers 1/8 × interned/legacy storage —
// the matrix the approximation properties must hold on.
func forEachEngine(t *testing.T, fn func(t *testing.T, workers int)) {
	defer relation.SetInterning(relation.SetInterning(true))
	for _, interned := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			name := "legacy"
			if interned {
				name = "interned"
			}
			if workers == 1 {
				name += "/seq"
			} else {
				name += "/par8"
			}
			relation.SetInterning(interned)
			t.Run(name, func(t *testing.T) { fn(t, workers) })
		}
	}
	relation.SetInterning(true)
}

// TestApproximateSpecializationsCertified pins the central contract:
// every returned specialization (i) is subsumed by Q under the
// containment oracle and (ii) re-checks Complete under an independent
// checker, and the returned frontier is an antichain (maximality).
func TestApproximateSpecializationsCertified(t *testing.T) {
	forEachEngine(t, func(t *testing.T, workers int) {
		p := crmProblem(t)
		d, dm := rebuildProblem(t, p)
		ck := &core.Checker{Workers: workers}
		res, err := Approximate(context.Background(), p.Q, d, dm, p.V,
			Options{Checker: ck, MaxSelections: 2, MaxCandidates: 48, MaxValuesPerVar: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != core.VerdictIncomplete {
			t.Fatalf("base verdict %v, want incomplete", res.Verdict)
		}
		if len(res.Specializations) == 0 {
			t.Fatal("no specializations found")
		}
		qc, _ := qlang.AsCQ(p.Q)
		schemas := p.Schemas
		oracle := &core.Checker{Workers: 1}
		for _, spec := range res.Specializations {
			sub, err := cq.Specializes(spec.Query, qc, schemas)
			if err != nil || !sub {
				t.Fatalf("specialization %v not subsumed by Q: %v", spec.Selections, err)
			}
			check, err := oracle.RCDPCtx(context.Background(), qlang.FromCQ(spec.Query), d, dm, p.V)
			if err != nil {
				t.Fatal(err)
			}
			if check.Verdict != core.VerdictComplete {
				t.Fatalf("specialization %v re-checks %v, want complete", spec.Selections, check.Verdict)
			}
		}
		// Antichain: no returned selection set contains another.
		sets := make([]map[Selection]bool, len(res.Specializations))
		for i, spec := range res.Specializations {
			sets[i] = make(map[Selection]bool)
			for _, s := range spec.Selections {
				sets[i][s] = true
			}
		}
		for i := range sets {
			for j := range sets {
				if i == j {
					continue
				}
				contained := true
				for s := range sets[i] {
					if !sets[j][s] {
						contained = false
						break
					}
				}
				if contained {
					t.Fatalf("frontier not an antichain: %v ⊆ %v",
						res.Specializations[i].Selections, res.Specializations[j].Selections)
				}
			}
		}
	})
}

// TestApproximateSpecializationExpected pins a concrete lattice point:
// restricting Q2 to area 908 is complete (DCust admits no new supported
// area-908 domestic customer), so an A=908 specialization must be in
// the frontier.
func TestApproximateSpecializationExpected(t *testing.T) {
	p := crmProblem(t)
	res, err := Approximate(context.Background(), p.Q, p.D, p.Dm, p.V,
		Options{MaxSelections: 2, MaxCandidates: 48, MaxValuesPerVar: 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, spec := range res.Specializations {
		for _, s := range spec.Selections {
			if s.Var == "A" && s.Value == "908" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no A=908 specialization in frontier: %+v", res.Specializations)
	}
	if res.Explored == 0 || res.Certified == 0 {
		t.Fatalf("counters not charged: explored %d certified %d", res.Explored, res.Certified)
	}
}

// TestApproximateGeneralizationsCertified: every returned
// generalization contains Q and re-checks Complete; the fixture's
// minimal complete generalization (drop CC = 01) must be found.
func TestApproximateGeneralizationsCertified(t *testing.T) {
	forEachEngine(t, func(t *testing.T, workers int) {
		p := genProblem(t)
		d, dm := rebuildProblem(t, p)
		ck := &core.Checker{Workers: workers}
		res, err := Approximate(context.Background(), p.Q, d, dm, p.V, Options{Checker: ck})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != core.VerdictIncomplete {
			t.Fatalf("base verdict %v, want incomplete", res.Verdict)
		}
		if len(res.Generalizations) == 0 {
			t.Fatal("no generalizations found")
		}
		qc, _ := qlang.AsCQ(p.Q)
		oracle := &core.Checker{Workers: 1}
		foundCC := false
		for _, gen := range res.Generalizations {
			sup, err := cq.Specializes(qc, gen.Query, p.Schemas)
			if err != nil || !sup {
				t.Fatalf("generalization does not contain Q: %v", err)
			}
			check, err := oracle.RCDPCtx(context.Background(), qlang.FromCQ(gen.Query), d, dm, p.V)
			if err != nil {
				t.Fatal(err)
			}
			if check.Verdict != core.VerdictComplete {
				t.Fatalf("generalization re-checks %v, want complete", check.Verdict)
			}
			if len(gen.Dropped) == 1 && !gen.Dropped[0].R.IsVar && gen.Dropped[0].R.Val == "01" {
				foundCC = true
			}
		}
		if !foundCC {
			t.Fatalf("drop-CC generalization not found: %+v", res.Generalizations)
		}
	})
}

// TestApproximateCompleteQuery: a Complete base verdict returns no
// approximations — there is nothing to approximate.
func TestApproximateCompleteQuery(t *testing.T) {
	p := parseProblem(t, textq.ProblemSource{
		Schemas:       crmSchemas,
		MasterSchemas: crmMasterSchemas,
		DB:            crmDB,
		Master:        crmMaster,
		Constraints:   crmConstraints,
		Query:         `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`,
	})
	res, err := Approximate(context.Background(), p.Q, p.D, p.Dm, p.V, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.VerdictComplete {
		t.Fatalf("verdict %v, want complete", res.Verdict)
	}
	if len(res.Specializations)+len(res.Generalizations) != 0 || res.Explored != 0 {
		t.Fatalf("complete query produced candidates: %+v", res)
	}
}

// TestAdviseFlipsVerdict pins the advice contract on the CRM instance
// missing its c1 rows: the batch must flip the verdict, and replaying
// the items onto an untouched clone through an independent checker must
// reproduce the Complete verdict (the caller-visible certificate).
func TestAdviseFlipsVerdict(t *testing.T) {
	forEachEngine(t, func(t *testing.T, workers int) {
		p := parseProblem(t, textq.ProblemSource{
			Schemas:       crmSchemas,
			MasterSchemas: crmMasterSchemas,
			DB:            `Cust(c2, Bob, 01, 973, 5550002).`,
			Master:        crmMaster,
			Constraints:   crmConstraints,
			Query:         `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`,
		})
		d, dm := rebuildProblem(t, p)
		before := textq.FormatDatabase(d)
		ck := &core.Checker{Workers: workers}
		adv, err := Advise(context.Background(), p.Q, d, dm, p.V, Options{Checker: ck})
		if err != nil {
			t.Fatal(err)
		}
		if adv.Verdict != core.VerdictIncomplete {
			t.Fatalf("initial verdict %v, want incomplete", adv.Verdict)
		}
		if !adv.Flipped || adv.Final != core.VerdictComplete {
			t.Fatalf("advice did not flip: %+v", adv)
		}
		if len(adv.Items) == 0 || adv.Rounds == 0 {
			t.Fatalf("empty advice: %+v", adv)
		}
		// Advise must not mutate the caller's database.
		if after := textq.FormatDatabase(d); after != before {
			t.Fatalf("Advise mutated D:\nbefore %q\nafter  %q", before, after)
		}
		// Independent replay: apply every item to a fresh clone and
		// re-check with a new checker.
		dc := d.Clone()
		ins := make(map[string][]relation.Tuple)
		for _, it := range adv.Items {
			ins[it.Relation] = append(ins[it.Relation], it.Tuple)
		}
		if _, _, err := dc.ApplyBatch(relation.Batch{Inserts: ins}); err != nil {
			t.Fatalf("advice does not apply: %v", err)
		}
		check, err := (&core.Checker{Workers: 1}).RCDPCtx(context.Background(), p.Q, dc, dm, p.V)
		if err != nil {
			t.Fatal(err)
		}
		if check.Verdict != core.VerdictComplete {
			t.Fatalf("replayed advice re-checks %v, want complete", check.Verdict)
		}
		// Ranking: concrete items (Fresh 0) ahead of placeholder patterns.
		for i := 1; i < len(adv.Items); i++ {
			if adv.Items[i-1].Fresh > adv.Items[i].Fresh {
				t.Fatalf("advice not ranked concrete-first: %+v", adv.Items)
			}
		}
	})
}

// TestAdviseCompleteNoop: advice on an already-complete instance
// returns immediately with no items.
func TestAdviseCompleteNoop(t *testing.T) {
	p := parseProblem(t, textq.ProblemSource{
		Schemas:       crmSchemas,
		MasterSchemas: crmMasterSchemas,
		DB:            crmDB,
		Master:        crmMaster,
		Constraints:   crmConstraints,
		Query:         `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`,
	})
	adv, err := Advise(context.Background(), p.Q, p.D, p.Dm, p.V, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Verdict != core.VerdictComplete || adv.Flipped || len(adv.Items) != 0 {
		t.Fatalf("unexpected advice on complete instance: %+v", adv)
	}
}

// TestApproximateRequiresCQ: the lattice is a CQ construction; other
// languages are refused with a typed error.
func TestApproximateRequiresCQ(t *testing.T) {
	p := crmProblem(t)
	u := qlang.FromUCQ(cq.Union("U", mustCQ(t, p)))
	if _, err := Approximate(context.Background(), u, p.D, p.Dm, p.V, Options{}); err == nil {
		t.Fatal("UCQ accepted by Approximate")
	}
}

func mustCQ(t *testing.T, p *textq.Problem) *cq.CQ {
	t.Helper()
	qc, ok := qlang.AsCQ(p.Q)
	if !ok {
		t.Fatal("fixture query is not a CQ")
	}
	return qc.Clone()
}
