package approx_test

import (
	"context"
	"fmt"

	"repro/internal/approx"
	"repro/internal/textq"
)

// The CRM problem of Example 2.1: master relation DCust lists every
// domestic customer with their area code; the containment constraint
// makes D partially closed for supported domestic customers.
const (
	exSchemas = `
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
`
	exMasterSchemas = `rel DCust(cid, name, ac, phn)`
	exMaster        = `
DCust(c1, Ann, 908, 5550001).
DCust(c2, Bob, 973, 5550002).
`
	exDB = `
Cust(c1, Ann, 01, 908, 5550001).
Cust(c2, Bob, 01, 973, 5550002).
Supt(e0, sales, c1).
`
	exConstraints = `cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]`
)

// ExampleApproximate asks which domestic customers have support — an
// incomplete query over the Example 2.1 database, since a legal
// extension can give the area-973 customer c2 a support contract — and
// receives the complete fragments: the query is already complete when
// restricted to customer c1, or to area 908.
func ExampleApproximate() {
	p, err := textq.ParseProblem(textq.ProblemSource{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Query:         `Q2(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), CC = 01`,
	})
	if err != nil {
		panic(err)
	}
	res, err := approx.Approximate(context.Background(), p.Q, p.D, p.Dm, p.V,
		approx.Options{MaxSelections: 2, MaxCandidates: 48, MaxValuesPerVar: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Verdict)
	for _, spec := range res.Specializations {
		for _, s := range spec.Selections {
			fmt.Printf("complete when %s = %s\n", s.Var, s.Value)
		}
	}
	// Output:
	// verdict: incomplete
	// complete when A = 908
	// complete when C = c1
}

// ExampleAdvise starts from a CRM database missing the c1 rows, so the
// area-908 query is incomplete, and asks what data to acquire: the
// returned facts — derived from the checker's own counterexample
// witness — are certified to flip the verdict to complete once
// inserted, with ⊥ placeholders marking positions any value fills.
func ExampleAdvise() {
	p, err := textq.ParseProblem(textq.ProblemSource{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            `Cust(c2, Bob, 01, 973, 5550002).`,
		Master:        exMaster,
		Constraints:   exConstraints,
		Query:         `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`,
	})
	if err != nil {
		panic(err)
	}
	adv, err := approx.Advise(context.Background(), p.Q, p.D, p.Dm, p.V, approx.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", adv.Verdict, "flipped:", adv.Flipped)
	for _, it := range adv.Items {
		fmt.Println("acquire:", textq.FormatFact(it.Relation, it.Tuple))
	}
	// Output:
	// verdict: incomplete flipped: true
	// acquire: Supt(e0, "⊥4", c1).
	// acquire: Cust(c1, "⊥3", 01, 908, "⊥2").
}
