package mine

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/textq"
)

// The evidence text format. Mining evidence travels as one plain-text
// document — between relmine runs, into POST /v1/mine, and as fuzz
// corpus — holding the shared schemas followed by any number of
// (D, Dm) pairs. Section headers are lines starting with "==";
// everything between headers is textq grammar (rel declarations or
// fact lines):
//
//	== schemas
//	rel Cust(cid, name, cc, ac, phn)
//	== master-schemas
//	rel DCust(cid, name, ac, phn)
//	== pair
//	== db
//	Cust(c000, name0, 01, 908, 5550000).
//	== dm
//	DCust(c000, name0, 908, 5550000).
//	== pair
//	…
//
// Blank lines and lines starting with '#' are ignored. Every pair
// opens with "== pair" and fills its "== db" and "== dm" blocks; an
// omitted block is an empty database over the declared schemas.

// ParseEvidence parses an evidence document into pairs ready for Mine.
func ParseEvidence(src string) ([]Pair, error) {
	type rawPair struct{ db, dm strings.Builder }
	var (
		schemaSrc, mschemaSrc strings.Builder
		raws                  []*rawPair
		section               string
	)
	for ln, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "==") {
			section = strings.TrimSpace(strings.TrimPrefix(trimmed, "=="))
			switch section {
			case "schemas", "master-schemas":
			case "pair":
				raws = append(raws, &rawPair{})
			case "db", "dm":
				if len(raws) == 0 {
					return nil, fmt.Errorf("mine: evidence line %d: %q section before any '== pair'", ln+1, section)
				}
			default:
				return nil, fmt.Errorf("mine: evidence line %d: unknown section %q", ln+1, section)
			}
			continue
		}
		switch section {
		case "schemas":
			schemaSrc.WriteString(line + "\n")
		case "master-schemas":
			mschemaSrc.WriteString(line + "\n")
		case "db":
			raws[len(raws)-1].db.WriteString(line + "\n")
		case "dm":
			raws[len(raws)-1].dm.WriteString(line + "\n")
		case "pair":
			return nil, fmt.Errorf("mine: evidence line %d: facts outside a db/dm block", ln+1)
		default:
			return nil, fmt.Errorf("mine: evidence line %d: content before any section header", ln+1)
		}
	}
	if schemaSrc.Len() == 0 {
		return nil, fmt.Errorf("mine: evidence has no '== schemas' section")
	}
	schemas, err := textq.ParseSchemas(schemaSrc.String())
	if err != nil {
		return nil, fmt.Errorf("mine: evidence schemas: %w", err)
	}
	mschemas := map[string]*relation.Schema{}
	if mschemaSrc.Len() > 0 {
		mschemas, err = textq.ParseSchemas(mschemaSrc.String())
		if err != nil {
			return nil, fmt.Errorf("mine: evidence master schemas: %w", err)
		}
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("mine: evidence has no pairs")
	}
	pairs := make([]Pair, 0, len(raws))
	for i, r := range raws {
		d, err := textq.ParseFacts(r.db.String(), schemas)
		if err != nil {
			return nil, fmt.Errorf("mine: evidence pair %d db: %w", i, err)
		}
		dm, err := textq.ParseFacts(r.dm.String(), mschemas)
		if err != nil {
			return nil, fmt.Errorf("mine: evidence pair %d dm: %w", i, err)
		}
		pairs = append(pairs, Pair{D: d, Dm: dm})
	}
	return pairs, nil
}

// FormatEvidence renders pairs in the evidence grammar. All pairs must
// share the first pair's schemas (the format declares them once).
func FormatEvidence(pairs []Pair) (string, error) {
	if len(pairs) == 0 {
		return "", fmt.Errorf("mine: no pairs to format")
	}
	var b strings.Builder
	b.WriteString("== schemas\n")
	b.WriteString(textq.FormatSchemas(schemasOfDB(pairs[0].D)))
	b.WriteString("== master-schemas\n")
	b.WriteString(textq.FormatSchemas(schemasOfDB(pairs[0].Dm)))
	for _, p := range pairs {
		b.WriteString("== pair\n== db\n")
		b.WriteString(textq.FormatDatabase(p.D))
		b.WriteString("== dm\n")
		b.WriteString(textq.FormatDatabase(p.Dm))
	}
	return b.String(), nil
}

func schemasOfDB(d *relation.Database) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	if d == nil {
		return out
	}
	for _, r := range d.Relations() {
		out[r] = d.Schema(r)
	}
	return out
}
