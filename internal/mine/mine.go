// Package mine discovers containment constraints from observed
// evidence. The checker side of the system (core, cc) assumes the
// constraint set V is *given*; this package answers where V comes from,
// porting the AMIE completeness-assistant idea to the relative-
// information-completeness setting: from a collection of observed
// (D, Dm) pairs, propose candidate constraints q(D) ⊆ p(Dm), score
// each by support and confidence over the evidence, and validate the
// survivors with the unmodified core.RCDPCtx checker as oracle.
//
// The candidate space is enumerated level-wise, most general shapes
// first, like the approximation lattice of internal/approx:
//
//  1. width-1 projections  π_i(R) ⊆ π_a(Rm)        (plain INDs)
//  2. width-2 projections  π_{i,j}(R) ⊆ π_{a,b}(Rm), Apriori-grown
//     from surviving width-1 candidates only
//  3. two-atom joins       q(x) :- R1(…x…), R2(…x…) ⊆ π_a(Rm),
//     projecting the join variable (foreign-key style)
//  4. Var = Const selection refinements of candidates that *failed*
//     confidence, with constants drawn from low-cardinality evidence
//     columns — the step that recovers the paper's φ₀ shape
//     σ_{cc='01'}(Cust ⋈ Supt) ⊆ π_cid(DCust)
//
// Refining only failed candidates keeps output maximal by
// construction: a fragment σ_c(q) is proposed only when q itself is
// not a constraint of the evidence. A final subsumption pass drops any
// candidate implied by an already-emitted one (projection closure of
// the right-hand side + Chandra–Merlin containment of the left-hand
// sides via cq.Specializes), and the oracle pass re-checks every
// survivor: in the default OracleComplete mode a constraint is emitted
// only if each evidence database is provably Complete for the
// constraint's own left-hand-side query under V = {candidate} — the
// strongest certificate the framework offers that the constraint is
// not an artifact of the sample.
package mine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Pair is one observed evidence pair: a database D and the master data
// Dm it was captured against.
type Pair struct {
	D  *relation.Database
	Dm *relation.Database
}

// OracleMode selects how survivors are validated before emission.
type OracleMode string

const (
	// OracleComplete (the default) emits a candidate only when every
	// evidence database is Complete for the candidate's left-hand-side
	// query relative to (Dm, {candidate}) per core.RCDPCtx.
	OracleComplete OracleMode = "complete"
	// OracleClosure emits candidates on confidence alone — the
	// containment held on every evidence pair where it fired — and
	// records Validated = false.
	OracleClosure OracleMode = "closure"
)

// Options tune the enumeration, scoring and validation.
type Options struct {
	// MinSupport is the minimum fraction of evidence pairs on which a
	// candidate's left-hand side must return answers (default 0.5).
	MinSupport float64
	// MinConfidence is the minimum fraction of firing pairs on which
	// the containment must hold (default 1.0: mine only constraints
	// consistent with all evidence).
	MinConfidence float64
	// MaxSelectorCard bounds the number of distinct values a column may
	// take (max over pairs) to qualify as a selection column
	// (default 8).
	MaxSelectorCard int
	// MaxConstants bounds how many constants are tried per selection
	// column, most frequent first (default 4).
	MaxConstants int
	// MaxCandidates caps the total number of scored candidates; the
	// enumeration stops and Stats.Truncated is set when it is reached
	// (default 256). Serving deployments clamp it like
	// -max-approx-candidates.
	MaxCandidates int
	// Oracle selects the validation mode (default OracleComplete).
	Oracle OracleMode
	// Budget governs each oracle check (default: 1s timeout, 100k
	// valuations per disjunct).
	Budget core.Budget
	// Workers is the oracle checker's parallelism (default sequential).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.5
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 1.0
	}
	if o.MaxSelectorCard <= 0 {
		o.MaxSelectorCard = 8
	}
	if o.MaxConstants <= 0 {
		o.MaxConstants = 4
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 256
	}
	if o.Oracle == "" {
		o.Oracle = OracleComplete
	}
	if o.Budget == (core.Budget{}) {
		o.Budget = core.Budget{Timeout: time.Second, MaxValuations: 100000}
	}
	return o
}

// Mined is one emitted constraint with its evidence scores.
type Mined struct {
	Constraint *cc.Constraint
	// Support is the fraction of evidence pairs on which the left-hand
	// side fired; Confidence the fraction of firing pairs on which the
	// containment held.
	Support    float64
	Confidence float64
	// Validated reports that the completeness oracle certified the
	// constraint on every evidence pair (always true under
	// OracleComplete; false under OracleClosure).
	Validated bool
	// Signature is the canonical shape string used for ground-truth
	// matching (see Signature).
	Signature string
}

// Stats counts the enumeration's work.
type Stats struct {
	Pairs          int
	Enumerated     int
	Survivors      int
	Subsumed       int
	OracleRejected int
	Emitted        int
	// Truncated reports that MaxCandidates stopped the enumeration
	// before the candidate space was exhausted.
	Truncated bool
}

// Result is the outcome of a Mine run.
type Result struct {
	Mined []Mined
	Stats Stats
}

// Constraints returns the emitted constraints as a checker-ready set.
func (r *Result) Constraints() *cc.Set {
	s := cc.NewSet()
	for _, m := range r.Mined {
		s.Add(m.Constraint)
	}
	return s
}

// candidate is one scored constraint hypothesis.
type candidate struct {
	q    *cq.CQ
	proj cc.Projection
	// generality rank components for the emission order: selections
	// after unconditioned shapes, single atoms before joins, wider
	// right-hand sides first.
	nconds, natoms int
	sig            string
	fires, holds   int
}

func (c *candidate) support(pairs int) float64 {
	if pairs == 0 {
		return 0
	}
	return float64(c.fires) / float64(pairs)
}

func (c *candidate) confidence() float64 {
	if c.fires == 0 {
		return 0
	}
	return float64(c.holds) / float64(c.fires)
}

type engine struct {
	ctx   context.Context
	opt   Options
	pairs []Pair
	// schemas is the union of database and master schemas, the
	// vocabulary for containment checks and oracle validation.
	schemas  map[string]*relation.Schema
	dbRels   []string
	mRels    []string
	rhsCache []map[string]map[string]bool
	stats    Stats
	// emitted carries, per emitted constraint, its implied projection
	// closure for the subsumption check.
	emitted []emittedC
}

type emittedC struct {
	implied []impliedC
}

type impliedC struct {
	q    *cq.CQ
	proj cc.Projection
}

// Mine proposes, scores and validates containment constraints over the
// evidence pairs. All pairs must share relation schemas (names and
// arities).
func Mine(ctx context.Context, pairs []Pair, opt Options) (*Result, error) {
	start := time.Now()
	opt = opt.withDefaults()
	if len(pairs) == 0 {
		return nil, fmt.Errorf("mine: no evidence pairs")
	}
	e := &engine{ctx: ctx, opt: opt, pairs: pairs}
	if err := e.init(); err != nil {
		return nil, err
	}
	obs.MineRuns.Inc()
	survivors, err := e.enumerate()
	if err != nil {
		return nil, err
	}
	e.stats.Survivors = len(survivors)

	// Emission order: most general first, so the subsumption basis is
	// already populated when weaker shapes are considered.
	sort.SliceStable(survivors, func(i, j int) bool {
		a, b := survivors[i], survivors[j]
		if a.nconds != b.nconds {
			return a.nconds < b.nconds
		}
		if a.natoms != b.natoms {
			return a.natoms < b.natoms
		}
		if len(a.proj.Cols) != len(b.proj.Cols) {
			return len(a.proj.Cols) > len(b.proj.Cols)
		}
		return a.sig < b.sig
	})

	res := &Result{}
	for _, c := range survivors {
		if e.subsumed(c) {
			e.stats.Subsumed++
			continue
		}
		validated, err := e.oracle(c)
		if err != nil {
			return nil, err
		}
		if !validated && opt.Oracle != OracleClosure {
			e.stats.OracleRejected++
			obs.MineOracleRejections.Inc()
			continue
		}
		name := fmt.Sprintf("mined%d", len(res.Mined))
		con := cc.FromCQ(name, c.q, c.proj)
		res.Mined = append(res.Mined, Mined{
			Constraint: con,
			Support:    c.support(len(pairs)),
			Confidence: c.confidence(),
			Validated:  validated,
			Signature:  c.sig,
		})
		e.emit(c)
	}
	e.stats.Pairs = len(pairs)
	e.stats.Emitted = len(res.Mined)
	res.Stats = e.stats
	obs.MineEmitted.Add(int64(len(res.Mined)))
	obs.MineSeconds.Observe(time.Since(start).Seconds())
	return res, nil
}

// init validates schema consistency across pairs and builds the
// enumeration vocabulary.
func (e *engine) init() error {
	first := e.pairs[0]
	if first.D == nil || first.Dm == nil {
		return fmt.Errorf("mine: evidence pair 0 is missing a database")
	}
	e.schemas = make(map[string]*relation.Schema)
	e.dbRels = append([]string(nil), first.D.Relations()...)
	e.mRels = append([]string(nil), first.Dm.Relations()...)
	sort.Strings(e.dbRels)
	sort.Strings(e.mRels)
	for _, r := range e.dbRels {
		e.schemas[r] = first.D.Schema(r)
	}
	for _, r := range e.mRels {
		if _, dup := e.schemas[r]; dup {
			return fmt.Errorf("mine: relation %s appears in both database and master schemas", r)
		}
		e.schemas[r] = first.Dm.Schema(r)
	}
	for pi, p := range e.pairs[1:] {
		if p.D == nil || p.Dm == nil {
			return fmt.Errorf("mine: evidence pair %d is missing a database", pi+1)
		}
		for _, r := range e.dbRels {
			s := p.D.Schema(r)
			if s == nil || s.Arity() != e.schemas[r].Arity() {
				return fmt.Errorf("mine: evidence pair %d disagrees on schema of %s", pi+1, r)
			}
		}
		for _, r := range e.mRels {
			s := p.Dm.Schema(r)
			if s == nil || s.Arity() != e.schemas[r].Arity() {
				return fmt.Errorf("mine: evidence pair %d disagrees on master schema of %s", pi+1, r)
			}
		}
	}
	e.rhsCache = make([]map[string]map[string]bool, len(e.pairs))
	return nil
}

// errTruncated is the internal enumeration-stop sentinel.
var errTruncated = fmt.Errorf("mine: candidate budget exhausted")

// enumerate walks the candidate lattice and returns the scored
// survivors (support and confidence both above threshold).
func (e *engine) enumerate() ([]*candidate, error) {
	var survivors, refine []*candidate

	admit := func(c *candidate) (bool, error) {
		if err := e.ctx.Err(); err != nil {
			return false, err
		}
		if e.stats.Enumerated >= e.opt.MaxCandidates {
			e.stats.Truncated = true
			return false, errTruncated
		}
		e.stats.Enumerated++
		obs.MineCandidates.Inc()
		e.score(c)
		if c.support(len(e.pairs)) < e.opt.MinSupport {
			return false, nil
		}
		if c.confidence() >= e.opt.MinConfidence {
			survivors = append(survivors, c)
			return true, nil
		}
		refine = append(refine, c)
		return false, nil
	}

	err := e.walk(admit)
	if err == errTruncated {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	// Selection refinements of failed shapes (one Var = Const each).
	for _, parent := range refine {
		for _, sel := range e.selections(parent) {
			if _, err := admit(sel); err != nil {
				if err == errTruncated {
					return survivors, nil
				}
				return nil, err
			}
		}
	}
	return survivors, nil
}

// walk enumerates the unconditioned shapes: width-1 projections,
// Apriori width-2 projections, and two-atom join candidates.
func (e *engine) walk(admit func(*candidate) (bool, error)) error {
	// Width-1 projections, remembering survivors per (R, M) for the
	// Apriori step.
	type colPair struct{ i, a int }
	singles := make(map[[2]string][]colPair)
	for _, r := range e.dbRels {
		for i := 0; i < e.schemas[r].Arity(); i++ {
			for _, m := range e.mRels {
				for a := 0; a < e.schemas[m].Arity(); a++ {
					if !e.overlap(r, i, m, a) {
						continue
					}
					ok, err := admit(e.projCandidate(r, []int{i}, m, []int{a}))
					if err != nil {
						return err
					}
					if ok {
						k := [2]string{r, m}
						singles[k] = append(singles[k], colPair{i, a})
					}
				}
			}
		}
	}
	// Width-2 projections from surviving singles on the same (R, M).
	for _, r := range e.dbRels {
		for _, m := range e.mRels {
			cps := singles[[2]string{r, m}]
			for x := 0; x < len(cps); x++ {
				for y := x + 1; y < len(cps); y++ {
					if cps[x].i == cps[y].i || cps[x].a == cps[y].a {
						continue
					}
					c := e.projCandidate(r, []int{cps[x].i, cps[y].i}, m, []int{cps[x].a, cps[y].a})
					if _, err := admit(c); err != nil {
						return err
					}
				}
			}
		}
	}
	// Two-atom joins on value-overlapping column pairs, projecting the
	// join variable (self-joins excluded to bound the space).
	for r1i, r1 := range e.dbRels {
		for _, r2 := range e.dbRels[r1i+1:] {
			for i := 0; i < e.schemas[r1].Arity(); i++ {
				for j := 0; j < e.schemas[r2].Arity(); j++ {
					inter := e.joinValues(r1, i, r2, j)
					if len(inter) == 0 {
						continue
					}
					for _, m := range e.mRels {
						for a := 0; a < e.schemas[m].Arity(); a++ {
							if !e.anyIn(inter, m, a) {
								continue
							}
							c := e.joinCandidate(r1, i, r2, j, m, a)
							if _, err := admit(c); err != nil {
								return err
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// projCandidate builds π_cols(rel) ⊆ π_mcols(m).
func (e *engine) projCandidate(rel string, cols []int, m string, mcols []int) *candidate {
	arity := e.schemas[rel].Arity()
	args := make([]query.Term, arity)
	for i := range args {
		args[i] = query.Var(fmt.Sprintf("x%d", i))
	}
	head := make([]query.Term, len(cols))
	for i, c := range cols {
		head[i] = args[c]
	}
	q := cq.New("cand", head, []query.RelAtom{{Rel: rel, Args: args}})
	return e.finish(q, cc.Proj(m, mcols...))
}

// joinCandidate builds q(x) :- r1(…x@i…), r2(…x@j…) ⊆ π_a(m).
func (e *engine) joinCandidate(r1 string, i int, r2 string, j int, m string, a int) *candidate {
	jv := query.Var("j0")
	args1 := make([]query.Term, e.schemas[r1].Arity())
	for k := range args1 {
		if k == i {
			args1[k] = jv
		} else {
			args1[k] = query.Var(fmt.Sprintf("a%d", k))
		}
	}
	args2 := make([]query.Term, e.schemas[r2].Arity())
	for k := range args2 {
		if k == j {
			args2[k] = jv
		} else {
			args2[k] = query.Var(fmt.Sprintf("b%d", k))
		}
	}
	q := cq.New("cand", []query.Term{jv},
		[]query.RelAtom{{Rel: r1, Args: args1}, {Rel: r2, Args: args2}})
	return e.finish(q, cc.Proj(m, a))
}

// selections derives the Var = Const refinements of a failed candidate:
// one selection on a non-head column whose evidence cardinality is low
// enough, with the most frequent constants tried first.
func (e *engine) selections(parent *candidate) []*candidate {
	headVars := make(map[string]bool)
	for _, t := range parent.q.Head {
		if t.IsVar {
			headVars[t.Name] = true
		}
	}
	var out []*candidate
	for _, atom := range parent.q.Atoms {
		for col, arg := range atom.Args {
			if !arg.IsVar || headVars[arg.Name] {
				continue
			}
			if e.selectorCard(atom.Rel, col) > e.opt.MaxSelectorCard {
				continue
			}
			for _, v := range e.topConstants(atom.Rel, col) {
				q := parent.q.Clone()
				q.Conds = append(q.Conds, query.Eq(query.Var(arg.Name), query.Const(v)))
				out = append(out, e.finish(q, parent.proj))
			}
		}
	}
	return out
}

func (e *engine) finish(q *cq.CQ, p cc.Projection) *candidate {
	return &candidate{
		q:      q,
		proj:   p,
		nconds: len(q.Conds),
		natoms: len(q.Atoms),
		sig:    canonSig(q, p),
	}
}

// score evaluates the candidate's left-hand side on every pair and
// counts firings and holds.
func (e *engine) score(c *candidate) {
	for pi, p := range e.pairs {
		ans := c.q.Eval(p.D)
		if len(ans) == 0 {
			continue
		}
		c.fires++
		rhs := e.rhs(pi, c.proj)
		ok := true
		for _, t := range ans {
			if !rhs[t.Key()] {
				ok = false
				break
			}
		}
		if ok {
			c.holds++
		}
	}
}

// rhs memoizes p(Dm) per evidence pair.
func (e *engine) rhs(pi int, p cc.Projection) map[string]bool {
	key := p.String()
	if e.rhsCache[pi] == nil {
		e.rhsCache[pi] = make(map[string]map[string]bool)
	}
	if s, ok := e.rhsCache[pi][key]; ok {
		return s
	}
	s := p.Eval(e.pairs[pi].Dm)
	e.rhsCache[pi][key] = s
	return s
}

// overlap prefilters (R.i, M.a) pairs by shared values on the first
// evidence pair.
func (e *engine) overlap(r string, i int, m string, a int) bool {
	vals := e.colValues(e.pairs[0].Dm.Instance(m), a)
	in := e.pairs[0].D.Instance(r)
	if in == nil {
		return false
	}
	for _, t := range in.Tuples() {
		if vals[t[i]] {
			return true
		}
	}
	return false
}

// joinValues returns the shared values of R1.i and R2.j on the first
// evidence pair.
func (e *engine) joinValues(r1 string, i int, r2 string, j int) map[relation.Value]bool {
	left := e.colValues(e.pairs[0].D.Instance(r1), i)
	out := make(map[relation.Value]bool)
	in := e.pairs[0].D.Instance(r2)
	if in == nil {
		return out
	}
	for _, t := range in.Tuples() {
		if left[t[j]] {
			out[t[j]] = true
		}
	}
	return out
}

func (e *engine) anyIn(vals map[relation.Value]bool, m string, a int) bool {
	mv := e.colValues(e.pairs[0].Dm.Instance(m), a)
	for v := range vals {
		if mv[v] {
			return true
		}
	}
	return false
}

func (e *engine) colValues(in *relation.Instance, col int) map[relation.Value]bool {
	out := make(map[relation.Value]bool)
	if in == nil {
		return out
	}
	for _, t := range in.Tuples() {
		out[t[col]] = true
	}
	return out
}

// selectorCard is the maximum distinct-value count of (rel, col)
// across evidence pairs.
func (e *engine) selectorCard(rel string, col int) int {
	card := 0
	for _, p := range e.pairs {
		if in := p.D.Instance(rel); in != nil {
			if d := in.Distinct(col); d > card {
				card = d
			}
		}
	}
	return card
}

// topConstants ranks (rel, col) values by the number of evidence pairs
// they appear in, keeping the MaxConstants most frequent.
func (e *engine) topConstants(rel string, col int) []relation.Value {
	presence := make(map[relation.Value]int)
	for _, p := range e.pairs {
		in := p.D.Instance(rel)
		if in == nil {
			continue
		}
		seen := make(map[relation.Value]bool)
		for _, t := range in.Tuples() {
			if !seen[t[col]] {
				seen[t[col]] = true
				presence[t[col]]++
			}
		}
	}
	vals := make([]relation.Value, 0, len(presence))
	for v := range presence {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool {
		if presence[vals[i]] != presence[vals[j]] {
			return presence[vals[i]] > presence[vals[j]]
		}
		return vals[i] < vals[j]
	})
	if len(vals) > e.opt.MaxConstants {
		vals = vals[:e.opt.MaxConstants]
	}
	return vals
}

// subsumed reports whether an emitted constraint (or one of its
// implied projections) already implies the candidate: same right-hand
// side and the candidate's query contained in the implier's.
func (e *engine) subsumed(c *candidate) bool {
	for _, em := range e.emitted {
		for _, imp := range em.implied {
			if !sameProj(imp.proj, c.proj) {
				continue
			}
			ok, err := cq.Specializes(c.q, imp.q, e.schemas)
			if err == nil && ok {
				return true
			}
		}
	}
	return false
}

// emit adds the candidate and its implied projection closure to the
// subsumption basis: a width-k constraint implies each single-column
// projection of its head and right-hand side.
func (e *engine) emit(c *candidate) {
	e.emitted = append(e.emitted, emittedC{implied: impliedShapes(c.q, c.proj)})
}

func sameProj(a, b cc.Projection) bool {
	if a.Rel != b.Rel || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	return true
}

// oracle validates a candidate. Under OracleComplete every evidence
// database must be Complete for the candidate's left-hand-side query
// relative to (Dm, {candidate}); a partial-closure violation (the
// candidate does not even hold on a pair) rejects it.
func (e *engine) oracle(c *candidate) (bool, error) {
	if e.opt.Oracle == OracleClosure {
		return false, nil
	}
	con := cc.FromCQ("oracle", c.q, c.proj)
	v := cc.NewSet(con)
	q := qlang.FromCQ(c.q)
	ck := &core.Checker{Workers: e.opt.Workers, Budget: e.opt.Budget}
	for _, p := range e.pairs {
		res, err := ck.RCDPCtx(e.ctx, q, p.D, p.Dm, v)
		if err != nil {
			if e.ctx.Err() != nil {
				return false, e.ctx.Err()
			}
			if strings.Contains(err.Error(), "not partially closed") {
				return false, nil
			}
			return false, fmt.Errorf("mine: oracle: %w", err)
		}
		if res.Verdict != core.VerdictComplete {
			return false, nil
		}
	}
	return true, nil
}
