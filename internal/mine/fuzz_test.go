package mine

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mdm"
)

// FuzzMineEvidence feeds arbitrary documents to the evidence parser
// and, whenever one parses, mines it in closure mode under a tiny
// budget: neither step may panic, and every emitted score must stay in
// [0, 1]. This is the fuzz-smoke guard for the POST /v1/mine and
// relmine -evidence surfaces, which accept evidence text from outside
// the process.
func FuzzMineEvidence(f *testing.F) {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 3
	cfg.InternationalCustomers = 1
	cfg.Employees = 2
	cfg.ManageDepth = 2
	if text, err := FormatEvidence([]Pair{{D: mdm.Generate(cfg).D, Dm: mdm.Generate(cfg).Dm}}); err == nil {
		f.Add(text)
	}
	f.Add("== schemas\nrel R(a, b)\n== master-schemas\nrel M(a)\n" +
		"== pair\n== db\nR(1, 2).\nR(1, 3).\n== dm\nM(1).\n" +
		"== pair\n== db\nR(2, 2).\n== dm\nM(2).\n")
	f.Add("")
	f.Add("== schemas\nrel R(a)\n")
	f.Add("== schemas\nrel R(a)\n== wat\n")
	f.Add("R(1).\n")
	f.Add("== schemas\nrel R(a)\n== db\n")
	f.Add("== schemas\nnot a schema\n== pair\n")
	f.Add("== schemas\nrel R(a)\n== pair\n== db\nQ(1).\n")
	f.Add("== schemas\nrel R(a)\n== master-schemas\nrel R(a)\n== pair\n")

	f.Fuzz(func(t *testing.T, src string) {
		pairs, err := ParseEvidence(src)
		if err != nil {
			return
		}
		// Bound the mining work so the fuzzer spends its time on parser
		// and scorer states, not on one giant generated instance.
		if len(pairs) > 4 {
			pairs = pairs[:4]
		}
		tuples := 0
		for _, p := range pairs {
			for _, r := range p.D.Relations() {
				tuples += len(p.D.Instance(r).Tuples())
			}
			for _, r := range p.Dm.Relations() {
				tuples += len(p.Dm.Instance(r).Tuples())
			}
		}
		if tuples > 200 {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		res, err := Mine(ctx, pairs, Options{
			MaxCandidates: 48,
			Oracle:        OracleClosure,
			Budget:        core.Budget{Timeout: 100 * time.Millisecond, MaxValuations: 1000},
		})
		if err != nil {
			return
		}
		for _, m := range res.Mined {
			if m.Support < 0 || m.Support > 1 {
				t.Fatalf("support out of range: %v (%s)", m.Support, m.Signature)
			}
			if m.Confidence < 0 || m.Confidence > 1 {
				t.Fatalf("confidence out of range: %v (%s)", m.Confidence, m.Signature)
			}
		}
		if res.Stats.Enumerated > 48 {
			t.Fatalf("enumerated %d candidates over budget", res.Stats.Enumerated)
		}
	})
}
