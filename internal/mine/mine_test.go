package mine

import (
	"context"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/mdm"
	"repro/internal/relation"
)

// evidenceConfig is the base mining-evidence scenario: fully complete,
// saturated support, with unregistered domestic customers as negative
// examples for spurious Cust-only fragments.
func evidenceConfig() mdm.Config {
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 12
	cfg.InternationalCustomers = 4
	cfg.SaturateSupport = true
	cfg.UnregisteredDomestic = 3
	return cfg
}

func mineOver(t *testing.T, cfg mdm.Config, n int, opt Options) (*Result, []Pair) {
	t.Helper()
	scens := mdm.Evidence(cfg, n)
	pairs := make([]Pair, len(scens))
	for i, s := range scens {
		pairs[i] = Pair{D: s.D, Dm: s.Dm}
	}
	res, err := Mine(context.Background(), pairs, opt)
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	return res, pairs
}

func sigs(res *Result) map[string]bool {
	out := make(map[string]bool)
	for _, m := range res.Mined {
		out[m.Signature] = true
	}
	return out
}

func mustSig(t *testing.T, c *cc.Constraint) string {
	t.Helper()
	s, ok := Signature(c)
	if !ok {
		t.Fatalf("no signature for %s", c.Name)
	}
	return s
}

// TestMineRecoversINDRegime: on standard CRM evidence (support only
// for domestic customers) mining emits exactly the blanket inclusion
// dependencies — CidIND and ManageIND — and the subsumption-aware
// evaluation reports full precision and recall (CidIND entails φ₀).
func TestMineRecoversINDRegime(t *testing.T) {
	res, pairs := mineOver(t, evidenceConfig(), 6, Options{})
	got := sigs(res)
	want := map[string]bool{
		mustSig(t, mdm.CidIND()):    true,
		mustSig(t, mdm.ManageIND()): true,
	}
	if len(got) != len(want) {
		t.Fatalf("emitted %d constraints, want %d: %v", len(got), len(want), got)
	}
	for s := range want {
		if !got[s] {
			t.Fatalf("missing expected constraint %s; got %v", s, got)
		}
	}
	for _, m := range res.Mined {
		if !m.Validated {
			t.Fatalf("emitted constraint %s not oracle-validated", m.Constraint.Name)
		}
		if m.Confidence != 1.0 {
			t.Fatalf("emitted constraint %s with confidence %v", m.Constraint.Name, m.Confidence)
		}
		if m.Support < 0 || m.Support > 1 {
			t.Fatalf("support out of range: %v", m.Support)
		}
	}
	ev := Evaluate(res.Mined, mdm.PlantedConstraints(), SchemasOf(pairs))
	if ev.Precision != 1.0 || ev.Recall != 1.0 {
		t.Fatalf("IND regime precision/recall = %v/%v (extra %v, matched %v)",
			ev.Precision, ev.Recall, ev.Extra, ev.Matched)
	}
}

// TestMineRecoversJoinRegime: with supported international customers
// the blanket IND π_cid(Supt) ⊆ π_cid(DCust) is false, and mining must
// fall back to the paper's φ₀ join+selection shape
// σ_cc='01'(Cust ⋈ Supt) ⊆ π_cid(DCust).
func TestMineRecoversJoinRegime(t *testing.T) {
	cfg := evidenceConfig()
	cfg.SupportInternational = 3
	res, pairs := mineOver(t, cfg, 6, Options{})
	got := sigs(res)
	phi0 := mustSig(t, mdm.Phi0Cid())
	cid := mustSig(t, mdm.CidIND())
	manage := mustSig(t, mdm.ManageIND())
	if !got[phi0] {
		t.Fatalf("join regime did not recover φ₀ (%s); got %v", phi0, got)
	}
	if !got[manage] {
		t.Fatalf("join regime did not recover ManageIND; got %v", got)
	}
	if got[cid] {
		t.Fatalf("join regime emitted CidIND, which is false on this evidence")
	}
	if len(got) != 2 {
		t.Fatalf("emitted %d constraints, want 2: %v", len(got), got)
	}
	ev := Evaluate(res.Mined, mdm.PlantedConstraints(), SchemasOf(pairs))
	if ev.Precision != 1.0 {
		t.Fatalf("join regime precision = %v (extra %v)", ev.Precision, ev.Extra)
	}
	// CidIND is genuinely false on this evidence, so recall against the
	// full planted set is exactly 2/3.
	if ev.Matched["cidIND"] || !ev.Matched["phi0cid"] || !ev.Matched["manageIND"] {
		t.Fatalf("unexpected match map: %v", ev.Matched)
	}
}

// TestMineEmittedReverifiedByChecker is the property test of the
// acceptance criteria: every emitted constraint, re-checked from
// scratch by core.RCDPCtx on every evidence pair, is Complete for its
// own left-hand-side query — across Workers 1/8 and both storage
// engines.
func TestMineEmittedReverifiedByChecker(t *testing.T) {
	for _, intern := range []bool{true, false} {
		prev := relation.SetInterning(intern)
		func() {
			defer relation.SetInterning(prev)
			for _, cfgMod := range []int{0, 3} {
				cfg := evidenceConfig()
				cfg.SupportInternational = cfgMod
				res, pairs := mineOver(t, cfg, 4, Options{})
				if len(res.Mined) == 0 {
					t.Fatalf("intern=%v suppIntl=%d: nothing mined", intern, cfgMod)
				}
				for _, workers := range []int{1, 8} {
					ck := &core.Checker{Workers: workers}
					for _, m := range res.Mined {
						for pi, p := range pairs {
							r, err := ck.RCDPCtx(context.Background(), m.Constraint.Q, p.D, p.Dm,
								cc.NewSet(m.Constraint))
							if err != nil {
								t.Fatalf("intern=%v workers=%d pair %d %s: %v", intern, workers, pi, m.Constraint.Name, err)
							}
							if r.Verdict != core.VerdictComplete {
								t.Fatalf("intern=%v workers=%d pair %d: emitted %s re-verifies %v",
									intern, workers, pi, m.Constraint.Name, r.Verdict)
							}
						}
					}
				}
			}
		}()
	}
}

// TestMineDeterministic: identical evidence yields identical mined
// output (order and signatures).
func TestMineDeterministic(t *testing.T) {
	a, _ := mineOver(t, evidenceConfig(), 4, Options{})
	b, _ := mineOver(t, evidenceConfig(), 4, Options{})
	if len(a.Mined) != len(b.Mined) {
		t.Fatalf("non-deterministic emission count: %d vs %d", len(a.Mined), len(b.Mined))
	}
	for i := range a.Mined {
		if a.Mined[i].Signature != b.Mined[i].Signature ||
			a.Mined[i].Support != b.Mined[i].Support ||
			a.Mined[i].Confidence != b.Mined[i].Confidence {
			t.Fatalf("non-deterministic emission at %d: %+v vs %+v", i, a.Mined[i], b.Mined[i])
		}
	}
}

// TestMineTruncation: a tiny candidate budget stops the enumeration
// without error and reports it.
func TestMineTruncation(t *testing.T) {
	res, _ := mineOver(t, evidenceConfig(), 2, Options{MaxCandidates: 3})
	if !res.Stats.Truncated {
		t.Fatalf("expected truncation with MaxCandidates=3, stats %+v", res.Stats)
	}
	if res.Stats.Enumerated > 3 {
		t.Fatalf("enumerated %d candidates over a budget of 3", res.Stats.Enumerated)
	}
}

// TestMineClosureOracle: closure mode emits confidence survivors
// without completeness certification.
func TestMineClosureOracle(t *testing.T) {
	res, _ := mineOver(t, evidenceConfig(), 4, Options{Oracle: OracleClosure})
	if len(res.Mined) == 0 {
		t.Fatal("closure mode mined nothing")
	}
	for _, m := range res.Mined {
		if m.Validated {
			t.Fatalf("closure mode must not mark %s validated", m.Constraint.Name)
		}
	}
	// Closure mode is a superset of complete mode on the same evidence.
	strict, _ := mineOver(t, evidenceConfig(), 4, Options{})
	loose := sigs(res)
	for s := range sigs(strict) {
		if !loose[s] {
			t.Fatalf("complete-mode constraint %s missing from closure mode", s)
		}
	}
}

// TestMineEvidenceRoundTrip: format → parse → mine matches mining the
// original pairs.
func TestMineEvidenceRoundTrip(t *testing.T) {
	direct, pairs := mineOver(t, evidenceConfig(), 3, Options{})
	text, err := FormatEvidence(pairs)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEvidence(text)
	if err != nil {
		t.Fatalf("parse formatted evidence: %v", err)
	}
	if len(parsed) != len(pairs) {
		t.Fatalf("round trip lost pairs: %d vs %d", len(parsed), len(pairs))
	}
	res, err := Mine(context.Background(), parsed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := sigs(direct), sigs(res)
	if len(a) != len(b) {
		t.Fatalf("round trip changed mining output: %v vs %v", a, b)
	}
	for s := range a {
		if !b[s] {
			t.Fatalf("round trip lost constraint %s", s)
		}
	}
}

// TestParseEvidenceErrors pins the parser's failure modes.
func TestParseEvidenceErrors(t *testing.T) {
	for _, tc := range []struct{ name, src string }{
		{"empty", ""},
		{"no pairs", "== schemas\nrel R(a)\n"},
		{"unknown section", "== schemas\nrel R(a)\n== wat\n"},
		{"facts before section", "R(1).\n"},
		{"db before pair", "== schemas\nrel R(a)\n== db\n"},
		{"bad schema", "== schemas\nnot a schema\n== pair\n"},
		{"bad fact", "== schemas\nrel R(a)\n== pair\n== db\nQ(1).\n"},
	} {
		if _, err := ParseEvidence(tc.src); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}
