package mine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Canonical shape signatures. Two constraints that differ only in
// variable names, atom order or condition order get the same
// signature, so mined output can be matched against a planted ground
// truth structurally. Canonicalization sorts atoms by a name-free
// shape key (relation, head positions, occurrence counts, selection
// constants per argument), then renames variables in traversal order.

// canonSig renders the canonical signature of q(D) ⊆ p(Dm).
func canonSig(q *cq.CQ, p cc.Projection) string {
	headPos := make(map[string][]int)
	for i, t := range q.Head {
		if t.IsVar {
			headPos[t.Name] = append(headPos[t.Name], i)
		}
	}
	occ := make(map[string]int)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar {
				occ[t.Name]++
			}
		}
	}
	selConst := make(map[string][]string)
	var varEqs []string
	for _, c := range q.Conds {
		l, r := c.L, c.R
		if r.IsVar && !l.IsVar {
			l, r = r, l
		}
		op := "="
		if c.Neg {
			op = "!="
		}
		switch {
		case l.IsVar && !r.IsVar:
			selConst[l.Name] = append(selConst[l.Name], op+string(r.Val))
		case !l.IsVar && !r.IsVar:
			varEqs = append(varEqs, string(l.Val)+op+string(r.Val))
		default:
			// Var-var conditions are rendered after renaming.
		}
	}
	for _, ss := range selConst {
		sort.Strings(ss)
	}

	argClass := func(t query.Term) string {
		if !t.IsVar {
			return "c:" + string(t.Val)
		}
		return fmt.Sprintf("h%v/o%d/s%v", headPos[t.Name], occ[t.Name], selConst[t.Name])
	}
	type satom struct {
		key  string
		atom query.RelAtom
	}
	satoms := make([]satom, len(q.Atoms))
	for i, a := range q.Atoms {
		parts := make([]string, len(a.Args))
		for j, t := range a.Args {
			parts[j] = argClass(t)
		}
		satoms[i] = satom{key: a.Rel + "(" + strings.Join(parts, ",") + ")", atom: a}
	}
	sort.SliceStable(satoms, func(i, j int) bool { return satoms[i].key < satoms[j].key })

	names := make(map[string]string)
	canon := func(t query.Term) string {
		if !t.IsVar {
			return "'" + string(t.Val) + "'"
		}
		n, ok := names[t.Name]
		if !ok {
			n = fmt.Sprintf("v%d", len(names))
			names[t.Name] = n
		}
		return n
	}
	var b strings.Builder
	var atomStrs []string
	for _, sa := range satoms {
		parts := make([]string, len(sa.atom.Args))
		for j, t := range sa.atom.Args {
			parts[j] = canon(t)
		}
		atomStrs = append(atomStrs, sa.atom.Rel+"("+strings.Join(parts, ",")+")")
	}
	var condStrs []string
	for v, cs := range selConst {
		for _, c := range cs {
			condStrs = append(condStrs, names[v]+c)
		}
	}
	for _, c := range q.Conds {
		if c.L.IsVar && c.R.IsVar {
			op := "="
			if c.Neg {
				op = "!="
			}
			lr := []string{names[c.L.Name], names[c.R.Name]}
			sort.Strings(lr)
			condStrs = append(condStrs, lr[0]+op+lr[1])
		}
	}
	condStrs = append(condStrs, varEqs...)
	sort.Strings(condStrs)
	headStrs := make([]string, len(q.Head))
	for i, t := range q.Head {
		headStrs[i] = canon(t)
	}
	fmt.Fprintf(&b, "(%s):-%s", strings.Join(headStrs, ","), strings.Join(atomStrs, ","))
	if len(condStrs) > 0 {
		fmt.Fprintf(&b, ",%s", strings.Join(condStrs, ","))
	}
	cols := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		cols[i] = fmt.Sprintf("%d", c)
	}
	fmt.Fprintf(&b, "<=%s[%s]", p.Rel, strings.Join(cols, ","))
	return b.String()
}

// Signature returns the canonical shape signature of a constraint, or
// false when its left-hand side is not a single CQ.
func Signature(c *cc.Constraint) (string, bool) {
	q, ok := qlang.AsCQ(c.Q)
	if !ok {
		return "", false
	}
	return canonSig(q, c.P), true
}

// Evaluation compares mined output against a reference constraint set.
type Evaluation struct {
	Precision float64
	Recall    float64
	// Matched maps each reference constraint name to whether some
	// emitted constraint recovers it (equal signature, or implication
	// via projection closure + containment).
	Matched map[string]bool
	// Extra lists signatures of emitted constraints not entailed by
	// any reference constraint.
	Extra []string
}

// Evaluate scores mined constraints against a reference ("planted")
// set. An emitted constraint counts toward precision when some
// reference constraint entails it or matches it exactly; a reference
// constraint counts as recalled when some emitted constraint entails
// it. Entailment is checked on the implied projection closure with
// cq.Specializes, so e.g. a mined two-column inclusion recovers its
// planted single-column projections.
func Evaluate(mined []Mined, refs []*cc.Constraint, schemas map[string]*relation.Schema) Evaluation {
	ev := Evaluation{Matched: make(map[string]bool)}
	type shape struct {
		q    *cq.CQ
		proj cc.Projection
		sig  string
		name string
	}
	var refShapes []shape
	for _, r := range refs {
		q, ok := qlang.AsCQ(r.Q)
		if !ok {
			continue
		}
		refShapes = append(refShapes, shape{q: q, proj: r.P, sig: canonSig(q, r.P), name: r.Name})
	}
	minedShapes := make([]shape, 0, len(mined))
	for _, m := range mined {
		q, _ := qlang.AsCQ(m.Constraint.Q)
		minedShapes = append(minedShapes, shape{q: q, proj: m.Constraint.P, sig: m.Signature})
	}

	entails := func(a, b shape) bool { // a ⇒ b
		if a.sig == b.sig {
			return true
		}
		for _, imp := range impliedShapes(a.q, a.proj) {
			if !sameProj(imp.proj, b.proj) {
				continue
			}
			ok, err := cq.Specializes(b.q, imp.q, schemas)
			if err == nil && ok {
				return true
			}
		}
		return false
	}

	tp := 0
	for _, m := range minedShapes {
		correct := false
		for _, r := range refShapes {
			if entails(r, m) {
				correct = true
				break
			}
		}
		if correct {
			tp++
		} else {
			ev.Extra = append(ev.Extra, m.sig)
		}
	}
	if len(minedShapes) > 0 {
		ev.Precision = float64(tp) / float64(len(minedShapes))
	}
	recalled := 0
	for _, r := range refShapes {
		got := false
		for _, m := range minedShapes {
			if entails(m, r) {
				got = true
				break
			}
		}
		ev.Matched[r.name] = got
		if got {
			recalled++
		}
	}
	if len(refShapes) > 0 {
		ev.Recall = float64(recalled) / float64(len(refShapes))
	}
	return ev
}

// impliedShapes is the projection closure of a constraint: itself plus
// each single-column projection of head and right-hand side.
func impliedShapes(q *cq.CQ, p cc.Projection) []impliedC {
	out := []impliedC{{q: q, proj: p}}
	if len(p.Cols) > 1 && len(q.Head) == len(p.Cols) {
		for k := range p.Cols {
			sub := q.Clone()
			sub.Head = []query.Term{q.Head[k]}
			out = append(out, impliedC{q: sub, proj: cc.Proj(p.Rel, p.Cols[k])})
		}
	}
	return out
}

// SchemasOf collects the union schema vocabulary of an evidence pair
// list, for Evaluate and constraint validation.
func SchemasOf(pairs []Pair) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	for _, p := range pairs {
		for _, db := range []*relation.Database{p.D, p.Dm} {
			if db == nil {
				continue
			}
			for _, r := range db.Relations() {
				if _, ok := out[r]; !ok {
					out[r] = db.Schema(r)
				}
			}
		}
	}
	return out
}
