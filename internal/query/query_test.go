package query

import (
	"testing"

	"repro/internal/relation"
)

func TestTermEqual(t *testing.T) {
	if !Var("x").Equal(Var("x")) || Var("x").Equal(Var("y")) {
		t.Fatal("var equality wrong")
	}
	if !C("a").Equal(C("a")) || C("a").Equal(C("b")) {
		t.Fatal("const equality wrong")
	}
	if Var("x").Equal(C("x")) {
		t.Fatal("var equals const")
	}
	if Var("x").String() != "x" || C("a").String() != "'a'" {
		t.Fatal("String wrong")
	}
}

func TestAtomHelpers(t *testing.T) {
	a := Atom("R", Var("x"), C("c"), Var("y"))
	if a.String() != "R(x, 'c', y)" {
		t.Fatalf("String: %s", a)
	}
	vs := a.Vars(nil)
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "y" {
		t.Fatalf("Vars: %v", vs)
	}
	cs := a.Constants(nil)
	if len(cs) != 1 || cs[0] != "c" {
		t.Fatalf("Constants: %v", cs)
	}
	cl := a.Clone()
	cl.Args[0] = C("z")
	if !a.Args[0].IsVar {
		t.Fatal("Clone not deep")
	}
}

func TestBindingResolveHolds(t *testing.T) {
	b := Binding{"x": "1"}
	if v, ok := b.Resolve(Var("x")); !ok || v != "1" {
		t.Fatal("Resolve var")
	}
	if _, ok := b.Resolve(Var("y")); ok {
		t.Fatal("Resolve unbound")
	}
	if v, ok := b.Resolve(C("c")); !ok || v != "c" {
		t.Fatal("Resolve const")
	}
	if h, ok := Eq(Var("x"), C("1")).Holds(b); !ok || !h {
		t.Fatal("Eq holds")
	}
	if h, ok := Neq(Var("x"), C("1")).Holds(b); !ok || h {
		t.Fatal("Neq holds")
	}
	if _, ok := Eq(Var("x"), Var("y")).Holds(b); ok {
		t.Fatal("unbound must report not-ok")
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{"x": "1"}
	c := b.Clone()
	c["x"] = "2"
	if b["x"] != "1" {
		t.Fatal("Clone not deep")
	}
}

func TestApplyAndGround(t *testing.T) {
	a := Atom("R", Var("x"), Var("y"))
	b := Binding{"x": "1"}
	ap := a.Apply(b)
	if ap.Args[0].IsVar || ap.Args[0].Val != "1" || !ap.Args[1].IsVar {
		t.Fatalf("Apply: %v", ap)
	}
	if _, ok := a.Ground(b); ok {
		t.Fatal("Ground with unbound var must fail")
	}
	b["y"] = "2"
	tup, ok := a.Ground(b)
	if !ok || !tup.Equal(relation.T("1", "2")) {
		t.Fatalf("Ground: %v", tup)
	}
}

func TestMatch(t *testing.T) {
	b := Binding{}
	a := Atom("R", Var("x"), Var("x"), C("c"))
	if nb := b.Match(a, relation.T("1", "2", "c")); nb != nil {
		t.Fatal("repeated var mismatch must fail")
	}
	if len(b) != 0 {
		t.Fatal("failed match must roll back")
	}
	nb := b.Match(a, relation.T("1", "1", "c"))
	if nb == nil || b["x"] != "1" {
		t.Fatalf("match failed: %v %v", nb, b)
	}
	if nb2 := b.Match(Atom("R", Var("x")), relation.T("2")); nb2 != nil {
		t.Fatal("bound var mismatch must fail")
	}
	if nb3 := b.Match(a, relation.T("1", "1", "d")); nb3 != nil {
		t.Fatal("const mismatch must fail")
	}
	if nb4 := b.Match(Atom("R", Var("x")), relation.T("1", "2")); nb4 != nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestSortedVarSet(t *testing.T) {
	vs := SortedVarSet([]string{"b", "a", "b", "c", "a"})
	if len(vs) != 3 || vs[0] != "a" || vs[2] != "c" {
		t.Fatalf("SortedVarSet: %v", vs)
	}
}

func TestEqAtomString(t *testing.T) {
	if Eq(Var("x"), C("1")).String() != "x = '1'" {
		t.Fatal("Eq String")
	}
	if Neq(Var("x"), Var("y")).String() != "x != y" {
		t.Fatal("Neq String")
	}
}

func TestFormatHeadAndMustVars(t *testing.T) {
	if FormatHead("Q", MustVars("x", "y")) != "Q(x, y)" {
		t.Fatal("FormatHead wrong")
	}
}
