package query

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrRowBudget is returned by Gate.Step and Gate.Poll once the join-row
// budget is exhausted.
var ErrRowBudget = errors.New("query: join-row budget exhausted")

// ErrTupleBudget is returned by Gate.ChargeTuples and Gate.Poll once the
// allocated-tuple budget is exhausted.
var ErrTupleBudget = errors.New("query: tuple budget exhausted")

// Gate governs long-running evaluation loops. It carries a cancellation
// signal (a context's Done channel) plus two shared monotone budgets:
// join-row steps (charged by Step, once per row an evaluation loop
// enumerates) and an allocated-tuple estimate (charged by ChargeTuples
// when candidate extensions are materialized).
//
// A nil *Gate is inert: every method returns nil at the cost of a single
// nil check, so ungoverned call paths pay (almost) nothing. A single
// Gate may be shared by many goroutines; all state is a done channel and
// atomic counters.
//
// Error priority is fixed — cancellation, then rows, then tuples — so
// that once counters stop moving every observer reports the same error
// regardless of which check happened to trip first. This is what makes
// budget accounting deterministic across Workers=1 and Workers=N for
// decisive budgets (see DESIGN.md "Resource governance").
type Gate struct {
	done     <-chan struct{}
	cause    func() error // maps a fired done channel to its error
	rows     atomic.Int64
	tuples   atomic.Int64
	rowCap   int64       // 0 = unlimited
	tupleCap int64       // 0 = unlimited
	tripped  atomic.Bool // set once by the first stop observation
}

// NewGate builds a gate from a context and budget caps (0 = unlimited).
// A nil context is treated as context.Background().
func NewGate(ctx context.Context, rowCap, tupleCap int64) *Gate {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Gate{done: ctx.Done(), cause: ctx.Err, rowCap: rowCap, tupleCap: tupleCap}
}

// cancelErr returns the context's error if the done channel has fired.
// Receiving on a nil channel blocks, so the default arm handles both the
// not-yet-cancelled and the never-cancellable (Background) cases.
func (g *Gate) cancelErr() error {
	select {
	case <-g.done:
		if err := g.cause(); err != nil {
			return err
		}
		return context.Canceled
	default:
		return nil
	}
}

// trip records the gate's first stop observation in the obs layer and
// returns err unchanged. Loops keep observing a stopped gate on every
// poll, so the CAS guard makes the trip counter and trace event fire
// exactly once per gate; the cost is confined to error paths.
func (g *Gate) trip(err error) error {
	if err != nil && g.tripped.CompareAndSwap(false, true) {
		reason := reasonLabel(err)
		obs.GateTrips.Inc(reason)
		if obs.Tracing() {
			obs.Emit("gate_trip", map[string]any{"reason": reason})
		}
	}
	return err
}

// reasonLabel names a gate stop for the obs layer, matching the
// core.Reason vocabulary.
func reasonLabel(err error) string {
	switch {
	case errors.Is(err, ErrRowBudget):
		return "join-rows"
	case errors.Is(err, ErrTupleBudget):
		return "tuples"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "cancelled"
	}
}

// Step charges one join-row step and reports whether execution should
// stop. It is called once per enumerated row on evaluation hot paths, so
// a cancelled context stops a governed search within one row-step.
func (g *Gate) Step() error {
	if g == nil {
		return nil
	}
	n := g.rows.Add(1)
	if err := g.cancelErr(); err != nil {
		return g.trip(err)
	}
	if g.rowCap > 0 && n > g.rowCap {
		return g.trip(ErrRowBudget)
	}
	return nil
}

// StepN charges n join-row steps at once and reports whether execution
// should stop. Per-evaluation accumulators (see the cq join engine)
// batch their row charges through it so the shared atomic counter and
// the cancellation check are paid once per batch instead of once per
// row; cancellation detection is then bounded by the batch size rather
// than a single row-step.
func (g *Gate) StepN(n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	total := g.rows.Add(n)
	if err := g.cancelErr(); err != nil {
		return g.trip(err)
	}
	if g.rowCap > 0 && total > g.rowCap {
		return g.trip(ErrRowBudget)
	}
	return nil
}

// Poll checks for cancellation and budget exhaustion without charging
// anything. Search nodes that are not join rows (e.g. valuation-search
// tree nodes) poll so they stop promptly when another loop trips the
// gate.
func (g *Gate) Poll() error {
	if g == nil {
		return nil
	}
	if err := g.cancelErr(); err != nil {
		return g.trip(err)
	}
	if g.rowCap > 0 && g.rows.Load() > g.rowCap {
		return g.trip(ErrRowBudget)
	}
	if g.tupleCap > 0 && g.tuples.Load() > g.tupleCap {
		return g.trip(ErrTupleBudget)
	}
	return nil
}

// ChargeTuples charges n materialized tuples against the tuple budget.
func (g *Gate) ChargeTuples(n int) error {
	if g == nil {
		return nil
	}
	t := g.tuples.Add(int64(n))
	if err := g.cancelErr(); err != nil {
		return g.trip(err)
	}
	if g.tupleCap > 0 && t > g.tupleCap {
		return g.trip(ErrTupleBudget)
	}
	return nil
}

// Rows returns the number of join-row steps charged so far.
func (g *Gate) Rows() int64 {
	if g == nil {
		return 0
	}
	return g.rows.Load()
}

// Tuples returns the number of tuples charged so far.
func (g *Gate) Tuples() int64 {
	if g == nil {
		return 0
	}
	return g.tuples.Load()
}

// IsGateErr reports whether err is one of the gate's stop conditions:
// a budget sentinel or a context cancellation/deadline error. Engines
// use it to distinguish governance stops (partial verdict) from genuine
// evaluation failures (schema mismatch etc.).
func IsGateErr(err error) bool {
	return errors.Is(err, ErrRowBudget) || errors.Is(err, ErrTupleBudget) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
