// Package query provides the shared syntactic building blocks of all
// query languages in the library: terms (variables and constants),
// relation atoms, and (in)equality atoms with = and ≠, which every
// language of the paper (CQ, UCQ, ∃FO⁺, FO, FP) is allowed to use.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is either a variable or a constant.
type Term struct {
	IsVar bool
	Name  string         // variable name when IsVar
	Val   relation.Value // constant value when !IsVar
}

// Var returns a variable term.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// Const returns a constant term.
func Const(v relation.Value) Term { return Term{Val: v} }

// C returns a constant term from a plain string.
func C(v string) Term { return Const(relation.Value(v)) }

// Equal reports syntactic equality of terms.
func (t Term) Equal(o Term) bool {
	if t.IsVar != o.IsVar {
		return false
	}
	if t.IsVar {
		return t.Name == o.Name
	}
	return t.Val == o.Val
}

func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return "'" + string(t.Val) + "'"
}

// RelAtom is a relation atom R(t₁, …, t_k).
type RelAtom struct {
	Rel  string
	Args []Term
}

// Atom builds a relation atom.
func Atom(rel string, args ...Term) RelAtom { return RelAtom{Rel: rel, Args: args} }

func (a RelAtom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns a deep copy of the atom.
func (a RelAtom) Clone() RelAtom {
	return RelAtom{Rel: a.Rel, Args: append([]Term(nil), a.Args...)}
}

// Vars appends the variables of the atom to dst (with duplicates).
func (a RelAtom) Vars(dst []string) []string {
	for _, t := range a.Args {
		if t.IsVar {
			dst = append(dst, t.Name)
		}
	}
	return dst
}

// EqAtom is an equality (L = R) or, when Neg is set, an inequality
// (L ≠ R) between two terms.
type EqAtom struct {
	L, R Term
	Neg  bool
}

// Eq builds an equality atom.
func Eq(l, r Term) EqAtom { return EqAtom{L: l, R: r} }

// Neq builds an inequality atom.
func Neq(l, r Term) EqAtom { return EqAtom{L: l, R: r, Neg: true} }

func (e EqAtom) String() string {
	op := " = "
	if e.Neg {
		op = " != "
	}
	return e.L.String() + op + e.R.String()
}

// Binding maps variable names to values. It is the common currency of
// all evaluators in the library.
type Binding map[string]relation.Value

// Clone copies the binding.
func (b Binding) Clone() Binding {
	cp := make(Binding, len(b))
	for k, v := range b {
		cp[k] = v
	}
	return cp
}

// Resolve returns the value of a term under the binding; ok is false for
// an unbound variable.
func (b Binding) Resolve(t Term) (relation.Value, bool) {
	if !t.IsVar {
		return t.Val, true
	}
	v, ok := b[t.Name]
	return v, ok
}

// Holds evaluates an (in)equality atom under the binding; it reports
// ok=false when either side is unbound.
func (e EqAtom) Holds(b Binding) (holds, ok bool) {
	l, okl := b.Resolve(e.L)
	r, okr := b.Resolve(e.R)
	if !okl || !okr {
		return false, false
	}
	return (l == r) != e.Neg, true
}

// Apply instantiates the atom's variables from the binding. Unbound
// variables stay variables.
func (a RelAtom) Apply(b Binding) RelAtom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsVar {
			if v, ok := b[t.Name]; ok {
				out.Args[i] = Const(v)
			}
		}
	}
	return out
}

// Ground converts a fully bound atom into a tuple; it returns ok=false
// if any variable is unbound.
func (a RelAtom) Ground(b Binding) (relation.Tuple, bool) {
	t := make(relation.Tuple, len(a.Args))
	for i, arg := range a.Args {
		v, ok := b.Resolve(arg)
		if !ok {
			return nil, false
		}
		t[i] = v
	}
	return t, true
}

// Constants appends all constants occurring in the atom to dst.
func (a RelAtom) Constants(dst []relation.Value) []relation.Value {
	for _, t := range a.Args {
		if !t.IsVar {
			dst = append(dst, t.Val)
		}
	}
	return dst
}

// SortedVarSet deduplicates and sorts a variable name list.
func SortedVarSet(vars []string) []string {
	seen := make(map[string]bool, len(vars))
	out := make([]string, 0, len(vars))
	for _, v := range vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// TermsString renders a term list as "t1, t2, …".
func TermsString(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// MustVars converts names to variable terms.
func MustVars(names ...string) []Term {
	out := make([]Term, len(names))
	for i, n := range names {
		out[i] = Var(n)
	}
	return out
}

// FormatHead renders a query head like "Q(x, y)".
func FormatHead(name string, head []Term) string {
	return fmt.Sprintf("%s(%s)", name, TermsString(head))
}

// Match attempts to unify a relation atom against a concrete tuple under
// the current binding, extending the binding in place. It returns the
// names of newly bound variables on success (possibly empty but non-nil)
// and nil on failure; on failure the binding is left unchanged.
func (b Binding) Match(a RelAtom, tup relation.Tuple) []string {
	if len(a.Args) != len(tup) {
		return nil
	}
	newly := make([]string, 0, 4)
	for i, t := range a.Args {
		if !t.IsVar {
			if t.Val != tup[i] {
				for _, v := range newly {
					delete(b, v)
				}
				return nil
			}
			continue
		}
		if v, ok := b[t.Name]; ok {
			if v != tup[i] {
				for _, nv := range newly {
					delete(b, nv)
				}
				return nil
			}
			continue
		}
		b[t.Name] = tup[i]
		newly = append(newly, t.Name)
	}
	return newly
}
