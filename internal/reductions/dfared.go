package reductions

import (
	"context"
	"fmt"

	"repro/internal/automata"
	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// DFAToRCDP implements the undecidability reduction of Theorem 3.1(3):
// given a 2-head DFA A it produces an RCDP(FP, CQ) instance over the
// string-encoding schema (P, P̄, F) with empty fixed D and Dm, fixed
// CQ well-formedness constraints V₁–V₃, and an FP query Q that holds on
// a well-formed instance iff it encodes a string accepted by A. The
// empty D is complete for Q iff L(A) = ∅ — undecidable, so the
// instance is consumed by core.BoundedRCDP; the companion function
// DFAQueryAcceptsEncoding validates the heart of the reduction (the
// datalog simulation) directly against the automaton.
func DFAToRCDP(a *automata.DFA) (*RCDPInstance, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	p, pbar, f := automata.StringEncodingSchemas()
	schemas := map[string]*relation.Schema{"P": p, "Pbar": pbar, "F": f}
	d := relation.NewDatabase(p, pbar, f)
	dm := relation.NewDatabase(relation.NewSchema("Rm1", relation.Attr("x")))

	v := wellFormedCCs()
	prog, err := DFAProgram(a)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(schemas); err != nil {
		return nil, err
	}
	return &RCDPInstance{Q: qlang.FromFP(prog), D: d, Dm: dm, V: v, Schemas: schemas}, nil
}

// wellFormedCCs builds the fixed constraints V₁–V₃ of the proof: P and
// P̄ are disjoint, F is a function, and F has at most one self-loop.
func wellFormedCCs() *cc.Set {
	x, y, z := query.Var("x"), query.Var("y"), query.Var("z")
	v1 := cq.New("v1", nil, []query.RelAtom{
		query.Atom("P", x), query.Atom("Pbar", x)})
	v2 := cq.New("v2", nil, []query.RelAtom{
		query.Atom("F", x, y), query.Atom("F", x, z)},
		query.Neq(y, z))
	v3 := cq.New("v3", nil, []query.RelAtom{
		query.Atom("F", x, x), query.Atom("F", y, y)},
		query.Neq(x, y))
	return cc.NewSet(
		cc.FromCQ("v1", v1, cc.EmptySet()),
		cc.FromCQ("v2", v2, cc.EmptySet()),
		cc.FromCQ("v3", v3, cc.EmptySet()),
	)
}

// DFAProgram builds the FP (datalog) query of the reduction: an IDB
// Reach(q, p₁, p₂) closes the transition relation over encoded
// configurations, starting from (q₀, 0, 0); the Boolean output requires
// reaching the accepting state together with the Q_ini and Q_fin
// well-formedness conjuncts (∃x F(0, x) and ∃x F(x, x)).
func DFAProgram(a *automata.DFA) (*datalog.Program, error) {
	state := func(s int) query.Term { return query.C(fmt.Sprintf("q%d", s)) }
	y1, z1 := query.Var("y1"), query.Var("z1")

	var rules []datalog.Rule
	// Seed: the initial configuration, anchored on position 0.
	rules = append(rules, datalog.NewRule(
		query.Atom("Reach", state(a.Start), query.C("0"), query.C("0")),
		datalog.L("F", query.C("0"), query.Var("w")),
	))

	// One rule per transition. α for symbol s at position v requires
	// P/P̄(v) and a proper successor F(v, s) with v ≠ s; α for ε
	// requires the self-loop F(v, v). β moves to the successor or stays.
	for k, val := range a.Delta {
		var body []datalog.Literal
		body = append(body, datalog.L("Reach", state(k.State), y1, z1))
		y2 := addHeadConds(&body, k.In1, val.Move1, y1, "ys")
		z2 := addHeadConds(&body, k.In2, val.Move2, z1, "zs")
		rules = append(rules, datalog.NewRule(
			query.Atom("Reach", state(val.State), y2, z2), body...))
	}

	// Out() <- Reach(q_acc, u, v), F('0', i), F(e, e).
	rules = append(rules, datalog.NewRule(
		query.Atom("Out"),
		datalog.L("Reach", state(a.Accept), query.Var("u"), query.Var("vv")),
		datalog.L("F", query.C("0"), query.Var("ini")),
		datalog.L("F", query.Var("fin"), query.Var("fin")),
	))
	return datalog.NewProgram("dfa", "Out", rules...), nil
}

// addHeadConds appends the α/β literals for one head to the body and
// returns the head's new position term.
func addHeadConds(body *[]datalog.Literal, in automata.Symbol, move automata.Move, pos query.Term, succName string) query.Term {
	succ := query.Var(succName)
	switch in {
	case automata.Sym1:
		*body = append(*body,
			datalog.L("P", pos),
			datalog.L("F", pos, succ),
			datalog.LNeq(pos, succ))
	case automata.Sym0:
		*body = append(*body,
			datalog.L("Pbar", pos),
			datalog.L("F", pos, succ),
			datalog.LNeq(pos, succ))
	default: // ε: the head sits on the end position with the self-loop
		*body = append(*body, datalog.L("F", pos, pos))
	}
	if move == automata.Advance {
		if in == automata.Epsilon {
			// Advancing past the end stays on the self-loop position.
			return pos
		}
		return succ
	}
	return pos
}

// DFAQueryAcceptsEncoding evaluates the reduction's FP query on the
// relational encoding of w, which must coincide with A accepting w —
// the executable content of the Theorem 3.1(3) simulation.
func DFAQueryAcceptsEncoding(a *automata.DFA, w []automata.Symbol) (bool, error) {
	return DFAQueryAcceptsEncodingCtx(context.Background(), a, w)
}

// DFAQueryAcceptsEncodingCtx is DFAQueryAcceptsEncoding under context
// governance: the fixpoint simulation stops within one rule-body row of
// ctx being cancelled. The bounded simulators are where undecidable
// instances (Theorem 3.1) can genuinely diverge, so this is the entry
// point interactive callers should use.
func DFAQueryAcceptsEncodingCtx(ctx context.Context, a *automata.DFA, w []automata.Symbol) (bool, error) {
	prog, err := DFAProgram(a)
	if err != nil {
		return false, err
	}
	var g *query.Gate
	if ctx != nil && ctx.Done() != nil {
		g = query.NewGate(ctx, 0, 0)
	}
	ts, err := prog.EvalGate(automata.EncodeString(w), g)
	return len(ts) > 0, err
}
