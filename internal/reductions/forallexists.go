package reductions

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ForallExistsToRCDP implements the Σ₂ᵖ-hardness reduction of Theorem
// 3.6: given a ∀X∃Y-3SAT instance φ (X = variables 1..nX, Y the rest),
// it produces an RCDP(CQ, INDs) instance with *fixed* master data Dm
// and fixed constraints V (only the query varies, as Corollary 3.7
// requires) such that D is complete for Q relative to (Dm, V) iff
// ∀X∃Y φ evaluates to true.
//
// The construction follows the proof: R₁ carries the Boolean domain,
// R₂/R₃/R₄ the truth tables of ∨/∧/¬, R₅ the table I_c with
// I_c(x, y, 1) iff x = 0 ∨ (x = 1 ∧ y = 1), and R₆ the switch relation
// holding {(1)} in D but {(0), (1)} in Dm. The query returns the X
// assignments for which the R₅ lookup succeeds: with R₆ = {(1)} those
// whose clause value is 1 (∃Y succeeded), and in the extension with
// R₆ ⊇ {(0)} all of them — so completeness is exactly ∀X∃Y φ.
func ForallExistsToRCDP(phi *sat.CNF, nX int) (*RCDPInstance, error) {
	if err := phi.Validate(); err != nil {
		return nil, err
	}
	if nX < 0 || nX > phi.NumVars {
		return nil, fmt.Errorf("reductions: nX=%d out of range", nX)
	}

	schemas := truthTableSchemas()
	schemas = append(schemas,
		relation.NewSchema("R5", relation.Attr("zp"), relation.Attr("z"), relation.Attr("o")),
		relation.NewSchema("R6", relation.Attr("x")),
	)
	d := relation.NewDatabase(schemas...)
	addTruthTables(d)
	for _, t := range [][3]string{{"0", "0", "1"}, {"0", "1", "1"}, {"1", "0", "0"}, {"1", "1", "1"}} {
		d.MustAdd("R5", t[0], t[1], t[2])
	}
	d.MustAdd("R6", "1")

	mSchemas := masterTruthTableSchemas()
	mSchemas = append(mSchemas,
		relation.NewSchema("Rm5", relation.Attr("zp"), relation.Attr("z"), relation.Attr("o")),
		relation.NewSchema("Rm6", relation.Attr("x")),
	)
	dm := relation.NewDatabase(mSchemas...)
	addMasterTruthTables(dm)
	for _, t := range [][3]string{{"0", "0", "1"}, {"0", "1", "1"}, {"1", "0", "0"}, {"1", "1", "1"}} {
		dm.MustAdd("Rm5", t[0], t[1], t[2])
	}
	dm.MustAdd("Rm6", "0")
	dm.MustAdd("Rm6", "1")

	arities := map[string]int{"R1": 1, "R2": 3, "R3": 3, "R4": 2, "R5": 3, "R6": 1}
	v := fullINDs([][2]string{
		{"R1", "Rm1"}, {"R2", "Rm2"}, {"R3", "Rm3"}, {"R4", "Rm4"}, {"R5", "Rm5"}, {"R6", "Rm6"},
	}, arities)

	// Query: head = X variables; body ranges every variable over the
	// Boolean domain, computes the clause conjunction z, and joins
	// R6(z') with R5(z', z, '1').
	varTerm := func(i int) query.Term { return query.Var(fmt.Sprintf("x%d", i)) }
	bc := newBoolCircuit("R2", "R3", "R4")
	var atoms []query.RelAtom
	for i := 1; i <= phi.NumVars; i++ {
		atoms = append(atoms, query.Atom("R1", varTerm(i)))
	}
	clauseVals := make([]query.Term, len(phi.Clauses))
	for ci, cl := range phi.Clauses {
		clauseVals[ci] = bc.clause(cl, varTerm)
	}
	z := bc.conjunction(clauseVals)
	zp := query.Var("zprime")
	atoms = append(atoms, bc.atoms...)
	atoms = append(atoms, query.Atom("R6", zp), query.Atom("R5", zp, z, query.C("1")))

	head := make([]query.Term, nX)
	for i := 1; i <= nX; i++ {
		head[i-1] = varTerm(i)
	}
	q := cq.New("Qfe", head, atoms)

	smap := make(map[string]*relation.Schema, len(schemas))
	for _, s := range schemas {
		smap[s.Name] = s
	}
	if err := q.Validate(smap); err != nil {
		return nil, err
	}
	if err := v.Validate(dm); err != nil {
		return nil, err
	}
	return &RCDPInstance{Q: qlang.FromCQ(q), D: d, Dm: dm, V: v, Schemas: smap}, nil
}
