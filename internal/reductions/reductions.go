// Package reductions implements, as executable constructions, the
// hardness reductions from the proofs of Fan & Geerts: each function
// maps an instance of the source problem (∀∃-3SAT, 3SAT, ∃∀∃-3SAT,
// 2ⁿ×2ⁿ tiling, FO satisfiability, 2-head-DFA emptiness) to an RCDP or
// RCQP instance exactly as in the corresponding proof. Together with
// the solvers in internal/sat, internal/tiling and internal/automata
// they validate the lower-bound rows of Tables I and II on instances
// with known ground truth, and they generate the scaling workloads of
// the benchmark harness.
package reductions

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// RCDPInstance bundles one input of the relatively complete database
// problem.
type RCDPInstance struct {
	Q       qlang.Query
	D       *relation.Database
	Dm      *relation.Database
	V       *cc.Set
	Schemas map[string]*relation.Schema
}

// RCQPInstance bundles one input of the relatively complete query
// problem.
type RCQPInstance struct {
	Q       qlang.Query
	Dm      *relation.Database
	V       *cc.Set
	Schemas map[string]*relation.Schema
}

// boolCircuit accumulates CQ atoms that force fresh variables to carry
// the truth values of Boolean combinations, using the truth-table
// relations R2 (∨), R3 (∧) and R4 (¬) of the Theorem 3.6 construction.
type boolCircuit struct {
	atoms   []query.RelAtom
	negated map[string]query.Term
	fresh   int
	orRel   string
	andRel  string
	notRel  string
}

func newBoolCircuit(orRel, andRel, notRel string) *boolCircuit {
	return &boolCircuit{negated: make(map[string]query.Term), orRel: orRel, andRel: andRel, notRel: notRel}
}

func (bc *boolCircuit) freshVar(prefix string) query.Term {
	bc.fresh++
	return query.Var(fmt.Sprintf("%s%d", prefix, bc.fresh))
}

// lit returns a term carrying the value of the literal, given the term
// carrying its variable's value; negations share one R4 atom per
// variable, and negated constants are folded directly.
func (bc *boolCircuit) lit(l sat.Literal, varTerm func(int) query.Term) query.Term {
	vt := varTerm(l.Var())
	if l.Positive() {
		return vt
	}
	if !vt.IsVar {
		if vt.Val == "1" {
			return query.C("0")
		}
		return query.C("1")
	}
	if nt, ok := bc.negated[vt.Name]; ok {
		return nt
	}
	nt := bc.freshVar("n")
	bc.atoms = append(bc.atoms, query.Atom(bc.notRel, vt, nt))
	bc.negated[vt.Name] = nt
	return nt
}

// or3 emits atoms computing a ∨ b ∨ c.
func (bc *boolCircuit) or3(a, b, c query.Term) query.Term {
	o1 := bc.freshVar("o")
	bc.atoms = append(bc.atoms, query.Atom(bc.orRel, a, b, o1))
	o2 := bc.freshVar("o")
	bc.atoms = append(bc.atoms, query.Atom(bc.orRel, o1, c, o2))
	return o2
}

// clause emits atoms computing the value of a 3SAT clause. Clauses with
// fewer than three literals repeat their last literal (x ∨ x = x).
func (bc *boolCircuit) clause(cl sat.Clause, varTerm func(int) query.Term) query.Term {
	if len(cl) == 0 {
		panic("reductions: empty clause")
	}
	get := func(i int) query.Term {
		if i < len(cl) {
			return bc.lit(cl[i], varTerm)
		}
		return bc.lit(cl[len(cl)-1], varTerm)
	}
	return bc.or3(get(0), get(1), get(2))
}

// conjunction chains R3 atoms over the terms; a single term passes
// through unchanged.
func (bc *boolCircuit) conjunction(terms []query.Term) query.Term {
	return bc.chain(terms, bc.andRel, "a")
}

// disjunction chains R2 atoms over the terms.
func (bc *boolCircuit) disjunction(terms []query.Term) query.Term {
	return bc.chain(terms, bc.orRel, "d")
}

func (bc *boolCircuit) chain(terms []query.Term, rel, prefix string) query.Term {
	if len(terms) == 0 {
		panic("reductions: empty connective chain")
	}
	acc := terms[0]
	for _, t := range terms[1:] {
		next := bc.freshVar(prefix)
		bc.atoms = append(bc.atoms, query.Atom(rel, acc, t, next))
		acc = next
	}
	return acc
}

// truth-table instances shared by the SAT-flavoured reductions.
func addTruthTables(d *relation.Database) {
	d.MustAdd("R1", "0")
	d.MustAdd("R1", "1")
	for _, t := range [][3]string{{"0", "0", "0"}, {"0", "1", "1"}, {"1", "0", "1"}, {"1", "1", "1"}} {
		d.MustAdd("R2", t[0], t[1], t[2])
	}
	for _, t := range [][3]string{{"0", "0", "0"}, {"0", "1", "0"}, {"1", "0", "0"}, {"1", "1", "1"}} {
		d.MustAdd("R3", t[0], t[1], t[2])
	}
	d.MustAdd("R4", "0", "1")
	d.MustAdd("R4", "1", "0")
}

func truthTableSchemas() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("R1", relation.Attr("x")),
		relation.NewSchema("R2", relation.Attr("a"), relation.Attr("b"), relation.Attr("o")),
		relation.NewSchema("R3", relation.Attr("a"), relation.Attr("b"), relation.Attr("o")),
		relation.NewSchema("R4", relation.Attr("x"), relation.Attr("nx")),
	}
}

func masterTruthTableSchemas() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("Rm1", relation.Attr("x")),
		relation.NewSchema("Rm2", relation.Attr("a"), relation.Attr("b"), relation.Attr("o")),
		relation.NewSchema("Rm3", relation.Attr("a"), relation.Attr("b"), relation.Attr("o")),
		relation.NewSchema("Rm4", relation.Attr("x"), relation.Attr("nx")),
	}
}

func addMasterTruthTables(dm *relation.Database) {
	dm.MustAdd("Rm1", "0")
	dm.MustAdd("Rm1", "1")
	for _, t := range [][3]string{{"0", "0", "0"}, {"0", "1", "1"}, {"1", "0", "1"}, {"1", "1", "1"}} {
		dm.MustAdd("Rm2", t[0], t[1], t[2])
	}
	for _, t := range [][3]string{{"0", "0", "0"}, {"0", "1", "0"}, {"1", "0", "0"}, {"1", "1", "1"}} {
		dm.MustAdd("Rm3", t[0], t[1], t[2])
	}
	dm.MustAdd("Rm4", "0", "1")
	dm.MustAdd("Rm4", "1", "0")
}

// fullINDs builds the INDs R_i ⊆ Rm_i over all columns, the containment
// constraints of the Theorem 3.6 construction.
func fullINDs(pairs [][2]string, arities map[string]int) *cc.Set {
	s := cc.NewSet()
	for i, p := range pairs {
		ar := arities[p[0]]
		cols := make([]int, ar)
		mcols := make([]int, ar)
		for j := 0; j < ar; j++ {
			cols[j] = j
			mcols[j] = j
		}
		s.Add(cc.NewIND(fmt.Sprintf("v%d", i+1), p[0], cols, ar, cc.Proj(p[1], mcols...)))
	}
	return s
}
