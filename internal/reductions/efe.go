package reductions

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ExistsForallExistsToRCQP implements the Σ₃ᵖ-hardness reduction of
// Corollary 4.6: given an ∃X∀Y∃Z-3SAT instance ϕ (X = variables 1..nX,
// Y = nX+1..nX+nY, Z the rest) it produces an RCQP(CQ, CQ) instance
// with fixed master data and fixed containment constraints such that
// RCQ(Q, Dm, V) is nonempty iff ϕ evaluates to true.
//
// Per the proof: R₁–R₄ carry the Boolean domain and the ∨/∧/¬ truth
// tables (bounded by full INDs); R_X(a, id) stores one truth assignment
// for X with id a key, so a witness database pins a single X
// assignment; R_b(q, a) carries an attribute a over the infinite
// domain, with the CC q_b(a) :- R_b('1', a) ⊆ π(Rm_b) binding a to 0
// exactly on rows flagged q = 1. The query returns (Y, a) joining
// R_b(q, a) on the computed value q of ∃Z ψ(X, Y, Z).
//
// Deviation from the paper (documented in DESIGN.md): the proof sketch
// describes Q₁ as "returning q = 1 when ∃Z ψ holds and q = 0
// otherwise", a functional dependence that conjunctive projection of Z
// cannot express (a projected Z would make q = 0 derivable whenever
// *some* Z falsifies ψ, collapsing the reduction to ∃X∀Y∀Z). We
// materialize the inner ∃: the query computes ψ under every one of the
// 2^|Z| Z-assignments (as constants) and takes the R₂-chained
// disjunction, so q is exactly the truth value of ∃Z ψ. This preserves
// the reduction's correctness; the query grows exponentially in |Z|
// only, which the validation and benchmark instances keep small.
func ExistsForallExistsToRCQP(phi *sat.CNF, nX, nY int) (*RCQPInstance, error) {
	if err := phi.Validate(); err != nil {
		return nil, err
	}
	if nX < 0 || nY < 0 || nX+nY > phi.NumVars {
		return nil, fmt.Errorf("reductions: bad prefix sizes nX=%d nY=%d", nX, nY)
	}
	nZ := phi.NumVars - nX - nY
	if nZ > 12 {
		return nil, fmt.Errorf("reductions: |Z| = %d too large for the materialized inner ∃", nZ)
	}

	schemas := truthTableSchemas()
	rx := relation.NewSchema("RX", relation.Attr("a"), relation.Attr("id"))
	rb := relation.NewSchema("Rb", relation.Attr("q"), relation.Attr("a"))
	schemas = append(schemas, rx, rb)
	smap := make(map[string]*relation.Schema, len(schemas))
	for _, s := range schemas {
		smap[s.Name] = s
	}

	dm := relation.NewDatabase(append(masterTruthTableSchemas(),
		relation.NewSchema("Rmb", relation.Attr("a")))...)
	addMasterTruthTables(dm)
	dm.MustAdd("Rmb", "0")

	arities := map[string]int{"R1": 1, "R2": 3, "R3": 3, "R4": 2}
	v := fullINDs([][2]string{
		{"R1", "Rm1"}, {"R2", "Rm2"}, {"R3", "Rm3"}, {"R4", "Rm4"},
	}, arities)
	// π_a(RX) ⊆ Rm1: assignments are Boolean.
	v.Add(cc.NewIND("vxa", "RX", []int{0}, 2, cc.Proj("Rm1", 0)))
	// id is a key of RX.
	keyFD := &cc.FD{Name: "vkey", Rel: "RX", From: []int{1}, To: []int{0}}
	v.Add(keyFD.ToCCs(2)...)
	// q_b(a) :- Rb('1', a) ⊆ π(Rm_b): rows flagged q = 1 pin a to 0.
	qb := cq.New("qb", []query.Term{query.Var("a")},
		[]query.RelAtom{query.Atom("Rb", query.C("1"), query.Var("a"))})
	v.Add(cc.FromCQ("vb", qb, cc.Proj("Rmb", 0)))

	// Query Q(Y, a) = Q_x(X) ∧ Q₁(X, Y, q) ∧ R_b(q, a).
	varTerm := func(i int) query.Term { return query.Var(fmt.Sprintf("x%d", i)) }
	var atoms []query.RelAtom
	for i := 1; i <= nX; i++ {
		atoms = append(atoms, query.Atom("RX", varTerm(i), query.C(fmt.Sprintf("id%d", i))))
	}
	for i := nX + 1; i <= nX+nY; i++ {
		atoms = append(atoms, query.Atom("R1", varTerm(i)))
	}
	bc := newBoolCircuit("R2", "R3", "R4")
	var branchVals []query.Term
	for mask := 0; mask < (1 << nZ); mask++ {
		// Literal terms under this Z-assignment: Z variables become
		// constants, X/Y variables stay shared across branches.
		vt := func(i int) query.Term {
			if i > nX+nY {
				if mask&(1<<(i-nX-nY-1)) != 0 {
					return query.C("1")
				}
				return query.C("0")
			}
			return varTerm(i)
		}
		// Fresh negation cache per branch: constants under different
		// branches must not collide in the cache keyed by name.
		bc.negated = make(map[string]query.Term)
		clauseVals := make([]query.Term, len(phi.Clauses))
		for ci, cl := range phi.Clauses {
			clauseVals[ci] = bc.clause(cl, vt)
		}
		branchVals = append(branchVals, bc.conjunction(clauseVals))
	}
	qv := bc.disjunction(branchVals)
	a := query.Var("aOut")
	atoms = append(atoms, bc.atoms...)
	atoms = append(atoms, query.Atom("Rb", qv, a))

	head := make([]query.Term, 0, nY+1)
	for i := nX + 1; i <= nX+nY; i++ {
		head = append(head, varTerm(i))
	}
	head = append(head, a)
	q := cq.New("Qefe", head, atoms)
	if err := q.Validate(smap); err != nil {
		return nil, err
	}
	if err := v.Validate(dm); err != nil {
		return nil, err
	}
	return &RCQPInstance{Q: qlang.FromCQ(q), Dm: dm, V: v, Schemas: smap}, nil
}

// EFEWitness constructs the candidate witness database of the
// Corollary 4.6 proof for a given X assignment: the fixed truth tables,
// R_X pinning the assignment, and R_b = {(1, 0)}. When ∃X∀Y∃Z ϕ holds
// with this X witness, the database is complete for the reduction's
// query (verify with core.RCDP).
func EFEWitness(inst *RCQPInstance, xAssign map[int]bool) *relation.Database {
	var ss []*relation.Schema
	for _, name := range []string{"R1", "R2", "R3", "R4", "RX", "Rb"} {
		ss = append(ss, inst.Schemas[name])
	}
	d := relation.NewDatabase(ss...)
	addTruthTables(d)
	for i, val := range xAssign {
		bit := "0"
		if val {
			bit = "1"
		}
		d.MustAdd("RX", bit, fmt.Sprintf("id%d", i))
	}
	d.MustAdd("Rb", "1", "0")
	return d
}
