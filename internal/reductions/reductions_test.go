package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sat"
)

func randomCNF(rng *rand.Rand, nVars, nClauses int) *sat.CNF {
	f := sat.NewCNF(nVars)
	for i := 0; i < nClauses; i++ {
		cl := make(sat.Clause, 3)
		for j := range cl {
			l := sat.Literal(rng.Intn(nVars) + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// TestForallExistsReduction cross-validates the Theorem 3.6 reduction:
// the RCDP verdict on the constructed instance must equal the QBF
// ground truth, across random ∀∃-3SAT instances.
func TestForallExistsReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(3) // total variables 2..4
		phi := randomCNF(rng, n, 1+rng.Intn(4))
		nX := 1 + rng.Intn(n-1)
		want := sat.ForallExists(phi, nX)

		inst, err := ForallExistsToRCDP(phi, nX)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r, err := core.RCDP(inst.Q, inst.D, inst.Dm, inst.V)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Complete != want {
			t.Fatalf("trial %d: RCDP complete=%v but ∀∃ = %v\nφ = %s (nX=%d)",
				trial, r.Complete, want, phi, nX)
		}
	}
}

// TestForallExistsKnown pins two hand-checked instances.
func TestForallExistsKnown(t *testing.T) {
	// ∀x1 ∃x2 (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): true (x2 = ¬x1).
	phiTrue := sat.NewCNF(2, sat.Clause{1, 2}, sat.Clause{-1, -2})
	inst, err := ForallExistsToRCDP(phiTrue, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RCDP(inst.Q, inst.D, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("true sentence must yield a complete database; extension %v", r.Extension)
	}
	// ∀x1 ∃x2 (x1): false.
	phiFalse := sat.NewCNF(2, sat.Clause{1})
	inst, err = ForallExistsToRCDP(phiFalse, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err = core.RCDP(inst.Q, inst.D, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("false sentence must yield an incomplete database")
	}
	// The counterexample extension must include the R6 switch tuple (0).
	if r.Extension == nil || !r.Extension.Contains("R6", relation.T("0")) {
		t.Fatalf("counterexample must flip the R6 switch; extension %v", r.Extension)
	}
}

// TestThreeSATReduction cross-validates the Theorem 4.5(1) reduction:
// RCQ(Q, Dm, V) is empty iff φ is satisfiable, with the exact
// Proposition 4.3 decider on one side and DPLL on the other.
func TestThreeSATReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4)
		phi := randomCNF(rng, n, 1+rng.Intn(3*n))
		_, satisfiable := phi.Solve()

		inst, err := ThreeSATToRCQP(phi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := core.RCQP(inst.Q, inst.Dm, inst.V, inst.Schemas)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		switch {
		case satisfiable && res.Status != core.No:
			t.Fatalf("trial %d: φ satisfiable but RCQP = %v\nφ = %s", trial, res.Status, phi)
		case !satisfiable && res.Status != core.Yes:
			t.Fatalf("trial %d: φ unsatisfiable but RCQP = %v\nφ = %s", trial, res.Status, phi)
		}
	}
}

// TestEFEReduction cross-validates the Corollary 4.6 reduction on the
// witness side: when ∃X∀Y∃Z ϕ holds, the witness database built from
// the X assignment must be complete; when it fails, the same shape of
// database must be incomplete for every X assignment.
func TestEFEReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		nX, nY, nZ := 1, 1, 1
		if trial%3 == 0 {
			nY = 2
		}
		n := nX + nY + nZ
		phi := randomCNF(rng, n, 1+rng.Intn(4))
		inst, err := ExistsForallExistsToRCQP(phi, nX, nY)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		witnessX, holds := sat.ExistsWitness(phi, nX, nY)
		if holds {
			d := EFEWitness(inst, witnessX)
			r, err := core.RCDP(inst.Q, d, inst.Dm, inst.V)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !r.Complete {
				t.Fatalf("trial %d: ϕ true via X=%v but witness incomplete (ext %v)\nφ = %s",
					trial, witnessX, r.Extension, phi)
			}
		} else {
			// Every X assignment yields an incomplete database.
			for mask := 0; mask < (1 << nX); mask++ {
				assign := make(map[int]bool, nX)
				for i := 1; i <= nX; i++ {
					assign[i] = mask&(1<<(i-1)) != 0
				}
				d := EFEWitness(inst, assign)
				r, err := core.RCDP(inst.Q, d, inst.Dm, inst.V)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if r.Complete {
					t.Fatalf("trial %d: ϕ false but witness X=%v complete\nφ = %s", trial, assign, phi)
				}
			}
		}
	}
}

// TestDFASimulation validates the executable heart of Theorem 3.1(3):
// the FP query of the reduction, evaluated on the relational encoding
// of w, agrees with direct automaton simulation.
func TestDFASimulation(t *testing.T) {
	autos := map[string]*automata.DFA{
		"firstIsOne": func() *automata.DFA {
			a := automata.New(2, 0, 1)
			a.AddWild2(0, automata.Sym1, 1, automata.Advance)
			return a
		}(),
		"evenLength": func() *automata.DFA {
			a := automata.New(3, 0, 2)
			for _, s := range []automata.Symbol{automata.Sym0, automata.Sym1} {
				a.AddWild2(0, s, 1, automata.Advance)
				a.AddWild2(1, s, 0, automata.Advance)
			}
			a.AddWild2(0, automata.Epsilon, 2, automata.Stay)
			return a
		}(),
		"secondHeadMatch": func() *automata.DFA {
			a := automata.New(3, 0, 2)
			for _, s1 := range []automata.Symbol{automata.Sym0, automata.Sym1} {
				for _, s2 := range []automata.Symbol{automata.Sym0, automata.Sym1} {
					a.Add(0, s1, s2, 1, automata.Advance, automata.Stay)
				}
			}
			a.Add(1, automata.Sym0, automata.Sym0, 2, automata.Stay, automata.Stay)
			a.Add(1, automata.Sym1, automata.Sym1, 2, automata.Stay, automata.Stay)
			return a
		}(),
	}
	words := []string{"", "0", "1", "00", "01", "10", "11", "010", "110", "1011"}
	for name, a := range autos {
		for _, ws := range words {
			sym, err := automata.Word(ws)
			if err != nil {
				t.Fatal(err)
			}
			want := a.Accepts(sym)
			got, err := DFAQueryAcceptsEncoding(a, sym)
			if err != nil {
				t.Fatalf("%s/%q: %v", name, ws, err)
			}
			if got != want {
				t.Fatalf("%s/%q: FP query = %v, simulator = %v", name, ws, got, want)
			}
		}
	}
}

// TestDFAWellFormedness: encodings of real strings satisfy V₁–V₃, and
// corrupt encodings violate them.
func TestDFAWellFormedness(t *testing.T) {
	v := wellFormedCCs()
	sym, _ := automata.Word("0110")
	d := automata.EncodeString(sym)
	if ok, err := v.Satisfied(d, nil); err != nil || !ok {
		t.Fatalf("valid encoding rejected: %v %v", ok, err)
	}
	// Position 0 carries symbol 0; marking it with P too overlaps P/P̄.
	bad := d.Clone()
	bad.MustAdd("P", "0")
	if ok, _ := v.Satisfied(bad, nil); ok {
		t.Fatal("P/Pbar overlap accepted")
	}
	// F not a function.
	bad2 := d.Clone()
	bad2.MustAdd("F", "0", "9")
	if ok, _ := v.Satisfied(bad2, nil); ok {
		t.Fatal("non-functional F accepted")
	}
	// Two self-loops.
	bad3 := d.Clone()
	bad3.MustAdd("F", "9", "9")
	if ok, _ := v.Satisfied(bad3, nil); ok {
		t.Fatal("two final positions accepted")
	}
}

// TestDFABoundedRCDP demonstrates the Theorem 3.1(3) statement on a
// bounded scale: the empty database is incomplete exactly when the
// automaton accepts some short word (an extension encoding it exists).
func TestDFABoundedRCDP(t *testing.T) {
	accepting := automata.New(2, 0, 1)
	accepting.Add(0, automata.Epsilon, automata.Epsilon, 1, automata.Stay, automata.Stay)
	inst, err := DFAToRCDP(accepting)
	if err != nil {
		t.Fatal(err)
	}
	// The empty word is accepted: its encoding is the single tuple
	// F(0,0), so a 1-tuple extension must be found.
	r, err := core.BoundedRCDP(inst.Q, inst.D, inst.Dm, inst.V, core.BoundedOpts{MaxAdd: 1, FreshValues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Incomplete {
		t.Fatal("accepting automaton: empty D must be incomplete")
	}
	dead := automata.New(2, 0, 1) // no transitions: L(A) = ∅
	inst, err = DFAToRCDP(dead)
	if err != nil {
		t.Fatal(err)
	}
	r, err = core.BoundedRCDP(inst.Q, inst.D, inst.Dm, inst.V, core.BoundedOpts{MaxAdd: 1, FreshValues: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Incomplete {
		t.Fatal("empty-language automaton: empty D complete up to bound")
	}
}
