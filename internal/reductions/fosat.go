package reductions

import (
	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/fo"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// FOSatToRCDP implements the undecidability reduction of Theorem
// 3.1(1): given an FO query q over a single relation E(a, b), it
// produces an RCDP(FO, CQ) instance with empty fixed D and Dm and no
// containment constraints such that D is complete for the derived
// Boolean query Q′ iff q is unsatisfiable (Q′ holds on a database iff
// q has a nonempty answer there; the empty D answers Q′ negatively, so
// completeness says no extension satisfies q).
//
// RCDP is undecidable here, so the instance is consumed by
// core.BoundedRCDP: finding an extension certifies satisfiability;
// exhausting the bound certifies unsatisfiability up to that bound.
func FOSatToRCDP(q *fo.Query) (*RCDPInstance, error) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	schemas := map[string]*relation.Schema{"E": e}
	if err := q.Validate(schemas); err != nil {
		return nil, err
	}
	d := relation.NewDatabase(e)
	dm := relation.NewDatabase(relation.NewSchema("Rm1", relation.Attr("x")))
	// Q′() :- ∃(free vars) q.Body — Boolean closure of q.
	qPrime := fo.NewQuery("Qprime", nil, fo.FExists(fo.FreeVars(q.Body), q.Body))
	return &RCDPInstance{
		Q: qlang.FromFO(qPrime), D: d, Dm: dm, V: cc.NewSet(), Schemas: schemas,
	}, nil
}

// FOSatToRCDPviaCC implements the undecidability reduction of Theorem
// 3.1(2), where the FO power sits in the constraint language L_C and
// the query is a plain CQ: V contains the single FO containment
// constraint "D is nonempty and q(D) is empty" ⊆ ∅, so partially closed
// nonempty databases are exactly the models of q; the CQ query tests
// nonemptiness. The empty D is complete iff q is unsatisfiable.
func FOSatToRCDPviaCC(q *fo.Query) (*RCDPInstance, error) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	schemas := map[string]*relation.Schema{"E": e}
	if err := q.Validate(schemas); err != nil {
		return nil, err
	}
	d := relation.NewDatabase(e)
	dm := relation.NewDatabase(relation.NewSchema("Rm1", relation.Attr("x")))

	// qcc() :- (¬∃ q.Body) ∧ ∃xy E(x, y)   ⊆ ∅.
	nonEmpty := fo.FExists([]string{"x", "y"}, fo.FAtom("E", query.Var("x"), query.Var("y")))
	notQ := fo.FNot(fo.FExists(fo.FreeVars(q.Body), q.Body))
	qcc := fo.NewQuery("qcc", nil, fo.FAnd(notQ, nonEmpty))
	v := cc.NewSet(cc.FromFO("vfo", qcc, cc.EmptySet()))

	// CQ query testing nonemptiness.
	cqq := cq.New("Qne", nil, []query.RelAtom{query.Atom("E", query.Var("x"), query.Var("y"))})
	return &RCDPInstance{
		Q: qlang.FromCQ(cqq), D: d, Dm: dm, V: v, Schemas: schemas,
	}, nil
}

// FOSatToRCQP implements the undecidability reduction of Theorem
// 4.1(2): the same FO containment constraint as FOSatToRCDPviaCC plus
// an auxiliary unconstrained unary relation Ru; the query returns
// Ru's content whenever E is nonempty. When q is unsatisfiable only
// E-empty databases are partially closed, the query is constantly
// empty, and any database is complete; when q is satisfiable, Ru can
// always be extended with fresh values, so no complete database exists.
func FOSatToRCQP(q *fo.Query) (*RCQPInstance, error) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	ru := relation.NewSchema("Ru", relation.Attr("u"))
	schemas := map[string]*relation.Schema{"E": e, "Ru": ru}
	if err := q.Validate(map[string]*relation.Schema{"E": e}); err != nil {
		return nil, err
	}
	dm := relation.NewDatabase(relation.NewSchema("Rm1", relation.Attr("x")))

	nonEmpty := fo.FExists([]string{"x", "y"}, fo.FAtom("E", query.Var("x"), query.Var("y")))
	notQ := fo.FNot(fo.FExists(fo.FreeVars(q.Body), q.Body))
	qcc := fo.NewQuery("qcc", nil, fo.FAnd(notQ, nonEmpty))
	v := cc.NewSet(cc.FromFO("vfo", qcc, cc.EmptySet()))

	cqq := cq.New("Qu", []query.Term{query.Var("u")},
		[]query.RelAtom{
			query.Atom("E", query.Var("x"), query.Var("y")),
			query.Atom("Ru", query.Var("u")),
		})
	return &RCQPInstance{Q: qlang.FromCQ(cqq), Dm: dm, V: v, Schemas: schemas}, nil
}
