package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tiling"
)

// TestTilingWitnessComplete2x2 validates the Theorem 4.5(2) reduction's
// yes side at n = 1: the witness built from a solver tiling is complete
// for the reduction's query.
func TestTilingWitnessComplete2x2(t *testing.T) {
	in := tiling.New(2, 1)
	in.AllowV(0, 1)
	in.AllowV(1, 0)
	in.AllowH(0, 1)
	in.AllowH(1, 0)
	g, ok := in.Solve()
	if !ok {
		t.Fatal("checkerboard must be solvable")
	}
	inst, err := TilingToRCQP(in)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TilingWitness(inst, in, g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RCDP(inst.Q, w, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("tiling witness must be complete; extension %v", r.Extension)
	}
}

// TestTilingUnsolvableIncomplete validates the no side at n = 1: with
// no tiling, candidate databases — including the empty one and one
// storing an invalid trace — stay incomplete (R_b can always grow).
func TestTilingUnsolvableIncomplete(t *testing.T) {
	in := tiling.New(2, 1) // t0 has no right neighbour: unsolvable
	in.AllowV(0, 1)
	in.AllowV(1, 1)
	in.AllowH(1, 1)
	if in.Solvable() {
		t.Fatal("instance should be unsolvable")
	}
	inst, err := TilingToRCQP(in)
	if err != nil {
		t.Fatal(err)
	}
	var ss []*relation.Schema
	for _, s := range inst.Schemas {
		ss = append(ss, s)
	}
	empty := relation.NewDatabase(ss...)
	r, err := core.RCDP(inst.Q, empty, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("empty database must be incomplete when no tiling exists")
	}
	// A database with only the bound tuple is still incomplete: without
	// a stored tiling the φ constraint never fires, so R_b stays open.
	d2 := empty.Clone()
	d2.MustAdd("Rb", "bound")
	r, err = core.RCDP(inst.Q, d2, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("bound-only database must be incomplete when no tiling exists")
	}
}

// TestTilingCorruptTraceRejected: storing an adjacency-violating square
// breaks partial closure, confirming the well-formedness constraints.
func TestTilingCorruptTraceRejected(t *testing.T) {
	in := tiling.New(2, 1)
	in.AllowV(0, 1)
	in.AllowV(1, 0)
	in.AllowH(0, 1)
	in.AllowH(1, 0)
	inst, err := TilingToRCQP(in)
	if err != nil {
		t.Fatal(err)
	}
	var ss []*relation.Schema
	for _, s := range inst.Schemas {
		ss = append(ss, s)
	}
	d := relation.NewDatabase(ss...)
	// (0,0,0,0) violates both compatibility relations.
	d.MustAdd("T1", "h1", "tile0", "tile0", "tile0", "tile0", "tile0")
	ok, err := inst.V.Satisfied(d, inst.Dm)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("incompatible square accepted by V")
	}
	// Wrong Z is also rejected.
	d2 := relation.NewDatabase(ss...)
	d2.MustAdd("T1", "h1", "tile0", "tile1", "tile1", "tile0", "tile1")
	ok, err = inst.V.Satisfied(d2, inst.Dm)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("square with Z ≠ top-left tile accepted by V")
	}
}

// TestTilingWitnessComplete4x4 validates the reduction at n = 2, where
// the hypertile glue machinery is actually exercised.
func TestTilingWitnessComplete4x4(t *testing.T) {
	in := tiling.New(2, 2)
	in.AllowV(0, 1)
	in.AllowV(1, 0)
	in.AllowH(0, 1)
	in.AllowH(1, 0)
	g, ok := in.Solve()
	if !ok {
		t.Fatal("4x4 checkerboard must be solvable")
	}
	inst, err := TilingToRCQP(in)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TilingWitness(inst, in, g)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := inst.V.Satisfied(w, inst.Dm); err != nil || !ok {
		t.Fatalf("4x4 witness not partially closed: %v %v", ok, err)
	}
	r, err := core.RCDP(inst.Q, w, inst.Dm, inst.V)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("4x4 tiling witness must be complete; extension %v", r.Extension)
	}
}

// TestTilingRandom cross-validates solvability against witness
// completeness on random 2x2 instances.
func TestTilingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		in := tiling.New(2, 1)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if rng.Intn(2) == 0 {
					in.AllowV(tiling.Tile(a), tiling.Tile(b))
				}
				if rng.Intn(2) == 0 {
					in.AllowH(tiling.Tile(a), tiling.Tile(b))
				}
			}
		}
		inst, err := TilingToRCQP(in)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := in.Solve(); ok {
			w, err := TilingWitness(inst, in, g)
			if err != nil {
				t.Fatal(err)
			}
			r, err := core.RCDP(inst.Q, w, inst.Dm, inst.V)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Complete {
				t.Fatalf("trial %d: witness incomplete; ext %v", trial, r.Extension)
			}
		}
	}
}

// TestFOSatReductions validates the Theorem 3.1(1,2)/4.1(2) reductions
// through the bounded procedures with known-satisfiability FO queries.
func TestFOSatReductions(t *testing.T) {
	x, y := query.Var("x"), query.Var("y")
	// Satisfiable: ∃xy E(x,y) ∧ x ≠ y.
	satQ := fo.NewQuery("q", nil,
		fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNeq(x, y))))
	// Unsatisfiable: ∃xy (E(x,y) ∧ ¬E(x,y)).
	unsatQ := fo.NewQuery("q", nil,
		fo.FExists([]string{"x", "y"},
			fo.FAnd(fo.FAtom("E", x, y), fo.FNot(fo.FAtom("E", x, y)))))
	opts := core.BoundedOpts{MaxAdd: 1, FreshValues: 2}

	for _, tc := range []struct {
		name string
		q    *fo.Query
		sat  bool
	}{{"sat", satQ, true}, {"unsat", unsatQ, false}} {
		// Theorem 3.1(1): L_Q = FO.
		inst, err := FOSatToRCDP(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.BoundedRCDP(inst.Q, inst.D, inst.Dm, inst.V, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Incomplete != tc.sat {
			t.Fatalf("%s: 3.1(1) incomplete=%v want %v", tc.name, r.Incomplete, tc.sat)
		}
		// Theorem 3.1(2): L_C = FO.
		inst, err = FOSatToRCDPviaCC(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		r, err = core.BoundedRCDP(inst.Q, inst.D, inst.Dm, inst.V, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Incomplete != tc.sat {
			t.Fatalf("%s: 3.1(2) incomplete=%v want %v", tc.name, r.Incomplete, tc.sat)
		}
		// Theorem 4.1(2): RCQP with the FO constraint. For unsat q the
		// empty database is complete (bounded search finds it); for sat
		// q no small witness exists.
		qinst, err := FOSatToRCQP(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		// Exposing incompleteness of a candidate takes two tuples here
		// (an E pair plus an Ru tuple), so the inner bound must be 2.
		br, err := core.BoundedRCQP(qinst.Q, qinst.Dm, qinst.V, qinst.Schemas, 1,
			core.BoundedOpts{MaxAdd: 2, FreshValues: 2})
		if err != nil {
			t.Fatal(err)
		}
		if br.Found == tc.sat {
			t.Fatalf("%s: 4.1(2) witness found=%v want %v", tc.name, br.Found, !tc.sat)
		}
	}
}
