package reductions

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ThreeSATToRCQP implements the coNP-hardness reduction of Theorem
// 4.5(1): given a 3SAT instance φ over n variables it produces an
// RCQP(CQ, INDs) instance with fixed master data and fixed INDs such
// that RCQ(Q, Dm, V) is empty iff φ is satisfiable.
//
// Per the proof: R_t(x, x̄) enforces complementary truth values via the
// IND into Rm_t = {(0,1), (1,0)}; R_∨ enforces clause satisfaction via
// the IND into the seven satisfying rows of Rm_∨; and R(A, x₁, x̄₁, …,
// x_n, x̄_n) carries a truth assignment next to an attribute A over the
// infinite domain. The query returns A. When φ is satisfiable the
// A-column can always be extended with a fresh value alongside a
// satisfying assignment, so no database is complete; when φ is
// unsatisfiable the query's answer is empty everywhere and the empty
// database is complete.
func ThreeSATToRCQP(phi *sat.CNF) (*RCQPInstance, error) {
	if err := phi.Validate(); err != nil {
		return nil, err
	}
	n := phi.NumVars

	rt := relation.NewSchema("Rt", relation.Attr("x"), relation.Attr("nx"))
	ror := relation.NewSchema("Ror", relation.Attr("l1"), relation.Attr("l2"), relation.Attr("l3"))
	attrs := []relation.Attribute{relation.Attr("A")}
	for i := 1; i <= n; i++ {
		attrs = append(attrs, relation.Attr(fmt.Sprintf("x%d", i)), relation.Attr(fmt.Sprintf("nx%d", i)))
	}
	r := relation.NewSchema("R", attrs...)
	schemas := map[string]*relation.Schema{"Rt": rt, "Ror": ror, "R": r}

	dm := relation.NewDatabase(
		relation.NewSchema("Rmt", relation.Attr("x"), relation.Attr("nx")),
		relation.NewSchema("Rmor", relation.Attr("l1"), relation.Attr("l2"), relation.Attr("l3")),
	)
	dm.MustAdd("Rmt", "0", "1")
	dm.MustAdd("Rmt", "1", "0")
	for _, t := range [][3]string{
		{"0", "0", "1"}, {"0", "1", "0"}, {"0", "1", "1"},
		{"1", "0", "0"}, {"1", "0", "1"}, {"1", "1", "0"}, {"1", "1", "1"},
	} {
		dm.MustAdd("Rmor", t[0], t[1], t[2])
	}

	v := cc.NewSet(
		cc.NewIND("vt", "Rt", []int{0, 1}, 2, cc.Proj("Rmt", 0, 1)),
		cc.NewIND("vor", "Ror", []int{0, 1, 2}, 3, cc.Proj("Rmor", 0, 1, 2)),
	)

	// Q(z) :- R(z, x1, nx1, …), Rt(x_i, nx_i), R∨(l1, l2, l3) per clause.
	pos := func(i int) query.Term { return query.Var(fmt.Sprintf("x%d", i)) }
	neg := func(i int) query.Term { return query.Var(fmt.Sprintf("nx%d", i)) }
	litTerm := func(l sat.Literal) query.Term {
		if l.Positive() {
			return pos(l.Var())
		}
		return neg(l.Var())
	}
	z := query.Var("z")
	rArgs := []query.Term{z}
	for i := 1; i <= n; i++ {
		rArgs = append(rArgs, pos(i), neg(i))
	}
	atoms := []query.RelAtom{{Rel: "R", Args: rArgs}}
	for i := 1; i <= n; i++ {
		atoms = append(atoms, query.Atom("Rt", pos(i), neg(i)))
	}
	for _, cl := range phi.Clauses {
		get := func(i int) query.Term {
			if i < len(cl) {
				return litTerm(cl[i])
			}
			return litTerm(cl[len(cl)-1])
		}
		atoms = append(atoms, query.Atom("Ror", get(0), get(1), get(2)))
	}
	q := cq.New("Qsat", []query.Term{z}, atoms)
	if err := q.Validate(schemas); err != nil {
		return nil, err
	}
	if err := v.Validate(dm); err != nil {
		return nil, err
	}
	return &RCQPInstance{Q: qlang.FromCQ(q), Dm: dm, V: v, Schemas: schemas}, nil
}
