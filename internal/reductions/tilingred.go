package reductions

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/tiling"
)

// glueSpec describes how one glue hypertile of the Theorem 4.5(2)
// encoding relates to the four quarter hypertiles: glue quarter qp must
// equal quarter srcQ of the hypertile referenced at column srcCol.
// Column layout of R_i (i ≥ 2): 0 id, 1–4 id₁..id₄ (TL, TR, BL, BR),
// 5 id₁₂, 6 id₁₃, 7 id₂₄, 8 id₃₄, 9 id₁₂₃₄, 10 Z.
type glueSpec struct {
	glueCol int
	eqs     [4]struct{ srcCol, srcQ int } // glue quarter i+1 = src[srcCol].quarter(srcQ)
}

// glueSpecs encodes the seam equations (note: the paper's listing for
// id₁₂₃₄ reads (a₄, b₃, c₃, d₁); the center square's bottom-left is the
// top-right of the BL quarter, i.e. c₂ — we implement the geometrically
// correct c₂).
var glueSpecs = []glueSpec{
	{5, [4]struct{ srcCol, srcQ int }{{1, 2}, {2, 1}, {1, 4}, {2, 3}}}, // id12
	{6, [4]struct{ srcCol, srcQ int }{{1, 3}, {1, 4}, {3, 1}, {3, 2}}}, // id13
	{7, [4]struct{ srcCol, srcQ int }{{2, 3}, {2, 4}, {4, 1}, {4, 2}}}, // id24
	{8, [4]struct{ srcCol, srcQ int }{{3, 2}, {4, 1}, {3, 4}, {4, 3}}}, // id34
	{9, [4]struct{ srcCol, srcQ int }{{1, 4}, {2, 3}, {3, 2}, {4, 1}}}, // id1234 (center)
}

// TilingToRCQP implements the NEXPTIME-hardness reduction of Theorem
// 4.5(2): given a 2ⁿ×2ⁿ tiling instance it produces an RCQP(CQ, CQ)
// instance such that RCQ(Q, Dm, V) is nonempty iff the tiling problem
// has a solution. R₁ stores rank-1 hypertiles (2×2 squares of tiles)
// with adjacency enforced by INDs into the master compatibility
// relations; R_i stores rank-i hypertiles as quadruples of rank-(i−1)
// identifiers together with the five glue hypertiles whose equations
// enforce seam compatibility; the final CC binds the unary relation R_b
// to the master bound exactly when a well-founded rank-n hypertile with
// top-left tile t₀ exists, and the query simply returns R_b.
func TilingToRCQP(in *tiling.Instance) (*RCQPInstance, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n := in.N
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("reductions: tiling exponent n=%d out of supported range 1..4", n)
	}

	schemas := make(map[string]*relation.Schema)
	r1 := relation.NewSchema("T1",
		relation.Attr("id"), relation.Attr("x1"), relation.Attr("x2"),
		relation.Attr("x3"), relation.Attr("x4"), relation.Attr("z"))
	schemas["T1"] = r1
	for i := 2; i <= n; i++ {
		attrs := []relation.Attribute{relation.Attr("id"),
			relation.Attr("id1"), relation.Attr("id2"), relation.Attr("id3"), relation.Attr("id4"),
			relation.Attr("g12"), relation.Attr("g13"), relation.Attr("g24"), relation.Attr("g34"),
			relation.Attr("gc"), relation.Attr("z")}
		schemas[relName(i)] = relation.NewSchema(relName(i), attrs...)
	}
	schemas["Rb"] = relation.NewSchema("Rb", relation.Attr("w"))

	// Master data: the tile set, compatibility relations and the bound.
	dm := relation.NewDatabase(
		relation.NewSchema("RmT", relation.Attr("t")),
		relation.NewSchema("RmV", relation.Attr("a"), relation.Attr("b")),
		relation.NewSchema("RmH", relation.Attr("a"), relation.Attr("b")),
		relation.NewSchema("Rmb", relation.Attr("w")),
	)
	for t := 0; t < in.NumTiles; t++ {
		dm.MustAdd("RmT", tileVal(tiling.Tile(t)))
	}
	for p := range in.V {
		dm.MustAdd("RmV", tileVal(p.A), tileVal(p.B))
	}
	for p := range in.H {
		dm.MustAdd("RmH", tileVal(p.A), tileVal(p.B))
	}
	dm.MustAdd("Rmb", "bound")

	v := cc.NewSet()
	// R1 well-formedness.
	key1 := &cc.FD{Name: "key1", Rel: "T1", From: []int{0}, To: []int{1, 2, 3, 4, 5}}
	v.Add(key1.ToCCs(6)...)
	for _, col := range []int{1, 2, 3, 4, 5} {
		v.Add(cc.NewIND(fmt.Sprintf("t1tile%d", col), "T1", []int{col}, 6, cc.Proj("RmT", 0)))
	}
	v.Add(cc.NewIND("t1vertL", "T1", []int{1, 3}, 6, cc.Proj("RmV", 0, 1)))
	v.Add(cc.NewIND("t1vertR", "T1", []int{2, 4}, 6, cc.Proj("RmV", 0, 1)))
	v.Add(cc.NewIND("t1horT", "T1", []int{1, 2}, 6, cc.Proj("RmH", 0, 1)))
	v.Add(cc.NewIND("t1horB", "T1", []int{3, 4}, 6, cc.Proj("RmH", 0, 1)))
	// Z = top-left tile: σ_{x1 ≠ z}(T1) ⊆ ∅.
	topl := cq.New("t1topl", nil,
		[]query.RelAtom{query.Atom("T1", v6("id", "a1", "a2", "a3", "a4", "z")...)},
		query.Neq(query.Var("a1"), query.Var("z")))
	v.Add(cc.FromCQ("t1topl", topl, cc.EmptySet()))

	// R_i (i ≥ 2) well-formedness: key + glue equations + Z chaining.
	for i := 2; i <= n; i++ {
		keyI := &cc.FD{Name: fmt.Sprintf("key%d", i), Rel: relName(i),
			From: []int{0}, To: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
		v.Add(keyI.ToCCs(11)...)
		sub := relName(i - 1)
		subAr := arity(i - 1)
		for gi, gs := range glueSpecs {
			for qp := 1; qp <= 4; qp++ {
				eq := gs.eqs[qp-1]
				// q() :- R_i(t…), sub(s1…), sub(s2…),
				//        s1.id = t[srcCol], s2.id = t[glueCol],
				//        s2[qp] ≠ s1[srcQ]  ⊆ ∅.
				tArgs := freshArgs("t", 11)
				s1 := freshArgs("s1_", subAr)
				s2 := freshArgs("s2_", subAr)
				q := cq.New(fmt.Sprintf("glue%d_%d_%d", i, gi, qp), nil,
					[]query.RelAtom{
						{Rel: relName(i), Args: tArgs},
						{Rel: sub, Args: s1},
						{Rel: sub, Args: s2},
					},
					query.Eq(s1[0], tArgs[eq.srcCol]),
					query.Eq(s2[0], tArgs[gs.glueCol]),
					query.Neq(s2[qp], s1[eq.srcQ]),
				)
				v.Add(cc.FromCQ(q.Name, q, cc.EmptySet()))
			}
		}
		// Z chaining: t.z equals the z of the hypertile at t.id1.
		tArgs := freshArgs("t", 11)
		s1 := freshArgs("s", subAr)
		zq := cq.New(fmt.Sprintf("zchain%d", i), nil,
			[]query.RelAtom{
				{Rel: relName(i), Args: tArgs},
				{Rel: sub, Args: s1},
			},
			query.Eq(s1[0], tArgs[1]),
			query.Neq(s1[subAr-1], tArgs[10]),
		)
		v.Add(cc.FromCQ(zq.Name, zq, cc.EmptySet()))
	}

	// Final CC φ: q(w) :- Qsn(t) ∧ t.z = t0 ∧ Rb(w) ⊆ π(Rmb), where Qsn
	// unfolds the identifier chain all the way down to T1.
	fresh := 0
	var unfoldAtoms []query.RelAtom
	var unfold func(rank int, id query.Term) query.Term // returns the z term
	unfold = func(rank int, id query.Term) query.Term {
		fresh++
		prefix := fmt.Sprintf("u%d_", fresh)
		args := freshArgs(prefix, arity(rank))
		args[0] = id
		unfoldAtoms = append(unfoldAtoms, query.RelAtom{Rel: relName(rank), Args: args})
		if rank > 1 {
			for col := 1; col <= 9; col++ {
				unfold(rank-1, args[col])
			}
		}
		return args[arity(rank)-1]
	}
	top := query.Var("topid")
	zTerm := unfold(n, top)
	w := query.Var("w")
	phiAtoms := append(unfoldAtoms, query.Atom("Rb", w))
	phiQ := cq.New("phi", []query.Term{w}, phiAtoms,
		query.Eq(zTerm, query.C(tileVal(0))))
	v.Add(cc.FromCQ("phi", phiQ, cc.Proj("Rmb", 0)))

	q := cq.New("Qtile", []query.Term{query.Var("w")},
		[]query.RelAtom{query.Atom("Rb", query.Var("w"))})
	if err := q.Validate(schemas); err != nil {
		return nil, err
	}
	if err := v.Validate(dm); err != nil {
		return nil, err
	}
	return &RCQPInstance{Q: qlang.FromCQ(q), Dm: dm, V: v, Schemas: schemas}, nil
}

// TilingWitness constructs the candidate witness database of the proof
// from a concrete tiling: for every rank i ∈ [1, n] it stores each
// rank-i subsquare whose top-left corner lies at a multiple of 2^(i−1)
// (content-addressed, so identical squares share an identifier) — a set
// closed under both quarter and glue references — plus R_b = {bound}.
func TilingWitness(inst *RCQPInstance, in *tiling.Instance, g tiling.Grid) (*relation.Database, error) {
	if !in.Check(g) {
		return nil, fmt.Errorf("reductions: grid is not a valid tiling")
	}
	n := in.N
	var ss []*relation.Schema
	for i := 1; i <= n; i++ {
		ss = append(ss, inst.Schemas[relName(i)])
	}
	ss = append(ss, inst.Schemas["Rb"])
	d := relation.NewDatabase(ss...)

	size := in.Size()
	// contentID returns the canonical identifier of the square of side
	// 2^rank at (r, c).
	contentID := func(rank, r, c int) string {
		side := 1 << rank
		var sb strings.Builder
		fmt.Fprintf(&sb, "h%d", rank)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				fmt.Fprintf(&sb, "_%d", g[r+i][c+j])
			}
		}
		return sb.String()
	}
	for rank := 1; rank <= n; rank++ {
		side := 1 << rank
		step := 1 << (rank - 1)
		for r := 0; r+side <= size; r += step {
			for c := 0; c+side <= size; c += step {
				id := contentID(rank, r, c)
				z := tileVal(g[r][c])
				if rank == 1 {
					if err := d.Add("T1", relation.T(id,
						tileVal(g[r][c]), tileVal(g[r][c+1]),
						tileVal(g[r+1][c]), tileVal(g[r+1][c+1]), z)); err != nil {
						return nil, err
					}
					continue
				}
				h := side / 2
				tup := relation.T(id,
					contentID(rank-1, r, c), contentID(rank-1, r, c+h),
					contentID(rank-1, r+h, c), contentID(rank-1, r+h, c+h),
					contentID(rank-1, r, c+h/2), contentID(rank-1, r+h/2, c),
					contentID(rank-1, r+h/2, c+h), contentID(rank-1, r+h, c+h/2),
					contentID(rank-1, r+h/2, c+h/2), z)
				if err := d.Add(relName(rank), tup); err != nil {
					return nil, err
				}
			}
		}
	}
	d.MustAdd("Rb", "bound")
	return d, nil
}

func relName(rank int) string {
	return fmt.Sprintf("T%d", rank)
}

func arity(rank int) int {
	if rank == 1 {
		return 6
	}
	return 11
}

func tileVal(t tiling.Tile) string { return fmt.Sprintf("tile%d", t) }

func freshArgs(prefix string, n int) []query.Term {
	out := make([]query.Term, n)
	for i := range out {
		out[i] = query.Var(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

func v6(names ...string) []query.Term {
	out := make([]query.Term, len(names))
	for i, n := range names {
		out[i] = query.Var(n)
	}
	return out
}
