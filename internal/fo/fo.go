// Package fo implements first-order queries (FO): atomic formulas closed
// under ∧, ∨, ¬, ∃ and ∀ (Section 2.1(d) of Fan & Geerts), evaluated
// under active-domain semantics. FO appears in the paper as a constraint
// and query language for the undecidable rows of Tables I and II and as
// the target language of the CIND translation of Proposition 2.1(c).
package fo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// Formula is a first-order formula.
type Formula interface {
	isFormula()
	String() string
}

// Atom is a relation atom.
type Atom struct{ A query.RelAtom }

// Eq is an (in)equality atom.
type Eq struct{ E query.EqAtom }

// Not is negation.
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Exists is existential quantification.
type Exists struct {
	Vars []string
	F    Formula
}

// Forall is universal quantification.
type Forall struct {
	Vars []string
	F    Formula
}

func (Atom) isFormula()   {}
func (Eq) isFormula()     {}
func (Not) isFormula()    {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}

func (f Atom) String() string { return f.A.String() }
func (f Eq) String() string   { return f.E.String() }
func (f Not) String() string  { return "!(" + f.F.String() + ")" }
func (f And) String() string  { return "(" + f.L.String() + " & " + f.R.String() + ")" }
func (f Or) String() string   { return "(" + f.L.String() + " | " + f.R.String() + ")" }
func (f Exists) String() string {
	return "exists " + strings.Join(f.Vars, ",") + " (" + f.F.String() + ")"
}
func (f Forall) String() string {
	return "forall " + strings.Join(f.Vars, ",") + " (" + f.F.String() + ")"
}

// FAtom builds a relation atom formula.
func FAtom(rel string, args ...query.Term) Formula { return Atom{query.Atom(rel, args...)} }

// FEq builds an equality formula.
func FEq(l, r query.Term) Formula { return Eq{query.Eq(l, r)} }

// FNeq builds an inequality formula.
func FNeq(l, r query.Term) Formula { return Eq{query.Neq(l, r)} }

// FNot negates a formula.
func FNot(f Formula) Formula { return Not{f} }

// FAnd builds a right-nested conjunction.
func FAnd(fs ...Formula) Formula { return foldF(fs, func(l, r Formula) Formula { return And{l, r} }) }

// FOr builds a right-nested disjunction.
func FOr(fs ...Formula) Formula { return foldF(fs, func(l, r Formula) Formula { return Or{l, r} }) }

func foldF(fs []Formula, op func(l, r Formula) Formula) Formula {
	if len(fs) == 0 {
		panic("fo: empty connective")
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = op(fs[i], out)
	}
	return out
}

// FExists quantifies variables existentially.
func FExists(vars []string, f Formula) Formula { return Exists{Vars: vars, F: f} }

// FForall quantifies variables universally.
func FForall(vars []string, f Formula) Formula { return Forall{Vars: vars, F: f} }

// Query is an FO query with an output head. Evaluation uses active-
// domain semantics: quantifiers range over the values occurring in the
// database plus the constants of the query.
type Query struct {
	Name string
	Head []query.Term
	Body Formula
}

// NewQuery builds an FO query.
func NewQuery(name string, head []query.Term, body Formula) *Query {
	if name == "" {
		name = "Q"
	}
	return &Query{Name: name, Head: head, Body: body}
}

func (q *Query) String() string {
	return query.FormatHead(q.Name, q.Head) + " :- " + q.Body.String()
}

// Arity returns the output arity.
func (q *Query) Arity() int { return len(q.Head) }

// Constants returns all constants occurring in the query.
func (q *Query) Constants() []relation.Value {
	var out []relation.Value
	for _, h := range q.Head {
		if !h.IsVar {
			out = append(out, h.Val)
		}
	}
	var walk func(f Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Atom:
			out = f.A.Constants(out)
		case Eq:
			if !f.E.L.IsVar {
				out = append(out, f.E.L.Val)
			}
			if !f.E.R.IsVar {
				out = append(out, f.E.R.Val)
			}
		case Not:
			walk(f.F)
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		case Exists:
			walk(f.F)
		case Forall:
			walk(f.F)
		}
	}
	walk(q.Body)
	return out
}

// FreeVars returns the sorted free variables of the formula.
func FreeVars(f Formula) []string {
	free := make(map[string]bool)
	var walk func(f Formula, bound map[string]bool)
	walk = func(f Formula, bound map[string]bool) {
		switch f := f.(type) {
		case Atom:
			for _, t := range f.A.Args {
				if t.IsVar && !bound[t.Name] {
					free[t.Name] = true
				}
			}
		case Eq:
			for _, t := range []query.Term{f.E.L, f.E.R} {
				if t.IsVar && !bound[t.Name] {
					free[t.Name] = true
				}
			}
		case Not:
			walk(f.F, bound)
		case And:
			walk(f.L, bound)
			walk(f.R, bound)
		case Or:
			walk(f.L, bound)
			walk(f.R, bound)
		case Exists:
			nb := cloneSet(bound, f.Vars)
			walk(f.F, nb)
		case Forall:
			nb := cloneSet(bound, f.Vars)
			walk(f.F, nb)
		}
	}
	walk(f, map[string]bool{})
	out := make([]string, 0, len(free))
	for v := range free {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func cloneSet(s map[string]bool, add []string) map[string]bool {
	n := make(map[string]bool, len(s)+len(add))
	for k := range s {
		n[k] = true
	}
	for _, v := range add {
		n[v] = true
	}
	return n
}

// Validate checks relations and arities against the schema set and that
// all head variables are free in the body.
func (q *Query) Validate(schemas map[string]*relation.Schema) error {
	var err error
	var walk func(f Formula)
	walk = func(f Formula) {
		if err != nil {
			return
		}
		switch f := f.(type) {
		case Atom:
			s := schemas[f.A.Rel]
			if s == nil {
				err = fmt.Errorf("fo %s: unknown relation %s", q.Name, f.A.Rel)
				return
			}
			if len(f.A.Args) != s.Arity() {
				err = fmt.Errorf("fo %s: atom %s has arity %d, schema wants %d", q.Name, f.A, len(f.A.Args), s.Arity())
			}
		case Not:
			walk(f.F)
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		case Exists:
			walk(f.F)
		case Forall:
			walk(f.F)
		}
	}
	walk(q.Body)
	if err != nil {
		return err
	}
	free := make(map[string]bool)
	for _, v := range FreeVars(q.Body) {
		free[v] = true
	}
	for _, h := range q.Head {
		if h.IsVar && !free[h.Name] {
			return fmt.Errorf("fo %s: head variable %s not free in body", q.Name, h.Name)
		}
	}
	return nil
}

// domain computes the active domain for evaluation: every value in the
// database plus every constant of the query plus extras.
func (q *Query) domain(d *relation.Database, extra []relation.Value) []relation.Value {
	seen := make(map[relation.Value]bool)
	for _, v := range d.ActiveDomain() {
		seen[v] = true
	}
	for _, v := range q.Constants() {
		seen[v] = true
	}
	for _, v := range extra {
		seen[v] = true
	}
	return relation.SortedValues(seen)
}

// Eval evaluates the query over the database under active-domain
// semantics, with the domain extended by extra values (callers checking
// containment constraints pass the master data's values so that
// quantifiers range over both databases' constants).
func (q *Query) Eval(d *relation.Database, extra ...relation.Value) []relation.Tuple {
	out, _ := q.EvalGate(d, nil, extra...)
	return out
}

// EvalGate is Eval under gate governance. FO evaluation has no join
// rows; the row-step unit here is one variable assignment tried by the
// active-domain enumeration (top-level free variables and quantifiers
// alike), so a cancelled context stops the search within one assignment.
// Results computed before a trip are discarded.
func (q *Query) EvalGate(d *relation.Database, g *query.Gate, extra ...relation.Value) ([]relation.Tuple, error) {
	dom := q.domain(d, extra)
	// Enumerate every free variable of the body (head variables are a
	// subset of these for validated queries) and project onto the head.
	freeHead := FreeVars(q.Body)
	for _, h := range q.Head {
		if h.IsVar {
			freeHead = append(freeHead, h.Name)
		}
	}
	freeHead = query.SortedVarSet(freeHead)
	results := make(map[string]relation.Tuple)
	b := make(query.Binding)
	ec := newEvalCtx(g)
	var assign func(i int)
	assign = func(i int) {
		if i == len(freeHead) {
			if eval(q.Body, d, dom, b, ec) {
				out := make(relation.Tuple, len(q.Head))
				for j, h := range q.Head {
					v, _ := b.Resolve(h)
					out[j] = v
				}
				results[out.Key()] = out
			}
			return
		}
		for _, v := range dom {
			if !ec.step() {
				return
			}
			b[freeHead[i]] = v
			assign(i + 1)
		}
		delete(b, freeHead[i])
	}
	assign(0)
	if ec != nil && ec.err != nil {
		return nil, ec.err
	}
	out := make([]relation.Tuple, 0, len(results))
	for _, t := range results {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// EvalBool evaluates a Boolean FO query (empty head).
func (q *Query) EvalBool(d *relation.Database, extra ...relation.Value) bool {
	return len(q.Eval(d, extra...)) > 0
}

// evalCtx threads a gate through the boolean formula recursion. The
// recursion cannot carry an error, so the first gate error is parked
// here; once set, every loop bails out immediately and the top level
// discards the (garbage) boolean and returns the error. A nil *evalCtx
// is the ungoverned path.
type evalCtx struct {
	g   *query.Gate
	err error
}

func newEvalCtx(g *query.Gate) *evalCtx {
	if g == nil {
		return nil
	}
	return &evalCtx{g: g}
}

// step charges one assignment and reports whether enumeration may
// continue.
func (ec *evalCtx) step() bool {
	if ec == nil {
		return true
	}
	if ec.err != nil {
		return false
	}
	if err := ec.g.Step(); err != nil {
		ec.err = err
		return false
	}
	return true
}

// eval evaluates a formula under a binding of its free variables.
func eval(f Formula, d *relation.Database, dom []relation.Value, b query.Binding, ec *evalCtx) bool {
	switch f := f.(type) {
	case Atom:
		tup, ok := f.A.Ground(b)
		if !ok {
			panic(fmt.Sprintf("fo: unbound variable in atom %s", f.A))
		}
		return d.Contains(f.A.Rel, tup)
	case Eq:
		holds, ok := f.E.Holds(b)
		if !ok {
			panic(fmt.Sprintf("fo: unbound variable in %s", f.E))
		}
		return holds
	case Not:
		return !eval(f.F, d, dom, b, ec)
	case And:
		return eval(f.L, d, dom, b, ec) && eval(f.R, d, dom, b, ec)
	case Or:
		return eval(f.L, d, dom, b, ec) || eval(f.R, d, dom, b, ec)
	case Exists:
		return quantify(f.Vars, f.F, d, dom, b, false, ec)
	case Forall:
		return quantify(f.Vars, f.F, d, dom, b, true, ec)
	default:
		panic(fmt.Sprintf("fo: unknown node %T", f))
	}
}

// quantify enumerates assignments for the quantified variables. For
// universal quantification it searches for a falsifying assignment.
func quantify(vars []string, f Formula, d *relation.Database, dom []relation.Value, b query.Binding, universal bool, ec *evalCtx) bool {
	// Save shadowed bindings to restore afterwards.
	saved := make(map[string]relation.Value, len(vars))
	for _, v := range vars {
		if old, ok := b[v]; ok {
			saved[v] = old
		}
	}
	defer func() {
		for _, v := range vars {
			if old, ok := saved[v]; ok {
				b[v] = old
			} else {
				delete(b, v)
			}
		}
	}()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return eval(f, d, dom, b, ec) != universal
		}
		for _, val := range dom {
			if !ec.step() {
				return false
			}
			b[vars[i]] = val
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	found := rec(0)
	if universal {
		return !found // no falsifying assignment
	}
	return found
}
