package fo

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func v(n string) query.Term { return query.Var(n) }
func c(s string) query.Term { return query.C(s) }

func edgeDB(edges ...[2]string) (*relation.Database, map[string]*relation.Schema) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(e)
	for _, eg := range edges {
		d.MustAdd("E", eg[0], eg[1])
	}
	return d, map[string]*relation.Schema{"E": e}
}

func TestEvalAtomAndEq(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"})
	q := NewQuery("Q", []query.Term{v("x")},
		FAnd(FAtom("E", v("x"), v("y")), FEq(v("y"), c("2"))))
	got := q.Eval(d)
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEvalNegation(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"}, [2]string{"2", "1"}, [2]string{"1", "3"})
	// Nodes with an outgoing edge but no incoming edge from that target:
	// Q(x) :- exists y (E(x,y) & !E(y,x))
	q := NewQuery("Q", []query.Term{v("x")},
		FExists([]string{"y"}, FAnd(FAtom("E", v("x"), v("y")), FNot(FAtom("E", v("y"), v("x"))))))
	got := q.Eval(d)
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEvalForall(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "1"}, [2]string{"1", "2"}, [2]string{"1", "3"})
	// Q() :- forall y exists x E(x, y): every node has an incoming edge.
	q := NewQuery("Q", nil, FForall([]string{"y"}, FExists([]string{"x"}, FAtom("E", v("x"), v("y")))))
	if !q.EvalBool(d) {
		t.Fatal("forall should hold: 1 reaches every node")
	}
	d2, _ := edgeDB([2]string{"1", "2"})
	if q.EvalBool(d2) {
		t.Fatal("forall should fail: node 1 has no incoming edge")
	}
}

func TestEvalEmptyDomainQuantifiers(t *testing.T) {
	d, _ := edgeDB()
	ex := NewQuery("Q", nil, FExists([]string{"x"}, FAtom("E", v("x"), v("x"))))
	if ex.EvalBool(d) {
		t.Fatal("exists over empty domain must be false")
	}
	fa := NewQuery("Q", nil, FForall([]string{"x"}, FAtom("E", v("x"), v("x"))))
	if !fa.EvalBool(d) {
		t.Fatal("forall over empty domain must be true")
	}
}

func TestEvalExtraDomain(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "1"})
	// forall x E(x,x) holds over {1} but fails once the domain is
	// extended with a fresh value.
	q := NewQuery("Q", nil, FForall([]string{"x"}, FAtom("E", v("x"), v("x"))))
	if !q.EvalBool(d) {
		t.Fatal("should hold over active domain")
	}
	if q.EvalBool(d, relation.Value("99")) {
		t.Fatal("should fail with extended domain")
	}
}

func TestFreeVars(t *testing.T) {
	f := FAnd(
		FExists([]string{"y"}, FAtom("E", v("x"), v("y"))),
		FNeq(v("z"), c("0")),
	)
	fv := FreeVars(f)
	if len(fv) != 2 || fv[0] != "x" || fv[1] != "z" {
		t.Fatalf("FreeVars = %v", fv)
	}
	// Shadowing: inner exists re-binds x.
	g := FExists([]string{"x"}, FAtom("E", v("x"), v("x")))
	if len(FreeVars(g)) != 0 {
		t.Fatalf("FreeVars(shadowed) = %v", FreeVars(g))
	}
}

func TestValidate(t *testing.T) {
	_, ss := edgeDB()
	ok := NewQuery("Q", []query.Term{v("x")}, FExists([]string{"y"}, FAtom("E", v("x"), v("y"))))
	if err := ok.Validate(ss); err != nil {
		t.Fatal(err)
	}
	unknown := NewQuery("Q", nil, FAtom("Z", v("x")))
	if unknown.Validate(ss) == nil {
		t.Fatal("unknown relation accepted")
	}
	badArity := NewQuery("Q", nil, FAtom("E", v("x")))
	if badArity.Validate(ss) == nil {
		t.Fatal("bad arity accepted")
	}
	notFree := NewQuery("Q", []query.Term{v("x")}, FExists([]string{"x"}, FAtom("E", v("x"), v("x"))))
	if notFree.Validate(ss) == nil {
		t.Fatal("head var bound in body accepted")
	}
}

func TestConstants(t *testing.T) {
	q := NewQuery("Q", []query.Term{c("h")},
		FOr(FEq(v("x"), c("a")), FNot(FAtom("E", c("b"), v("x")))))
	cs := q.Constants()
	seen := map[relation.Value]bool{}
	for _, cv := range cs {
		seen[cv] = true
	}
	if !seen["a"] || !seen["b"] || !seen["h"] {
		t.Fatalf("Constants = %v", cs)
	}
}

func TestShadowedQuantifierRestoresBinding(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"})
	// exists x (E(x,y) & exists x E(x,x)) — inner x shadows outer; the
	// formula is false (no self loop) but must not corrupt outer x.
	q := NewQuery("Q", []query.Term{v("y")},
		FExists([]string{"x"}, FAnd(
			FAtom("E", v("x"), v("y")),
			FOr(FEq(v("x"), v("x")), FExists([]string{"x"}, FAtom("E", v("x"), v("x")))),
		)))
	got := q.Eval(d)
	if len(got) != 1 || got[0][0] != "2" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	f := FForall([]string{"x"}, FNot(FOr(FAtom("E", v("x"), v("x")), FNeq(v("x"), c("1")))))
	want := "forall x (!((E(x, x) | x != '1')))"
	if f.String() != want {
		t.Fatalf("String = %q", f.String())
	}
}
