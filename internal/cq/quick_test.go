package cq

import (
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/relation"
)

// quickDB materializes a database over R(a,b), S(b,c) from generated
// byte seeds (two values per column keep the join space interesting).
func quickDB(rSeed, sSeed []byte) *relation.Database {
	ss := testSchemas()
	d := relation.NewDatabase(ss["R"], ss["S"])
	vals := []string{"u", "w", "x"}
	for i := 0; i+1 < len(rSeed) && i < 12; i += 2 {
		d.MustAdd("R", vals[int(rSeed[i])%3], vals[int(rSeed[i+1])%3])
	}
	for i := 0; i+1 < len(sSeed) && i < 12; i += 2 {
		d.MustAdd("S", vals[int(sSeed[i])%3], vals[int(sSeed[i+1])%3])
	}
	return d
}

// TestQuickMonotonicity: CQ, UCQ and ∃FO⁺ are monotone — answers never
// shrink when tuples are added (the property underlying the paper's
// single-disjunct counterexample argument).
func TestQuickMonotonicity(t *testing.T) {
	q := New("Q", []query.Term{v("a"), v("c")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))},
		query.Neq(v("a"), v("c")))
	prop := func(rSeed, sSeed, extra []byte) bool {
		d := quickDB(rSeed, sSeed)
		before := q.Eval(d)
		ext := d.Clone()
		vals := []string{"u", "w", "x", "z"}
		for i := 0; i+1 < len(extra) && i < 8; i += 2 {
			ext.MustAdd("R", vals[int(extra[i])%4], vals[int(extra[i+1])%4])
		}
		after := map[string]bool{}
		for _, tu := range q.Eval(ext) {
			after[tu.Key()] = true
		}
		for _, tu := range before {
			if !after[tu.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvalDeterministic: evaluation over equal databases built in
// different insertion orders yields identical answer sequences.
func TestQuickEvalDeterministic(t *testing.T) {
	q := New("Q", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b"))})
	prop := func(seed []byte) bool {
		d1 := quickDB(seed, nil)
		// Insert in reverse order.
		ss := testSchemas()
		d2 := relation.NewDatabase(ss["R"], ss["S"])
		tuples := d1.Instance("R").Tuples()
		for i := len(tuples) - 1; i >= 0; i-- {
			d2.MustAdd("R", string(tuples[i][0]), string(tuples[i][1]))
		}
		a1, a2 := q.Eval(d1), q.Eval(d2)
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if !a1[i].Equal(a2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTableauEquivalence: evaluating a query directly and through
// its tableau's AsCQ round trip gives the same answers.
func TestQuickTableauEquivalence(t *testing.T) {
	q := New("Q", []query.Term{v("a"), v("c")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b2"), v("c"))},
		query.Eq(v("b"), v("b2")), query.Neq(v("a"), c("u")))
	tb, err := BuildTableau(q)
	if err != nil {
		t.Fatal(err)
	}
	round := tb.AsCQ()
	prop := func(rSeed, sSeed []byte) bool {
		d := quickDB(rSeed, sSeed)
		a1, a2 := q.Eval(d), round.Eval(d)
		if len(a1) != len(a2) {
			return false
		}
		for i := range a1 {
			if !a1[i].Equal(a2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionSemantics: UCQ answers equal the set union of disjunct
// answers.
func TestQuickUnionSemantics(t *testing.T) {
	q1 := New("q1", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))})
	q2 := New("q2", []query.Term{v("x")}, []query.RelAtom{atom("S", v("y"), v("x"))})
	u := Union("U", q1, q2)
	prop := func(rSeed, sSeed []byte) bool {
		d := quickDB(rSeed, sSeed)
		want := map[string]bool{}
		for _, tu := range q1.Eval(d) {
			want[tu.Key()] = true
		}
		for _, tu := range q2.Eval(d) {
			want[tu.Key()] = true
		}
		got := u.Eval(d)
		if len(got) != len(want) {
			return false
		}
		for _, tu := range got {
			if !want[tu.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
