package cq

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// SingleRelation implements the Lemma 3.2 encoding: it maps a
// multi-relation schema R = (R₁, …, R_n) to a single relation schema R
// whose attributes are the (uniformized) attributes of the R_i plus a
// tag attribute A_R identifying the source relation, together with the
// linear-time translations f_D on instances and f_Q on CQ queries such
// that Q(D) = f_Q(Q)(f_D(D)).
type SingleRelation struct {
	// Schema is the combined single relation schema.
	Schema *relation.Schema
	// Tag maps each source relation name to its tag value.
	Tag map[string]relation.Value
	// Pad is the filler value used for positions beyond a source
	// relation's arity.
	Pad relation.Value

	source map[string]*relation.Schema
	width  int
}

// SingleRelationName is the name of the combined relation.
const SingleRelationName = "_R"

// NewSingleRelation builds the encoding for the given schemas. Attribute
// domains in the combined schema are infinite: the encoding is a purely
// syntactic device (per the lemma, attributes are uniformized by
// renaming and padding).
func NewSingleRelation(schemas map[string]*relation.Schema) *SingleRelation {
	names := make([]string, 0, len(schemas))
	width := 0
	for name, s := range schemas {
		names = append(names, name)
		if s.Arity() > width {
			width = s.Arity()
		}
	}
	sort.Strings(names)
	attrs := make([]relation.Attribute, width+1)
	for i := 0; i < width; i++ {
		attrs[i] = relation.Attr(fmt.Sprintf("a%d", i+1))
	}
	attrs[width] = relation.Attr("aR")
	sr := &SingleRelation{
		Schema: relation.NewSchema(SingleRelationName, attrs...),
		Tag:    make(map[string]relation.Value, len(names)),
		Pad:    "_pad",
		source: schemas,
		width:  width,
	}
	for _, n := range names {
		sr.Tag[n] = relation.Value("_tag:" + n)
	}
	return sr
}

// EncodeDatabase is f_D: it folds every instance of the source database
// into the single combined relation.
func (sr *SingleRelation) EncodeDatabase(d *relation.Database) *relation.Database {
	out := relation.NewDatabase(sr.Schema)
	in := out.Instance(SingleRelationName)
	for _, name := range d.Relations() {
		tag, ok := sr.Tag[name]
		if !ok {
			continue
		}
		for _, t := range d.Instance(name).Tuples() {
			nt := make(relation.Tuple, sr.width+1)
			copy(nt, t)
			for i := len(t); i < sr.width; i++ {
				nt[i] = sr.Pad
			}
			nt[sr.width] = tag
			in.MustAdd(nt)
		}
	}
	return out
}

// EncodeQuery is f_Q: it rewrites every atom R_j(x̄) into an atom over
// the combined relation with the tag constant in the A_R position and
// the pad constant in the padded positions.
func (sr *SingleRelation) EncodeQuery(q *CQ) (*CQ, error) {
	cp := q.Clone()
	for i, a := range cp.Atoms {
		tag, ok := sr.Tag[a.Rel]
		if !ok {
			return nil, fmt.Errorf("cq: single-relation encoding: unknown relation %s", a.Rel)
		}
		args := make([]query.Term, sr.width+1)
		copy(args, a.Args)
		for j := len(a.Args); j < sr.width; j++ {
			args[j] = query.Const(sr.Pad)
		}
		args[sr.width] = query.Const(tag)
		cp.Atoms[i] = query.RelAtom{Rel: SingleRelationName, Args: args}
	}
	return cp, nil
}

// Schemas returns the schema map of the combined database.
func (sr *SingleRelation) Schemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{SingleRelationName: sr.Schema}
}
