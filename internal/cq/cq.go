// Package cq implements conjunctive queries (CQ), unions of conjunctive
// queries (UCQ) and positive existential first-order queries (∃FO⁺),
// all with equality and inequality, exactly as defined in Section 2.1
// of Fan & Geerts. It provides construction, validation, satisfiability,
// the tableau representation (T_Q, u_Q) of Section 3.2.1, evaluation,
// classical homomorphism-based containment, and the Lemma 3.2
// single-relation encoding.
package cq

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// CQ is a conjunctive query: head ← atoms ∧ conditions. Conditions are
// equality and inequality atoms over the variables of the query and
// constants. The query is safe when every head variable and every
// variable used in a condition occurs in some relation atom or is
// equated (transitively) to one that does or to a constant.
type CQ struct {
	Name  string // display name; defaults to "Q"
	Head  []query.Term
	Atoms []query.RelAtom
	Conds []query.EqAtom

	// compiled-query cache; see Compiled. CQ values must not be copied
	// after first evaluation — all construction paths (New, Clone,
	// Rename) build fresh structs, so the cache never leaks into a
	// mutated copy.
	compileOnce sync.Once
	compiled    *Tableau
	compileErr  error
}

// Compiled returns the memoized tableau (T_Q, u_Q) of the query,
// building it on first use. Build failures — unsatisfiable queries,
// whose answers are empty everywhere — are cached too, so repeated
// evaluation of an unsatisfiable query never re-runs the union-find.
// The query must not be structurally mutated after its first
// evaluation; Clone/Rename return fresh, uncompiled copies for that.
func (q *CQ) Compiled() (*Tableau, error) {
	obs.CompiledLookups.Inc()
	q.compileOnce.Do(func() { q.compiled, q.compileErr = BuildTableau(q) })
	return q.compiled, q.compileErr
}

// New builds a CQ.
func New(name string, head []query.Term, atoms []query.RelAtom, conds ...query.EqAtom) *CQ {
	if name == "" {
		name = "Q"
	}
	return &CQ{Name: name, Head: head, Atoms: atoms, Conds: conds}
}

// Arity returns the output arity.
func (q *CQ) Arity() int { return len(q.Head) }

// Boolean reports whether the query has an empty head.
func (q *CQ) Boolean() bool { return len(q.Head) == 0 }

// Vars returns the sorted set of variables occurring anywhere in the
// query.
func (q *CQ) Vars() []string {
	var vs []string
	for _, a := range q.Atoms {
		vs = a.Vars(vs)
	}
	for _, t := range q.Head {
		if t.IsVar {
			vs = append(vs, t.Name)
		}
	}
	for _, c := range q.Conds {
		if c.L.IsVar {
			vs = append(vs, c.L.Name)
		}
		if c.R.IsVar {
			vs = append(vs, c.R.Name)
		}
	}
	return query.SortedVarSet(vs)
}

// Constants returns all constants occurring in the query.
func (q *CQ) Constants() []relation.Value {
	var cs []relation.Value
	for _, a := range q.Atoms {
		cs = a.Constants(cs)
	}
	for _, t := range q.Head {
		if !t.IsVar {
			cs = append(cs, t.Val)
		}
	}
	for _, c := range q.Conds {
		if !c.L.IsVar {
			cs = append(cs, c.L.Val)
		}
		if !c.R.IsVar {
			cs = append(cs, c.R.Val)
		}
	}
	return cs
}

// Clone returns a deep copy.
func (q *CQ) Clone() *CQ {
	cp := &CQ{Name: q.Name, Head: append([]query.Term(nil), q.Head...)}
	for _, a := range q.Atoms {
		cp.Atoms = append(cp.Atoms, a.Clone())
	}
	cp.Conds = append(cp.Conds, q.Conds...)
	return cp
}

// Rename returns a copy of the query with every variable prefixed, so
// that two queries can be combined without capture.
func (q *CQ) Rename(prefix string) *CQ {
	cp := q.Clone()
	ren := func(t query.Term) query.Term {
		if t.IsVar {
			return query.Var(prefix + t.Name)
		}
		return t
	}
	for i := range cp.Head {
		cp.Head[i] = ren(cp.Head[i])
	}
	for ai := range cp.Atoms {
		for ti := range cp.Atoms[ai].Args {
			cp.Atoms[ai].Args[ti] = ren(cp.Atoms[ai].Args[ti])
		}
	}
	for ci := range cp.Conds {
		cp.Conds[ci].L = ren(cp.Conds[ci].L)
		cp.Conds[ci].R = ren(cp.Conds[ci].R)
	}
	return cp
}

// Validate checks the query against a database schema: all relations
// exist, arities match, and the query is safe (every variable occurs in
// a relation atom or is transitively equated to one that does or to a
// constant).
func (q *CQ) Validate(schemas map[string]*relation.Schema) error {
	inAtom := make(map[string]bool)
	for _, a := range q.Atoms {
		s := schemas[a.Rel]
		if s == nil {
			return fmt.Errorf("cq %s: unknown relation %s", q.Name, a.Rel)
		}
		if len(a.Args) != s.Arity() {
			return fmt.Errorf("cq %s: atom %s has arity %d, schema wants %d", q.Name, a, len(a.Args), s.Arity())
		}
		for _, t := range a.Args {
			if t.IsVar {
				inAtom[t.Name] = true
			}
		}
	}
	// Propagate safety through equalities: x = y or x = c makes x safe
	// when y is safe (or c constant).
	changed := true
	for changed {
		changed = false
		for _, c := range q.Conds {
			if c.Neg {
				continue
			}
			lSafe := !c.L.IsVar || inAtom[c.L.Name]
			rSafe := !c.R.IsVar || inAtom[c.R.Name]
			if lSafe && c.R.IsVar && !inAtom[c.R.Name] {
				inAtom[c.R.Name] = true
				changed = true
			}
			if rSafe && c.L.IsVar && !inAtom[c.L.Name] {
				inAtom[c.L.Name] = true
				changed = true
			}
		}
	}
	for _, v := range q.Vars() {
		if !inAtom[v] {
			return fmt.Errorf("cq %s: unsafe variable %s (not bound by any relation atom)", q.Name, v)
		}
	}
	return nil
}

func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(query.FormatHead(q.Name, q.Head))
	b.WriteString(" :- ")
	parts := make([]string, 0, len(q.Atoms)+len(q.Conds))
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, c := range q.Conds {
		parts = append(parts, c.String())
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// VarDomains computes, for each variable, the most restrictive domain
// implied by the attribute positions in which it occurs: the
// intersection of all finite domains at its positions, or the infinite
// domain when it only occurs at infinite positions. The second result
// is false if some variable's admissible set is empty (the query is
// then unsatisfiable).
func (q *CQ) VarDomains(schemas map[string]*relation.Schema) (map[string]relation.Domain, bool) {
	doms := make(map[string]relation.Domain)
	for _, a := range q.Atoms {
		s := schemas[a.Rel]
		if s == nil {
			continue
		}
		for i, t := range a.Args {
			if !t.IsVar || i >= s.Arity() {
				continue
			}
			ad := s.Attrs[i].Domain
			cur, seen := doms[t.Name]
			if !seen {
				doms[t.Name] = ad
				continue
			}
			doms[t.Name] = intersectDomains(cur, ad)
		}
	}
	for _, v := range q.Vars() {
		if _, ok := doms[v]; !ok {
			doms[v] = relation.InfiniteDomain()
		}
		d := doms[v]
		if d.Kind == relation.Finite && len(d.Values) == 0 {
			return doms, false
		}
	}
	return doms, true
}

func intersectDomains(a, b relation.Domain) relation.Domain {
	if a.Kind == relation.Infinite {
		return b
	}
	if b.Kind == relation.Infinite {
		return a
	}
	var out []relation.Value
	for _, v := range a.Values {
		if b.Contains(v) {
			out = append(out, v)
		}
	}
	return relation.Domain{Kind: relation.Finite, Values: out}
}
