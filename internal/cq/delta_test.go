package cq

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// These tests pin the differential-evaluation contract of EvalFuncDelta
// (every answer of d ∪ delta that uses a delta tuple is produced at
// least once, and nothing else) and the compiled-query cache (each CQ
// builds its tableau exactly once, failures included).

// deltaHeads collects the distinct head tuples EvalFuncDelta produces.
func deltaHeads(t *Tableau, d, delta *relation.Database) map[string]bool {
	out := make(map[string]bool)
	t.EvalFuncDelta(d, delta, func(b query.Binding) bool {
		if h, ok := t.HeadTuple(b); ok {
			out[h.Key()] = true
		}
		return true
	})
	return out
}

func keySet(ts []relation.Tuple) map[string]bool {
	out := make(map[string]bool, len(ts))
	for _, t := range ts {
		out[t.Key()] = true
	}
	return out
}

// randomDeltaCase draws a base database, a delta (possibly overlapping
// the base), and a random 1–3 atom query over R(a,b) and S(b,c).
func randomDeltaCase(rng *rand.Rand) (*CQ, *relation.Database, *relation.Database) {
	rs := relation.NewSchema("R", relation.Attr("a"), relation.Attr("b"))
	ss := relation.NewSchema("S", relation.Attr("b"), relation.Attr("c"))
	vals := []string{"a", "b", "c"}
	rv := func() string { return vals[rng.Intn(len(vals))] }
	mk := func(n int) *relation.Database {
		db := relation.NewDatabase(rs, ss)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				db.MustAdd("R", rv(), rv())
			} else {
				db.MustAdd("S", rv(), rv())
			}
		}
		return db
	}
	d := mk(rng.Intn(6))
	delta := mk(rng.Intn(3) + 1)

	terms := []query.Term{query.Var("x"), query.Var("y"), query.Var("z"), query.C("a")}
	rt := func() query.Term { return terms[rng.Intn(len(terms))] }
	var atoms []query.RelAtom
	for i, n := 0, rng.Intn(3)+1; i < n; i++ {
		if rng.Intn(2) == 0 {
			atoms = append(atoms, query.Atom("R", rt(), rt()))
		} else {
			atoms = append(atoms, query.Atom("S", rt(), rt()))
		}
	}
	headVars := map[string]bool{}
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar {
				headVars[t.Name] = true
			}
		}
	}
	var head []query.Term
	for _, n := range []string{"x", "y", "z"} {
		if headVars[n] {
			head = append(head, query.Var(n))
		}
	}
	var conds []query.EqAtom
	if len(head) >= 2 && rng.Intn(3) == 0 {
		conds = append(conds, query.Neq(head[0], head[1]))
	}
	return New("qd", head, atoms, conds...), d, delta
}

// TestEvalFuncDeltaMatchesFullRandom cross-validates differential
// evaluation against full re-evaluation: for monotone CQs,
// Eval(d ∪ delta) = Eval(d) ∪ deltaHeads(d, delta) — exactly, because
// every answer new in the union has a match using at least one delta
// tuple. Runs with the indexed engine on and off.
func TestEvalFuncDeltaMatchesFullRandom(t *testing.T) {
	defer SetIndexJoin(SetIndexJoin(true))
	for _, indexed := range []bool{true, false} {
		SetIndexJoin(indexed)
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 300; trial++ {
			q, d, delta := randomDeltaCase(rng)
			tb, err := q.Compiled()
			if err != nil {
				continue
			}
			full := d.Union(delta)
			want := keySet(tb.Eval(full))
			base := keySet(tb.Eval(d))
			got := deltaHeads(tb, d, delta)
			// Soundness: every differential head is a union answer.
			for k := range got {
				if !want[k] {
					t.Fatalf("indexed=%v trial %d: delta head %q not in Eval(d ∪ delta)\nq: %v\nd:\n%v\ndelta:\n%v",
						indexed, trial, k, q, d, delta)
				}
			}
			// Completeness: base ∪ differential covers the union.
			for k := range want {
				if !base[k] && !got[k] {
					t.Fatalf("indexed=%v trial %d: union answer %q missed by base and delta\nq: %v\nd:\n%v\ndelta:\n%v",
						indexed, trial, k, q, d, delta)
				}
			}
		}
	}
}

// TestEvalFuncDeltaDuplicateInvocations pins the multi-delta-template
// case: a query with two templates over the same relation must invoke
// fn more than once for a binding whose match uses delta tuples in both
// positions — the documented "at least once, possibly more" contract —
// while still producing each head exactly as full evaluation does.
func TestEvalFuncDeltaDuplicateInvocations(t *testing.T) {
	rs := relation.NewSchema("R", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(rs)
	delta := relation.NewDatabase(rs)
	delta.MustAdd("R", "a", "b")
	delta.MustAdd("R", "b", "c")

	// q(x,z) :- R(x,y), R(y,z): the only match a→b→c uses one delta
	// tuple in each template, so both differential passes find it.
	q := New("dup", []query.Term{v("x"), v("z")},
		[]query.RelAtom{atom("R", v("x"), v("y")), atom("R", v("y"), v("z"))})
	tb, err := q.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	heads := make(map[string]int)
	tb.EvalFuncDelta(d, delta, func(b query.Binding) bool {
		calls++
		if h, ok := tb.HeadTuple(b); ok {
			heads[h.Key()]++
		}
		return true
	})
	want := relation.T("a", "c").Key()
	if len(heads) != 1 || heads[want] == 0 {
		t.Fatalf("want single head %q, got %v", want, heads)
	}
	if calls != 2 {
		t.Fatalf("want 2 invocations (one per delta template position), got %d", calls)
	}
}

// TestCompiledBuildsOnce pins the compiled-query cache: evaluating a
// query any number of times compiles its tableau exactly once, and
// unsatisfiable queries cache their failure instead of re-running the
// union-find per call.
func TestCompiledBuildsOnce(t *testing.T) {
	rs := relation.NewSchema("R", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(rs)
	d.MustAdd("R", "a", "b")

	q := New("once", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))})
	before := TableauBuilds()
	for i := 0; i < 5; i++ {
		if got := q.Eval(d); len(got) != 1 {
			t.Fatalf("eval %d: want 1 answer, got %v", i, got)
		}
	}
	if builds := TableauBuilds() - before; builds != 1 {
		t.Fatalf("satisfiable query: want exactly 1 tableau build across 5 evals, got %d", builds)
	}

	unsat := New("unsat", nil, []query.RelAtom{atom("R", v("x"), v("y"))},
		query.Eq(v("x"), c("a")), query.Eq(v("x"), c("b")))
	before = TableauBuilds()
	for i := 0; i < 5; i++ {
		if unsat.EvalBool(d) {
			t.Fatalf("eval %d: unsatisfiable query answered true", i)
		}
	}
	if builds := TableauBuilds() - before; builds != 1 {
		t.Fatalf("unsatisfiable query: want exactly 1 tableau build across 5 evals, got %d", builds)
	}

	// Clone and Rename return fresh, uncompiled queries: the clone
	// compiles independently rather than inheriting the memo.
	before = TableauBuilds()
	cp := q.Clone()
	if got := cp.Eval(d); len(got) != 1 {
		t.Fatalf("clone eval: want 1 answer, got %v", got)
	}
	if builds := TableauBuilds() - before; builds != 1 {
		t.Fatalf("cloned query: want 1 fresh build, got %d", builds)
	}
}

// TestIndexedEvalMatchesScanRandom cross-validates the indexed join
// engine against the pure scan path on random queries and databases:
// answers must be identical tuple-for-tuple.
func TestIndexedEvalMatchesScanRandom(t *testing.T) {
	defer SetIndexJoin(SetIndexJoin(true))
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		q, d, delta := randomDeltaCase(rng)
		full := d.Union(delta)
		SetIndexJoin(true)
		indexed := q.Eval(full)
		SetIndexJoin(false)
		scanned := q.Eval(full)
		if len(indexed) != len(scanned) {
			t.Fatalf("trial %d: answer counts diverge: indexed %d scan %d\nq: %v\ndb:\n%v",
				trial, len(indexed), len(scanned), q, full)
		}
		for i := range indexed {
			if indexed[i].Key() != scanned[i].Key() {
				t.Fatalf("trial %d: answers diverge at %d: indexed %v scan %v\nq: %v",
					trial, i, indexed[i], scanned[i], q)
			}
		}
	}
}

// TestLookupAndInvalidation pins the secondary-index contract on
// Instance: Lookup returns exactly the matching tuples in Tuples()
// order, and Add/Remove invalidate via the generation counter.
func TestLookupAndInvalidation(t *testing.T) {
	rs := relation.NewSchema("R", relation.Attr("a"), relation.Attr("b"))
	in := relation.NewInstance(rs)
	rng := rand.New(rand.NewSource(41))
	vals := []string{"a", "b", "c", "d"}
	for i := 0; i < 30; i++ {
		in.MustAdd(relation.T(vals[rng.Intn(4)], vals[rng.Intn(4)]))
	}
	check := func() {
		for col := 0; col < 2; col++ {
			seen := make(map[relation.Value]int)
			for _, v := range vals {
				bucket := in.Lookup(col, relation.Value(v))
				// Bucket must equal the filtered scan, in scan order.
				var want []relation.Tuple
				for _, tup := range in.Tuples() {
					if tup[col] == relation.Value(v) {
						want = append(want, tup)
					}
				}
				if len(bucket) != len(want) {
					t.Fatalf("col %d val %s: bucket size %d, want %d", col, v, len(bucket), len(want))
				}
				for i := range bucket {
					if bucket[i].Key() != want[i].Key() {
						t.Fatalf("col %d val %s: bucket[%d] = %v, want %v", col, v, i, bucket[i], want[i])
					}
				}
				if len(bucket) > 0 {
					seen[relation.Value(v)] = len(bucket)
				}
			}
			if got := in.Distinct(col); got != len(seen) {
				t.Fatalf("col %d: Distinct = %d, want %d", col, got, len(seen))
			}
		}
	}
	check()
	gen := in.Generation()
	in.MustAdd(relation.T("e", "e"))
	if in.Generation() == gen {
		t.Fatal("Add did not bump the generation")
	}
	vals = append(vals, "e")
	check()
	gen = in.Generation()
	in.Remove(relation.T("e", "e"))
	if in.Generation() == gen {
		t.Fatal("Remove did not bump the generation")
	}
	check()
	// Removing an absent tuple must not invalidate.
	gen = in.Generation()
	in.Remove(relation.T("zz", "zz"))
	if in.Generation() != gen {
		t.Fatal("no-op Remove bumped the generation")
	}
}

// TestTupleKeyCollisionFree re-pins Key()'s injectivity on adversarial
// values after the strconv rewrite: values containing separators and
// digits must not collide.
func TestTupleKeyCollisionFree(t *testing.T) {
	cases := [][]relation.Tuple{
		{relation.T("ab", "c"), relation.T("a", "bc")},
		{relation.T("1:a", "b"), relation.T("1", ":ab")},
		{relation.T("", "x"), relation.T("x", "")},
		{relation.T("12", ""), relation.T("1", "2")},
		{relation.T("a"), relation.T("a", "")},
	}
	for _, pair := range cases {
		if pair[0].Key() == pair[1].Key() {
			t.Fatalf("collision: %v and %v share key %q", pair[0], pair[1], pair[0].Key())
		}
	}
	// And the key round-trips as a stable identity: equal tuples agree.
	a := relation.T("x", "07", "")
	b := relation.T("x", "07", "")
	if a.Key() != b.Key() {
		t.Fatalf("equal tuples with distinct keys: %q vs %q", a.Key(), b.Key())
	}
}

// TestPlanOrderCostBased pins the planner on a case where cardinality
// matters: with a huge unselective relation and a tiny one, the
// cost-based order must start from the tiny one even though the greedy
// most-bound-first order would not.
func TestPlanOrderCostBased(t *testing.T) {
	defer SetIndexJoin(SetIndexJoin(true))
	big := relation.NewSchema("Big", relation.Attr("a"), relation.Attr("b"))
	small := relation.NewSchema("Small", relation.Attr("b"))
	d := relation.NewDatabase(big, small)
	for i := 0; i < 50; i++ {
		d.MustAdd("Big", fmt.Sprintf("x%02d", i), fmt.Sprintf("y%02d", i))
	}
	d.MustAdd("Small", "y07")

	// q(x) :- Big(x, y), Small(y). Greedy picks Big first (template
	// order); cost-based starts at Small (1 tuple vs 50).
	q := New("plan", []query.Term{v("x")},
		[]query.RelAtom{atom("Big", v("x"), v("y")), atom("Small", v("y"))})
	tb, err := q.Compiled()
	if err != nil {
		t.Fatal(err)
	}
	order := tb.planOrder(d)
	if order[0] != 1 {
		t.Fatalf("cost-based plan should lead with Small: got order %v", order)
	}
	want := []relation.Tuple{relation.T("x07")}
	got := tb.Eval(d)
	if len(got) != 1 || got[0].Key() != want[0].Key() {
		t.Fatalf("eval under cost-based plan: got %v, want %v", got, want)
	}
	sort.Ints(order)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("plan must be a permutation of the templates: %v", order)
	}
}
