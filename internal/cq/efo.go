package cq

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// EFO is the body of a positive existential first-order query (∃FO⁺):
// atomic formulas closed under ∧, ∨ and ∃ (Section 2.1(c)).
type EFO interface {
	isEFO()
	String() string
}

// EAtom is a relation atom used as an ∃FO⁺ formula.
type EAtom struct{ A query.RelAtom }

// EEq is an (in)equality atom used as an ∃FO⁺ formula.
type EEq struct{ E query.EqAtom }

// EAnd is conjunction.
type EAnd struct{ L, R EFO }

// EOr is disjunction.
type EOr struct{ L, R EFO }

// EExists is existential quantification over one or more variables.
type EExists struct {
	Vars []string
	F    EFO
}

func (EAtom) isEFO()   {}
func (EEq) isEFO()     {}
func (EAnd) isEFO()    {}
func (EOr) isEFO()     {}
func (EExists) isEFO() {}

func (e EAtom) String() string { return e.A.String() }
func (e EEq) String() string   { return e.E.String() }
func (e EAnd) String() string  { return "(" + e.L.String() + " & " + e.R.String() + ")" }
func (e EOr) String() string   { return "(" + e.L.String() + " | " + e.R.String() + ")" }
func (e EExists) String() string {
	return "exists " + strings.Join(e.Vars, ",") + " (" + e.F.String() + ")"
}

// And builds a right-nested conjunction of formulas.
func And(fs ...EFO) EFO { return fold(fs, func(l, r EFO) EFO { return EAnd{l, r} }) }

// Or builds a right-nested disjunction of formulas.
func Or(fs ...EFO) EFO { return fold(fs, func(l, r EFO) EFO { return EOr{l, r} }) }

func fold(fs []EFO, op func(l, r EFO) EFO) EFO {
	if len(fs) == 0 {
		panic("cq: empty connective")
	}
	out := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		out = op(fs[i], out)
	}
	return out
}

// FAtom wraps a relation atom.
func FAtom(rel string, args ...query.Term) EFO { return EAtom{query.Atom(rel, args...)} }

// FEq wraps an equality.
func FEq(l, r query.Term) EFO { return EEq{query.Eq(l, r)} }

// FNeq wraps an inequality.
func FNeq(l, r query.Term) EFO { return EEq{query.Neq(l, r)} }

// Exists quantifies variables.
func Exists(vars []string, f EFO) EFO { return EExists{Vars: vars, F: f} }

// EFOQuery is a complete ∃FO⁺ query with an output head.
type EFOQuery struct {
	Name string
	Head []query.Term
	Body EFO

	// memoized DNF expansion; see ToUCQ. EFOQuery values must not be
	// copied or mutated after first evaluation.
	ucqOnce sync.Once
	ucq     *UCQ
}

// NewEFO builds an ∃FO⁺ query.
func NewEFO(name string, head []query.Term, body EFO) *EFOQuery {
	if name == "" {
		name = "Q"
	}
	return &EFOQuery{Name: name, Head: head, Body: body}
}

func (q *EFOQuery) String() string {
	return query.FormatHead(q.Name, q.Head) + " :- " + q.Body.String()
}

// Arity returns the output arity.
func (q *EFOQuery) Arity() int { return len(q.Head) }

// conjunct accumulates one DNF branch.
type conjunct struct {
	atoms []query.RelAtom
	conds []query.EqAtom
}

func (c conjunct) clone() conjunct {
	return conjunct{
		atoms: append([]query.RelAtom(nil), c.atoms...),
		conds: append([]query.EqAtom(nil), c.conds...),
	}
}

// ToUCQ expands the ∃FO⁺ query into an equivalent UCQ by distributing
// ∧ over ∨ (DNF). The expansion may be exponential in the number of
// disjunctions — exactly the blow-up the paper's Σ₂ᵖ/NEXPTIME upper
// bound proofs avoid by guessing one branch; the deciders in
// internal/core therefore work per-disjunct and never materialize more
// branches than they visit. Bound variables are α-renamed apart so that
// reused quantifier names cannot capture. The expansion is memoized: it
// runs once per query identity, however often the query is evaluated.
func (q *EFOQuery) ToUCQ() *UCQ {
	q.ucqOnce.Do(func() { q.ucq = q.expandUCQ() })
	return q.ucq
}

func (q *EFOQuery) expandUCQ() *UCQ {
	fresh := 0
	free := make(map[string]bool)
	for _, h := range q.Head {
		if h.IsVar {
			free[h.Name] = true
		}
	}
	var expand func(f EFO, ren map[string]string) []conjunct
	rename := func(t query.Term, ren map[string]string) query.Term {
		if t.IsVar {
			if nn, ok := ren[t.Name]; ok {
				return query.Var(nn)
			}
		}
		return t
	}
	expand = func(f EFO, ren map[string]string) []conjunct {
		switch f := f.(type) {
		case EAtom:
			a := f.A.Clone()
			for i := range a.Args {
				a.Args[i] = rename(a.Args[i], ren)
			}
			return []conjunct{{atoms: []query.RelAtom{a}}}
		case EEq:
			e := f.E
			e.L = rename(e.L, ren)
			e.R = rename(e.R, ren)
			return []conjunct{{conds: []query.EqAtom{e}}}
		case EAnd:
			ls := expand(f.L, ren)
			rs := expand(f.R, ren)
			out := make([]conjunct, 0, len(ls)*len(rs))
			for _, l := range ls {
				for _, r := range rs {
					c := l.clone()
					c.atoms = append(c.atoms, r.atoms...)
					c.conds = append(c.conds, r.conds...)
					out = append(out, c)
				}
			}
			return out
		case EOr:
			return append(expand(f.L, ren), expand(f.R, ren)...)
		case EExists:
			sub := make(map[string]string, len(ren)+len(f.Vars))
			for k, v := range ren {
				sub[k] = v
			}
			for _, v := range f.Vars {
				fresh++
				sub[v] = fmt.Sprintf("%s#%d", v, fresh)
			}
			return expand(f.F, sub)
		default:
			panic(fmt.Sprintf("cq: unknown ∃FO⁺ node %T", f))
		}
	}
	branches := expand(q.Body, map[string]string{})
	u := &UCQ{Name: q.Name}
	for i, c := range branches {
		u.Disjuncts = append(u.Disjuncts, New(
			fmt.Sprintf("%s_%d", q.Name, i+1),
			append([]query.Term(nil), q.Head...),
			c.atoms, c.conds...))
	}
	return u
}

// Eval evaluates the ∃FO⁺ query via its UCQ expansion.
func (q *EFOQuery) Eval(d *relation.Database) []relation.Tuple { return q.ToUCQ().Eval(d) }

// EvalGate evaluates the expansion under gate governance.
func (q *EFOQuery) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	return q.ToUCQ().EvalGate(d, g)
}

// EvalBool evaluates a Boolean ∃FO⁺ query.
func (q *EFOQuery) EvalBool(d *relation.Database) bool { return q.ToUCQ().EvalBool(d) }
