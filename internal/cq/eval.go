package cq

import (
	"sort"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// indexJoin gates the indexed join engine. When disabled (the -noindex
// ablation), evaluation falls back to the original greedy planner and
// pure nested-loop scans, giving a clean before/after comparison.
var indexJoin atomic.Bool

func init() { indexJoin.Store(true) }

// SetIndexJoin toggles the indexed join engine and returns the previous
// setting, so callers can restore it: defer cq.SetIndexJoin(cq.SetIndexJoin(x)).
func SetIndexJoin(on bool) bool { return indexJoin.Swap(on) }

// IndexJoinEnabled reports whether the indexed join engine is active.
func IndexJoinEnabled() bool { return indexJoin.Load() }

// Eval evaluates the CQ over the database and returns the set of answer
// tuples in deterministic order. Boolean queries return either the empty
// result or a single empty tuple. The tableau is compiled once per query
// identity and cached (see Compiled).
func (q *CQ) Eval(d *relation.Database) []relation.Tuple {
	t, err := q.Compiled()
	if err != nil {
		return nil // unsatisfiable queries have empty answers everywhere
	}
	return t.Eval(d)
}

// EvalGate is Eval under gate governance: enumeration charges one
// row-step per candidate tuple and stops with the gate's error as soon
// as the budget trips or the context is cancelled. Answers computed
// before the stop are discarded (a partial answer set is not a sound
// answer set).
func (q *CQ) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	t, err := q.Compiled()
	if err != nil {
		return nil, nil // unsatisfiable queries have empty answers everywhere
	}
	return t.EvalGate(d, g)
}

// EvalBool evaluates a Boolean query.
func (q *CQ) EvalBool(d *relation.Database) bool {
	return len(q.Eval(d)) > 0
}

// Eval evaluates the tableau over the database. Atoms are joined in a
// cost-based order with index lookups on bound columns; inequality
// conditions are checked as soon as both sides are bound.
func (t *Tableau) Eval(d *relation.Database) []relation.Tuple {
	out, _ := t.EvalGate(d, nil)
	return out
}

// EvalGate is Eval under gate governance (see CQ.EvalGate).
func (t *Tableau) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	if out, handled, err := t.evalGateInterned(d, g); handled {
		return out, err
	}
	results := make(map[string]relation.Tuple)
	err := t.EvalFuncGate(d, g, func(b query.Binding) bool {
		if h, ok := t.HeadTuple(b); ok {
			results[h.Key()] = h
		}
		return true // keep enumerating
	})
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, 0, len(results))
	for _, tup := range results {
		out = append(out, tup)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// EvalFunc enumerates all satisfying bindings of the tableau over d,
// invoking fn for each; enumeration stops early when fn returns false.
// The binding passed to fn is reused between calls — clone it to keep.
func (t *Tableau) EvalFunc(d *relation.Database, fn func(query.Binding) bool) {
	t.EvalFuncGate(d, nil, fn)
}

// EvalFuncGate is EvalFunc under gate governance: each candidate tuple
// enumerated by the join charges one row-step on g, and the first gate
// error aborts enumeration and is returned. A nil gate is free.
func (t *Tableau) EvalFuncGate(d *relation.Database, g *query.Gate, fn func(query.Binding) bool) error {
	if len(t.Templates) == 0 {
		// A query without relation atoms never arises from Validate'd
		// input, but handle it as "true once" if diseqs hold on the
		// empty binding (i.e. there are no variable diseqs).
		b := query.Binding{}
		if t.DiseqsHold(b) {
			fn(b)
		}
		return nil
	}
	if handled, err := t.evalFuncInterned(d, g, fn); handled {
		return err
	}
	order := t.planOrder(d)
	b := make(query.Binding, len(t.Vars))
	gs := gate(g)
	var es evalStats
	t.join(d, order, 0, b, fn, gs, &es)
	es.flush()
	return gs.finish()
}

// evalStats accumulates one enumeration's observability counts in
// plain stack-local integers — the same batching discipline as
// gateState: the hot join loop pays a non-atomic increment per row,
// and the shared obs counters are charged once when the enumeration
// ends, keeping the instrumented path within noise of the
// uninstrumented one (BenchmarkObsOverhead).
type evalStats struct {
	rows   int64 // candidate join rows enumerated
	probes int64 // join steps answered from a column index
	scans  int64 // join steps answered by a full instance scan
}

// flush charges the accumulated counts to the process-global metrics.
func (es *evalStats) flush() {
	obs.Evals.Inc()
	obs.JoinRows.Add(es.rows)
	obs.IndexProbes.Add(es.probes)
	obs.FullScans.Add(es.scans)
}

// gateState threads a gate through the join recursion. The join's
// boolean "continue" protocol cannot carry an error, so the first gate
// error is parked here and the recursion unwinds through the ordinary
// stop path. A nil *gateState (ungoverned evaluation) costs one nil
// check per row.
//
// Row charges are batched: the per-evaluation pending counter (plain,
// single-goroutine) absorbs the per-row cost and is flushed to the
// shared gate every gateFlushRows rows and once more when enumeration
// ends, so totals stay exact while the hot loop pays neither an atomic
// increment nor a cancellation check per row. Cancellation and budget
// stops are therefore detected within gateFlushRows row-steps.
type gateState struct {
	g       *query.Gate
	err     error
	pending int64
}

// gateFlushRows is the row-charge batching granularity: small enough
// that a stop is near-immediate on human scales, large enough that the
// shared atomic and the done-channel check vanish from per-row cost
// (see BenchmarkEvalGateOverhead).
const gateFlushRows = 64

// gate wraps a Gate for the join recursion; nil stays nil so the
// ungoverned path keeps its zero-cost contract.
func gate(g *query.Gate) *gateState {
	if g == nil {
		return nil
	}
	return &gateState{g: g}
}

// step charges one row and reports whether enumeration may continue.
func (gs *gateState) step() bool {
	if gs == nil {
		return true
	}
	gs.pending++
	if gs.pending < gateFlushRows {
		return true
	}
	return gs.flush()
}

// flush forwards the pending rows to the shared gate.
func (gs *gateState) flush() bool {
	err := gs.g.StepN(gs.pending)
	gs.pending = 0
	if err != nil {
		if gs.err == nil {
			gs.err = err
		}
		return false
	}
	return true
}

// finish flushes the remainder when enumeration ends and returns the
// first gate error, if any. Nil-safe for the ungoverned path.
func (gs *gateState) finish() error {
	if gs == nil {
		return nil
	}
	if gs.err == nil && gs.pending > 0 {
		gs.flush()
	}
	return gs.err
}

// planOrder orders the templates for the join. With the indexed engine
// it is cost-based: each step picks the unused template with the lowest
// estimated candidate count given the variables bound so far, where an
// equality probe on a bound column of instance in is expected to match
// about in.Len()/in.Distinct(col) tuples and an unbound template costs a
// full scan. Ties break toward fewer newly-bound variables, then lowest
// template position, keeping the order deterministic. With the engine
// disabled it falls back to the original greedy most-bound-first order.
func (t *Tableau) planOrder(d *relation.Database) []int {
	if !IndexJoinEnabled() || d == nil {
		return t.planOrderGreedy()
	}
	n := len(t.Templates)
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestCost, bestNew := -1, 0, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			cost, newVars := templateCost(d, t.Templates[i], bound)
			if best == -1 || cost < bestCost || (cost == bestCost && newVars < bestNew) {
				best, bestCost, bestNew = i, cost, newVars
			}
		}
		used[best] = true
		order = append(order, best)
		for _, a := range t.Templates[best].Args {
			if a.IsVar {
				bound[a.Name] = true
			}
		}
	}
	return order
}

// templateCost estimates how many candidate tuples matching the atom
// will be enumerated under the current bound-variable set, and counts
// the variables the atom would newly bind.
func templateCost(d *relation.Database, atom query.RelAtom, bound map[string]bool) (cost, newVars int) {
	for _, arg := range atom.Args {
		if arg.IsVar && !bound[arg.Name] {
			newVars++
		}
	}
	in := d.Instance(atom.Rel)
	if in == nil || in.Len() == 0 {
		return 0, newVars
	}
	cost = in.Len()
	for col, arg := range atom.Args {
		if arg.IsVar && !bound[arg.Name] {
			continue
		}
		if dc := in.Distinct(col); dc > 0 {
			if est := (in.Len() + dc - 1) / dc; est < cost {
				cost = est
			}
		}
	}
	return cost, newVars
}

// planOrderGreedy is the legacy planner: order templates so that each
// step binds as few new variables as possible.
func (t *Tableau) planOrderGreedy() []int {
	n := len(t.Templates)
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestNew := -1, 1<<30
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			newVars := 0
			for _, a := range t.Templates[i].Args {
				if a.IsVar && !bound[a.Name] {
					newVars++
				}
			}
			if newVars < bestNew {
				best, bestNew = i, newVars
			}
		}
		used[best] = true
		order = append(order, best)
		for _, a := range t.Templates[best].Args {
			if a.IsVar {
				bound[a.Name] = true
			}
		}
	}
	return order
}

// joinTuples returns the candidate tuples for matching atom under the
// current binding: the most selective index bucket when some argument is
// already bound (or constant) and indexing is enabled, otherwise the
// full deterministic scan. Index buckets are sorted subsequences of the
// full scan, so candidate enumeration order — and hence every
// enumeration-order-sensitive observation downstream — is unchanged.
// Probe-vs-scan decisions accumulate into es.
func joinTuples(in *relation.Instance, atom query.RelAtom, b query.Binding, es *evalStats) []relation.Tuple {
	if IndexJoinEnabled() {
		if col, val, ok := bestBoundArg(in, atom, b); ok {
			es.probes++
			return in.Lookup(col, val)
		}
	}
	es.scans++
	return in.Tuples()
}

// bestBoundArg picks, among the atom's bound arguments (constants and
// already-bound variables), the column with the most distinct values —
// the most selective equality probe. The first such column wins ties,
// keeping the choice deterministic.
func bestBoundArg(in *relation.Instance, atom query.RelAtom, b query.Binding) (int, relation.Value, bool) {
	best, bestDc := -1, -1
	var bestVal relation.Value
	for i, arg := range atom.Args {
		var v relation.Value
		if arg.IsVar {
			bv, ok := b[arg.Name]
			if !ok {
				continue
			}
			v = bv
		} else {
			v = arg.Val
		}
		if dc := in.Distinct(i); dc > bestDc {
			best, bestDc, bestVal = i, dc, v
		}
	}
	return best, bestVal, best >= 0
}

// join recursively matches template order[k] against the database.
func (t *Tableau) join(d *relation.Database, order []int, k int, b query.Binding, fn func(query.Binding) bool, gs *gateState, es *evalStats) bool {
	if k == len(order) {
		if !t.DiseqsHold(b) {
			return true
		}
		return fn(b)
	}
	atom := t.Templates[order[k]]
	in := d.Instance(atom.Rel)
	if in == nil {
		return true
	}
	for _, tup := range joinTuples(in, atom, b, es) {
		es.rows++
		if !gs.step() {
			return false
		}
		newly := b.Match(atom, tup)
		if newly == nil {
			continue
		}
		ok := true
		for _, dq := range t.Diseqs {
			if holds, known := dq.Holds(b); known && !holds {
				ok = false
				break
			}
		}
		cont := true
		if ok {
			cont = t.join(d, order, k+1, b, fn, gs, es)
		}
		for _, v := range newly {
			delete(b, v)
		}
		if !cont {
			return false
		}
	}
	return true
}

// EvalFuncDelta enumerates bindings of the tableau over d ∪ delta
// restricted to matches that use at least one delta tuple, without ever
// materializing the union. It implements one step of semi-naive
// (differential) evaluation: for each template position j it enumerates
// joins where template j matches only delta and the remaining templates
// match d and then delta, which covers every new match at least once
// (possibly invoking fn more than once per binding, e.g. when several
// templates match delta tuples or a delta tuple already occurs in d).
// fn returning false stops enumeration.
func (t *Tableau) EvalFuncDelta(d, delta *relation.Database, fn func(query.Binding) bool) {
	t.EvalFuncDeltaGate(d, delta, nil, fn)
}

// EvalFuncDeltaGate is EvalFuncDelta under gate governance: each
// candidate tuple charges one row-step; the first gate error aborts
// enumeration and is returned. A nil gate is free.
func (t *Tableau) EvalFuncDeltaGate(d, delta *relation.Database, g *query.Gate, fn func(query.Binding) bool) error {
	if len(t.Templates) == 0 {
		return nil // no templates: answers cannot change
	}
	if handled, err := t.evalFuncDeltaInterned(d, delta, g, fn); handled {
		return err
	}
	gs := gate(g)
	var es evalStats
	for j := range t.Templates {
		b := make(query.Binding, len(t.Vars))
		if !t.joinDelta(d, delta, j, b, fn, gs, &es) {
			break
		}
	}
	es.flush()
	return gs.finish()
}

// joinDelta is join with template deltaAt reading only from delta and
// every other template reading the d/delta overlay. Template order is
// positional (no planning): delta instances are typically tiny, so the
// deltaAt template leads and binds its variables first.
func (t *Tableau) joinDelta(d, delta *relation.Database, deltaAt int, b query.Binding, fn func(query.Binding) bool, gs *gateState, es *evalStats) bool {
	// Visit deltaAt first, then the others positionally.
	idx := make([]int, 0, len(t.Templates))
	idx = append(idx, deltaAt)
	for i := range t.Templates {
		if i != deltaAt {
			idx = append(idx, i)
		}
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == len(idx) {
			if !t.DiseqsHold(b) {
				return true
			}
			return fn(b)
		}
		atom := t.Templates[idx[pos]]
		srcs := [2]*relation.Database{d, delta}
		parts := srcs[:2]
		if idx[pos] == deltaAt {
			parts = srcs[1:2]
		}
		for _, src := range parts {
			in := src.Instance(atom.Rel)
			if in == nil {
				continue
			}
			for _, tup := range joinTuples(in, atom, b, es) {
				es.rows++
				if !gs.step() {
					return false
				}
				newly := b.Match(atom, tup)
				if newly == nil {
					continue
				}
				ok := true
				for _, dq := range t.Diseqs {
					if holds, known := dq.Holds(b); known && !holds {
						ok = false
						break
					}
				}
				cont := true
				if ok {
					cont = rec(pos + 1)
				}
				for _, v := range newly {
					delete(b, v)
				}
				if !cont {
					return false
				}
			}
		}
		return true
	}
	return rec(0)
}
