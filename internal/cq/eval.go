package cq

import (
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Eval evaluates the CQ over the database and returns the set of answer
// tuples in deterministic order. Boolean queries return either the empty
// result or a single empty tuple.
func (q *CQ) Eval(d *relation.Database) []relation.Tuple {
	t, err := BuildTableau(q)
	if err != nil {
		return nil // unsatisfiable queries have empty answers everywhere
	}
	return t.Eval(d)
}

// EvalBool evaluates a Boolean query.
func (q *CQ) EvalBool(d *relation.Database) bool {
	return len(q.Eval(d)) > 0
}

// Eval evaluates the tableau over the database. Atoms are joined with a
// greedy most-bound-first ordering; inequality conditions are checked as
// soon as both sides are bound.
func (t *Tableau) Eval(d *relation.Database) []relation.Tuple {
	results := make(map[string]relation.Tuple)
	t.EvalFunc(d, func(b query.Binding) bool {
		if h, ok := t.HeadTuple(b); ok {
			results[h.Key()] = h
		}
		return true // keep enumerating
	})
	out := make([]relation.Tuple, 0, len(results))
	for _, tup := range results {
		out = append(out, tup)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// EvalFunc enumerates all satisfying bindings of the tableau over d,
// invoking fn for each; enumeration stops early when fn returns false.
// The binding passed to fn is reused between calls — clone it to keep.
func (t *Tableau) EvalFunc(d *relation.Database, fn func(query.Binding) bool) {
	if len(t.Templates) == 0 {
		// A query without relation atoms never arises from Validate'd
		// input, but handle it as "true once" if diseqs hold on the
		// empty binding (i.e. there are no variable diseqs).
		b := query.Binding{}
		if t.DiseqsHold(b) {
			fn(b)
		}
		return
	}
	order := t.planOrder()
	b := make(query.Binding, len(t.Vars))
	t.join(d, order, 0, b, fn)
}

// planOrder greedily orders templates so that each step binds as few new
// variables as possible (maximizing filter selectivity).
func (t *Tableau) planOrder() []int {
	n := len(t.Templates)
	used := make([]bool, n)
	bound := make(map[string]bool)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestNew := -1, 1<<30
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			newVars := 0
			for _, a := range t.Templates[i].Args {
				if a.IsVar && !bound[a.Name] {
					newVars++
				}
			}
			if newVars < bestNew {
				best, bestNew = i, newVars
			}
		}
		used[best] = true
		order = append(order, best)
		for _, a := range t.Templates[best].Args {
			if a.IsVar {
				bound[a.Name] = true
			}
		}
	}
	return order
}

// join recursively matches template order[k] against the database.
func (t *Tableau) join(d *relation.Database, order []int, k int, b query.Binding, fn func(query.Binding) bool) bool {
	if k == len(order) {
		if !t.DiseqsHold(b) {
			return true
		}
		return fn(b)
	}
	atom := t.Templates[order[k]]
	in := d.Instance(atom.Rel)
	if in == nil {
		return true
	}
	for _, tup := range in.Tuples() {
		newly := b.Match(atom, tup)
		if newly == nil {
			continue
		}
		ok := true
		for _, dq := range t.Diseqs {
			if holds, known := dq.Holds(b); known && !holds {
				ok = false
				break
			}
		}
		cont := true
		if ok {
			cont = t.join(d, order, k+1, b, fn)
		}
		for _, v := range newly {
			delete(b, v)
		}
		if !cont {
			return false
		}
	}
	return true
}

// EvalFuncDelta enumerates bindings of the tableau over full = d ∪ delta
// restricted to matches that use at least one delta tuple. It implements
// one step of semi-naive (differential) evaluation: for each template
// position j it enumerates joins where template j matches only delta and
// the remaining templates match the full database, which covers every
// new match exactly (possibly invoking fn more than once per binding).
// fn returning false stops enumeration.
func (t *Tableau) EvalFuncDelta(full, delta *relation.Database, fn func(query.Binding) bool) {
	if len(t.Templates) == 0 {
		return // no templates: answers cannot change
	}
	for j := range t.Templates {
		b := make(query.Binding, len(t.Vars))
		if !t.joinDelta(full, delta, j, b, fn) {
			return
		}
	}
}

// joinDelta is join with template deltaAt reading from delta instead of
// the full database. Template order is positional here (no planning):
// delta instances are typically tiny, so the deltaAt template leads.
func (t *Tableau) joinDelta(full, delta *relation.Database, deltaAt int, b query.Binding, fn func(query.Binding) bool) bool {
	// Visit deltaAt first, then the others positionally.
	idx := make([]int, 0, len(t.Templates))
	idx = append(idx, deltaAt)
	for i := range t.Templates {
		if i != deltaAt {
			idx = append(idx, i)
		}
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == len(idx) {
			if !t.DiseqsHold(b) {
				return true
			}
			return fn(b)
		}
		atom := t.Templates[idx[pos]]
		src := full
		if idx[pos] == deltaAt {
			src = delta
		}
		in := src.Instance(atom.Rel)
		if in == nil {
			return true
		}
		for _, tup := range in.Tuples() {
			newly := b.Match(atom, tup)
			if newly == nil {
				continue
			}
			ok := true
			for _, dq := range t.Diseqs {
				if holds, known := dq.Holds(b); known && !holds {
					ok = false
					break
				}
			}
			cont := true
			if ok {
				cont = rec(pos + 1)
			}
			for _, v := range newly {
				delete(b, v)
			}
			if !cont {
				return false
			}
		}
		return true
	}
	return rec(0)
}
