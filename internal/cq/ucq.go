package cq

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// UCQ is a union of conjunctive queries Q₁ ∪ … ∪ Q_k. All disjuncts
// must have the same arity.
type UCQ struct {
	Name      string
	Disjuncts []*CQ

	// memoized Tableaux; UCQ values must not be copied after first
	// evaluation (Union/FromCQ/Clone all build fresh structs).
	tabOnce sync.Once
	tabs    []*Tableau
}

// Union builds a UCQ from disjuncts.
func Union(name string, disjuncts ...*CQ) *UCQ {
	if name == "" {
		name = "Q"
	}
	return &UCQ{Name: name, Disjuncts: disjuncts}
}

// FromCQ wraps a single CQ as a UCQ; used to run the UCQ machinery
// uniformly on plain conjunctive queries.
func FromCQ(q *CQ) *UCQ { return &UCQ{Name: q.Name, Disjuncts: []*CQ{q}} }

// Arity returns the common output arity of the disjuncts.
func (u *UCQ) Arity() int {
	if len(u.Disjuncts) == 0 {
		return 0
	}
	return u.Disjuncts[0].Arity()
}

// Validate checks every disjunct and arity agreement.
func (u *UCQ) Validate(schemas map[string]*relation.Schema) error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("ucq %s: no disjuncts", u.Name)
	}
	ar := u.Disjuncts[0].Arity()
	for i, q := range u.Disjuncts {
		if q.Arity() != ar {
			return fmt.Errorf("ucq %s: disjunct %d has arity %d, want %d", u.Name, i, q.Arity(), ar)
		}
		if err := q.Validate(schemas); err != nil {
			return err
		}
	}
	return nil
}

// Eval evaluates the union over the database.
func (u *UCQ) Eval(d *relation.Database) []relation.Tuple {
	out, _ := u.EvalGate(d, nil)
	return out
}

// EvalGate evaluates the union under gate governance (see CQ.EvalGate).
func (u *UCQ) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	seen := make(map[string]relation.Tuple)
	for _, q := range u.Disjuncts {
		ts, err := q.EvalGate(d, g)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			seen[t.Key()] = t
		}
	}
	out := make([]relation.Tuple, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// EvalBool evaluates a Boolean union.
func (u *UCQ) EvalBool(d *relation.Database) bool { return len(u.Eval(d)) > 0 }

// Constants returns all constants occurring in any disjunct.
func (u *UCQ) Constants() []relation.Value {
	var cs []relation.Value
	for _, q := range u.Disjuncts {
		cs = append(cs, q.Constants()...)
	}
	return cs
}

// Clone deep-copies the union.
func (u *UCQ) Clone() *UCQ {
	cp := &UCQ{Name: u.Name}
	for _, q := range u.Disjuncts {
		cp.Disjuncts = append(cp.Disjuncts, q.Clone())
	}
	return cp
}

func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}

// Tableaux returns the tableau of every satisfiable disjunct, silently
// dropping unsatisfiable ones (they contribute nothing to any answer).
// Disjunct tableaux come from the per-CQ compiled cache and the list
// itself is memoized, so repeated calls build nothing.
func (u *UCQ) Tableaux() []*Tableau {
	u.tabOnce.Do(func() {
		for _, q := range u.Disjuncts {
			t, err := q.Compiled()
			if err != nil {
				continue
			}
			u.tabs = append(u.tabs, t)
		}
	})
	return u.tabs
}
