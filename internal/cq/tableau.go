package cq

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// tableauBuilds counts BuildTableau invocations; a test hook for
// asserting that the compiled-query cache builds each tableau once.
var tableauBuilds atomic.Int64

// TableauBuilds returns the number of BuildTableau invocations so far in
// the process. Tests take the difference around an operation to assert
// how many tableaux it compiled.
func TableauBuilds() int64 { return tableauBuilds.Load() }

// Tableau is the tableau representation (T_Q, u_Q) of a CQ, as used in
// Section 3.2.1: equality atoms are folded in by assigning a single
// representative variable to each equivalence class eq(x) and by
// substituting constants for classes containing one. Only inequality
// conditions remain. The tableau generalizes the paper's single-relation
// form to multi-relation templates (see DESIGN.md: Lemma 3.2 makes the
// two interchangeable; SingleRelation implements the lemma itself).
type Tableau struct {
	Query     *CQ             // the original query
	Templates []query.RelAtom // tuple templates with representatives substituted
	Head      []query.Term    // rewritten output summary u_Q
	Diseqs    []query.EqAtom  // remaining ≠ conditions (rewritten)
	Vars      []string        // sorted distinct variables of the tableau

	// ip is the compiled slot plan of the interned join engine
	// (ieval.go); nil on hand-built tableaux, which then evaluate on
	// the legacy string path.
	ip *iplan

	// applyPool recycles the database fragments Apply builds: the
	// decision procedures instantiate the templates once per candidate
	// valuation and discard the result almost every time, so callers
	// that know a fragment is dead hand it back via ReleaseApplied and
	// the next Apply refills it in place.
	applyPool sync.Pool
}

// ErrUnsatisfiable is returned by BuildTableau for queries whose
// equality/inequality conditions are contradictory.
type ErrUnsatisfiable struct{ Reason string }

func (e *ErrUnsatisfiable) Error() string { return "cq: unsatisfiable query: " + e.Reason }

// unionFind resolves variable equivalence classes with optional constant
// bindings.
type unionFind struct {
	parent map[string]string
	val    map[string]relation.Value // constant bound to a root, if any
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string), val: make(map[string]relation.Value)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(x, y string) error {
	rx, ry := u.find(x), u.find(y)
	if rx == ry {
		return nil
	}
	// Deterministic representative: smaller name wins.
	if ry < rx {
		rx, ry = ry, rx
	}
	vx, okx := u.val[rx]
	vy, oky := u.val[ry]
	if okx && oky && vx != vy {
		return &ErrUnsatisfiable{Reason: fmt.Sprintf("%s = %q conflicts with %s = %q", x, vx, y, vy)}
	}
	u.parent[ry] = rx
	if oky && !okx {
		u.val[rx] = vy
	}
	delete(u.val, ry)
	return nil
}

func (u *unionFind) bind(x string, v relation.Value) error {
	r := u.find(x)
	if cur, ok := u.val[r]; ok {
		if cur != v {
			return &ErrUnsatisfiable{Reason: fmt.Sprintf("%s bound to both %q and %q", x, cur, v)}
		}
		return nil
	}
	u.val[r] = v
	return nil
}

// resolve rewrites a term to its representative (a constant if the class
// is bound, otherwise the representative variable).
func (u *unionFind) resolve(t query.Term) query.Term {
	if !t.IsVar {
		return t
	}
	r := u.find(t.Name)
	if v, ok := u.val[r]; ok {
		return query.Const(v)
	}
	return query.Var(r)
}

// BuildTableau folds the equality conditions of q into a tableau. It
// returns ErrUnsatisfiable when the equalities are contradictory or an
// inequality is trivially violated (x ≠ x, or c ≠ c on the same
// constant).
func BuildTableau(q *CQ) (*Tableau, error) {
	tableauBuilds.Add(1)
	obs.TableauBuilds.Inc()
	if obs.Tracing() {
		obs.Emit("tableau_build", map[string]any{"query": q.Name})
	}
	uf := newUnionFind()
	for _, c := range q.Conds {
		if c.Neg {
			continue
		}
		switch {
		case c.L.IsVar && c.R.IsVar:
			if err := uf.union(c.L.Name, c.R.Name); err != nil {
				return nil, err
			}
		case c.L.IsVar:
			if err := uf.bind(c.L.Name, c.R.Val); err != nil {
				return nil, err
			}
		case c.R.IsVar:
			if err := uf.bind(c.R.Name, c.L.Val); err != nil {
				return nil, err
			}
		default:
			if c.L.Val != c.R.Val {
				return nil, &ErrUnsatisfiable{Reason: fmt.Sprintf("constant equality %q = %q", c.L.Val, c.R.Val)}
			}
		}
	}

	t := &Tableau{Query: q}
	varSeen := make(map[string]bool)
	addVar := func(tm query.Term) {
		if tm.IsVar && !varSeen[tm.Name] {
			varSeen[tm.Name] = true
			t.Vars = append(t.Vars, tm.Name)
		}
	}
	for _, a := range q.Atoms {
		na := a.Clone()
		for i, arg := range na.Args {
			na.Args[i] = uf.resolve(arg)
			addVar(na.Args[i])
		}
		t.Templates = append(t.Templates, na)
	}
	for _, h := range q.Head {
		nh := uf.resolve(h)
		t.Head = append(t.Head, nh)
		addVar(nh)
	}
	for _, c := range q.Conds {
		if !c.Neg {
			continue
		}
		l, r := uf.resolve(c.L), uf.resolve(c.R)
		switch {
		case !l.IsVar && !r.IsVar:
			if l.Val == r.Val {
				return nil, &ErrUnsatisfiable{Reason: fmt.Sprintf("inequality %q != %q", l.Val, r.Val)}
			}
			// Trivially true; drop.
		case l.IsVar && r.IsVar && l.Name == r.Name:
			return nil, &ErrUnsatisfiable{Reason: fmt.Sprintf("inequality %s != %s within one class", c.L, c.R)}
		default:
			t.Diseqs = append(t.Diseqs, query.EqAtom{L: l, R: r, Neg: true})
			addVar(l)
			addVar(r)
		}
	}
	sort.Strings(t.Vars)
	t.ip = t.buildIPlan()
	return t, nil
}

// AsCQ converts the tableau back into a plain CQ (templates plus
// remaining inequalities).
func (t *Tableau) AsCQ() *CQ {
	return New(t.Query.Name, t.Head, t.Templates, t.Diseqs...)
}

// Apply instantiates the tableau's templates under a binding, producing
// a database fragment μ(T_Q) over the given schemas. Unbound variables
// cause an error.
func (t *Tableau) Apply(b query.Binding, schemas map[string]*relation.Schema) (*relation.Database, error) {
	ss := make([]*relation.Schema, 0, len(t.Templates))
outer:
	for _, a := range t.Templates {
		for _, s := range ss {
			if s.Name == a.Rel {
				continue outer
			}
		}
		s := schemas[a.Rel]
		if s == nil {
			return nil, fmt.Errorf("cq: unknown relation %s", a.Rel)
		}
		ss = append(ss, s)
	}
	db := t.pooledDatabase(ss)
	if db == nil {
		db = relation.NewDatabase(ss...)
	}
	for _, a := range t.Templates {
		tup, ok := a.Ground(b)
		if !ok {
			return nil, fmt.Errorf("cq: binding does not cover template %s", a)
		}
		if err := db.Add(a.Rel, tup); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// pooledDatabase returns a recycled, emptied fragment matching the
// schema list exactly — same relations, same schema objects, same
// storage mode as a fresh build would use — or nil when the pool has
// nothing usable (the mismatch case only arises when one tableau is
// applied under different schema maps, or across a SetInterning flip).
func (t *Tableau) pooledDatabase(ss []*relation.Schema) *relation.Database {
	db, _ := t.applyPool.Get().(*relation.Database)
	if db == nil {
		return nil
	}
	if len(db.Relations()) != len(ss) {
		return nil
	}
	for _, s := range ss {
		in := db.Instance(s.Name)
		if in == nil || in.Schema != s || in.Interned() != relation.InterningEnabled() {
			return nil
		}
	}
	db.Reset()
	return db
}

// ReleaseApplied hands a database obtained from Apply back to the
// tableau's scratch pool. Callers must be done with every reference
// into it — instances, tuples, index views — because the next Apply
// reuses its storage in place.
func (t *Tableau) ReleaseApplied(db *relation.Database) {
	if db != nil {
		t.applyPool.Put(db)
	}
}

// HeadTuple instantiates the output summary u_Q under a binding.
func (t *Tableau) HeadTuple(b query.Binding) (relation.Tuple, bool) {
	out := make(relation.Tuple, len(t.Head))
	for i, h := range t.Head {
		v, ok := b.Resolve(h)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// DiseqsHold reports whether all inequality conditions hold under a
// complete binding.
func (t *Tableau) DiseqsHold(b query.Binding) bool {
	for _, d := range t.Diseqs {
		holds, ok := d.Holds(b)
		if !ok || !holds {
			return false
		}
	}
	return true
}

// Satisfiable reports whether the query has a nonempty answer on some
// database over the given schemas. Equality conflicts are detected by
// BuildTableau; what remains is checking that the inequality conditions
// can be met within the variables' admissible domains, which for
// finite-domain variables is a small constraint-satisfaction search
// (infinite-domain variables can always take fresh distinct values).
func Satisfiable(q *CQ, schemas map[string]*relation.Schema) bool {
	t, err := q.Compiled()
	if err != nil {
		return false
	}
	doms, ok := t.AsCQ().VarDomains(schemas)
	if !ok {
		return false
	}
	// Constants already fixed by the tableau. Only finite-domain
	// variables can fail; collect them with the diseq constraints that
	// mention them.
	var finVars []string
	for _, v := range t.Vars {
		if doms[v].Kind == relation.Finite {
			finVars = append(finVars, v)
		}
	}
	if len(finVars) == 0 {
		return true
	}
	sort.Strings(finVars)
	assign := make(query.Binding)
	var solve func(i int) bool
	solve = func(i int) bool {
		if i == len(finVars) {
			return true
		}
		v := finVars[i]
		for _, val := range doms[v].Values {
			assign[v] = val
			ok := true
			for _, d := range t.Diseqs {
				if holds, known := d.Holds(assign); known && !holds {
					ok = false
					break
				}
			}
			if ok && solve(i+1) {
				return true
			}
			delete(assign, v)
		}
		return false
	}
	return solve(0)
}
