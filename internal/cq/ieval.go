package cq

import (
	"math/bits"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// This file is the interned join engine: the same recursion, planner,
// probe choice and gate accounting as the string engine in eval.go, but
// over dictionary ids and posting lists instead of Value maps and hash
// buckets. The two engines must be observably identical — answer sets,
// enumeration order, row/probe/scan counts, gate charges — because the
// legacy path doubles as the correctness oracle (SetInterning ablation)
// and the decision procedures compare BudgetStats across both.

// iterm is one compiled term: a non-negative value is an index into the
// tableau's sorted Vars (a slot), a negative value encodes a constant
// as -(index into iplan.consts)-1.
type iterm int32

// iplan is the compiled slot plan of a tableau: templates, head and
// inequality terms rewritten to variable slots and constant indexes.
// ok is false when the plan cannot drive evaluation — no templates, or
// a head/inequality variable that no template binds — in which case the
// legacy engine runs.
type iplan struct {
	ok     bool
	consts []relation.Value
	tmpls  [][]iterm
	head   []iterm
	diseqs [][2]iterm
}

// buildIPlan compiles the tableau's terms into slots. It is cheap and
// deterministic, so it runs unconditionally at BuildTableau time.
func (t *Tableau) buildIPlan() *iplan {
	ip := &iplan{}
	if len(t.Templates) == 0 {
		return ip
	}
	slot := make(map[string]int, len(t.Vars))
	for i, v := range t.Vars {
		slot[v] = i
	}
	constIdx := make(map[relation.Value]int)
	covered := make([]bool, len(t.Vars))
	term := func(tm query.Term, cover bool) iterm {
		if tm.IsVar {
			s := slot[tm.Name]
			if cover {
				covered[s] = true
			}
			return iterm(s)
		}
		ci, ok := constIdx[tm.Val]
		if !ok {
			ci = len(ip.consts)
			constIdx[tm.Val] = ci
			ip.consts = append(ip.consts, tm.Val)
		}
		return iterm(-ci - 1)
	}
	ip.tmpls = make([][]iterm, len(t.Templates))
	for i, a := range t.Templates {
		args := make([]iterm, len(a.Args))
		for j, tm := range a.Args {
			args[j] = term(tm, true)
		}
		ip.tmpls[i] = args
	}
	ip.head = make([]iterm, len(t.Head))
	for i, h := range t.Head {
		ip.head[i] = term(h, false)
	}
	for _, dq := range t.Diseqs {
		ip.diseqs = append(ip.diseqs, [2]iterm{term(dq.L, false), term(dq.R, false)})
	}
	ip.ok = true
	for _, c := range covered {
		if !c {
			ip.ok = false
			break
		}
	}
	return ip
}

// ijoin is one enumeration's state for the interned engine: the slot
// binding (ids, -1 unbound), resolved constant ids, the trail of newly
// bound slots for unwinding, and the per-template instances of the
// base (and, for delta evaluation, delta) database.
type ijoin struct {
	ip   *iplan
	vals []relation.Value // dictionary snapshot for materialization

	ins []*relation.Instance
	ixs []relation.IDIndex

	dins []*relation.Instance // delta instances (delta evaluation only)
	dixs []relation.IDIndex

	cids  []int32 // constant index -> id
	slots []int32 // var slot -> id, -1 unbound
	trail []int32 // newly bound slots, unwound on backtrack

	gs   *gateState
	es   *evalStats
	leaf func() bool
}

// isetup compiles the fast-path preconditions: interning on, a usable
// plan, and every present template instance interned over the shared
// dictionary with matching arity. ok=false sends the evaluation to the
// legacy engine.
func (t *Tableau) isetup(d *relation.Database, gs *gateState, es *evalStats) (*ijoin, bool) {
	ip := t.ip
	if ip == nil || !ip.ok || !relation.InterningEnabled() {
		return nil, false
	}
	dict := relation.Shared()
	n := len(t.Templates)
	nc, nv := len(ip.consts), len(t.Vars)
	// One backing array serves cids, slots and the (bounded by nv)
	// trail; one instance slice and one index slice each serve both the
	// base and the delta halves. The decision procedures run one setup
	// per valuation per constraint, so these five-allocations-for-two
	// matters.
	ibuf := make([]int32, nc+nv, nc+2*nv)
	insbuf := make([]*relation.Instance, 2*n)
	ixbuf := make([]relation.IDIndex, 2*n)
	st := &ijoin{
		ip:    ip,
		ins:   insbuf[:n],
		ixs:   ixbuf[:n],
		dins:  insbuf[n:],
		dixs:  ixbuf[n:],
		cids:  ibuf[:nc],
		slots: ibuf[nc : nc+nv],
		trail: ibuf[nc+nv : nc+nv : nc+2*nv],
		gs:    gs,
		es:    es,
	}
	for i, a := range t.Templates {
		in := d.Instance(a.Rel)
		if in == nil {
			continue
		}
		if in.InternDict() != dict || in.Schema.Arity() != len(a.Args) {
			return nil, false
		}
		st.ins[i] = in
		st.ixs[i] = in.IDs()
	}
	for i, c := range ip.consts {
		st.cids[i] = dict.Intern(c)
	}
	for i := range st.slots {
		st.slots[i] = -1
	}
	st.vals = dict.Snapshot()
	return st, true
}

// ideltaSetup extends isetup with the delta database's instances.
func (t *Tableau) ideltaSetup(d, delta *relation.Database, gs *gateState, es *evalStats) (*ijoin, bool) {
	st, ok := t.isetup(d, gs, es)
	if !ok {
		return nil, false
	}
	dict := relation.Shared()
	for i, a := range t.Templates {
		in := delta.Instance(a.Rel)
		if in == nil {
			continue
		}
		if in.InternDict() != dict || in.Schema.Arity() != len(a.Args) {
			return nil, false
		}
		st.dins[i] = in
		st.dixs[i] = in.IDs()
	}
	return st, true
}

// resolve returns the id of a term under the current binding; bound is
// false for an unbound variable slot.
func (st *ijoin) resolve(tm iterm) (int32, bool) {
	if tm < 0 {
		return st.cids[-tm-1], true
	}
	id := st.slots[tm]
	return id, id >= 0
}

// unwind resets the slots bound since mark.
func (st *ijoin) unwind(mark int) {
	for i := len(st.trail) - 1; i >= mark; i-- {
		st.slots[st.trail[i]] = -1
	}
	st.trail = st.trail[:mark]
}

// iframe carries the recursion continuation through enum/tryRank
// without per-depth closures: plain join (delta=false) resumes run,
// delta join resumes runDelta.
type iframe struct {
	delta   bool
	order   []int
	k       int
	deltaAt int
}

func (st *ijoin) next(f iframe) bool {
	if f.delta {
		return st.runDelta(f.order, f.k+1, f.deltaAt)
	}
	return st.run(f.order, f.k+1)
}

// run recursively matches template order[k], mirroring Tableau.join.
func (st *ijoin) run(order []int, k int) bool {
	if k == len(order) {
		return st.leaf()
	}
	ti := order[k]
	if st.ins[ti] == nil {
		return true
	}
	return st.enum(st.ixs[ti], st.ip.tmpls[ti], iframe{order: order, k: k})
}

// runDelta mirrors Tableau.joinDelta: template idx[k] reads only delta
// when it is the deltaAt position, otherwise d then delta.
func (st *ijoin) runDelta(idx []int, k, deltaAt int) bool {
	if k == len(idx) {
		return st.leaf()
	}
	ti := idx[k]
	args := st.ip.tmpls[ti]
	f := iframe{delta: true, order: idx, k: k, deltaAt: deltaAt}
	if ti == deltaAt {
		if st.dins[ti] == nil {
			return true
		}
		return st.enum(st.dixs[ti], args, f)
	}
	if st.ins[ti] != nil && !st.enum(st.ixs[ti], args, f) {
		return false
	}
	if st.dins[ti] != nil && !st.enum(st.dixs[ti], args, f) {
		return false
	}
	return true
}

// runDeltaAll drives one delta pass per template position, with a
// fresh binding each time — the interned counterpart of the
// EvalFuncDeltaGate loop body.
func (st *ijoin) runDeltaAll(n int) {
	var ib [8]int
	idx := ib[:min(n, len(ib))]
	if n > len(ib) {
		idx = make([]int, n)
	}
	for j := 0; j < n; j++ {
		idx[0] = j
		p := 1
		for i := 0; i < n; i++ {
			if i != j {
				idx[p] = i
				p++
			}
		}
		for s := range st.slots {
			st.slots[s] = -1
		}
		st.trail = st.trail[:0]
		if !st.runDelta(idx, 0, j) {
			return
		}
	}
}

// enum enumerates the candidate rows of one template against one
// instance: the most selective posting container when an argument is
// bound and indexing is enabled (the same probe-column rule as
// bestBoundArg, so candidate sets and counts match the legacy engine
// exactly), otherwise the full rank scan.
func (st *ijoin) enum(ix relation.IDIndex, args []iterm, f iframe) bool {
	probeCol, bestDc := -1, -1
	var probeID int32
	if IndexJoinEnabled() {
		for i, a := range args {
			id, bound := st.resolve(a)
			if !bound {
				continue
			}
			if dc := ix.Distinct(i); dc > bestDc {
				probeCol, probeID, bestDc = i, id, dc
			}
		}
	}
	if probeCol >= 0 {
		st.es.probes++
		if ix.Small() {
			// Tiny instance (a per-valuation Δ): filter the rank scan
			// instead of building posting containers. Skipped rows are
			// not charged, exactly as rows outside a posting bucket
			// never were.
			col := ix.Col(probeCol)
			for r := range col {
				if col[r] != probeID {
					continue
				}
				if !st.tryRank(ix, args, int32(r), f) {
					return false
				}
			}
			return true
		}
		p := ix.Postings(probeCol, probeID)
		if p.Bits != nil {
			for w, word := range p.Bits.Words() {
				for word != 0 {
					r := int32(w<<6 + bits.TrailingZeros64(word))
					word &= word - 1
					if !st.tryRank(ix, args, r, f) {
						return false
					}
				}
			}
			return true
		}
		for _, r := range p.Ranks {
			if !st.tryRank(ix, args, r, f) {
				return false
			}
		}
		return true
	}
	st.es.scans++
	n := int32(ix.Rows())
	for r := int32(0); r < n; r++ {
		if !st.tryRank(ix, args, r, f) {
			return false
		}
	}
	return true
}

// tryRank charges one candidate row, matches the template args against
// it by integer compare, checks the inequalities that just became
// decidable, and recurses. Returning false stops the whole enumeration
// (gate trip or fn stop); a mere match failure returns true.
func (st *ijoin) tryRank(ix relation.IDIndex, args []iterm, rank int32, f iframe) bool {
	st.es.rows++
	if !st.gs.step() {
		return false
	}
	mark := len(st.trail)
	for i, a := range args {
		cid := ix.Col(i)[rank]
		if a < 0 {
			if st.cids[-a-1] != cid {
				st.unwind(mark)
				return true
			}
		} else if s := st.slots[a]; s >= 0 {
			if s != cid {
				st.unwind(mark)
				return true
			}
		} else {
			st.slots[a] = cid
			st.trail = append(st.trail, int32(a))
		}
	}
	for _, dq := range st.ip.diseqs {
		l, lb := st.resolve(dq[0])
		r, rb := st.resolve(dq[1])
		if lb && rb && l == r {
			st.unwind(mark)
			return true
		}
	}
	cont := st.next(f)
	st.unwind(mark)
	return cont
}

// evalGateInterned is the fast path of EvalGate: answers dedup on
// fixed-width id-keys (no per-leaf Binding, HeadTuple or string Key)
// and materialize to sorted tuples once at the end. handled=false
// falls back to the legacy engine.
func (t *Tableau) evalGateInterned(d *relation.Database, g *query.Gate) (out []relation.Tuple, handled bool, err error) {
	gs := gate(g)
	var es evalStats
	st, ok := t.isetup(d, gs, &es)
	if !ok {
		return nil, false, nil
	}
	seen := make(map[string]bool)
	var answers [][]int32
	hbuf := make([]int32, len(t.Head))
	var kbuf []byte
	st.leaf = func() bool {
		for i, h := range st.ip.head {
			hbuf[i], _ = st.resolve(h)
		}
		kbuf = relation.AppendIDKey(kbuf[:0], hbuf)
		if !seen[string(kbuf)] {
			seen[string(kbuf)] = true
			answers = append(answers, append([]int32(nil), hbuf...))
		}
		return true
	}
	st.run(t.planOrder(d), 0)
	es.flush()
	if err := gs.finish(); err != nil {
		return nil, true, err
	}
	out = make([]relation.Tuple, len(answers))
	for i, ids := range answers {
		tp := make(relation.Tuple, len(ids))
		for j, id := range ids {
			tp[j] = st.vals[id]
		}
		out[i] = tp
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, true, nil
}

// bindingLeaf adapts a Binding-consuming fn to the slot engine: one
// reused map is refreshed from the slots at each leaf. All slots are
// bound there (the plan requires template coverage), so the contents
// match the legacy engine's binding exactly.
func (st *ijoin) bindingLeaf(vars []string, fn func(query.Binding) bool) func() bool {
	b := make(query.Binding, len(vars))
	return func() bool {
		for s, name := range vars {
			b[name] = st.vals[st.slots[s]]
		}
		return fn(b)
	}
}

// evalFuncInterned is the fast path of EvalFuncGate.
func (t *Tableau) evalFuncInterned(d *relation.Database, g *query.Gate, fn func(query.Binding) bool) (handled bool, err error) {
	gs := gate(g)
	var es evalStats
	st, ok := t.isetup(d, gs, &es)
	if !ok {
		return false, nil
	}
	st.leaf = st.bindingLeaf(t.Vars, fn)
	st.run(t.planOrder(d), 0)
	es.flush()
	return true, gs.finish()
}

// evalFuncDeltaInterned is the fast path of EvalFuncDeltaGate.
func (t *Tableau) evalFuncDeltaInterned(d, delta *relation.Database, g *query.Gate, fn func(query.Binding) bool) (handled bool, err error) {
	gs := gate(g)
	var es evalStats
	st, ok := t.ideltaSetup(d, delta, gs, &es)
	if !ok {
		return false, nil
	}
	st.leaf = st.bindingLeaf(t.Vars, fn)
	st.runDeltaAll(len(t.Templates))
	es.flush()
	return true, gs.finish()
}

// EvalFuncDeltaIDsGate is EvalFuncDeltaGate specialized to interned
// callers: fn receives the head tuple as dictionary ids (the slice is
// reused between calls) instead of a materialized Binding, which is
// what lets cc's incremental constraint check compare heads against its
// id-keyed p(Dm) memo without any per-leaf string work. handled=false
// means some involved instance uses legacy storage and the caller must
// fall back to EvalFuncDeltaGate.
func (t *Tableau) EvalFuncDeltaIDsGate(d, delta *relation.Database, g *query.Gate, fn func(head []int32) bool) (handled bool, err error) {
	if len(t.Templates) == 0 {
		return true, nil // no templates: answers cannot change
	}
	gs := gate(g)
	var es evalStats
	st, ok := t.ideltaSetup(d, delta, gs, &es)
	if !ok {
		return false, nil
	}
	hbuf := make([]int32, len(t.Head))
	st.leaf = func() bool {
		for i, h := range st.ip.head {
			hbuf[i], _ = st.resolve(h)
		}
		return fn(hbuf)
	}
	st.runDeltaAll(len(t.Templates))
	es.flush()
	return true, gs.finish()
}
