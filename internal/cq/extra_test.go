package cq

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func TestContainment(t *testing.T) {
	ss := testSchemas()
	// q1(x) :- R(x,y), S(y,z)  ⊆  q2(x) :- R(x,y)
	q1 := New("q1", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y")), atom("S", v("y"), v("z"))})
	q2 := New("q2", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))})
	ok, err := Contained(q1, q2, ss)
	if err != nil || !ok {
		t.Fatalf("q1 ⊆ q2 should hold: %v %v", ok, err)
	}
	ok, err = Contained(q2, q1, ss)
	if err != nil || ok {
		t.Fatalf("q2 ⊆ q1 should fail: %v %v", ok, err)
	}
	// Equivalence under variable renaming.
	q3 := New("q3", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b"))})
	eq, err := Equivalent(q2, q3, ss)
	if err != nil || !eq {
		t.Fatalf("renamed queries must be equivalent: %v %v", eq, err)
	}
	// Constant selection strictly contained in unrestricted.
	q4 := New("q4", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), c("k"))})
	if ok, _ := Contained(q4, q2, ss); !ok {
		t.Fatal("selection ⊆ projection should hold")
	}
	if ok, _ := Contained(q2, q4, ss); ok {
		t.Fatal("projection ⊆ selection should fail")
	}
	// Unsatisfiable query contained in everything.
	q5 := New("q5", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))},
		query.Eq(v("x"), c("1")), query.Eq(v("x"), c("2")))
	if ok, _ := Contained(q5, q2, ss); !ok {
		t.Fatal("unsatisfiable query must be contained")
	}
	// Arity mismatch errors.
	q6 := New("q6", []query.Term{v("x"), v("y")},
		[]query.RelAtom{atom("R", v("x"), v("y"))})
	if _, err := Contained(q2, q6, ss); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
}

// TestContainmentSemanticsRandom spot-checks the homomorphism test
// against direct evaluation: when Contained says q1 ⊆ q2, every random
// database must satisfy q1(D) ⊆ q2(D).
func TestContainmentSemanticsRandom(t *testing.T) {
	ss := testSchemas()
	pool := []*CQ{
		New("a", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))}),
		New("b", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("x"))}),
		New("c", []query.Term{v("x")},
			[]query.RelAtom{atom("R", v("x"), v("y")), atom("S", v("y"), v("z"))}),
		New("d", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), c("u"))}),
	}
	rng := rand.New(rand.NewSource(21))
	vals := []string{"u", "w"}
	for trial := 0; trial < 60; trial++ {
		q1 := pool[rng.Intn(len(pool))]
		q2 := pool[rng.Intn(len(pool))]
		contained, err := Contained(q1, q2, ss)
		if err != nil {
			t.Fatal(err)
		}
		if !contained {
			continue
		}
		d := relation.NewDatabase(ss["R"], ss["S"])
		for i, n := 0, rng.Intn(5); i < n; i++ {
			d.MustAdd("R", vals[rng.Intn(2)], vals[rng.Intn(2)])
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			d.MustAdd("S", vals[rng.Intn(2)], vals[rng.Intn(2)])
		}
		a1 := q1.Eval(d)
		set2 := map[string]bool{}
		for _, tu := range q2.Eval(d) {
			set2[tu.Key()] = true
		}
		for _, tu := range a1 {
			if !set2[tu.Key()] {
				t.Fatalf("containment %s ⊆ %s violated on\n%v", q1.Name, q2.Name, d)
			}
		}
	}
}

func TestUCQEvalAndValidate(t *testing.T) {
	ss := testSchemas()
	u := Union("U",
		New("u1", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))}),
		New("u2", []query.Term{v("x")}, []query.RelAtom{atom("S", v("y"), v("x"))}),
	)
	if err := u.Validate(ss); err != nil {
		t.Fatal(err)
	}
	d := testDB(t)
	got := u.Eval(d)
	if len(got) != 4 { // {1,2} from R, {u,v} from S
		t.Fatalf("union answers: %v", got)
	}
	// Arity mismatch across disjuncts.
	bad := Union("B",
		New("b1", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))}),
		New("b2", []query.Term{v("x"), v("y")}, []query.RelAtom{atom("R", v("x"), v("y"))}),
	)
	if bad.Validate(ss) == nil {
		t.Fatal("arity mismatch accepted")
	}
	if Union("E").Validate(ss) == nil {
		t.Fatal("empty union accepted")
	}
	// Clone independence.
	cp := u.Clone()
	cp.Disjuncts[0].Head[0] = c("z")
	if !u.Disjuncts[0].Head[0].IsVar {
		t.Fatal("Clone not deep")
	}
}

func TestUCQTableauxSkipsUnsat(t *testing.T) {
	u := Union("U",
		New("u1", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))}),
		New("u2", []query.Term{v("x")},
			[]query.RelAtom{atom("R", v("x"), v("y"))},
			query.Eq(v("x"), c("1")), query.Eq(v("x"), c("2"))),
	)
	if got := len(u.Tableaux()); got != 1 {
		t.Fatalf("Tableaux = %d, want 1 (unsat disjunct dropped)", got)
	}
}

func TestEFOToUCQ(t *testing.T) {
	// (R(x,y) ∧ (y='a' ∨ y='b')) expands into two disjuncts.
	body := And(
		FAtom("R", v("x"), v("y")),
		Or(FEq(v("y"), c("a")), FEq(v("y"), c("b"))),
	)
	q := NewEFO("Q", []query.Term{v("x")}, body)
	u := q.ToUCQ()
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(u.Disjuncts))
	}
	ss := testSchemas()
	d := relation.NewDatabase(ss["R"])
	d.MustAdd("R", "1", "a")
	d.MustAdd("R", "2", "b")
	d.MustAdd("R", "3", "z")
	got := q.Eval(d)
	if len(got) != 2 {
		t.Fatalf("Eval = %v", got)
	}
	if !q.EvalBool(d) {
		t.Fatal("EvalBool wrong")
	}
}

func TestEFOAlphaRenaming(t *testing.T) {
	// Reusing the bound name y in both branches must not capture.
	body := Or(
		Exists([]string{"y"}, And(FAtom("R", v("x"), v("y")), FEq(v("y"), c("a")))),
		Exists([]string{"y"}, And(FAtom("S", v("y"), v("x")), FNeq(v("y"), c("u")))),
	)
	q := NewEFO("Q", []query.Term{v("x")}, body)
	u := q.ToUCQ()
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(u.Disjuncts))
	}
	// The renamed bound variables must be distinct from the free x.
	for _, dq := range u.Disjuncts {
		for _, a := range dq.Atoms {
			for _, arg := range a.Args {
				if arg.IsVar && arg.Name == "y" {
					t.Fatal("bound variable not renamed")
				}
			}
		}
	}
	ss := testSchemas()
	d := relation.NewDatabase(ss["R"], ss["S"])
	d.MustAdd("R", "1", "a")
	d.MustAdd("S", "w", "2")
	got := q.Eval(d)
	if len(got) != 2 {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEFODistribution(t *testing.T) {
	// (p ∨ q) ∧ (r ∨ s) → 4 disjuncts.
	body := And(
		Or(FAtom("R", v("x"), c("1")), FAtom("R", v("x"), c("2"))),
		Or(FAtom("S", c("1"), v("x")), FAtom("S", c("2"), v("x"))),
	)
	u := NewEFO("Q", []query.Term{v("x")}, body).ToUCQ()
	if len(u.Disjuncts) != 4 {
		t.Fatalf("disjuncts = %d, want 4", len(u.Disjuncts))
	}
}

func TestSingleRelationLemma32(t *testing.T) {
	ss := testSchemas()
	sr := NewSingleRelation(ss)
	d := testDB(t)
	encD := sr.EncodeDatabase(d)

	queries := []*CQ{
		New("q1", []query.Term{v("a"), v("c")},
			[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))}),
		New("q2", []query.Term{v("p")}, []query.RelAtom{atom("F", v("p"))}),
		New("q3", []query.Term{v("a")},
			[]query.RelAtom{atom("R", v("a"), v("b"))},
			query.Neq(v("a"), c("1"))),
	}
	for _, q := range queries {
		encQ, err := sr.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Eval(d)
		got := encQ.Eval(encD)
		if len(want) != len(got) {
			t.Fatalf("%s: Q(D)=%v but fQ(Q)(fD(D))=%v", q.Name, want, got)
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("%s: mismatch %v vs %v", q.Name, want, got)
			}
		}
	}
	// Unknown relation errors.
	if _, err := sr.EncodeQuery(New("q", nil, []query.RelAtom{atom("Z", v("x"))})); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestFreezeAvoidsConstants(t *testing.T) {
	ss := testSchemas()
	q := New("q", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))})
	tb, err := BuildTableau(q)
	if err != nil {
		t.Fatal(err)
	}
	avoid := map[relation.Value]bool{"_frz1": true}
	db, head, err := tb.Freeze(ss, avoid)
	if err != nil {
		t.Fatal(err)
	}
	if db.Contains("R", relation.T("_frz1", "_frz2")) {
		t.Fatal("avoided constant used")
	}
	if head == nil || len(head) != 1 {
		t.Fatalf("head = %v", head)
	}
}
