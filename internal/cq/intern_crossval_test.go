package cq

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// Cross-validation of the interned columnar join engine against the
// legacy string-map representation: answer sequences (order included —
// ascending dictionary rank must coincide with Tuple.Less order), the
// binding sequences of differential evaluation, and the gate's work
// counters must be bit-identical across the two storage modes, with
// the indexed engine both on and off.

// restoreStorageToggles re-enables interning and the indexed engine
// after a test.
func restoreStorageToggles(t *testing.T) {
	prevIntern := relation.SetInterning(true)
	prevIndex := SetIndexJoin(true)
	t.Cleanup(func() {
		relation.SetInterning(prevIntern)
		SetIndexJoin(prevIndex)
	})
}

// rebuildUnderCurrentMode reconstructs a database in fresh storage
// under the current SetInterning mode (representation is fixed at
// construction time).
func rebuildUnderCurrentMode(t *testing.T, db *relation.Database) *relation.Database {
	t.Helper()
	names := db.Relations()
	ss := make([]*relation.Schema, 0, len(names))
	for _, name := range names {
		ss = append(ss, db.Schema(name))
	}
	nd := relation.NewDatabase(ss...)
	for _, name := range names {
		for _, tup := range db.Instance(name).Tuples() {
			if err := nd.Add(name, tup); err != nil {
				t.Fatalf("rebuild %s: %v", name, err)
			}
		}
	}
	return nd
}

// bindingKey serializes a full binding over the tableau's variables.
func bindingKey(tb *Tableau, b query.Binding) string {
	var sb strings.Builder
	for _, name := range tb.Vars {
		v, ok := b[name]
		if !ok {
			sb.WriteString("|?")
			continue
		}
		sb.WriteString("|")
		sb.WriteString(string(v))
	}
	return sb.String()
}

func TestEvalInternedMatchesLegacy(t *testing.T) {
	restoreStorageToggles(t)
	ctx := context.Background()
	for _, indexed := range []bool{true, false} {
		SetIndexJoin(indexed)
		rng := rand.New(rand.NewSource(97))
		for trial := 0; trial < 250; trial++ {
			relation.SetInterning(true)
			q, d, delta := randomDeltaCase(rng)
			tb, err := BuildTableau(q)
			if err != nil {
				continue
			}

			run := func() ([]relation.Tuple, []string, int64, int64, int64, int64) {
				g := query.NewGate(ctx, 1<<40, 1<<40)
				ans, err := q.EvalGate(d, g)
				if err != nil {
					t.Fatalf("indexed=%v trial %d: EvalGate: %v", indexed, trial, err)
				}
				evalRows, evalTuples := g.Rows(), g.Tuples()
				dg := query.NewGate(ctx, 1<<40, 1<<40)
				var seq []string
				if err := tb.EvalFuncDeltaGate(d, delta, dg, func(b query.Binding) bool {
					seq = append(seq, bindingKey(tb, b))
					return true
				}); err != nil {
					t.Fatalf("indexed=%v trial %d: EvalFuncDeltaGate: %v", indexed, trial, err)
				}
				return ans, seq, evalRows, evalTuples, dg.Rows(), dg.Tuples()
			}

			ians, iseq, irows, ituples, idrows, idtuples := run()
			relation.SetInterning(false)
			d, delta = rebuildUnderCurrentMode(t, d), rebuildUnderCurrentMode(t, delta)
			lans, lseq, lrows, ltuples, ldrows, ldtuples := run()

			if len(ians) != len(lans) {
				t.Fatalf("indexed=%v trial %d (%s): answer counts diverge: interned %d legacy %d\nD:\n%v",
					indexed, trial, q, len(ians), len(lans), d)
			}
			for i := range ians {
				if !ians[i].Equal(lans[i]) {
					t.Fatalf("indexed=%v trial %d (%s): answer %d diverges: interned %v legacy %v",
						indexed, trial, q, i, ians[i], lans[i])
				}
			}
			if irows != lrows || ituples != ltuples {
				t.Fatalf("indexed=%v trial %d (%s): eval gate counters diverge: interned rows=%d tuples=%d legacy rows=%d tuples=%d",
					indexed, trial, q, irows, ituples, lrows, ltuples)
			}
			if len(iseq) != len(lseq) {
				t.Fatalf("indexed=%v trial %d (%s): delta binding counts diverge: interned %d legacy %d",
					indexed, trial, q, len(iseq), len(lseq))
			}
			for i := range iseq {
				if iseq[i] != lseq[i] {
					t.Fatalf("indexed=%v trial %d (%s): delta binding %d diverges: interned %q legacy %q",
						indexed, trial, q, i, iseq[i], lseq[i])
				}
			}
			if idrows != ldrows || idtuples != ldtuples {
				t.Fatalf("indexed=%v trial %d (%s): delta gate counters diverge: interned rows=%d tuples=%d legacy rows=%d tuples=%d",
					indexed, trial, q, idrows, idtuples, ldrows, ldtuples)
			}
		}
	}
}
