package cq

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// Freeze builds the canonical (frozen) database of the tableau: each
// variable becomes a distinct fresh constant and the templates become
// facts. It returns the database and the frozen head tuple. The fresh
// constants are chosen outside the given avoid set.
func (t *Tableau) Freeze(schemas map[string]*relation.Schema, avoid map[relation.Value]bool) (*relation.Database, relation.Tuple, error) {
	b := make(query.Binding, len(t.Vars))
	i := 0
	for _, v := range t.Vars {
		for {
			i++
			cand := relation.Value(fmt.Sprintf("_frz%d", i))
			if !avoid[cand] {
				b[v] = cand
				break
			}
		}
	}
	db, err := t.Apply(b, schemas)
	if err != nil {
		return nil, nil, err
	}
	head, _ := t.HeadTuple(b)
	return db, head, nil
}

// Contained reports whether q1 ⊆ q2 holds over all databases of the
// given schemas, by the Chandra–Merlin homomorphism test: evaluate q2 on
// the frozen canonical database of q1 and look for q1's frozen head.
//
// The test is exact for inequality-free q2. When q2 contains ≠ atoms the
// test is sound (a "true" answer is correct) but may under-approximate,
// because a homomorphism into the canonical database — where all frozen
// variables are pairwise distinct — need not exist for every containment
// witness. Callers needing exactness must pass diseq-free q2.
func Contained(q1, q2 *CQ, schemas map[string]*relation.Schema) (bool, error) {
	if q1.Arity() != q2.Arity() {
		return false, fmt.Errorf("cq: containment between arities %d and %d", q1.Arity(), q2.Arity())
	}
	t1, err := q1.Compiled()
	if err != nil {
		return true, nil // unsatisfiable q1 is contained in everything
	}
	avoid := make(map[relation.Value]bool)
	for _, c := range append(q1.Constants(), q2.Constants()...) {
		avoid[c] = true
	}
	// Freezing ignores finite domains deliberately: the canonical
	// database is a syntactic object. Build permissive clones of the
	// schemas so frozen constants are accepted.
	perm := make(map[string]*relation.Schema, len(schemas))
	for name, s := range schemas {
		attrs := make([]relation.Attribute, s.Arity())
		for i, a := range s.Attrs {
			attrs[i] = relation.Attr(a.Name)
		}
		perm[name] = relation.NewSchema(name, attrs...)
	}
	db, head, err := t1.Freeze(perm, avoid)
	if err != nil {
		return false, err
	}
	for _, ans := range q2.Eval(db) {
		if ans.Equal(head) {
			return true, nil
		}
	}
	return false, nil
}

// Specializes reports whether spec is a specialization of q: spec ⊆ q
// over all databases of the given schemas, so every answer a complete
// spec certifies is an answer of q. It is Contained(spec, q) under a
// name that states the lattice direction the approximation engine
// cares about. Exact for inequality-free q; sound otherwise (a "true"
// answer is always correct), which is the direction certification
// needs.
func Specializes(spec, q *CQ, schemas map[string]*relation.Schema) (bool, error) {
	return Contained(spec, q, schemas)
}

// Equivalent reports mutual containment of two CQs (exact for
// inequality-free queries).
func Equivalent(q1, q2 *CQ, schemas map[string]*relation.Schema) (bool, error) {
	a, err := Contained(q1, q2, schemas)
	if err != nil || !a {
		return false, err
	}
	return Contained(q2, q1, schemas)
}
