package cq

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// The serving layer (internal/server) evaluates one shared parsed query
// object from many request goroutines at once, so the lazy caches on
// query objects — the sync.Once compiled tableau on CQ/UCQ and the
// CAS-published column indexes on relations — must be safe for
// concurrent first use. These tests pin that property; run them under
// -race via make race.

// TestConcurrentEvalSharedCQ hammers one CQ from many goroutines with
// no prior warm-up, so compilation and index publication race on first
// use, and checks every goroutine sees the same answer.
func TestConcurrentEvalSharedCQ(t *testing.T) {
	q := New("Q", []query.Term{v("a"), v("c")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))})
	d := testDB(t)
	want := []relation.Tuple{relation.T("1", "u"), relation.T("2", "v")}

	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	tabs := make([]*Tableau, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for rep := 0; rep < 50; rep++ {
				got := q.Eval(d)
				if len(got) != 2 || !got[0].Equal(want[0]) || !got[1].Equal(want[1]) {
					t.Errorf("goroutine %d: Eval = %v, want %v", i, got, want)
					return
				}
			}
			tab, err := q.Compiled()
			if err != nil {
				t.Errorf("goroutine %d: Compiled: %v", i, err)
				return
			}
			tabs[i] = tab
		}(i)
	}
	close(start)
	wg.Wait()
	// The sync.Once must hand every caller the same compiled object —
	// that identity is what makes the tableau a shared cache.
	for i := 1; i < goroutines; i++ {
		if tabs[i] != tabs[0] {
			t.Fatalf("goroutine %d got a distinct compiled tableau", i)
		}
	}
}

// TestConcurrentEvalSharedUCQ does the same for a union query: the
// union tableau compiles once and serves all goroutines.
func TestConcurrentEvalSharedUCQ(t *testing.T) {
	q1 := New("Q", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b"))})
	q2 := New("Q", []query.Term{v("c")},
		[]query.RelAtom{atom("S", v("b"), v("c"))})
	u := Union("Q", q1, q2)
	d := testDB(t)
	want := map[string]bool{"1": true, "2": true, "u": true, "v": true}

	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for rep := 0; rep < 50; rep++ {
				got := u.Eval(d)
				if len(got) != len(want) {
					t.Errorf("goroutine %d: Eval returned %d tuples, want %d", i, len(got), len(want))
					return
				}
				for _, tup := range got {
					if !want[string(tup[0])] {
						t.Errorf("goroutine %d: unexpected tuple %v", i, tup)
						return
					}
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
}
