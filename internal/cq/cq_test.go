package cq

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// testSchemas builds a small two-relation schema used across the tests:
// R(a, b) and S(b, c) over infinite domains, plus F(p) over {0,1}.
func testSchemas() map[string]*relation.Schema {
	return map[string]*relation.Schema{
		"R": relation.NewSchema("R", relation.Attr("a"), relation.Attr("b")),
		"S": relation.NewSchema("S", relation.Attr("b"), relation.Attr("c")),
		"F": relation.NewSchema("F", relation.FinAttr("p", "0", "1")),
	}
}

func testDB(t *testing.T) *relation.Database {
	t.Helper()
	ss := testSchemas()
	d := relation.NewDatabase(ss["R"], ss["S"], ss["F"])
	d.MustAdd("R", "1", "x")
	d.MustAdd("R", "2", "y")
	d.MustAdd("S", "x", "u")
	d.MustAdd("S", "y", "v")
	d.MustAdd("F", "0")
	return d
}

func v(n string) query.Term                         { return query.Var(n) }
func c(s string) query.Term                         { return query.C(s) }
func atom(r string, ts ...query.Term) query.RelAtom { return query.Atom(r, ts...) }

func TestEvalJoin(t *testing.T) {
	// Q(a, c) :- R(a, b), S(b, c)
	q := New("Q", []query.Term{v("a"), v("c")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b"), v("c"))})
	got := q.Eval(testDB(t))
	want := []relation.Tuple{relation.T("1", "u"), relation.T("2", "v")}
	if len(got) != 2 || !got[0].Equal(want[0]) || !got[1].Equal(want[1]) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

func TestEvalWithConstantAndInequality(t *testing.T) {
	// Q(a) :- R(a, b), a != '1'
	q := New("Q", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b"))},
		query.Neq(v("a"), c("1")))
	got := q.Eval(testDB(t))
	if len(got) != 1 || got[0][0] != "2" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEvalEqualityFolding(t *testing.T) {
	// Q(a) :- R(a, b), S(b2, c), b = b2, c = 'u'
	q := New("Q", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b2"), v("c"))},
		query.Eq(v("b"), v("b2")), query.Eq(v("c"), c("u")))
	got := q.Eval(testDB(t))
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	ss := testSchemas()
	d := relation.NewDatabase(ss["R"])
	d.MustAdd("R", "a", "a")
	d.MustAdd("R", "a", "b")
	q := New("Q", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("x"))})
	got := q.Eval(d)
	if len(got) != 1 || got[0][0] != "a" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestEvalBooleanQuery(t *testing.T) {
	q := New("Q", nil, []query.RelAtom{atom("R", c("1"), v("b"))})
	if !q.EvalBool(testDB(t)) {
		t.Fatal("boolean query should hold")
	}
	q2 := New("Q", nil, []query.RelAtom{atom("R", c("7"), v("b"))})
	if q2.EvalBool(testDB(t)) {
		t.Fatal("boolean query should fail")
	}
}

func TestUnsatisfiableEvalEmpty(t *testing.T) {
	q := New("Q", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))},
		query.Eq(v("x"), c("1")), query.Eq(v("x"), c("2")))
	if got := q.Eval(testDB(t)); len(got) != 0 {
		t.Fatalf("unsatisfiable query returned %v", got)
	}
}

func TestValidate(t *testing.T) {
	ss := testSchemas()
	ok := New("Q", []query.Term{v("a")}, []query.RelAtom{atom("R", v("a"), v("b"))})
	if err := ok.Validate(ss); err != nil {
		t.Fatal(err)
	}
	unknown := New("Q", nil, []query.RelAtom{atom("Z", v("a"))})
	if unknown.Validate(ss) == nil {
		t.Fatal("unknown relation accepted")
	}
	badArity := New("Q", nil, []query.RelAtom{atom("R", v("a"))})
	if badArity.Validate(ss) == nil {
		t.Fatal("bad arity accepted")
	}
	unsafe := New("Q", []query.Term{v("z")}, []query.RelAtom{atom("R", v("a"), v("b"))})
	if unsafe.Validate(ss) == nil {
		t.Fatal("unsafe head variable accepted")
	}
	// z is safe through equality chain z = w, w = a.
	safeViaEq := New("Q", []query.Term{v("z")},
		[]query.RelAtom{atom("R", v("a"), v("b"))},
		query.Eq(v("w"), v("a")), query.Eq(v("z"), v("w")))
	if err := safeViaEq.Validate(ss); err != nil {
		t.Fatal(err)
	}
	// Safe via constant equality.
	safeViaConst := New("Q", nil,
		[]query.RelAtom{atom("R", v("a"), v("b"))},
		query.Neq(v("z"), v("a")), query.Eq(v("z"), c("7")))
	if err := safeViaConst.Validate(ss); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTableauUnification(t *testing.T) {
	// x = y, y = 'c' collapses both to the constant.
	q := New("Q", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))},
		query.Eq(v("x"), v("y")), query.Eq(v("y"), c("k")))
	tb, err := BuildTableau(q)
	if err != nil {
		t.Fatal(err)
	}
	a := tb.Templates[0]
	if a.Args[0].IsVar || a.Args[0].Val != "k" || a.Args[1].IsVar {
		t.Fatalf("templates not collapsed: %v", a)
	}
	if tb.Head[0].IsVar {
		t.Fatal("head not collapsed")
	}
	if len(tb.Vars) != 0 {
		t.Fatalf("vars: %v", tb.Vars)
	}
}

func TestBuildTableauConflicts(t *testing.T) {
	mk := func(conds ...query.EqAtom) *CQ {
		return New("Q", nil, []query.RelAtom{atom("R", v("x"), v("y"))}, conds...)
	}
	bad := []*CQ{
		mk(query.Eq(v("x"), c("1")), query.Eq(v("x"), c("2"))),
		mk(query.Eq(v("x"), v("y")), query.Eq(v("x"), c("1")), query.Eq(v("y"), c("2"))),
		mk(query.Neq(v("x"), v("x"))),
		mk(query.Eq(v("x"), v("y")), query.Neq(v("x"), v("y"))),
		mk(query.Eq(c("1"), c("2"))),
		mk(query.Eq(v("x"), c("1")), query.Neq(v("x"), c("1"))),
	}
	for i, q := range bad {
		if _, err := BuildTableau(q); err == nil {
			t.Errorf("case %d: expected unsatisfiable", i)
		}
	}
	// Trivially true inequality between distinct constants is dropped.
	okq := mk(query.Neq(c("1"), c("2")))
	tb, err := BuildTableau(okq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Diseqs) != 0 {
		t.Fatalf("trivial diseq kept: %v", tb.Diseqs)
	}
}

func TestSatisfiableFiniteDomains(t *testing.T) {
	ss := map[string]*relation.Schema{
		"B": relation.NewSchema("B", relation.FinAttr("p", "0", "1"), relation.FinAttr("q", "0", "1")),
	}
	// Three pairwise-distinct variables over {0,1}: unsatisfiable.
	q := New("Q", nil,
		[]query.RelAtom{atom("B", v("x"), v("y")), atom("B", v("z"), v("z"))},
		query.Neq(v("x"), v("y")), query.Neq(v("y"), v("z")), query.Neq(v("x"), v("z")))
	if Satisfiable(q, ss) {
		t.Fatal("2-coloring of a triangle reported satisfiable")
	}
	// Two distinct variables over {0,1}: satisfiable.
	q2 := New("Q", nil,
		[]query.RelAtom{atom("B", v("x"), v("y"))},
		query.Neq(v("x"), v("y")))
	if !Satisfiable(q2, ss) {
		t.Fatal("satisfiable query reported unsat")
	}
	// Finite variable with both domain values excluded.
	q3 := New("Q", nil,
		[]query.RelAtom{atom("B", v("x"), v("y"))},
		query.Neq(v("x"), c("0")), query.Neq(v("x"), c("1")))
	if Satisfiable(q3, ss) {
		t.Fatal("excluded finite domain reported satisfiable")
	}
}

func TestSatisfiableInfinite(t *testing.T) {
	ss := testSchemas()
	q := New("Q", nil,
		[]query.RelAtom{atom("R", v("x"), v("y")), atom("R", v("z"), v("w"))},
		query.Neq(v("x"), v("y")), query.Neq(v("x"), v("z")), query.Neq(v("y"), v("z")))
	if !Satisfiable(q, ss) {
		t.Fatal("infinite-domain diseqs always satisfiable")
	}
}

func TestVarDomainsIntersection(t *testing.T) {
	ss := map[string]*relation.Schema{
		"A": relation.NewSchema("A", relation.FinAttr("p", "0", "1", "2")),
		"B": relation.NewSchema("B", relation.FinAttr("p", "1", "2", "3")),
		"C": relation.NewSchema("C", relation.FinAttr("p", "8", "9")),
	}
	q := New("Q", nil, []query.RelAtom{atom("A", v("x")), atom("B", v("x"))})
	doms, ok := q.VarDomains(ss)
	if !ok {
		t.Fatal("nonempty intersection reported empty")
	}
	want := relation.FiniteDomain("1", "2")
	if !doms["x"].Equal(want) {
		t.Fatalf("domain of x: %v", doms["x"])
	}
	q2 := New("Q", nil, []query.RelAtom{atom("A", v("x")), atom("C", v("x"))})
	if _, ok := q2.VarDomains(ss); ok {
		t.Fatal("empty intersection not detected")
	}
}

func TestRename(t *testing.T) {
	q := New("Q", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))},
		query.Neq(v("x"), v("y")))
	r := q.Rename("p_")
	if r.Head[0].Name != "p_x" || r.Atoms[0].Args[1].Name != "p_y" || r.Conds[0].L.Name != "p_x" {
		t.Fatalf("Rename: %v", r)
	}
	if q.Head[0].Name != "x" {
		t.Fatal("Rename mutated original")
	}
}

func TestCloneDeep(t *testing.T) {
	q := New("Q", []query.Term{v("x")}, []query.RelAtom{atom("R", v("x"), v("y"))})
	cp := q.Clone()
	cp.Atoms[0].Args[0] = c("z")
	if !q.Atoms[0].Args[0].IsVar {
		t.Fatal("Clone not deep")
	}
}

func TestStringRendering(t *testing.T) {
	q := New("Q", []query.Term{v("x")},
		[]query.RelAtom{atom("R", v("x"), v("y"))},
		query.Neq(v("x"), c("1")))
	want := "Q(x) :- R(x, y), x != '1'"
	if q.String() != want {
		t.Fatalf("String = %q, want %q", q.String(), want)
	}
}

func TestTableauApplyAndHead(t *testing.T) {
	ss := testSchemas()
	q := New("Q", []query.Term{v("a")},
		[]query.RelAtom{atom("R", v("a"), v("b")), atom("S", v("b"), c("u"))})
	tb, err := BuildTableau(q)
	if err != nil {
		t.Fatal(err)
	}
	b := query.Binding{"a": "1", "b": "x"}
	db, err := tb.Apply(b, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Contains("R", relation.T("1", "x")) || !db.Contains("S", relation.T("x", "u")) {
		t.Fatalf("Apply: %v", db)
	}
	h, ok := tb.HeadTuple(b)
	if !ok || h[0] != "1" {
		t.Fatalf("HeadTuple: %v", h)
	}
	if _, ok := tb.HeadTuple(query.Binding{}); ok {
		t.Fatal("HeadTuple with unbound var must fail")
	}
	if _, err := tb.Apply(query.Binding{"a": "1"}, ss); err == nil {
		t.Fatal("Apply with unbound var must fail")
	}
}
