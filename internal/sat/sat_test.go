package sat

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	if NewCNF(2, Clause{1, -2}).Validate() != nil {
		t.Fatal("valid CNF rejected")
	}
	if NewCNF(2, Clause{}).Validate() == nil {
		t.Fatal("empty clause accepted")
	}
	if NewCNF(2, Clause{3}).Validate() == nil {
		t.Fatal("out-of-range literal accepted")
	}
	if NewCNF(1, Clause{0}).Validate() == nil {
		t.Fatal("zero literal accepted")
	}
}

func TestSolveSimple(t *testing.T) {
	// (x1 | x2) & (!x1 | x2) & (!x2 | x3)
	f := NewCNF(3, Clause{1, 2}, Clause{-1, 2}, Clause{-2, 3})
	a, ok := f.Solve()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if !f.Eval(a) {
		t.Fatalf("returned non-model %v", a)
	}
}

func TestSolveUnsat(t *testing.T) {
	// x1 & !x1
	f := NewCNF(1, Clause{1}, Clause{-1})
	if _, ok := f.Solve(); ok {
		t.Fatal("unsat formula reported sat")
	}
	// Pigeonhole-ish: x1|x2, !x1|!x2, x1|!x2, !x1|x2 is unsat.
	g := NewCNF(2, Clause{1, 2}, Clause{-1, -2}, Clause{1, -2}, Clause{-1, 2})
	if _, ok := g.Solve(); ok {
		t.Fatal("unsat 2-var formula reported sat")
	}
}

func TestSolveWithFixed(t *testing.T) {
	f := NewCNF(2, Clause{1, 2})
	if _, ok := f.SolveWithFixed(map[int]bool{1: false, 2: false}); ok {
		t.Fatal("fixed-false assignment cannot satisfy x1|x2")
	}
	a, ok := f.SolveWithFixed(map[int]bool{1: false})
	if !ok || !a[2] {
		t.Fatalf("expected x2=true completion, got %v %v", a, ok)
	}
}

// bruteSat is an independent reference solver.
func bruteSat(f *CNF, fixed map[int]bool) bool {
	n := f.NumVars
	a := make(Assignment, n+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > n {
			return f.Eval(a)
		}
		if val, ok := fixed[i]; ok {
			a[i] = val
			return rec(i + 1)
		}
		for _, v := range []bool{false, true} {
			a[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(1)
}

func randomCNF(rng *rand.Rand, nVars, nClauses int) *CNF {
	f := NewCNF(nVars)
	for i := 0; i < nClauses; i++ {
		cl := make(Clause, 3)
		for j := range cl {
			l := Literal(rng.Intn(nVars) + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl[j] = l
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		f := randomCNF(rng, 2+rng.Intn(6), 1+rng.Intn(12))
		_, got := f.Solve()
		want := bruteSat(f, nil)
		if got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v on %s", trial, got, want, f)
		}
	}
}

// bruteForallExists is an independent reference for ∀∃ evaluation.
func bruteForallExists(f *CNF, nX int) bool {
	fixed := make(map[int]bool)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > nX {
			return bruteSat(f, fixed)
		}
		for _, v := range []bool{false, true} {
			fixed[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		delete(fixed, i)
		return true
	}
	return rec(1)
}

func TestForallExistsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(4)
		f := randomCNF(rng, n, 2+rng.Intn(8))
		nX := 1 + rng.Intn(n-1)
		if got, want := ForallExists(f, nX), bruteForallExists(f, nX); got != want {
			t.Fatalf("trial %d: got %v want %v (nX=%d, %s)", trial, got, want, nX, f)
		}
	}
}

func TestForallExistsKnown(t *testing.T) {
	// ∀x1 ∃x2: (x1 | x2) & (!x1 | !x2) — x2 = !x1 works: true.
	f := NewCNF(2, Clause{1, 2}, Clause{-1, -2})
	if !ForallExists(f, 1) {
		t.Fatal("∀x∃y xor-ish must be true")
	}
	// ∀x1 ∃x2: x1 — false for x1=false.
	g := NewCNF(2, Clause{1})
	if ForallExists(g, 1) {
		t.Fatal("∀x∃y x must be false")
	}
}

func TestExistsForallExists(t *testing.T) {
	// ∃x1 ∀x2 ∃x3: (x1) & (x2 | x3) & (!x2 | x3): pick x1=1, x3=1. True.
	f := NewCNF(3, Clause{1}, Clause{2, 3}, Clause{-2, 3})
	if !ExistsForallExists(f, 1, 1) {
		t.Fatal("expected true")
	}
	w, ok := ExistsWitness(f, 1, 1)
	if !ok || !w[1] {
		t.Fatalf("witness: %v %v", w, ok)
	}
	// ∃x1 ∀x2 ∃x3: (x1 | x2) & (!x2): false (x2=true kills clause 2).
	g := NewCNF(3, Clause{1, 2}, Clause{-2})
	if ExistsForallExists(g, 1, 1) {
		t.Fatal("expected false")
	}
	if _, ok := ExistsWitness(g, 1, 1); ok {
		t.Fatal("witness for false sentence")
	}
}

func TestLiteralHelpers(t *testing.T) {
	if Literal(-3).Var() != 3 || Literal(3).Var() != 3 {
		t.Fatal("Var wrong")
	}
	if Literal(-3).Positive() || !Literal(3).Positive() {
		t.Fatal("Positive wrong")
	}
}

func TestString(t *testing.T) {
	f := NewCNF(2, Clause{1, -2})
	if f.String() != "(x1|!x2)" {
		t.Fatalf("String = %s", f)
	}
}
