// Package sat provides propositional machinery for the hardness
// reductions of Fan & Geerts: 3SAT instances with a DPLL solver, and
// evaluators for the quantified variants used by the lower-bound proofs
// — ∀*∃*-3SAT (Σ₂ᵖ-hardness of RCDP, Theorem 3.6) and ∃*∀*∃*-3SAT
// (Σ₃ᵖ-hardness of RCQP with fixed master data, Corollary 4.6).
package sat

import (
	"fmt"
	"strings"
)

// Literal is a propositional literal: a 1-based variable index, negated
// when negative. Variable indices are dense from 1 to NumVars.
type Literal int

// Var returns the literal's variable index.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is unnegated.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over variables 1..NumVars.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// NewCNF builds a CNF formula.
func NewCNF(numVars int, clauses ...Clause) *CNF {
	return &CNF{NumVars: numVars, Clauses: clauses}
}

// Validate checks literal ranges and clause nonemptiness.
func (f *CNF) Validate() error {
	for i, cl := range f.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range cl {
			if l == 0 || l.Var() > f.NumVars {
				return fmt.Errorf("sat: clause %d has out-of-range literal %d", i, l)
			}
		}
	}
	return nil
}

func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, cl := range f.Clauses {
		lits := make([]string, len(cl))
		for j, l := range cl {
			if l > 0 {
				lits[j] = fmt.Sprintf("x%d", l)
			} else {
				lits[j] = fmt.Sprintf("!x%d", -l)
			}
		}
		parts[i] = "(" + strings.Join(lits, "|") + ")"
	}
	return strings.Join(parts, " & ")
}

// Assignment maps variable indices (1-based) to truth values; index 0
// is unused.
type Assignment []bool

// Eval evaluates the formula under a complete assignment.
func (f *CNF) Eval(a Assignment) bool {
	for _, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			if a[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve searches for a satisfying assignment with DPLL (unit
// propagation + branching). It returns the assignment and true when the
// formula is satisfiable.
func (f *CNF) Solve() (Assignment, bool) {
	return f.SolveWithFixed(nil)
}

// SolveWithFixed is Solve with some variables pre-assigned: fixed maps
// variable index to its forced value.
func (f *CNF) SolveWithFixed(fixed map[int]bool) (Assignment, bool) {
	type tri int8
	const (
		unset tri = iota
		fTrue
		fFalse
	)
	assign := make([]tri, f.NumVars+1)
	for v, val := range fixed {
		if val {
			assign[v] = fTrue
		} else {
			assign[v] = fFalse
		}
	}
	litVal := func(l Literal) tri {
		a := assign[l.Var()]
		if a == unset {
			return unset
		}
		if (a == fTrue) == l.Positive() {
			return fTrue
		}
		return fFalse
	}
	var dpll func() bool
	dpll = func() bool {
		// Unit propagation.
		for changed := true; changed; {
			changed = false
			for _, cl := range f.Clauses {
				unassigned := Literal(0)
				nUnassigned, satisfied := 0, false
				for _, l := range cl {
					switch litVal(l) {
					case fTrue:
						satisfied = true
					case unset:
						nUnassigned++
						unassigned = l
					}
					if satisfied {
						break
					}
				}
				if satisfied {
					continue
				}
				if nUnassigned == 0 {
					return false // conflict
				}
				if nUnassigned == 1 {
					if unassigned.Positive() {
						assign[unassigned.Var()] = fTrue
					} else {
						assign[unassigned.Var()] = fFalse
					}
					changed = true
				}
			}
		}
		// Pick a branch variable.
		branch := 0
		for v := 1; v <= f.NumVars; v++ {
			if assign[v] == unset {
				branch = v
				break
			}
		}
		if branch == 0 {
			return true // all assigned, no conflict
		}
		saved := append([]tri(nil), assign...)
		assign[branch] = fTrue
		if dpll() {
			return true
		}
		copy(assign, saved)
		assign[branch] = fFalse
		if dpll() {
			return true
		}
		copy(assign, saved)
		return false
	}
	if !dpll() {
		return nil, false
	}
	out := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = assign[v] == fTrue // unset defaults to false
	}
	if !f.Eval(out) {
		// Unset variables defaulted to false may need flipping; fall
		// back to completing by brute force over unset vars (rare and
		// small). DPLL above only leaves don't-care variables unset.
		panic("sat: internal error: DPLL produced non-model")
	}
	return out, true
}

// ForallExists evaluates a ∀X ∃Y φ sentence: X are the first nX
// variables, Y the remaining ones. It reports whether for every
// assignment of X there is an assignment of Y satisfying φ.
func ForallExists(f *CNF, nX int) bool {
	fixed := make(map[int]bool, nX)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > nX {
			_, ok := f.SolveWithFixed(fixed)
			return ok
		}
		for _, val := range []bool{false, true} {
			fixed[i] = val
			if !rec(i + 1) {
				return false
			}
		}
		delete(fixed, i)
		return true
	}
	return rec(1)
}

// ExistsForallExists evaluates an ∃X ∀Y ∃Z φ sentence: X are variables
// 1..nX, Y are nX+1..nX+nY, Z the rest.
func ExistsForallExists(f *CNF, nX, nY int) bool {
	fixed := make(map[int]bool, nX+nY)
	var forall func(i int) bool
	forall = func(i int) bool {
		if i > nX+nY {
			_, ok := f.SolveWithFixed(fixed)
			return ok
		}
		for _, val := range []bool{false, true} {
			fixed[i] = val
			if !forall(i + 1) {
				return false
			}
		}
		delete(fixed, i)
		return true
	}
	var exists func(i int) bool
	exists = func(i int) bool {
		if i > nX {
			return forall(nX + 1)
		}
		for _, val := range []bool{false, true} {
			fixed[i] = val
			if exists(i + 1) {
				delete(fixed, i)
				return true
			}
		}
		delete(fixed, i)
		return false
	}
	return exists(1)
}

// ExistsWitness returns, for a true ∃X ∀Y ∃Z φ sentence, an X
// assignment witnessing it (indexed 1..nX), and ok=false when the
// sentence is false.
func ExistsWitness(f *CNF, nX, nY int) (map[int]bool, bool) {
	fixed := make(map[int]bool)
	var forall func(i int) bool
	forall = func(i int) bool {
		if i > nX+nY {
			_, ok := f.SolveWithFixed(fixed)
			return ok
		}
		for _, val := range []bool{false, true} {
			fixed[i] = val
			if !forall(i + 1) {
				return false
			}
		}
		delete(fixed, i)
		return true
	}
	var exists func(i int) (map[int]bool, bool)
	exists = func(i int) (map[int]bool, bool) {
		if i > nX {
			if forall(nX + 1) {
				out := make(map[int]bool, nX)
				for v := 1; v <= nX; v++ {
					out[v] = fixed[v]
				}
				return out, true
			}
			return nil, false
		}
		for _, val := range []bool{false, true} {
			fixed[i] = val
			if w, ok := exists(i + 1); ok {
				return w, ok
			}
		}
		delete(fixed, i)
		return nil, false
	}
	return exists(1)
}
