// Package datalog implements FP, the datalog query language of Section
// 2.1(f) of Fan & Geerts: collections of rules p(x̄) ← p₁(x̄₁), …,
// p_n(x̄_n) whose body predicates are EDB relation atoms, IDB
// predicates, or (in)equality atoms, evaluated with the inflationary
// fixpoint semantics (semi-naively).
package datalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/query"
	"repro/internal/relation"
)

// Literal is one body literal: either a relation/IDB atom or an
// (in)equality.
type Literal struct {
	Atom *query.RelAtom // nil when Cond is used
	Cond *query.EqAtom  // nil when Atom is used
}

// L wraps a relation or IDB atom as a literal.
func L(rel string, args ...query.Term) Literal {
	a := query.Atom(rel, args...)
	return Literal{Atom: &a}
}

// LEq wraps an equality literal.
func LEq(l, r query.Term) Literal {
	e := query.Eq(l, r)
	return Literal{Cond: &e}
}

// LNeq wraps an inequality literal.
func LNeq(l, r query.Term) Literal {
	e := query.Neq(l, r)
	return Literal{Cond: &e}
}

func (l Literal) String() string {
	if l.Atom != nil {
		return l.Atom.String()
	}
	return l.Cond.String()
}

// Rule is one datalog rule.
type Rule struct {
	Head query.RelAtom
	Body []Literal
}

// NewRule builds a rule.
func NewRule(head query.RelAtom, body ...Literal) Rule { return Rule{Head: head, Body: body} }

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " <- " + strings.Join(parts, ", ")
}

// Program is a datalog query: a set of rules plus a designated output
// IDB predicate.
type Program struct {
	Name   string
	Rules  []Rule
	Output string // output IDB predicate name
	// IDBArity records the arity of each IDB predicate; computed by
	// Validate and by Eval on demand.
	idbArity map[string]int
}

// NewProgram builds a program.
func NewProgram(name string, output string, rules ...Rule) *Program {
	if name == "" {
		name = "P"
	}
	return &Program{Name: name, Rules: rules, Output: output}
}

func (p *Program) String() string {
	parts := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// idbs computes the IDB predicates (all head predicates) and their
// arities.
func (p *Program) idbs() (map[string]int, error) {
	out := make(map[string]int)
	for _, r := range p.Rules {
		if ar, ok := out[r.Head.Rel]; ok {
			if ar != len(r.Head.Args) {
				return nil, fmt.Errorf("datalog %s: IDB %s used with arities %d and %d", p.Name, r.Head.Rel, ar, len(r.Head.Args))
			}
			continue
		}
		out[r.Head.Rel] = len(r.Head.Args)
	}
	return out, nil
}

// Validate checks the program against the EDB schemas: body atoms are
// either EDB relations with matching arity or IDB predicates with
// consistent arity; rules are safe (every head variable and every
// inequality variable occurs in a positive body atom); the output
// predicate is an IDB.
func (p *Program) Validate(schemas map[string]*relation.Schema) error {
	idbs, err := p.idbs()
	if err != nil {
		return err
	}
	if _, ok := idbs[p.Output]; !ok {
		return fmt.Errorf("datalog %s: output %s is not the head of any rule", p.Name, p.Output)
	}
	for _, r := range p.Rules {
		if _, isEDB := schemas[r.Head.Rel]; isEDB {
			return fmt.Errorf("datalog %s: rule head %s is an EDB relation", p.Name, r.Head.Rel)
		}
		bound := make(map[string]bool)
		for _, l := range r.Body {
			if l.Atom == nil {
				continue
			}
			if s, ok := schemas[l.Atom.Rel]; ok {
				if len(l.Atom.Args) != s.Arity() {
					return fmt.Errorf("datalog %s: atom %s has arity %d, schema wants %d", p.Name, l.Atom, len(l.Atom.Args), s.Arity())
				}
			} else if ar, ok := idbs[l.Atom.Rel]; ok {
				if len(l.Atom.Args) != ar {
					return fmt.Errorf("datalog %s: IDB atom %s has arity %d, rules want %d", p.Name, l.Atom, len(l.Atom.Args), ar)
				}
			} else {
				return fmt.Errorf("datalog %s: unknown predicate %s", p.Name, l.Atom.Rel)
			}
			for _, t := range l.Atom.Args {
				if t.IsVar {
					bound[t.Name] = true
				}
			}
		}
		// Equalities can bind: propagate like in cq.Validate.
		changed := true
		for changed {
			changed = false
			for _, l := range r.Body {
				if l.Cond == nil || l.Cond.Neg {
					continue
				}
				c := *l.Cond
				lSafe := !c.L.IsVar || bound[c.L.Name]
				rSafe := !c.R.IsVar || bound[c.R.Name]
				if lSafe && c.R.IsVar && !bound[c.R.Name] {
					bound[c.R.Name] = true
					changed = true
				}
				if rSafe && c.L.IsVar && !bound[c.L.Name] {
					bound[c.L.Name] = true
					changed = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar && !bound[t.Name] {
				return fmt.Errorf("datalog %s: unsafe head variable %s in rule %s", p.Name, t.Name, r)
			}
		}
		for _, l := range r.Body {
			if l.Cond == nil {
				continue
			}
			for _, t := range []query.Term{l.Cond.L, l.Cond.R} {
				if t.IsVar && !bound[t.Name] {
					return fmt.Errorf("datalog %s: unsafe condition variable %s in rule %s", p.Name, t.Name, r)
				}
			}
		}
	}
	return nil
}

// Eval computes the inflationary fixpoint over the database and returns
// the output predicate's tuples in deterministic order.
func (p *Program) Eval(d *relation.Database) ([]relation.Tuple, error) {
	return p.EvalGate(d, nil)
}

// EvalGate is Eval under gate governance: each candidate tuple
// enumerated by a rule body charges one row-step and the first gate
// error aborts the fixpoint. A nil gate is free.
func (p *Program) EvalGate(d *relation.Database, g *query.Gate) ([]relation.Tuple, error) {
	idb, err := p.EvalAllGate(d, g)
	if err != nil {
		return nil, err
	}
	tuples := idb[p.Output]
	out := make([]relation.Tuple, 0, len(tuples))
	for _, t := range tuples {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// EvalBool evaluates a Boolean (nullary output) program.
func (p *Program) EvalBool(d *relation.Database) (bool, error) {
	ts, err := p.Eval(d)
	return len(ts) > 0, err
}

// EvalAll computes the fixpoint and returns every IDB predicate's
// tuples, keyed by predicate, each a map from tuple key to tuple.
func (p *Program) EvalAll(d *relation.Database) (map[string]map[string]relation.Tuple, error) {
	return p.EvalAllGate(d, nil)
}

// EvalAllGate is EvalAll under gate governance (see EvalGate).
func (p *Program) EvalAllGate(d *relation.Database, g *query.Gate) (map[string]map[string]relation.Tuple, error) {
	idbAr, err := p.idbs()
	if err != nil {
		return nil, err
	}
	p.idbArity = idbAr
	idb := make(map[string]map[string]relation.Tuple, len(idbAr))
	delta := make(map[string]map[string]relation.Tuple, len(idbAr))
	for name := range idbAr {
		idb[name] = make(map[string]relation.Tuple)
		delta[name] = make(map[string]relation.Tuple)
	}

	// Naive-with-delta loop: in each round, fire every rule requiring
	// (for rules with IDB body atoms, after round one) at least one
	// delta atom; accumulate new facts until no rule produces any.
	round := 0
	for {
		round++
		next := make(map[string]map[string]relation.Tuple, len(idbAr))
		for name := range idbAr {
			next[name] = make(map[string]relation.Tuple)
		}
		produced := false
		for _, r := range p.Rules {
			if err := fireRule(r, d, idb, delta, round, next, g); err != nil {
				return nil, err
			}
		}
		for name, facts := range next {
			nd := make(map[string]relation.Tuple)
			for k, t := range facts {
				if _, ok := idb[name][k]; !ok {
					idb[name][k] = t
					nd[k] = t
					produced = true
				}
			}
			delta[name] = nd
		}
		if !produced {
			break
		}
	}
	return idb, nil
}

// fireRule enumerates all satisfying bindings of a rule body. For rounds
// after the first, rules whose bodies contain IDB atoms only fire with
// at least one atom matched against the delta (semi-naive restriction);
// rules over pure EDB bodies fire in round one only.
func fireRule(r Rule, d *relation.Database, idb, delta map[string]map[string]relation.Tuple, round int, next map[string]map[string]relation.Tuple, g *query.Gate) error {
	// Identify IDB body atoms.
	var idbPositions []int
	for i, l := range r.Body {
		if l.Atom != nil {
			if _, ok := idb[l.Atom.Rel]; ok {
				idbPositions = append(idbPositions, i)
			}
		}
	}
	if round > 1 && len(idbPositions) == 0 {
		return nil // EDB-only rules contribute nothing after round one
	}

	emit := func(b query.Binding) error {
		// Re-verify every condition: some may have been deferred while
		// their variables were unbound.
		for _, l := range r.Body {
			if l.Cond == nil {
				continue
			}
			holds, ok := l.Cond.Holds(b)
			if !ok {
				return fmt.Errorf("datalog: unsafe condition %s in rule %s", l.Cond, r)
			}
			if !holds {
				return nil
			}
		}
		tup, ok := r.Head.Ground(b)
		if !ok {
			return fmt.Errorf("datalog: unsafe rule slipped through validation: %s", r)
		}
		next[r.Head.Rel][tup.Key()] = tup
		return nil
	}

	// join enumerates bindings; deltaAt = index of the body atom that
	// must match against delta (-1: none; all IDB atoms read full idb).
	var join func(i int, b query.Binding, deltaAt int) error
	join = func(i int, b query.Binding, deltaAt int) error {
		if i == len(r.Body) {
			return emit(b)
		}
		l := r.Body[i]
		if l.Cond != nil {
			if holds, ok := l.Cond.Holds(b); ok {
				// Both sides bound: prune now.
				if holds {
					return join(i+1, b, deltaAt)
				}
				return nil
			}
			// A binding equality x = t with exactly one side unbound
			// binds the variable; everything else is deferred to emit.
			if !l.Cond.Neg {
				lv, lok := b.Resolve(l.Cond.L)
				rv, rok := b.Resolve(l.Cond.R)
				switch {
				case lok && !rok:
					b[l.Cond.R.Name] = lv
					err := join(i+1, b, deltaAt)
					delete(b, l.Cond.R.Name)
					return err
				case rok && !lok:
					b[l.Cond.L.Name] = rv
					err := join(i+1, b, deltaAt)
					delete(b, l.Cond.L.Name)
					return err
				}
			}
			return join(i+1, b, deltaAt)
		}
		atom := *l.Atom
		var source []relation.Tuple
		if facts, isIDB := idb[atom.Rel]; isIDB {
			if i == deltaAt {
				source = tupleList(delta[atom.Rel])
			} else {
				source = tupleList(facts)
			}
		} else {
			in := d.Instance(atom.Rel)
			if in == nil {
				return nil
			}
			source = in.Tuples()
		}
		for _, tup := range source {
			if err := g.Step(); err != nil {
				return err
			}
			newly := b.Match(atom, tup)
			if newly == nil {
				continue
			}
			err := join(i+1, b, deltaAt)
			for _, v := range newly {
				delete(b, v)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	if round == 1 || len(idbPositions) == 0 {
		return join(0, make(query.Binding), -1)
	}
	// Semi-naive: union over choices of which IDB atom reads the delta.
	for _, pos := range idbPositions {
		if len(delta[r.Body[pos].Atom.Rel]) == 0 {
			continue
		}
		if err := join(0, make(query.Binding), pos); err != nil {
			return err
		}
	}
	return nil
}

func tupleList(m map[string]relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TransitiveClosure returns the canonical FP program computing the
// transitive closure of a binary EDB relation into IDB predicate out —
// the standard example (query Q₃ of Example 1.1).
func TransitiveClosure(edb, out string) *Program {
	x, y, z := query.Var("x"), query.Var("y"), query.Var("z")
	return NewProgram("tc", out,
		NewRule(query.Atom(out, x, y), L(edb, x, y)),
		NewRule(query.Atom(out, x, y), L(edb, x, z), L(out, z, y)),
	)
}

// OutputArity returns the arity of the output predicate (0 when the
// program has no rule for it, which Validate rejects).
func (p *Program) OutputArity() int {
	idbs, err := p.idbs()
	if err != nil {
		return 0
	}
	return idbs[p.Output]
}

// Constants returns all constants occurring in the program's rules.
func (p *Program) Constants() []relation.Value {
	var out []relation.Value
	for _, r := range p.Rules {
		out = r.Head.Constants(out)
		for _, l := range r.Body {
			if l.Atom != nil {
				out = l.Atom.Constants(out)
			}
			if l.Cond != nil {
				if !l.Cond.L.IsVar {
					out = append(out, l.Cond.L.Val)
				}
				if !l.Cond.R.IsVar {
					out = append(out, l.Cond.R.Val)
				}
			}
		}
	}
	return out
}
