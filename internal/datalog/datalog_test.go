package datalog

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func v(n string) query.Term { return query.Var(n) }
func c(s string) query.Term { return query.C(s) }

func edgeDB(edges ...[2]string) (*relation.Database, map[string]*relation.Schema) {
	e := relation.NewSchema("E", relation.Attr("a"), relation.Attr("b"))
	d := relation.NewDatabase(e)
	for _, eg := range edges {
		d.MustAdd("E", eg[0], eg[1])
	}
	return d, map[string]*relation.Schema{"E": e}
}

func TestTransitiveClosure(t *testing.T) {
	d, ss := edgeDB([2]string{"1", "2"}, [2]string{"2", "3"}, [2]string{"3", "4"})
	p := TransitiveClosure("E", "TC")
	if err := p.Validate(ss); err != nil {
		t.Fatal(err)
	}
	got, err := p.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("TC size = %d, want 6: %v", len(got), got)
	}
	want := map[string]bool{"1,4": true, "1,3": true, "2,4": true}
	for _, tu := range got {
		delete(want, string(tu[0])+","+string(tu[1]))
	}
	if len(want) != 0 {
		t.Fatalf("missing closure tuples: %v", want)
	}
}

func TestTransitiveClosureCycle(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"}, [2]string{"2", "1"})
	got, err := TransitiveClosure("E", "TC").Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("cyclic TC size = %d, want 4: %v", len(got), got)
	}
}

func TestConditionsInRules(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "1"}, [2]string{"1", "2"})
	// NonLoop(x,y) <- E(x,y), x != y
	p := NewProgram("p", "NonLoop",
		NewRule(query.Atom("NonLoop", v("x"), v("y")), L("E", v("x"), v("y")), LNeq(v("x"), v("y"))))
	got, err := p.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "1" || got[0][1] != "2" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestBindingEquality(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"})
	// P(x,z) <- E(x,y), z = 'k' — equality binds head variable z.
	p := NewProgram("p", "P",
		NewRule(query.Atom("P", v("x"), v("z")), L("E", v("x"), v("y")), LEq(v("z"), c("k"))))
	got, err := p.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][1] != "k" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestConditionBeforeBinding(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"}, [2]string{"2", "2"})
	// Condition written before the atom that binds its variables.
	p := NewProgram("p", "P",
		NewRule(query.Atom("P", v("x")), LNeq(v("x"), v("y")), L("E", v("x"), v("y"))))
	got, err := p.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "1" {
		t.Fatalf("Eval = %v", got)
	}
}

func TestMultipleIDBsAndBooleanOutput(t *testing.T) {
	d, _ := edgeDB([2]string{"1", "2"}, [2]string{"2", "3"})
	// Reach(x,y) as TC; Goal() <- Reach('1','3').
	x, y, z := v("x"), v("y"), v("z")
	p := NewProgram("p", "Goal",
		NewRule(query.Atom("Reach", x, y), L("E", x, y)),
		NewRule(query.Atom("Reach", x, y), L("E", x, z), L("Reach", z, y)),
		NewRule(query.Atom("Goal"), L("Reach", c("1"), c("3"))),
	)
	ok, err := p.EvalBool(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("goal should be derivable")
	}
	d2, _ := edgeDB([2]string{"1", "2"})
	ok, err = p.EvalBool(d2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("goal should not be derivable")
	}
}

func TestValidate(t *testing.T) {
	_, ss := edgeDB()
	good := TransitiveClosure("E", "TC")
	if err := good.Validate(ss); err != nil {
		t.Fatal(err)
	}
	badOut := NewProgram("p", "Nope", NewRule(query.Atom("P", v("x")), L("E", v("x"), v("y"))))
	if badOut.Validate(ss) == nil {
		t.Fatal("missing output accepted")
	}
	headEDB := NewProgram("p", "E", NewRule(query.Atom("E", v("x"), v("y")), L("E", v("x"), v("y"))))
	if headEDB.Validate(ss) == nil {
		t.Fatal("EDB head accepted")
	}
	unsafe := NewProgram("p", "P", NewRule(query.Atom("P", v("z")), L("E", v("x"), v("y"))))
	if unsafe.Validate(ss) == nil {
		t.Fatal("unsafe head accepted")
	}
	unknown := NewProgram("p", "P", NewRule(query.Atom("P", v("x")), L("Z", v("x"))))
	if unknown.Validate(ss) == nil {
		t.Fatal("unknown predicate accepted")
	}
	arity := NewProgram("p", "P",
		NewRule(query.Atom("P", v("x")), L("E", v("x"), v("y"))),
		NewRule(query.Atom("P", v("x"), v("y")), L("E", v("x"), v("y"))))
	if arity.Validate(ss) == nil {
		t.Fatal("inconsistent IDB arity accepted")
	}
	idbArityUse := NewProgram("p", "P",
		NewRule(query.Atom("P", v("x")), L("E", v("x"), v("y"))),
		NewRule(query.Atom("R2", v("x")), L("P", v("x"), v("x"))))
	if idbArityUse.Validate(ss) == nil {
		t.Fatal("IDB atom arity mismatch accepted")
	}
	unsafeCond := NewProgram("p", "P",
		NewRule(query.Atom("P", v("x")), L("E", v("x"), v("y")), LNeq(v("w"), c("1"))))
	if unsafeCond.Validate(ss) == nil {
		t.Fatal("unsafe condition variable accepted")
	}
}

func TestLinearChainDepth(t *testing.T) {
	// A long chain exercises many fixpoint rounds.
	var edges [][2]string
	for i := 0; i < 50; i++ {
		edges = append(edges, [2]string{itoa(i), itoa(i + 1)})
	}
	d, _ := edgeDB(edges...)
	got, err := TransitiveClosure("E", "TC").Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	want := 51 * 50 / 2
	if len(got) != want {
		t.Fatalf("TC size = %d, want %d", len(got), want)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestStringRendering(t *testing.T) {
	p := TransitiveClosure("E", "TC")
	s := p.String()
	if s == "" || p.Rules[0].String() == "" {
		t.Fatal("empty String")
	}
}
