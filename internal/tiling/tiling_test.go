package tiling

import "testing"

// freeInstance allows everything: always solvable.
func freeInstance(tiles, n int) *Instance {
	in := New(tiles, n)
	for a := 0; a < tiles; a++ {
		for b := 0; b < tiles; b++ {
			in.AllowV(Tile(a), Tile(b))
			in.AllowH(Tile(a), Tile(b))
		}
	}
	return in
}

func TestSolveFree(t *testing.T) {
	in := freeInstance(2, 1)
	g, ok := in.Solve()
	if !ok {
		t.Fatal("free instance must be solvable")
	}
	if !in.Check(g) {
		t.Fatal("Solve returned invalid grid")
	}
	if g[0][0] != 0 {
		t.Fatal("first tile must be t0")
	}
}

func TestSolveCheckerboard(t *testing.T) {
	// Two tiles that must alternate in both directions.
	in := New(2, 1)
	in.AllowV(0, 1)
	in.AllowV(1, 0)
	in.AllowH(0, 1)
	in.AllowH(1, 0)
	g, ok := in.Solve()
	if !ok {
		t.Fatal("checkerboard must be solvable")
	}
	if !in.Check(g) {
		t.Fatal("invalid checkerboard")
	}
	if g[0][1] != 1 || g[1][0] != 1 || g[1][1] != 0 {
		t.Fatalf("unexpected grid %v", g)
	}
}

func TestSolveUnsolvable(t *testing.T) {
	// t0 has no allowed right neighbour: 2x2 cannot be tiled.
	in := New(2, 1)
	in.AllowV(0, 1)
	in.AllowV(1, 1)
	in.AllowH(1, 1)
	if in.Solvable() {
		t.Fatal("unsolvable instance reported solvable")
	}
}

func TestSolve4x4(t *testing.T) {
	in := freeInstance(3, 2)
	g, ok := in.Solve()
	if !ok || len(g) != 4 {
		t.Fatalf("4x4 free instance: %v %v", g, ok)
	}
	if !in.Check(g) {
		t.Fatal("invalid 4x4 grid")
	}
}

func TestCheckRejects(t *testing.T) {
	in := New(2, 1)
	in.AllowV(0, 0)
	in.AllowH(0, 0)
	good := Grid{{0, 0}, {0, 0}}
	if !in.Check(good) {
		t.Fatal("valid grid rejected")
	}
	badFirst := Grid{{1, 0}, {0, 0}}
	if in.Check(badFirst) {
		t.Fatal("grid with wrong first tile accepted")
	}
	badShape := Grid{{0, 0}}
	if in.Check(badShape) {
		t.Fatal("wrong-shape grid accepted")
	}
	in2 := New(2, 1)
	in2.AllowV(0, 0)
	// No H pairs: horizontal adjacency must fail.
	if in2.Check(good) {
		t.Fatal("grid violating H accepted")
	}
}

func TestValidate(t *testing.T) {
	in := New(2, 1)
	in.AllowV(0, 1)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	in.AllowH(0, 5)
	if in.Validate() == nil {
		t.Fatal("out-of-range pair accepted")
	}
	if New(0, 1).Validate() == nil {
		t.Fatal("zero tiles accepted")
	}
}

func TestHypertileRoundTrip(t *testing.T) {
	in := freeInstance(3, 2)
	g, _ := in.Solve()
	h := FromGrid(g)
	if h.Rank != 2 {
		t.Fatalf("rank = %d", h.Rank)
	}
	back := h.ToGrid()
	for i := range g {
		for j := range g[i] {
			if g[i][j] != back[i][j] {
				t.Fatalf("round trip mismatch at %d,%d", i, j)
			}
		}
	}
	if h.TopLeftTile() != g[0][0] {
		t.Fatal("TopLeftTile wrong")
	}
}
