// Package tiling implements the 2ⁿ×2ⁿ tiling problem used by the
// NEXPTIME-hardness proof of Theorem 4.5(2) in Fan & Geerts: given a
// tile set T with horizontal and vertical compatibility relations H and
// V and a distinguished first tile t₀, decide whether a 2ⁿ×2ⁿ grid can
// be tiled such that V(f(i,j), f(i+1,j)) and H(f(i,j), f(i,j+1)) hold
// everywhere and f(1,1) = t₀. The package also provides the hypertile
// machinery (rank-i hypertiles are 2ⁱ×2ⁱ squares built from four
// rank-(i−1) hypertiles) that the relational encoding of the reduction
// mirrors.
package tiling

import (
	"fmt"
)

// Tile is a tile index (0-based into the instance's tile set).
type Tile int

// Pair is an ordered tile pair for the compatibility relations.
type Pair struct{ A, B Tile }

// Instance is a tiling problem instance.
type Instance struct {
	// NumTiles is |T|; tiles are 0..NumTiles-1 and tile 0 is t₀.
	NumTiles int
	// N is the exponent: the grid is 2^N × 2^N.
	N int
	// V holds the vertical compatibility pairs: V[(a,b)] means tile b
	// may appear directly below tile a.
	V map[Pair]bool
	// H holds the horizontal compatibility pairs: H[(a,b)] means tile b
	// may appear directly to the right of tile a.
	H map[Pair]bool
}

// New builds an empty instance.
func New(numTiles, n int) *Instance {
	return &Instance{NumTiles: numTiles, N: n, V: make(map[Pair]bool), H: make(map[Pair]bool)}
}

// AllowV permits tile b directly below tile a.
func (in *Instance) AllowV(a, b Tile) { in.V[Pair{a, b}] = true }

// AllowH permits tile b directly to the right of tile a.
func (in *Instance) AllowH(a, b Tile) { in.H[Pair{a, b}] = true }

// Size returns the side length 2^N.
func (in *Instance) Size() int { return 1 << in.N }

// Validate checks basic sanity.
func (in *Instance) Validate() error {
	if in.NumTiles < 1 {
		return fmt.Errorf("tiling: need at least one tile")
	}
	if in.N < 0 || in.N > 20 {
		return fmt.Errorf("tiling: unreasonable exponent %d", in.N)
	}
	check := func(m map[Pair]bool, name string) error {
		for p := range m {
			if p.A < 0 || int(p.A) >= in.NumTiles || p.B < 0 || int(p.B) >= in.NumTiles {
				return fmt.Errorf("tiling: %s pair %v out of range", name, p)
			}
		}
		return nil
	}
	if err := check(in.V, "V"); err != nil {
		return err
	}
	return check(in.H, "H")
}

// Grid is a tiling candidate: Grid[i][j] is the tile at row i, column j
// (0-based; row 0 column 0 is position (1,1) of the paper).
type Grid [][]Tile

// Check reports whether the grid is a valid tiling of the instance.
func (in *Instance) Check(g Grid) bool {
	size := in.Size()
	if len(g) != size {
		return false
	}
	for i := 0; i < size; i++ {
		if len(g[i]) != size {
			return false
		}
	}
	if g[0][0] != 0 {
		return false // f(1,1) = t₀
	}
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i+1 < size && !in.V[Pair{g[i][j], g[i+1][j]}] {
				return false
			}
			if j+1 < size && !in.H[Pair{g[i][j], g[i][j+1]}] {
				return false
			}
		}
	}
	return true
}

// Solve searches for a tiling by backtracking in row-major order.
// It returns the grid and true when one exists. Exponential in the grid
// area; intended for the small n of the reduction validation.
func (in *Instance) Solve() (Grid, bool) {
	size := in.Size()
	g := make(Grid, size)
	for i := range g {
		g[i] = make([]Tile, size)
		for j := range g[i] {
			g[i][j] = -1
		}
	}
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == size*size {
			return true
		}
		i, j := pos/size, pos%size
		for t := 0; t < in.NumTiles; t++ {
			if pos == 0 && t != 0 {
				break // f(1,1) = t₀
			}
			tile := Tile(t)
			if i > 0 && !in.V[Pair{g[i-1][j], tile}] {
				continue
			}
			if j > 0 && !in.H[Pair{g[i][j-1], tile}] {
				continue
			}
			g[i][j] = tile
			if rec(pos + 1) {
				return true
			}
			g[i][j] = -1
		}
		return false
	}
	if rec(0) {
		return g, true
	}
	return nil, false
}

// Solvable reports whether a tiling exists.
func (in *Instance) Solvable() bool {
	_, ok := in.Solve()
	return ok
}

// Hypertile is a 2ⁱ×2ⁱ square of tiles, the inductive object of the
// Theorem 4.5(2) encoding: rank 0 is a single tile; rank i+1 is a
// quadruple of rank-i hypertiles laid out as (top-left, top-right,
// bottom-left, bottom-right).
type Hypertile struct {
	Rank int
	// Tile is set for rank 0.
	Tile Tile
	// Quarters are the four sub-hypertiles for rank > 0, in the order
	// TL, TR, BL, BR.
	Quarters [4]*Hypertile
}

// FromGrid decomposes a 2^n×2^n grid into its rank-n hypertile.
func FromGrid(g Grid) *Hypertile {
	return fromRegion(g, 0, 0, len(g))
}

func fromRegion(g Grid, top, left, size int) *Hypertile {
	if size == 1 {
		return &Hypertile{Rank: 0, Tile: g[top][left]}
	}
	h := size / 2
	rank := 0
	for s := size; s > 1; s /= 2 {
		rank++
	}
	return &Hypertile{
		Rank: rank,
		Quarters: [4]*Hypertile{
			fromRegion(g, top, left, h),
			fromRegion(g, top, left+h, h),
			fromRegion(g, top+h, left, h),
			fromRegion(g, top+h, left+h, h),
		},
	}
}

// ToGrid reassembles the hypertile into a grid.
func (h *Hypertile) ToGrid() Grid {
	size := 1 << h.Rank
	g := make(Grid, size)
	for i := range g {
		g[i] = make([]Tile, size)
	}
	h.fill(g, 0, 0)
	return g
}

func (h *Hypertile) fill(g Grid, top, left int) {
	if h.Rank == 0 {
		g[top][left] = h.Tile
		return
	}
	s := 1 << (h.Rank - 1)
	h.Quarters[0].fill(g, top, left)
	h.Quarters[1].fill(g, top, left+s)
	h.Quarters[2].fill(g, top+s, left)
	h.Quarters[3].fill(g, top+s, left+s)
}

// TopLeftTile returns the tile at the top-left corner, the Z attribute
// of the relational encoding.
func (h *Hypertile) TopLeftTile() Tile {
	for h.Rank > 0 {
		h = h.Quarters[0]
	}
	return h.Tile
}
