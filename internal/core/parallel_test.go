package core

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// The parallel engine's contract is that verdicts and witnesses are
// scheduling-independent and identical to the sequential engine's.
// These tests pin that contract: Workers=1 (strictly sequential) vs
// Workers=8 (branch fan-out — on any hardware, including a single CPU,
// the goroutines interleave and the raceCtl arbitration is exercised)
// must agree bit-for-bit on everything except the work counters.

// sameRCDP compares two RCDP results on the deterministic fields
// (everything but Valuations, which counts work, not outcome).
func sameRCDP(a, b *RCDPResult) bool {
	if a.Complete != b.Complete || a.Disjunct != b.Disjunct {
		return false
	}
	if (a.Extension == nil) != (b.Extension == nil) {
		return false
	}
	if a.Extension != nil && !a.Extension.Equal(b.Extension) {
		return false
	}
	if (a.NewTuple == nil) != (b.NewTuple == nil) {
		return false
	}
	if a.NewTuple != nil && a.NewTuple.Key() != b.NewTuple.Key() {
		return false
	}
	return true
}

// TestParallelRCDPMatchesSequential cross-validates the parallel RCDP
// engine against the sequential one on a few hundred random instances.
func TestParallelRCDPMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := microQueries()
	sets := microConstraintSets()
	seq := &Checker{Workers: 1}
	par := &Checker{Workers: 8}

	trials := 0
	for trial := 0; trial < 400 && trials < 250; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, serr := seq.RCDP(q, d, cs.dm, cs.v)
		pr, perr := par.RCDP(q, d, cs.dm, cs.v)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("trial %d (%s/%s): sequential err=%v parallel err=%v", trial, cs.name, q, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !sameRCDP(sr, pr) {
			t.Fatalf("trial %d (%s/%s): engines disagree\nD:\n%v\nsequential: %+v\nparallel:   %+v",
				trial, cs.name, q, d, sr, pr)
		}
	}
	if trials < 150 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}

// TestParallelRCDPNaiveMatchesSequential repeats the cross-validation
// with pruning disabled, exercising the naive candidate enumeration
// under the parallel recursion too.
func TestParallelRCDPNaiveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := microQueries()
	sets := microConstraintSets()
	seq := &Checker{Naive: true, Workers: 1}
	par := &Checker{Naive: true, Workers: 8}

	trials := 0
	for trial := 0; trial < 120 && trials < 60; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, serr := seq.RCDP(q, d, cs.dm, cs.v)
		pr, perr := par.RCDP(q, d, cs.dm, cs.v)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("trial %d (%s/%s): sequential err=%v parallel err=%v", trial, cs.name, q, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !sameRCDP(sr, pr) {
			t.Fatalf("trial %d (%s/%s): naive engines disagree\nD:\n%v\nsequential: %+v\nparallel:   %+v",
				trial, cs.name, q, d, sr, pr)
		}
	}
	if trials < 30 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}

// TestParallelRCQPMatchesSequential cross-validates RCQP across every
// micro query/constraint pair: the E3/E4 disjunct races, the E1 path,
// and the certificate search (fixpoint + parallel deepening) must all
// agree with the sequential engine, including the Candidates count,
// which the parallel deepening replays deterministically.
func TestParallelRCQPMatchesSequential(t *testing.T) {
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	seq := &QPChecker{Checker: Checker{Workers: 1}}
	par := &QPChecker{Checker: Checker{Workers: 8}}

	for _, cs := range microConstraintSets() {
		for _, q := range microQueries() {
			sr, serr := seq.RCQP(q, cs.dm, cs.v, schemas)
			pr, perr := par.RCQP(q, cs.dm, cs.v, schemas)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s/%s: sequential err=%v parallel err=%v", cs.name, q, serr, perr)
			}
			if serr != nil {
				continue
			}
			if sr.Status != pr.Status || sr.Method != pr.Method || sr.Detail != pr.Detail {
				t.Fatalf("%s/%s: engines disagree\nsequential: %+v\nparallel:   %+v", cs.name, q, sr, pr)
			}
			if sr.Candidates != pr.Candidates {
				t.Fatalf("%s/%s: candidate counts diverge: sequential %d parallel %d",
					cs.name, q, sr.Candidates, pr.Candidates)
			}
			if (sr.Witness == nil) != (pr.Witness == nil) ||
				(sr.Witness != nil && !sr.Witness.Equal(pr.Witness)) {
				t.Fatalf("%s/%s: witnesses diverge\nsequential: %v\nparallel:   %v",
					cs.name, q, sr.Witness, pr.Witness)
			}
		}
	}
}

// TestParallelBudgetExceeded pins the MaxValuations semantics under
// parallelism: on instances the sequential engine abandons with
// ErrBudgetExceeded (complete instances, so no witness can pre-empt the
// budget claim), the parallel engine must abandon too.
func TestParallelBudgetExceeded(t *testing.T) {
	// A tiny deterministic case first: F holds both values of its finite
	// domain, so q5 is complete and the search space (2 valuations)
	// exceeds a budget of 1.
	r, f := microSchema()
	d := relation.NewDatabase(r, f)
	d.MustAdd("F", "0")
	d.MustAdd("F", "1")
	q5 := microQueries()[4]
	for _, workers := range []int{1, 8} {
		ck := &Checker{MaxValuations: 1, Workers: workers}
		if _, err := ck.RCDP(q5, d, nil, nil); err != ErrBudgetExceeded {
			t.Fatalf("workers=%d: want ErrBudgetExceeded, got %v", workers, err)
		}
	}

	// Then randomized: find complete instances whose full search costs
	// more than the budget and check both engines give up. MaxValuations
	// caps each disjunct separately, so only single-disjunct queries let
	// the cumulative Valuations counter predict budget exhaustion.
	rng := rand.New(rand.NewSource(23))
	var queries []qlang.Query
	for _, q := range microQueries() {
		if len(q.Tableaux()) == 1 {
			queries = append(queries, q)
		}
	}
	sets := microConstraintSets()
	probe := &Checker{Workers: 1}
	checked := 0
	for trial := 0; trial < 400 && checked < 20; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		db := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(db, cs.dm); err != nil || !ok {
			continue
		}
		full, err := probe.RCDP(q, db, cs.dm, cs.v)
		if err != nil || !full.Complete || full.Valuations <= 3 {
			continue
		}
		checked++
		for _, workers := range []int{1, 8} {
			ck := &Checker{MaxValuations: 3, Workers: workers}
			if _, err := ck.RCDP(q, db, cs.dm, cs.v); err != ErrBudgetExceeded {
				t.Fatalf("trial %d (%s/%s) workers=%d: want ErrBudgetExceeded, got %v",
					trial, cs.name, q, workers, err)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("too few budget-constrained instances: %d", checked)
	}
}

// TestRCDPValuationsAccounting pins the sequential accounting contract:
// Valuations accumulates across disjuncts in order, stopping at (and
// including) the disjunct that produced the witness — later disjuncts
// are never charged.
func TestRCDPValuationsAccounting(t *testing.T) {
	r, f := microSchema()
	d := relation.NewDatabase(r, f)
	d.MustAdd("F", "0")
	d.MustAdd("F", "1")

	// Disjunct 0 ranges over F's finite domain {0, 1}, both already
	// answered, so its whole (2-valuation) space is scanned without a
	// witness; disjunct 1 then finds one. The UCQ's count must be the
	// sum of the two single-disjunct counts.
	blocked := cq.New("blocked", []query.Term{v("p")},
		[]query.RelAtom{query.Atom("F", v("p"))})
	open := cq.New("open", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("R", v("x"), v("y"))})
	u := qlang.FromUCQ(cq.Union("acct", blocked, open))

	ck := &Checker{Workers: 1}
	ur, err := ck.RCDP(u, d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Complete || ur.Disjunct != 1 {
		t.Fatalf("want witness in disjunct 1, got %+v", ur)
	}
	br, err := ck.RCDP(qlang.FromCQ(blocked), d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Complete {
		t.Fatalf("blocked disjunct should be complete, got %+v", br)
	}
	or, err := ck.RCDP(qlang.FromCQ(open), d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if or.Complete {
		t.Fatalf("open disjunct should find a witness, got %+v", or)
	}
	if want := br.Valuations + or.Valuations; ur.Valuations != want {
		t.Fatalf("Valuations not cumulative: union %d, blocked %d + open %d = %d",
			ur.Valuations, br.Valuations, or.Valuations, want)
	}
	// Determinism of the counter itself (sequential engine).
	ur2, err := ck.RCDP(u, d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ur2.Valuations != ur.Valuations {
		t.Fatalf("sequential Valuations not reproducible: %d vs %d", ur.Valuations, ur2.Valuations)
	}
}

// TestParallelBoundedRCDPMatchesSequential cross-validates the bounded
// engine's parallel subset enumeration on the deterministic fields.
func TestParallelBoundedRCDPMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := microQueries()
	sets := microConstraintSets()

	trials := 0
	for trial := 0; trial < 60 && trials < 30; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, serr := BoundedRCDP(q, d, cs.dm, cs.v, BoundedOpts{MaxAdd: 2, FreshValues: 3, Workers: 1})
		pr, perr := BoundedRCDP(q, d, cs.dm, cs.v, BoundedOpts{MaxAdd: 2, FreshValues: 3, Workers: 8})
		if (serr == nil) != (perr == nil) {
			t.Fatalf("trial %d (%s/%s): sequential err=%v parallel err=%v", trial, cs.name, q, serr, perr)
		}
		if serr != nil {
			continue
		}
		if sr.Incomplete != pr.Incomplete {
			t.Fatalf("trial %d (%s/%s): verdicts diverge: sequential %+v parallel %+v",
				trial, cs.name, q, sr, pr)
		}
		if sr.Incomplete {
			if !sr.Extension.Equal(pr.Extension) {
				t.Fatalf("trial %d (%s/%s): extensions diverge\nsequential: %v\nparallel:   %v",
					trial, cs.name, q, sr.Extension, pr.Extension)
			}
			sk := ""
			if sr.NewTuple != nil {
				sk = sr.NewTuple.Key()
			}
			pk := ""
			if pr.NewTuple != nil {
				pk = pr.NewTuple.Key()
			}
			if sk != pk {
				t.Fatalf("trial %d (%s/%s): new tuples diverge: %q vs %q", trial, cs.name, q, sk, pk)
			}
		}
	}
	if trials < 15 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}
