package core

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/mdm"
	"repro/internal/relation"
)

// The indexed join engine (cq.SetIndexJoin) must be a pure optimization:
// verdicts, witnesses and — for the sequential engines — work counters
// are bit-identical with the engine on and off. These tests pin that
// contract across RCDP, RCQP and BoundedRCDP, at Workers=1 and
// Workers=8, on randomized instances; the Makefile race target runs
// them under -race, which also exercises the concurrent lazy index
// builds on shared instances.

// restoreIndexJoin re-enables the indexed engine after a test.
func restoreIndexJoin(t *testing.T) {
	prev := cq.SetIndexJoin(true)
	t.Cleanup(func() { cq.SetIndexJoin(prev) })
}

func TestRCDPIndexedMatchesNoindex(t *testing.T) {
	restoreIndexJoin(t)
	queries := microQueries()
	sets := microConstraintSets()
	for _, workers := range []int{1, 8} {
		rng := rand.New(rand.NewSource(31))
		ck := &Checker{Workers: workers}
		trials := 0
		for trial := 0; trial < 400 && trials < 150; trial++ {
			q := queries[rng.Intn(len(queries))]
			cs := sets[rng.Intn(len(sets))]
			d := randomMicroDB(rng)
			if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
				continue
			}
			trials++
			cq.SetIndexJoin(true)
			ir, ierr := ck.RCDP(q, d, cs.dm, cs.v)
			cq.SetIndexJoin(false)
			nr, nerr := ck.RCDP(q, d, cs.dm, cs.v)
			if (ierr == nil) != (nerr == nil) {
				t.Fatalf("workers=%d trial %d (%s/%s): indexed err=%v noindex err=%v",
					workers, trial, cs.name, q, ierr, nerr)
			}
			if ierr != nil {
				continue
			}
			if !sameRCDP(ir, nr) {
				t.Fatalf("workers=%d trial %d (%s/%s): engines disagree\nD:\n%v\nindexed: %+v\nnoindex: %+v",
					workers, trial, cs.name, q, d, ir, nr)
			}
			// The valuation search enumerates the same candidates in the
			// same order whichever join engine evaluates them, so the
			// sequential work counter must match exactly.
			if workers == 1 && ir.Valuations != nr.Valuations {
				t.Fatalf("workers=1 trial %d (%s/%s): valuation counts diverge: indexed %d noindex %d",
					trial, cs.name, q, ir.Valuations, nr.Valuations)
			}
		}
		if trials < 100 {
			t.Fatalf("workers=%d: too few partially closed trials: %d", workers, trials)
		}
	}
}

func TestRCQPIndexedMatchesNoindex(t *testing.T) {
	restoreIndexJoin(t)
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	for _, workers := range []int{1, 8} {
		ck := &QPChecker{Checker: Checker{Workers: workers}}
		for _, cs := range microConstraintSets() {
			for _, q := range microQueries() {
				cq.SetIndexJoin(true)
				ir, ierr := ck.RCQP(q, cs.dm, cs.v, schemas)
				cq.SetIndexJoin(false)
				nr, nerr := ck.RCQP(q, cs.dm, cs.v, schemas)
				if (ierr == nil) != (nerr == nil) {
					t.Fatalf("workers=%d %s/%s: indexed err=%v noindex err=%v", workers, cs.name, q, ierr, nerr)
				}
				if ierr != nil {
					continue
				}
				if ir.Status != nr.Status || ir.Method != nr.Method || ir.Detail != nr.Detail ||
					ir.Candidates != nr.Candidates {
					t.Fatalf("workers=%d %s/%s: engines disagree\nindexed: %+v\nnoindex: %+v",
						workers, cs.name, q, ir, nr)
				}
				if (ir.Witness == nil) != (nr.Witness == nil) ||
					(ir.Witness != nil && !ir.Witness.Equal(nr.Witness)) {
					t.Fatalf("workers=%d %s/%s: witnesses diverge\nindexed: %v\nnoindex: %v",
						workers, cs.name, q, ir.Witness, nr.Witness)
				}
			}
		}
	}
}

func TestBoundedRCDPIndexedMatchesNoindex(t *testing.T) {
	restoreIndexJoin(t)
	queries := microQueries()
	sets := microConstraintSets()
	for _, workers := range []int{1, 8} {
		rng := rand.New(rand.NewSource(59))
		opts := BoundedOpts{MaxAdd: 2, FreshValues: 2, Workers: workers}
		trials := 0
		for trial := 0; trial < 200 && trials < 60; trial++ {
			q := queries[rng.Intn(len(queries))]
			cs := sets[rng.Intn(len(sets))]
			d := randomMicroDB(rng)
			if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
				continue
			}
			trials++
			cq.SetIndexJoin(true)
			ir, ierr := BoundedRCDP(q, d, cs.dm, cs.v, opts)
			cq.SetIndexJoin(false)
			nr, nerr := BoundedRCDP(q, d, cs.dm, cs.v, opts)
			if (ierr == nil) != (nerr == nil) {
				t.Fatalf("workers=%d trial %d (%s/%s): indexed err=%v noindex err=%v",
					workers, trial, cs.name, q, ierr, nerr)
			}
			if ierr != nil {
				continue
			}
			if ir.Incomplete != nr.Incomplete {
				t.Fatalf("workers=%d trial %d (%s/%s): verdicts diverge: indexed %v noindex %v",
					workers, trial, cs.name, q, ir.Incomplete, nr.Incomplete)
			}
			if (ir.Extension == nil) != (nr.Extension == nil) ||
				(ir.Extension != nil && !ir.Extension.Equal(nr.Extension)) {
				t.Fatalf("workers=%d trial %d (%s/%s): extensions diverge\nindexed: %v\nnoindex: %v",
					workers, trial, cs.name, q, ir.Extension, nr.Extension)
			}
			if (ir.NewTuple == nil) != (nr.NewTuple == nil) ||
				(ir.NewTuple != nil && ir.NewTuple.Key() != nr.NewTuple.Key()) {
				t.Fatalf("workers=%d trial %d (%s/%s): new tuples diverge\nindexed: %v\nnoindex: %v",
					workers, trial, cs.name, q, ir.NewTuple, nr.NewTuple)
			}
			if workers == 1 && ir.Explored != nr.Explored {
				t.Fatalf("workers=1 trial %d (%s/%s): explored counts diverge: indexed %d noindex %d",
					trial, cs.name, q, ir.Explored, nr.Explored)
			}
		}
		if trials < 30 {
			t.Fatalf("workers=%d: too few partially closed trials: %d", workers, trials)
		}
	}
}

// TestCRMIndexedMatchesNoindex runs the realistic CRM scenario (the
// benchmark workload) through RCDP with the engine on and off: a
// medium-sized deterministic instance where the indexed plan actually
// differs from the greedy one.
func TestCRMIndexedMatchesNoindex(t *testing.T) {
	restoreIndexJoin(t)
	for _, completeness := range []float64{1.0, 0.8} {
		cfg := mdm.DefaultConfig()
		cfg.DomesticCustomers = 60
		cfg.Employees = 6
		cfg.Completeness = completeness
		s := mdm.Generate(cfg)
		v := mdmSet(cfg)
		q := mdm.Q0("908")
		for _, workers := range []int{1, 8} {
			ck := &Checker{Workers: workers}
			cq.SetIndexJoin(true)
			ir, ierr := ck.RCDP(q, s.D, s.Dm, v)
			cq.SetIndexJoin(false)
			nr, nerr := ck.RCDP(q, s.D, s.Dm, v)
			if ierr != nil || nerr != nil {
				t.Fatalf("completeness=%.1f workers=%d: indexed err=%v noindex err=%v",
					completeness, workers, ierr, nerr)
			}
			if !sameRCDP(ir, nr) {
				t.Fatalf("completeness=%.1f workers=%d: engines disagree\nindexed: %+v\nnoindex: %+v",
					completeness, workers, ir, nr)
			}
		}
	}
}

// mdmSet is the Example 2.1 constraint set for a generated scenario.
func mdmSet(cfg mdm.Config) *cc.Set {
	return cc.NewSet(mdm.Phi0(), mdm.Phi1(cfg.MaxSupport))
}
