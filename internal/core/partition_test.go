package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// The partitioned fan-out's contract (see partition.go): any K-way
// split of the top-level disjunct/branch space, with the slice results
// merged in any order, reproduces the Workers=1 single-process result
// byte-for-byte — verdict, witness (Extension/NewTuple/Disjunct) and
// the enumeration-relevant stats (Valuations, JoinRows, Tuples).

// partitionKs are the split widths the property tests sweep.
var partitionKs = []int{1, 2, 3, 8}

// mergeOrders yields a few deterministic arrival orders of k slice
// results: submission order, reverse, and two seeded shuffles.
func mergeOrders(k int, rng *rand.Rand) [][]int {
	id := make([]int, k)
	rev := make([]int, k)
	for i := 0; i < k; i++ {
		id[i] = i
		rev[i] = k - 1 - i
	}
	orders := [][]int{id, rev}
	for n := 0; n < 2; n++ {
		p := rng.Perm(k)
		orders = append(orders, p)
	}
	return orders
}

func TestPartitionPlanValidate(t *testing.T) {
	bad := []PartitionPlan{{}, {Slices: 0, Slice: 0}, {Slices: 2, Slice: 2}, {Slices: 2, Slice: -1}, {Slices: -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %+v should be invalid", p)
		}
	}
	good := []PartitionPlan{{Slices: 1, Slice: 0}, {Slices: 8, Slice: 7}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %+v should be valid: %v", p, err)
		}
	}
}

// TestPartitionOwnsCovers pins the partitioning invariant MergeSlices
// relies on: every (disjunct, branch) pair is owned by exactly one
// slice of a K-way plan.
func TestPartitionOwnsCovers(t *testing.T) {
	for _, k := range partitionKs {
		for d := 0; d < 5; d++ {
			for b := 0; b < 17; b++ {
				owners := 0
				for s := 0; s < k; s++ {
					if (PartitionPlan{Slices: k, Slice: s}).Owns(d, b) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("K=%d (d=%d, b=%d): owned by %d slices", k, d, b, owners)
				}
			}
		}
	}
}

// sameMerged compares a merged partition result against the sequential
// single-process result on every byte-identity field: verdict, reason,
// witness and the enumeration-relevant stats (Elapsed is excluded — it
// is wall-clock, not enumeration state).
func sameMerged(seq, merged *RCDPResult) (string, bool) {
	switch {
	case seq.Verdict != merged.Verdict:
		return "verdict", false
	case seq.Reason != merged.Reason:
		return "reason", false
	case seq.Complete != merged.Complete:
		return "complete", false
	case !sameRCDP(seq, merged):
		return "witness", false
	case seq.Valuations != merged.Valuations:
		return "valuations", false
	case seq.Stats.Valuations != merged.Stats.Valuations:
		return "stats.valuations", false
	case seq.Stats.JoinRows != merged.Stats.JoinRows:
		return "stats.join-rows", false
	case seq.Stats.Tuples != merged.Stats.Tuples:
		return "stats.tuples", false
	}
	return "", true
}

// TestPartitionMergeMatchesSequential is the fan-out determinism
// property test: on random micro instances, for K ∈ {1,2,3,8}, the K
// slice results merged in several arrival orders must reproduce the
// Workers=1 governed run exactly. Both runs are governed (cancellable
// context) so the gate counts JoinRows/Tuples and the stats identity
// is exercised, not just the verdict.
func TestPartitionMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	queries := microQueries()
	sets := microConstraintSets()
	seq := &Checker{Workers: 1}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	trials, incomplete := 0, 0
	for trial := 0; trial < 400 && trials < 150; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, err := seq.RCDPCtx(ctx, q, d, cs.dm, cs.v)
		if err != nil {
			t.Fatalf("trial %d (%s/%s): sequential: %v", trial, cs.name, q, err)
		}
		if sr.Verdict == VerdictIncomplete {
			incomplete++
		}
		for _, k := range partitionKs {
			slices := make([]*SliceResult, k)
			for s := 0; s < k; s++ {
				slices[s], err = seq.RCDPSliceCtx(ctx, q, d, cs.dm, cs.v, PartitionPlan{Slices: k, Slice: s})
				if err != nil {
					t.Fatalf("trial %d (%s/%s) K=%d slice %d: %v", trial, cs.name, q, k, s, err)
				}
			}
			for _, order := range mergeOrders(k, rng) {
				arrived := make([]*SliceResult, 0, k)
				for _, i := range order {
					arrived = append(arrived, slices[i])
				}
				merged, err := MergeSlices(arrived)
				if err != nil {
					t.Fatalf("trial %d (%s/%s) K=%d order %v: merge: %v", trial, cs.name, q, k, order, err)
				}
				if field, ok := sameMerged(sr, merged); !ok {
					t.Fatalf("trial %d (%s/%s) K=%d order %v: %s diverges\nD:\n%v\nsequential: %+v\nmerged:     %+v",
						trial, cs.name, q, k, order, field, d, sr, merged)
				}
			}
		}
	}
	if trials < 80 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
	if incomplete < 10 {
		t.Fatalf("too few incomplete verdicts to exercise witness merging: %d", incomplete)
	}
}

// TestPartitionMergeUngoverned repeats the identity on the ungoverned
// path (nil gate: JoinRows/Tuples stay zero, Valuations still count).
func TestPartitionMergeUngoverned(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	queries := microQueries()
	sets := microConstraintSets()
	seq := &Checker{Workers: 1}

	trials := 0
	for trial := 0; trial < 200 && trials < 60; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, err := seq.RCDPCtx(context.Background(), q, d, cs.dm, cs.v)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, k := range partitionKs {
			slices := make([]*SliceResult, k)
			for s := 0; s < k; s++ {
				slices[s], err = seq.RCDPSliceCtx(context.Background(), q, d, cs.dm, cs.v, PartitionPlan{Slices: k, Slice: s})
				if err != nil {
					t.Fatalf("trial %d K=%d slice %d: %v", trial, k, s, err)
				}
			}
			merged, err := MergeSlices(slices)
			if err != nil {
				t.Fatalf("trial %d K=%d: merge: %v", trial, k, err)
			}
			if field, ok := sameMerged(sr, merged); !ok {
				t.Fatalf("trial %d (%s/%s) K=%d: %s diverges\nsequential: %+v\nmerged: %+v",
					trial, cs.name, q, k, field, sr, merged)
			}
		}
	}
	if trials < 30 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}

// TestPartitionBudgetClaim pins the budget surface of the legacy
// UNSHARED mode (Checker.SliceBudget nil). MaxValuations caps each
// slice's per-disjunct work independently, so: at K=1 a budget stop
// reproduces the sequential Unknown/valuations surface exactly, while
// at K>1 slices that each stay under their own cap may legitimately
// finish a search the single process gave up on — the merged Complete
// is sound and strictly more decisive, but diverges from the
// single-process surface (the per-slice cap caveat of partition.go).
// TestPartitionSharedBudgetClaim pins the shared-ledger mode that
// removes the divergence.
func TestPartitionBudgetClaim(t *testing.T) {
	r, f := microSchema()
	d := relation.NewDatabase(r, f)
	d.MustAdd("F", "0")
	d.MustAdd("F", "1")
	q5 := microQueries()[4] // complete on this instance; 2 valuations
	ck := &Checker{Workers: 1, Budget: Budget{MaxValuations: 1}}
	ctx := context.Background()

	sr, err := ck.RCDPCtx(ctx, q5, d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict != VerdictUnknown || sr.Reason != ReasonValuations {
		t.Fatalf("sequential: want unknown/valuations, got %v/%v", sr.Verdict, sr.Reason)
	}

	s0, err := ck.RCDPSliceCtx(ctx, q5, d, nil, nil, PartitionPlan{Slices: 1, Slice: 0})
	if err != nil {
		t.Fatal(err)
	}
	if s0.Verdict != VerdictUnknown || s0.Reason != ReasonValuations || !keyIsBudget(s0.Claim) {
		t.Fatalf("K=1 slice: want budget claim, got %+v", s0)
	}
	merged, err := MergeSlices([]*SliceResult{s0})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Verdict != VerdictUnknown || merged.Reason != ReasonValuations {
		t.Fatalf("K=1 merged: want unknown/valuations, got %v/%v", merged.Verdict, merged.Reason)
	}

	// K=2: each slice owns one of the two valuations, stays under its
	// own cap, and the cluster proves completeness the single process
	// could not.
	var slices []*SliceResult
	for s := 0; s < 2; s++ {
		r2, err := ck.RCDPSliceCtx(ctx, q5, d, nil, nil, PartitionPlan{Slices: 2, Slice: s})
		if err != nil {
			t.Fatal(err)
		}
		slices = append(slices, r2)
	}
	merged2, err := MergeSlices(slices)
	if err != nil {
		t.Fatal(err)
	}
	if merged2.Verdict != VerdictComplete {
		t.Fatalf("K=2 merged: want complete (per-slice caps), got %v/%v", merged2.Verdict, merged2.Reason)
	}
}

// TestPartitionSharedBudgetClaim pins the shared cross-slice ledger:
// with one SharedBudget threaded through every slice of a fan-out, the
// K-way run exhausts MaxValuations at the same total spend as the
// single process, so K ∈ {1, 2, 8} all reproduce the sequential
// Unknown/valuations surface byte-for-byte — including K=2, which
// under per-slice caps proves Complete instead (the divergence
// TestPartitionBudgetClaim pins). Exactly one slice crosses the cap
// and carries the budget claim; the merge works regardless of which.
func TestPartitionSharedBudgetClaim(t *testing.T) {
	r, f := microSchema()
	d := relation.NewDatabase(r, f)
	d.MustAdd("F", "0")
	d.MustAdd("F", "1")
	q5 := microQueries()[4] // complete on this instance; 2 valuations
	ctx := context.Background()

	seq := &Checker{Workers: 1, Budget: Budget{MaxValuations: 1}}
	sr, err := seq.RCDPCtx(ctx, q5, d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict != VerdictUnknown || sr.Reason != ReasonValuations {
		t.Fatalf("sequential: want unknown/valuations, got %v/%v", sr.Verdict, sr.Reason)
	}

	for _, k := range []int{1, 2, 8} {
		// One fresh single-use ledger per fan-out, shared by its slices.
		ck := &Checker{Workers: 1, Budget: Budget{MaxValuations: 1}, SliceBudget: NewSharedBudget()}
		slices := make([]*SliceResult, k)
		claims := 0
		for s := 0; s < k; s++ {
			slices[s], err = ck.RCDPSliceCtx(ctx, q5, d, nil, nil, PartitionPlan{Slices: k, Slice: s})
			if err != nil {
				t.Fatalf("K=%d slice %d: %v", k, s, err)
			}
			if c := slices[s].Claim; c != NoClaim && keyIsBudget(c) {
				claims++
			}
		}
		if claims != 1 {
			t.Fatalf("K=%d: want exactly one budget claim, got %d", k, claims)
		}
		merged, err := MergeSlices(slices)
		if err != nil {
			t.Fatalf("K=%d: merge: %v", k, err)
		}
		if field, ok := sameMerged(sr, merged); !ok {
			t.Fatalf("K=%d: %s diverges from sequential\nsequential: %+v\nmerged:     %+v", k, field, sr, merged)
		}
	}
}

// TestPartitionSharedBudgetUnlimited pins that an unlimited shared
// ledger is a no-op: random micro instances merge to the sequential
// result exactly as in the unshared sweep.
func TestPartitionSharedBudgetUnlimited(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := microQueries()
	sets := microConstraintSets()
	seq := &Checker{Workers: 1}

	trials := 0
	for trial := 0; trial < 120 && trials < 25; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		sr, err := seq.RCDPCtx(context.Background(), q, d, cs.dm, cs.v)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		for _, k := range []int{2, 8} {
			ck := &Checker{Workers: 1, SliceBudget: NewSharedBudget()}
			slices := make([]*SliceResult, k)
			for s := 0; s < k; s++ {
				slices[s], err = ck.RCDPSliceCtx(context.Background(), q, d, cs.dm, cs.v, PartitionPlan{Slices: k, Slice: s})
				if err != nil {
					t.Fatalf("trial %d K=%d slice %d: %v", trial, k, s, err)
				}
			}
			merged, err := MergeSlices(slices)
			if err != nil {
				t.Fatalf("trial %d K=%d: merge: %v", trial, k, err)
			}
			if field, ok := sameMerged(sr, merged); !ok {
				t.Fatalf("trial %d (%s/%s) K=%d: %s diverges\nsequential: %+v\nmerged: %+v",
					trial, cs.name, q, k, field, sr, merged)
			}
		}
	}
	if trials < 15 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}

// TestMergeSlicesArbitration pins the key arbitration rules on
// synthetic slice results: a budget claim in an earlier disjunct beats
// a witness in a later one (the sequential engine would have stopped
// first), the lowest witness key wins, and the merged stats are the
// setup plus exactly the branch records at keys <= the winner.
func TestMergeSlicesArbitration(t *testing.T) {
	witness := func(k, s int, claim int64, branches ...BranchStats) *SliceResult {
		return &SliceResult{
			Plan: PartitionPlan{Slices: k, Slice: s}, Claim: claim,
			Verdict:  VerdictIncomplete,
			Setup:    BudgetStats{JoinRows: 10, Tuples: 2},
			Branches: branches,
			Witness:  &RCDPResult{Verdict: VerdictIncomplete, Disjunct: keyDisjunct(claim)},
		}
	}
	complete := func(k, s int, branches ...BranchStats) *SliceResult {
		return &SliceResult{
			Plan: PartitionPlan{Slices: k, Slice: s}, Claim: NoClaim,
			Verdict: VerdictComplete, Setup: BudgetStats{JoinRows: 10, Tuples: 2}, Branches: branches,
		}
	}
	budget := func(k, s, disjunct int, branches ...BranchStats) *SliceResult {
		return &SliceResult{
			Plan: PartitionPlan{Slices: k, Slice: s}, Claim: budgetKey(disjunct),
			Verdict: VerdictUnknown, Reason: ReasonValuations,
			Setup: BudgetStats{JoinRows: 10, Tuples: 2}, Branches: branches,
		}
	}

	// Budget stop in disjunct 0 vs witness in disjunct 1: Unknown wins.
	m, err := MergeSlices([]*SliceResult{
		budget(2, 0, 0, BranchStats{Disjunct: 0, Branch: 0, Valuations: 3}),
		witness(2, 1, packKey(1, 0), BranchStats{Disjunct: 1, Branch: 0, Valuations: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Verdict != VerdictUnknown || m.Reason != ReasonValuations {
		t.Fatalf("budget before witness: want unknown/valuations, got %v/%v", m.Verdict, m.Reason)
	}

	// Two witnesses: lowest (disjunct, branch) key wins, and the stats
	// prefix excludes branch records past the winner.
	m, err = MergeSlices([]*SliceResult{
		witness(2, 0, packKey(0, 2),
			BranchStats{Disjunct: 0, Branch: 0, Valuations: 4, JoinRows: 7},
			BranchStats{Disjunct: 0, Branch: 2, Valuations: 1, JoinRows: 3}),
		witness(2, 1, packKey(0, 5),
			BranchStats{Disjunct: 0, Branch: 1, Valuations: 4, JoinRows: 7},
			BranchStats{Disjunct: 0, Branch: 5, Valuations: 2, JoinRows: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Verdict != VerdictIncomplete || m.Disjunct != 0 {
		t.Fatalf("want incomplete in disjunct 0, got %+v", m)
	}
	// Setup (10 rows) + branches 0, 1, 2 (7+7+3); branch 5 is past the
	// winner and excluded. Valuations likewise 4+4+1.
	if m.Stats.JoinRows != 27 || m.Stats.Valuations != 9 || m.Valuations != 9 {
		t.Fatalf("stats prefix wrong: %+v", m.Stats)
	}

	// All complete: totals over every branch record.
	m, err = MergeSlices([]*SliceResult{
		complete(2, 0, BranchStats{Disjunct: 0, Branch: 0, Valuations: 4, JoinRows: 7}),
		complete(2, 1, BranchStats{Disjunct: 0, Branch: 1, Valuations: 5, JoinRows: 2, Tuples: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Verdict != VerdictComplete || m.Stats.Valuations != 9 || m.Stats.JoinRows != 19 || m.Stats.Tuples != 3 {
		t.Fatalf("complete totals wrong: %+v", m)
	}
}

// TestPartitionGovernanceStop pins the governance surface: a cancelled
// context makes every slice Unknown/cancelled, and the merge carries
// the reason through.
func TestPartitionGovernanceStop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := microQueries()[0]
	d := randomMicroDB(rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ck := &Checker{Workers: 1}

	const k = 3
	slices := make([]*SliceResult, k)
	for s := 0; s < k; s++ {
		r, err := ck.RCDPSliceCtx(ctx, q, d, nil, nil, PartitionPlan{Slices: k, Slice: s})
		if err != nil {
			t.Fatalf("slice %d: %v", s, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonCancelled {
			t.Fatalf("slice %d: want unknown/cancelled, got %v/%v", s, r.Verdict, r.Reason)
		}
		slices[s] = r
	}
	merged, err := MergeSlices(slices)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Verdict != VerdictUnknown || merged.Reason != ReasonCancelled {
		t.Fatalf("merged: want unknown/cancelled, got %v/%v", merged.Verdict, merged.Reason)
	}
}

// TestMergeSlicesValidation pins the input checks: empty, nil,
// mismatched widths, duplicate and missing slice indexes are refused.
func TestMergeSlicesValidation(t *testing.T) {
	mk := func(k, s int) *SliceResult {
		return &SliceResult{Plan: PartitionPlan{Slices: k, Slice: s}, Claim: NoClaim, Verdict: VerdictComplete}
	}
	cases := [][]*SliceResult{
		{},
		{nil},
		{mk(2, 0)},           // missing slice 1
		{mk(2, 0), mk(3, 1)}, // mixed widths
		{mk(2, 0), mk(2, 0)}, // duplicate
		{mk(2, 0), {Plan: PartitionPlan{Slices: 2, Slice: 2}}}, // out of range
	}
	for i, c := range cases {
		if _, err := MergeSlices(c); err == nil {
			t.Errorf("case %d should be refused", i)
		}
	}
	if _, err := MergeSlices([]*SliceResult{mk(2, 1), mk(2, 0)}); err != nil {
		t.Errorf("order-independent merge refused: %v", err)
	}
}
