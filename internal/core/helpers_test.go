package core

import (
	"repro/internal/datalog"
	"repro/internal/query"
)

// datalogTC builds a small FP program for the language guard tests.
func datalogTC() *datalog.Program {
	x, y, z := query.Var("x"), query.Var("y"), query.Var("z")
	return datalog.NewProgram("tc", "TC",
		datalog.NewRule(query.Atom("TC", x, y), datalog.L("Supt", x, y, z)),
	)
}
