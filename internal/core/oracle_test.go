package core

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// These tests cross-validate the exact deciders against the brute-force
// bounded search of bounded.go. For monotone languages Proposition 3.3
// bounds counterexamples by |T_Q| tuples over Adom, so a bounded search
// with MaxAdd ≥ |T_Q| and a fresh pool covering the tableau variables
// is an exact oracle — an independent implementation of the semantics
// ("enumerate extensions, re-evaluate") against which the valuation-
// based decider is checked on enumerated random instances.

// microSchema: R(a, b) with infinite domains and F(p) over {0,1}.
func microSchema() (*relation.Schema, *relation.Schema) {
	return relation.NewSchema("R", relation.Attr("a"), relation.Attr("b")),
		relation.NewSchema("F", relation.FinAttr("p", "0", "1"))
}

// randomMicroDB draws a database over values {a, b} ∪ {0,1}.
func randomMicroDB(rng *rand.Rand) *relation.Database {
	r, f := microSchema()
	d := relation.NewDatabase(r, f)
	vals := []string{"a", "b"}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		d.MustAdd("R", vals[rng.Intn(2)], vals[rng.Intn(2)])
	}
	if rng.Intn(2) == 0 {
		d.MustAdd("F", []string{"0", "1"}[rng.Intn(2)])
	}
	return d
}

// microQueries is a pool of CQ/UCQ queries over the micro schema.
func microQueries() []qlang.Query {
	r := func(a, b query.Term) query.RelAtom { return query.Atom("R", a, b) }
	return []qlang.Query{
		qlang.FromCQ(cq.New("q1", []query.Term{v("x")}, []query.RelAtom{r(v("x"), v("y"))})),
		qlang.FromCQ(cq.New("q2", []query.Term{v("x")}, []query.RelAtom{r(v("x"), v("x"))})),
		qlang.FromCQ(cq.New("q3", []query.Term{v("x"), v("z")},
			[]query.RelAtom{r(v("x"), v("y")), r(v("y"), v("z"))})),
		qlang.FromCQ(cq.New("q4", []query.Term{v("x")},
			[]query.RelAtom{r(v("x"), v("y"))}, query.Neq(v("x"), v("y")))),
		qlang.FromCQ(cq.New("q5", []query.Term{v("p")},
			[]query.RelAtom{query.Atom("F", v("p"))})),
		qlang.FromCQ(cq.New("q6", []query.Term{v("x")},
			[]query.RelAtom{r(v("x"), v("y"))}, query.Eq(v("y"), c("a")))),
		qlang.FromUCQ(cq.Union("u1",
			cq.New("u1a", []query.Term{v("x")}, []query.RelAtom{r(v("x"), v("y"))}, query.Eq(v("y"), c("a"))),
			cq.New("u1b", []query.Term{v("x")}, []query.RelAtom{r(v("y"), v("x"))}, query.Eq(v("y"), c("b"))),
		)),
	}
}

// microConstraintSets is a pool of constraint sets over the micro
// schema, paired with master data.
func microConstraintSets() []struct {
	name string
	v    *cc.Set
	dm   *relation.Database
} {
	mkDM := func(vals ...string) *relation.Database {
		m := relation.NewDatabase(relation.NewSchema("M", relation.Attr("x")))
		for _, x := range vals {
			m.MustAdd("M", x)
		}
		return m
	}
	fd := &cc.FD{Name: "fd", Rel: "R", From: []int{0}, To: []int{1}}
	selfDenial := &cc.Denial{
		Name:  "noSelf",
		Atoms: []query.RelAtom{query.Atom("R", v("x"), v("y"))},
		Conds: []query.EqAtom{query.Eq(v("x"), v("y"))},
	}
	return []struct {
		name string
		v    *cc.Set
		dm   *relation.Database
	}{
		{"empty", cc.NewSet(), mkDM()},
		{"ind-col0", cc.NewSet(cc.NewIND("i0", "R", []int{0}, 2, cc.Proj("M", 0))), mkDM("a", "b")},
		{"ind-col0-small", cc.NewSet(cc.NewIND("i0", "R", []int{0}, 2, cc.Proj("M", 0))), mkDM("a")},
		{"fd", cc.NewSet(fd.ToCCs(2)...), mkDM()},
		{"denial-self", cc.NewSet(selfDenial.ToCC()), mkDM()},
		{"atmost1", cc.NewSet(cc.AtMostK("k1", "R", 2, []int{0}, 1, 1)), mkDM()},
		{"fd+ind", func() *cc.Set {
			s := cc.NewSet(fd.ToCCs(2)...)
			s.Add(cc.NewIND("i0", "R", []int{0}, 2, cc.Proj("M", 0)))
			return s
		}(), mkDM("a", "b")},
	}
}

// TestRCDPAgainstOracle compares the exact RCDP decider with the
// bounded brute-force oracle on enumerated random instances.
func TestRCDPAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	queries := microQueries()
	sets := microConstraintSets()
	opts := BoundedOpts{MaxAdd: 2, FreshValues: 4}

	trials := 0
	for trial := 0; trial < 400; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue // not partially closed; RCDP precondition fails
		}
		trials++
		exact, err := RCDP(q, d, cs.dm, cs.v)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, cs.name, err)
		}
		oracle, err := BoundedRCDP(q, d, cs.dm, cs.v, opts)
		if err != nil {
			t.Fatalf("trial %d (%s): oracle: %v", trial, cs.name, err)
		}
		if exact.Complete != !oracle.Incomplete {
			t.Fatalf("trial %d (%s, query %s): exact complete=%v but oracle incomplete=%v\nD:\n%v\nexact ext: %v\noracle ext: %v",
				trial, cs.name, q, exact.Complete, oracle.Incomplete, d, exact.Extension, oracle.Extension)
		}
	}
	if trials < 150 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}

// TestRCQPINDsAgainstOracle cross-validates the Proposition 4.3 decider:
// when it answers yes with a witness, the witness must survive the
// bounded oracle; when it answers no, the bounded witness search must
// fail too.
func TestRCQPINDsAgainstOracle(t *testing.T) {
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	opts := BoundedOpts{MaxAdd: 2, FreshValues: 3}

	queries := microQueries()
	for _, cs := range microConstraintSets() {
		if !cs.v.AllINDs() {
			continue
		}
		for _, q := range queries {
			res, err := RCQP(q, cs.dm, cs.v, schemas)
			if err != nil {
				t.Fatalf("%s/%s: %v", cs.name, q, err)
			}
			switch res.Status {
			case Yes:
				if res.Witness != nil {
					or, err := BoundedRCDP(q, res.Witness, cs.dm, cs.v, opts)
					if err != nil {
						t.Fatalf("%s/%s: %v", cs.name, q, err)
					}
					if or.Incomplete {
						t.Fatalf("%s/%s: witness rejected by oracle; ext %v", cs.name, q, or.Extension)
					}
				}
			case No:
				br, err := BoundedRCQP(q, cs.dm, cs.v, schemas, 2, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", cs.name, q, err)
				}
				if br.Found {
					t.Fatalf("%s/%s: decider says no but oracle found witness\n%v", cs.name, q, br.Witness)
				}
			default:
				t.Fatalf("%s/%s: IND path must be exact, got unknown", cs.name, q)
			}
		}
	}
}

// TestRCQPGeneralAgainstOracle checks the certificate search against the
// bounded witness search for the non-IND constraint pools: whenever the
// bounded oracle finds a small witness, the certificate search must
// answer yes, and vice versa every yes witness must survive the oracle.
func TestRCQPGeneralAgainstOracle(t *testing.T) {
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	opts := BoundedOpts{MaxAdd: 2, FreshValues: 3}

	for _, cs := range microConstraintSets() {
		if cs.v.AllINDs() {
			continue
		}
		for _, q := range microQueries() {
			res, err := RCQP(q, cs.dm, cs.v, schemas)
			if err != nil {
				t.Fatalf("%s/%s: %v", cs.name, q, err)
			}
			if res.Status == Yes && res.Witness != nil {
				or, err := BoundedRCDP(q, res.Witness, cs.dm, cs.v, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", cs.name, q, err)
				}
				if or.Incomplete {
					t.Fatalf("%s/%s: yes-witness rejected by oracle (ext %v)", cs.name, q, or.Extension)
				}
			}
			if res.Status != Yes {
				br, err := BoundedRCQP(q, cs.dm, cs.v, schemas, 1, opts)
				if err != nil {
					t.Fatalf("%s/%s: %v", cs.name, q, err)
				}
				if br.Found {
					t.Fatalf("%s/%s: decider says %v but bounded search found 1-tuple witness\n%v",
						cs.name, q, res.Status, br.Witness)
				}
			}
		}
	}
}
