package core

import (
	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/query"
	"repro/internal/relation"
)

// indPruner prunes partial valuations template-by-template: as soon as
// a tuple template of the tableau becomes fully ground, every IND of V
// over its relation is checked on that single tuple (INDs are per-tuple
// conditions, so a violated template can never be repaired by later
// assignments). Non-IND constraints are ignored here — they are checked
// exactly on complete valuations by the caller — so pruning is always
// sound and, for all-IND V, also complete per-template.
//
// Sharing discipline: byRel (including the allowed-key sets computed
// from Dm), templates and tplOf are immutable after newINDPruner and
// are shared by clones; tplRemain is the backtracking state and is the
// only per-worker field (see clone).
type indPruner struct {
	// byRel maps a relation to its INDs' (columns, allowed tuple keys).
	byRel map[string][]indCheck
	// tplRemain[i] is the number of distinct unassigned variables left
	// in template i; tplOf maps a variable to the templates containing
	// it.
	templates []query.RelAtom
	tplRemain []int
	tplOf     map[string][]int
}

type indCheck struct {
	cols    []int
	allowed map[string]bool // nil means ⊆ ∅ (no tuple allowed)
}

// newINDPruner builds a pruner for the tableau; it returns nil when V
// contains no INDs over the tableau's relations (pruning would be a
// no-op).
func newINDPruner(t *cq.Tableau, v *cc.Set, dm *relation.Database) *indPruner {
	if v == nil {
		return nil
	}
	byRel := make(map[string][]indCheck)
	for _, c := range v.Constraints {
		shape, ok := c.IND()
		if !ok {
			continue
		}
		chk := indCheck{cols: shape.Cols}
		if !c.P.IsEmptySet() {
			chk.allowed = c.P.Eval(dm)
		}
		byRel[shape.Rel] = append(byRel[shape.Rel], chk)
	}
	p := &indPruner{byRel: byRel, tplOf: make(map[string][]int)}
	relevant := false
	for i, tpl := range t.Templates {
		p.templates = append(p.templates, tpl)
		seen := make(map[string]bool)
		for _, a := range tpl.Args {
			if a.IsVar && !seen[a.Name] {
				seen[a.Name] = true
				p.tplOf[a.Name] = append(p.tplOf[a.Name], i)
			}
		}
		p.tplRemain = append(p.tplRemain, len(seen))
		if len(byRel[tpl.Rel]) > 0 {
			relevant = true
		}
	}
	if !relevant {
		return nil
	}
	return p
}

// clone returns a pruner with private backtracking counters. The
// structural fields — byRel with its Dm-derived allowed-key sets,
// templates, tplOf — are read-only after construction and shared, so a
// clone is one small slice copy; each parallel search branch takes one.
func (p *indPruner) clone() *indPruner {
	if p == nil {
		return nil
	}
	cp := *p
	cp.tplRemain = append([]int(nil), p.tplRemain...)
	return &cp
}

// assign records that variable name was just bound and checks every
// template that became ground. It reports false when a ground template
// violates an IND. undo via unassign.
func (p *indPruner) assign(name string, b query.Binding) bool {
	ok := true
	for _, ti := range p.tplOf[name] {
		p.tplRemain[ti]--
		if p.tplRemain[ti] == 0 && ok {
			if !p.checkTemplate(ti, b) {
				ok = false
			}
		}
	}
	if !ok {
		// Caller will unassign; remain counters must stay consistent,
		// so nothing else to do here.
		return false
	}
	return true
}

// unassign reverses assign's bookkeeping.
func (p *indPruner) unassign(name string) {
	for _, ti := range p.tplOf[name] {
		p.tplRemain[ti]++
	}
}

// checkTemplate validates the ground template ti against the INDs of
// its relation.
func (p *indPruner) checkTemplate(ti int, b query.Binding) bool {
	tpl := p.templates[ti]
	checks := p.byRel[tpl.Rel]
	if len(checks) == 0 {
		return true
	}
	tup, ok := tpl.Ground(b)
	if !ok {
		return true
	}
	for _, chk := range checks {
		if chk.allowed == nil {
			return false // π(R) ⊆ ∅ forbids any R tuple
		}
		if !chk.allowed[tup.Project(chk.cols).Key()] {
			return false
		}
	}
	return true
}
