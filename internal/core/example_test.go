package core_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// exampleSchema is Supt(eid, dept, cid) from Example 1.1 of the paper.
func exampleSchema() *relation.Schema {
	return relation.NewSchema("Supt",
		relation.Attr("eid"), relation.Attr("dept"), relation.Attr("cid"))
}

// exampleQuery is Q₂ of Example 1.1: the customers supported by e0.
func exampleQuery() qlang.Query {
	e, d, c := query.Var("e"), query.Var("d"), query.Var("c")
	return qlang.FromCQ(cq.New("Q2", []query.Term{c},
		[]query.RelAtom{query.Atom("Supt", e, d, c)},
		query.Eq(e, query.C("e0"))))
}

// ExampleRCDP reproduces Example 3.1: under the constraint "e0 supports
// at most 3 customers", a database already holding 3 answers is
// relatively complete, while one holding a single answer is not — the
// checker returns the extension that changes the answer.
func ExampleRCDP() {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 3))
	dm := relation.NewDatabase(relation.NewSchema("Rm", relation.Attr("x")))

	full := relation.NewDatabase(exampleSchema())
	full.MustAdd("Supt", "e0", "s", "c1")
	full.MustAdd("Supt", "e0", "s", "c2")
	full.MustAdd("Supt", "e0", "s", "c3")
	r, err := core.RCDP(exampleQuery(), full, dm, vset)
	if err != nil {
		panic(err)
	}
	fmt.Println("3 answers complete:", r.Complete)

	partial := relation.NewDatabase(exampleSchema())
	partial.MustAdd("Supt", "e0", "s", "c1")
	r, err = core.RCDP(exampleQuery(), partial, dm, vset)
	if err != nil {
		panic(err)
	}
	fmt.Println("1 answer complete:", r.Complete)
	fmt.Println("new answer:", r.NewTuple)
	// Output:
	// 3 answers complete: true
	// 1 answer complete: false
	// new answer: (e0)
}

// ExampleRCQP asks whether any database can be complete for the query.
// With no constraints and an output variable over an infinite domain,
// the answer is No (the E3/E4 analysis of Proposition 4.3 with an empty
// IND set): a fresh customer can always be added.
func ExampleRCQP() {
	dm := relation.NewDatabase(relation.NewSchema("Rm", relation.Attr("x")))
	schemas := map[string]*relation.Schema{"Supt": exampleSchema()}
	res, err := core.RCQP(exampleQuery(), dm, cc.NewSet(), schemas)
	if err != nil {
		panic(err)
	}
	fmt.Println("status:", res.Status)
	fmt.Println("method:", res.Method)
	// Output:
	// status: no
	// method: E3/E4
}

// ExampleChecker_RCDPCtx shows governed checking: a Budget bounds the
// search, and instead of running unboundedly the check returns
// Verdict=unknown with the exhausted dimension and the resources
// consumed.
func ExampleChecker_RCDPCtx() {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 3))
	dm := relation.NewDatabase(relation.NewSchema("Rm", relation.Attr("x")))
	d := relation.NewDatabase(exampleSchema())
	d.MustAdd("Supt", "e0", "s", "c1")

	ck := core.Checker{Workers: 1, Budget: core.Budget{MaxJoinRows: 1}}
	r, err := ck.RCDPCtx(context.Background(), exampleQuery(), d, dm, vset)
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", r.Verdict)
	fmt.Println("reason:", r.Reason)

	// An ample budget decides normally and reports what was spent.
	ck.Budget = core.Budget{MaxJoinRows: 100000, Timeout: time.Minute}
	r, err = ck.RCDPCtx(context.Background(), exampleQuery(), d, dm, vset)
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", r.Verdict)
	fmt.Println("valuations:", r.Stats.Valuations > 0)
	// Output:
	// verdict: unknown
	// reason: join-rows
	// verdict: incomplete
	// valuations: true
}

// ExampleBoundedRCDPCtx runs the bounded semi-decision procedure used
// for the undecidable FO/FP rows, here governed by a context deadline.
func ExampleBoundedRCDPCtx() {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 3))
	dm := relation.NewDatabase(relation.NewSchema("Rm", relation.Attr("x")))
	d := relation.NewDatabase(exampleSchema())
	d.MustAdd("Supt", "e0", "s", "c1")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r, err := core.BoundedRCDPCtx(ctx, exampleQuery(), d, dm, vset,
		core.BoundedOpts{MaxAdd: 1, FreshValues: 1, Workers: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", r.Verdict)
	fmt.Println("incomplete:", r.Incomplete)
	// Output:
	// verdict: incomplete
	// incomplete: true
}
