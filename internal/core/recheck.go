package core

import (
	"context"
	"fmt"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Incremental completeness maintenance under catalog mutations.
//
// A Delta is one batch of tuple insertions and deletions against either
// the database D or the master data Dm. RecheckDeltaCtx applies it and
// answers the RCDP question for the mutated state, reusing the previous
// verdict when the mutation provably cannot change it.
//
// The reuse condition is *extensional invisibility*: the search engine
// reads Dm only through the constraint-head projections p(Dm) (partial
// closure, the witness validity test, the IND pruner, the relevant-value
// feeds) and through the active domain Adom (the universe the valuation
// search enumerates). A master-side, insert-only batch whose tuples
//
//  1. project into every affected constraint's pre-batch p(Dm), and
//  2. carry only values already in Adom(D, Dm, Q, V)
//
// leaves every one of those read sets — and hence the entire search,
// branch for branch — bit-identical to the pre-batch run. Under that
// gate the cached result IS the cold rerun's result, for Complete and
// Incomplete verdicts alike; no monotonicity assumption is needed.
// Deletions, D-side mutations, new projections and new values all fall
// through to a full re-search (the relation and cc layers still patch
// indexes and memos incrementally, so the cold path starts warm).

// Delta is one mutation batch against a check's inputs: Master selects
// the target database (false mutates D, true mutates Dm); Inserts and
// Deletes group tuples per relation, with ApplyBatch semantics
// (validate-first atomicity, inserts before deletes, duplicates and
// absent deletes as no-ops).
type Delta struct {
	Master  bool
	Inserts map[string][]relation.Tuple
	Deletes map[string][]relation.Tuple
}

// Batch returns the delta's tuple payload as a relation.Batch.
func (dl *Delta) Batch() relation.Batch {
	return relation.Batch{Inserts: dl.Inserts, Deletes: dl.Deletes}
}

// Empty reports whether the delta carries no tuples.
func (dl *Delta) Empty() bool { return dl == nil || dl.Batch().Empty() }

// InsertOnly reports whether the delta carries no deletions.
func (dl *Delta) InsertOnly() bool { return dl == nil || dl.Batch().InsertOnly() }

// WitnessReusable reports whether the delta is extensionally invisible
// to the RCDP search for (Q, D, Dm, V): applying it cannot change the
// verdict, the witness, or the order the search finds them in. It must
// be evaluated on the PRE-apply state — the projection and active-domain
// memberships it probes are the ones the cached verdict was computed
// against.
func (dl *Delta) WitnessReusable(q qlang.Query, d, dm *relation.Database, v *cc.Set) bool {
	if dl.Empty() {
		return true
	}
	if !dl.Master || !dl.InsertOnly() || dm == nil {
		return false
	}
	// Condition 2: every inserted value already occurs in Adom, so the
	// universe (and with it every enumeration order) is unchanged.
	probe := newAdomProbe(d, dm, q, v)
	for _, ts := range dl.Inserts {
		for _, t := range ts {
			for _, val := range t {
				if !probe.has(val) {
					return false
				}
			}
		}
	}
	// Condition 1: every affected constraint's master-side projection
	// p(Dm) already contains the inserted tuples' projections, so no
	// containment test, pruner bound or relevant-value feed moves.
	if v != nil {
		for _, c := range v.Constraints {
			if c.P.IsEmptySet() {
				continue
			}
			for _, t := range dl.Inserts[c.P.Rel] {
				if !c.MasterProjectionHas(dm, t) {
					return false
				}
			}
		}
	}
	return true
}

// adomProbe answers "is this value already in Adom(D, Dm, Q, V)?"
// without mutating anything: interned databases are probed through
// their id bitsets and non-mutating dictionary lookups (never Intern,
// which would grow the dictionary as a side effect), with the Q/V
// constants held as strings; legacy instances fall back to the string
// active domain.
type adomProbe struct {
	bits   []uint64
	consts map[relation.Value]bool
}

func newAdomProbe(d, dm *relation.Database, q qlang.Query, v *cc.Set) *adomProbe {
	p := &adomProbe{consts: make(map[relation.Value]bool)}
	if q != nil {
		for _, val := range q.Constants() {
			p.consts[val] = true
		}
	}
	if v != nil {
		for _, val := range v.Constants() {
			p.consts[val] = true
		}
	}
	if set, ok := d.InternedIDs(nil); ok {
		if set, ok = dm.InternedIDs(set); ok {
			p.bits = set
			return p
		}
	}
	for _, db := range []*relation.Database{d, dm} {
		if db != nil {
			for _, val := range db.ActiveDomain() {
				p.consts[val] = true
			}
		}
	}
	return p
}

func (p *adomProbe) has(val relation.Value) bool {
	if p.consts[val] {
		return true
	}
	if p.bits == nil {
		return false
	}
	id, ok := relation.Shared().ID(val)
	return ok && relation.HasIDBit(p.bits, id)
}

// Apply applies the delta to its target database. Master-side
// insert-only batches additionally extend the affected constraints'
// p(Dm) memos in place (cc.Set.PatchMaster) instead of leaving them to
// an O(|Dm|) rebuild; the relation layer patches posting-list indexes
// the same way inside ApplyBatch. It returns the rows actually added
// and removed. Like every mutation, Apply requires that no concurrent
// reader observes the databases while it runs.
func (dl *Delta) Apply(d, dm *relation.Database, v *cc.Set) (ins, del int, err error) {
	if dl.Empty() {
		return 0, 0, nil
	}
	target := d
	if dl.Master {
		target = dm
	}
	if target == nil {
		return 0, 0, fmt.Errorf("core: delta targets a nil database")
	}
	var preGens map[string]uint64
	if dl.Master && dl.InsertOnly() && v != nil {
		preGens = make(map[string]uint64, len(dl.Inserts))
		for rel := range dl.Inserts {
			if in := dm.Instance(rel); in != nil {
				preGens[rel] = in.Generation()
			}
		}
	}
	ins, del, err = target.ApplyBatch(dl.Batch())
	if err != nil {
		return 0, 0, err
	}
	if preGens != nil {
		patches := make(map[string]cc.MasterPatch, len(preGens))
		for rel, gen := range preGens {
			patches[rel] = cc.MasterPatch{PreGen: gen, Inserted: dl.Inserts[rel]}
		}
		v.PatchMaster(dm, patches)
	}
	return ins, del, nil
}

// ResultReusable reports whether prev can stand in for a rerun on
// unchanged inputs. Decisive verdicts always can. Unknown can only when
// the exhausted dimension reproduces deterministically: the per-disjunct
// valuation cap does (its claims go through the same deterministic
// arbitration as witnesses), while wall-clock, cancellation and the
// globally raced row/tuple gates do not. Exported for callers (the
// serving layer's verdict cache) that gate many cached results on one
// Delta and therefore cannot go through RecheckDeltaCtx, which applies
// the delta as a side effect.
func ResultReusable(prev *RCDPResult) bool {
	if prev == nil {
		return false
	}
	switch prev.Verdict {
	case VerdictComplete, VerdictIncomplete:
		return true
	case VerdictUnknown:
		return prev.Reason == ReasonValuations
	}
	return false
}

// RecheckDeltaCtx applies dl to (D, Dm) and decides RCDP for the
// mutated state. When dl passes the invisibility gate (WitnessReusable,
// evaluated before the batch applies) and prev is a reusable result for
// the pre-batch state, the cached result is returned as-is — for a
// cached Incomplete the witness is first cheaply revalidated against
// the patched data as defense in depth. Otherwise it falls back to a
// full RCDPCtx run over the (incrementally re-indexed) databases. The
// boolean reports whether the cached result was reused.
//
// Like RCDPCtx, a nil error with VerdictUnknown means governance
// stopped the fallback search; an apply error leaves the databases
// unchanged (ApplyBatch validates before it mutates).
func (ck *Checker) RecheckDeltaCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database,
	v *cc.Set, prev *RCDPResult, dl *Delta) (*RCDPResult, bool, error) {
	reuse := ResultReusable(prev) && dl.WitnessReusable(q, d, dm, v)
	if _, _, err := dl.Apply(d, dm, v); err != nil {
		return nil, false, err
	}
	if reuse {
		if prev.Verdict != VerdictIncomplete || ck.revalidateWitness(d, dm, v, prev) {
			obs.RecheckReused.Inc()
			return prev, true, nil
		}
	}
	obs.RecheckCold.Inc()
	res, err := ck.RCDPCtx(ctx, q, d, dm, v)
	return res, false, err
}

// RecheckDelta is RecheckDeltaCtx with context.Background(). Unlike the
// legacy RCDP wrapper it keeps the three-valued result: a reused
// Unknown is an answer, not an error.
func (ck *Checker) RecheckDelta(q qlang.Query, d, dm *relation.Database,
	v *cc.Set, prev *RCDPResult, dl *Delta) (*RCDPResult, bool, error) {
	return ck.RecheckDeltaCtx(context.Background(), q, d, dm, v, prev, dl)
}

// revalidateWitness re-verifies a cached incompleteness witness against
// the mutated data: D ∪ Δ must still satisfy V. Under the invisibility
// gate this cannot fail; it is a cheap guard against gate bugs, and a
// failure routes the check to the cold path.
func (ck *Checker) revalidateWitness(d, dm *relation.Database, v *cc.Set, prev *RCDPResult) bool {
	if prev.Extension == nil {
		return false
	}
	ok, err := v.SatisfiedDelta(d, prev.Extension, dm)
	return err == nil && ok
}
