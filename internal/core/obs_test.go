package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/relation"
)

// obsFixture builds a fresh Example 3.1 instance (query, database,
// master, constraints) so every run starts with cold compiled-query and
// p(Dm) caches — the premise of the trace-reproducibility test.
func obsFixture() (d, dm *relation.Database, vset *cc.Set) {
	vset = cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 3))
	dm = emptyMaster()
	d = relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")
	return d, dm, vset
}

// traceRCDP runs one sequential governed check under a fresh tracer and
// returns the JSONL trace.
func traceRCDP(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	prev := obs.SetTracer(obs.NewTracer(&b))
	defer obs.SetTracer(prev)
	d, dm, vset := obsFixture()
	ck := Checker{Workers: 1}
	r, err := ck.RCDPCtx(context.Background(), q2(), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != VerdictIncomplete {
		t.Fatalf("verdict = %v, want incomplete", r.Verdict)
	}
	return b.String()
}

// TestTraceDeterministic checks the tracer contract the CLIs rely on:
// with Workers=1, Timings off and cold caches, two identical checks
// produce byte-identical JSONL streams with well-formed events.
func TestTraceDeterministic(t *testing.T) {
	first := traceRCDP(t)
	second := traceRCDP(t)
	if first != second {
		t.Fatalf("sequential traces differ:\n--- first\n%s--- second\n%s", first, second)
	}

	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short:\n%s", first)
	}
	var seq int64
	events := make([]string, 0, len(lines))
	for _, l := range lines {
		var ev struct {
			Seq int64  `json:"seq"`
			Ev  string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", l, err)
		}
		if ev.Seq != seq+1 {
			t.Fatalf("seq %d after %d in %q", ev.Seq, seq, l)
		}
		seq = ev.Seq
		events = append(events, ev.Ev)
	}
	// Constraint construction may compile tableaux before the check
	// opens, so check_start need not be first — but the check must close
	// the stream and the lifecycle events must appear in order.
	if events[len(events)-1] != "check_done" {
		t.Fatalf("trace does not end with check_done: %v", events)
	}
	joined := strings.Join(events, " ")
	for _, want := range []string{"check_start", "tableau_build", "disjunct_done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %s event: %v", want, events)
		}
	}
	// Timings off: no wall-clock fields may leak into the stream.
	if strings.Contains(first, "elapsed_ns") {
		t.Fatalf("elapsed_ns present with Timings off:\n%s", first)
	}
}

// TestCheckDoneCarriesStats checks the check_done event reports the
// check's own BudgetStats (per-check valuation count, not the global
// counter).
func TestCheckDoneCarriesStats(t *testing.T) {
	trace := traceRCDP(t)
	var done struct {
		Check      string `json:"check"`
		Verdict    string `json:"verdict"`
		Valuations int    `json:"valuations"`
	}
	for _, l := range strings.Split(strings.TrimRight(trace, "\n"), "\n") {
		if strings.Contains(l, `"ev":"check_done"`) {
			if err := json.Unmarshal([]byte(l), &done); err != nil {
				t.Fatal(err)
			}
		}
	}
	if done.Check != "rcdp" || done.Verdict != "incomplete" {
		t.Fatalf("check_done = %+v", done)
	}
	if done.Valuations <= 0 {
		t.Fatalf("check_done has no valuation count: %+v", done)
	}
}

// TestCheckMetrics checks one governed check moves the engine counters:
// the check/verdict vectors, the latency histogram and the valuation
// counter.
func TestCheckMetrics(t *testing.T) {
	checksBefore := obs.Checks.Value("rcdp")
	verdictsBefore := obs.Verdicts.Value("incomplete")
	secondsBefore := obs.CheckSeconds.Count()
	valsBefore := obs.Valuations.Value()

	d, dm, vset := obsFixture()
	ck := Checker{Workers: 1}
	if _, err := ck.RCDPCtx(context.Background(), q2(), d, dm, vset); err != nil {
		t.Fatal(err)
	}

	if got := obs.Checks.Value("rcdp"); got != checksBefore+1 {
		t.Errorf("Checks[rcdp] = %d, want %d", got, checksBefore+1)
	}
	if got := obs.Verdicts.Value("incomplete"); got != verdictsBefore+1 {
		t.Errorf("Verdicts[incomplete] = %d, want %d", got, verdictsBefore+1)
	}
	if got := obs.CheckSeconds.Count(); got != secondsBefore+1 {
		t.Errorf("CheckSeconds count = %d, want %d", got, secondsBefore+1)
	}
	if got := obs.Valuations.Value(); got <= valsBefore {
		t.Errorf("Valuations did not advance: %d -> %d", valsBefore, got)
	}
}

// TestExhaustionMetrics checks a budget-stopped check lands in the
// unknown verdict and exhaustion counters.
func TestExhaustionMetrics(t *testing.T) {
	unknownBefore := obs.Verdicts.Value("unknown")
	reasonBefore := obs.Exhaustions.Value("join-rows")

	d, dm, vset := obsFixture()
	ck := Checker{Workers: 1, Budget: Budget{MaxJoinRows: 1}}
	r, err := ck.RCDPCtx(context.Background(), q2(), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict != VerdictUnknown || r.Reason != ReasonJoinRows {
		t.Fatalf("verdict %v reason %v, want unknown/join-rows", r.Verdict, r.Reason)
	}
	if got := obs.Verdicts.Value("unknown"); got != unknownBefore+1 {
		t.Errorf("Verdicts[unknown] = %d, want %d", got, unknownBefore+1)
	}
	if got := obs.Exhaustions.Value("join-rows"); got != reasonBefore+1 {
		t.Errorf("Exhaustions[join-rows] = %d, want %d", got, reasonBefore+1)
	}
	if obs.GateTrips.Value("join-rows") == 0 {
		t.Error("GateTrips[join-rows] never incremented")
	}
}

// TestMetricsDisabled checks SetEnabled(false) freezes the counters —
// the ablation baseline BenchmarkObsOverhead depends on.
func TestMetricsDisabled(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(false))
	before := obs.Checks.Value("rcdp")
	d, dm, vset := obsFixture()
	ck := Checker{Workers: 1}
	if _, err := ck.RCDPCtx(context.Background(), q2(), d, dm, vset); err != nil {
		t.Fatal(err)
	}
	if got := obs.Checks.Value("rcdp"); got != before {
		t.Errorf("disabled check still counted: %d -> %d", before, got)
	}
}
