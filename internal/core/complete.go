package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file implements the "guidance" side of the paper (Section 2.3):
// once RCQP says a relatively complete database exists, construct one,
// and given an incomplete database, extend it until it is complete.

// CompleteDatabaseINDs constructs a database complete for Q relative to
// (Dm, V) when V is a set of INDs and Q is bounded (Proposition 4.3's
// constructive direction): for every achievable combination of head
// values — drawn from the IND value bounds and finite domains — it adds
// one instantiation μ(T_i) realizing that answer, so that no partially
// closed extension can produce a new answer. maxAnswers caps the head
// combinations; nil is returned (without error) when the witness would
// exceed the cap.
func CompleteDatabaseINDs(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, maxAnswers int) (*relation.Database, error) {
	if !v.AllINDs() {
		return nil, fmt.Errorf("core: CompleteDatabaseINDs requires IND constraints")
	}
	if maxAnswers <= 0 {
		maxAnswers = 4096
	}
	out := emptyDatabase(schemas)
	tableaux := q.Tableaux()
	u := NewUniverse(nil, dm, q, v, tableauVarCount(tableaux))

	for _, t := range tableaux {
		doms, ok := t.AsCQ().VarDomains(schemas)
		if !ok {
			continue
		}
		occ := allVarOccurrences(t)
		// Candidate values per variable.
		cand := make(map[string][]relation.Value, len(t.Vars))
		freshIdx := 0
		for _, vn := range t.Vars {
			vals, covered, err := candidateValues(u, v, dm, vn, doms[vn], occ[vn])
			if err != nil {
				return nil, err
			}
			if !covered && doms[vn].Kind != relation.Finite {
				// Unconstrained infinite variable: head variables of a
				// bounded disjunct never land here; body variables get
				// one fresh value each (they stand for arbitrary data).
				if freshIdx >= len(u.Fresh) {
					return nil, fmt.Errorf("core: fresh pool exhausted")
				}
				vals = []relation.Value{u.Fresh[freshIdx]}
				freshIdx++
			}
			cand[vn] = vals
		}
		// Head variables must be fully covered for the construction to
		// stay finite; a blocked disjunct (no valid valuation satisfies
		// V) contributes nothing and is skipped by the search below.
		added := 0
		b := make(query.Binding, len(t.Vars))
		var rec func(i int) error
		rec = func(i int) error {
			if added >= maxAnswers {
				return errStop
			}
			if i == len(t.Vars) {
				if !t.DiseqsHold(b) {
					return nil
				}
				delta, err := t.Apply(b, schemas)
				if err != nil {
					return err
				}
				if ok, err := v.Satisfied(delta, dm); err != nil || !ok {
					return err
				}
				out.UnionInto(delta)
				added++
				return nil
			}
			vn := t.Vars[i]
			for _, val := range cand[vn] {
				b[vn] = val
				ok := true
				for _, dq := range t.Diseqs {
					if holds, known := dq.Holds(b); known && !holds {
						ok = false
						break
					}
				}
				var err error
				if ok {
					err = rec(i + 1)
				}
				delete(b, vn)
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			if err == errStop {
				return nil, nil // witness exceeds cap; caller treats as "not constructed"
			}
			return nil, err
		}
	}
	if ok, err := v.Satisfied(out, dm); err != nil {
		return nil, err
	} else if !ok {
		// Joint interaction between added fragments (possible only with
		// multi-column INDs whose per-tuple checks passed but whose
		// union re-projects; INDs check per tuple, so this cannot
		// happen — defensive).
		return nil, fmt.Errorf("core: constructed witness violates V")
	}
	return out, nil
}

// allVarOccurrences maps every variable of the tableau to the
// (relation, column) positions at which it occurs.
func allVarOccurrences(t *cq.Tableau) map[string][]varPosition {
	out := make(map[string][]varPosition)
	for _, tpl := range t.Templates {
		for col, arg := range tpl.Args {
			if arg.IsVar {
				out[arg.Name] = append(out[arg.Name], varPosition{Rel: tpl.Rel, Col: col})
			}
		}
	}
	return out
}

// candidateValues computes the admissible value set of a variable under
// the IND bounds of V: the intersection of the per-column value bounds
// at every covered position the variable occupies, further intersected
// with its finite domain when applicable. covered reports whether any
// position is IND-covered.
func candidateValues(u *Universe, v *cc.Set, dm *relation.Database, name string, dom relation.Domain, occ []varPosition) ([]relation.Value, bool, error) {
	var sets [][]relation.Value
	covered := false
	for _, p := range occ {
		if vals, found := v.INDValueBound(dm, p.Rel, p.Col); found {
			covered = true
			sets = append(sets, vals)
		}
	}
	if dom.Kind == relation.Finite {
		sets = append(sets, dom.Values)
	}
	if len(sets) == 0 {
		return nil, covered, nil
	}
	cur := sets[0]
	for _, s := range sets[1:] {
		in := make(map[relation.Value]bool, len(s))
		for _, x := range s {
			in[x] = true
		}
		var next []relation.Value
		for _, x := range cur {
			if in[x] {
				next = append(next, x)
			}
		}
		cur = next
	}
	return cur, covered, nil
}

// MakeComplete extends an incomplete database D until it is complete
// for Q relative to (Dm, V), by repeatedly adding the counterexample
// extension produced by RCDP (the "what data should be collected"
// guidance of Section 2.3(2)). Each round adds at least one new answer
// to Q(D), so the loop terminates whenever Q admits a relatively
// complete extension of D; maxRounds caps divergence for queries that
// do not (RCQP = no).
func MakeComplete(q qlang.Query, d, dm *relation.Database, v *cc.Set, maxRounds int) (*relation.Database, int, error) {
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	cur := d.Clone()
	for round := 0; round < maxRounds; round++ {
		r, err := RCDP(q, cur, dm, v)
		if err != nil {
			return nil, round, err
		}
		if r.Complete {
			return cur, round, nil
		}
		cur.UnionInto(r.Extension)
	}
	return nil, maxRounds, fmt.Errorf("core: not complete after %d rounds (query may not be relatively complete)", maxRounds)
}
