package core

import (
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/relation"
)

// Property tests for semantic invariants of RCDP that the paper's
// definitions imply but no single example pins:
//
//   - CC-monotonicity: constraints only shrink the space of partially
//     closed extensions, so a database complete w.r.t. (Dm, V) stays
//     complete w.r.t. (Dm, V ∪ V') whenever it is still partially
//     closed under the larger set.
//   - Enumeration-order invariance: verdicts and witnesses depend only
//     on the database as a set of relations of sets of tuples, never on
//     the order relations were declared or tuples inserted.
//
// Both properties are checked across indexed/noindex joins and
// Workers ∈ {1, 8}, since each engine enumerates differently.

// engineConfigs enumerates the four join-engine/worker combinations.
func engineConfigs() []struct {
	name    string
	indexed bool
	workers int
} {
	return []struct {
		name    string
		indexed bool
		workers int
	}{
		{"indexed/seq", true, 1},
		{"indexed/par", true, 8},
		{"noindex/seq", false, 1},
		{"noindex/par", false, 8},
	}
}

// mergedConstraints unions two constraint-set fixtures: the constraint
// lists are concatenated and the master databases unioned (every
// fixture shares the master schema M(x)).
func mergedConstraints(a, b struct {
	name string
	v    *cc.Set
	dm   *relation.Database
}) (*cc.Set, *relation.Database) {
	merged := cc.NewSet()
	merged.Add(a.v.Constraints...)
	merged.Add(b.v.Constraints...)
	return merged, a.dm.Union(b.dm)
}

// TestRCDPCCMonotonicityProperty: on random instances, whenever D is
// complete w.r.t. (Dm, V) and still partially closed w.r.t.
// (Dm, V ∪ V'), it must be complete w.r.t. (Dm, V ∪ V') too — under
// every engine configuration.
func TestRCDPCCMonotonicityProperty(t *testing.T) {
	restoreIndexJoin(t)
	rng := rand.New(rand.NewSource(47))
	queries := microQueries()
	sets := microConstraintSets()

	completeHits := 0
	trials := 0
	for trial := 0; trial < 3000 && completeHits < 40; trial++ {
		q := queries[rng.Intn(len(queries))]
		base := sets[rng.Intn(len(sets))]
		extra := sets[rng.Intn(len(sets))]
		merged, dm := mergedConstraints(base, extra)
		d := randomMicroDB(rng)
		// Precondition: D partially closed under the augmented set
		// (which implies it is under the base set too).
		if ok, err := merged.Satisfied(d, dm); err != nil || !ok {
			continue
		}
		trials++
		cq.SetIndexJoin(true)
		br, err := (&Checker{Workers: 1}).RCDP(q, d, dm, base.v)
		if err != nil {
			t.Fatal(err)
		}
		if !br.Complete {
			continue
		}
		completeHits++
		for _, cfg := range engineConfigs() {
			cq.SetIndexJoin(cfg.indexed)
			mr, err := (&Checker{Workers: cfg.workers}).RCDP(q, d, dm, merged)
			if err != nil {
				t.Fatalf("trial %d (%s, %s+%s/%s): %v", trial, cfg.name, base.name, extra.name, q, err)
			}
			if !mr.Complete {
				t.Fatalf("trial %d (%s): completeness lost under V ∪ V' (%s + %s)\nquery %s\nD:\n%v\nwitness: %v",
					trial, cfg.name, base.name, extra.name, q, d, mr.Extension)
			}
		}
	}
	if completeHits < 30 {
		t.Fatalf("too few complete base instances exercised: %d (of %d partially closed trials)", completeHits, trials)
	}
}

// shuffledCopy rebuilds d with relations registered and tuples inserted
// in a random order. The result is set-equal to d.
func shuffledCopy(rng *rand.Rand, d *relation.Database) *relation.Database {
	names := append([]string(nil), d.Relations()...)
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	schemas := make([]*relation.Schema, len(names))
	for i, n := range names {
		schemas[i] = d.Schema(n)
	}
	out := relation.NewDatabase(schemas...)
	for _, n := range names {
		tuples := append([]relation.Tuple(nil), d.Instance(n).Tuples()...)
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, tu := range tuples {
			if err := out.Add(n, tu); err != nil {
				panic(err)
			}
		}
	}
	return out
}

// TestRCDPShuffleInvariance: the verdict, witness extension and new
// answer must not change when the same database is presented with
// shuffled relation/tuple enumeration order — under every engine
// configuration.
func TestRCDPShuffleInvariance(t *testing.T) {
	restoreIndexJoin(t)
	rng := rand.New(rand.NewSource(53))
	queries := microQueries()
	sets := microConstraintSets()

	trials := 0
	for trial := 0; trial < 300 && trials < 80; trial++ {
		q := queries[rng.Intn(len(queries))]
		cs := sets[rng.Intn(len(sets))]
		d := randomMicroDB(rng)
		if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
			continue
		}
		trials++
		cq.SetIndexJoin(true)
		want, err := (&Checker{Workers: 1}).RCDP(q, d, cs.dm, cs.v)
		if err != nil {
			t.Fatal(err)
		}
		for shuffle := 0; shuffle < 3; shuffle++ {
			sd := shuffledCopy(rng, d)
			if !sd.Equal(d) {
				t.Fatalf("trial %d: shuffled copy not set-equal\n%v\nvs\n%v", trial, d, sd)
			}
			for _, cfg := range engineConfigs() {
				cq.SetIndexJoin(cfg.indexed)
				got, err := (&Checker{Workers: cfg.workers}).RCDP(q, sd, cs.dm, cs.v)
				if err != nil {
					t.Fatalf("trial %d (%s, %s/%s): %v", trial, cfg.name, cs.name, q, err)
				}
				if !sameRCDP(want, got) {
					t.Fatalf("trial %d (%s, %s/%s): verdict depends on enumeration order\nD:\n%v\ncanonical: %+v\nshuffled:  %+v",
						trial, cfg.name, cs.name, q, d, want, got)
				}
			}
		}
	}
	if trials < 40 {
		t.Fatalf("too few partially closed trials: %d", trials)
	}
}
