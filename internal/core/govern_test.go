package core

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Governance tests: a governed check must stop for exactly the right
// Reason, stop promptly, leak nothing, and behave identically at
// Workers=1 and Workers=8. The Makefile race target runs this file
// under -race, so the cancellation paths are also exercised for data
// races between the gate and the worker pool.

// completeFixture returns a (q, d, dm, vset) instance that is complete
// (no witness can pre-empt a budget claim): at-most-n already holds
// with exactly n customers under e0, so the completeness scan must
// exhaust a candidate space that grows with n.
func completeFixture(n int) (qlang.Query, *relation.Database, *relation.Database, *cc.Set) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, n))
	d := relation.NewDatabase(suptSchema())
	for i := 0; i < n; i++ {
		d.MustAdd("Supt", "e0", "s", "c"+strconv.Itoa(i))
	}
	return q2(), d, emptyMaster(), vset
}

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// expiredCtx returns a context whose deadline has already passed.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	t.Cleanup(cancel)
	return ctx
}

// TestRCDPCtxPreCancelled: a context cancelled before the call yields
// Unknown/cancelled (not an error) at both worker counts, and the
// partial stats are well-formed.
func TestRCDPCtxPreCancelled(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers}
		r, err := ck.RCDPCtx(cancelledCtx(), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonCancelled {
			t.Fatalf("workers=%d: want unknown/cancelled, got %v/%v", workers, r.Verdict, r.Reason)
		}
		if r.Complete {
			t.Fatalf("workers=%d: Unknown result must not claim completeness", workers)
		}
		if r.Extension != nil || r.NewTuple != nil {
			t.Fatalf("workers=%d: cancelled run fabricated a witness: %v %v", workers, r.Extension, r.NewTuple)
		}
	}
}

// TestRCDPCtxExpiredDeadline: an already-expired caller deadline is
// classified as deadline, not cancellation, at both worker counts.
func TestRCDPCtxExpiredDeadline(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers}
		r, err := ck.RCDPCtx(expiredCtx(t), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonDeadline {
			t.Fatalf("workers=%d: want unknown/deadline, got %v/%v", workers, r.Verdict, r.Reason)
		}
	}
}

// TestRCDPCtxBudgetTimeout: Budget.Timeout alone (background context)
// installs a deadline. The fixture's scan is far heavier than the
// budget, so the verdict must be unknown/deadline with elapsed time
// recorded.
func TestRCDPCtxBudgetTimeout(t *testing.T) {
	q, d, dm, vset := completeFixture(150)
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers, Budget: Budget{Timeout: time.Millisecond}}
		start := time.Now()
		r, err := ck.RCDPCtx(context.Background(), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonDeadline {
			t.Fatalf("workers=%d: want unknown/deadline, got %v/%v", workers, r.Verdict, r.Reason)
		}
		if r.Stats.Elapsed <= 0 {
			t.Fatalf("workers=%d: Stats.Elapsed not recorded: %+v", workers, r.Stats)
		}
		// "Promptly" for a deadline stop: one row-step granularity, far
		// below the seconds the ungoverned scan would take.
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("workers=%d: deadline stop took %v", workers, waited)
		}
	}
}

// TestRCDPCtxRowBudget: MaxJoinRows stops the scan with
// unknown/join-rows at both worker counts, and the row counter reflects
// at least the exhausted cap.
func TestRCDPCtxRowBudget(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	const capRows = 50
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers, Budget: Budget{MaxJoinRows: capRows}}
		r, err := ck.RCDPCtx(context.Background(), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonJoinRows {
			t.Fatalf("workers=%d: want unknown/join-rows, got %v/%v", workers, r.Verdict, r.Reason)
		}
		if r.Stats.JoinRows < capRows {
			t.Fatalf("workers=%d: JoinRows=%d below the exhausted cap %d", workers, r.Stats.JoinRows, capRows)
		}
	}
}

// TestRCDPCtxTupleBudget: MaxTuples stops the scan with unknown/tuples
// (candidate deltas charge their tuple counts) at both worker counts.
func TestRCDPCtxTupleBudget(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers, Budget: Budget{MaxTuples: 1}}
		r, err := ck.RCDPCtx(context.Background(), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictUnknown || r.Reason != ReasonTuples {
			t.Fatalf("workers=%d: want unknown/tuples, got %v/%v", workers, r.Verdict, r.Reason)
		}
		if r.Stats.Tuples <= 1 {
			t.Fatalf("workers=%d: Tuples=%d does not reflect the exhausted cap", workers, r.Stats.Tuples)
		}
	}
}

// TestRCDPCtxGenerousBudgetDecides: a budget far above the instance's
// needs must not change the verdict — governed and ungoverned runs
// agree, and the governed stats are populated.
func TestRCDPCtxGenerousBudgetDecides(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	base, err := RCDP(q, d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		ck := &Checker{Workers: workers, Budget: Budget{
			Timeout: time.Minute, MaxJoinRows: 1 << 40, MaxTuples: 1 << 40,
		}}
		r, err := ck.RCDPCtx(context.Background(), q, d, dm, vset)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Verdict != VerdictComplete || r.Reason != ReasonNone {
			t.Fatalf("workers=%d: want complete/no-reason, got %v/%v", workers, r.Verdict, r.Reason)
		}
		if r.Complete != base.Complete {
			t.Fatalf("workers=%d: governed and ungoverned verdicts diverge", workers)
		}
		if r.Stats.JoinRows == 0 || r.Stats.Elapsed <= 0 {
			t.Fatalf("workers=%d: governed run left stats empty: %+v", workers, r.Stats)
		}
	}
}

// TestLegacyWrapperSentinels: the non-Ctx entry points translate each
// Unknown reason back into its sentinel error.
func TestLegacyWrapperSentinels(t *testing.T) {
	q, d, dm, vset := completeFixture(5)
	cases := []struct {
		name   string
		budget Budget
		want   error
	}{
		{"rows", Budget{MaxJoinRows: 50}, query.ErrRowBudget},
		{"tuples", Budget{MaxTuples: 1}, query.ErrTupleBudget},
		{"valuations", Budget{MaxValuations: 1}, ErrBudgetExceeded},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 8} {
			ck := &Checker{Workers: workers, Budget: tc.budget}
			if _, err := ck.RCDP(q, d, dm, vset); !errors.Is(err, tc.want) {
				t.Fatalf("%s workers=%d: want %v, got %v", tc.name, workers, tc.want, err)
			}
		}
	}
}

// TestReasonErrRoundTrip: reasonOf inverts Reason.Err, so the wrapper
// translation and the governed classification can never disagree.
func TestReasonErrRoundTrip(t *testing.T) {
	for _, r := range []Reason{ReasonCancelled, ReasonDeadline, ReasonValuations, ReasonJoinRows, ReasonTuples} {
		if got := reasonOf(r.Err()); got != r {
			t.Fatalf("reasonOf(%v.Err()) = %v", r, got)
		}
	}
	if ReasonNone.Err() != nil {
		t.Fatalf("ReasonNone.Err() = %v", ReasonNone.Err())
	}
	if reasonOf(errors.New("boom")) != ReasonNone {
		t.Fatal("genuine failures must classify as ReasonNone")
	}
}

// TestRCDPCtxMidSearchCancel: cancelling a running search returns
// promptly (row-step granularity) with unknown/cancelled; checked at
// both worker counts on an instance whose full scan takes far longer
// than the cancellation lag.
func TestRCDPCtxMidSearchCancel(t *testing.T) {
	q, d, dm, vset := completeFixture(200)
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		ck := &Checker{Workers: workers}
		type outcome struct {
			r   *RCDPResult
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			r, err := ck.RCDPCtx(ctx, q, d, dm, vset)
			done <- outcome{r, err}
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case out := <-done:
			if out.err != nil {
				t.Fatalf("workers=%d: unexpected error %v", workers, out.err)
			}
			if out.r.Verdict != VerdictUnknown || out.r.Reason != ReasonCancelled {
				t.Fatalf("workers=%d: want unknown/cancelled, got %v/%v", workers, out.r.Verdict, out.r.Reason)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: cancelled search did not return", workers)
		}
	}
}

// TestCancelledSearchLeaksNoGoroutines: repeated cancelled parallel
// searches must leave the goroutine count where it started (worker
// pools are per-call and must drain on cancellation).
func TestCancelledSearchLeaksNoGoroutines(t *testing.T) {
	q, d, dm, vset := completeFixture(60)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ck := &Checker{Workers: 8}
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		if _, err := ck.RCDPCtx(ctx, q, d, dm, vset); err != nil {
			t.Fatal(err)
		}
	}
	// Give drained workers a moment to exit, then require the count to
	// settle back to (near) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRCQPCtxGovernance: RCQP under a pre-cancelled context and under a
// row budget reports Unknown with the right reason at both worker
// counts, and its legacy wrapper surfaces the sentinels.
func TestRCQPCtxGovernance(t *testing.T) {
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	// A non-IND set: the all-IND E3/E4 path is syntactic and may decide
	// before ever touching the gate, while the certificate search polls
	// on every candidate valuation.
	cs := microConstraintSets()[5] // atmost1
	q := microQueries()[0]
	for _, workers := range []int{1, 8} {
		ck := &QPChecker{Checker: Checker{Workers: workers}}
		res, err := ck.RCQPCtx(cancelledCtx(), q, cs.dm, cs.v, schemas)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if res.Status != Unknown || res.Reason != ReasonCancelled {
			t.Fatalf("workers=%d: want unknown/cancelled, got %v/%v", workers, res.Status, res.Reason)
		}

		rck := &QPChecker{Checker: Checker{Workers: workers, Budget: Budget{MaxJoinRows: 3}}}
		res, err = rck.RCQPCtx(context.Background(), q, cs.dm, cs.v, schemas)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if res.Status != Unknown || res.Reason != ReasonJoinRows {
			t.Fatalf("workers=%d: want unknown/join-rows, got %v/%v", workers, res.Status, res.Reason)
		}
		if _, err := rck.RCQP(q, cs.dm, cs.v, schemas); !errors.Is(err, query.ErrRowBudget) {
			t.Fatalf("workers=%d: legacy wrapper want ErrRowBudget, got %v", workers, err)
		}
	}
}

// TestBoundedCtxGovernance: the bounded semi-decision procedures under
// a pre-cancelled context and under a row budget report Unknown with
// the right reason, at both worker counts, and their legacy wrappers
// surface the sentinels.
func TestBoundedCtxGovernance(t *testing.T) {
	r, f := microSchema()
	schemas := map[string]*relation.Schema{"R": r, "F": f}
	cs := microConstraintSets()[1]
	q := microQueries()[2] // the 2-atom join: enough rows to charge
	d := relation.NewDatabase(r, f)
	d.MustAdd("R", "a", "b")

	for _, workers := range []int{1, 8} {
		opts := BoundedOpts{MaxAdd: 2, FreshValues: 3, Workers: workers}

		br, err := BoundedRCDPCtx(cancelledCtx(), q, d, cs.dm, cs.v, opts)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if br.Verdict != VerdictUnknown || br.Reason != ReasonCancelled {
			t.Fatalf("workers=%d: bounded RCDP want unknown/cancelled, got %v/%v", workers, br.Verdict, br.Reason)
		}

		ropts := opts
		ropts.Budget = Budget{MaxJoinRows: 5}
		br, err = BoundedRCDPCtx(context.Background(), q, d, cs.dm, cs.v, ropts)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if br.Verdict != VerdictUnknown || br.Reason != ReasonJoinRows {
			t.Fatalf("workers=%d: bounded RCDP want unknown/join-rows, got %v/%v", workers, br.Verdict, br.Reason)
		}
		if _, err := BoundedRCDP(q, d, cs.dm, cs.v, ropts); !errors.Is(err, query.ErrRowBudget) {
			t.Fatalf("workers=%d: bounded RCDP wrapper want ErrRowBudget, got %v", workers, err)
		}

		qr, err := BoundedRCQPCtx(cancelledCtx(), q, cs.dm, cs.v, schemas, 2, opts)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if qr.Verdict != VerdictUnknown || qr.Reason != ReasonCancelled {
			t.Fatalf("workers=%d: bounded RCQP want unknown/cancelled, got %v/%v", workers, qr.Verdict, qr.Reason)
		}
		qr, err = BoundedRCQPCtx(context.Background(), q, cs.dm, cs.v, schemas, 2, ropts)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if qr.Verdict != VerdictUnknown || qr.Reason != ReasonJoinRows {
			t.Fatalf("workers=%d: bounded RCQP want unknown/join-rows, got %v/%v", workers, qr.Verdict, qr.Reason)
		}
		if _, err := BoundedRCQP(q, cs.dm, cs.v, schemas, 2, ropts); !errors.Is(err, query.ErrRowBudget) {
			t.Fatalf("workers=%d: bounded RCQP wrapper want ErrRowBudget, got %v", workers, err)
		}
	}
}

func TestBudgetClamp(t *testing.T) {
	ceiling := Budget{Timeout: 2 * time.Second, MaxValuations: 100, MaxJoinRows: 1000, MaxTuples: 500}
	cases := []struct {
		name    string
		in, out Budget
	}{
		{"unset inherits ceiling", Budget{}, ceiling},
		{"over-ask clamped",
			Budget{Timeout: time.Hour, MaxValuations: 1 << 20, MaxJoinRows: 1 << 40, MaxTuples: 1 << 40},
			ceiling},
		{"stricter kept",
			Budget{Timeout: time.Second, MaxValuations: 10, MaxJoinRows: 50, MaxTuples: 5},
			Budget{Timeout: time.Second, MaxValuations: 10, MaxJoinRows: 50, MaxTuples: 5}},
		{"mixed per-dimension",
			Budget{Timeout: time.Hour, MaxJoinRows: 50},
			Budget{Timeout: 2 * time.Second, MaxValuations: 100, MaxJoinRows: 50, MaxTuples: 500}},
	}
	for _, tc := range cases {
		if got := tc.in.Clamp(ceiling); got != tc.out {
			t.Errorf("%s: Clamp = %+v, want %+v", tc.name, got, tc.out)
		}
	}
	// An unset ceiling passes everything through.
	free := Budget{Timeout: time.Hour, MaxValuations: 7}
	if got := free.Clamp(Budget{}); got != free {
		t.Errorf("zero ceiling: Clamp = %+v, want %+v", got, free)
	}
	// Partially set ceilings only clamp their own dimension.
	partial := Budget{MaxJoinRows: 10}
	got := Budget{Timeout: time.Minute}.Clamp(partial)
	want := Budget{Timeout: time.Minute, MaxJoinRows: 10}
	if got != want {
		t.Errorf("partial ceiling: Clamp = %+v, want %+v", got, want)
	}
}
