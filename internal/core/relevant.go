package core

import (
	"repro/internal/cc"
	"repro/internal/relation"
)

// Relevant-value analysis, the second exact shrinking of the Adom
// valuation space (the first being inert-variable collapsing).
//
// A counterexample valuation that assigns some variable a value v can
// be rewritten — by renaming every occurrence of each "irrelevant"
// value injectively to a distinct fresh value — into another
// counterexample, because (a) the renaming preserves the valuation's
// internal (in)equality pattern, so the query's inequality conditions
// and any constraint match confined to the extension are unaffected,
// and (b) a constraint query can compare an extension value against the
// outside world only through constants, through database or master
// values sitting at positions *linked* to the variable's positions
// (sharing a constraint variable or compared by a constraint
// (in)equality), or through the master projection bounding a constraint
// head. Hence each variable's candidate set can be restricted to: the
// constants of Q and V, the D values at the positions in its linked
// group, the Dm values feeding its group through constraint heads, and
// the fresh pool. Everything else is renameable away.
type relevantValues struct {
	// perPosition maps rel → col → sorted candidate values contributed
	// by that position's linked group (database values + master feeds).
	perPosition map[string]map[int][]relation.Value
	// base holds the constants of Q and V.
	base []relation.Value
}

// computeRelevantValues runs the linked-position analysis.
func computeRelevantValues(q interface{ Constants() []relation.Value }, v *cc.Set, d, dm *relation.Database) *relevantValues {
	// Union-find over positions.
	type pos struct {
		rel string
		col int
	}
	parent := make(map[pos]pos)
	var find func(p pos) pos
	find = func(p pos) pos {
		if pp, ok := parent[p]; ok && pp != p {
			r := find(pp)
			parent[p] = r
			return r
		}
		if _, ok := parent[p]; !ok {
			parent[p] = p
		}
		return p
	}
	union := func(a, b pos) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// headFeeds collects, per group root (resolved later), the master
	// values feeding it through constraint heads — as a dictionary-id
	// set when the master instance is interned, as sorted values
	// otherwise.
	type feed struct {
		anchor pos
		vals   []relation.Value
		set    []uint64
	}
	var feeds []feed

	if v != nil {
		for _, c := range v.Constraints {
			for _, t := range c.Q.Tableaux() {
				varPos := make(map[string][]pos)
				for _, tpl := range t.Templates {
					for col, a := range tpl.Args {
						p := pos{tpl.Rel, col}
						find(p)
						if a.IsVar {
							varPos[a.Name] = append(varPos[a.Name], p)
						}
					}
				}
				for _, ps := range varPos {
					for i := 1; i < len(ps); i++ {
						union(ps[0], ps[i])
					}
				}
				for _, dq := range t.Diseqs {
					if dq.L.IsVar && dq.R.IsVar {
						lp, rp := varPos[dq.L.Name], varPos[dq.R.Name]
						if len(lp) > 0 && len(rp) > 0 {
							union(lp[0], rp[0])
						}
					}
				}
				// Constraint head variables: the master projection's
				// column values can be compared against the group.
				if !c.P.IsEmptySet() && dm != nil {
					if in := dm.Instance(c.P.Rel); in != nil {
						for hi, h := range t.Head {
							if !h.IsVar || hi >= len(c.P.Cols) {
								continue
							}
							ps := varPos[h.Name]
							if len(ps) == 0 {
								continue
							}
							if ids := in.InternedCol(c.P.Cols[hi]); ids != nil && in.InternDict() == relation.Shared() {
								var set []uint64
								for _, id := range ids {
									set = relation.SetIDBit(set, id)
								}
								feeds = append(feeds, feed{anchor: ps[0], set: set})
								continue
							}
							seen := make(map[relation.Value]bool)
							for _, tu := range in.Project([]int{c.P.Cols[hi]}) {
								seen[tu[0]] = true
							}
							feeds = append(feeds, feed{anchor: ps[0], vals: relation.SortedValues(seen)})
						}
					}
				}
			}
		}
	}

	// Collect database values per group: interned instances contribute
	// dictionary-id sets (no string keys, sorted later by one scan of
	// the dictionary's sort permutation), legacy instances contribute
	// value maps; the two merge when modes mix.
	groupVals := make(map[pos]map[relation.Value]bool)
	groupSets := make(map[pos][]uint64)
	addVal := func(root pos, val relation.Value) {
		m := groupVals[root]
		if m == nil {
			m = make(map[relation.Value]bool)
			groupVals[root] = m
		}
		m[val] = true
	}
	if d != nil {
		for _, rel := range d.Relations() {
			in := d.Instance(rel)
			for col := 0; col < in.Schema.Arity(); col++ {
				p := pos{rel, col}
				if _, tracked := parent[p]; !tracked {
					continue // position untouched by V: no outside comparisons
				}
				root := find(p)
				if ids := in.InternedCol(col); ids != nil && in.InternDict() == relation.Shared() {
					set := groupSets[root]
					for _, id := range ids {
						set = relation.SetIDBit(set, id)
					}
					groupSets[root] = set
					continue
				}
				for _, t := range in.Tuples() {
					addVal(root, t[col])
				}
			}
		}
	}
	for _, f := range feeds {
		root := find(f.anchor)
		if f.set != nil {
			set := groupSets[root]
			for w, word := range f.set {
				for len(set) <= w {
					set = append(set, 0)
				}
				set[w] |= word
			}
			groupSets[root] = set
			continue
		}
		for _, val := range f.vals {
			addVal(root, val)
		}
	}

	rv := &relevantValues{perPosition: make(map[string]map[int][]relation.Value)}
	dict := relation.Shared()
	for p := range parent {
		root := find(p)
		m := rv.perPosition[p.rel]
		if m == nil {
			m = make(map[int][]relation.Value)
			rv.perPosition[p.rel] = m
		}
		var vals []relation.Value
		if set := groupSets[root]; set != nil {
			vals = dict.SortedIDValues(set)
		}
		if gm := groupVals[root]; gm != nil {
			vals = mergeSortedValues(vals, relation.SortedValues(gm))
		}
		m[p.col] = vals
	}
	seen := make(map[relation.Value]bool)
	if q != nil {
		for _, val := range q.Constants() {
			seen[val] = true
		}
	}
	if v != nil {
		for _, val := range v.Constants() {
			seen[val] = true
		}
	}
	rv.base = relation.SortedValues(seen)
	return rv
}

// candidatesFor returns the restricted candidate set (without the fresh
// pool, which the search appends with its symmetry prefix) for a
// variable occurring at the given positions, or nil when the variable
// must fall back to the full constant pool (never needed — the analysis
// is total — but kept for safety).
func (rv *relevantValues) candidatesFor(positions []varPosition) []relation.Value {
	lists := make([][]relation.Value, 0, len(positions)+1)
	if len(rv.base) > 0 {
		lists = append(lists, rv.base)
	}
outer:
	for _, p := range positions {
		l := rv.perPosition[p.Rel][p.Col]
		if len(l) == 0 {
			continue
		}
		// Positions in one linked group share one slice; merge it once.
		for _, have := range lists {
			if &have[0] == &l[0] {
				continue outer
			}
		}
		lists = append(lists, l)
	}
	out := []relation.Value(nil)
	for _, l := range lists {
		out = mergeSortedValues(out, l)
	}
	if out == nil {
		out = []relation.Value{}
	}
	return out
}

// mergeSortedValues merges two ascending, duplicate-free value slices
// into a fresh ascending, duplicate-free slice — the allocation-light
// replacement for unioning through a map and re-sorting.
func mergeSortedValues(a, b []relation.Value) []relation.Value {
	if len(a) == 0 {
		return append([]relation.Value(nil), b...)
	}
	if len(b) == 0 {
		return append([]relation.Value(nil), a...)
	}
	out := make([]relation.Value, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// applyRelevant installs restricted candidate sets for every
// non-collapsed, infinite-domain variable of the search.
func (s *valuationSearch) applyRelevant(q interface{ Constants() []relation.Value }, v *cc.Set, d, dm *relation.Database) {
	s.applyRelevantFrom(computeRelevantValues(q, v, d, dm))
}

// applyRelevantFrom is applyRelevant with the linked-position analysis
// precomputed. The analysis depends only on (Q, V, D, Dm) — not on the
// disjunct — so multi-disjunct callers compute it once; the installed
// candidate slices are read-only afterwards and safe to share across
// parallel workers.
func (s *valuationSearch) applyRelevantFrom(rv *relevantValues) {
	occ := allVarOccurrences(s.t)
	if s.candidates == nil {
		s.candidates = make(map[string][]relation.Value, len(s.t.Vars))
	}
	for _, name := range s.t.Vars {
		if _, isCollapsed := s.collapsed[name]; isCollapsed {
			continue
		}
		if s.doms[name].Kind == relation.Finite {
			continue
		}
		s.candidates[name] = rv.candidatesFor(occ[name])
	}
}
