// Package core implements the central contribution of Fan & Geerts,
// "Relative Information Completeness": deciding whether a partially
// closed database is complete for a query relative to master data and
// containment constraints (RCDP), and whether a query admits any
// relatively complete database at all (RCQP).
//
// The deciders follow the characterizations of Sections 3.2 and 4.2:
//
//   - RCDP for the monotone languages (CQ, UCQ, ∃FO⁺) × (INDs, CQ, UCQ,
//     ∃FO⁺) implements the bounded-database conditions C1–C4 of
//     Proposition 3.3 / Corollaries 3.4–3.5 as a counterexample search
//     over valid valuations with values in Adom (Theorem 3.6's Σ₂ᵖ
//     certificate space, explored by deterministic backtracking).
//   - RCQP for L_C = INDs implements the syntactic characterization
//     E3/E4 of Proposition 4.3 (coNP in general, and polynomial once
//     the valid-valuation test is done).
//   - RCQP for CQ-class constraints implements the bounded-query
//     condition E1/E2 of Proposition 4.2, confirming every candidate
//     certificate with an RCDP check so that "yes" answers always carry
//     a verified witness database.
//   - The undecidable rows of Tables I and II (FO/FP) get bounded
//     semi-decision procedures that are sound for "incomplete" and
//     report completeness only up to an explicit bound.
//
// Two engine families are exposed. The plain entry points (RCDP, RCQP,
// BoundedRCDP) run to completion and return booleans. The governed
// entry points (Checker.RCDPCtx, RCQPCtx, BoundedRCDPCtx,
// BoundedRCQPCtx) accept a context and a Budget, stop the search the
// moment a resource cap trips, and answer with a three-valued Verdict
// plus the exhausted-dimension Reason and the BudgetStats actually
// consumed — unknown is an answer, not an error. Checker.Workers
// selects between the strictly sequential engine (Workers=1) and the
// deterministic parallel engine, which returns scheduling-independent
// verdicts and witnesses.
//
// Every check reports into the internal/obs registry (check counts,
// verdict and exhaustion vectors, a latency histogram, valuation
// counters) and, when a tracer is installed, emits per-check and
// per-disjunct JSONL events; see the relcheck -metrics/-trace flags.
package core

import (
	"fmt"
	"strings"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// Universe is the value space Adom of Section 3.2: all constants
// occurring in D, Dm, Q and V, plus a set New of distinct fresh values
// (one per tableau variable) that stand in for the infinitely many
// values outside the constants. Fresh values are interchangeable by
// construction, which the valuation search exploits for symmetry
// breaking.
type Universe struct {
	// Consts are the sorted constants of D, Dm, Q and V.
	Consts []relation.Value
	// Fresh are the New values, disjoint from Consts.
	Fresh []relation.Value

	freshSet map[relation.Value]bool
}

// NewUniverse builds the universe for the given problem components.
// nFresh controls how many New values are created; pass the maximum
// number of variables over the tableaux that will be instantiated.
func NewUniverse(d, dm *relation.Database, q qlang.Query, v *cc.Set, nFresh int) *Universe {
	u := &Universe{freshSet: make(map[relation.Value]bool, nFresh)}
	isConst := internedConsts(u, d, dm, q, v)
	if isConst == nil {
		seen := make(map[relation.Value]bool)
		if d != nil {
			for _, val := range d.ActiveDomain() {
				seen[val] = true
			}
		}
		if dm != nil {
			for _, val := range dm.ActiveDomain() {
				seen[val] = true
			}
		}
		if q != nil {
			for _, val := range q.Constants() {
				seen[val] = true
			}
		}
		if v != nil {
			for _, val := range v.Constants() {
				seen[val] = true
			}
		}
		u.Consts = relation.SortedValues(seen)
		isConst = func(val relation.Value) bool { return seen[val] }
	}
	i := 0
	for len(u.Fresh) < nFresh {
		i++
		cand := relation.Value(fmt.Sprintf("⊥%d", i))
		if isConst(cand) {
			continue
		}
		u.Fresh = append(u.Fresh, cand)
		u.freshSet[cand] = true
	}
	return u
}

// IsFreshValue reports whether val is shaped like a placeholder the
// universe mints (⊥1, ⊥2, …): a value standing in for "some value
// outside the constants" rather than a concrete constant of the
// inputs. Witness extensions carry such placeholders when the
// counterexample needs tuples no concrete value is forced for; the
// approximation layer uses this to rank acquisition advice (concrete
// facts before placeholder patterns).
func IsFreshValue(val relation.Value) bool {
	return strings.HasPrefix(string(val), "⊥")
}

// internedConsts fills u.Consts through the shared dictionary when
// every instance of d and dm is interned over it: the active ids merge
// into one bitset and materialize in value order by scanning the
// dictionary's cached sort permutation — no string sort, no value map.
// It returns a membership test for the fresh-value collision check, or
// nil when some instance forces the string path.
func internedConsts(u *Universe, d, dm *relation.Database, q qlang.Query, v *cc.Set) func(relation.Value) bool {
	set, ok := d.InternedIDs(nil)
	if !ok {
		return nil
	}
	if set, ok = dm.InternedIDs(set); !ok {
		return nil
	}
	dict := relation.Shared()
	if q != nil {
		for _, val := range q.Constants() {
			set = relation.SetIDBit(set, dict.Intern(val))
		}
	}
	if v != nil {
		for _, val := range v.Constants() {
			set = relation.SetIDBit(set, dict.Intern(val))
		}
	}
	u.Consts = dict.SortedIDValues(set)
	return func(val relation.Value) bool {
		id, ok := dict.ID(val)
		return ok && relation.HasIDBit(set, id)
	}
}

// IsFresh reports whether a value is one of the New values.
func (u *Universe) IsFresh(v relation.Value) bool { return u.freshSet[v] }

// AdomFor returns the active domain adom(y) for a variable whose
// admissible attribute domain is dom: the full finite domain d_f for
// finite attributes (d_f ⊆ Adom per Section 3.2), and Consts ∪ Fresh
// for infinite attributes.
func (u *Universe) AdomFor(dom relation.Domain) []relation.Value {
	if dom.Kind == relation.Finite {
		return dom.Values
	}
	out := make([]relation.Value, 0, len(u.Consts)+len(u.Fresh))
	out = append(out, u.Consts...)
	out = append(out, u.Fresh...)
	return out
}

// schemasOf extracts the schema map of a database.
func schemasOf(d *relation.Database) map[string]*relation.Schema {
	out := make(map[string]*relation.Schema)
	if d == nil {
		return out
	}
	for _, name := range d.Relations() {
		out[name] = d.Schema(name)
	}
	return out
}

// tableauVarCount returns the largest variable count over the tableaux.
func tableauVarCount(ts []*cq.Tableau) int {
	max := 0
	for _, t := range ts {
		if len(t.Vars) > max {
			max = len(t.Vars)
		}
	}
	return max
}
