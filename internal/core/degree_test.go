package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/cc"
	"repro/internal/mdm"
	"repro/internal/relation"
)

// TestDegreeExactComplete: a database complete for the query scores
// exactly 1.0 with a collapsed confidence interval.
func TestDegreeExactComplete(t *testing.T) {
	k := 3
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, k))
	dm := emptyMaster()
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")
	d.MustAdd("Supt", "e0", "s", "c2")
	d.MustAdd("Supt", "e0", "s", "c3")

	res, err := DegreeCtx(context.Background(), q2(), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Verdict != VerdictComplete {
		t.Fatalf("want exact complete, got exact=%v verdict=%v", res.Exact, res.Verdict)
	}
	if res.Degree != 1.0 || res.Lo != 1.0 || res.Hi != 1.0 {
		t.Fatalf("complete database must score degree 1.0 [1,1], got %v [%v,%v]", res.Degree, res.Lo, res.Hi)
	}
	if res.Counterexamples != 0 {
		t.Fatalf("complete database reported %d counterexamples", res.Counterexamples)
	}
	if res.Candidates == 0 {
		t.Fatal("the k-answer instance has a non-trivial candidate space; Candidates must be > 0")
	}
}

// TestDegreeExactIncomplete: an incomplete database scores strictly
// below 1.0, deterministically.
func TestDegreeExactIncomplete(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 3))
	dm := emptyMaster()
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")

	res, err := DegreeCtx(context.Background(), q2(), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Verdict != VerdictIncomplete {
		t.Fatalf("want exact incomplete, got exact=%v verdict=%v", res.Exact, res.Verdict)
	}
	if !(res.Degree >= 0 && res.Degree < 1) {
		t.Fatalf("incomplete degree must be in [0,1), got %v", res.Degree)
	}
	if res.Lo != res.Degree || res.Hi != res.Degree {
		t.Fatalf("exact runs collapse the interval, got [%v,%v] around %v", res.Lo, res.Hi, res.Degree)
	}
	if res.Counterexamples == 0 || res.Counterexamples > res.Candidates {
		t.Fatalf("implausible counts: %d counterexamples of %d candidates", res.Counterexamples, res.Candidates)
	}
	// Determinism: the enumeration is sequential and ordered.
	again, err := DegreeCtx(context.Background(), q2(), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if again.Degree != res.Degree || again.Candidates != res.Candidates || again.Counterexamples != res.Counterexamples {
		t.Fatalf("degree not deterministic: %+v vs %+v", res, again)
	}
}

// TestDegreeCompleteIffLaw: on exact runs, degree = 1.0 exactly
// characterizes the Complete RCDP verdict — across CRM scenarios of
// varying completeness, the sequential and parallel checker, and both
// storage engines.
func TestDegreeCompleteIffLaw(t *testing.T) {
	for _, intern := range []bool{true, false} {
		prev := relation.SetInterning(intern)
		func() {
			defer relation.SetInterning(prev)
			for _, completeness := range []float64{1.0, 0.6, 0.2} {
				cfg := mdm.DefaultConfig()
				cfg.Completeness = completeness
				cfg.SaturateSupport = true
				s := mdm.Generate(cfg)
				vset := cc.NewSet(mdm.Phi0Cid(), mdm.CidIND(), mdm.ManageIND())
				for _, workers := range []int{1, 8} {
					for _, tc := range []struct {
						name string
					}{{"Q0"}, {"Q2"}} {
						q := mdm.Q0("908")
						if tc.name == "Q2" {
							q = mdm.Q2("e00")
						}
						ck := &Checker{Workers: workers}
						rc, err := ck.RCDPCtx(context.Background(), q, s.D, s.Dm, vset)
						if err != nil {
							t.Fatalf("intern=%v comp=%v %s: rcdp: %v", intern, completeness, tc.name, err)
						}
						dg, err := ck.DegreeCtx(context.Background(), q, s.D, s.Dm, vset)
						if err != nil {
							t.Fatalf("intern=%v comp=%v %s: degree: %v", intern, completeness, tc.name, err)
						}
						if !dg.Exact {
							t.Fatalf("unbudgeted degree run must be exact")
						}
						if (dg.Degree == 1.0) != (rc.Verdict == VerdictComplete) {
							t.Fatalf("intern=%v comp=%v %s workers=%d: degree=%v but verdict=%v",
								intern, completeness, tc.name, workers, dg.Degree, rc.Verdict)
						}
						if dg.Verdict == VerdictComplete != (rc.Verdict == VerdictComplete) {
							t.Fatalf("degree verdict %v disagrees with rcdp %v", dg.Verdict, rc.Verdict)
						}
						if dg.Degree < 0 || dg.Degree > 1 || dg.Lo > dg.Degree || dg.Hi < dg.Degree {
							t.Fatalf("malformed degree %v [%v,%v]", dg.Degree, dg.Lo, dg.Hi)
						}
					}
				}
			}
		}()
	}
}

// TestDegreeSampledBudget: a valuation budget turns the run into a
// prefix sample with a widened Wilson interval.
func TestDegreeSampledBudget(t *testing.T) {
	cfg := mdm.DefaultConfig()
	cfg.Completeness = 0.5
	s := mdm.Generate(cfg)
	vset := cc.NewSet(mdm.Phi0Cid(), mdm.CidIND(), mdm.ManageIND())
	q := mdm.Q0("908")

	exact, err := DegreeCtx(context.Background(), q, s.D, s.Dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("unbudgeted run must be exact")
	}
	budget := exact.Candidates / 10
	if budget < 1 {
		t.Skipf("candidate space too small to sample (%d)", exact.Candidates)
	}
	ck := &Checker{Budget: Budget{MaxValuations: budget}}
	res, err := ck.DegreeCtx(context.Background(), q, s.D, s.Dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatalf("budget %d of %d candidates must not be exact", budget, exact.Candidates)
	}
	if res.Reason != ReasonValuations {
		t.Fatalf("want valuations reason, got %v", res.Reason)
	}
	if res.Candidates > budget {
		t.Fatalf("sampled %d candidates with a per-disjunct budget of %d (single-disjunct query)", res.Candidates, budget)
	}
	if res.Lo > res.Degree || res.Hi < res.Degree || res.Lo < 0 || res.Hi > 1 {
		t.Fatalf("malformed interval %v [%v,%v]", res.Degree, res.Lo, res.Hi)
	}
	if res.Counterexamples == 0 && res.Verdict != VerdictUnknown {
		t.Fatalf("sampled run without counterexamples must stay unknown, got %v", res.Verdict)
	}
	if res.Counterexamples > 0 && res.Verdict != VerdictIncomplete {
		t.Fatalf("any seen counterexample decides incomplete, got %v", res.Verdict)
	}
}

// TestDegreeGovernanceStops: cross-cutting budgets and pre-cancelled
// contexts degrade to a vacuous estimate, not an error.
func TestDegreeGovernanceStops(t *testing.T) {
	cfg := mdm.DefaultConfig()
	s := mdm.Generate(cfg)
	vset := cc.NewSet(mdm.Phi0Cid())
	q := mdm.Q0("908")

	ck := &Checker{Budget: Budget{MaxJoinRows: 5}}
	res, err := ck.DegreeCtx(context.Background(), q, s.D, s.Dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Reason != ReasonJoinRows {
		t.Fatalf("want inexact join-rows stop, got exact=%v reason=%v", res.Exact, res.Reason)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = DegreeCtx(ctx, q, s.D, s.Dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Reason != ReasonCancelled {
		t.Fatalf("want inexact cancelled stop, got exact=%v reason=%v", res.Exact, res.Reason)
	}
	if res.Candidates != 0 || res.Lo != 0 || res.Hi != 1 {
		t.Fatalf("pre-cancelled run must report the vacuous estimate, got %+v", res)
	}
}

// TestWilsonInterval pins the interval arithmetic: known values and
// the clamping invariants.
func TestWilsonInterval(t *testing.T) {
	lo, hi := wilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty sample must be vacuous, got [%v,%v]", lo, hi)
	}
	lo, hi = wilson(10, 10)
	if lo <= 0.6 || hi != 1 {
		t.Fatalf("10/10 Wilson interval off: [%v,%v]", lo, hi)
	}
	lo, hi = wilson(50, 100)
	if math.Abs(lo-0.4038) > 0.001 || math.Abs(hi-0.5962) > 0.001 {
		t.Fatalf("50/100 Wilson interval off: [%v,%v]", lo, hi)
	}
	for _, tc := range []struct{ k, n int }{{0, 7}, {3, 9}, {9, 9}, {1, 1000}} {
		lo, hi := wilson(tc.k, tc.n)
		p := float64(tc.k) / float64(tc.n)
		if lo < 0 || hi > 1 || lo > p || hi < p {
			t.Fatalf("wilson(%d,%d) = [%v,%v] violates invariants around %v", tc.k, tc.n, lo, hi, p)
		}
	}
}
