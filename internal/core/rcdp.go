package core

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// RCDPResult is the outcome of a relatively-complete-database check.
type RCDPResult struct {
	// Complete reports D ∈ RCQ(Q, Dm, V).
	Complete bool
	// Verdict is the three-valued outcome. The Ctx entry points set it
	// on every result: Complete/Incomplete mirror the boolean when the
	// search finished, VerdictUnknown means governance stopped it
	// first (Complete is then meaningless). The legacy entry points
	// never return Unknown — they translate it into an error.
	Verdict Verdict
	// Reason, when Verdict is Unknown, names the exhausted dimension.
	Reason Reason
	// Stats reports the resources consumed (Ctx entry points only;
	// JoinRows/Tuples are counted only on governed runs).
	Stats BudgetStats
	// Extension, when incomplete, is a set Δ of tuples such that
	// D ∪ Δ is partially closed and Q(D ∪ Δ) ≠ Q(D).
	Extension *relation.Database
	// NewTuple, when incomplete, is a tuple in Q(D ∪ Δ) \ Q(D).
	NewTuple relation.Tuple
	// Disjunct, when incomplete, is the index of the query disjunct
	// that produced the counterexample.
	Disjunct int
	// Valuation, when incomplete, is the witness valuation μ of the
	// disjunct tableau's variables: Extension is μ(T_Disjunct) and
	// NewTuple is μ(u_Disjunct). It is a private clone — the search
	// engines reuse their bindings — so callers may keep or mutate it.
	Valuation query.Binding
	// Valuations is the number of candidate valuations inspected. It is
	// a work counter, not part of the verdict: the parallel engine
	// counts speculative work that the sequential engine's early return
	// skips, so only Workers=1 runs reproduce it exactly.
	Valuations int
}

// Checker configures the decision procedures. The zero value uses
// pruned backtracking with no budget on a single goroutine... almost:
// Workers=0 means "one worker per CPU", so the zero value actually uses
// all hardware; set Workers=1 for the strictly sequential engine.
type Checker struct {
	// Naive disables inequality pruning and fresh-value symmetry
	// breaking in the valuation search (ablation ABL-1 of DESIGN.md).
	Naive bool
	// MaxValuations, when positive, caps the number of candidate
	// valuations per disjunct; exceeding it returns ErrBudgetExceeded.
	MaxValuations int
	// Workers is the size of the valuation-search worker pool: 0 uses
	// runtime.GOMAXPROCS(0), 1 forces the sequential engine, n > 1 fans
	// the top-level candidate branches of every disjunct out to n
	// goroutines. Verdicts and witnesses are scheduling-independent
	// (see DESIGN.md, "Parallel search"): the parallel engine returns
	// byte-identical verdict/Extension/NewTuple/Disjunct to Workers=1.
	Workers int
	// Budget bounds every check this checker runs (see Budget). Applied
	// by the Ctx entry points and by the legacy wrappers alike; the
	// zero value is unlimited.
	Budget Budget
	// SliceBudget, when set, makes RCDPSliceCtx charge this shared
	// cross-slice valuation ledger instead of a fresh per-slice counter,
	// so a K-way fan-out exhausts the per-disjunct MaxValuations cap at
	// the same total spend as the single-process engines. Nil keeps the
	// legacy per-slice caps. Only RCDPSliceCtx consults it; the other
	// entry points already share one ledger per disjunct.
	SliceBudget *SharedBudget
}

// effectiveWorkers resolves the Workers field to a concrete count.
func (ck *Checker) effectiveWorkers() int {
	if ck.Workers > 0 {
		return ck.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RCDP decides the relatively complete database problem with the
// default checker. See Checker.RCDP.
func RCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	return (&Checker{}).RCDP(q, d, dm, v)
}

// RCDPCtx decides the relatively complete database problem with the
// default checker under context/budget governance. See Checker.RCDPCtx.
func RCDPCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	return (&Checker{}).RCDPCtx(ctx, q, d, dm, v)
}

// RCDP decides RCDP(L_Q, L_C) for monotone L_Q and L_C (CQ, UCQ, ∃FO⁺;
// INDs are CQ constraints): given a query Q, master data Dm, a set V of
// containment constraints and a partially closed database D, it reports
// whether D is complete for Q relative to (Dm, V).
//
// The procedure implements the characterization of Proposition 3.3 and
// Corollaries 3.4/3.5: D is incomplete iff some disjunct tableau
// (T_i, u_i) has a valid valuation μ with values in Adom such that
// μ(u_i) ∉ Q(D) and (D ∪ μ(T_i), Dm) ⊨ V; the returned witness is then
// Δ = μ(T_i). Monotonicity of the languages makes the single-disjunct
// witness exact (the Σ₂ᵖ algorithm of Theorem 3.6 guesses the same
// certificate).
//
// It is an error to call RCDP with FO or FP queries or constraints
// (Theorem 3.1: undecidable) — use BoundedRCDP for those — or with a D
// that is not partially closed with respect to (Dm, V).
//
// RCDP is the ungoverned form of RCDPCtx: it runs with
// context.Background() and surfaces a governance stop (only possible
// when ck.Budget is set, or via the legacy MaxValuations cap) as the
// corresponding sentinel error (ErrBudgetExceeded, query.ErrRowBudget,
// …) instead of an Unknown verdict.
func (ck *Checker) RCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	res, err := ck.RCDPCtx(context.Background(), q, d, dm, v)
	if err != nil {
		return nil, err
	}
	if res.Verdict == VerdictUnknown {
		return nil, res.Reason.Err()
	}
	return res, nil
}

// RCDPCtx is RCDP under context/budget governance. It returns a nil
// error with Verdict=VerdictUnknown (plus the Reason and the consumed
// Stats) when ctx is cancelled, the deadline expires or a budget
// dimension runs out before the search decides; genuine failures
// (undecidable language, D not partially closed, schema errors) are
// still errors. For decisive budgets — far from the amount of work a
// verdict needs — the verdict and reason are identical at Workers=1 and
// Workers=N; near the boundary the parallel engine's speculative work
// can tip a run to either side (see DESIGN.md "Resource governance").
func (ck *Checker) RCDPCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	co := startCheck("rcdp", ck.effectiveWorkers())
	gv := newGovernor(ctx, ck.Budget)
	defer gv.close()
	res, err := ck.rcdp(q, d, dm, v, nil, gv)
	if err != nil {
		if r := reasonOf(err); r != ReasonNone {
			out := &RCDPResult{Verdict: VerdictUnknown, Reason: r, Stats: gv.stats(0)}
			co.done("unknown", r, out.Stats)
			return out, nil
		}
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	if res.Complete {
		res.Verdict = VerdictComplete
	} else {
		res.Verdict = VerdictIncomplete
	}
	res.Stats = gv.stats(res.Valuations)
	co.done(res.Verdict.String(), ReasonNone, res.Stats)
	return res, nil
}

// rcdpPrep is the shared setup of a disjunct search: the compiled
// tableaux, the per-disjunct valuation searches (nil entries are
// disjuncts unsatisfiable under domain constraints), the database
// schemas and the already-answered head set. Built once per check by
// prepareRCDP and then read-only, it is shared by the sequential
// engine, the parallel engine and the partition-slice runner alike.
type rcdpPrep struct {
	tableaux  []*cq.Tableau
	searches  []*valuationSearch
	schemas   map[string]*relation.Schema
	answerSet map[string]bool
}

// prepareRCDP performs the disjunct-independent setup of an RCDP check:
// the decidability guards, the partial-closure precondition, the Q(D)
// answer set and one valuation search per disjunct tableau. The gate
// charges it makes (constraint check, query evaluation) are exactly the
// sequential engine's setup charges, which is what makes partition
// slices report identical Setup stats on every shard. A nil prep with a
// nil error means the query is unsatisfiable (trivially complete).
func (ck *Checker) prepareRCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set, gate *query.Gate) (*rcdpPrep, error) {
	if !q.Lang().Monotone() {
		return nil, fmt.Errorf("core: RCDP is undecidable for L_Q = %v (Theorem 3.1); use BoundedRCDP", q.Lang())
	}
	if v != nil && !v.AllMonotone() {
		return nil, fmt.Errorf("core: RCDP is undecidable for L_C = %v (Theorem 3.1); use BoundedRCDP", v.MaxLang())
	}
	if ok, err := v.SatisfiedGate(d, dm, gate); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("core: D is not partially closed with respect to (Dm, V)")
	}

	answers, err := q.EvalGate(d, gate)
	if err != nil {
		return nil, err
	}
	answerSet := make(map[string]bool, len(answers))
	for _, t := range answers {
		answerSet[t.Key()] = true
	}

	tableaux := q.Tableaux()
	if len(tableaux) == 0 {
		// Unsatisfiable query: trivially complete.
		return nil, nil
	}
	schemas := schemasOf(d)
	u := NewUniverse(d, dm, q, v, tableauVarCount(tableaux))

	// The inert-position and relevant-value analyses depend only on
	// (Q, V, D, Dm), not on the disjunct: compute them once here and
	// share them read-only across disjuncts (and workers).
	var constrained map[string]map[int]bool
	var rv *relevantValues
	if !ck.Naive {
		constrained = inertPositions(v)
		rv = computeRelevantValues(q, v, d, dm)
	}
	searches := make([]*valuationSearch, len(tableaux))
	for di, t := range tableaux {
		search, ok := newValuationSearch(u, t, schemas)
		if !ok {
			continue // disjunct unsatisfiable under domain constraints
		}
		search.naive = ck.Naive
		search.budget = ck.effectiveValuations()
		search.gate = gate
		if !ck.Naive {
			search.pruner = newINDPruner(t, v, dm)
			search.applyCollapseFrom(constrained)
			search.applyRelevantFrom(rv)
		}
		searches[di] = search
	}
	return &rcdpPrep{tableaux: tableaux, searches: searches, schemas: schemas, answerSet: answerSet}, nil
}

// rcdp is RCDP with an optional externally-owned worker pool — so that
// RCQP's candidate checks and the RCDP disjunct searches they trigger
// draw goroutines from one shared pool instead of multiplying — and an
// optional governor (nil = ungoverned, zero instrumentation cost).
// Governance stops surface as the gate's errors / ErrBudgetExceeded.
func (ck *Checker) rcdp(q qlang.Query, d, dm *relation.Database, v *cc.Set, pool *workerPool, gv *governor) (*RCDPResult, error) {
	gate := gv.gateOf()
	prep, err := ck.prepareRCDP(q, d, dm, v, gate)
	if err != nil {
		return nil, err
	}
	if prep == nil {
		return &RCDPResult{Complete: true}, nil
	}
	tableaux, searches, schemas, answerSet := prep.tableaux, prep.searches, prep.schemas, prep.answerSet

	if workers := ck.effectiveWorkers(); workers > 1 {
		if pool == nil {
			pool = newWorkerPool(workers)
		}
		if pool != nil {
			return ck.rcdpParallel(pool, tableaux, searches, d, dm, v, schemas, answerSet, gate)
		}
	}

	res := &RCDPResult{Complete: true}
	for di, t := range tableaux {
		search := searches[di]
		if search == nil {
			continue
		}
		var found *RCDPResult
		var cbErr error
		err := search.run(func(b query.Binding) bool {
			r, err := rcdpWitness(t, di, b, schemas, answerSet, d, dm, v, gate)
			if err != nil {
				cbErr = err
				return false
			}
			if r == nil {
				return true // not a counterexample; keep searching
			}
			found = r
			return false
		})
		res.Valuations += search.visited
		noteDisjunct(di, search.visited, found != nil)
		if cbErr != nil {
			return nil, cbErr
		}
		if err != nil {
			return nil, err
		}
		if found != nil {
			// Valuations counts everything inspected up to and
			// including this disjunct; later disjuncts are never
			// searched (see TestRCDPValuationsAccounting).
			found.Valuations = res.Valuations
			return found, nil
		}
	}
	return res, nil
}

// rcdpWitness decides whether the complete valuation b of disjunct di's
// tableau is a counterexample to completeness, and if so builds the
// result. It reads only warmed/immutable shared state (answerSet, D,
// Dm, V, schemas) and allocates fresh output objects, so the parallel
// engine may call it concurrently.
func rcdpWitness(t *cq.Tableau, di int, b query.Binding, schemas map[string]*relation.Schema,
	answerSet map[string]bool, d, dm *relation.Database, v *cc.Set, gate *query.Gate) (*RCDPResult, error) {
	head, ok := t.HeadTuple(b)
	if !ok {
		return nil, nil
	}
	if answerSet[head.Key()] {
		return nil, nil // already answered; cannot change Q(D)
	}
	delta, err := t.Apply(b, schemas)
	if err != nil {
		return nil, err
	}
	if err := gate.ChargeTuples(delta.TupleCount()); err != nil {
		return nil, err
	}
	sat, err := v.SatisfiedDeltaGate(d, delta, dm, gate)
	if err != nil {
		return nil, err
	}
	if !sat {
		// Extension violates V; keep searching. The fragment is dead —
		// nothing above retains a reference — so recycle its storage
		// for the next valuation.
		t.ReleaseApplied(delta)
		return nil, nil
	}
	return &RCDPResult{
		Complete:  false,
		Extension: delta,
		NewTuple:  head,
		Disjunct:  di,
		// Clone: the binding is owned by the search engine and is
		// mutated after this call returns (see parallelFn).
		Valuation: b.Clone(),
	}, nil
}

// rcdpParallel runs the disjunct searches on the worker pool: the
// top-level candidate branches of every disjunct become one flat,
// lexicographically ordered task list, a shared raceCtl arbitrates
// claims to the smallest (disjunct, branch) key, and per-disjunct
// budget controllers preserve the MaxValuations semantics. See
// DESIGN.md, "Parallel search", for the determinism argument.
func (ck *Checker) rcdpParallel(pool *workerPool, tableaux []*cq.Tableau, searches []*valuationSearch,
	d, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, answerSet map[string]bool,
	gate *query.Gate) (*RCDPResult, error) {
	warmShared(d, dm)
	ctl := newRaceCtl()
	budgets := make([]*budgetCtl, len(tableaux))
	var tasks []func()
	for di, t := range tableaux {
		search := searches[di]
		if search == nil {
			continue
		}
		t, di := t, di
		budgets[di] = newBudgetCtl(ck.effectiveValuations())
		fn := func(b query.Binding) (any, error) {
			r, err := rcdpWitness(t, di, b, schemas, answerSet, d, dm, v, gate)
			if err != nil {
				return nil, err
			}
			if r == nil {
				return nil, nil
			}
			return r, nil
		}
		tasks = append(tasks, search.branchTasks(ctl, budgets[di], di, fn)...)
	}
	pool.run(tasks)

	total := 0
	for _, bud := range budgets {
		if bud != nil {
			total += bud.count()
		}
	}
	val, key, err := ctl.result()
	witnessDisjunct := -1
	if err == nil && key != noKey && val != nil {
		witnessDisjunct = val.(*RCDPResult).Disjunct
	}
	for di, bud := range budgets {
		if bud != nil {
			noteDisjunct(di, bud.count(), di == witnessDisjunct)
		}
	}
	if err != nil {
		return nil, err
	}
	if key == noKey {
		return &RCDPResult{Complete: true, Valuations: total}, nil
	}
	if val == nil {
		// A budget-exhaustion claim won: some disjunct ran out of
		// budget and no witness with a smaller key exists.
		return nil, ErrBudgetExceeded
	}
	r := val.(*RCDPResult)
	r.Valuations = total
	return r, nil
}

// IsComplete is a convenience wrapper returning only the verdict.
func IsComplete(q qlang.Query, d, dm *relation.Database, v *cc.Set) (bool, error) {
	r, err := RCDP(q, d, dm, v)
	if err != nil {
		return false, err
	}
	return r.Complete, nil
}
