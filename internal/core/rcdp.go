package core

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// RCDPResult is the outcome of a relatively-complete-database check.
type RCDPResult struct {
	// Complete reports D ∈ RCQ(Q, Dm, V).
	Complete bool
	// Extension, when incomplete, is a set Δ of tuples such that
	// D ∪ Δ is partially closed and Q(D ∪ Δ) ≠ Q(D).
	Extension *relation.Database
	// NewTuple, when incomplete, is a tuple in Q(D ∪ Δ) \ Q(D).
	NewTuple relation.Tuple
	// Disjunct, when incomplete, is the index of the query disjunct
	// that produced the counterexample.
	Disjunct int
	// Valuations is the number of candidate valuations inspected.
	Valuations int
}

// Checker configures the decision procedures. The zero value uses
// pruned backtracking with no budget.
type Checker struct {
	// Naive disables inequality pruning and fresh-value symmetry
	// breaking in the valuation search (ablation ABL-1 of DESIGN.md).
	Naive bool
	// MaxValuations, when positive, caps the number of candidate
	// valuations per disjunct; exceeding it returns ErrBudgetExceeded.
	MaxValuations int
}

// RCDP decides the relatively complete database problem with the
// default checker. See Checker.RCDP.
func RCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	return (&Checker{}).RCDP(q, d, dm, v)
}

// RCDP decides RCDP(L_Q, L_C) for monotone L_Q and L_C (CQ, UCQ, ∃FO⁺;
// INDs are CQ constraints): given a query Q, master data Dm, a set V of
// containment constraints and a partially closed database D, it reports
// whether D is complete for Q relative to (Dm, V).
//
// The procedure implements the characterization of Proposition 3.3 and
// Corollaries 3.4/3.5: D is incomplete iff some disjunct tableau
// (T_i, u_i) has a valid valuation μ with values in Adom such that
// μ(u_i) ∉ Q(D) and (D ∪ μ(T_i), Dm) ⊨ V; the returned witness is then
// Δ = μ(T_i). Monotonicity of the languages makes the single-disjunct
// witness exact (the Σ₂ᵖ algorithm of Theorem 3.6 guesses the same
// certificate).
//
// It is an error to call RCDP with FO or FP queries or constraints
// (Theorem 3.1: undecidable) — use BoundedRCDP for those — or with a D
// that is not partially closed with respect to (Dm, V).
func (ck *Checker) RCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set) (*RCDPResult, error) {
	if !q.Lang().Monotone() {
		return nil, fmt.Errorf("core: RCDP is undecidable for L_Q = %v (Theorem 3.1); use BoundedRCDP", q.Lang())
	}
	if v != nil && !v.AllMonotone() {
		return nil, fmt.Errorf("core: RCDP is undecidable for L_C = %v (Theorem 3.1); use BoundedRCDP", v.MaxLang())
	}
	if ok, err := v.Satisfied(d, dm); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("core: D is not partially closed with respect to (Dm, V)")
	}

	answers, err := q.Eval(d)
	if err != nil {
		return nil, err
	}
	answerSet := make(map[string]bool, len(answers))
	for _, t := range answers {
		answerSet[t.Key()] = true
	}

	tableaux := q.Tableaux()
	res := &RCDPResult{Complete: true}
	if len(tableaux) == 0 {
		// Unsatisfiable query: trivially complete.
		return res, nil
	}
	schemas := schemasOf(d)
	u := NewUniverse(d, dm, q, v, tableauVarCount(tableaux))

	for di, t := range tableaux {
		search, ok := newValuationSearch(u, t, schemas)
		if !ok {
			continue // disjunct unsatisfiable under domain constraints
		}
		search.naive = ck.Naive
		search.budget = ck.MaxValuations
		if !ck.Naive {
			search.pruner = newINDPruner(t, v, dm)
			search.applyCollapse(v)
			search.applyRelevant(q, v, d, dm)
		}
		var found *RCDPResult
		var cbErr error
		err := search.run(func(b query.Binding) bool {
			head, ok := t.HeadTuple(b)
			if !ok {
				return true
			}
			if answerSet[head.Key()] {
				return true // already answered; cannot change Q(D)
			}
			delta, err := t.Apply(b, schemas)
			if err != nil {
				cbErr = err
				return false
			}
			sat, err := v.SatisfiedDelta(d, delta, dm)
			if err != nil {
				cbErr = err
				return false
			}
			if !sat {
				return true // extension violates V; keep searching
			}
			found = &RCDPResult{
				Complete:  false,
				Extension: delta,
				NewTuple:  head,
				Disjunct:  di,
			}
			return false
		})
		res.Valuations += search.visited
		if cbErr != nil {
			return nil, cbErr
		}
		if err != nil {
			return nil, err
		}
		if found != nil {
			found.Valuations = res.Valuations
			return found, nil
		}
	}
	return res, nil
}

// IsComplete is a convenience wrapper returning only the verdict.
func IsComplete(q qlang.Query, d, dm *relation.Database, v *cc.Set) (bool, error) {
	r, err := RCDP(q, d, dm, v)
	if err != nil {
		return false, err
	}
	return r.Complete, nil
}
