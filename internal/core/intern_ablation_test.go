package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/mdm"
	"repro/internal/relation"
)

// The interned columnar storage engine (relation.SetInterning) must be
// a pure representation change: verdicts, witnesses and — for the
// sequential engines — the full BudgetStats counters are bit-identical
// with interning on and off, whichever join engine evaluates the
// valuations. These tests pin that contract across Workers=1/8 and
// indexed/noindex, on randomized instances; the Makefile race target
// runs them under -race, which also exercises the shared dictionary
// and the concurrent lazy posting-list builds.

// restoreInterning re-enables interned storage after a test.
func restoreInterning(t *testing.T) {
	prev := relation.SetInterning(true)
	t.Cleanup(func() { relation.SetInterning(prev) })
}

// rebuildDB reconstructs a database's contents in fresh storage under
// the *current* SetInterning mode. Storage representation is fixed when
// an instance is constructed, so cross-validating the two engines
// requires rebuilding the inputs under each toggle rather than flipping
// the switch over live instances.
func rebuildDB(t *testing.T, db *relation.Database) *relation.Database {
	t.Helper()
	if db == nil {
		return nil
	}
	names := db.Relations()
	ss := make([]*relation.Schema, 0, len(names))
	for _, name := range names {
		ss = append(ss, db.Schema(name))
	}
	nd := relation.NewDatabase(ss...)
	for _, name := range names {
		for _, tup := range db.Instance(name).Tuples() {
			if err := nd.Add(name, tup); err != nil {
				t.Fatalf("rebuild %s: %v", name, err)
			}
		}
	}
	return nd
}

// sameBudget compares the deterministic components of two BudgetStats.
// Elapsed is wall-clock time and is excluded.
func sameBudget(a, b BudgetStats) bool {
	return a.Valuations == b.Valuations && a.JoinRows == b.JoinRows && a.Tuples == b.Tuples
}

func TestRCDPInternedMatchesLegacy(t *testing.T) {
	restoreInterning(t)
	restoreIndexJoin(t)
	queries := microQueries()
	sets := microConstraintSets()
	ctx := context.Background()
	for _, indexed := range []bool{true, false} {
		cq.SetIndexJoin(indexed)
		for _, workers := range []int{1, 8} {
			rng := rand.New(rand.NewSource(73))
			ck := &Checker{Workers: workers}
			trials := 0
			for trial := 0; trial < 400 && trials < 150; trial++ {
				q := queries[rng.Intn(len(queries))]
				cs := sets[rng.Intn(len(sets))]
				relation.SetInterning(true)
				d := randomMicroDB(rng)
				if ok, err := cs.v.Satisfied(d, cs.dm); err != nil || !ok {
					continue
				}
				trials++
				ir, ierr := ck.RCDPCtx(ctx, q, d, cs.dm, cs.v)
				relation.SetInterning(false)
				ld, ldm := rebuildDB(t, d), rebuildDB(t, cs.dm)
				lr, lerr := ck.RCDPCtx(ctx, q, ld, ldm, cs.v)
				if (ierr == nil) != (lerr == nil) {
					t.Fatalf("indexed=%v workers=%d trial %d (%s/%s): interned err=%v legacy err=%v",
						indexed, workers, trial, cs.name, q, ierr, lerr)
				}
				if ierr != nil {
					continue
				}
				if !sameRCDP(ir, lr) {
					t.Fatalf("indexed=%v workers=%d trial %d (%s/%s): engines disagree\nD:\n%v\ninterned: %+v\nlegacy: %+v",
						indexed, workers, trial, cs.name, q, d, ir, lr)
				}
				// The valuation search enumerates the same candidates in
				// the same order whichever representation stores the
				// relations, so the sequential work counters must match
				// exactly — not just the verdict.
				if workers == 1 && !sameBudget(ir.Stats, lr.Stats) {
					t.Fatalf("indexed=%v workers=1 trial %d (%s/%s): budgets diverge\ninterned: %+v\nlegacy: %+v",
						indexed, trial, cs.name, q, ir.Stats, lr.Stats)
				}
			}
			if trials < 100 {
				t.Fatalf("indexed=%v workers=%d: too few partially closed trials: %d", indexed, workers, trials)
			}
		}
	}
}

// TestCRMInternedMatchesLegacy runs the realistic CRM scenario (the
// benchmark workload) with interning on and off: a medium-sized
// deterministic instance where the columnar fast paths — posting-list
// joins, the interned active-domain scan, delta pooling — all engage.
func TestCRMInternedMatchesLegacy(t *testing.T) {
	restoreInterning(t)
	ctx := context.Background()
	for _, completeness := range []float64{1.0, 0.8} {
		cfg := mdm.DefaultConfig()
		cfg.DomesticCustomers = 60
		cfg.Employees = 6
		cfg.Completeness = completeness
		relation.SetInterning(true)
		s := mdm.Generate(cfg)
		v := mdmSet(cfg)
		q := mdm.Q0("908")
		relation.SetInterning(false)
		ld, ldm := rebuildDB(t, s.D), rebuildDB(t, s.Dm)
		for _, workers := range []int{1, 8} {
			ck := &Checker{Workers: workers}
			relation.SetInterning(true)
			ir, ierr := ck.RCDPCtx(ctx, q, s.D, s.Dm, v)
			relation.SetInterning(false)
			lr, lerr := ck.RCDPCtx(ctx, q, ld, ldm, v)
			if ierr != nil || lerr != nil {
				t.Fatalf("completeness=%.1f workers=%d: interned err=%v legacy err=%v",
					completeness, workers, ierr, lerr)
			}
			if !sameRCDP(ir, lr) {
				t.Fatalf("completeness=%.1f workers=%d: engines disagree\ninterned: %+v\nlegacy: %+v",
					completeness, workers, ir, lr)
			}
			if workers == 1 && !sameBudget(ir.Stats, lr.Stats) {
				t.Fatalf("completeness=%.1f workers=1: budgets diverge\ninterned: %+v\nlegacy: %+v",
					completeness, ir.Stats, lr.Stats)
			}
		}
	}
}
