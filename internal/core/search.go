package core

import (
	"errors"

	"repro/internal/cq"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrBudgetExceeded is returned when a search visits more candidate
// valuations than the configured cap.
var ErrBudgetExceeded = errors.New("core: valuation budget exceeded")

// errStop signals early termination of a search from a callback.
var errStop = errors.New("core: stop")

// valuationSearch enumerates valid valuations μ of a tableau with
// values in Adom, per the definition in Section 3.2: every variable y
// draws from adom(y), and μ must observe the tableau's inequality
// conditions (that is, Q(μ(T_Q)) is nonempty).
//
// Variables are assigned in template-major order (the variables of
// template 1 first, and so on) so that tuple templates become ground as
// early as possible; an optional IND pruner then rejects partial
// valuations whose ground templates already violate an inclusion
// dependency of V — the backtracking realization of the Σ₂ᵖ
// certificate guess of Theorem 3.6.
type valuationSearch struct {
	u     *Universe
	t     *cq.Tableau
	doms  map[string]relation.Domain
	order []string

	// pruner, when non-nil, rejects partial valuations violating INDs.
	// Pruning is an optimization only: callers re-check the full
	// constraint set on complete valuations, so verdicts never depend
	// on it (naive mode disables it entirely).
	pruner *indPruner

	// collapsed pins inert variables to dedicated fresh values (see
	// inert.go); exact, disabled in naive mode.
	collapsed map[string]relation.Value

	// candidates restricts a variable's non-fresh candidate values to
	// its relevant set (see relevant.go); exact, disabled in naive mode.
	candidates map[string][]relation.Value

	// naive disables inequality pruning, IND pruning, inert-variable
	// collapsing and fresh-value symmetry breaking; kept for the
	// ablation benchmarks.
	naive bool

	// budget, when positive, caps the number of complete candidate
	// valuations visited.
	budget  int
	visited int
}

// newValuationSearch prepares a search over the tableau's variables.
// Schema information is needed to determine each variable's admissible
// domain; unsatisfiable tableaux yield ok=false.
func newValuationSearch(u *Universe, t *cq.Tableau, schemas map[string]*relation.Schema) (*valuationSearch, bool) {
	doms, ok := t.AsCQ().VarDomains(schemas)
	if !ok {
		return nil, false
	}
	// Template-major variable order.
	var order []string
	seen := make(map[string]bool, len(t.Vars))
	for _, tpl := range t.Templates {
		for _, a := range tpl.Args {
			if a.IsVar && !seen[a.Name] {
				seen[a.Name] = true
				order = append(order, a.Name)
			}
		}
	}
	for _, v := range t.Vars {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	return &valuationSearch{u: u, t: t, doms: doms, order: order}, true
}

// run enumerates valid valuations and invokes fn for each; fn returning
// false stops the search. It returns ErrBudgetExceeded when the budget
// runs out before the space is exhausted.
func (s *valuationSearch) run(fn func(b query.Binding) bool) error {
	vars := s.order
	b := make(query.Binding, len(vars))
	var rec func(i, freshUsed int) error
	rec = func(i, freshUsed int) error {
		if i == len(vars) {
			s.visited++
			if s.budget > 0 && s.visited > s.budget {
				return ErrBudgetExceeded
			}
			if !s.t.DiseqsHold(b) {
				return nil
			}
			if !fn(b) {
				return errStop
			}
			return nil
		}
		v := vars[i]
		dom := s.doms[v]
		var candidates []relation.Value
		if cv, ok := s.collapsed[v]; ok && !s.naive {
			candidates = []relation.Value{cv}
		} else if dom.Kind == relation.Finite {
			candidates = dom.Values
		} else {
			candidates = s.u.Consts
			if cs, ok := s.candidates[v]; ok && !s.naive {
				candidates = cs
			}
			// Symmetry breaking: fresh values are interchangeable, so
			// only the first unused one (plus already-used ones) need be
			// tried. The naive mode tries the full fresh pool.
			limit := freshUsed + 1
			if s.naive || limit > len(s.u.Fresh) {
				limit = len(s.u.Fresh)
			}
			candidates = append(append([]relation.Value{}, candidates...), s.u.Fresh[:limit]...)
		}
		for _, val := range candidates {
			b[v] = val
			if !s.naive {
				ok := true
				for _, dq := range s.t.Diseqs {
					if holds, known := dq.Holds(b); known && !holds {
						ok = false
						break
					}
				}
				if ok && s.pruner != nil && !s.pruner.assign(v, b) {
					s.pruner.unassign(v)
					ok = false
				}
				if !ok {
					delete(b, v)
					continue
				}
			}
			nf := freshUsed
			if s.u.IsFresh(val) && isNthFresh(s.u, val, freshUsed) {
				nf++
			}
			err := rec(i+1, nf)
			if !s.naive && s.pruner != nil {
				s.pruner.unassign(v)
			}
			delete(b, v)
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0, 0)
	if err == errStop {
		return nil
	}
	return err
}

// isNthFresh reports whether val is the first not-yet-used fresh value
// (index freshUsed in the pool).
func isNthFresh(u *Universe, val relation.Value, freshUsed int) bool {
	return freshUsed < len(u.Fresh) && u.Fresh[freshUsed] == val
}
