package core

import (
	"errors"

	"repro/internal/cq"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrBudgetExceeded is returned when a search visits more candidate
// valuations than the configured cap.
var ErrBudgetExceeded = errors.New("core: valuation budget exceeded")

// errStop signals early termination of a search from a callback.
var errStop = errors.New("core: stop")

// valuationSearch enumerates valid valuations μ of a tableau with
// values in Adom, per the definition in Section 3.2: every variable y
// draws from adom(y), and μ must observe the tableau's inequality
// conditions (that is, Q(μ(T_Q)) is nonempty).
//
// Variables are assigned in template-major order (the variables of
// template 1 first, and so on) so that tuple templates become ground as
// early as possible; an optional IND pruner then rejects partial
// valuations whose ground templates already violate an inclusion
// dependency of V — the backtracking realization of the Σ₂ᵖ
// certificate guess of Theorem 3.6.
//
// Sharing discipline: after setup (newValuationSearch + pruner/
// applyCollapse/applyRelevant) everything here except pruner, budget
// and visited is read-only and may be shared across the worker
// goroutines of a parallel search (see parallel.go). The pruner field
// is the per-search *template*: workers clone it (indPruner.clone) to
// get private backtracking counters; budget/visited are only used by
// the sequential run path (parallel searches use a shared budgetCtl).
type valuationSearch struct {
	u     *Universe
	t     *cq.Tableau
	doms  map[string]relation.Domain
	order []string

	// pruner, when non-nil, rejects partial valuations violating INDs.
	// Pruning is an optimization only: callers re-check the full
	// constraint set on complete valuations, so verdicts never depend
	// on it (naive mode disables it entirely).
	pruner *indPruner

	// collapsed pins inert variables to dedicated fresh values (see
	// inert.go); exact, disabled in naive mode.
	collapsed map[string]relation.Value

	// candidates restricts a variable's non-fresh candidate values to
	// its relevant set (see relevant.go); exact, disabled in naive mode.
	candidates map[string][]relation.Value

	// naive disables inequality pruning, IND pruning, inert-variable
	// collapsing and fresh-value symmetry breaking; kept for the
	// ablation benchmarks.
	naive bool

	// budget, when positive, caps the number of complete candidate
	// valuations visited.
	budget  int
	visited int

	// gate, when non-nil, is the check's governance gate: every search
	// node polls it so cancellation and cross-cutting budgets (rows,
	// tuples) stop the search promptly. Shared (atomics only) between
	// the sequential engine and parallel branch workers.
	gate *query.Gate
}

// newValuationSearch prepares a search over the tableau's variables.
// Schema information is needed to determine each variable's admissible
// domain; unsatisfiable tableaux yield ok=false.
func newValuationSearch(u *Universe, t *cq.Tableau, schemas map[string]*relation.Schema) (*valuationSearch, bool) {
	doms, ok := t.AsCQ().VarDomains(schemas)
	if !ok {
		return nil, false
	}
	// Template-major variable order.
	var order []string
	seen := make(map[string]bool, len(t.Vars))
	for _, tpl := range t.Templates {
		for _, a := range tpl.Args {
			if a.IsVar && !seen[a.Name] {
				seen[a.Name] = true
				order = append(order, a.Name)
			}
		}
	}
	for _, v := range t.Vars {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	return &valuationSearch{u: u, t: t, doms: doms, order: order}, true
}

// run enumerates valid valuations and invokes fn for each; fn returning
// false stops the search. It returns ErrBudgetExceeded when the budget
// runs out before the space is exhausted.
func (s *valuationSearch) run(fn func(b query.Binding) bool) error {
	vars := s.order
	b := make(query.Binding, len(vars))
	var rec func(i, freshUsed int) error
	rec = func(i, freshUsed int) error {
		if err := s.gate.Poll(); err != nil {
			return err
		}
		if i == len(vars) {
			s.visited++
			if s.budget > 0 && s.visited > s.budget {
				return ErrBudgetExceeded
			}
			if !s.t.DiseqsHold(b) {
				return nil
			}
			if !fn(b) {
				return errStop
			}
			return nil
		}
		v := vars[i]
		for _, val := range s.candidatesFor(v, freshUsed) {
			b[v] = val
			if !s.admitAssign(s.pruner, v, b) {
				delete(b, v)
				continue
			}
			nf := freshUsed
			if s.u.IsFresh(val) && isNthFresh(s.u, val, freshUsed) {
				nf++
			}
			err := rec(i+1, nf)
			if !s.naive && s.pruner != nil {
				s.pruner.unassign(v)
			}
			delete(b, v)
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0, 0)
	if err == errStop {
		return nil
	}
	return err
}

// candidatesFor returns the candidate values tried for variable v at
// symmetry level freshUsed, in deterministic order. Read-only with
// respect to the search: both the sequential engine and the parallel
// branch workers use it. The returned slice must not be modified.
func (s *valuationSearch) candidatesFor(v string, freshUsed int) []relation.Value {
	if cv, ok := s.collapsed[v]; ok && !s.naive {
		return []relation.Value{cv}
	}
	if dom := s.doms[v]; dom.Kind == relation.Finite {
		return dom.Values
	}
	candidates := s.u.Consts
	if cs, ok := s.candidates[v]; ok && !s.naive {
		candidates = cs
	}
	// Symmetry breaking: fresh values are interchangeable, so only the
	// first unused one (plus already-used ones) need be tried. The
	// naive mode tries the full fresh pool.
	limit := freshUsed + 1
	if s.naive || limit > len(s.u.Fresh) {
		limit = len(s.u.Fresh)
	}
	return append(append([]relation.Value{}, candidates...), s.u.Fresh[:limit]...)
}

// admitAssign checks a just-made assignment b[v]: the inequality
// conditions decidable on the partial valuation, then the IND pruner.
// On false the pruner bookkeeping has been rolled back and the caller
// must delete b[v]. The pruner is a parameter (not s.pruner) so that
// parallel workers can pass their private clones.
func (s *valuationSearch) admitAssign(pruner *indPruner, v string, b query.Binding) bool {
	if s.naive {
		return true
	}
	for _, dq := range s.t.Diseqs {
		if holds, known := dq.Holds(b); known && !holds {
			return false
		}
	}
	if pruner != nil && !pruner.assign(v, b) {
		pruner.unassign(v)
		return false
	}
	return true
}

// isNthFresh reports whether val is the first not-yet-used fresh value
// (index freshUsed in the pool).
func isNthFresh(u *Universe, val relation.Value, freshUsed int) bool {
	return freshUsed < len(u.Fresh) && u.Fresh[freshUsed] == val
}
