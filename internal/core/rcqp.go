package core

import (
	"context"
	"fmt"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Status is a three-valued verdict for the relatively complete query
// problem. Exact decision paths (INDs, empty V, E1) return Yes or No;
// the certificate search for general CQ-class constraints returns Yes
// with a verified witness or Unknown when its search caps are hit
// before the certificate space is exhausted (the problem is
// NEXPTIME-complete — Theorem 4.5 — so caps are unavoidable).
type Status int

// Verdicts.
const (
	No Status = iota
	Yes
	Unknown
)

func (s Status) String() string {
	switch s {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// RCQPResult is the outcome of a relatively-complete-query check.
type RCQPResult struct {
	// Status reports whether RCQ(Q, Dm, V) is nonempty.
	Status Status
	// Witness, when Status == Yes and one was constructed, is a
	// database verified (via RCDP) to be complete for Q relative to
	// (Dm, V).
	Witness *relation.Database
	// Method names the decision path taken (e.g. "E1", "E3/E4",
	// "blocked", "certificate-search").
	Method string
	// Detail is a human-readable explanation, including the unbounded
	// variable or the unblockable valuation on a No answer.
	Detail string
	// Candidates is the number of candidate witness databases examined
	// by the certificate search.
	Candidates int
	// Reason, when Status is Unknown because governance stopped the
	// check (RCQPCtx only), names the exhausted dimension; ReasonNone
	// for the pre-existing caps-exhausted Unknown.
	Reason Reason
	// Stats reports the resources consumed (Ctx entry points only).
	Stats BudgetStats
}

// QPChecker configures the RCQP certificate search.
type QPChecker struct {
	// MaxSetSize bounds the number of pool fragments combined into one
	// candidate witness (default 2).
	MaxSetSize int
	// MaxPool bounds the fragment pool size (default 4096).
	MaxPool int
	// MaxCandidates bounds the total candidates tried (default 65536).
	MaxCandidates int
	// Checker configures the inner RCDP confirmations.
	Checker Checker
}

func (ck *QPChecker) withDefaults() QPChecker {
	out := *ck
	if out.MaxSetSize == 0 {
		out.MaxSetSize = 2
	}
	if out.MaxPool == 0 {
		out.MaxPool = 4096
	}
	if out.MaxCandidates == 0 {
		out.MaxCandidates = 65536
	}
	return out
}

// RCQP decides the relatively complete query problem with the default
// checker.
func RCQP(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema) (*RCQPResult, error) {
	return (&QPChecker{}).RCQP(q, dm, v, schemas)
}

// RCQPCtx decides the relatively complete query problem with the
// default checker under context/budget governance. See
// QPChecker.RCQPCtx.
func RCQPCtx(ctx context.Context, q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema) (*RCQPResult, error) {
	return (&QPChecker{}).RCQPCtx(ctx, q, dm, v, schemas)
}

// RCQP decides RCQP(L_Q, L_C) for monotone L_Q: given Q, Dm and V, is
// there any database complete for Q relative to (Dm, V)?
//
// When V consists of INDs the syntactic characterization of Proposition
// 4.3 (conditions E3/E4) decides the problem exactly. For CQ-class
// constraint sets the procedure implements the bounded-query
// characterization of Proposition 4.2 (conditions E1/E2) as a
// certificate search: candidate witness databases are assembled from
// partial valuations of the constraint tableaux and valuations of the
// query tableaux (the D⁻/D⁺ shapes of Example 4.1), and every candidate
// is confirmed with an RCDP check, so a Yes always carries a verified
// witness. schemas must cover every relation of the database schema R
// that Q or V mentions.
func (ck *QPChecker) RCQP(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema) (*RCQPResult, error) {
	res, err := ck.RCQPCtx(context.Background(), q, dm, v, schemas)
	if err != nil {
		return nil, err
	}
	if res.Status == Unknown && res.Reason != ReasonNone {
		return nil, res.Reason.Err()
	}
	return res, nil
}

// RCQPCtx is RCQP under context/budget governance (the budget is
// ck.Checker.Budget). A governance stop returns Status=Unknown with the
// Reason set and a nil error; the pre-existing caps-exhausted Unknown
// keeps ReasonNone. See Checker.RCDPCtx for the determinism contract.
func (ck *QPChecker) RCQPCtx(ctx context.Context, q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema) (*RCQPResult, error) {
	if !q.Lang().Monotone() {
		return nil, fmt.Errorf("core: RCQP is undecidable for L_Q = %v (Theorem 4.1); use BoundedRCQP", q.Lang())
	}
	if v != nil && !v.AllMonotone() {
		return nil, fmt.Errorf("core: RCQP is undecidable for L_C = %v (Theorem 4.1); use BoundedRCQP", v.MaxLang())
	}
	cfg := ck.withDefaults()
	co := startCheck("rcqp", cfg.Checker.effectiveWorkers())
	gv := newGovernor(ctx, cfg.Checker.Budget)
	defer gv.close()
	// One pool shared by every parallel search this call triggers: the
	// E3/E4 disjunct searches, the certificate search's candidate
	// checks, and the RCDP confirmations nested inside them (nil when
	// the checker resolves to a single worker).
	wp := newWorkerPool(cfg.Checker.effectiveWorkers())
	var res *RCQPResult
	var err error
	if v.AllINDs() {
		res, err = cfg.rcqpINDs(q, dm, v, schemas, wp, gv)
	} else {
		res, err = cfg.rcqpGeneral(q, dm, v, schemas, wp, gv)
	}
	if err != nil {
		if r := reasonOf(err); r != ReasonNone && r != ReasonValuations {
			// A global governance stop (cancel, deadline, rows, tuples).
			// Per-candidate valuation budgets never surface here — they
			// skip the candidate inside the certificate search.
			out := &RCQPResult{Status: Unknown, Method: "budget", Reason: r, Stats: gv.stats(0)}
			co.done("unknown", r, out.Stats)
			return out, nil
		}
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	res.Stats = gv.stats(0)
	co.done(res.Status.String(), ReasonNone, res.Stats)
	return res, nil
}

// headVarPositions returns, for each head variable of the tableau, the
// (relation, column) positions at which it occurs in the templates.
type varPosition struct {
	Rel string
	Col int
}

func headVarOccurrences(t *cq.Tableau) map[string][]varPosition {
	out := make(map[string][]varPosition)
	headVars := make(map[string]bool)
	for _, h := range t.Head {
		if h.IsVar {
			headVars[h.Name] = true
		}
	}
	for _, tpl := range t.Templates {
		for col, arg := range tpl.Args {
			if arg.IsVar && headVars[arg.Name] {
				out[arg.Name] = append(out[arg.Name], varPosition{Rel: tpl.Rel, Col: col})
			}
		}
	}
	return out
}

// rcqpINDs implements Proposition 4.3 (extended per-disjunct to UCQ and
// ∃FO⁺ as in the proof of Theorem 4.5(1)): RCQ(Q, Dm, V) is nonempty
// iff every disjunct either (a) is bounded — each head variable with an
// infinite domain occurs in a column covered by an IND of V (E4) or has
// a finite domain (E3) — or (b) admits no valid valuation μ with
// (μ(T_i), Dm) ⊨ V at all. INDs check tuple-by-tuple, which makes the
// per-disjunct analysis exact.
func (cfg QPChecker) rcqpINDs(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, wp *workerPool, gv *governor) (*RCQPResult, error) {
	gate := gv.gateOf()
	bounded, ok := v.BoundedColumns()
	if !ok {
		return nil, fmt.Errorf("core: rcqpINDs called with non-IND constraints")
	}
	tableaux := q.Tableaux()
	u := NewUniverse(nil, dm, q, v, tableauVarCount(tableaux))

	// Boundedness analysis per disjunct (cheap, sequential); the
	// valuation searches of the unbounded disjuncts are the expensive
	// part and are what gets fanned out below.
	type unboundedDisjunct struct {
		di     int
		name   string // the uncovered head variable
		t      *cq.Tableau
		search *valuationSearch
	}
	var pending []unboundedDisjunct
	for di, t := range tableaux {
		search, okT := newValuationSearch(u, t, schemas)
		if !okT {
			continue // unsatisfiable disjunct
		}
		search.pruner = newINDPruner(t, v, dm)
		search.applyCollapse(v)
		search.applyRelevant(q, v, nil, dm)
		search.gate = gate
		doms := search.doms
		occ := headVarOccurrences(t)
		unbounded := ""
		for _, h := range t.Head {
			if !h.IsVar {
				continue
			}
			if doms[h.Name].Kind == relation.Finite {
				continue // E3
			}
			covered := false
			for _, p := range occ[h.Name] {
				if bounded[p.Rel][p.Col] {
					covered = true // E4
					break
				}
			}
			if !covered {
				unbounded = h.Name
				break
			}
		}
		if unbounded == "" {
			continue // disjunct bounded
		}
		// Unbounded disjunct: RCQ is nonempty only if no valid valuation
		// satisfies V. (A disjunct with no valid valuation at all can
		// never produce an answer in a partially closed database.)
		pending = append(pending, unboundedDisjunct{di: di, name: unbounded, t: t, search: search})
	}

	noResult := func(di int, name string, witness query.Binding) *RCQPResult {
		return &RCQPResult{
			Status: No,
			Method: "E3/E4",
			Detail: fmt.Sprintf("disjunct %d: head variable %s has an infinite domain, is covered by no IND, and valuation %v satisfies V — answers can always be extended with fresh values", di, name, witness),
		}
	}

	if wp != nil && len(pending) > 0 {
		// Parallel path: the branches of every unbounded disjunct race on
		// one raceCtl; the smallest (disjunct, branch) claim is exactly
		// the witness the sequential loop above would have found first.
		warmShared(dm)
		ctl := newRaceCtl()
		names := make(map[int]string, len(pending))
		var tasks []func()
		for _, ud := range pending {
			ud := ud
			names[ud.di] = ud.name
			fn := func(b query.Binding) (any, error) {
				delta, err := ud.t.Apply(b, schemas)
				if err != nil {
					return nil, nil // mirror sequential: skip, keep searching
				}
				sat, err := v.SatisfiedGate(delta, dm, gate)
				if err != nil {
					if isGovernErr(err) {
						return nil, err // stop the whole race
					}
					return nil, nil
				}
				if !sat {
					return nil, nil
				}
				// The binding is worker-owned and unwound after return:
				// clone before claiming.
				return b.Clone(), nil
			}
			tasks = append(tasks, ud.search.branchTasks(ctl, newBudgetCtl(0), ud.di, fn)...)
		}
		wp.run(tasks)
		val, key, err := ctl.result()
		if err != nil {
			return nil, err
		}
		if key != noKey {
			di := keyDisjunct(key)
			return noResult(di, names[di], val.(query.Binding)), nil
		}
	} else {
		for _, ud := range pending {
			var witness query.Binding
			var gerr error
			err := ud.search.run(func(b query.Binding) bool {
				delta, err := ud.t.Apply(b, schemas)
				if err != nil {
					return true
				}
				sat, err := v.SatisfiedGate(delta, dm, gate)
				if err != nil {
					if isGovernErr(err) {
						gerr = err
						return false
					}
					return true
				}
				if !sat {
					return true
				}
				witness = b.Clone()
				return false
			})
			if gerr != nil {
				return nil, gerr
			}
			if err != nil {
				return nil, err
			}
			if witness != nil {
				return noResult(ud.di, ud.name, witness), nil
			}
		}
	}
	res := &RCQPResult{Status: Yes, Method: "E3/E4"}
	if w, err := CompleteDatabaseINDs(q, dm, v, schemas, cfg.MaxCandidates); err == nil && w != nil {
		res.Witness = w
	}
	return res, nil
}

// rcqpGeneral implements the Proposition 4.2 path for CQ-class
// constraint sets. It first applies the exact shortcuts (E1; empty V),
// then runs the certificate search of E2: candidate witness databases
// are unions of up to MaxSetSize fragments, each fragment being either
// a partial valuation of a constraint tableau (the D⁻ shape) or a full
// valuation of a query tableau (the D⁺ shape), plus the constant
// templates of T_Q; each candidate is confirmed by RCDP.
func (cfg QPChecker) rcqpGeneral(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, wp *workerPool, gv *governor) (*RCQPResult, error) {
	tableaux := q.Tableaux()
	if len(tableaux) == 0 {
		// Unsatisfiable query: every partially closed database is
		// complete; the empty database is a witness if it satisfies V.
		empty := emptyDatabase(schemas)
		if ok, err := v.SatisfiedGate(empty, dm, gv.gateOf()); err != nil {
			return nil, err
		} else if ok {
			return &RCQPResult{Status: Yes, Witness: empty, Method: "unsatisfiable-query"}, nil
		}
		return &RCQPResult{Status: Yes, Method: "unsatisfiable-query"}, nil
	}

	// E1/E5: every head variable of every disjunct has a finite domain.
	allFinite := true
	for _, t := range tableaux {
		doms, ok := t.AsCQ().VarDomains(schemas)
		if !ok {
			continue
		}
		for _, h := range t.Head {
			if h.IsVar && doms[h.Name].Kind != relation.Finite {
				allFinite = false
				break
			}
		}
		if !allFinite {
			break
		}
	}
	if allFinite {
		res := &RCQPResult{Status: Yes, Method: "E1", Detail: "all output variables range over finite domains"}
		if w, n, err := cfg.searchWitness(q, dm, v, schemas, wp, gv); err != nil {
			if isGovernErr(err) {
				return nil, err // the Yes is exact, but governance asked to stop
			}
		} else if w != nil {
			res.Witness = w
			res.Candidates = n
		}
		return res, nil
	}

	// Certificate search.
	w, n, err := cfg.searchWitness(q, dm, v, schemas, wp, gv)
	if err != nil {
		return nil, err
	}
	if w != nil {
		return &RCQPResult{Status: Yes, Witness: w, Method: "certificate-search", Candidates: n}, nil
	}
	if v.Len() == 0 {
		// Proposition 4.2, case V = ∅: RCQ is nonempty iff E1 holds.
		return &RCQPResult{
			Status: No, Method: "E1", Candidates: n,
			Detail: "V is empty and some output variable has an infinite domain: any database can be extended with a fresh answer",
		}, nil
	}
	return &RCQPResult{
		Status: Unknown, Method: "certificate-search", Candidates: n,
		Detail: fmt.Sprintf("no witness within caps (set size ≤ %d, pool ≤ %d, candidates ≤ %d)", cfg.MaxSetSize, cfg.MaxPool, cfg.MaxCandidates),
	}, nil
}

// emptyDatabase builds an empty database over the schema map.
func emptyDatabase(schemas map[string]*relation.Schema) *relation.Database {
	var ss []*relation.Schema
	for _, s := range schemas {
		ss = append(ss, s)
	}
	return relation.NewDatabase(ss...)
}

// searchWitness enumerates candidate witness databases and returns the
// first one confirmed complete by RCDP, with the number of candidates
// tried. A nil result with nil error means no witness was found within
// the caps. With a non-nil worker pool the iterative-deepening stage
// checks candidates in parallel chunks; the winner (and the reported
// candidate count) is the pre-order-first witness either way.
func (cfg QPChecker) searchWitness(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, wp *workerPool, gv *governor) (*relation.Database, int, error) {
	pool, base, err := cfg.buildFragmentPool(q, dm, v, schemas, gv)
	if err != nil {
		return nil, 0, err
	}
	tried := 0
	check := func(cand *relation.Database) (*relation.Database, error) {
		tried++
		if ok, err := v.SatisfiedGate(cand, dm, gv.gateOf()); err != nil || !ok {
			return nil, err
		}
		r, err := cfg.Checker.rcdp(q, cand, dm, v, wp, gv)
		if err != nil {
			// Per-candidate valuation-budget errors just skip the
			// candidate; global governance stops propagate.
			if err == ErrBudgetExceeded {
				return nil, nil
			}
			return nil, err
		}
		if r.Complete {
			return cand, nil
		}
		return nil, nil
	}

	// Size 0: the base candidate (constant templates only).
	if w, err := check(base.Clone()); err != nil || w != nil {
		return w, tried, err
	}
	// Constructive strategy: grow the base candidate by repeatedly
	// adding the RCDP counterexample (the Proposition 4.2 construction
	// realized as a fixpoint). When the query's answer space is bounded
	// by (Dm, V) this terminates with a verified witness; a
	// counterexample whose *answer* carries a value outside the
	// problem's constants signals an unbounded answer direction that no
	// amount of growing can close, so the strategy aborts early and the
	// fragment search takes over (it can still find blocking witnesses
	// like D⁻ of Example 4.1). The rounds are inherently sequential
	// (each extends the previous counterexample), but the inner RCDP
	// calls fan their disjunct searches out on the shared pool.
	if ok, err := v.SatisfiedGate(base, dm, gv.gateOf()); err == nil && ok {
		known := make(map[relation.Value]bool)
		for _, val := range NewUniverse(base, dm, q, v, 0).Consts {
			known[val] = true
		}
		cur := base.Clone()
		for round := 0; round < 64; round++ {
			tried++
			r, err := cfg.Checker.rcdp(q, cur, dm, v, wp, gv)
			if err != nil {
				if isGovernErr(err) && err != ErrBudgetExceeded {
					return nil, tried, err
				}
				break
			}
			if r.Complete {
				return cur, tried, nil
			}
			diverges := false
			for _, val := range r.NewTuple {
				if !known[val] {
					diverges = true
					break
				}
			}
			if diverges {
				break
			}
			cur.UnionInto(r.Extension)
		}
	}
	if wp != nil {
		w, n, err := cfg.deepenParallel(wp, q, dm, v, schemas, pool, base, tried, gv)
		return w, n, err
	}
	// Iterative deepening over fragment combinations.
	var rec func(start int, acc *relation.Database, depth int) (*relation.Database, error)
	rec = func(start int, acc *relation.Database, depth int) (*relation.Database, error) {
		if depth == 0 {
			return nil, nil
		}
		for i := start; i < len(pool); i++ {
			if tried >= cfg.MaxCandidates {
				return nil, nil
			}
			cand := acc.Union(pool[i])
			if w, err := check(cand); err != nil || w != nil {
				return w, err
			}
			if w, err := rec(i+1, cand, depth-1); err != nil || w != nil {
				return w, err
			}
		}
		return nil, nil
	}
	for depth := 1; depth <= cfg.MaxSetSize; depth++ {
		w, err := rec(0, base, depth)
		if err != nil || w != nil {
			return w, tried, err
		}
		if tried >= cfg.MaxCandidates {
			break
		}
	}
	return nil, tried, nil
}

// deepenParallel is the iterative-deepening stage of searchWitness on a
// worker pool. Candidates are generated on the coordinating goroutine
// in exactly the sequential pre-order, tagged with their enumeration
// index, and checked in chunks; within a chunk a raceCtl resolves to
// the smallest index that confirms, so the returned witness — and the
// reported candidate count, which replays the sequential accounting
// "everything up to and including the winner" — match Workers=1.
func (cfg QPChecker) deepenParallel(wp *workerPool, q qlang.Query, dm *relation.Database, v *cc.Set,
	schemas map[string]*relation.Schema, pool []*relation.Database, base *relation.Database, pretried int,
	gv *governor) (*relation.Database, int, error) {
	limit := cfg.MaxCandidates - pretried // checks the sequential engine would still allow
	if limit <= 0 {
		return nil, pretried, nil
	}
	warmShared(dm)
	chunkSize := cfg.Checker.effectiveWorkers() * 4
	if chunkSize < 4 {
		chunkSize = 4
	}
	var (
		winner    *relation.Database
		winnerIdx = -1
		chunk     []*relation.Database
		idx       int // global enumeration index of the next candidate
	)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		ctl := newRaceCtl()
		baseIdx := idx - len(chunk)
		tasks := make([]func(), len(chunk))
		for i, cand := range chunk {
			i, cand := i, cand
			tasks[i] = func() {
				key := int64(baseIdx + i)
				if ctl.cancelled(key) {
					return
				}
				ok, err := v.SatisfiedGate(cand, dm, gv.gateOf())
				if err != nil {
					ctl.fail(err)
					return
				}
				if !ok {
					return
				}
				r, err := cfg.Checker.rcdp(q, cand, dm, v, wp, gv)
				if err != nil {
					if err != ErrBudgetExceeded { // valuation budget skips the candidate
						ctl.fail(err)
					}
					return
				}
				if r.Complete {
					ctl.claim(key, cand)
				}
			}
		}
		wp.run(tasks)
		chunk = chunk[:0]
		val, key, err := ctl.result()
		if err != nil {
			return err
		}
		if val != nil {
			winner = val.(*relation.Database)
			winnerIdx = int(key)
		}
		return nil
	}
	var gen func(start int, acc *relation.Database, depth int) error
	gen = func(start int, acc *relation.Database, depth int) error {
		if depth == 0 {
			return nil
		}
		for i := start; i < len(pool); i++ {
			if idx >= limit {
				return errStop
			}
			cand := acc.Union(pool[i])
			chunk = append(chunk, cand)
			idx++
			if len(chunk) >= chunkSize {
				if err := flush(); err != nil {
					return err
				}
				if winner != nil {
					return errStop
				}
			}
			if err := gen(i+1, cand, depth-1); err != nil {
				return err
			}
		}
		return nil
	}
	for depth := 1; depth <= cfg.MaxSetSize; depth++ {
		if err := gen(0, base, depth); err == errStop {
			break
		} else if err != nil {
			return nil, pretried + idx, err
		}
	}
	if err := flush(); err != nil {
		return nil, pretried + idx, err
	}
	if winner != nil {
		return winner, pretried + winnerIdx + 1, nil
	}
	return nil, pretried + idx, nil
}

// buildFragmentPool assembles the candidate fragments: instantiations
// of nonempty template subsets of every constraint tableau (partial
// valuations of V) and full valuations of every query disjunct tableau,
// all over Adom. base holds the constant templates of T_Q (tuple
// templates without variables), which the Proposition 4.2 construction
// always includes.
func (cfg QPChecker) buildFragmentPool(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, gv *governor) (pool []*relation.Database, base *relation.Database, err error) {
	qTabs := q.Tableaux()
	var vTabs []*cq.Tableau
	if v != nil {
		for _, c := range v.Constraints {
			vTabs = append(vTabs, c.Q.Tableaux()...)
		}
	}
	nFresh := tableauVarCount(qTabs)
	if n := tableauVarCount(vTabs); n > nFresh {
		nFresh = n
	}
	u := NewUniverse(nil, dm, q, v, nFresh)

	base = emptyDatabase(schemas)
	for _, t := range qTabs {
		for _, tpl := range t.Templates {
			if tup, ok := tpl.Ground(query.Binding{}); ok {
				if err := base.Add(tpl.Rel, tup); err != nil {
					return nil, nil, err
				}
			}
		}
	}

	addFragment := func(db *relation.Database) {
		if len(pool) < cfg.MaxPool && !db.IsEmpty() {
			pool = append(pool, db)
		}
	}

	// Partial valuations of V: every nonempty subset of each constraint
	// tableau's templates, instantiated over Adom.
	for _, t := range vTabs {
		n := len(t.Templates)
		if n == 0 || n > 16 {
			continue
		}
		for mask := 1; mask < (1 << n); mask++ {
			sub := subsetTableau(t, mask)
			if len(pool) >= cfg.MaxPool {
				break
			}
			if err := enumerateInstantiations(u, q, v, dm, sub, schemas, gv, addFragment); err != nil {
				return nil, nil, err
			}
		}
	}
	// Full valuations of the query tableaux (the D⁺ shape).
	for _, t := range qTabs {
		if len(pool) >= cfg.MaxPool {
			break
		}
		if err := enumerateInstantiations(u, q, v, dm, t, schemas, gv, addFragment); err != nil {
			return nil, nil, err
		}
	}
	return pool, base, nil
}

// subsetTableau builds a tableau containing the templates of t selected
// by the bit mask; inequalities are restricted to those whose variables
// all occur in the selected templates.
func subsetTableau(t *cq.Tableau, mask int) *cq.Tableau {
	var atoms []query.RelAtom
	kept := make(map[string]bool)
	for i, tpl := range t.Templates {
		if mask&(1<<i) != 0 {
			atoms = append(atoms, tpl)
			for _, a := range tpl.Args {
				if a.IsVar {
					kept[a.Name] = true
				}
			}
		}
	}
	var conds []query.EqAtom
	for _, d := range t.Diseqs {
		okL := !d.L.IsVar || kept[d.L.Name]
		okR := !d.R.IsVar || kept[d.R.Name]
		if okL && okR {
			conds = append(conds, d)
		}
	}
	sub, err := cq.BuildTableau(cq.New(t.Query.Name+"~sub", nil, atoms, conds...))
	if err != nil {
		return nil
	}
	return sub
}

// enumerateInstantiations enumerates valid valuations of the tableau
// over Adom and emits each instantiation μ(T) as a database fragment.
// The exact search reductions (IND pruning, inert-variable collapsing
// and relevant-value restriction) keep the pool focused on fragments
// that can participate in a partially closed witness.
func enumerateInstantiations(u *Universe, q qlang.Query, v *cc.Set, dm *relation.Database, t *cq.Tableau, schemas map[string]*relation.Schema, gv *governor, emit func(*relation.Database)) error {
	if t == nil {
		return nil
	}
	search, ok := newValuationSearch(u, t, schemas)
	if !ok {
		return nil
	}
	search.pruner = newINDPruner(t, v, dm)
	search.applyCollapse(v)
	search.applyRelevant(q, v, nil, dm)
	search.gate = gv.gateOf()
	return search.run(func(b query.Binding) bool {
		db, err := t.Apply(b, schemas)
		if err != nil {
			return true
		}
		emit(db)
		return true
	})
}
