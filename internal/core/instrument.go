package core

import (
	"time"

	"repro/internal/obs"
)

// checkObs is the observability span of one governed check: the Ctx
// entry points open it on entry and close it with the verdict, wiring
// the check-level counters, the latency histogram and the
// check_start/check_done trace events. All per-row and per-valuation
// accounting stays in the batched engine instruments (see
// internal/obs); this type only touches atomics twice per check.
type checkObs struct {
	kind  string
	start time.Time
}

// startCheck opens the span: counts the check by kind, emits the
// check_start trace event and starts the latency clock.
func startCheck(kind string, workers int) checkObs {
	obs.Checks.Inc(kind)
	if obs.Tracing() {
		obs.Emit("check_start", map[string]any{"check": kind, "workers": workers})
	}
	return checkObs{kind: kind, start: time.Now()}
}

// done closes the span with the final verdict label ("complete",
// "incomplete", "unknown", "yes", "no" or "error"), the exhaustion
// reason (ReasonNone when decisive) and the check's consumption stats.
func (c checkObs) done(verdict string, reason Reason, stats BudgetStats) {
	elapsed := time.Since(c.start)
	obs.CheckSeconds.Observe(elapsed.Seconds())
	obs.Verdicts.Inc(verdict)
	if reason != ReasonNone {
		obs.Exhaustions.Inc(reason.String())
	}
	if tr := obs.CurrentTracer(); tr != nil {
		f := map[string]any{
			"check":      c.kind,
			"verdict":    verdict,
			"valuations": stats.Valuations,
			"join_rows":  stats.JoinRows,
			"tuples":     stats.Tuples,
		}
		if reason != ReasonNone {
			f["reason"] = reason.String()
		}
		if tr.Timings {
			f["elapsed_ns"] = elapsed.Nanoseconds()
		}
		tr.Emit("check_done", f)
	}
}

// noteDisjunct records one disjunct search's work: the global valuation
// counter plus a disjunct_done trace event. witness reports whether the
// disjunct produced the counterexample (always false on governed
// aborts, whose outcome the enclosing check_done event carries).
func noteDisjunct(disjunct, valuations int, witness bool) {
	obs.Valuations.Add(int64(valuations))
	if obs.Tracing() {
		obs.Emit("disjunct_done", map[string]any{
			"disjunct": disjunct, "valuations": valuations, "witness": witness,
		})
	}
}
