package core

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

func v(n string) query.Term { return query.Var(n) }
func c(s string) query.Term { return query.C(s) }

// suptSchema returns the Supt(eid, dept, cid) schema of Example 1.1.
func suptSchema() *relation.Schema {
	return relation.NewSchema("Supt",
		relation.Attr("eid"), relation.Attr("dept"), relation.Attr("cid"))
}

func emptyMaster() *relation.Database {
	return relation.NewDatabase(relation.NewSchema("Rm0", relation.Attr("x")))
}

// q2 is query Q₂ of Example 1.1: all customers supported by e0.
func q2() qlang.Query {
	return qlang.FromCQ(cq.New("Q2", []query.Term{v("c")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		query.Eq(v("e"), c("e0"))))
}

// fdSupt builds the FD eid → dept, cid on Supt as CQ containment
// constraints (the set Φ₂ of Example 3.1).
func fdSupt() *cc.Set {
	fd := &cc.FD{Name: "fd2", Rel: "Supt", From: []int{0}, To: []int{1, 2}}
	return cc.NewSet(fd.ToCCs(3)...)
}

// fdDeptOnly builds the FD eid → dept (the φ₃ of Example 4.1).
func fdDeptOnly() *cc.Set {
	fd := &cc.FD{Name: "fd3", Rel: "Supt", From: []int{0}, To: []int{1}}
	return cc.NewSet(fd.ToCCs(3)...)
}

// TestExample31AtMostK reproduces Example 3.1, first part: with the CC
// φ₁ ("each employee supports at most k customers"), an instance D₁ in
// which Q₂ returns k distinct customers is complete — the k answers
// block any further addition — while fewer than k answers leave it
// incomplete.
func TestExample31AtMostK(t *testing.T) {
	k := 3
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, k))
	dm := emptyMaster()

	d1 := relation.NewDatabase(suptSchema())
	d1.MustAdd("Supt", "e0", "s", "c1")
	d1.MustAdd("Supt", "e0", "s", "c2")
	d1.MustAdd("Supt", "e0", "s", "c3")

	r, err := RCDP(q2(), d1, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("D1 with k=%d answers must be complete; counterexample %v", k, r.Extension)
	}

	d2 := relation.NewDatabase(suptSchema())
	d2.MustAdd("Supt", "e0", "s", "c1")
	r, err = RCDP(q2(), d2, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("D with 1 < k answers must be incomplete")
	}
	// The witness must be a genuine counterexample.
	assertCounterexample(t, q2(), d2, dm, vset, r)
}

// TestExample31FD reproduces Example 3.1, second part: with the FD
// eid → dept, cid (as CCs Φ₂), an instance with no e0 tuple is not
// complete for Q₂ — one can add a tuple yielding a nonempty answer —
// while an instance containing an e0 tuple is complete.
func TestExample31FD(t *testing.T) {
	vset := fdSupt()
	dm := emptyMaster()

	d2 := relation.NewDatabase(suptSchema())
	d2.MustAdd("Supt", "e1", "s", "c1")
	r, err := RCDP(q2(), d2, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("instance without e0 tuples must be incomplete for Q2")
	}
	assertCounterexample(t, q2(), d2, dm, vset, r)

	dPlus := relation.NewDatabase(suptSchema())
	dPlus.MustAdd("Supt", "e0", "d0", "c0")
	r, err = RCDP(q2(), dPlus, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("D+ = {(e0,d0,c0)} must be complete for Q2 under eid→dept,cid; got counterexample %v", r.Extension)
	}
}

// assertCounterexample verifies an incompleteness witness end-to-end:
// the extension is partially closed and genuinely changes the answer.
func assertCounterexample(t *testing.T, q qlang.Query, d, dm *relation.Database, vset *cc.Set, r *RCDPResult) {
	t.Helper()
	if r.Extension == nil {
		t.Fatal("incomplete result without extension witness")
	}
	union := d.Union(r.Extension)
	if ok, err := vset.Satisfied(union, dm); err != nil || !ok {
		t.Fatalf("witness extension not partially closed: %v %v", ok, err)
	}
	before, _ := q.Eval(d)
	after, _ := q.Eval(union)
	if len(after) <= len(before) {
		t.Fatalf("witness extension does not change the answer: %v vs %v", before, after)
	}
	if r.NewTuple == nil {
		t.Fatal("missing NewTuple")
	}
	found := false
	for _, tu := range after {
		if tu.Equal(r.NewTuple) {
			found = true
		}
	}
	for _, tu := range before {
		if tu.Equal(r.NewTuple) {
			t.Fatal("NewTuple already answered before extension")
		}
	}
	if !found {
		t.Fatalf("NewTuple %v not in extended answer", r.NewTuple)
	}
}

// TestExample41Q4 reproduces Example 4.1, first part: query Q₄
// (Supt tuples with eid = e0 and dept = d0) is relatively complete with
// respect to the FD eid → dept (φ₃): the database D⁻ = {(e0, d', c)}
// with d' ≠ d0 blocks every potential answer.
func TestExample41Q4(t *testing.T) {
	q4 := qlang.FromCQ(cq.New("Q4", []query.Term{v("e"), v("d"), v("c")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		query.Eq(v("e"), c("e0")), query.Eq(v("d"), c("d0"))))
	vset := fdDeptOnly()
	dm := emptyMaster()
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}

	// First verify the paper's D⁻ directly via RCDP.
	dMinus := relation.NewDatabase(suptSchema())
	dMinus.MustAdd("Supt", "e0", "dOther", "c")
	r, err := RCDP(q4, dMinus, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("D- must be complete for Q4; counterexample %v", r.Extension)
	}

	// Then check that RCQP discovers a witness on its own.
	res, err := RCQP(q4, dm, vset, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Yes {
		t.Fatalf("RCQP(Q4, φ3) = %v (%s), want yes", res.Status, res.Detail)
	}
	if res.Witness == nil {
		t.Fatal("expected a constructed witness")
	}
	rw, err := RCDP(q4, res.Witness, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Complete {
		t.Fatal("returned witness is not actually complete")
	}
}

// TestExample41Q2 reproduces Example 4.1, second part: Q₂ is relatively
// complete with respect to the FD eid → dept, cid (Φ₂) — witness
// D⁺ = {(e0, d0, c0)} — but not with respect to eid → dept alone
// (where our certificate search cannot find any witness; the exact
// answer is "no", which is beyond the search's refutation power, so it
// must report unknown rather than yes).
func TestExample41Q2(t *testing.T) {
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}
	dm := emptyMaster()

	res, err := RCQP(q2(), dm, fdSupt(), schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Yes || res.Witness == nil {
		t.Fatalf("RCQP(Q2, Φ2) = %v, want yes with witness", res.Status)
	}
	rw, err := RCDP(q2(), res.Witness, dm, fdSupt())
	if err != nil || !rw.Complete {
		t.Fatalf("witness not complete: %v %v", rw, err)
	}

	res, err = RCQP(q2(), dm, fdDeptOnly(), schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Yes {
		t.Fatalf("RCQP(Q2, φ3) must not be yes (cid is unbounded): %+v", res)
	}
}

// TestRCQPEmptyV reproduces Proposition 4.2's V = ∅ case exactly: with
// no constraints, a query is relatively complete iff all its output
// variables range over finite domains (E1).
func TestRCQPEmptyV(t *testing.T) {
	finSchema := relation.NewSchema("F",
		relation.FinAttr("p", "0", "1"), relation.Attr("x"))
	schemas := map[string]*relation.Schema{"F": finSchema}
	dm := emptyMaster()

	finQ := qlang.FromCQ(cq.New("Qf", []query.Term{v("p")},
		[]query.RelAtom{query.Atom("F", v("p"), v("x"))}))
	res, err := RCQP(finQ, dm, cc.NewSet(), schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Yes {
		t.Fatalf("finite-head query with V=∅: %+v", res)
	}

	infQ := qlang.FromCQ(cq.New("Qi", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("F", v("p"), v("x"))}))
	res, err = RCQP(infQ, dm, cc.NewSet(), schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != No {
		t.Fatalf("infinite-head query with V=∅ must be no: %+v", res)
	}
}

// TestRCQPINDs exercises the Proposition 4.3 path: with V an IND
// binding Supt.cid to master data, a query returning cids is relatively
// complete; dropping the IND makes it not relatively complete.
func TestRCQPINDs(t *testing.T) {
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}
	dcust := relation.NewSchema("DCust", relation.Attr("cid"))
	dm := relation.NewDatabase(dcust)
	dm.MustAdd("DCust", "c1")
	dm.MustAdd("DCust", "c2")

	qc := qlang.FromCQ(cq.New("Qc", []query.Term{v("c")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		query.Eq(v("e"), c("e0"))))

	withIND := cc.NewSet(cc.NewIND("i1", "Supt", []int{2}, 3, cc.Proj("DCust", 0)))
	res, err := RCQP(qc, dm, withIND, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Yes {
		t.Fatalf("cid-bounded query must be relatively complete: %+v", res)
	}
	if res.Witness != nil {
		rw, err := RCDP(qc, res.Witness, dm, withIND)
		if err != nil || !rw.Complete {
			t.Fatalf("IND witness not complete: %+v %v", rw, err)
		}
	}

	// Query projecting the unbounded dept column is not relatively
	// complete.
	qd := qlang.FromCQ(cq.New("Qd", []query.Term{v("d")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))}))
	res, err = RCQP(qd, dm, withIND, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != No {
		t.Fatalf("dept-projecting query must be no: %+v", res)
	}
}

// TestRCQPINDsBlockedDisjunct checks the "no valid valuation" escape of
// Proposition 4.3: an unbounded query whose every valuation violates V
// is still relatively complete (with the empty-ish database).
func TestRCQPINDsBlockedDisjunct(t *testing.T) {
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}
	dm := relation.NewDatabase(relation.NewSchema("DCust", relation.Attr("cid")))
	// π_{eid}(Supt) ⊆ π_cid(DCust) with empty DCust: no Supt tuple may
	// ever exist.
	vset := cc.NewSet(cc.NewIND("block", "Supt", []int{0}, 3, cc.Proj("DCust", 0)))
	res, err := RCQP(q2(), dm, vset, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Yes {
		t.Fatalf("fully blocked query must be yes: %+v", res)
	}
}

// TestRCDPRejectsNonMonotone checks the Theorem 3.1 guard rails.
func TestRCDPRejectsNonMonotone(t *testing.T) {
	d := relation.NewDatabase(suptSchema())
	dm := emptyMaster()
	fpq := qlang.FromFP(datalogTC())
	if _, err := RCDP(fpq, d, dm, cc.NewSet()); err == nil {
		t.Fatal("FP query must be rejected by RCDP")
	}
	if _, err := RCQP(fpq, dm, cc.NewSet(), map[string]*relation.Schema{"Supt": suptSchema()}); err == nil {
		t.Fatal("FP query must be rejected by RCQP")
	}
}

// TestRCDPNotPartiallyClosed checks the precondition of RCDP.
func TestRCDPNotPartiallyClosed(t *testing.T) {
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "a", "c1")
	d.MustAdd("Supt", "e0", "b", "c1") // violates eid→dept
	dm := emptyMaster()
	if _, err := RCDP(q2(), d, dm, fdDeptOnly()); err == nil {
		t.Fatal("non-partially-closed D must be rejected")
	}
}

// TestMakeComplete extends an incomplete database to completeness and
// verifies the result (Section 2.3(2) guidance).
func TestMakeComplete(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 2))
	dm := emptyMaster()
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")

	done, rounds, err := MakeComplete(q2(), d, dm, vset, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("expected at least one extension round")
	}
	r, err := RCDP(q2(), done, dm, vset)
	if err != nil || !r.Complete {
		t.Fatalf("MakeComplete result not complete: %v %v", r, err)
	}
	if !d.SubsetOf(done) {
		t.Fatal("MakeComplete must extend the original database")
	}
}

// TestRCDPUnsatisfiableQuery: an unsatisfiable query is trivially
// complete on any partially closed database.
func TestRCDPUnsatisfiableQuery(t *testing.T) {
	d := relation.NewDatabase(suptSchema())
	dm := emptyMaster()
	q := qlang.FromCQ(cq.New("Q", []query.Term{v("e")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
		query.Eq(v("e"), c("a")), query.Eq(v("e"), c("b"))))
	r, err := RCDP(q, d, dm, cc.NewSet())
	if err != nil || !r.Complete {
		t.Fatalf("unsatisfiable query must be complete: %v %v", r, err)
	}
}

// TestRCDPUCQ checks per-disjunct counterexample search on a union
// query: the first disjunct is blocked by an at-most-1 constraint, the
// second stays open.
func TestRCDPUCQ(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("k1", "Supt", 3, []int{0}, 2, 1))
	dm := emptyMaster()
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")

	u := cq.Union("U",
		cq.New("U1", []query.Term{v("c")},
			[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
			query.Eq(v("e"), c("e0"))),
		cq.New("U2", []query.Term{v("c")},
			[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
			query.Eq(v("e"), c("e1"))),
	)
	r, err := RCDP(qlang.FromUCQ(u), d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complete {
		t.Fatal("second disjunct (e1) is open: must be incomplete")
	}
	if r.Disjunct != 1 {
		t.Fatalf("counterexample should come from disjunct 1, got %d", r.Disjunct)
	}
	assertCounterexample(t, qlang.FromUCQ(u), d, dm, vset, r)
}

// TestRCDPEFO exercises the ∃FO⁺ path through DNF expansion.
func TestRCDPEFO(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("k1", "Supt", 3, []int{0}, 2, 1))
	dm := emptyMaster()
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")
	d.MustAdd("Supt", "e1", "s", "c2")

	body := cq.Or(
		cq.And(cq.FAtom("Supt", v("e"), v("d"), v("c")), cq.FEq(v("e"), c("e0"))),
		cq.And(cq.FAtom("Supt", v("e"), v("d"), v("c")), cq.FEq(v("e"), c("e1"))),
	)
	q := qlang.FromEFO(cq.NewEFO("Qe", []query.Term{v("c")}, body))
	r, err := RCDP(q, d, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("both disjuncts are blocked at k=1: %v", r.Extension)
	}
}

// TestNaiveAgreesWithPruned: the ablation mode must compute the same
// verdicts.
func TestNaiveAgreesWithPruned(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 2))
	dm := emptyMaster()
	for _, tuples := range [][][3]string{
		{{"e0", "s", "c1"}},
		{{"e0", "s", "c1"}, {"e0", "s", "c2"}},
	} {
		d := relation.NewDatabase(suptSchema())
		for _, tu := range tuples {
			d.MustAdd("Supt", tu[0], tu[1], tu[2])
		}
		fast, err := RCDP(q2(), d, dm, vset)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := (&Checker{Naive: true}).RCDP(q2(), d, dm, vset)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Complete != slow.Complete {
			t.Fatalf("naive/pruned disagree on %v: %v vs %v", tuples, fast.Complete, slow.Complete)
		}
		if slow.Valuations < fast.Valuations {
			t.Fatalf("naive should visit at least as many valuations: %d < %d", slow.Valuations, fast.Valuations)
		}
	}
}

// TestBudget: the valuation budget aborts cleanly. The at-most-k
// constraint makes the database complete, so the search must exhaust
// every candidate valuation and trip the one-valuation budget.
func TestBudget(t *testing.T) {
	k := 5
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, k))
	d := relation.NewDatabase(suptSchema())
	for i := 0; i < k; i++ {
		d.MustAdd("Supt", "e0", "s", string(rune('a'+i)))
	}
	dm := emptyMaster()
	_, err := (&Checker{MaxValuations: 1}).RCDP(q2(), d, dm, vset)
	if err != ErrBudgetExceeded {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}
