package core

import (
	"context"
	"math"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Quantitative completeness. The RCDP verdict is boolean — one valid
// counterexample valuation makes D Incomplete however many candidate
// valuations are already covered — which makes verdicts useless for
// ranking ("which of these hundred databases is closest to complete?")
// and monitoring ("is the gap shrinking?"). Following the counting
// perspective of Arenas/Barceló/Monet on incomplete databases, DegreeCtx
// turns the same valuation search into a measure: enumerate the
// candidate valuations of every disjunct tableau and report the fraction
// that are NOT counterexamples — valuations whose head tuple is already
// answered, or whose extension violates V (so no legal world realizes
// it). A database complete for Q covers every candidate valuation, so
// Degree = 1.0 exactly characterizes the Complete verdict on exhaustive
// runs; an Incomplete database scores the covered fraction in [0, 1).
//
// The enumeration is governed by the same core.Budget as the decision
// procedures. When the budget stops the search early the result is a
// deterministic prefix sample of the candidate space (the search order
// is fixed), and the reported degree carries a Wilson 95% confidence
// interval for the covered proportion; exhaustive runs report the exact
// fraction with a collapsed interval. Sampling always runs the
// sequential engine regardless of Checker.Workers so the sampled prefix
// — and therefore the estimate — is scheduling-independent.

// DegreeResult is the outcome of a quantitative completeness check.
type DegreeResult struct {
	// Verdict is the three-valued outcome implied by the enumeration:
	// Complete when an exhaustive run found no counterexample,
	// Incomplete as soon as one counterexample valuation was seen
	// (exhaustive or not), Unknown when a budget stopped the sampling
	// before any counterexample appeared.
	Verdict Verdict
	// Degree is the covered fraction of inspected candidate valuations
	// in [0, 1]: 1.0 exactly when no counterexample was seen (and, on
	// exact runs, iff D is Complete for Q). It is clamped strictly below
	// 1.0 whenever Counterexamples > 0, so the degree=1.0 ⇔ Complete law
	// survives floating-point rounding on huge samples.
	Degree float64
	// Lo and Hi bound the covered proportion with a Wilson 95%
	// confidence interval on sampled runs; on exact runs both equal
	// Degree.
	Lo, Hi float64
	// Exact reports that the enumeration exhausted the candidate space:
	// Degree is then the true covered fraction, not an estimate.
	Exact bool
	// Candidates is the number of complete candidate valuations
	// inspected; Counterexamples is how many of them witnessed
	// incompleteness (valid extension, new answer).
	Candidates      int
	Counterexamples int
	// Reason names the governance dimension that ended a sampled run
	// (ReasonNone on exact runs).
	Reason Reason
	// Stats reports the resources consumed.
	Stats BudgetStats
}

// DegreeCtx measures the degree of completeness with the default
// checker. See Checker.DegreeCtx.
func DegreeCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set) (*DegreeResult, error) {
	return (&Checker{}).DegreeCtx(ctx, q, d, dm, v)
}

// DegreeCtx measures how complete D is for Q relative to (Dm, V): the
// fraction of candidate valuations (over all disjunct tableaux, values
// in Adom) that are covered — already answered, or illegal under V.
// The same preconditions as RCDPCtx apply (monotone Q and V, D
// partially closed); genuine failures are errors, while governance
// stops degrade the result to a prefix-sample estimate with a
// confidence interval rather than erroring. The enumeration itself is
// sequential for deterministic sampling; ck.Budget governs it
// (MaxValuations caps inspected valuations per disjunct).
func (ck *Checker) DegreeCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set) (*DegreeResult, error) {
	co := startCheck("degree", 1)
	gv := newGovernor(ctx, ck.Budget)
	defer gv.close()
	res, err := ck.degree(q, d, dm, v, gv)
	if err != nil {
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	co.done(res.Verdict.String(), res.Reason, res.Stats)
	mode := "exact"
	if !res.Exact {
		mode = "sampled"
	}
	obs.DegreeChecks.Inc(mode)
	obs.DegreeCandidates.Add(int64(res.Candidates))
	obs.DegreeCounterexamples.Add(int64(res.Counterexamples))
	return res, nil
}

// degree runs the counting enumeration under an optional governor.
func (ck *Checker) degree(q qlang.Query, d, dm *relation.Database, v *cc.Set, gv *governor) (*DegreeResult, error) {
	gate := gv.gateOf()
	res := &DegreeResult{Exact: true}
	visited := 0
	defer func() { res.Stats = gv.stats(visited) }()
	prep, err := ck.prepareRCDP(q, d, dm, v, gate)
	if err != nil {
		if r := reasonOf(err); r != ReasonNone {
			// Governance ended the run during setup (constraint check or
			// Q(D) evaluation): no candidates were inspected, so the
			// estimate is vacuous but the call is not a failure.
			res.Exact = false
			res.Reason = r
			res.finish()
			return res, nil
		}
		return nil, err
	}
	if prep == nil {
		// Unsatisfiable query: trivially complete, vacuously covered.
		res.finish()
		return res, nil
	}
	for di, t := range prep.tableaux {
		search := prep.searches[di]
		if search == nil {
			continue
		}
		var cbErr error
		err := search.run(func(b query.Binding) bool {
			r, err := rcdpWitness(t, di, b, prep.schemas, prep.answerSet, d, dm, v, gate)
			if err != nil {
				cbErr = err
				return false
			}
			res.Candidates++
			if r != nil {
				res.Counterexamples++
				// The witness extension is never surfaced — counting
				// continues past it — so recycle its storage.
				t.ReleaseApplied(r.Extension)
			}
			return true
		})
		visited += search.visited
		noteDisjunct(di, search.visited, false)
		if cbErr == nil && err == nil {
			continue
		}
		stop := cbErr
		if stop == nil {
			stop = err
		}
		r := reasonOf(stop)
		if r == ReasonNone {
			return nil, stop
		}
		res.Exact = false
		res.Reason = r
		if stop == ErrBudgetExceeded {
			// The per-disjunct valuation cap: later disjuncts still
			// contribute their own sampled prefixes.
			continue
		}
		// Cross-cutting stop (cancellation, deadline, row/tuple budget):
		// the gate is tripped for good, so further disjuncts cannot run.
		break
	}
	res.finish()
	return res, nil
}

// finish derives Verdict, Degree and the confidence interval from the
// raw counts.
func (r *DegreeResult) finish() {
	switch {
	case r.Counterexamples > 0:
		r.Verdict = VerdictIncomplete
	case r.Exact:
		r.Verdict = VerdictComplete
	default:
		r.Verdict = VerdictUnknown
	}
	if r.Candidates == 0 {
		r.Degree, r.Lo, r.Hi = 1, 1, 1
		if !r.Exact {
			// Sampling stopped before inspecting anything: no evidence
			// at all, so the interval is vacuous.
			r.Lo = 0
		}
		return
	}
	covered := r.Candidates - r.Counterexamples
	r.Degree = float64(covered) / float64(r.Candidates)
	if r.Counterexamples > 0 && r.Degree >= 1 {
		// A handful of counterexamples in an astronomically large sample
		// must not round the degree up onto the Complete anchor.
		r.Degree = math.Nextafter(1, 0)
	}
	if r.Exact {
		r.Lo, r.Hi = r.Degree, r.Degree
		return
	}
	r.Lo, r.Hi = wilson(covered, r.Candidates)
	if r.Degree < r.Lo {
		r.Lo = r.Degree
	}
	if r.Degree > r.Hi {
		r.Hi = r.Degree
	}
}

// wilson returns the Wilson score 95% confidence interval for a
// proportion of k successes in n trials.
func wilson(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // Φ⁻¹(0.975)
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	margin := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
