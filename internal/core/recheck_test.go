package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/mdm"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// The incremental recheck's contract is oracle-shaped: whatever mix of
// reuse and fallback RecheckDeltaCtx picks, the result must be
// bit-identical (verdict, reason, witness bytes, enumeration position,
// and at Workers=1 the valuation count) to a cold RCDP run over freshly
// rebuilt databases and a fresh constraint set. These tests pin that
// contract on randomized mutation scripts across the storage-mode ×
// join-engine × worker grid, and pin the gate itself: it must fire on
// invisible master inserts and refuse everything else.

// The cold oracle rebuilds its inputs with the rebuildDB helper of
// intern_ablation_test.go: fresh storage, live enumeration order
// (Tuples() reflects insertion order with swap-deletes, and rebuilding
// in that order reproduces it), no warm indexes, memos or caches.

// sameRecheck extends sameRCDP with the three-valued fields.
func sameRecheck(got, want *RCDPResult) bool {
	return got.Verdict == want.Verdict && got.Reason == want.Reason && sameRCDP(got, want)
}

// randomCRMDelta draws one mutation batch against the CRM scenario:
// master- or database-targeted, mixing pure duplicates, vocabulary-
// preserving column swaps (gate candidates when master-side), fresh
// values (gate must refuse) and occasional deletes of present rows.
func randomCRMDelta(rng *rand.Rand, d, dm *relation.Database) *Delta {
	dl := &Delta{
		Master:  rng.Intn(2) == 0,
		Inserts: map[string][]relation.Tuple{},
		Deletes: map[string][]relation.Tuple{},
	}
	target := d
	if dl.Master {
		target = dm
	}
	rels := target.Relations()
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		rel := rels[rng.Intn(len(rels))]
		ts := target.Instance(rel).Tuples()
		if len(ts) == 0 {
			continue
		}
		base := ts[rng.Intn(len(ts))].Clone()
		switch rng.Intn(3) {
		case 0: // pure duplicate
		case 1: // swap one column to another row's value in that column
			base[rng.Intn(len(base))] = ts[rng.Intn(len(ts))][rng.Intn(len(base))]
		case 2: // brand-new value: extensionally visible
			base[rng.Intn(len(base))] = relation.Value(fmt.Sprintf("fresh%d", rng.Intn(40)))
		}
		dl.Inserts[rel] = append(dl.Inserts[rel], base)
	}
	if rng.Intn(4) == 0 {
		rel := rels[rng.Intn(len(rels))]
		if ts := target.Instance(rel).Tuples(); len(ts) > 0 {
			dl.Deletes[rel] = append(dl.Deletes[rel], ts[rng.Intn(len(ts))].Clone())
		}
	}
	return dl
}

// TestRecheckDeltaMatchesColdCRM runs randomized mutation scripts over
// the generated CRM scenario and cross-validates every incremental
// answer against a cold rerun, across indexed/noindex join engines,
// interned/legacy storage and Workers 1/8.
func TestRecheckDeltaMatchesColdCRM(t *testing.T) {
	restoreIndexJoin(t)
	defer relation.SetInterning(relation.SetInterning(true))
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 14
	cfg.Employees = 3
	cfg.Completeness = 0.8

	for _, interned := range []bool{true, false} {
		for _, indexed := range []bool{true, false} {
			for _, workers := range []int{1, 8} {
				relation.SetInterning(interned)
				cq.SetIndexJoin(indexed)
				name := fmt.Sprintf("interned=%v indexed=%v workers=%d", interned, indexed, workers)
				rng := rand.New(rand.NewSource(97))
				s := mdm.Generate(cfg)
				d, dm := s.D, s.Dm
				v := mdmSet(cfg)
				q := mdm.Q0("908")
				ck := &Checker{Workers: workers}

				prev, err := ck.RCDPCtx(context.Background(), q, d, dm, v)
				if err != nil {
					t.Fatalf("%s: initial check: %v", name, err)
				}
				reused, cold := 0, 0
				for step := 0; step < 20; step++ {
					dl := randomCRMDelta(rng, d, dm)
					got, didReuse, gerr := ck.RecheckDeltaCtx(context.Background(), q, d, dm, v, prev, dl)

					// Cold oracle: fresh databases, fresh constraint set,
					// nothing warm, over the post-batch state.
					cd, cdm := rebuildDB(t, d), rebuildDB(t, dm)
					want, werr := ck.RCDPCtx(context.Background(), q, cd, cdm, mdmSet(cfg))

					if (gerr == nil) != (werr == nil) {
						t.Fatalf("%s step %d: incremental err=%v cold err=%v\ndelta: %+v",
							name, step, gerr, werr, dl)
					}
					if gerr != nil {
						prev = nil // no valid result for the mutated state
						continue
					}
					if !sameRecheck(got, want) {
						t.Fatalf("%s step %d (reused=%v): incremental and cold disagree\ndelta: %+v\nincremental: %+v\ncold: %+v",
							name, step, didReuse, dl, got, want)
					}
					if workers == 1 && got.Valuations != want.Valuations {
						t.Fatalf("%s step %d (reused=%v): valuation counts diverge: incremental %d cold %d",
							name, step, didReuse, got.Valuations, want.Valuations)
					}
					if didReuse {
						reused++
					} else {
						cold++
					}
					prev = got
				}
				// The fixed seed makes the script deterministic: both paths
				// must actually be exercised.
				if reused == 0 || cold == 0 {
					t.Fatalf("%s: script exercised reuse %d times, cold %d times", name, reused, cold)
				}
			}
		}
	}
}

// recheckMicro builds the micro setting the reuse property test runs
// on: D over R(a, b), master M2(x, y) with the IND R[0] ⊆ π₀(M2), and
// the two-atom chain query q(x, z) :- R(x, y), R(y, z) whose witness
// deltas have the duplicate-invocation shape of the cq delta-evaluation
// regression ({R(a,b), R(b,c)} feeding one head through two atoms).
func recheckMicro(rng *rand.Rand) (qlang.Query, *relation.Database, *relation.Database, func() *cc.Set) {
	r := relation.NewSchema("R", relation.Attr("a"), relation.Attr("b"))
	m2 := relation.NewSchema("M2", relation.Attr("x"), relation.Attr("y"))
	d := relation.NewDatabase(r)
	dm := relation.NewDatabase(m2)
	// π₀(M2) = {a, b} keeps any R over {a, b} partially closed, and
	// seeds both values into Adom.
	dm.MustAdd("M2", "a", "a")
	dm.MustAdd("M2", "b", "a")
	vals := []string{"a", "b"}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		d.MustAdd("R", vals[rng.Intn(2)], vals[rng.Intn(2)])
	}
	q := qlang.FromCQ(cq.New("chain", []query.Term{v("x"), v("z")},
		[]query.RelAtom{query.Atom("R", v("x"), v("y")), query.Atom("R", v("y"), v("z"))}))
	mkSet := func() *cc.Set {
		return cc.NewSet(cc.NewIND("i0", "R", []int{0}, 2, cc.Proj("M2", 0)))
	}
	return q, d, dm, mkSet
}

// TestRecheckDeltaReuseProperty is the witness-reuse property test:
// randomized insert scripts against Dm constructed to pass the
// invisibility gate must reuse the cached result, and that result must
// agree with a cold RCDP rerun on verdict AND witness bytes. Occasional
// master deletes are mixed in to pin the other side — the gate refuses
// them and the fallback still agrees with the oracle.
func TestRecheckDeltaReuseProperty(t *testing.T) {
	defer relation.SetInterning(relation.SetInterning(true))
	for _, interned := range []bool{true, false} {
		for _, workers := range []int{1, 8} {
			relation.SetInterning(interned)
			name := fmt.Sprintf("interned=%v workers=%d", interned, workers)
			rng := rand.New(rand.NewSource(11))
			q, d, dm, mkSet := recheckMicro(rng)
			set := mkSet()
			ck := &Checker{Workers: workers}

			prev, err := ck.RCDPCtx(context.Background(), q, d, dm, set)
			if err != nil {
				t.Fatalf("%s: initial check: %v", name, err)
			}
			reuses := 0
			for step := 0; step < 40; step++ {
				var dl *Delta
				wantReuse := prev != nil && rng.Intn(5) > 0
				ts := dm.Instance("M2").Tuples()
				if !wantReuse {
					// Pick a delete that keeps R[0] ⊆ π₀(M2), so the script
					// never loses partial closure: either the projection
					// value occurs on another row, or R never references it.
					var cand relation.Tuple
					for _, tu := range ts {
						occurs, used := 0, false
						for _, o := range ts {
							if o[0] == tu[0] {
								occurs++
							}
						}
						for _, rt := range d.Instance("R").Tuples() {
							if rt[0] == tu[0] {
								used = true
								break
							}
						}
						if occurs > 1 || !used {
							cand = tu.Clone()
							break
						}
					}
					if cand != nil {
						dl = &Delta{Master: true, Deletes: map[string][]relation.Tuple{"M2": {cand}}}
					} else {
						wantReuse = prev != nil // no safe delete this round
					}
				}
				if wantReuse {
					// Projection-preserving, vocabulary-preserving master
					// inserts: x from the live π₀(M2), y from the live active
					// domain (earlier deletes may have evicted a value, so
					// the static seed pool is not enough).
					adom := append(d.ActiveDomain(), dm.ActiveDomain()...)
					ins := make([]relation.Tuple, 1+rng.Intn(2))
					for i := range ins {
						x := ts[rng.Intn(len(ts))][0]
						y := adom[rng.Intn(len(adom))]
						ins[i] = relation.Tuple{x, y}
					}
					dl = &Delta{Master: true, Inserts: map[string][]relation.Tuple{"M2": ins}}
				}
				if dl == nil {
					continue // no valid result and no safe delete this round
				}

				if wantReuse && !dl.WitnessReusable(q, d, dm, set) {
					t.Fatalf("%s step %d: constructed invisible delta rejected by gate: %+v", name, step, dl)
				}
				got, didReuse, gerr := ck.RecheckDeltaCtx(context.Background(), q, d, dm, set, prev, dl)
				cd, cdm := rebuildDB(t, d), rebuildDB(t, dm)
				want, werr := ck.RCDPCtx(context.Background(), q, cd, cdm, mkSet())
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s step %d: incremental err=%v cold err=%v", name, step, gerr, werr)
				}
				if gerr != nil {
					prev = nil
					continue
				}
				if wantReuse != didReuse {
					t.Fatalf("%s step %d: reuse=%v, want %v (delta %+v)", name, step, didReuse, wantReuse, dl)
				}
				if !sameRecheck(got, want) {
					t.Fatalf("%s step %d (reused=%v): results diverge\nincremental: %+v\ncold: %+v",
						name, step, didReuse, got, want)
				}
				if workers == 1 && got.Valuations != want.Valuations {
					t.Fatalf("%s step %d: valuations diverge: %d vs %d", name, step, got.Valuations, want.Valuations)
				}
				if didReuse {
					reuses++
				}
				prev = got
			}
			if reuses < 10 {
				t.Fatalf("%s: only %d reuses over the script", name, reuses)
			}
		}
	}
}

// TestRecheckDeltaGate pins the invisibility gate's individual clauses.
func TestRecheckDeltaGate(t *testing.T) {
	defer relation.SetInterning(relation.SetInterning(true))
	relation.SetInterning(true)
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 8
	cfg.Employees = 2
	s := mdm.Generate(cfg)
	d, dm := s.D, s.Dm
	set := mdmSet(cfg)
	q := mdm.Q0("908")

	master := dm.Instance(mdm.DCust).Tuples()[0]
	dup := master.Clone()
	renamed := master.Clone()
	renamed[1] = dm.Instance(mdm.DCust).Tuples()[1][1] // another row's name: Adom-preserving
	freshVal := master.Clone()
	freshVal[3] = "5559999" // phone never seen anywhere
	newProj := master.Clone()
	newProj[0] = dm.Instance(mdm.DCust).Tuples()[1][0] // (cid', ac) pair not in π₀,₂

	cases := []struct {
		name string
		dl   *Delta
		want bool
	}{
		{"empty", &Delta{}, true},
		{"master-duplicate", &Delta{Master: true,
			Inserts: map[string][]relation.Tuple{mdm.DCust: {dup}}}, true},
		{"master-invisible-rename", &Delta{Master: true,
			Inserts: map[string][]relation.Tuple{mdm.DCust: {renamed}}}, true},
		{"master-fresh-value", &Delta{Master: true,
			Inserts: map[string][]relation.Tuple{mdm.DCust: {freshVal}}}, false},
		{"master-new-projection", &Delta{Master: true,
			Inserts: map[string][]relation.Tuple{mdm.DCust: {newProj}}}, false},
		{"master-delete", &Delta{Master: true,
			Deletes: map[string][]relation.Tuple{mdm.DCust: {dup}}}, false},
		{"database-targeted", &Delta{Master: false,
			Inserts: map[string][]relation.Tuple{mdm.Cust: {d.Instance(mdm.Cust).Tuples()[0].Clone()}}}, false},
	}
	for _, tc := range cases {
		if got := tc.dl.WitnessReusable(q, d, dm, set); got != tc.want {
			t.Errorf("%s: WitnessReusable = %v, want %v", tc.name, got, tc.want)
		}
	}

	// The new-projection case must flip once the projection exists: after
	// applying it, the same shape becomes invisible.
	if _, _, err := (&Delta{Master: true,
		Inserts: map[string][]relation.Tuple{mdm.DCust: {newProj}}}).Apply(d, dm, set); err != nil {
		t.Fatal(err)
	}
	again := newProj.Clone()
	again[1] = master[1]
	dl := &Delta{Master: true, Inserts: map[string][]relation.Tuple{mdm.DCust: {again}}}
	if !dl.WitnessReusable(q, d, dm, set) {
		t.Fatal("projection inserted by a previous batch should now be invisible")
	}
}

// TestRecheckDeltaReusesVerdicts walks one deterministic scenario
// through all three reusable verdict shapes: Incomplete with witness
// revalidation, Complete, and Unknown under the valuation cap — each
// answered from cache with the reuse counter advancing — plus the
// non-reusable Unknown reasons, which must go cold.
func TestRecheckDeltaReusesVerdicts(t *testing.T) {
	defer relation.SetInterning(relation.SetInterning(true))
	relation.SetInterning(true)
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 8
	cfg.Employees = 2
	cfg.Completeness = 0.5 // some domestic customers missing: incomplete
	s := mdm.Generate(cfg)
	d, dm := s.D, s.Dm
	set := mdmSet(cfg)
	q := mdm.Q0("908")
	ck := &Checker{Workers: 1}

	invisible := func() *Delta {
		return &Delta{Master: true, Inserts: map[string][]relation.Tuple{
			mdm.DCust: {dm.Instance(mdm.DCust).Tuples()[0].Clone()},
		}}
	}

	prev, err := ck.RCDPCtx(context.Background(), q, d, dm, set)
	if err != nil || prev.Verdict != VerdictIncomplete {
		t.Fatalf("seed check: verdict=%v err=%v", prev.Verdict, err)
	}
	reused0 := obs.RecheckReused.Value()
	got, didReuse, err := ck.RecheckDeltaCtx(context.Background(), q, d, dm, set, prev, invisible())
	if err != nil || !didReuse || got != prev {
		t.Fatalf("incomplete verdict not reused: reuse=%v err=%v", didReuse, err)
	}
	if obs.RecheckReused.Value() != reused0+1 {
		t.Fatal("reuse counter did not advance")
	}

	// Unknown under the deterministic valuation cap is reusable...
	capped := &Checker{Workers: 1, MaxValuations: 1}
	prevU, err := capped.RCDPCtx(context.Background(), q, d, dm, set)
	if err != nil || prevU.Verdict != VerdictUnknown || prevU.Reason != ReasonValuations {
		t.Fatalf("capped check: verdict=%v reason=%v err=%v", prevU.Verdict, prevU.Reason, err)
	}
	if got, didReuse, err = capped.RecheckDeltaCtx(context.Background(), q, d, dm, set, prevU, invisible()); err != nil || !didReuse || got != prevU {
		t.Fatalf("valuation-capped unknown not reused: reuse=%v err=%v", didReuse, err)
	}
	// ...while a wall-clock Unknown is not, even for an invisible delta.
	timed := *prevU
	timed.Reason = ReasonDeadline
	if _, didReuse, err = ck.RecheckDeltaCtx(context.Background(), q, d, dm, set, &timed, invisible()); err != nil || didReuse {
		t.Fatalf("deadline unknown must go cold: reuse=%v err=%v", didReuse, err)
	}

	// A Complete verdict reuses too: close the gap behind a query whose
	// answer set cannot grow, then recheck under an invisible insert.
	qDone := mdm.Q0("000") // no such area code anywhere: trivially complete
	prevC, err := ck.RCDPCtx(context.Background(), qDone, d, dm, set)
	if err != nil || prevC.Verdict != VerdictComplete {
		t.Fatalf("complete seed: verdict=%v err=%v", prevC.Verdict, err)
	}
	if got, didReuse, err = ck.RecheckDeltaCtx(context.Background(), qDone, d, dm, set, prevC, invisible()); err != nil || !didReuse || got != prevC {
		t.Fatalf("complete verdict not reused: reuse=%v err=%v", didReuse, err)
	}
}
