package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/query"
)

// Resource governance. The Σ₂ᵖ/Σ₃ᵖ lower bounds of Tables I–II mean a
// checker serving interactive traffic cannot promise termination within
// any useful deadline; a governed check therefore carries a
// context.Context plus a Budget and returns a three-valued Verdict:
// Complete/Incomplete when the search finished, Unknown (with the
// exhausted dimension as a Reason and whatever best-effort state was
// gathered) when governance ended it first. The legacy non-Ctx entry
// points are thin wrappers that translate Unknown back into an error.

// Verdict is the three-valued outcome of a governed check.
type Verdict int

const (
	// VerdictUnknown means governance (cancellation, deadline or a
	// budget) stopped the search before it could decide.
	VerdictUnknown Verdict = iota
	// VerdictComplete means the search exhausted the space: D is
	// relatively complete.
	VerdictComplete
	// VerdictIncomplete means a counterexample extension was found.
	VerdictIncomplete
)

func (v Verdict) String() string {
	switch v {
	case VerdictComplete:
		return "complete"
	case VerdictIncomplete:
		return "incomplete"
	default:
		return "unknown"
	}
}

// Reason names the governance dimension behind an Unknown verdict.
type Reason int

const (
	// ReasonNone: the verdict is decisive, no budget was exhausted.
	ReasonNone Reason = iota
	// ReasonCancelled: the caller's context was cancelled.
	ReasonCancelled
	// ReasonDeadline: the wall-clock deadline (Budget.Timeout or a
	// caller-supplied context deadline) expired.
	ReasonDeadline
	// ReasonValuations: the candidate-valuation budget ran out.
	ReasonValuations
	// ReasonJoinRows: the join-row step budget ran out.
	ReasonJoinRows
	// ReasonTuples: the allocated-tuple budget ran out.
	ReasonTuples
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case ReasonCancelled:
		return "cancelled"
	case ReasonDeadline:
		return "deadline"
	case ReasonValuations:
		return "valuations"
	case ReasonJoinRows:
		return "join-rows"
	case ReasonTuples:
		return "tuples"
	default:
		return "reason(?)"
	}
}

// Err returns the sentinel error corresponding to the reason — the
// error the ungoverned (legacy) entry points surface for it.
func (r Reason) Err() error {
	switch r {
	case ReasonCancelled:
		return context.Canceled
	case ReasonDeadline:
		return context.DeadlineExceeded
	case ReasonValuations:
		return ErrBudgetExceeded
	case ReasonJoinRows:
		return query.ErrRowBudget
	case ReasonTuples:
		return query.ErrTupleBudget
	default:
		return nil
	}
}

// Budget bounds the resources of one check. The zero value is
// unlimited. All dimensions are global to the check (shared across
// disjuncts and workers) except MaxValuations, which — matching the
// pre-existing Checker.MaxValuations semantics — caps candidate
// valuations per disjunct.
type Budget struct {
	// Timeout, when positive, is a wall-clock deadline for the whole
	// check (applied via context.WithTimeout on top of the caller's
	// context).
	Timeout time.Duration
	// MaxValuations, when positive, caps candidate valuations per
	// disjunct; it overrides Checker.MaxValuations.
	MaxValuations int
	// MaxJoinRows, when positive, caps the total number of join-row
	// steps charged by evaluation loops (query evaluation, constraint
	// checks, differential checks) across the whole check.
	MaxJoinRows int64
	// MaxTuples, when positive, caps the estimated number of tuples
	// materialized for candidate extensions across the whole check.
	MaxTuples int64
}

// IsZero reports whether the budget is entirely unlimited.
func (b Budget) IsZero() bool {
	return b.Timeout <= 0 && b.MaxValuations <= 0 && b.MaxJoinRows <= 0 && b.MaxTuples <= 0
}

// Clamp limits b by a ceiling budget, dimension by dimension: where the
// ceiling is set (positive), an unset (non-positive) or larger value of
// b is replaced by the ceiling; a stricter value of b is kept. Where
// the ceiling is unset, b passes through unchanged. Serving layers use
// it to honor per-request budget overrides without letting a request
// exceed operator-configured limits: unlimited requests inherit the
// ceiling rather than unbounded search.
func (b Budget) Clamp(ceiling Budget) Budget {
	if ceiling.Timeout > 0 && (b.Timeout <= 0 || b.Timeout > ceiling.Timeout) {
		b.Timeout = ceiling.Timeout
	}
	if ceiling.MaxValuations > 0 && (b.MaxValuations <= 0 || b.MaxValuations > ceiling.MaxValuations) {
		b.MaxValuations = ceiling.MaxValuations
	}
	if ceiling.MaxJoinRows > 0 && (b.MaxJoinRows <= 0 || b.MaxJoinRows > ceiling.MaxJoinRows) {
		b.MaxJoinRows = ceiling.MaxJoinRows
	}
	if ceiling.MaxTuples > 0 && (b.MaxTuples <= 0 || b.MaxTuples > ceiling.MaxTuples) {
		b.MaxTuples = ceiling.MaxTuples
	}
	return b
}

// BudgetStats reports the resources a governed check consumed; it is
// filled in by the Ctx entry points whether or not the check finished.
// JoinRows and Tuples are only counted on governed runs (a nil gate —
// no context, no budget — keeps the hot paths uninstrumented).
type BudgetStats struct {
	// Valuations is the number of candidate valuations inspected.
	Valuations int
	// JoinRows is the number of join-row steps charged.
	JoinRows int64
	// Tuples is the estimated number of materialized extension tuples.
	Tuples int64
	// Elapsed is the wall-clock duration of the check.
	Elapsed time.Duration
}

// governor is the per-check governance state: the derived context's
// gate plus timing. A nil *governor is the ungoverned path.
type governor struct {
	gate   *query.Gate
	start  time.Time
	cancel context.CancelFunc
}

// newGovernor derives the governance state for one check. It returns
// nil (ungoverned — zero instrumentation cost) when the context can
// never be cancelled and the budget has no gate-enforced dimension.
// The caller must call close() when the check ends (releases the
// timeout timer).
func newGovernor(ctx context.Context, b Budget) *governor {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if b.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
	}
	if ctx.Done() == nil && b.MaxJoinRows <= 0 && b.MaxTuples <= 0 {
		// Unreachable after WithTimeout (a timeout makes Done non-nil),
		// so the cancel being released here is always the no-op one.
		cancel()
		return nil
	}
	return &governor{
		gate:   query.NewGate(ctx, b.MaxJoinRows, b.MaxTuples),
		start:  time.Now(),
		cancel: cancel,
	}
}

// gateOf returns the governor's gate (nil for the ungoverned path).
func (gv *governor) gateOf() *query.Gate {
	if gv == nil {
		return nil
	}
	return gv.gate
}

// close releases the governor's timeout resources.
func (gv *governor) close() {
	if gv != nil {
		gv.cancel()
	}
}

// stats assembles the consumption report for a (possibly unfinished)
// check.
func (gv *governor) stats(valuations int) BudgetStats {
	st := BudgetStats{Valuations: valuations}
	if gv != nil {
		st.JoinRows = gv.gate.Rows()
		st.Tuples = gv.gate.Tuples()
		st.Elapsed = time.Since(gv.start)
	}
	return st
}

// reasonOf classifies a search-stopping error into a Reason;
// ReasonNone means the error is a genuine failure, not governance.
// Priority is fixed (deadline before cancel within the context errors;
// the sentinels are disjoint) so classification is deterministic.
func reasonOf(err error) Reason {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ReasonDeadline
	case errors.Is(err, context.Canceled):
		return ReasonCancelled
	case errors.Is(err, ErrBudgetExceeded):
		return ReasonValuations
	case errors.Is(err, query.ErrRowBudget):
		return ReasonJoinRows
	case errors.Is(err, query.ErrTupleBudget):
		return ReasonTuples
	default:
		return ReasonNone
	}
}

// isGovernErr reports whether err is a governance stop (budget or
// cancellation) rather than a genuine failure.
func isGovernErr(err error) bool { return reasonOf(err) != ReasonNone }

// effectiveValuations resolves the per-disjunct valuation cap:
// Budget.MaxValuations overrides the legacy Checker field.
func (ck *Checker) effectiveValuations() int {
	if ck.Budget.MaxValuations > 0 {
		return ck.Budget.MaxValuations
	}
	return ck.MaxValuations
}
