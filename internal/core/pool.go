package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// workerPool bounds the number of goroutines a (possibly nested) family
// of parallel searches may occupy. It is deliberately not a classic
// fixed-worker executor: run drains its task list with the *calling*
// goroutine plus however many helper slots it can grab from the shared
// semaphore. Because the caller always participates, a task that itself
// calls run — RCQP candidate checks invoke RCDP, whose disjunct search
// fans out branches on the same pool — can never deadlock waiting for a
// slot: when the pool is saturated the nested work simply degrades to
// sequential execution on the goroutine that submitted it.
type workerPool struct {
	// sem holds one token per helper goroutine beyond the callers
	// themselves, so a pool built for n workers runs at most n
	// goroutines when a single top-level run is active.
	sem chan struct{}
}

// newWorkerPool sizes a pool for the given worker count (<=1 returns
// nil, the sentinel for purely sequential execution).
func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return nil
	}
	return &workerPool{sem: make(chan struct{}, workers-1)}
}

// run executes every task, pulling from the list in index order (lower
// indexes are higher priority — the deterministic-witness resolution
// prefers them, so starting them first minimizes wasted speculation).
// It returns when all tasks have finished. Safe for concurrent and
// nested use; a nil pool runs the tasks sequentially in order.
func (p *workerPool) run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	if p == nil || len(tasks) == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	if obs.Tracing() {
		obs.Emit("pool_run", map[string]any{"tasks": len(tasks)})
	}
	var next atomic.Int64
	work := func() {
		// Each participating goroutine — helper or caller — counts as one
		// busy worker while it drains tasks. Task timing is charged in one
		// atomic add per task, and skipped entirely when obs is disabled.
		obs.PoolWorkers.Add(1)
		defer obs.PoolWorkers.Add(-1)
		for {
			i := int(next.Add(1) - 1)
			if i >= len(tasks) {
				return
			}
			if obs.Enabled() {
				start := time.Now()
				tasks[i]()
				obs.PoolBusyNS.Add(time.Since(start).Nanoseconds())
				obs.PoolTasks.Inc()
			} else {
				tasks[i]()
			}
		}
	}
	var wg sync.WaitGroup
spawn:
	// At most len(tasks)-1 helpers: the caller handles the rest.
	for k := 0; k < len(tasks)-1; k++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				work()
			}()
		default:
			break spawn // saturated; caller picks up the slack
		}
	}
	work()
	wg.Wait()
}
