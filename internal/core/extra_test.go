package core

import (
	"testing"

	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

func TestUniverse(t *testing.T) {
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "s", "c1")
	dm := emptyMaster()
	dm.MustAdd("Rm0", "m1")
	u := NewUniverse(d, dm, q2(), cc.NewSet(), 3)
	if len(u.Fresh) != 3 {
		t.Fatalf("fresh pool: %v", u.Fresh)
	}
	for _, f := range u.Fresh {
		if !u.IsFresh(f) {
			t.Fatal("IsFresh wrong")
		}
	}
	// Constants: e0 (query), e0/s/c1 (D), m1 (Dm).
	want := map[relation.Value]bool{"e0": true, "s": true, "c1": true, "m1": true}
	if len(u.Consts) != len(want) {
		t.Fatalf("consts: %v", u.Consts)
	}
	for _, c := range u.Consts {
		if !want[c] {
			t.Fatalf("unexpected constant %q", c)
		}
	}
	// AdomFor: finite domains are returned verbatim; infinite domains
	// get constants plus the fresh pool.
	fin := relation.FiniteDomain("0", "1")
	if got := u.AdomFor(fin); len(got) != 2 {
		t.Fatalf("finite adom: %v", got)
	}
	if got := u.AdomFor(relation.InfiniteDomain()); len(got) != len(u.Consts)+3 {
		t.Fatalf("infinite adom: %v", got)
	}
}

func TestStatusString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" || Unknown.String() != "unknown" {
		t.Fatal("Status String wrong")
	}
}

func TestCompleteDatabaseINDs(t *testing.T) {
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}
	dcust := relation.NewSchema("DCust", relation.Attr("cid"))
	dm := relation.NewDatabase(dcust)
	dm.MustAdd("DCust", "c1")
	dm.MustAdd("DCust", "c2")
	vset := cc.NewSet(cc.NewIND("i1", "Supt", []int{2}, 3, cc.Proj("DCust", 0)))
	qc := qlang.FromCQ(cq.New("Qc", []query.Term{v("c")},
		[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))}))

	w, err := CompleteDatabaseINDs(qc, dm, vset, schemas, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("witness not constructed")
	}
	// The witness must answer both master cids and be complete.
	ans, _ := qc.Eval(w)
	if len(ans) != 2 {
		t.Fatalf("witness answers %v", ans)
	}
	r, err := RCDP(qc, w, dm, vset)
	if err != nil || !r.Complete {
		t.Fatalf("witness incomplete: %v %v", r, err)
	}
	// Cap smaller than the answer space: no witness, no error.
	w2, err := CompleteDatabaseINDs(qc, dm, vset, schemas, 1)
	if err != nil || w2 != nil {
		t.Fatalf("cap should yield nil witness: %v %v", w2, err)
	}
	// Non-IND constraints are rejected.
	if _, err := CompleteDatabaseINDs(qc, dm, cc.NewSet(cc.AtMostK("k", "Supt", 3, []int{0}, 2, 1)), schemas, 10); err == nil {
		t.Fatal("non-IND set accepted")
	}
}

func TestMakeCompleteDiverges(t *testing.T) {
	// Q2 with no constraints has an unbounded answer space: MakeComplete
	// must give up after its round cap.
	d := relation.NewDatabase(suptSchema())
	dm := emptyMaster()
	if _, _, err := MakeComplete(q2(), d, dm, cc.NewSet(), 5); err == nil {
		t.Fatal("divergent completion must error out")
	}
}

func TestRCQPwithUCQandEFO(t *testing.T) {
	schemas := map[string]*relation.Schema{"Supt": suptSchema()}
	dcust := relation.NewSchema("DCust", relation.Attr("cid"))
	dm := relation.NewDatabase(dcust)
	dm.MustAdd("DCust", "c1")
	vset := cc.NewSet(cc.NewIND("i1", "Supt", []int{2}, 3, cc.Proj("DCust", 0)))

	u := cq.Union("U",
		cq.New("u1", []query.Term{v("c")},
			[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
			query.Eq(v("e"), c("e0"))),
		cq.New("u2", []query.Term{v("c")},
			[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))},
			query.Eq(v("e"), c("e1"))),
	)
	res, err := RCQP(qlang.FromUCQ(u), dm, vset, schemas)
	if err != nil || res.Status != Yes {
		t.Fatalf("UCQ over bounded cid: %v %v", res, err)
	}

	body := cq.Or(
		cq.And(cq.FAtom("Supt", v("e"), v("d"), v("c")), cq.FEq(v("e"), c("e0"))),
		cq.And(cq.FAtom("Supt", v("e"), v("d"), v("c")), cq.FEq(v("e"), c("e1"))),
	)
	efoq := qlang.FromEFO(cq.NewEFO("Qe", []query.Term{v("c")}, body))
	res, err = RCQP(efoq, dm, vset, schemas)
	if err != nil || res.Status != Yes {
		t.Fatalf("∃FO⁺ over bounded cid: %v %v", res, err)
	}

	// A disjunct projecting the unbounded dept makes it no.
	bad := cq.Union("B",
		u.Disjuncts[0],
		cq.New("u3", []query.Term{v("d")},
			[]query.RelAtom{query.Atom("Supt", v("e"), v("d"), v("c"))}),
	)
	res, err = RCQP(qlang.FromUCQ(bad), dm, vset, schemas)
	if err != nil || res.Status != No {
		t.Fatalf("unbounded disjunct must be no: %v %v", res, err)
	}
}

func TestBoundedRCDPPreconditions(t *testing.T) {
	d := relation.NewDatabase(suptSchema())
	d.MustAdd("Supt", "e0", "a", "c1")
	d.MustAdd("Supt", "e0", "b", "c1")
	dm := emptyMaster()
	fd := &cc.FD{Name: "fd", Rel: "Supt", From: []int{0}, To: []int{1}}
	vset := cc.NewSet(fd.ToCCs(3)...)
	if _, err := BoundedRCDP(q2(), d, dm, vset, BoundedOpts{}); err == nil {
		t.Fatal("non-partially-closed D must be rejected")
	}
	// Pool explosion guard.
	wide := relation.NewSchema("W",
		relation.Attr("a"), relation.Attr("b"), relation.Attr("c"),
		relation.Attr("d"), relation.Attr("e"), relation.Attr("f"))
	dw := relation.NewDatabase(wide)
	for i := 0; i < 20; i++ {
		dw.MustAdd("W", "a", "b", "c", "d", "e", string(rune('a'+i)))
	}
	qw := qlang.FromCQ(cq.New("Q", []query.Term{v("x")},
		[]query.RelAtom{query.Atom("W", v("x"), v("y"), v("z"), v("u"), v("w"), v("t"))}))
	if _, err := BoundedRCDP(qw, dw, dm, cc.NewSet(), BoundedOpts{MaxPool: 1000}); err == nil {
		t.Fatal("pool explosion must be reported")
	}
}

// TestRCDPMonotonicityProperty: a randomized invariant — whenever RCDP
// reports complete, a random legal single-tuple extension must not
// change the answer (spot-checking the definition directly).
func TestRCDPMonotonicityProperty(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 2))
	dm := emptyMaster()
	vals := []string{"e0", "x", "c1", "c2", "c3"}
	for seed := 0; seed < 40; seed++ {
		d := relation.NewDatabase(suptSchema())
		n := seed % 4
		for i := 0; i < n; i++ {
			d.MustAdd("Supt", vals[(seed+i)%3], "s", vals[2+(seed+i)%3])
		}
		if ok, _ := vset.Satisfied(d, dm); !ok {
			continue
		}
		r, err := RCDP(q2(), d, dm, vset)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Complete {
			continue
		}
		base, _ := q2().Eval(d)
		// Try every single-tuple extension over the value pool.
		for _, a := range vals {
			for _, b := range vals {
				for _, cv := range vals {
					ext := d.Clone()
					ext.MustAdd("Supt", a, b, cv)
					if ok, _ := vset.Satisfied(ext, dm); !ok {
						continue
					}
					after, _ := q2().Eval(ext)
					if len(after) != len(base) {
						t.Fatalf("seed %d: complete D changed by legal extension (%s,%s,%s)", seed, a, b, cv)
					}
				}
			}
		}
	}
}

// TestInertPositions sanity-checks the inert-position analysis on the
// at-most-k constraint: the employee and customer columns are
// constrained, the department column is inert.
func TestInertPositions(t *testing.T) {
	vset := cc.NewSet(cc.AtMostK("phi1", "Supt", 3, []int{0}, 2, 2))
	constrained := inertPositions(vset)
	if !constrained["Supt"][0] {
		t.Fatal("employee column must be constrained (join)")
	}
	if !constrained["Supt"][2] {
		t.Fatal("customer column must be constrained (diseqs + head)")
	}
	if constrained["Supt"][1] {
		t.Fatal("department column must be inert")
	}
}

// TestRelevantValues checks the linked-position value computation on
// the CRM φ0 constraint: the customer column's group picks up the
// master cid feed.
func TestRelevantValues(t *testing.T) {
	cust := relation.NewSchema("Cust",
		relation.Attr("cid"), relation.Attr("name"), relation.Attr("cc"),
		relation.Attr("ac"), relation.Attr("phn"))
	supt := suptSchema()
	dcust := relation.NewSchema("DCust", relation.Attr("cid"))
	dm := relation.NewDatabase(dcust)
	dm.MustAdd("DCust", "m1")
	d := relation.NewDatabase(cust, supt)
	d.MustAdd("Supt", "e9", "s", "d9")

	q := cq.New("phi", []query.Term{v("c")},
		[]query.RelAtom{
			query.Atom("Cust", v("c"), v("n"), v("cc"), v("a"), v("p")),
			query.Atom("Supt", v("e"), v("d"), v("c")),
		},
		query.Eq(v("cc"), c("01")))
	vset := cc.NewSet(cc.FromCQ("phi", q, cc.Proj("DCust", 0)))

	rv := computeRelevantValues(qlang.FromCQ(q), vset, d, dm)
	cands := rv.candidatesFor([]varPosition{{Rel: "Supt", Col: 2}})
	has := func(val relation.Value) bool {
		for _, x := range cands {
			if x == val {
				return true
			}
		}
		return false
	}
	if !has("m1") {
		t.Fatalf("master feed missing: %v", cands)
	}
	if !has("d9") {
		t.Fatalf("linked database value missing: %v", cands)
	}
	if has("e9") {
		t.Fatalf("unlinked column value leaked in: %v", cands)
	}
}

// TestRCDPWithReverseConstraint exercises the Section 5 extension: with
// Manage bounded above by an IND into ManageM and below by the reverse
// constraint π(ManageM) ⊆ Manage, partial closure pins Manage to
// exactly the master edges, and the k-hop query over it is complete.
func TestRCDPWithReverseConstraint(t *testing.T) {
	manage := relation.NewSchema("Manage", relation.Attr("a"), relation.Attr("b"))
	managem := relation.NewSchema("ManageM", relation.Attr("a"), relation.Attr("b"))
	dm := relation.NewDatabase(managem)
	dm.MustAdd("ManageM", "e1", "e0")
	dm.MustAdd("ManageM", "e2", "e1")

	revQ := cq.New("q", []query.Term{v("x"), v("y")},
		[]query.RelAtom{query.Atom("Manage", v("x"), v("y"))})
	vset := cc.NewSet(
		cc.NewIND("up", "Manage", []int{0, 1}, 2, cc.Proj("ManageM", 0, 1)),
		cc.ReverseFromCQ("down", cc.Proj("ManageM", 0, 1), revQ),
	)

	// A database missing a master edge is not partially closed at all.
	partial := relation.NewDatabase(manage)
	partial.MustAdd("Manage", "e1", "e0")
	q := qlang.FromCQ(cq.New("Q", []query.Term{v("m")},
		[]query.RelAtom{query.Atom("Manage", v("m"), c("e0"))}))
	if _, err := RCDP(q, partial, dm, vset); err == nil {
		t.Fatal("database below the master lower bound must be rejected")
	}

	// The exactly-pinned database is complete.
	full := partial.Clone()
	full.MustAdd("Manage", "e2", "e1")
	r, err := RCDP(q, full, dm, vset)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatalf("pinned Manage must be complete; ext %v", r.Extension)
	}
}
