package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/query"
	"repro/internal/relation"
)

// Parallel valuation search.
//
// The top-level variable's candidate branches of a valuationSearch are
// fanned out to a workerPool; every branch runs the same backtracking
// recursion as the sequential engine. Determinism does not come from
// scheduling (there is none to rely on) but from *keys*: each branch is
// tagged with a packed (disjunct, branch-index) key, a raceCtl resolves
// competing witness claims to the lexicographically smallest key, and a
// branch whose key is already beaten abandons at its next search node.
// Within one branch the recursion is sequential, so the claim it makes
// is the DFS-first witness of that branch — together the winning claim
// is exactly the witness the sequential engine would return: lowest
// disjunct, then lowest top-level branch, then depth-first order.
//
// State discipline (see also the valuationSearch field comments):
//
//	shared read-only:  Universe, Tableau, doms/order, collapsed,
//	                   candidates, the pruner template's structural
//	                   fields, D/Dm (warmed), schemas, answer sets
//	shared mutable:    raceCtl (atomics + mutex), budgetCtl (atomic)
//	per-worker:        the binding, the pruner clone's backtracking
//	                   counters, the freshUsed symmetry counter
var (
	// errAbandoned aborts a branch whose key can no longer win.
	errAbandoned = errors.New("core: branch abandoned")
	// errBudgetStop aborts a branch after the shared budget ran out.
	errBudgetStop = errors.New("core: budget stop")
)

// noKey is the raceCtl key meaning "no claim yet"; every real key is
// smaller.
const noKey = int64(math.MaxInt64)

// packKey packs a (disjunct, branch) pair into an order-preserving
// int64: comparing keys compares (disjunct, branch) lexicographically.
func packKey(disjunct, branch int) int64 {
	return int64(disjunct)<<32 | int64(branch)
}

// budgetKey is the key a disjunct's budget exhaustion claims: it beats
// every later disjunct but loses to every witness inside its own
// disjunct, which is exactly the sequential engine's resolution (a
// budget error surfaces only if the disjunct produced no witness, and
// only if no earlier disjunct resolved first).
func budgetKey(disjunct int) int64 {
	return int64(disjunct)<<32 | int64(math.MaxUint32)
}

// keyDisjunct recovers the disjunct index from a packed key.
func keyDisjunct(key int64) int { return int(key >> 32) }

// keyIsBudget reports whether a key is a budget-exhaustion claim.
func keyIsBudget(key int64) bool { return key&int64(math.MaxUint32) == int64(math.MaxUint32) }

// raceCtl arbitrates a deterministic race: many keyed workers propose
// outcomes, the smallest key wins, and anything tagged with a larger
// key may be cancelled early. A fatal error aborts the whole race.
type raceCtl struct {
	bestKey atomic.Int64 // smallest claimed key so far; noKey when none
	fatal   atomic.Bool

	mu  sync.Mutex
	val any
	err error
}

func newRaceCtl() *raceCtl {
	c := &raceCtl{}
	c.bestKey.Store(noKey)
	return c
}

// cancelled reports whether work tagged with key can no longer affect
// the outcome. It is a single atomic load on the hot path.
func (c *raceCtl) cancelled(key int64) bool {
	return c.fatal.Load() || key > c.bestKey.Load()
}

// claim proposes an outcome for key; the smallest key wins. val may be
// nil (a budget-exhaustion claim).
func (c *raceCtl) claim(key int64, val any) {
	c.mu.Lock()
	if key < c.bestKey.Load() {
		c.bestKey.Store(key)
		c.val = val
	}
	c.mu.Unlock()
}

// fail aborts the race with an error; the first error wins.
func (c *raceCtl) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.fatal.Store(true)
}

// result returns the race outcome: the winning claim and its key, or
// noKey when nothing was claimed, or the fatal error.
func (c *raceCtl) result() (any, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, noKey, c.err
	}
	return c.val, c.bestKey.Load(), nil
}

// budgetCtl is the shared valuation budget of one disjunct's parallel
// search: every worker that completes a candidate valuation charges the
// same atomic counter, so the MaxValuations cap bounds the disjunct's
// total work no matter how it is scheduled.
type budgetCtl struct {
	cap     int64 // 0 = unlimited
	visited atomic.Int64
}

func newBudgetCtl(cap int) *budgetCtl { return &budgetCtl{cap: int64(cap)} }

// visit charges one candidate valuation and reports whether the budget
// still holds.
func (bc *budgetCtl) visit() bool {
	n := bc.visited.Add(1)
	return bc.cap <= 0 || n <= bc.cap
}

// exhausted reports whether the budget has already run out.
func (bc *budgetCtl) exhausted() bool {
	return bc.cap > 0 && bc.visited.Load() > bc.cap
}

// count returns the number of candidate valuations charged so far.
func (bc *budgetCtl) count() int { return int(bc.visited.Load()) }

// parallelFn is the complete-valuation callback of a parallel search.
// It runs concurrently on worker goroutines, so it must only read
// shared state that is warmed/immutable; the binding it receives is
// worker-owned and is mutated after the call returns, so anything kept
// must be cloned or derived (Tableau.Apply and HeadTuple allocate fresh
// objects). A non-nil claim ends the branch.
type parallelFn func(b query.Binding) (claim any, err error)

// searchWorker is the per-goroutine state of one branch of a parallel
// valuation search.
type searchWorker struct {
	s      *valuationSearch // shared, read-only during the search
	pruner *indPruner       // this worker's clone (nil when absent)
	b      query.Binding    // this worker's binding
	budget *budgetCtl       // shared with the disjunct's other branches
	ctl    *raceCtl         // shared with the whole engine
	key    int64            // this branch's claim key
	fn     parallelFn
}

// rec mirrors valuationSearch.run's recursion exactly (same candidate
// order, same pruning, same fresh-value symmetry), with the sequential
// budget/stop bookkeeping replaced by the shared controllers.
func (w *searchWorker) rec(i, freshUsed int) error {
	if w.ctl.cancelled(w.key) {
		return errAbandoned
	}
	s := w.s
	if err := s.gate.Poll(); err != nil {
		// Governance stop: surface through ctl.fail (via branchTasks'
		// error path) so every other branch abandons promptly.
		return err
	}
	if i == len(s.order) {
		if !w.budget.visit() {
			w.ctl.claim(budgetKey(keyDisjunct(w.key)), nil)
			return errBudgetStop
		}
		if !s.t.DiseqsHold(w.b) {
			return nil
		}
		claim, err := w.fn(w.b)
		if err != nil {
			return err
		}
		if claim != nil {
			w.ctl.claim(w.key, claim)
			return errStop
		}
		return nil
	}
	v := s.order[i]
	for _, val := range s.candidatesFor(v, freshUsed) {
		w.b[v] = val
		if !s.admitAssign(w.pruner, v, w.b) {
			delete(w.b, v)
			continue
		}
		nf := freshUsed
		if s.u.IsFresh(val) && isNthFresh(s.u, val, freshUsed) {
			nf++
		}
		err := w.rec(i+1, nf)
		if !s.naive && w.pruner != nil {
			w.pruner.unassign(v)
		}
		delete(w.b, v)
		if err != nil {
			return err
		}
	}
	return nil
}

// branchTasks builds one pool task per top-level candidate branch of
// the search, tagged (disjunct, branchIndex). Must be called on the
// coordinating goroutine before the tasks run.
func (s *valuationSearch) branchTasks(ctl *raceCtl, bud *budgetCtl, disjunct int, fn parallelFn) []func() {
	launch := func(key int64, init func(w *searchWorker) (freshUsed int, ok bool)) func() {
		return func() {
			if ctl.cancelled(key) || bud.exhausted() {
				return
			}
			w := &searchWorker{
				s:      s,
				pruner: s.pruner.clone(),
				b:      make(query.Binding, len(s.order)),
				budget: bud,
				ctl:    ctl,
				key:    key,
				fn:     fn,
			}
			start, nf := 0, 0
			if init != nil {
				var ok bool
				if nf, ok = init(w); !ok {
					return
				}
				start = 1
			}
			switch err := w.rec(start, nf); err {
			case nil, errStop, errAbandoned, errBudgetStop:
				// Branch outcome (if any) is recorded in ctl.
			default:
				ctl.fail(err)
			}
		}
	}

	if len(s.order) == 0 {
		// Variable-free tableau: a single "branch" checking the empty
		// valuation.
		return []func(){launch(packKey(disjunct, 0), nil)}
	}
	v0 := s.order[0]
	cands := s.candidatesFor(v0, 0)
	tasks := make([]func(), 0, len(cands))
	for bi, val := range cands {
		val := val
		tasks = append(tasks, launch(packKey(disjunct, bi), func(w *searchWorker) (int, bool) {
			w.b[v0] = val
			if !s.admitAssign(w.pruner, v0, w.b) {
				return 0, false
			}
			nf := 0
			if s.u.IsFresh(val) && isNthFresh(s.u, val, 0) {
				nf = 1
			}
			return nf, true
		}))
	}
	return tasks
}

// warmShared populates the lazy caches of the read-only inputs a
// parallel search shares across workers (the per-instance tuple order
// of D and Dm). Query/constraint-side lazy state (∃FO⁺ → UCQ expansion,
// IND shapes, datalog arities) is already forced by the sequential
// entry work every decision procedure performs before fanning out.
func warmShared(dbs ...*relation.Database) {
	for _, d := range dbs {
		d.Warm()
	}
}
