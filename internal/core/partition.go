package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// Network partitioning of the RCDP valuation search.
//
// A PartitionPlan deterministically splits the top-level
// (disjunct, branch) task space of an RCDP check into K disjoint
// slices; RCDPSliceCtx evaluates exactly one slice, and MergeSlices
// reassembles the slice results into the verdict the single-process
// engine would have produced. Determinism rests on the same packed
// (disjunct, branch) arbitration keys as the parallel engine
// (parallel.go): every slice reports the smallest key it claimed, the
// merge takes the global minimum, and within one branch the recursion
// is the sequential DFS — so the merged witness is exactly the
// sequential engine's (lowest disjunct, then lowest top-level branch,
// then depth-first order), no matter which shard ran which branch or
// in which order the shard results arrive.
//
// Stats reassembly is exact for decisive runs because every gate
// charge after setup is attributable to one branch and is
// history-independent: the setup charges (partial-closure check, Q(D)
// evaluation) are identical on every shard, and the per-valuation
// charges (tuple materialization, Δ-constraint rows) depend only on
// the valuation, not on which valuations ran before it — the p(Dm)
// memo is built outside the gate. Near budget boundaries slices can
// tip to either side independently, the same caveat the parallel
// engine documents.

// PartitionPlan names one slice of a K-way deterministic split of the
// top-level disjunct/branch space. The zero value is invalid; the
// canonical whole-space plan is {Slices: 1, Slice: 0}.
type PartitionPlan struct {
	// Slices is the total number of slices K (>= 1).
	Slices int
	// Slice is this slice's index in [0, Slices).
	Slice int
}

// Validate reports whether the plan is well-formed.
func (p PartitionPlan) Validate() error {
	if p.Slices < 1 {
		return fmt.Errorf("core: partition plan needs Slices >= 1, got %d", p.Slices)
	}
	if p.Slice < 0 || p.Slice >= p.Slices {
		return fmt.Errorf("core: partition slice %d out of range [0, %d)", p.Slice, p.Slices)
	}
	return nil
}

// Owns reports whether this slice owns top-level branch `branch` of
// disjunct `disjunct`. Ownership is round-robin over branch index with
// a per-disjunct rotation, so consecutive branches of one disjunct —
// whose subtree costs tend to correlate — land on different slices,
// and every (disjunct, branch) pair is owned by exactly one slice.
func (p PartitionPlan) Owns(disjunct, branch int) bool {
	return (disjunct+branch)%p.Slices == p.Slice
}

// SharedBudget is a cross-slice valuation ledger. Slices of one
// partitioned check that run in the same process and share a
// SharedBudget (Checker.SliceBudget) charge one per-disjunct counter
// between them, so the K-way fan-out trips the MaxValuations cap after
// the same total number of valuations as the sequential and parallel
// engines — instead of granting each slice its own cap and letting a
// K-way run spend up to K× the budget (the per-slice divergence
// TestPartitionBudgetClaim pins).
//
// Budget trips stay merge-deterministic under sharing because the trip
// claims budgetKey(disjunct), which does not encode the claiming
// slice. Two caveats are inherent: per-branch BranchStats valuation
// counts become approximate when slices charge the ledger
// concurrently (the ledger cannot attribute charges to branches), and
// near the cap boundary a shared run may exhaust on work the
// sequential engine would have ordered after the witness — the same
// boundary caveat the parallel engine documents. Away from the
// boundary, verdicts and witnesses are identical.
//
// The zero value is not usable; create with NewSharedBudget. The
// ledger is single-use: one partitioned check, then discard.
type SharedBudget struct {
	mu   sync.Mutex
	caps map[int]*budgetCtl
}

// NewSharedBudget returns an empty ledger for one partitioned check.
func NewSharedBudget() *SharedBudget {
	return &SharedBudget{caps: make(map[int]*budgetCtl)}
}

// disjunct returns the shared controller for one disjunct, creating it
// with the given cap on first use. The first caller's cap wins; slices
// of one check always agree on it (it is the checker's
// effectiveValuations).
func (sb *SharedBudget) disjunct(di, cap int) *budgetCtl {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if bc, ok := sb.caps[di]; ok {
		return bc
	}
	bc := newBudgetCtl(cap)
	sb.caps[di] = bc
	return bc
}

// sliceBudget resolves the valuation controller rcdpSlice uses for one
// disjunct: the shared cross-slice ledger when the checker carries
// one, else a fresh per-slice controller (the legacy divergent mode).
func (ck *Checker) sliceBudget(di int) *budgetCtl {
	if ck.SliceBudget != nil {
		return ck.SliceBudget.disjunct(di, ck.effectiveValuations())
	}
	return newBudgetCtl(ck.effectiveValuations())
}

// NoClaim is the SliceResult.Claim value meaning the slice exhausted
// its branches without claiming a witness or a budget stop. Every real
// claim key is smaller, so min-merging claims across slices works
// without special cases. The value survives a JSON round-trip exactly
// (encoding/json emits int64 as a digit literal and parses it back
// exactly into an int64 field).
const NoClaim = noKey

// BranchStats records the resources one fully- or partially-enumerated
// top-level branch consumed: candidate valuations visited, and the
// gate's join-row and tuple charges attributable to the branch's
// subtree. Zero-consumption branches (pruned at the top-level
// assignment) are omitted from SliceResult.Branches.
type BranchStats struct {
	Disjunct   int   `json:"disjunct"`
	Branch     int   `json:"branch"`
	Valuations int   `json:"valuations"`
	JoinRows   int64 `json:"join_rows,omitempty"`
	Tuples     int64 `json:"tuples,omitempty"`
}

// key returns the branch's arbitration key.
func (b BranchStats) key() int64 { return packKey(b.Disjunct, b.Branch) }

// SliceResult is the outcome of evaluating one partition slice.
type SliceResult struct {
	// Plan identifies the slice.
	Plan PartitionPlan
	// Claim is the smallest arbitration key the slice claimed: a
	// witness key packKey(d, b), a budget key budgetKey(d), or NoClaim.
	Claim int64
	// Verdict is the slice-local outcome: Complete when the slice's
	// branches are exhausted without a claim (the slice alone cannot
	// prove global completeness — that takes all K slices agreeing),
	// Incomplete when it claimed a witness, Unknown on a budget claim
	// or a governance stop.
	Verdict Verdict
	// Reason, when Verdict is Unknown, names the exhausted dimension.
	Reason Reason
	// Setup reports the gate charges of the disjunct-independent setup
	// (partial-closure check, Q(D) evaluation) — identical on every
	// slice of the same check, counted once by MergeSlices.
	Setup BudgetStats
	// Branches are the per-branch consumption records of the branches
	// this slice enumerated (zero-consumption branches omitted).
	Branches []BranchStats
	// Witness, when Incomplete, is the slice's counterexample with
	// Extension/NewTuple/Disjunct populated.
	Witness *RCDPResult
	// Elapsed is the slice's wall-clock duration.
	Elapsed time.Duration
}

// RCDPSliceCtx evaluates one partition slice of an RCDP check: the
// full setup (so preconditions and setup stats match the sequential
// engine), then only the top-level branches plan.Owns, sequentially in
// key order. Governance (context, Budget) applies to the slice as in
// RCDPCtx: a governance stop yields Verdict Unknown with the Reason
// rather than an error. Checker.Workers is ignored — a slice is the
// unit of distribution, and runs strictly sequentially so its claim is
// the slice's DFS-first key.
func (ck *Checker) RCDPSliceCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set, plan PartitionPlan) (*SliceResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	co := startCheck("rcdp-slice", 1)
	start := time.Now()
	gv := newGovernor(ctx, ck.Budget)
	defer gv.close()
	res, err := ck.rcdpSlice(q, d, dm, v, plan, gv)
	if err != nil {
		if r := reasonOf(err); r != ReasonNone {
			out := &SliceResult{
				Plan:    plan,
				Claim:   NoClaim,
				Verdict: VerdictUnknown,
				Reason:  r,
				Setup:   gv.stats(0),
				Elapsed: time.Since(start),
			}
			out.Setup.Elapsed = 0
			co.done("unknown", r, gv.stats(0))
			return out, nil
		}
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	res.Elapsed = time.Since(start)
	total := BudgetStats{}
	for _, b := range res.Branches {
		total.Valuations += b.Valuations
	}
	co.done(res.Verdict.String(), res.Reason, gv.stats(total.Valuations))
	return res, nil
}

// rcdpSlice runs the owned branches of one slice. Claims go through
// the same raceCtl as the parallel engine — with one sequential
// caller, the first claim is the slice's smallest key, because owned
// branches run in ascending key order and a claim cancels everything
// larger.
func (ck *Checker) rcdpSlice(q qlang.Query, d, dm *relation.Database, v *cc.Set, plan PartitionPlan, gv *governor) (*SliceResult, error) {
	gate := gv.gateOf()
	prep, err := ck.prepareRCDP(q, d, dm, v, gate)
	out := &SliceResult{Plan: plan, Claim: NoClaim, Verdict: VerdictComplete}
	if err != nil {
		return nil, err
	}
	out.Setup = BudgetStats{JoinRows: gate.Rows(), Tuples: gate.Tuples()}
	if prep == nil {
		return out, nil // unsatisfiable query: trivially complete
	}

	ctl := newRaceCtl()
claims:
	for di := range prep.tableaux {
		search := prep.searches[di]
		if search == nil {
			continue
		}
		bud := ck.sliceBudget(di)
		t := prep.tableaux[di]
		fn := func(b query.Binding) (any, error) {
			r, err := rcdpWitness(t, di, b, prep.schemas, prep.answerSet, d, dm, v, gate)
			if err != nil {
				return nil, err
			}
			if r == nil {
				return nil, nil
			}
			return r, nil
		}
		tasks := search.branchTasks(ctl, bud, di, fn)
		// Baseline at the current count: a shared ledger may already
		// carry other slices' charges, which are not this slice's.
		prevVisited := bud.count()
		claimed := false
		for bi, task := range tasks {
			if !plan.Owns(di, bi) {
				continue
			}
			rows0, tuples0 := gate.Rows(), gate.Tuples()
			task()
			rec := BranchStats{
				Disjunct:   di,
				Branch:     bi,
				Valuations: bud.count() - prevVisited,
				JoinRows:   gate.Rows() - rows0,
				Tuples:     gate.Tuples() - tuples0,
			}
			prevVisited = bud.count()
			if rec.Valuations != 0 || rec.JoinRows != 0 || rec.Tuples != 0 {
				out.Branches = append(out.Branches, rec)
			}
			if _, key, err := ctl.result(); err != nil {
				return nil, err
			} else if key != noKey {
				// Every branch this slice has not yet run carries a
				// larger key, so nothing can improve on the claim.
				claimed = true
			}
			if claimed {
				break
			}
		}
		noteDisjunct(di, bud.count(), claimed && !keyIsBudget(mustClaim(ctl)))
		if claimed {
			break claims
		}
	}

	val, key, err := ctl.result()
	if err != nil {
		return nil, err
	}
	out.Claim = key
	switch {
	case key == noKey:
		out.Verdict = VerdictComplete
	case keyIsBudget(key):
		out.Verdict = VerdictUnknown
		out.Reason = ReasonValuations
	default:
		w := val.(*RCDPResult)
		w.Verdict = VerdictIncomplete
		out.Verdict = VerdictIncomplete
		out.Witness = w
	}
	return out, nil
}

// mustClaim reads the current best claim key; callers only use it
// after observing a claim, so noKey cannot come back.
func mustClaim(ctl *raceCtl) int64 {
	_, key, _ := ctl.result()
	return key
}

// MergeSlices reassembles the K slice results of one partitioned RCDP
// check into the result the single-process sequential engine would
// produce. The inputs may arrive in any order; each slice index must
// appear exactly once and all plans must agree on K. Arbitration is
// the minimum claim key: a witness claim reproduces the sequential
// witness and its prefix stats (setup charges once, plus every branch
// record with key <= the winner — exactly the branches the sequential
// engine enumerates before stopping); a budget claim reproduces the
// sequential ErrBudgetExceeded surface (Verdict Unknown,
// ReasonValuations); no claims at all is Complete with the summed
// totals. A slice stopped by governance (Unknown without a claim)
// makes the merge Unknown with that slice's reason — unless a witness
// claim exists, which is sound evidence of incompleteness regardless
// (though near governance boundaries it may differ from the
// sequential run's outcome, as with the parallel engine). Stats.Elapsed
// is the maximum slice Elapsed (wall-clock is not part of the
// byte-identity contract).
func MergeSlices(results []*SliceResult) (*RCDPResult, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("core: MergeSlices needs at least one slice result")
	}
	for _, r := range results {
		if r == nil {
			return nil, fmt.Errorf("core: MergeSlices: nil slice result")
		}
	}
	k := results[0].Plan.Slices
	if len(results) != k {
		return nil, fmt.Errorf("core: MergeSlices: got %d results for a %d-way partition", len(results), k)
	}
	order := make([]*SliceResult, k)
	for _, r := range results {
		if r.Plan.Slices != k {
			return nil, fmt.Errorf("core: MergeSlices: mixed partition widths %d and %d", k, r.Plan.Slices)
		}
		if err := r.Plan.Validate(); err != nil {
			return nil, err
		}
		if order[r.Plan.Slice] != nil {
			return nil, fmt.Errorf("core: MergeSlices: slice %d appears twice", r.Plan.Slice)
		}
		order[r.Plan.Slice] = r
	}

	winner := int64(NoClaim)
	var wslice *SliceResult
	for _, r := range order {
		if r.Claim < winner {
			winner = r.Claim
			wslice = r
		}
	}
	var stopped *SliceResult
	for _, r := range order {
		if r.Verdict == VerdictUnknown && r.Claim == NoClaim {
			stopped = r
			break
		}
	}

	// sum assembles the merged stats: setup once (identical on every
	// slice), plus every branch record with key <= limit. Branch sets
	// are disjoint across slices (Owns partitions the key space), so
	// the sum never double-counts.
	sum := func(limit int64) BudgetStats {
		st := order[0].Setup
		st.Elapsed = 0
		for _, r := range order {
			for _, b := range r.Branches {
				if b.key() <= limit {
					st.Valuations += b.Valuations
					st.JoinRows += b.JoinRows
					st.Tuples += b.Tuples
				}
			}
			if r.Elapsed > st.Elapsed {
				st.Elapsed = r.Elapsed
			}
		}
		return st
	}

	switch {
	case winner != NoClaim && !keyIsBudget(winner):
		w := wslice.Witness
		if w == nil {
			return nil, fmt.Errorf("core: MergeSlices: slice %d claims witness key %d but carries no witness", wslice.Plan.Slice, winner)
		}
		st := sum(winner)
		return &RCDPResult{
			Complete:   false,
			Verdict:    VerdictIncomplete,
			Extension:  w.Extension,
			NewTuple:   w.NewTuple,
			Disjunct:   w.Disjunct,
			Valuations: st.Valuations,
			Stats:      st,
		}, nil
	case winner != NoClaim:
		// Budget claim: mirror RCDPCtx's governance surface, which
		// reports zero Valuations in Stats for Unknown verdicts.
		st := sum(winner)
		st.Valuations = 0
		return &RCDPResult{Verdict: VerdictUnknown, Reason: ReasonValuations, Stats: st}, nil
	case stopped != nil:
		st := stopped.Setup
		for _, b := range stopped.Branches {
			st.JoinRows += b.JoinRows
			st.Tuples += b.Tuples
		}
		st.Valuations = 0
		for _, r := range order {
			if r.Elapsed > st.Elapsed {
				st.Elapsed = r.Elapsed
			}
		}
		return &RCDPResult{Verdict: VerdictUnknown, Reason: stopped.Reason, Stats: st}, nil
	default:
		st := sum(NoClaim)
		return &RCDPResult{Complete: true, Verdict: VerdictComplete, Valuations: st.Valuations, Stats: st}, nil
	}
}
