package core

import (
	"repro/internal/cc"
	"repro/internal/cq"
	"repro/internal/relation"
)

// Inert-position analysis. A (relation, column) position is inert with
// respect to a constraint set V when no CC query can distinguish values
// at that position: every atom over the relation in every constraint
// tableau carries, at that column, a variable that occurs exactly once
// in the whole tableau and appears neither in the tableau's head nor in
// its inequality conditions. The value a candidate extension places at
// an inert position can then be swapped for a dedicated fresh value
// without changing (a) whether any CC match exists or (b) any CC match
// head — so a search variable all of whose occurrences are inert (and
// which is itself outside the query tableau's head and inequalities)
// can be pinned to one fresh value. This collapse is exact: it shrinks
// the Adom valuation space of Proposition 3.3 without changing the
// existence of counterexamples.

// inertPositions computes the map rel → column → non-inert (true means
// the column is *constrained*; absent means inert).
func inertPositions(v *cc.Set) map[string]map[int]bool {
	constrained := make(map[string]map[int]bool)
	mark := func(rel string, col int) {
		m := constrained[rel]
		if m == nil {
			m = make(map[int]bool)
			constrained[rel] = m
		}
		m[col] = true
	}
	if v == nil {
		return constrained
	}
	for _, c := range v.Constraints {
		for _, t := range c.Q.Tableaux() {
			occ := make(map[string]int)
			special := make(map[string]bool) // head or diseq variables
			for _, tpl := range t.Templates {
				for _, a := range tpl.Args {
					if a.IsVar {
						occ[a.Name]++
					}
				}
			}
			for _, h := range t.Head {
				if h.IsVar {
					special[h.Name] = true
				}
			}
			for _, d := range t.Diseqs {
				if d.L.IsVar {
					special[d.L.Name] = true
				}
				if d.R.IsVar {
					special[d.R.Name] = true
				}
			}
			for _, tpl := range t.Templates {
				for col, a := range tpl.Args {
					if !a.IsVar || occ[a.Name] > 1 || special[a.Name] {
						mark(tpl.Rel, col)
					}
				}
			}
		}
	}
	return constrained
}

// collapsibleVars returns the query-tableau variables that can be
// pinned to dedicated fresh values: variables outside the tableau's
// head and inequality conditions whose every template occurrence is at
// an inert position of V. Only variables with an infinite admissible
// domain are collapsed (finite-domain variables are already cheap and
// their domains may exclude fresh values).
func collapsibleVars(t *cq.Tableau, constrained map[string]map[int]bool, doms map[string]relation.Domain) []string {
	special := make(map[string]bool)
	for _, h := range t.Head {
		if h.IsVar {
			special[h.Name] = true
		}
	}
	for _, d := range t.Diseqs {
		if d.L.IsVar {
			special[d.L.Name] = true
		}
		if d.R.IsVar {
			special[d.R.Name] = true
		}
	}
	blocked := make(map[string]bool)
	seen := make(map[string]bool)
	var order []string
	for _, tpl := range t.Templates {
		for col, a := range tpl.Args {
			if !a.IsVar {
				continue
			}
			if !seen[a.Name] {
				seen[a.Name] = true
				order = append(order, a.Name)
			}
			if special[a.Name] || constrained[tpl.Rel][col] {
				blocked[a.Name] = true
			}
		}
	}
	var out []string
	for _, v := range order {
		if !blocked[v] && doms[v].Kind == relation.Infinite {
			out = append(out, v)
		}
	}
	return out
}

// applyCollapse pins the collapsible variables of the search to
// dedicated fresh values taken from the end of the universe's fresh
// pool (the symmetry-breaking prefix for the remaining variables grows
// from the front, so the two never collide as long as the pool holds
// one fresh value per variable).
func (s *valuationSearch) applyCollapse(v *cc.Set) {
	s.applyCollapseFrom(inertPositions(v))
}

// applyCollapseFrom is applyCollapse with the inert-position analysis
// precomputed. The analysis depends only on V, so multi-disjunct
// callers (and the parallel engine, which shares the resulting
// collapsed map read-only across workers) compute it once.
func (s *valuationSearch) applyCollapseFrom(constrained map[string]map[int]bool) {
	vars := collapsibleVars(s.t, constrained, s.doms)
	if len(vars) == 0 {
		return
	}
	if s.collapsed == nil {
		s.collapsed = make(map[string]relation.Value, len(vars))
	}
	idx := len(s.u.Fresh)
	for _, name := range vars {
		idx--
		if idx < 0 {
			return // fresh pool too small; fall back to full search
		}
		s.collapsed[name] = s.u.Fresh[idx]
	}
}
