package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file provides bounded semi-decision procedures. They serve two
// roles: (a) the FO/FP rows of Tables I and II are undecidable
// (Theorems 3.1 and 4.1), so bounded exploration is the best any
// implementation can do — "incomplete" answers are sound and carry a
// witness, while "complete" only holds up to the explored bound; and
// (b) on the decidable fragments they double as brute-force oracles
// against which the exact deciders are property-tested, because for
// monotone languages Proposition 3.3 bounds counterexamples by
// |T_Q| tuples over Adom, making the bounded search exact once the
// bound covers the tableau size and enough fresh values are in the
// pool.

// BoundedOpts configures the bounded searches.
type BoundedOpts struct {
	// MaxAdd bounds how many tuples an extension may add.
	MaxAdd int
	// FreshValues is the number of fresh values added to the value
	// pool beyond the constants of the problem.
	FreshValues int
	// MaxPool caps the candidate tuple pool; the search fails with an
	// error when the schema/value combination exceeds it.
	MaxPool int
	// Workers sizes the worker pool of BoundedRCDP's subset enumeration
	// with the same convention as Checker.Workers: 0 uses GOMAXPROCS, 1
	// forces sequential search. The witness is deterministic either way
	// (first-tuple branches race on a raceCtl, smallest branch wins);
	// Explored becomes a total-work counter in parallel mode.
	Workers int
	// Budget bounds the resources of a governed search (see the Budget
	// type). MaxValuations caps the number of candidate extensions
	// (BoundedRCDP) or candidate databases (BoundedRCQP) explored.
	Budget Budget
}

func (o BoundedOpts) withDefaults() BoundedOpts {
	if o.MaxAdd == 0 {
		o.MaxAdd = 2
	}
	if o.FreshValues == 0 {
		o.FreshValues = 2
	}
	if o.MaxPool == 0 {
		o.MaxPool = 200000
	}
	return o
}

// BoundedRCDPResult is the outcome of a bounded completeness check.
type BoundedRCDPResult struct {
	// Verdict is the three-valued governed outcome. VerdictComplete
	// only certifies completeness up to MaxAdd; VerdictIncomplete is
	// sound unconditionally; VerdictUnknown means governance stopped
	// the search (see Reason).
	Verdict Verdict
	// Reason names the exhausted dimension on VerdictUnknown.
	Reason Reason
	// Stats reports resource consumption (governed runs only count
	// JoinRows/Tuples; Valuations is the explored-candidate count).
	Stats BudgetStats
	// Incomplete reports that a partially closed extension changing
	// Q(D) was found; this answer is sound unconditionally.
	Incomplete bool
	// Extension and NewTuple witness incompleteness.
	Extension *relation.Database
	NewTuple  relation.Tuple
	// Explored is the number of candidate extensions checked.
	Explored int
	// MaxAdd echoes the bound: a non-Incomplete result only certifies
	// completeness for extensions of at most this many pool tuples.
	MaxAdd int
}

// BoundedRCDP searches for a partially closed extension of D by at most
// MaxAdd tuples (over the constants of the problem plus FreshValues
// fresh values) that changes the answer to Q. It accepts every query
// and constraint language, including FO and FP. It is the ungoverned
// wrapper over BoundedRCDPCtx: a governance stop surfaces as the
// corresponding sentinel error instead of an Unknown verdict.
func BoundedRCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set, opts BoundedOpts) (*BoundedRCDPResult, error) {
	res, err := BoundedRCDPCtx(context.Background(), q, d, dm, v, opts)
	if err != nil {
		return nil, err
	}
	if res.Verdict == VerdictUnknown {
		return nil, res.Reason.Err()
	}
	return res, nil
}

// BoundedRCDPCtx is the governed form of BoundedRCDP: the search stops
// promptly when ctx is cancelled or a dimension of opts.Budget runs
// out, returning a VerdictUnknown result (nil error) carrying the
// Reason and the resources consumed.
func BoundedRCDPCtx(ctx context.Context, q qlang.Query, d, dm *relation.Database, v *cc.Set, opts BoundedOpts) (*BoundedRCDPResult, error) {
	o := opts.withDefaults()
	co := startCheck("bounded-rcdp", o.Workers)
	gv := newGovernor(ctx, o.Budget)
	defer gv.close()
	res, err := boundedRCDPGov(q, d, dm, v, o, gv.gateOf())
	if err != nil {
		if r := reasonOf(err); r != ReasonNone {
			out := &BoundedRCDPResult{Verdict: VerdictUnknown, Reason: r, Stats: gv.stats(0), MaxAdd: o.MaxAdd}
			co.done("unknown", r, out.Stats)
			return out, nil
		}
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	if res.Incomplete {
		res.Verdict = VerdictIncomplete
	} else {
		res.Verdict = VerdictComplete
	}
	res.Stats = gv.stats(res.Explored)
	co.done(res.Verdict.String(), ReasonNone, res.Stats)
	return res, nil
}

// boundedRCDPGov is the engine shared by the governed and ungoverned
// entry points; a nil gate is the uninstrumented legacy path. The
// explored-candidate cap comes from o.Budget.MaxValuations (0 =
// unlimited). o must already have defaults applied.
func boundedRCDPGov(q qlang.Query, d, dm *relation.Database, v *cc.Set, o BoundedOpts, gate *query.Gate) (*BoundedRCDPResult, error) {
	if ok, err := v.SatisfiedGate(d, dm, gate); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("core: D is not partially closed with respect to (Dm, V)")
	}
	base, err := q.EvalGate(d, gate)
	if err != nil {
		return nil, err
	}
	baseSet := make(map[string]bool, len(base))
	for _, t := range base {
		baseSet[t.Key()] = true
	}

	pool, err := tuplePool(d, dm, q, v, o)
	if err != nil {
		return nil, err
	}
	if wp := newWorkerPool(o.Workers); wp != nil {
		return boundedRCDPParallel(q, d, dm, v, o, pool, baseSet, len(base), wp, gate)
	}
	res := &BoundedRCDPResult{MaxAdd: o.MaxAdd}
	deltaOK := v.AllMonotone()
	expCap := o.Budget.MaxValuations

	// Enumerate subsets of the pool of size 1..MaxAdd. delta carries just
	// the added tuples, so the partial-closure recheck of each candidate
	// can run differentially against the verified base (see
	// boundedCounterexample).
	var rec func(start int, cur, delta *relation.Database, added int) (*BoundedRCDPResult, error)
	rec = func(start int, cur, delta *relation.Database, added int) (*BoundedRCDPResult, error) {
		if added > 0 {
			if err := gate.Poll(); err != nil {
				return nil, err
			}
			res.Explored++
			if expCap > 0 && res.Explored > expCap {
				return nil, ErrBudgetExceeded
			}
			r, err := boundedCounterexample(q, d, dm, v, baseSet, len(base), cur, delta, deltaOK, o.MaxAdd, gate)
			if err != nil {
				return nil, err
			}
			if r != nil {
				r.Explored = res.Explored
				return r, nil
			}
		}
		if added == o.MaxAdd {
			return nil, nil
		}
		for i := start; i < len(pool); i++ {
			if d.Contains(pool[i].rel, pool[i].tup) {
				continue
			}
			next := cur.Clone()
			if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
				continue // finite-domain violation: not a legal tuple
			}
			nd := delta.Clone()
			if err := nd.Add(pool[i].rel, pool[i].tup); err != nil {
				continue
			}
			if err := gate.ChargeTuples(1); err != nil {
				return nil, err
			}
			r, err := rec(i+1, next, nd, added+1)
			if err != nil || r != nil {
				return r, err
			}
		}
		return nil, nil
	}
	r, err := rec(0, d.Clone(), emptyDatabase(schemasOf(d)), 0)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return r, nil
	}
	return res, nil
}

// boundedCounterexample checks one candidate extension: is cur partially
// closed and does it change Q's answer? cur = base ∪ delta; when deltaOK
// (all constraints monotone) the partial-closure recheck runs
// differentially via SatisfiedDelta against the entry-verified base
// instead of re-evaluating every constraint body over cur from scratch.
// It returns a result without the Explored count (the caller owns the
// accounting) and reads only shared warmed/immutable inputs plus the
// gate's atomics, so parallel branches may call it directly.
func boundedCounterexample(q qlang.Query, base, dm *relation.Database, v *cc.Set,
	baseSet map[string]bool, baseLen int, cur, delta *relation.Database, deltaOK bool, maxAdd int, gate *query.Gate) (*BoundedRCDPResult, error) {
	var ok bool
	var err error
	if deltaOK && delta != nil {
		ok, err = v.SatisfiedDeltaGate(base, delta, dm, gate)
	} else {
		ok, err = v.SatisfiedGate(cur, dm, gate)
	}
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	ans, err := q.EvalGate(cur, gate)
	if err != nil {
		return nil, err
	}
	for _, t := range ans {
		if !baseSet[t.Key()] {
			ext := emptyDatabase(schemasOf(cur))
			ext.UnionInto(cur)
			return &BoundedRCDPResult{Incomplete: true, Extension: ext, NewTuple: t, MaxAdd: maxAdd}, nil
		}
	}
	if len(ans) != baseLen {
		// An answer disappeared: impossible for monotone languages,
		// possible for FO/FP.
		ext := emptyDatabase(schemasOf(cur))
		ext.UnionInto(cur)
		return &BoundedRCDPResult{Incomplete: true, Extension: ext, MaxAdd: maxAdd}, nil
	}
	return nil, nil
}

// boundedRCDPParallel fans the first-tuple branches of the subset
// enumeration out to the pool: branch i explores exactly the subsets
// whose smallest pool index is i, which partitions the sequential
// search's pre-order into branch-major segments — so the smallest
// claiming branch's DFS-first counterexample is the one the sequential
// engine returns. Explored becomes the total work across all branches
// (the sequential early return makes the per-scheduling count
// meaningless; the witness itself is scheduling-independent). An
// explored-candidate cap claims the past-every-branch key
// int64(len(pool)), so any genuine witness beats it — matching the
// sequential engine's "budget surfaces only without a witness"
// resolution for decisive budgets.
func boundedRCDPParallel(q qlang.Query, d, dm *relation.Database, v *cc.Set, o BoundedOpts,
	pool []poolTuple, baseSet map[string]bool, baseLen int, wp *workerPool, gate *query.Gate) (*BoundedRCDPResult, error) {
	warmShared(d, dm)
	ctl := newRaceCtl()
	deltaOK := v.AllMonotone()
	expCap := int64(o.Budget.MaxValuations)
	var explored atomic.Int64
	tasks := make([]func(), 0, len(pool))
	for bi := range pool {
		bi := bi
		tasks = append(tasks, func() {
			key := int64(bi)
			if ctl.cancelled(key) {
				return
			}
			if d.Contains(pool[bi].rel, pool[bi].tup) {
				return
			}
			first := d.Clone()
			if err := first.Add(pool[bi].rel, pool[bi].tup); err != nil {
				return // finite-domain violation: not a legal tuple
			}
			firstDelta := emptyDatabase(schemasOf(d))
			if err := firstDelta.Add(pool[bi].rel, pool[bi].tup); err != nil {
				return
			}
			if err := gate.ChargeTuples(1); err != nil {
				ctl.fail(err)
				return
			}
			var rec func(start int, cur, delta *relation.Database, added int) error
			rec = func(start int, cur, delta *relation.Database, added int) error {
				if ctl.cancelled(key) {
					return errAbandoned
				}
				if err := gate.Poll(); err != nil {
					return err
				}
				if n := explored.Add(1); expCap > 0 && n > expCap {
					ctl.claim(int64(len(pool)), nil)
					return errBudgetStop
				}
				r, err := boundedCounterexample(q, d, dm, v, baseSet, baseLen, cur, delta, deltaOK, o.MaxAdd, gate)
				if err != nil {
					return err
				}
				if r != nil {
					ctl.claim(key, r)
					return errStop
				}
				if added == o.MaxAdd {
					return nil
				}
				for i := start; i < len(pool); i++ {
					if d.Contains(pool[i].rel, pool[i].tup) {
						continue
					}
					next := cur.Clone()
					if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
						continue
					}
					nd := delta.Clone()
					if err := nd.Add(pool[i].rel, pool[i].tup); err != nil {
						continue
					}
					if err := gate.ChargeTuples(1); err != nil {
						return err
					}
					if err := rec(i+1, next, nd, added+1); err != nil {
						return err
					}
				}
				return nil
			}
			switch err := rec(bi+1, first, firstDelta, 1); err {
			case nil, errStop, errAbandoned, errBudgetStop:
			default:
				ctl.fail(err)
			}
		})
	}
	wp.run(tasks)
	val, key, err := ctl.result()
	if err != nil {
		return nil, err
	}
	if val != nil {
		r := val.(*BoundedRCDPResult)
		r.Explored = int(explored.Load())
		return r, nil
	}
	if key != noKey {
		// A budget claim with no witness beating it.
		return nil, ErrBudgetExceeded
	}
	return &BoundedRCDPResult{MaxAdd: o.MaxAdd, Explored: int(explored.Load())}, nil
}

type poolTuple struct {
	rel string
	tup relation.Tuple
}

// tuplePool enumerates all candidate tuples over the value pool for
// every relation of D's schema.
func tuplePool(d, dm *relation.Database, q qlang.Query, v *cc.Set, o BoundedOpts) ([]poolTuple, error) {
	u := NewUniverse(d, dm, q, v, o.FreshValues)
	vals := append(append([]relation.Value{}, u.Consts...), u.Fresh...)
	if len(vals) == 0 {
		vals = u.Fresh
	}
	var pool []poolTuple
	for _, rel := range d.Relations() {
		s := d.Schema(rel)
		// Per-column candidate values (finite domains stay exact).
		cols := make([][]relation.Value, s.Arity())
		total := 1
		for i, a := range s.Attrs {
			if a.Domain.Kind == relation.Finite {
				cols[i] = a.Domain.Values
			} else {
				cols[i] = vals
			}
			total *= len(cols[i])
			if total > o.MaxPool {
				return nil, fmt.Errorf("core: bounded search pool for %s exceeds %d tuples; reduce FreshValues or schema width", rel, o.MaxPool)
			}
		}
		tup := make(relation.Tuple, s.Arity())
		var gen func(i int)
		gen = func(i int) {
			if i == s.Arity() {
				pool = append(pool, poolTuple{rel: rel, tup: tup.Clone()})
				return
			}
			for _, val := range cols[i] {
				tup[i] = val
				gen(i + 1)
			}
		}
		gen(0)
	}
	return pool, nil
}

// BoundedRCQPResult is the outcome of a bounded witness search for the
// relatively complete query problem.
type BoundedRCQPResult struct {
	// Verdict is the governed outcome: VerdictComplete iff Found,
	// VerdictIncomplete when the space was exhausted without a witness,
	// VerdictUnknown when governance stopped the search (see Reason).
	Verdict Verdict
	// Reason names the exhausted dimension on VerdictUnknown.
	Reason Reason
	// Stats reports resource consumption of governed runs.
	Stats BudgetStats
	// Found reports that a candidate database of at most MaxTuples pool
	// tuples was found that is partially closed and complete for Q up
	// to extensions of MaxAdd tuples. For monotone languages with the
	// bounds covering the tableau size this is a genuine witness; for
	// FO/FP it is evidence up to the bound.
	Found   bool
	Witness *relation.Database
	// Explored is the number of candidate databases checked.
	Explored int
}

// BoundedRCQP searches for a database of at most maxTuples pool tuples
// that is partially closed with respect to (Dm, V) and complete for Q
// up to the BoundedRCDP bound. schemas describes the database schema R.
// It is the ungoverned wrapper over BoundedRCQPCtx.
func BoundedRCQP(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, maxTuples int, opts BoundedOpts) (*BoundedRCQPResult, error) {
	res, err := BoundedRCQPCtx(context.Background(), q, dm, v, schemas, maxTuples, opts)
	if err != nil {
		return nil, err
	}
	if res.Verdict == VerdictUnknown {
		return nil, res.Reason.Err()
	}
	return res, nil
}

// BoundedRCQPCtx is the governed form of BoundedRCQP. The inner
// per-candidate BoundedRCDP searches share the check's single gate, so
// the global dimensions (deadline, rows, tuples) bound the whole
// search; the explored-candidate cap (Budget.MaxValuations) applies to
// the outer candidate-database enumeration, and an inner search that
// trips it merely marks that candidate unverifiable (skipped), matching
// RCQP's per-candidate valuation-budget semantics.
func BoundedRCQPCtx(ctx context.Context, q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, maxTuples int, opts BoundedOpts) (*BoundedRCQPResult, error) {
	o := opts.withDefaults()
	co := startCheck("bounded-rcqp", o.Workers)
	gv := newGovernor(ctx, o.Budget)
	defer gv.close()
	res, err := boundedRCQPGov(q, dm, v, schemas, maxTuples, o, gv.gateOf())
	if err != nil {
		if r := reasonOf(err); r != ReasonNone {
			out := &BoundedRCQPResult{Verdict: VerdictUnknown, Reason: r, Stats: gv.stats(0)}
			co.done("unknown", r, out.Stats)
			return out, nil
		}
		co.done("error", ReasonNone, gv.stats(0))
		return nil, err
	}
	if res.Found {
		res.Verdict = VerdictComplete
	} else {
		res.Verdict = VerdictIncomplete
	}
	res.Stats = gv.stats(res.Explored)
	co.done(res.Verdict.String(), ReasonNone, res.Stats)
	return res, nil
}

func boundedRCQPGov(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, maxTuples int, o BoundedOpts, gate *query.Gate) (*BoundedRCQPResult, error) {
	empty := emptyDatabase(schemas)
	pool, err := tuplePool(empty, dm, q, v, o)
	if err != nil {
		return nil, err
	}
	expCap := o.Budget.MaxValuations
	res := &BoundedRCQPResult{}
	var rec func(start int, cur *relation.Database, added int) (*BoundedRCQPResult, error)
	rec = func(start int, cur *relation.Database, added int) (*BoundedRCQPResult, error) {
		if err := gate.Poll(); err != nil {
			return nil, err
		}
		res.Explored++
		if expCap > 0 && res.Explored > expCap {
			return nil, ErrBudgetExceeded
		}
		if ok, err := v.SatisfiedGate(cur, dm, gate); err != nil {
			return nil, err
		} else if ok {
			r, err := boundedRCDPGov(q, cur, dm, v, o, gate)
			switch {
			case errors.Is(err, ErrBudgetExceeded):
				// The inner completeness check ran out of its candidate
				// budget: the candidate is unverifiable, skip it.
			case err != nil:
				return nil, err
			case !r.Incomplete:
				return &BoundedRCQPResult{Found: true, Witness: cur, Explored: res.Explored}, nil
			}
		}
		if added == maxTuples {
			return nil, nil
		}
		for i := start; i < len(pool); i++ {
			next := cur.Clone()
			if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
				continue
			}
			if err := gate.ChargeTuples(1); err != nil {
				return nil, err
			}
			r, err := rec(i+1, next, added+1)
			if err != nil || r != nil {
				return r, err
			}
		}
		return nil, nil
	}
	r, err := rec(0, empty, 0)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return r, nil
	}
	return res, nil
}
