package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cc"
	"repro/internal/qlang"
	"repro/internal/relation"
)

// This file provides bounded semi-decision procedures. They serve two
// roles: (a) the FO/FP rows of Tables I and II are undecidable
// (Theorems 3.1 and 4.1), so bounded exploration is the best any
// implementation can do — "incomplete" answers are sound and carry a
// witness, while "complete" only holds up to the explored bound; and
// (b) on the decidable fragments they double as brute-force oracles
// against which the exact deciders are property-tested, because for
// monotone languages Proposition 3.3 bounds counterexamples by
// |T_Q| tuples over Adom, making the bounded search exact once the
// bound covers the tableau size and enough fresh values are in the
// pool.

// BoundedOpts configures the bounded searches.
type BoundedOpts struct {
	// MaxAdd bounds how many tuples an extension may add.
	MaxAdd int
	// FreshValues is the number of fresh values added to the value
	// pool beyond the constants of the problem.
	FreshValues int
	// MaxPool caps the candidate tuple pool; the search fails with an
	// error when the schema/value combination exceeds it.
	MaxPool int
	// Workers sizes the worker pool of BoundedRCDP's subset enumeration
	// with the same convention as Checker.Workers: 0 uses GOMAXPROCS, 1
	// forces sequential search. The witness is deterministic either way
	// (first-tuple branches race on a raceCtl, smallest branch wins);
	// Explored becomes a total-work counter in parallel mode.
	Workers int
}

func (o BoundedOpts) withDefaults() BoundedOpts {
	if o.MaxAdd == 0 {
		o.MaxAdd = 2
	}
	if o.FreshValues == 0 {
		o.FreshValues = 2
	}
	if o.MaxPool == 0 {
		o.MaxPool = 200000
	}
	return o
}

// BoundedRCDPResult is the outcome of a bounded completeness check.
type BoundedRCDPResult struct {
	// Incomplete reports that a partially closed extension changing
	// Q(D) was found; this answer is sound unconditionally.
	Incomplete bool
	// Extension and NewTuple witness incompleteness.
	Extension *relation.Database
	NewTuple  relation.Tuple
	// Explored is the number of candidate extensions checked.
	Explored int
	// MaxAdd echoes the bound: a non-Incomplete result only certifies
	// completeness for extensions of at most this many pool tuples.
	MaxAdd int
}

// BoundedRCDP searches for a partially closed extension of D by at most
// MaxAdd tuples (over the constants of the problem plus FreshValues
// fresh values) that changes the answer to Q. It accepts every query
// and constraint language, including FO and FP.
func BoundedRCDP(q qlang.Query, d, dm *relation.Database, v *cc.Set, opts BoundedOpts) (*BoundedRCDPResult, error) {
	o := opts.withDefaults()
	if ok, err := v.Satisfied(d, dm); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("core: D is not partially closed with respect to (Dm, V)")
	}
	base, err := q.Eval(d)
	if err != nil {
		return nil, err
	}
	baseSet := make(map[string]bool, len(base))
	for _, t := range base {
		baseSet[t.Key()] = true
	}

	pool, err := tuplePool(d, dm, q, v, o)
	if err != nil {
		return nil, err
	}
	if wp := newWorkerPool(o.Workers); wp != nil {
		return boundedRCDPParallel(q, d, dm, v, o, pool, baseSet, len(base), wp)
	}
	res := &BoundedRCDPResult{MaxAdd: o.MaxAdd}
	deltaOK := v.AllMonotone()

	// Enumerate subsets of the pool of size 1..MaxAdd. delta carries just
	// the added tuples, so the partial-closure recheck of each candidate
	// can run differentially against the verified base (see
	// boundedCounterexample).
	var rec func(start int, cur, delta *relation.Database, added int) (*BoundedRCDPResult, error)
	rec = func(start int, cur, delta *relation.Database, added int) (*BoundedRCDPResult, error) {
		if added > 0 {
			res.Explored++
			r, err := boundedCounterexample(q, d, dm, v, baseSet, len(base), cur, delta, deltaOK, o.MaxAdd)
			if err != nil {
				return nil, err
			}
			if r != nil {
				r.Explored = res.Explored
				return r, nil
			}
		}
		if added == o.MaxAdd {
			return nil, nil
		}
		for i := start; i < len(pool); i++ {
			if d.Contains(pool[i].rel, pool[i].tup) {
				continue
			}
			next := cur.Clone()
			if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
				continue // finite-domain violation: not a legal tuple
			}
			nd := delta.Clone()
			if err := nd.Add(pool[i].rel, pool[i].tup); err != nil {
				continue
			}
			r, err := rec(i+1, next, nd, added+1)
			if err != nil || r != nil {
				return r, err
			}
		}
		return nil, nil
	}
	r, err := rec(0, d.Clone(), emptyDatabase(schemasOf(d)), 0)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return r, nil
	}
	return res, nil
}

// boundedCounterexample checks one candidate extension: is cur partially
// closed and does it change Q's answer? cur = base ∪ delta; when deltaOK
// (all constraints monotone) the partial-closure recheck runs
// differentially via SatisfiedDelta against the entry-verified base
// instead of re-evaluating every constraint body over cur from scratch.
// It returns a result without the Explored count (the caller owns the
// accounting) and reads only shared warmed/immutable inputs, so parallel
// branches may call it directly.
func boundedCounterexample(q qlang.Query, base, dm *relation.Database, v *cc.Set,
	baseSet map[string]bool, baseLen int, cur, delta *relation.Database, deltaOK bool, maxAdd int) (*BoundedRCDPResult, error) {
	var ok bool
	var err error
	if deltaOK && delta != nil {
		ok, err = v.SatisfiedDelta(base, delta, dm)
	} else {
		ok, err = v.Satisfied(cur, dm)
	}
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	ans, err := q.Eval(cur)
	if err != nil {
		return nil, err
	}
	for _, t := range ans {
		if !baseSet[t.Key()] {
			ext := emptyDatabase(schemasOf(cur))
			ext.UnionInto(cur)
			return &BoundedRCDPResult{Incomplete: true, Extension: ext, NewTuple: t, MaxAdd: maxAdd}, nil
		}
	}
	if len(ans) != baseLen {
		// An answer disappeared: impossible for monotone languages,
		// possible for FO/FP.
		ext := emptyDatabase(schemasOf(cur))
		ext.UnionInto(cur)
		return &BoundedRCDPResult{Incomplete: true, Extension: ext, MaxAdd: maxAdd}, nil
	}
	return nil, nil
}

// boundedRCDPParallel fans the first-tuple branches of the subset
// enumeration out to the pool: branch i explores exactly the subsets
// whose smallest pool index is i, which partitions the sequential
// search's pre-order into branch-major segments — so the smallest
// claiming branch's DFS-first counterexample is the one the sequential
// engine returns. Explored becomes the total work across all branches
// (the sequential early return makes the per-scheduling count
// meaningless; the witness itself is scheduling-independent).
func boundedRCDPParallel(q qlang.Query, d, dm *relation.Database, v *cc.Set, o BoundedOpts,
	pool []poolTuple, baseSet map[string]bool, baseLen int, wp *workerPool) (*BoundedRCDPResult, error) {
	warmShared(d, dm)
	ctl := newRaceCtl()
	deltaOK := v.AllMonotone()
	var explored atomic.Int64
	tasks := make([]func(), 0, len(pool))
	for bi := range pool {
		bi := bi
		tasks = append(tasks, func() {
			key := int64(bi)
			if ctl.cancelled(key) {
				return
			}
			if d.Contains(pool[bi].rel, pool[bi].tup) {
				return
			}
			first := d.Clone()
			if err := first.Add(pool[bi].rel, pool[bi].tup); err != nil {
				return // finite-domain violation: not a legal tuple
			}
			firstDelta := emptyDatabase(schemasOf(d))
			if err := firstDelta.Add(pool[bi].rel, pool[bi].tup); err != nil {
				return
			}
			var rec func(start int, cur, delta *relation.Database, added int) error
			rec = func(start int, cur, delta *relation.Database, added int) error {
				if ctl.cancelled(key) {
					return errAbandoned
				}
				explored.Add(1)
				r, err := boundedCounterexample(q, d, dm, v, baseSet, baseLen, cur, delta, deltaOK, o.MaxAdd)
				if err != nil {
					return err
				}
				if r != nil {
					ctl.claim(key, r)
					return errStop
				}
				if added == o.MaxAdd {
					return nil
				}
				for i := start; i < len(pool); i++ {
					if d.Contains(pool[i].rel, pool[i].tup) {
						continue
					}
					next := cur.Clone()
					if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
						continue
					}
					nd := delta.Clone()
					if err := nd.Add(pool[i].rel, pool[i].tup); err != nil {
						continue
					}
					if err := rec(i+1, next, nd, added+1); err != nil {
						return err
					}
				}
				return nil
			}
			switch err := rec(bi+1, first, firstDelta, 1); err {
			case nil, errStop, errAbandoned:
			default:
				ctl.fail(err)
			}
		})
	}
	wp.run(tasks)
	val, _, err := ctl.result()
	if err != nil {
		return nil, err
	}
	if val != nil {
		r := val.(*BoundedRCDPResult)
		r.Explored = int(explored.Load())
		return r, nil
	}
	return &BoundedRCDPResult{MaxAdd: o.MaxAdd, Explored: int(explored.Load())}, nil
}

type poolTuple struct {
	rel string
	tup relation.Tuple
}

// tuplePool enumerates all candidate tuples over the value pool for
// every relation of D's schema.
func tuplePool(d, dm *relation.Database, q qlang.Query, v *cc.Set, o BoundedOpts) ([]poolTuple, error) {
	u := NewUniverse(d, dm, q, v, o.FreshValues)
	vals := append(append([]relation.Value{}, u.Consts...), u.Fresh...)
	if len(vals) == 0 {
		vals = u.Fresh
	}
	var pool []poolTuple
	for _, rel := range d.Relations() {
		s := d.Schema(rel)
		// Per-column candidate values (finite domains stay exact).
		cols := make([][]relation.Value, s.Arity())
		total := 1
		for i, a := range s.Attrs {
			if a.Domain.Kind == relation.Finite {
				cols[i] = a.Domain.Values
			} else {
				cols[i] = vals
			}
			total *= len(cols[i])
			if total > o.MaxPool {
				return nil, fmt.Errorf("core: bounded search pool for %s exceeds %d tuples; reduce FreshValues or schema width", rel, o.MaxPool)
			}
		}
		tup := make(relation.Tuple, s.Arity())
		var gen func(i int)
		gen = func(i int) {
			if i == s.Arity() {
				pool = append(pool, poolTuple{rel: rel, tup: tup.Clone()})
				return
			}
			for _, val := range cols[i] {
				tup[i] = val
				gen(i + 1)
			}
		}
		gen(0)
	}
	return pool, nil
}

// BoundedRCQPResult is the outcome of a bounded witness search for the
// relatively complete query problem.
type BoundedRCQPResult struct {
	// Found reports that a candidate database of at most MaxTuples pool
	// tuples was found that is partially closed and complete for Q up
	// to extensions of MaxAdd tuples. For monotone languages with the
	// bounds covering the tableau size this is a genuine witness; for
	// FO/FP it is evidence up to the bound.
	Found   bool
	Witness *relation.Database
	// Explored is the number of candidate databases checked.
	Explored int
}

// BoundedRCQP searches for a database of at most maxTuples pool tuples
// that is partially closed with respect to (Dm, V) and complete for Q
// up to the BoundedRCDP bound. schemas describes the database schema R.
func BoundedRCQP(q qlang.Query, dm *relation.Database, v *cc.Set, schemas map[string]*relation.Schema, maxTuples int, opts BoundedOpts) (*BoundedRCQPResult, error) {
	o := opts.withDefaults()
	empty := emptyDatabase(schemas)
	pool, err := tuplePool(empty, dm, q, v, o)
	if err != nil {
		return nil, err
	}
	res := &BoundedRCQPResult{}
	var rec func(start int, cur *relation.Database, added int) (*BoundedRCQPResult, error)
	rec = func(start int, cur *relation.Database, added int) (*BoundedRCQPResult, error) {
		res.Explored++
		if ok, err := v.Satisfied(cur, dm); err != nil {
			return nil, err
		} else if ok {
			r, err := BoundedRCDP(q, cur, dm, v, opts)
			if err != nil {
				return nil, err
			}
			if !r.Incomplete {
				return &BoundedRCQPResult{Found: true, Witness: cur, Explored: res.Explored}, nil
			}
		}
		if added == maxTuples {
			return nil, nil
		}
		for i := start; i < len(pool); i++ {
			next := cur.Clone()
			if err := next.Add(pool[i].rel, pool[i].tup); err != nil {
				continue
			}
			r, err := rec(i+1, next, added+1)
			if err != nil || r != nil {
				return r, err
			}
		}
		return nil, nil
	}
	r, err := rec(0, empty, 0)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return r, nil
	}
	return res, nil
}
