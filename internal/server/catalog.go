package server

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

// Entry is one registered master-data context: the database schemas R,
// the master data Dm over Rm and the containment constraints V. The
// objects are shared read-only by every request that references the
// entry, which is what makes the per-(instance, generation) caches of
// the engine effective across the request stream: cc's p(Dm)
// memoization, the lazily built column indexes and posting lists of
// Dm's instances and the compiled tableaux of cached queries are built
// once and reused. Interned entries additionally share the process-wide
// value dictionary (relation.Shared), so a catalog's vocabulary is
// interned once at registration and every request joins in id space.
//
// Entries registered with DB facts additionally hold a *resident*
// database D, which the mutation endpoints (mutation.go) patch in
// place; watched queries maintain their verdicts across those
// mutations. mu orders the mutations against the checks that read the
// shared objects: a mutation holds the write side across apply+recheck,
// every resolved check holds the read side across its run.
type Entry struct {
	Name          string
	Schemas       map[string]*relation.Schema
	MasterSchemas map[string]*relation.Schema
	Dm            *relation.Database
	V             *cc.Set

	// D is the resident database, non-nil when the registration carried
	// DB facts. Mutations and watched verdicts run against it; check
	// requests still carry their own DB facts, parsed per request.
	D *relation.Database

	// mu guards D, Dm, V and the maintained-verdict state below against
	// concurrent mutation.
	mu sync.RWMutex

	// watched (registration order), verdicts, version and changed form
	// the maintained verdict cache: version counts bumps, and changed is
	// closed and replaced on every bump so long-polls wake (mutation.go).
	watched  []string
	verdicts map[string]*watchedVerdict
	version  uint64
	changed  chan struct{}

	queries queryCache
}

// Query returns the parsed (and therefore compiled-tableau-sharing)
// form of src, memoized per entry: repeated requests with the same
// query text reuse one qlang.Query object, whose tableau is compiled
// once (cq's sync.Once cache) however many requests race on it.
func (e *Entry) Query(src string) (qlang.Query, error) {
	return e.queries.get(src, e.Schemas)
}

// CachedQueries reports the number of distinct query texts memoized.
func (e *Entry) CachedQueries() int { return e.queries.len() }

// queryCacheCap bounds each entry's memoized query set; a full cache
// is reset rather than evicted piecemeal (the workload this serves —
// a bounded set of hot queries per catalog — never gets near it).
const queryCacheCap = 1024

// queryCache memoizes parsed queries by source text.
type queryCache struct {
	mu sync.RWMutex
	m  map[string]qlang.Query
}

func (c *queryCache) get(src string, schemas map[string]*relation.Schema) (qlang.Query, error) {
	c.mu.RLock()
	q, ok := c.m[src]
	c.mu.RUnlock()
	if ok {
		obs.ServeQueryCache.Inc("hit")
		return q, nil
	}
	obs.ServeQueryCache.Inc("miss")
	q, err := textq.ParseQuery(src, schemas)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cached, ok := c.m[src]; ok {
		// A racing request parsed it first; keep its object so the
		// compiled tableau stays shared.
		return cached, nil
	}
	if c.m == nil || len(c.m) >= queryCacheCap {
		c.m = make(map[string]qlang.Query)
	}
	c.m[src] = q
	return q, nil
}

func (c *queryCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Catalog is the named registry of master-data contexts.
// Re-registration under an existing name is refused; entries mutate
// only through their own locks (Entry.mu), so the registry lock covers
// nothing but the name map.
type Catalog struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{m: make(map[string]*Entry)} }

// Register parses src and stores it under name. It fails if the name
// is taken or any part fails to parse/validate.
func (c *Catalog) Register(name string, src textq.ProblemSource) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: name is required")
	}
	if src.Query != "" {
		return nil, fmt.Errorf("catalog: entries hold data contexts, not queries")
	}
	p, err := textq.ParseProblemData(src)
	if err != nil {
		return nil, err
	}
	e := &Entry{
		Name:          name,
		Schemas:       p.Schemas,
		MasterSchemas: p.MasterSchemas,
		Dm:            p.Dm,
		V:             p.V,
		D:             p.D,
		verdicts:      make(map[string]*watchedVerdict),
		changed:       make(chan struct{}),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[name]; ok {
		return nil, fmt.Errorf("catalog: %q is already registered", name)
	}
	c.m[name] = e
	return e, nil
}

// drop removes a just-registered entry whose post-registration setup
// (seeding watched verdicts) failed, so a failed POST /v1/catalog does
// not leave a half-configured entry behind.
func (c *Catalog) drop(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, name)
}

// Get returns the entry under name, or nil.
func (c *Catalog) Get(name string) *Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[name]
}

// Names returns the registered names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.m))
	for n := range c.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
