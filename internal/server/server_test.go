package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/textq"
)

// The Example 2.1 CRM problem in text form (the quickstart instance):
// e0 supports the only area-908 domestic customer, so D is complete
// for Q1.
const (
	exSchemas = `
rel Cust(cid, name, cc, ac, phn)
rel Supt(eid, dept, cid)
rel Manage(eid1, eid2)
`
	exMasterSchemas = `rel DCust(cid, name, ac, phn)`
	exMaster        = `
DCust(c1, Ann, 908, 5550001).
DCust(c2, Bob, 973, 5550002).
`
	exDB = `
Cust(c1, Ann, 01, 908, 5550001).
Cust(c2, Bob, 01, 973, 5550002).
Supt(e0, sales, c1).
`
	exConstraints = `cc phi0(C, A) :- Cust(C, N, CC, A, P), Supt(E, D, C), CC = 01 <= DCust[0, 2]`
	exQuery       = `Q1(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), E = e0, CC = 01, A = 908`
)

func inlineRequest() CheckRequest {
	return CheckRequest{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Query:         exQuery,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body as JSON and decodes the response into out (a pointer
// to CheckResponse or ErrorResponse), returning the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("status %d: bad response %q: %v", resp.StatusCode, raw, err)
		}
	}
	return resp.StatusCode
}

func TestRCDPInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", inlineRequest(), &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "complete" || resp.Reason != "" {
		t.Fatalf("verdict %q reason %q, want complete", resp.Verdict, resp.Reason)
	}
	if resp.Stats == nil || resp.Stats.Valuations == 0 {
		t.Fatalf("stats missing: %+v", resp.Stats)
	}
	if resp.RequestID == "" {
		t.Fatal("request id missing")
	}
}

func TestRCDPInlineIncomplete(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := inlineRequest()
	// Without the c1 rows, adding the master-consistent customer c1
	// plus a support edge legally changes the answer.
	req.DB = `Cust(c2, Bob, 01, 973, 5550002).`
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "incomplete" {
		t.Fatalf("verdict %q, want incomplete", resp.Verdict)
	}
	if resp.Extension == "" || len(resp.NewTuple) != 1 {
		t.Fatalf("witness missing: ext %q new %v", resp.Extension, resp.NewTuple)
	}
	// The extension must parse back as facts over the schemas.
	schemas, err := textq.ParseSchemas(req.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := textq.ParseFacts(resp.Extension, schemas); err != nil {
		t.Fatalf("extension does not round-trip: %v\n%s", err, resp.Extension)
	}
}

func TestRCQPInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcqp", inlineRequest(), &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "yes" || resp.Method == "" {
		t.Fatalf("verdict %q method %q, want yes", resp.Verdict, resp.Method)
	}
}

// smallRequest is a Manage-only problem whose bounded tuple pool stays
// tiny (the 5-ary Cust schema of the CRM problem exceeds the default
// pool cap once fresh values multiply out).
func smallRequest() CheckRequest {
	return CheckRequest{
		Schemas:       `rel Manage(eid1, eid2)`,
		MasterSchemas: `rel ManageM(eid1, eid2)`,
		Master:        `ManageM(e1, e0).`,
		DB:            `Manage(e1, e0).`,
		Constraints:   `cc m(X, Y) :- Manage(X, Y) <= ManageM[0, 1]`,
		Query:         `Q(X) :- Manage(X, Y)`,
	}
}

func TestBoundedInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := smallRequest()
	req.MaxAdd = 1
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/bounded", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "complete" || resp.MaxAdd != 1 {
		t.Fatalf("verdict %q max_add %d, want complete/1", resp.Verdict, resp.MaxAdd)
	}
}

func TestUndecidableFragmentRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	fpQuery := `
output Q
Q(X) :- Manage(X, Y)
Q(X) :- Manage(X, Z), Q(Z)
`
	req := inlineRequest()
	req.Query = fpQuery
	for _, ep := range []string{"/v1/rcdp", "/v1/rcqp"} {
		var resp ErrorResponse
		if code := post(t, ts.URL+ep, req, &resp); code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422 (%+v)", ep, code, resp)
		}
		if !strings.Contains(resp.Error, "/v1/bounded") {
			t.Fatalf("%s: error %q should point at /v1/bounded", ep, resp.Error)
		}
	}
	// The bounded endpoint takes the FP query.
	small := smallRequest()
	small.Query = fpQuery
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/bounded", small, &resp); code != http.StatusOK {
		t.Fatalf("bounded: status %d (%+v)", code, resp)
	}
	if resp.Verdict == "" {
		t.Fatal("bounded: verdict missing")
	}
}

func TestCatalogLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reg := CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		Master:        exMaster,
		Constraints:   exConstraints,
	}
	var info CatalogInfo
	if code := post(t, ts.URL+"/v1/catalog", reg, &info); code != http.StatusCreated {
		t.Fatalf("register: status %d (%+v)", code, info)
	}
	if info.Name != "crm" || info.MasterTuples != 2 || info.Constraints != 1 {
		t.Fatalf("info %+v", info)
	}
	// Duplicate registration is refused.
	if code := post(t, ts.URL+"/v1/catalog", reg, nil); code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", code)
	}
	// Listing shows the entry.
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var infos []CatalogInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "crm" {
		t.Fatalf("list %+v", infos)
	}

	// Checks referencing the catalog carry only DB facts and a query.
	check := CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery}
	var out CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", check, &out); code != http.StatusOK {
		t.Fatalf("catalog check: status %d (%+v)", code, out)
	}
	if out.Verdict != "complete" {
		t.Fatalf("catalog check verdict %q", out.Verdict)
	}

	// Unknown catalog: 404. Catalog + inline master: 400.
	var errResp ErrorResponse
	if code := post(t, ts.URL+"/v1/rcdp", CheckRequest{Catalog: "nope", Query: exQuery}, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown catalog: status %d", code)
	}
	bad := check
	bad.Master = exMaster
	if code := post(t, ts.URL+"/v1/rcdp", bad, &errResp); code != http.StatusBadRequest {
		t.Fatalf("conflicting catalog+inline: status %d", code)
	}
}

func TestCatalogSharesCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, err := s.Catalog().Register("crm", textq.ProblemSource{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		Master:        exMaster,
		Constraints:   exConstraints,
	}); err != nil {
		t.Fatal(err)
	}
	check := CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery}

	misses0 := obs.ServeQueryCache.Value("miss")
	hits0 := obs.ServeQueryCache.Value("hit")
	pdm0 := obs.PDmHits.Value()
	var out CheckResponse
	for i := 0; i < 3; i++ {
		if code := post(t, ts.URL+"/v1/rcdp", check, &out); code != http.StatusOK || out.Verdict != "complete" {
			t.Fatalf("request %d: status %d verdict %q", i, code, out.Verdict)
		}
	}
	if d := obs.ServeQueryCache.Value("miss") - misses0; d != 1 {
		t.Errorf("query cache misses = %d, want 1 (query parsed once)", d)
	}
	if d := obs.ServeQueryCache.Value("hit") - hits0; d != 2 {
		t.Errorf("query cache hits = %d, want 2", d)
	}
	if d := obs.PDmHits.Value() - pdm0; d <= 0 {
		t.Errorf("p(Dm) cache hits did not grow across the request stream (delta %d)", d)
	}
	if got := s.Catalog().Get("crm").CachedQueries(); got != 1 {
		t.Errorf("cached queries = %d, want 1", got)
	}
}

func TestBudgetCeilingClamped(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBudget: core.Budget{MaxJoinRows: 1}})
	req := inlineRequest()
	// The request asks for an effectively unlimited row budget; the
	// operator ceiling of one join row must win.
	req.Budget = &BudgetOverride{MaxJoinRows: 1 << 40}
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d (%+v)", code, resp)
	}
	if resp.Verdict != "unknown" || resp.Reason != "join-rows" {
		t.Fatalf("verdict %q reason %q, want unknown/join-rows", resp.Verdict, resp.Reason)
	}
	// The gate charges rows in batches, so the counted rows may
	// slightly overshoot the ceiling; the verdict above is the clamp
	// proof, the stats just have to be reported.
	if resp.Stats == nil {
		t.Fatal("stats missing")
	}
}

func TestEffectiveBudget(t *testing.T) {
	s := New(Config{
		DefaultBudget: core.Budget{MaxJoinRows: 100},
		MaxBudget:     core.Budget{MaxJoinRows: 500, MaxValuations: 50},
	})
	// No override: default, clamped where the default is unset.
	b := s.effectiveBudget(nil)
	if b.MaxJoinRows != 100 || b.MaxValuations != 50 {
		t.Fatalf("default budget %+v", b)
	}
	// Override within the ceiling is honored; beyond it is clamped.
	b = s.effectiveBudget(&BudgetOverride{MaxJoinRows: 200, MaxValuations: 9999})
	if b.MaxJoinRows != 200 || b.MaxValuations != 50 {
		t.Fatalf("override budget %+v", b)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/rcdp", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Missing query.
	if code := post(t, ts.URL+"/v1/rcdp", CheckRequest{Schemas: exSchemas}, nil); code != http.StatusBadRequest {
		t.Fatalf("missing query: status %d", code)
	}
	// Unknown fields are rejected (catches schema drift in clients).
	resp, err = http.Post(ts.URL+"/v1/rcdp", "application/json", strings.NewReader(`{"quurry": "x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/rcdp")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", resp.StatusCode)
	}
	// Bad textq input names the part.
	var errResp ErrorResponse
	bad := inlineRequest()
	bad.DB = "Nope(x)."
	if code := post(t, ts.URL+"/v1/rcdp", bad, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad db: status %d", code)
	}
	if !strings.Contains(errResp.Error, "db") {
		t.Fatalf("bad db error %q", errResp.Error)
	}
}

func TestHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
			t.Fatalf("%s = %d %q", path, resp.StatusCode, body)
		}
	}
}
