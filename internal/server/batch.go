package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/cc"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

// BatchRequest is the body of POST /v1/batch: many queries against one
// master-data context and one database instance. The shared parts —
// catalog reference or inline schemas/master/constraints, the DB
// facts, the budget override — are decoded, parsed and resolved once;
// only the query text varies per item. Endpoint selects the check the
// queries run through ("rcdp" by default, "rcqp" or "bounded").
type BatchRequest struct {
	Catalog       string `json:"catalog,omitempty"`
	Schemas       string `json:"schemas,omitempty"`
	MasterSchemas string `json:"master_schemas,omitempty"`
	DB            string `json:"db,omitempty"`
	Master        string `json:"master,omitempty"`
	Constraints   string `json:"constraints,omitempty"`

	Endpoint string   `json:"endpoint,omitempty"`
	Queries  []string `json:"queries"`

	Budget *BudgetOverride `json:"budget,omitempty"`

	// Bounded-search knobs (endpoint "bounded" only).
	MaxAdd      int `json:"max_add,omitempty"`
	FreshValues int `json:"fresh_values,omitempty"`

	// Degree knobs (endpoint "rcdp" only): every item's response then
	// carries the quantitative completeness score, governed like the
	// single-check degree_valuations.
	Degree           bool `json:"degree,omitempty"`
	DegreeValuations int  `json:"degree_valuations,omitempty"`
}

// BatchLine is one line of the JSONL response stream: the item's index
// in the submission order, then either the check response or the
// item's error. Lines are emitted in submission order.
type BatchLine struct {
	Index    int            `json:"index"`
	Response *CheckResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// batchShared is the once-resolved context every item of a batch runs
// against. release, when non-nil, must be called after the last item:
// catalog-backed batches hold the entry's read lock for their whole
// run so a concurrent mutation cannot patch Dm or V mid-stream.
type batchShared struct {
	entry   *Entry // non-nil on the catalog path (query cache)
	schemas map[string]*relation.Schema
	d       *relation.Database
	dm      *relation.Database
	v       *cc.Set
	release func()
}

// resolveBatchShared parses the batch's shared parts once: the
// catalog lookup (or the inline master-data context) and the DB facts.
func (s *Server) resolveBatchShared(req *BatchRequest) (*batchShared, error) {
	if req.Catalog != "" {
		if req.Schemas != "" || req.MasterSchemas != "" || req.Master != "" || req.Constraints != "" {
			return nil, httpErrorf(http.StatusBadRequest,
				"catalog %q conflicts with inline schemas/master/constraints", req.Catalog)
		}
		e := s.catalog.Get(req.Catalog)
		if e == nil {
			return nil, httpErrorf(http.StatusNotFound, "catalog %q is not registered", req.Catalog)
		}
		e.mu.RLock()
		d, err := textq.ParseFacts(req.DB, e.Schemas)
		if err != nil {
			e.mu.RUnlock()
			return nil, httpErrorf(http.StatusBadRequest, "db: %v", err)
		}
		return &batchShared{entry: e, schemas: e.Schemas, d: d, dm: e.Dm, v: e.V, release: e.mu.RUnlock}, nil
	}
	p, err := textq.ParseProblemData(textq.ProblemSource{
		Schemas:       req.Schemas,
		MasterSchemas: req.MasterSchemas,
		Master:        req.Master,
		Constraints:   req.Constraints,
	})
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	d, err := textq.ParseFacts(req.DB, p.Schemas)
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "db: %v", err)
	}
	return &batchShared{schemas: p.Schemas, d: d, dm: p.Dm, v: p.V}, nil
}

// query parses one item's query against the shared context, through
// the catalog entry's compiled-query cache when there is one.
func (bs *batchShared) query(src string) (qlang.Query, error) {
	if bs.entry != nil {
		return bs.entry.Query(src)
	}
	return textq.ParseQuery(src, bs.schemas)
}

// batchRunner resolves the Endpoint field to the per-item run
// function.
func (s *Server) batchRunner(endpoint string) (func(ctx context.Context, in *checkInput) (*CheckResponse, error), error) {
	switch endpoint {
	case "", "rcdp":
		return s.runRCDP, nil
	case "rcqp":
		return s.runRCQP, nil
	case "bounded":
		return s.runBounded, nil
	default:
		return nil, httpErrorf(http.StatusBadRequest,
			"unknown endpoint %q: want rcdp, rcqp or bounded", endpoint)
	}
}

// serveBatch streams the batch's responses as JSONL in submission
// order. The whole batch holds one admission and one worker slot:
// parse, catalog lookup and HTTP overhead are paid once, and the
// queries run back-to-back on the already-warm shared objects.
// Request-level failures (bad shared parts, unknown endpoint) are
// ordinary JSON errors; per-item failures are error lines in the
// stream, which always carries exactly len(queries) lines.
func (s *Server) serveBatch(ctx context.Context, id string, req *BatchRequest, w http.ResponseWriter, _ *http.Request) {
	if len(req.Queries) == 0 {
		writeError(w, id, http.StatusBadRequest, "queries is required")
		return
	}
	run, err := s.batchRunner(req.Endpoint)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	shared, err := s.resolveBatchShared(req)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	if shared.release != nil {
		defer shared.release()
	}
	budget := s.effectiveBudget(req.Budget)

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	creq := &CheckRequest{
		Catalog: req.Catalog, DB: req.DB,
		MaxAdd: req.MaxAdd, FreshValues: req.FreshValues,
		Degree: req.Degree, DegreeValuations: req.DegreeValuations,
	}
	for i, src := range req.Queries {
		line := BatchLine{Index: i}
		if ctx.Err() != nil {
			// Client gone or deadline passed: answer the remaining
			// items without running them so the stream stays complete.
			line.Error = ctx.Err().Error()
		} else if q, err := shared.query(src); err != nil {
			line.Error = err.Error()
		} else {
			in := &checkInput{
				schemas: shared.schemas, d: shared.d, dm: shared.dm, v: shared.v,
				q: q, budget: budget, req: creq,
			}
			resp, err := run(ctx, in)
			if err != nil {
				line.Error = err.Error()
			} else {
				resp.RequestID = batchItemID(id, i)
				obs.ServeVerdicts.Inc(resp.Verdict)
				line.Response = resp
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client gone mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// batchItemID mints the per-item request id: the batch id plus the
// item index.
func batchItemID(batchID string, index int) string {
	return batchID + "." + strconv.Itoa(index)
}
