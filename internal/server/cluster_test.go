package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/textq"
)

// registerCRM registers the Example 2.1 CRM context on a server.
func registerCRM(t *testing.T, s *Server) {
	t.Helper()
	if _, err := s.Catalog().Register("crm", textq.ProblemSource{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		Master:        exMaster,
		Constraints:   exConstraints,
	}); err != nil {
		t.Fatal(err)
	}
}

// incompleteQuery matches no supported customer in area 973, so the
// CRM DB misses a legal extension answer and RCDP says incomplete.
const incompleteQuery = `Q2(C) :- Supt(E, D, C), Cust(C, N, CC, A, P), CC = 01, A = 973`

// postBatch sends a BatchRequest and decodes the JSONL stream.
func postBatch(t *testing.T, url string, req BatchRequest) (int, []BatchLine) {
	t.Helper()
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Fatalf("batch Content-Type = %q", ct)
	}
	var lines []BatchLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

// TestBatchStream: a batch against a catalog streams one line per
// query in submission order, each verdict matching what the single
// endpoint answers, with parse failures as in-stream error lines.
func TestBatchStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerCRM(t, s)
	queries := []string{exQuery, incompleteQuery, "Nope(", exQuery}
	code, lines := postBatch(t, ts.URL, BatchRequest{
		Catalog: "crm",
		DB:      exDB,
		Queries: queries,
	})
	if code != http.StatusOK || len(lines) != len(queries) {
		t.Fatalf("status %d, %d lines, want 200/%d", code, len(lines), len(queries))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d has index %d (order broken)", i, line.Index)
		}
	}
	wantVerdicts := []string{"complete", "incomplete", "", "complete"}
	for i, want := range wantVerdicts {
		if want == "" {
			if lines[i].Error == "" || lines[i].Response != nil {
				t.Errorf("line %d: want an error line, got %+v", i, lines[i])
			}
			continue
		}
		if lines[i].Response == nil || lines[i].Response.Verdict != want {
			t.Errorf("line %d: want verdict %q, got %+v", i, want, lines[i])
		}
	}
	// Per-item request ids derive from the batch id.
	if got := lines[0].Response.RequestID; !strings.HasSuffix(got, ".0") {
		t.Errorf("item request id %q should end in .0", got)
	}
	// Each batch item answers exactly like the single endpoint.
	var single CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", CheckRequest{Catalog: "crm", DB: exDB, Query: incompleteQuery}, &single); code != http.StatusOK {
		t.Fatalf("single check status %d", code)
	}
	b := lines[1].Response
	if b.Verdict != single.Verdict || b.Extension != single.Extension ||
		fmt.Sprint(b.NewTuple) != fmt.Sprint(single.NewTuple) {
		t.Errorf("batch item diverges from single endpoint:\nbatch  %+v\nsingle %+v", b, single)
	}
}

// TestBatchInlineAndEndpoints: the inline (catalog-free) path works,
// Endpoint selects the check kind, and bad requests fail whole.
func TestBatchInlineAndEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inline := BatchRequest{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Endpoint:      "rcqp",
		Queries:       []string{exQuery},
	}
	code, lines := postBatch(t, ts.URL, inline)
	if code != http.StatusOK || len(lines) != 1 || lines[0].Response == nil || lines[0].Response.Verdict != "yes" {
		t.Fatalf("rcqp batch: status %d lines %+v", code, lines)
	}
	// Unknown endpoint and empty query list are request-level errors.
	bad := inline
	bad.Endpoint = "nope"
	if code, _ := postBatch(t, ts.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("unknown endpoint: status %d", code)
	}
	bad = inline
	bad.Queries = nil
	if code, _ := postBatch(t, ts.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("no queries: status %d", code)
	}
}

// postPartial runs one slice of a K-way split.
func postPartial(t *testing.T, url string, req CheckRequest, slices, slice int) *PartialResponse {
	t.Helper()
	return postPartialGroup(t, url, req, slices, slice, "")
}

// postPartialGroup is postPartial with a budget-group token.
func postPartialGroup(t *testing.T, url string, req CheckRequest, slices, slice int, group string) *PartialResponse {
	t.Helper()
	preq := PartialRequest{CheckRequest: req, Slices: slices, Slice: slice, BudgetGroup: group}
	resp, err := http.Post(url+"/v1/partial", "application/json", bytes.NewReader(mustJSON(t, preq)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("partial %d/%d: status %d: %s", slice, slices, resp.StatusCode, e.Error)
	}
	var out PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestPartialMergeMatchesSingle is the HTTP-level half of the
// partition property: for K in {1, 2, 3}, running the K slices through
// /v1/partial and merging the wire responses yields the same verdict,
// witness and stats as one POST /v1/rcdp, on both a complete and an
// incomplete instance.
func TestPartialMergeMatchesSingle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerCRM(t, s)
	for _, query := range []string{exQuery, incompleteQuery} {
		req := CheckRequest{Catalog: "crm", DB: exDB, Query: query}
		var single CheckResponse
		if code := post(t, ts.URL+"/v1/rcdp", req, &single); code != http.StatusOK {
			t.Fatalf("single: status %d", code)
		}
		for _, k := range []int{1, 2, 3} {
			partials := make([]*PartialResponse, k)
			for i := 0; i < k; i++ {
				partials[i] = postPartial(t, ts.URL, req, k, i)
			}
			merged, status, err := mergePartials(partials)
			if err != nil {
				t.Fatalf("K=%d %q: merge: %v (status %d)", k, query, err, status)
			}
			if merged.Verdict != single.Verdict || merged.Reason != single.Reason ||
				merged.Extension != single.Extension ||
				fmt.Sprint(merged.NewTuple) != fmt.Sprint(single.NewTuple) {
				t.Errorf("K=%d %q: merged %+v != single %+v", k, query, merged, single)
			}
			if merged.Stats == nil || single.Stats == nil {
				t.Fatalf("K=%d %q: stats missing", k, query)
			}
			if merged.Stats.Valuations != single.Stats.Valuations ||
				merged.Stats.JoinRows != single.Stats.JoinRows ||
				merged.Stats.Tuples != single.Stats.Tuples {
				t.Errorf("K=%d %q: merged stats %+v != single stats %+v",
					k, query, merged.Stats, single.Stats)
			}
		}
	}
}

// TestPartialBudgetGroupShares pins the budget_group wire contract:
// slices of one fan-out carrying the same token that land on one
// backend pool their MaxValuations spend, so the merged result
// reproduces the single-process Unknown/valuations surface — where
// the same slices without a token each get their own cap and prove a
// Complete the single process gave up on (the per-slice divergence
// core.TestPartitionBudgetClaim documents).
func TestPartialBudgetGroupShares(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// F ⊆ M with slack: the search visits candidates 0, 1, 2 across
	// separate top-level branches; a cap of 1 stops the single process
	// after the first, while solo per-slice caps let the fan-out keep
	// enumerating.
	req := CheckRequest{
		Schemas:       `rel F(p)`,
		MasterSchemas: `rel M(x)`,
		Master:        "M(0). M(1). M(2).",
		Constraints:   `cc c0(P) :- F(P) <= M[0]`,
		DB:            "F(0).",
		Query:         `Q(P) :- F(P)`,
		Budget:        &BudgetOverride{MaxValuations: 1},
	}
	var single CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", req, &single); code != http.StatusOK {
		t.Fatalf("single: status %d", code)
	}
	if single.Verdict != "unknown" || single.Reason != "valuations" {
		t.Fatalf("single: want unknown/valuations, got %s/%s", single.Verdict, single.Reason)
	}

	// Without a token each slice gets its own cap, and the slice owning
	// the witness branch reaches it before tripping: the fan-out
	// decides Incomplete where the single process gave up — the
	// divergence the shared ledger removes.
	legacy, status, err := mergePartials([]*PartialResponse{
		postPartial(t, ts.URL, req, 2, 0),
		postPartial(t, ts.URL, req, 2, 1),
	})
	if err != nil {
		t.Fatalf("legacy merge: %v (status %d)", err, status)
	}
	if legacy.Verdict != "incomplete" {
		t.Fatalf("per-slice caps: want the divergent incomplete, got %s/%s", legacy.Verdict, legacy.Reason)
	}

	// With one token per fan-out: pooled spend, the single-process
	// surface at every K.
	for _, k := range []int{1, 2, 8} {
		group := newBudgetGroupToken()
		partials := make([]*PartialResponse, k)
		for i := 0; i < k; i++ {
			partials[i] = postPartialGroup(t, ts.URL, req, k, i, group)
		}
		merged, status, err := mergePartials(partials)
		if err != nil {
			t.Fatalf("K=%d: merge: %v (status %d)", k, err, status)
		}
		if merged.Verdict != single.Verdict || merged.Reason != single.Reason {
			t.Errorf("K=%d: merged %s/%s != single %s/%s",
				k, merged.Verdict, merged.Reason, single.Verdict, single.Reason)
		}
	}
	// Every group saw all its legs on this backend, so the registry
	// drained itself.
	s.partialGroups.mu.Lock()
	left := len(s.partialGroups.groups)
	s.partialGroups.mu.Unlock()
	if left != 0 {
		t.Errorf("budget-group registry holds %d undrained groups", left)
	}
}

// TestPartialValidation: a bad plan is a 400.
func TestPartialValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	registerCRM(t, s)
	preq := PartialRequest{
		CheckRequest: CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery},
		Slices:       2, Slice: 5,
	}
	resp, err := http.Post(ts.URL+"/v1/partial", "application/json", bytes.NewReader(mustJSON(t, preq)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad plan: status %d, want 400", resp.StatusCode)
	}
}

// clusterBackends starts n backend servers with the CRM catalog
// registered on each, returning their base URLs.
func clusterBackends(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, ts := newTestServer(t, Config{})
		registerCRM(t, s)
		urls[i] = ts.URL
	}
	return urls
}

// TestCoordinatorFanout: the coordinator scatters across real HTTP
// backends and the merged response matches a single backend's /v1/rcdp
// answer, for both verdict polarities.
func TestCoordinatorFanout(t *testing.T) {
	backends := clusterBackends(t, 3)
	coord := &Coordinator{Backends: backends}
	for _, query := range []string{exQuery, incompleteQuery} {
		req := CheckRequest{Catalog: "crm", DB: exDB, Query: query}
		var single CheckResponse
		if code := post(t, backends[0]+"/v1/rcdp", req, &single); code != http.StatusOK {
			t.Fatalf("single: status %d", code)
		}
		merged, status, err := coord.Check(context.Background(), &req)
		if err != nil {
			t.Fatalf("%q: fan-out: %v (status %d)", query, err, status)
		}
		if merged.Verdict != single.Verdict || merged.Reason != single.Reason ||
			merged.Extension != single.Extension ||
			fmt.Sprint(merged.NewTuple) != fmt.Sprint(single.NewTuple) ||
			merged.Stats.Valuations != single.Stats.Valuations ||
			merged.Stats.JoinRows != single.Stats.JoinRows {
			t.Errorf("%q: merged %+v (stats %+v) != single %+v (stats %+v)",
				query, merged, merged.Stats, single, single.Stats)
		}
	}
}

// TestRouterForwarding: the router forwards checks to ring-picked
// backends, broadcasts catalog registrations, reports backend health
// and drains with Retry-After.
func TestRouterForwarding(t *testing.T) {
	// Backends without catalogs: the router's broadcast registers them.
	b1, ts1 := newTestServer(t, Config{})
	b2, ts2 := newTestServer(t, Config{})
	rt, err := NewRouter(RouterConfig{Backends: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Catalog broadcast: every backend holds the entry afterwards.
	reg := CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		Master:        exMaster,
		Constraints:   exConstraints,
	}
	var info CatalogInfo
	if code := post(t, front.URL+"/v1/catalog", reg, &info); code != http.StatusCreated || info.Name != "crm" {
		t.Fatalf("broadcast register: status %d info %+v", code, info)
	}
	if b1.Catalog().Get("crm") == nil || b2.Catalog().Get("crm") == nil {
		t.Fatal("catalog broadcast did not reach every backend")
	}
	// The fan-in listing reports the entry once.
	resp, err := http.Get(front.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var infos []CatalogInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "crm" {
		t.Fatalf("fan-in listing %+v", infos)
	}

	// Routed checks answer exactly like a direct backend.
	req := CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery}
	var direct, routed CheckResponse
	if code := post(t, ts1.URL+"/v1/rcdp", req, &direct); code != http.StatusOK {
		t.Fatalf("direct: status %d", code)
	}
	for i := 0; i < 3; i++ {
		if code := post(t, front.URL+"/v1/rcdp", req, &routed); code != http.StatusOK {
			t.Fatalf("routed: status %d", code)
		}
		if routed.Verdict != direct.Verdict || routed.Reason != direct.Reason {
			t.Fatalf("routed %+v != direct %+v", routed, direct)
		}
	}
	// Same catalog key, same backend every time: one backend carries
	// all 3 check forwards (+1 broadcast each), the other only the
	// broadcast.
	f1 := rt.health[0].forwards.Load()
	f2 := rt.health[1].forwards.Load()
	if !(f1 == 4 && f2 == 1) && !(f1 == 1 && f2 == 4) {
		t.Errorf("ring did not pin the catalog to one backend: forwards %d/%d", f1, f2)
	}

	// Batch streams through the router.
	code, lines := postBatch(t, front.URL, BatchRequest{
		Catalog: "crm", DB: exDB, Queries: []string{exQuery, incompleteQuery},
	})
	if code != http.StatusOK || len(lines) != 2 || lines[0].Response.Verdict != "complete" || lines[1].Response.Verdict != "incomplete" {
		t.Fatalf("routed batch: status %d lines %+v", code, lines)
	}

	// Health: both backends ready, ledgers populated.
	resp, err = http.Get(front.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var statuses []BackendStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(statuses) != 2 || !statuses[0].Ready || !statuses[1].Ready {
		t.Fatalf("backend health %+v", statuses)
	}

	// Drain: new requests get 503 with Retry-After.
	go func() { _ = rt.Drain(context.Background()) }()
	waitFor(t, "router draining", rt.Draining)
	hr, err := http.Post(front.URL+"/v1/rcdp", "application/json", bytes.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || hr.Header.Get("Retry-After") == "" {
		t.Fatalf("draining router: status %d Retry-After %q", hr.StatusCode, hr.Header.Get("Retry-After"))
	}
}

// TestRouterFanoutMode: with Fanout set, the router's /v1/rcdp goes
// through the coordinator and still matches the direct answer.
func TestRouterFanoutMode(t *testing.T) {
	backends := clusterBackends(t, 2)
	rt, err := NewRouter(RouterConfig{Backends: backends, Fanout: true})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	for _, query := range []string{exQuery, incompleteQuery} {
		req := CheckRequest{Catalog: "crm", DB: exDB, Query: query}
		var direct, routed CheckResponse
		if code := post(t, backends[0]+"/v1/rcdp", req, &direct); code != http.StatusOK {
			t.Fatalf("direct: status %d", code)
		}
		if code := post(t, front.URL+"/v1/rcdp", req, &routed); code != http.StatusOK {
			t.Fatalf("fanout: status %d", code)
		}
		if routed.Verdict != direct.Verdict || routed.Extension != direct.Extension ||
			fmt.Sprint(routed.NewTuple) != fmt.Sprint(direct.NewTuple) ||
			routed.Stats.Valuations != direct.Stats.Valuations {
			t.Errorf("%q: fanout %+v != direct %+v", query, routed, direct)
		}
	}
}

// TestRouterEjectOnFailure: a dead backend fails its forward with 502
// and is ejected from the routing rotation — no blind resend; the next
// request is refused without touching the wire until a reprobe heals
// the backend.
func TestRouterEjectOnFailure(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore
	rt, err := NewRouter(RouterConfig{Backends: []string{deadURL}, ReprobeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	req := CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery}
	var eresp ErrorResponse
	if code := post(t, front.URL+"/v1/rcdp", req, &eresp); code != http.StatusBadGateway {
		t.Fatalf("dead backend: status %d, want 502", code)
	}
	if rt.health[0].retries.Load() != 0 || rt.health[0].failures.Load() != 1 {
		t.Errorf("ledger retries=%d failures=%d, want 0/1",
			rt.health[0].retries.Load(), rt.health[0].failures.Load())
	}
	if !rt.health[0].ejected.Load() {
		t.Error("failed backend not ejected")
	}
	// The next request finds an empty rotation (the hour-long reprobe
	// interval keeps the ejected backend out) and never dials out.
	forwardsBefore := rt.health[0].forwards.Load()
	if code := post(t, front.URL+"/v1/rcdp", req, &eresp); code != http.StatusBadGateway {
		t.Fatalf("empty rotation: status %d, want 502", code)
	}
	if got := rt.health[0].forwards.Load(); got != forwardsBefore {
		t.Errorf("ejected backend was dialed: forwards %d -> %d", forwardsBefore, got)
	}
	// Health reports the backend not ready and ejected.
	resp, err := http.Get(front.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var statuses []BackendStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(statuses) != 1 || statuses[0].Ready || statuses[0].State != "ejected" {
		t.Fatalf("dead backend status: %+v", statuses)
	}
}

// TestRouterCatalogResync: a backend unreachable during catalog
// broadcasts falls behind, and the health sweep replays the missed
// registrations and mutations once it probes ready again — a rejoined
// backend converges to the same catalog state without operator
// intervention.
func TestRouterCatalogResync(t *testing.T) {
	b1, ts1 := newTestServer(t, Config{})
	// Backend 2 sits behind a kill switch: while down, every request's
	// connection is closed without a response, which the router treats
	// as an unreachable backend (not an HTTP refusal).
	s2 := New(Config{})
	var down atomic.Bool
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		s2.Handler().ServeHTTP(w, r)
	}))
	defer ts2.Close()
	rt, err := NewRouter(RouterConfig{Backends: []string{ts1.URL, ts2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Register a maintained catalog and mutate it while backend 2 is
	// unreachable: the router tolerates the partial broadcast.
	down.Store(true)
	var info CatalogInfo
	if code := post(t, front.URL+"/v1/catalog", CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Queries:       []string{exQuery, incompleteQuery},
	}, &info); code != http.StatusCreated {
		t.Fatalf("register with one backend down: status %d", code)
	}
	var mr MutationResponse
	if code := post(t, front.URL+"/v1/catalog/crm/insert", MutationRequest{
		Facts: "Supt(e1, sales, c2).",
	}, &mr); code != http.StatusOK || mr.Rechecked != 2 {
		t.Fatalf("mutate with one backend down: status %d %+v", code, mr)
	}
	if b1.Catalog().Get("crm") == nil {
		t.Fatal("live backend missed the broadcast")
	}
	if s2.Catalog().Get("crm") != nil {
		t.Fatal("down backend received the broadcast")
	}

	statuses := getBackends(t, front.URL)
	if statuses[1].Ready || statuses[1].Pending != 2 {
		t.Fatalf("down backend status %+v, want not ready with 2 pending", statuses[1])
	}
	forwardsBefore := rt.health[1].forwards.Load()

	// Backend 2 comes back: the next health sweep replays both missed
	// entries, without counting them as client forwards.
	down.Store(false)
	statuses = getBackends(t, front.URL)
	if !statuses[1].Ready || statuses[1].Pending != 0 {
		t.Fatalf("rejoined backend status %+v, want ready with 0 pending", statuses[1])
	}
	if got := rt.health[1].forwards.Load(); got != forwardsBefore {
		t.Errorf("sync counted as forwards: %d -> %d", forwardsBefore, got)
	}
	if s2.Catalog().Get("crm") == nil {
		t.Fatal("rejoined backend did not receive the catalog")
	}
	_, vr := getVerdicts(t, ts2.URL+"/v1/catalog/crm/verdicts")
	if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "complete" {
		t.Fatalf("rejoined backend Q2 = %+v, want complete (mutation replayed)", v)
	}

	// With both backends current, a routed mutation reaches both and a
	// routed verdicts read answers from the ring-picked copy.
	if code := post(t, front.URL+"/v1/catalog/crm/delete", MutationRequest{
		Facts: "Supt(e1, sales, c2).",
	}, &mr); code != http.StatusOK || mr.Deleted != 1 {
		t.Fatalf("routed delete: status %d %+v", code, mr)
	}
	for i, base := range []string{ts1.URL, ts2.URL, front.URL} {
		_, vr := getVerdicts(t, base+"/v1/catalog/crm/verdicts")
		if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "incomplete" {
			t.Fatalf("copy %d: Q2 = %+v, want incomplete after routed delete", i, v)
		}
	}
}

// getBackends fetches and decodes GET /v1/backends.
func getBackends(t *testing.T, frontURL string) []BackendStatus {
	t.Helper()
	resp, err := http.Get(frontURL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statuses []BackendStatus
	if err := json.NewDecoder(resp.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	return statuses
}

// TestRouterRingEjectionFailover: a connection failure ejects the
// primary backend from the rotation, routed traffic deterministically
// fails over to the next ring candidate without a blind resend, and
// the health sweep re-admits the backend once it probes ready with a
// healed replay log.
func TestRouterRingEjectionFailover(t *testing.T) {
	// Both backends sit behind kill switches so the test can kill
	// whichever one the ring makes primary for the catalog key.
	servers := make([]*Server, 2)
	downs := make([]atomic.Bool, 2)
	urls := make([]string, 2)
	for i := range servers {
		i := i
		servers[i] = New(Config{})
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if downs[i].Load() {
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Error("test server does not support hijacking")
					return
				}
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
				return
			}
			servers[i].Handler().ServeHTTP(w, r)
		}))
		defer ts.Close()
		urls[i] = ts.URL
	}
	rt, err := NewRouter(RouterConfig{Backends: urls, ReprobeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	var info CatalogInfo
	if code := post(t, front.URL+"/v1/catalog", CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
	}, &info); code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	order := rt.candidates("crm")
	primary, standby := order[0], order[1]
	req := CheckRequest{Catalog: "crm", DB: exDB, Query: exQuery}

	// Kill the primary: the routed check still succeeds — the forward
	// fails once, ejects the primary and fails over to the standby.
	downs[primary].Store(true)
	var resp CheckResponse
	if code := post(t, front.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("failover check: status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "complete" {
		t.Fatalf("failover verdict %q, want complete", resp.Verdict)
	}
	if !rt.health[primary].ejected.Load() {
		t.Fatal("primary not ejected after connection failure")
	}
	if rt.health[standby].retries.Load() == 0 {
		t.Error("standby did not record the failover")
	}

	// While ejected (and the reprobe interval far away), routed checks
	// skip the primary entirely: no dial, straight to the standby.
	primaryForwards := rt.health[primary].forwards.Load()
	if code := post(t, front.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("ejected-primary check: status %d", code)
	}
	if got := rt.health[primary].forwards.Load(); got != primaryForwards {
		t.Errorf("ejected primary was dialed: forwards %d -> %d", primaryForwards, got)
	}
	statuses := getBackends(t, front.URL)
	if statuses[primary].State != "ejected" || statuses[standby].State != "healthy" {
		t.Fatalf("states %q/%q, want ejected/healthy",
			statuses[primary].State, statuses[standby].State)
	}

	// Revive the primary: the health sweep probes it ready, heals the
	// replay log (the registration broadcast it missed nothing of) and
	// re-admits it; routed traffic returns to the primary.
	downs[primary].Store(false)
	statuses = getBackends(t, front.URL)
	if statuses[primary].State != "healthy" || statuses[primary].Pending != 0 {
		t.Fatalf("revived primary status %+v, want healthy with 0 pending", statuses[primary])
	}
	primaryForwards = rt.health[primary].forwards.Load()
	if code := post(t, front.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("post-heal check: status %d", code)
	}
	if got := rt.health[primary].forwards.Load(); got != primaryForwards+1 {
		t.Errorf("re-admitted primary not routed to: forwards %d -> %d", primaryForwards, got)
	}
}
