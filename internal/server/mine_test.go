package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mdm"
	"repro/internal/mine"
)

// crmEvidence renders n generated CRM evidence pairs as an evidence
// document for the /v1/mine inline path.
func crmEvidence(t *testing.T, n int, supportIntl int) string {
	t.Helper()
	cfg := mdm.DefaultConfig()
	cfg.DomesticCustomers = 8
	cfg.InternationalCustomers = 3
	cfg.SaturateSupport = true
	cfg.UnregisteredDomestic = 2
	cfg.SupportInternational = supportIntl
	scens := mdm.Evidence(cfg, n)
	pairs := make([]mine.Pair, len(scens))
	for i, s := range scens {
		pairs[i] = mine.Pair{D: s.D, Dm: s.Dm}
	}
	text, err := mine.FormatEvidence(pairs)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

func TestMineEndpointInlineEvidence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp MineResponse
	req := MineRequest{Evidence: crmEvidence(t, 4, 0)}
	if code := post(t, ts.URL+"/v1/mine", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if len(resp.Constraints) == 0 {
		t.Fatalf("nothing mined: %+v", resp)
	}
	for _, c := range resp.Constraints {
		if !c.Validated {
			t.Fatalf("emitted constraint %s not validated: %+v", c.Name, c)
		}
		if c.Support < 0 || c.Support > 1 || c.Confidence < 0 || c.Confidence > 1 {
			t.Fatalf("scores out of range: %+v", c)
		}
		if c.Constraint == "" || c.Signature == "" {
			t.Fatalf("missing rendering: %+v", c)
		}
	}
	if resp.Pairs != 4 || resp.Enumerated == 0 {
		t.Fatalf("stats wrong: %+v", resp)
	}
}

func TestMineEndpointCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cat := CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		Master:        exMaster,
	}
	if code := post(t, ts.URL+"/v1/catalog", cat, nil); code != http.StatusCreated {
		t.Fatalf("catalog registration: status %d", code)
	}
	var resp MineResponse
	req := MineRequest{Catalog: "crm", DBs: []string{exDB, exDB}}
	if code := post(t, ts.URL+"/v1/mine", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if len(resp.Constraints) == 0 || resp.Pairs != 2 {
		t.Fatalf("catalog mining found nothing: %+v", resp)
	}
	for _, c := range resp.Constraints {
		if !c.Validated {
			t.Fatalf("emitted constraint %s not validated", c.Name)
		}
	}
}

func TestMineEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		req  MineRequest
		code int
	}{
		{"empty", MineRequest{}, http.StatusBadRequest},
		{"both shapes", MineRequest{Evidence: "x", Catalog: "crm"}, http.StatusBadRequest},
		{"bad evidence", MineRequest{Evidence: "== wat\n"}, http.StatusBadRequest},
		{"catalog without dbs", MineRequest{Catalog: "crm"}, http.StatusBadRequest},
		{"unknown catalog", MineRequest{Catalog: "nope", DBs: []string{""}}, http.StatusNotFound},
	} {
		var er ErrorResponse
		if code := post(t, ts.URL+"/v1/mine", tc.req, &er); code != tc.code {
			t.Fatalf("%s: status %d, want %d (%+v)", tc.name, code, tc.code, er)
		}
	}
}

func TestMineEndpointCandidateClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxMineCandidates: 3})
	var resp MineResponse
	// Request far more candidates than the operator ceiling allows.
	req := MineRequest{Evidence: crmEvidence(t, 2, 0), MaxCandidates: 100000}
	if code := post(t, ts.URL+"/v1/mine", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if !resp.Truncated {
		t.Fatalf("expected truncation under the clamped budget: %+v", resp)
	}
	if resp.Enumerated > 3 {
		t.Fatalf("enumerated %d candidates over the ceiling of 3", resp.Enumerated)
	}
}

func TestRCDPDegreeField(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Complete instance: exact degree 1.0.
	req := inlineRequest()
	req.Degree = true
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "complete" {
		t.Fatalf("verdict %q", resp.Verdict)
	}
	if resp.Degree == nil {
		t.Fatal("degree requested but absent")
	}
	if !resp.Degree.Exact || resp.Degree.Value != 1.0 || resp.Degree.Lo != 1.0 || resp.Degree.Hi != 1.0 {
		t.Fatalf("complete instance degree: %+v", resp.Degree)
	}
	if resp.Degree.Verdict != "complete" {
		t.Fatalf("degree verdict %q", resp.Degree.Verdict)
	}

	// Incomplete instance: exact degree strictly below 1.0.
	req = inlineRequest()
	req.Degree = true
	req.DB = `Cust(c2, Bob, 01, 973, 5550002).`
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Verdict != "incomplete" || resp.Degree == nil {
		t.Fatalf("incomplete run: verdict %q degree %+v", resp.Verdict, resp.Degree)
	}
	if !resp.Degree.Exact || resp.Degree.Value >= 1.0 || resp.Degree.Counterexamples == 0 {
		t.Fatalf("incomplete instance degree: %+v", resp.Degree)
	}

	// Without the flag the field stays absent.
	req = inlineRequest()
	resp = CheckResponse{}
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Degree != nil {
		t.Fatalf("degree present without the request flag: %+v", resp.Degree)
	}
}

func TestRCDPDegreeValuationClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDegreeValuations: 2})
	req := inlineRequest()
	req.Degree = true
	req.DegreeValuations = 1000000 // over the operator ceiling
	var resp CheckResponse
	if code := post(t, ts.URL+"/v1/rcdp", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if resp.Degree == nil {
		t.Fatal("degree absent")
	}
	if resp.Degree.Exact {
		t.Fatalf("ceiling of 2 valuations must force a sampled run: %+v", resp.Degree)
	}
	if resp.Degree.Candidates > 2 {
		t.Fatalf("inspected %d candidates over the ceiling of 2", resp.Degree.Candidates)
	}
	if resp.Degree.Reason == "" {
		t.Fatalf("sampled degree must name its stopping reason: %+v", resp.Degree)
	}
}

func TestBatchDegreePassThrough(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	breq := BatchRequest{
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Queries:       []string{exQuery, exQuery},
		Degree:        true,
	}
	buf, err := json.Marshal(breq)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	lines := 0
	sc := bufio.NewScanner(httpResp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			t.Fatalf("batch item %d failed: %s", line.Index, line.Error)
		}
		if line.Response == nil || line.Response.Degree == nil {
			t.Fatalf("batch item %d missing degree: %+v", line.Index, line.Response)
		}
		if line.Response.Degree.Value != 1.0 || !line.Response.Degree.Exact {
			t.Fatalf("batch item %d degree: %+v", line.Index, line.Response.Degree)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("batch stream had %d lines, want 2", lines)
	}
}
