package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// registerMaintainedCRM registers the CRM context as a maintained
// entry over HTTP: resident DB facts plus two watched queries (Q1 is
// complete on the seed DB, Q2 incomplete — c2 is a legal 973-area
// answer the DB misses a support edge for).
func registerMaintainedCRM(t *testing.T, ts *httptest.Server) CatalogInfo {
	t.Helper()
	var info CatalogInfo
	code := post(t, ts.URL+"/v1/catalog", CatalogRequest{
		Name:          "crm",
		Schemas:       exSchemas,
		MasterSchemas: exMasterSchemas,
		DB:            exDB,
		Master:        exMaster,
		Constraints:   exConstraints,
		Queries:       []string{exQuery, incompleteQuery},
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("register status %d, info %+v", code, info)
	}
	if info.Watched != 2 || info.Version != 1 || info.DBTuples != 3 {
		t.Fatalf("register info %+v, want 2 watched, version 1, 3 db tuples", info)
	}
	return info
}

// getVerdicts fetches GET /v1/catalog/{name}/verdicts with raw query
// parameters appended to path.
func getVerdicts(t *testing.T, url string) (int, *VerdictsResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out VerdictsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("status %d: bad verdicts body %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, &out
}

// verdictOf picks one watched query's verdict out of a response.
func verdictOf(t *testing.T, vr *VerdictsResponse, query string) WatchedVerdict {
	t.Helper()
	for _, v := range vr.Verdicts {
		if v.Query == query {
			return v
		}
	}
	t.Fatalf("query %q not in verdicts %+v", query, vr.Verdicts)
	return WatchedVerdict{}
}

// TestMutationVerdictFlip: inserting the missing support edge into the
// resident DB flips the watched incomplete verdict to complete without
// a restart or a re-posted check — the mutate-smoke scenario.
func TestMutationVerdictFlip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)

	_, vr := getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts")
	if v := verdictOf(t, vr, exQuery); v.Verdict != "complete" {
		t.Fatalf("seed Q1 = %+v, want complete", v)
	}
	if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "incomplete" || v.Extension == "" {
		t.Fatalf("seed Q2 = %+v, want incomplete with witness", v)
	}

	var mr MutationResponse
	code := post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{
		Facts: "Supt(e1, sales, c2).",
	}, &mr)
	if code != http.StatusOK {
		t.Fatalf("insert status %d: %+v", code, mr)
	}
	// A DB-side mutation fails the invisibility gate for every watched
	// query: both rerun cold, none reuse.
	if mr.Inserted != 1 || mr.Deleted != 0 || mr.Reused != 0 || mr.Rechecked != 2 || mr.Version != 2 {
		t.Fatalf("insert response %+v, want 1 inserted, 0 reused, 2 rechecked, version 2", mr)
	}

	_, vr = getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts")
	if vr.Version != 2 {
		t.Fatalf("version %d, want 2", vr.Version)
	}
	if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "complete" || v.Reused {
		t.Fatalf("post-insert Q2 = %+v, want complete (rechecked)", v)
	}

	// Deleting the edge flips it back: the incremental index patches
	// are exercised in both directions.
	code = post(t, ts.URL+"/v1/catalog/crm/delete", MutationRequest{
		Facts: "Supt(e1, sales, c2).",
	}, &mr)
	if code != http.StatusOK || mr.Deleted != 1 || mr.Version != 3 {
		t.Fatalf("delete status %d response %+v, want 1 deleted, version 3", code, mr)
	}
	_, vr = getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts")
	if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "incomplete" {
		t.Fatalf("post-delete Q2 = %+v, want incomplete again", v)
	}
}

// TestMutationMasterReuse: a master-side insert that stays inside the
// pre-batch projections and active domain passes the invisibility gate
// and reuses every cached verdict; one that brings new values forces
// cold rechecks.
func TestMutationMasterReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)

	var mr MutationResponse
	code := post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{
		Target: "master",
		Facts:  "DCust(c1, Ann, 908, 5550001).",
	}, &mr)
	if code != http.StatusOK {
		t.Fatalf("duplicate master insert status %d: %+v", code, mr)
	}
	if mr.Inserted != 0 || mr.Reused != 2 || mr.Rechecked != 0 {
		t.Fatalf("duplicate master insert %+v, want 0 inserted, 2 reused, 0 rechecked", mr)
	}
	_, vr := getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts")
	if v := verdictOf(t, vr, incompleteQuery); v.Verdict != "incomplete" || !v.Reused {
		t.Fatalf("reused Q2 = %+v, want incomplete with reused=true", v)
	}

	code = post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{
		Target: "master",
		Facts:  "DCust(c3, Carl, 908, 5550003).",
	}, &mr)
	if code != http.StatusOK {
		t.Fatalf("fresh master insert status %d: %+v", code, mr)
	}
	if mr.Inserted != 1 || mr.Reused != 0 || mr.Rechecked != 2 {
		t.Fatalf("fresh master insert %+v, want 1 inserted, 0 reused, 2 rechecked", mr)
	}
}

// TestVerdictsLongPoll: a poll parked on ?after=current wakes when a
// mutation bumps the version and sees the flipped verdict.
func TestVerdictsLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)

	type polled struct {
		code int
		vr   *VerdictsResponse
	}
	done := make(chan polled, 1)
	go func() {
		code, vr := getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts?after=1&wait_ms=10000")
		done <- polled{code, vr}
	}()

	// The parked poll must not answer before the mutation.
	select {
	case p := <-done:
		t.Fatalf("poll answered before mutation: %+v", p.vr)
	case <-time.After(50 * time.Millisecond):
	}

	var mr MutationResponse
	if code := post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{
		Facts: "Supt(e1, sales, c2).",
	}, &mr); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}

	select {
	case p := <-done:
		if p.code != http.StatusOK || p.vr.Version != 2 {
			t.Fatalf("poll answered %d %+v, want version 2", p.code, p.vr)
		}
		if v := verdictOf(t, p.vr, incompleteQuery); v.Verdict != "complete" {
			t.Fatalf("polled Q2 = %+v, want complete", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll did not wake on mutation")
	}

	// An expired wait returns the unchanged state rather than hanging.
	code, vr := getVerdicts(t, ts.URL+"/v1/catalog/crm/verdicts?after=2&wait_ms=30")
	if code != http.StatusOK || vr.Version != 2 {
		t.Fatalf("timed-out poll: status %d version %d, want 200/2", code, vr.Version)
	}
}

// TestMutationValidation covers the refusal paths: unknown catalog,
// bad target, facts that do not parse, and unparseable watch queries
// rolling the registration back.
func TestMutationValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerMaintainedCRM(t, ts)

	var er ErrorResponse
	if code := post(t, ts.URL+"/v1/catalog/nope/insert", MutationRequest{Facts: "Supt(e1, sales, c2)."}, &er); code != http.StatusNotFound {
		t.Fatalf("unknown catalog: status %d (%+v)", code, er)
	}
	if code := post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{Target: "dm", Facts: "x"}, &er); code != http.StatusBadRequest {
		t.Fatalf("bad target: status %d (%+v)", code, er)
	}
	if code := post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{Facts: "Nope("}, &er); code != http.StatusBadRequest {
		t.Fatalf("bad facts: status %d (%+v)", code, er)
	}

	var info CatalogInfo
	if code := post(t, ts.URL+"/v1/catalog", CatalogRequest{
		Name:    "broken",
		Schemas: exSchemas,
		Queries: []string{"Nope("},
	}, &info); code != http.StatusBadRequest {
		t.Fatalf("bad watch query: status %d", code)
	}
	if code, _ := getVerdicts(t, ts.URL+"/v1/catalog/broken/verdicts"); code != http.StatusNotFound {
		t.Fatalf("rolled-back entry still registered: status %d", code)
	}
}

// TestCatalogChecksDuringMutations races catalog-backed checks against
// mutations on the same entry: the entry lock serializes them, so
// every check sees a consistent snapshot (run with -race).
func TestCatalogChecksDuringMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	registerMaintainedCRM(t, ts)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			var mr MutationResponse
			post(t, ts.URL+"/v1/catalog/crm/insert", MutationRequest{
				Target: "master", Facts: "DCust(c1, Ann, 908, 5550001).",
			}, &mr)
		}
	}()
	for i := 0; i < 10; i++ {
		var resp CheckResponse
		code := post(t, ts.URL+"/v1/rcdp", CheckRequest{
			Catalog: "crm", DB: exDB, Query: exQuery,
		}, &resp)
		if code != http.StatusOK || resp.Verdict != "complete" {
			t.Fatalf("check %d: status %d verdict %q", i, code, resp.Verdict)
		}
	}
	<-done
}
