package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RouterConfig sizes the relserve router mode (relserve -route): a
// stateless HTTP tier in front of a set of relserve backends.
type RouterConfig struct {
	// Backends are the base URLs of the backend relserve processes
	// (e.g. http://127.0.0.1:8081). Required.
	Backends []string
	// Fanout, when set, answers POST /v1/rcdp by scattering the check
	// across ALL backends as partition slices (/v1/partial) and merging
	// the results, instead of forwarding the whole request to one
	// backend. The merged verdict is identical to a single process
	// (core.MergeSlices).
	Fanout bool
	// RetryAfter is the hint attached to 503 responses while the router
	// drains (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds buffered request bodies (default 16 MiB).
	MaxBodyBytes int64
	// Client is the HTTP client used for forwards, fan-out legs and
	// health probes (default http.DefaultClient).
	Client *http.Client
	// ReprobeInterval is how long an ejected backend stays out of the
	// routing rotation before a routed request may reprobe it (default
	// 5s). The /v1/backends health sweep re-admits independently of the
	// interval.
	ReprobeInterval time.Duration
}

// Router is the relserve scale-out front door: it consistent-hashes
// each request's routing key (the catalog name when present, else the
// query text) onto a backend, so all requests against one catalog land
// on the process that holds that catalog's warm caches — the p(Dm)
// memo, the column indexes and the compiled-tableau cache.
//
// Health is state, not a retry: a connection failure ejects the backend
// from the routing rotation, and routed requests fail over to the next
// distinct backend in ring order (deterministic, so one catalog's
// traffic lands on one stand-in, keeping its caches warm too). An
// ejected backend is re-admitted when a probe sees it ready AND the
// catalog replay log has fully healed it (syncBackend pending 0) —
// either opportunistically from the routing path after ReprobeInterval,
// or from the /v1/backends health sweep. Catalog registrations are
// broadcast to every backend so any of them can serve any catalog when
// the rotation moves.
type Router struct {
	cfg   RouterConfig
	ring  []ringPoint
	coord *Coordinator
	mux   *http.ServeMux

	draining atomic.Bool
	wg       sync.WaitGroup
	reqSeq   atomic.Int64

	health []backendHealth // parallel to cfg.Backends

	// catmu guards the catalog replay log: the ordered catalog-state
	// broadcasts (registrations and mutations) and, per backend, how
	// many of them it has applied. A backend that was unreachable
	// during a broadcast falls behind and is caught up by syncBackend
	// when a health probe sees it ready again.
	catmu   sync.Mutex
	catlog  []catalogLogEntry
	applied []int // parallel to cfg.Backends
}

// catalogLogEntry is one replayable catalog-state broadcast.
type catalogLogEntry struct {
	path string // "/v1/catalog" or "/v1/catalog/{name}/insert|delete"
	body []byte
}

// backendHealth is the router's per-backend forward ledger and
// rotation state, surfaced on GET /v1/backends next to a live
// readiness probe. retries counts failovers received from ejected or
// failing peers; ejected takes the backend out of the routing
// rotation; lastReprobe rate-limits opportunistic heal attempts from
// the routing path.
type backendHealth struct {
	forwards    atomic.Int64
	retries     atomic.Int64
	failures    atomic.Int64
	ejected     atomic.Bool
	lastReprobe atomic.Int64 // unix nanos of the last routing-path reprobe
}

// ringPoint is one virtual node of the consistent-hash ring.
type ringPoint struct {
	hash    uint64
	backend int
}

// ringVnodes is the virtual-node count per backend: enough to spread
// catalogs evenly across a handful of backends while keeping ring
// construction and lookup trivial.
const ringVnodes = 64

// NewRouter builds a Router over cfg.Backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: at least one backend is required")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.ReprobeInterval <= 0 {
		cfg.ReprobeInterval = 5 * time.Second
	}
	rt := &Router{
		cfg:     cfg,
		coord:   &Coordinator{Backends: cfg.Backends, Client: cfg.Client},
		health:  make([]backendHealth, len(cfg.Backends)),
		applied: make([]int, len(cfg.Backends)),
	}
	for i, b := range cfg.Backends {
		for v := 0; v < ringVnodes; v++ {
			rt.ring = append(rt.ring, ringPoint{hash: fnvHash(b + "#" + strconv.Itoa(v)), backend: i})
		}
	}
	sort.Slice(rt.ring, func(i, j int) bool { return rt.ring[i].hash < rt.ring[j].hash })

	rt.mux = http.NewServeMux()
	if cfg.Fanout {
		rt.mux.HandleFunc("/v1/rcdp", rt.fanoutHandler)
	} else {
		rt.mux.HandleFunc("/v1/rcdp", rt.forwardHandler("rcdp"))
	}
	rt.mux.HandleFunc("/v1/rcqp", rt.forwardHandler("rcqp"))
	rt.mux.HandleFunc("/v1/bounded", rt.forwardHandler("bounded"))
	rt.mux.HandleFunc("/v1/batch", rt.forwardHandler("batch"))
	rt.mux.HandleFunc("/v1/partial", rt.forwardHandler("partial"))
	rt.mux.HandleFunc("/v1/catalog", rt.catalogHandler)
	rt.mux.HandleFunc("POST /v1/catalog/{name}/insert", rt.mutationHandler)
	rt.mux.HandleFunc("POST /v1/catalog/{name}/delete", rt.mutationHandler)
	rt.mux.HandleFunc("GET /v1/catalog/{name}/verdicts", rt.verdictsProxyHandler)
	rt.mux.HandleFunc("/v1/backends", rt.backendsHandler)
	rt.mux.HandleFunc("/healthz", obs.HealthzHandler)
	rt.mux.HandleFunc("/readyz", rt.readyzHandler)
	return rt, nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Draining reports whether Drain has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Drain refuses new requests (503 + Retry-After, mirroring backend
// drains) and waits for in-flight forwards to finish or ctx to expire.
func (rt *Router) Drain(ctx context.Context) error {
	rt.draining.Store(true)
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (rt *Router) client() *http.Client {
	if rt.cfg.Client != nil {
		return rt.cfg.Client
	}
	return http.DefaultClient
}

func (rt *Router) nextRequestID() string {
	return fmt.Sprintf("g%06d", rt.reqSeq.Add(1))
}

// refuse answers a request that arrived after Drain began, with the
// same shape a draining backend uses.
func (rt *Router) refuse(w http.ResponseWriter, id string) {
	obs.ServeRejections.Inc("draining")
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeError(w, id, http.StatusServiceUnavailable, "router is draining")
}

// fnvHash is the ring hash: 64-bit FNV-1a.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// pick maps a routing key to a backend index: the first ring point at
// or after the key's hash, wrapping at the top. It ignores rotation
// state; routed traffic goes through candidates/usable instead.
func (rt *Router) pick(key string) int {
	h := fnvHash(key)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	if i == len(rt.ring) {
		i = 0
	}
	return rt.ring[i].backend
}

// candidates returns the failover order for a routing key: the
// distinct backends in ring order starting at the key's position. The
// order is a pure function of the key, so when a backend is ejected
// all of one catalog's traffic fails over to the SAME stand-in — the
// cache-affinity property the ring buys survives ejection.
func (rt *Router) candidates(key string) []int {
	h := fnvHash(key)
	i := sort.Search(len(rt.ring), func(i int) bool { return rt.ring[i].hash >= h })
	out := make([]int, 0, len(rt.cfg.Backends))
	seen := make(map[int]bool, len(rt.cfg.Backends))
	for n := 0; n < len(rt.ring) && len(out) < len(rt.cfg.Backends); n++ {
		p := rt.ring[(i+n)%len(rt.ring)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// eject takes a backend out of the routing rotation after a connection
// failure. Idempotent; the ejection is observed by every subsequent
// routed request until a heal re-admits the backend.
func (rt *Router) eject(backend int) {
	if !rt.health[backend].ejected.Swap(true) {
		obs.RouteEjections.Inc(rt.cfg.Backends[backend])
	}
}

// usable reports whether a backend is in the routing rotation. For an
// ejected backend it attempts one opportunistic heal per
// ReprobeInterval: a /readyz probe plus a full catalog replay-log
// resync (both must succeed — re-admitting a backend that misses
// catalog state would serve checks against stale or absent entries).
func (rt *Router) usable(ctx context.Context, backend int) bool {
	h := &rt.health[backend]
	if !h.ejected.Load() {
		return true
	}
	now := time.Now().UnixNano()
	last := h.lastReprobe.Load()
	if now-last < int64(rt.cfg.ReprobeInterval) || !h.lastReprobe.CompareAndSwap(last, now) {
		return false
	}
	if rt.probe(ctx, backend) && rt.syncBackend(ctx, backend) == 0 {
		h.ejected.Store(false)
		return true
	}
	return false
}

// routeKey extracts the consistent-hash key from a buffered request
// body with a tolerant decode: the catalog reference when present
// (check and batch requests), the entry name (catalog registrations),
// else the query text. Unknown fields are ignored — the backend
// revalidates strictly.
func routeKey(body []byte) string {
	var probe struct {
		Catalog string `json:"catalog"`
		Name    string `json:"name"`
		Query   string `json:"query"`
	}
	_ = json.Unmarshal(body, &probe)
	switch {
	case probe.Catalog != "":
		return probe.Catalog
	case probe.Name != "":
		return probe.Name
	default:
		return probe.Query
	}
}

// forwardHandler forwards one endpoint to the ring-picked backend.
func (rt *Router) forwardHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obs.ServeRequests.Inc(endpoint)
		id := rt.nextRequestID()
		w.Header().Set("X-Request-Id", id)
		if r.Method != http.MethodPost {
			writeError(w, id, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if rt.Draining() {
			rt.refuse(w, id)
			return
		}
		rt.wg.Add(1)
		defer rt.wg.Done()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		// Walk the failover order: skip ejected backends (reprobing them
		// when due), eject on connection failure and move on. The last
		// failure is reported only when no backend could take the
		// request.
		var lastErr error
		lastBackend := -1
		tried := 0
		for _, b := range rt.candidates(routeKey(body)) {
			if !rt.usable(r.Context(), b) {
				continue
			}
			tried++
			if tried > 1 {
				rt.health[b].retries.Add(1)
				obs.RouteRetries.Inc(rt.cfg.Backends[b])
			}
			resp, err := rt.forward(r.Context(), b, r.URL.Path, r.Header.Get("Content-Type"), body)
			if err != nil {
				lastErr, lastBackend = err, b
				continue
			}
			defer resp.Body.Close()
			relay(w, resp)
			return
		}
		if lastErr != nil {
			writeError(w, id, http.StatusBadGateway,
				"backend %s: %v", rt.cfg.Backends[lastBackend], lastErr)
			return
		}
		writeError(w, id, http.StatusBadGateway, "no backend in rotation")
	}
}

// forward posts a buffered body to one specific backend. A connection
// failure ejects the backend from the routing rotation (unless the
// caller's context caused it) and is returned to the caller — routed
// traffic fails over to the next ring candidate, broadcasts leave the
// entry in the replay log for syncBackend. An HTTP status from the
// backend — any status — means it is alive and is relayed as-is.
func (rt *Router) forward(ctx context.Context, backend int, path, contentType string, body []byte) (*http.Response, error) {
	name := rt.cfg.Backends[backend]
	rt.health[backend].forwards.Add(1)
	obs.RouteRequests.Inc(name)
	resp, err := rt.post(ctx, name+path, contentType, body)
	if err != nil {
		rt.health[backend].failures.Add(1)
		obs.RouteFailures.Inc(name)
		if ctx.Err() == nil {
			rt.eject(backend)
		}
		return nil, err
	}
	return resp, nil
}

func (rt *Router) post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return rt.client().Do(req)
}

// relay copies a backend response through: status, the content headers
// and a flushing body copy, so streamed batch JSONL lines reach the
// client as the backend emits them.
func relay(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if v := resp.Header.Get("X-Request-Id"); v != "" {
		w.Header().Set("X-Backend-Request-Id", v)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// fanoutHandler answers POST /v1/rcdp by scattering partition slices
// across all backends and merging (router -fanout mode).
func (rt *Router) fanoutHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("rcdp")
	id := rt.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if r.Method != http.MethodPost {
		writeError(w, id, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if rt.Draining() {
		rt.refuse(w, id)
		return
	}
	rt.wg.Add(1)
	defer rt.wg.Done()
	var req CheckRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, status, err := rt.coord.Check(r.Context(), &req)
	if err != nil {
		writeError(w, id, status, "fan-out: %v", err)
		return
	}
	resp.RequestID = id
	obs.ServeVerdicts.Inc(resp.Verdict)
	writeJSON(w, http.StatusOK, resp)
}

// catalogHandler broadcasts registrations (POST) to every backend —
// the ring may move keys when backends come and go, so each backend
// must hold every catalog — and fans a GET in to the union of the
// backends' listings.
func (rt *Router) catalogHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("catalog")
	id := rt.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	switch r.Method {
	case http.MethodGet:
		byName := map[string]CatalogInfo{}
		for i := range rt.cfg.Backends {
			infos, err := rt.listCatalog(r.Context(), i)
			if err != nil {
				writeError(w, id, http.StatusBadGateway,
					"backend %s: %v", rt.cfg.Backends[i], err)
				return
			}
			for _, info := range infos {
				if _, ok := byName[info.Name]; !ok {
					byName[info.Name] = info
				}
			}
		}
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		sort.Strings(names)
		out := make([]CatalogInfo, 0, len(names))
		for _, n := range names {
			out = append(out, byName[n])
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		if rt.Draining() {
			rt.refuse(w, id)
			return
		}
		rt.wg.Add(1)
		defer rt.wg.Done()
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		rt.broadcastCatalog(r.Context(), w, id, "/v1/catalog", body)
	default:
		writeError(w, id, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// mutationHandler broadcasts a catalog mutation to every backend:
// broadcast catalogs mean every backend holds its own copy of the
// entry, so a mutation must reach all of them or their maintained
// verdicts diverge. Unreachable backends are tolerated the same way as
// for registrations — the mutation lands in the replay log and
// syncBackend delivers it when the backend returns (mutation batches
// are idempotent at the tuple level, so replay over partial state is
// safe).
func (rt *Router) mutationHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("mutation")
	id := rt.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if rt.Draining() {
		rt.refuse(w, id)
		return
	}
	rt.wg.Add(1)
	defer rt.wg.Done()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rt.broadcastCatalog(r.Context(), w, id, r.URL.Path, body)
}

// verdictsProxyHandler forwards a verdicts read (including its
// long-poll parameters) to the catalog's first in-rotation ring
// candidate — the backend routed checks land on, so the poll observes
// the same copy even while the primary is ejected.
func (rt *Router) verdictsProxyHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("verdicts")
	id := rt.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	b := rt.pick(r.PathValue("name"))
	for _, c := range rt.candidates(r.PathValue("name")) {
		if rt.usable(r.Context(), c) {
			b = c
			break
		}
	}
	url := rt.cfg.Backends[b] + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, id, http.StatusBadGateway, "%v", err)
		return
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		writeError(w, id, http.StatusBadGateway, "backend %s: %v", rt.cfg.Backends[b], err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

// broadcastCatalog appends one catalog-state change (registration or
// mutation) to the replay log and applies it to every backend that is
// current. Unreachable backends are left behind for syncBackend; a
// backend that is alive but refuses the change aborts the broadcast —
// the entry is invalid, it is popped from the log and the refusal is
// relayed. At least one backend must accept, else the client gets 502
// and the log stays unchanged. The first accepting backend's response
// is relayed.
func (rt *Router) broadcastCatalog(ctx context.Context, w http.ResponseWriter, id, path string, body []byte) {
	rt.catmu.Lock()
	defer rt.catmu.Unlock()
	n := len(rt.catlog)
	rt.catlog = append(rt.catlog, catalogLogEntry{path: path, body: body})
	var first []byte
	firstStatus, accepted := 0, 0
	for i := range rt.cfg.Backends {
		if rt.applied[i] != n {
			continue // already behind; syncBackend replays in order
		}
		resp, err := rt.forward(ctx, i, path, "application/json", body)
		if err != nil {
			continue // unreachable: catches up on the next ready probe
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			rt.catlog = rt.catlog[:n]
			for j := range rt.applied {
				if rt.applied[j] > n {
					rt.applied[j] = n
				}
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(b)
			return
		}
		rt.applied[i] = n + 1
		accepted++
		if first == nil {
			first, firstStatus = b, resp.StatusCode
		}
	}
	if accepted == 0 {
		rt.catlog = rt.catlog[:n]
		writeError(w, id, http.StatusBadGateway, "no backend accepted the catalog update")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(firstStatus)
	_, _ = w.Write(first)
}

// syncBackend replays the catalog log entries a backend missed — it
// was unreachable during a broadcast, or restarted empty. The replay
// posts directly instead of going through forward, so the forwards
// ledger keeps counting only client-driven traffic. Replaying onto a
// backend holding any prefix of the log is sound: a registration it
// already has comes back as a 409 conflict (treated as applied), and
// mutation batches are idempotent at the tuple level (duplicate
// inserts and absent deletes are no-ops). It returns how many entries
// remain unapplied.
func (rt *Router) syncBackend(ctx context.Context, backend int) int {
	rt.catmu.Lock()
	defer rt.catmu.Unlock()
	for rt.applied[backend] < len(rt.catlog) {
		e := rt.catlog[rt.applied[backend]]
		resp, err := rt.post(ctx, rt.cfg.Backends[backend]+e.path, "application/json", e.body)
		if err != nil {
			break
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		status := resp.StatusCode
		resp.Body.Close()
		if status >= 300 && !(e.path == "/v1/catalog" && status == http.StatusConflict) {
			break
		}
		rt.applied[backend]++
	}
	return len(rt.catlog) - rt.applied[backend]
}

// listCatalog fetches one backend's catalog listing.
func (rt *Router) listCatalog(ctx context.Context, backend int) ([]CatalogInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.Backends[backend]+"/v1/catalog", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("catalog listing: status %d", resp.StatusCode)
	}
	var infos []CatalogInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// BackendStatus is one row of GET /v1/backends: a live readiness probe
// plus the router's forward ledger and rotation state for that backend.
type BackendStatus struct {
	Backend string `json:"backend"`
	Ready   bool   `json:"ready"`
	// State is the routing-rotation state: "healthy" (receives routed
	// traffic) or "ejected" (skipped until a probe + replay-log resync
	// heal it). Retries counts failovers this backend received from
	// ejected or failing peers.
	State    string `json:"state"`
	Forwards int64  `json:"forwards"`
	Retries  int64  `json:"retries"`
	Failures int64  `json:"failures"`
	// Pending is how many catalog replay-log entries the backend still
	// misses (see syncBackend); a ready backend is synced during this
	// probe, so a ready backend with Pending > 0 is refusing replays.
	Pending int `json:"pending"`
}

// backendsHandler reports per-backend health: a live /readyz probe,
// the forward/retry/failure counters and the rotation state. The sweep
// is also the deliberate heal path: a backend that probes ready has
// its missed catalog replay-log entries replayed and, once fully
// caught up, is re-admitted to the routing rotation; a backend that
// probes unready is ejected. An operator (or the relload watchdog)
// polling /v1/backends therefore heals a rejoined backend without
// extra machinery and without waiting for ReprobeInterval.
func (rt *Router) backendsHandler(w http.ResponseWriter, r *http.Request) {
	id := rt.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	if r.Method != http.MethodGet {
		writeError(w, id, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := make([]BackendStatus, len(rt.cfg.Backends))
	var wg sync.WaitGroup
	for i, b := range rt.cfg.Backends {
		out[i] = BackendStatus{
			Backend:  b,
			Forwards: rt.health[i].forwards.Load(),
			Retries:  rt.health[i].retries.Load(),
			Failures: rt.health[i].failures.Load(),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Ready = rt.probe(r.Context(), i)
			if out[i].Ready {
				out[i].Pending = rt.syncBackend(r.Context(), i)
				if out[i].Pending == 0 {
					rt.health[i].ejected.Store(false)
				}
			} else {
				rt.eject(i)
				rt.catmu.Lock()
				out[i].Pending = len(rt.catlog) - rt.applied[i]
				rt.catmu.Unlock()
			}
			out[i].State = "healthy"
			if rt.health[i].ejected.Load() {
				out[i].State = "ejected"
			}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

// probe checks one backend's /readyz.
func (rt *Router) probe(ctx context.Context, backend int) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.Backends[backend]+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) readyzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}
