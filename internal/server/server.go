// Package server implements relserve, the long-running HTTP JSON
// service that puts the completeness-checking stack (internal/core and
// friends) behind a concurrent serving surface.
//
// # Design
//
// Every check endpoint runs through one bounded worker pool with
// admission control: at most Config.Workers checks execute at once, at
// most Config.QueueDepth admitted requests wait for a slot, and
// everything beyond that is refused immediately with 429 and a
// Retry-After hint — the Σ₂ᵖ/Σ₃ᵖ lower bounds of the decision
// procedures mean a saturated service must shed load rather than build
// an unbounded backlog. Admitted requests are governed twice over: the
// HTTP request context (client disconnects cancel the search) and a
// per-request core.Budget assembled from the server defaults, the
// request's optional overrides and the operator ceilings
// (Budget.Clamp), so no request can exceed what the operator allows.
//
// Master data is meant to be registered once in the Catalog and
// referenced by name: catalog entries pin the (Dm, V) pair plus the
// database schemas, so the cc master-side p(Dm) memoization, the
// lazily built column indexes of Dm and the compiled-tableau cache of
// parsed queries are all shared across the request stream instead of
// being rebuilt per request.
//
// Shutdown is a drain: Drain flips the server to draining (readiness
// probes and new requests see 503), waits for every admitted request
// to finish, and only then lets the process exit. cmd/relserve wires
// it to SIGTERM/SIGINT.
package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes the serving surface. The zero value is usable: one
// executing check per CPU, a queue twice that deep, sequential search
// inside each check and no budget ceilings.
type Config struct {
	// Workers is the number of checks executing concurrently
	// (0 = runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth is how many admitted requests may wait for a worker
	// slot beyond the executing ones (0 = 2×Workers). Requests beyond
	// Workers+QueueDepth are refused with 429.
	QueueDepth int
	// CheckWorkers is the core valuation-search worker count inside
	// each check (0 = 1, i.e. sequential search: the serving layer gets
	// its parallelism across requests, not within them).
	CheckWorkers int
	// DefaultBudget governs requests that carry no budget override.
	DefaultBudget core.Budget
	// MaxBudget holds the operator ceilings every effective request
	// budget is clamped to (core.Budget.Clamp); zero dimensions are
	// unlimited.
	MaxBudget core.Budget
	// RetryAfter is the hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// MaxApproxCandidates is the operator ceiling on oracle calls one
	// /v1/approximate or /v1/advise request may spend; request
	// max_candidates values above it are clamped (default 256).
	MaxApproxCandidates int
	// MaxMineCandidates is the operator ceiling on candidate
	// constraints one /v1/mine request may enumerate and score; request
	// max_candidates values above it are clamped (default 256).
	MaxMineCandidates int
	// MaxDegreeValuations is the operator ceiling on candidate
	// valuations a degree-requesting check may inspect per disjunct;
	// request degree_valuations values above it are clamped
	// (default 100000).
	MaxDegreeValuations int
}

// Server is the relserve HTTP service. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg      Config
	workers  int
	capacity int64
	catalog  *Catalog

	sem      chan struct{} // execution slots
	inflight atomic.Int64  // admitted (queued + executing) requests
	draining atomic.Bool
	wg       sync.WaitGroup // one unit per admitted request
	reqSeq   atomic.Int64

	// partialGroups pools valuation budgets across the slices of one
	// partitioned check (POST /v1/partial budget_group).
	partialGroups budgetGroups

	// beforeCheck, when non-nil, runs inside the worker slot before the
	// request body is processed. Tests use it to hold slots occupied
	// while they probe admission control and draining.
	beforeCheck func()

	mux *http.ServeMux
}

// New builds a Server from cfg, applying the documented defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CheckWorkers <= 0 {
		cfg.CheckWorkers = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxApproxCandidates <= 0 {
		cfg.MaxApproxCandidates = 256
	}
	if cfg.MaxMineCandidates <= 0 {
		cfg.MaxMineCandidates = 256
	}
	if cfg.MaxDegreeValuations <= 0 {
		cfg.MaxDegreeValuations = 100000
	}
	s := &Server{
		cfg:      cfg,
		workers:  cfg.Workers,
		capacity: int64(cfg.Workers + cfg.QueueDepth),
		catalog:  NewCatalog(),
		sem:      make(chan struct{}, cfg.Workers),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/rcdp", s.checkHandler("rcdp", s.runRCDP))
	s.mux.HandleFunc("/v1/rcqp", s.checkHandler("rcqp", s.runRCQP))
	s.mux.HandleFunc("/v1/bounded", s.checkHandler("bounded", s.runBounded))
	s.mux.HandleFunc("/v1/approximate", handleAdmitted(s, "approximate", s.serveApproximate))
	s.mux.HandleFunc("/v1/advise", handleAdmitted(s, "advise", s.serveAdvise))
	s.mux.HandleFunc("/v1/batch", handleAdmitted(s, "batch", s.serveBatch))
	s.mux.HandleFunc("/v1/mine", handleAdmitted(s, "mine", s.serveMine))
	s.mux.HandleFunc("/v1/partial", handleAdmitted(s, "partial", s.servePartial))
	s.mux.HandleFunc("/v1/catalog", s.catalogHandler)
	s.mux.HandleFunc("POST /v1/catalog/{name}/insert", handleAdmitted(s, "insert", s.serveMutation("insert")))
	s.mux.HandleFunc("POST /v1/catalog/{name}/delete", handleAdmitted(s, "delete", s.serveMutation("delete")))
	s.mux.HandleFunc("GET /v1/catalog/{name}/verdicts", s.verdictsHandler)
	s.mux.HandleFunc("/healthz", obs.HealthzHandler)
	s.mux.HandleFunc("/readyz", s.readyzHandler)
	return s
}

// Handler returns the service's HTTP surface: the three check
// endpoints, the catalog endpoint and the health probes. Metrics live
// on the separate obs.Handler surface (the -metrics listener).
func (s *Server) Handler() http.Handler { return s.mux }

// Catalog returns the master-data catalog for out-of-band registration
// (startup preloading in cmd/relserve, tests).
func (s *Server) Catalog() *Catalog { return s.catalog }

// Draining reports whether Drain has begun: the server refuses new
// work but still finishes admitted requests.
func (s *Server) Draining() bool { return s.draining.Load() }

// Capacity returns the admission bound (executing + queued requests).
func (s *Server) Capacity() int { return int(s.capacity) }

// Drain puts the server into draining mode and waits for every
// admitted request to finish, or for ctx to expire (the error is then
// ctx's). It is idempotent; requests arriving after the first call get
// 503.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit reserves an admission slot; false means the bound is reached.
func (s *Server) admit() bool {
	for {
		n := s.inflight.Load()
		if n >= s.capacity {
			return false
		}
		if s.inflight.CompareAndSwap(n, n+1) {
			obs.ServeInflight.Add(1)
			return true
		}
	}
}

// release returns an admission slot.
func (s *Server) release() {
	s.inflight.Add(-1)
	obs.ServeInflight.Add(-1)
	s.wg.Done()
}

// nextRequestID mints the per-process request id surfaced in the
// X-Request-Id header, response bodies and trace events.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("r%06d", s.reqSeq.Add(1))
}

func (s *Server) readyzHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}
