package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qlang"
	"repro/internal/relation"
	"repro/internal/textq"
)

// BudgetOverride is the per-request governance override. Every field
// is optional; set fields replace the server default for that
// dimension and are then clamped to the operator ceilings.
type BudgetOverride struct {
	TimeoutMS     int64 `json:"timeout_ms,omitempty"`
	MaxValuations int   `json:"max_valuations,omitempty"`
	MaxJoinRows   int64 `json:"max_join_rows,omitempty"`
	MaxTuples     int64 `json:"max_tuples,omitempty"`
}

// CheckRequest is the body of the three check endpoints. All problem
// parts use the textq grammar. Either Catalog names a registered
// (Dm, V) context — the request then carries only DB facts and the
// query — or the request is self-contained with inline Schemas,
// MasterSchemas, Master and Constraints.
type CheckRequest struct {
	Catalog       string `json:"catalog,omitempty"`
	Schemas       string `json:"schemas,omitempty"`
	MasterSchemas string `json:"master_schemas,omitempty"`
	DB            string `json:"db,omitempty"`
	Master        string `json:"master,omitempty"`
	Constraints   string `json:"constraints,omitempty"`
	Query         string `json:"query"`

	Budget *BudgetOverride `json:"budget,omitempty"`

	// Bounded-search knobs (/v1/bounded only; zero keeps the engine
	// defaults).
	MaxAdd      int `json:"max_add,omitempty"`
	FreshValues int `json:"fresh_values,omitempty"`

	// Degree asks /v1/rcdp to also measure the quantitative degree of
	// completeness (core.DegreeCtx): the response then carries a
	// "degree" object. DegreeValuations bounds the candidate valuations
	// inspected per disjunct; zero and over-ceiling values are clamped
	// to the operator's -max-degree-valuations.
	Degree           bool `json:"degree,omitempty"`
	DegreeValuations int  `json:"degree_valuations,omitempty"`
}

// StatsJSON mirrors core.BudgetStats for responses.
type StatsJSON struct {
	Valuations int     `json:"valuations"`
	JoinRows   int64   `json:"join_rows"`
	Tuples     int64   `json:"tuples"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

func statsJSON(st core.BudgetStats) *StatsJSON {
	return &StatsJSON{
		Valuations: st.Valuations,
		JoinRows:   st.JoinRows,
		Tuples:     st.Tuples,
		ElapsedMS:  float64(st.Elapsed) / float64(time.Millisecond),
	}
}

// CheckResponse is the body of a successful check. Verdict is the
// three-valued outcome ("complete", "incomplete", "unknown" for
// RCDP/bounded; "yes", "no", "unknown" for RCQP); Reason names the
// exhausted governance dimension on "unknown". Extension/NewTuple
// witness incompleteness (textq facts), Witness carries a verified
// complete database on RCQP "yes".
type CheckResponse struct {
	RequestID string     `json:"request_id"`
	Verdict   string     `json:"verdict"`
	Reason    string     `json:"reason,omitempty"`
	Stats     *StatsJSON `json:"stats,omitempty"`

	Extension string   `json:"extension,omitempty"`
	NewTuple  []string `json:"new_tuple,omitempty"`

	Method  string `json:"method,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Witness string `json:"witness,omitempty"`

	Explored int `json:"explored,omitempty"`
	MaxAdd   int `json:"max_add,omitempty"`

	// Degree is present when the request asked for the quantitative
	// completeness score.
	Degree *DegreeJSON `json:"degree,omitempty"`
}

// DegreeJSON is the quantitative completeness score of a /v1/rcdp
// response: the covered fraction of candidate valuations with its
// Wilson 95% interval. Exact reports an exhaustive enumeration (the
// value is then the true fraction and value 1.0 iff the verdict is
// complete); otherwise the run was a budget-governed prefix sample and
// Reason names the stopping dimension.
type DegreeJSON struct {
	Value           float64 `json:"value"`
	Lo              float64 `json:"lo"`
	Hi              float64 `json:"hi"`
	Exact           bool    `json:"exact"`
	Verdict         string  `json:"verdict"`
	Candidates      int     `json:"candidates"`
	Counterexamples int     `json:"counterexamples"`
	Reason          string  `json:"reason,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	RequestID string `json:"request_id,omitempty"`
	Error     string `json:"error"`
}

// checkInput is a resolved request: parsed problem parts plus the
// effective budget. release, when non-nil, must be called once the
// check is done with the parts — catalog-backed inputs hold the
// entry's read lock so a concurrent mutation cannot patch (D)m or V
// mid-search.
type checkInput struct {
	schemas map[string]*relation.Schema
	d       *relation.Database
	dm      *relation.Database
	v       *cc.Set
	q       qlang.Query
	budget  core.Budget
	req     *CheckRequest
	release func()
}

// httpError carries a status code with a client-facing message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) error {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// retryAfterHeader attaches the Retry-After hint the refusal statuses
// (429 queue-full, 503 draining) carry so clients and routers back off
// instead of hammering.
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
}

// refuseDraining answers a request that arrived after Drain began:
// 503 with the same Retry-After hint as admission 429s, so routed
// clients treat a dying backend like a saturated one and retry
// elsewhere after the hint instead of immediately.
func (s *Server) refuseDraining(w http.ResponseWriter, id string) {
	obs.ServeRejections.Inc("draining")
	s.retryAfterHeader(w)
	writeError(w, id, http.StatusServiceUnavailable, "server is draining")
}

// handleAdmitted wraps an endpoint with the shared serving machinery:
// method filtering, drain refusal, body decoding, admission control,
// queue-occupancy accounting and the worker slot. serve runs inside
// the slot with the decoded request and is responsible for the
// response body and any endpoint-specific metrics; the
// admission-to-response latency observation is shared. Every endpoint
// — single checks, batches and partition slices alike — goes through
// this one path, so the admission bound governs them uniformly (a
// batch occupies one slot for its whole run).
func handleAdmitted[Req any](s *Server, endpoint string, serve func(ctx context.Context, id string, req *Req, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obs.ServeRequests.Inc(endpoint)
		id := s.nextRequestID()
		w.Header().Set("X-Request-Id", id)
		if r.Method != http.MethodPost {
			writeError(w, id, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if s.Draining() {
			s.refuseDraining(w, id)
			return
		}
		// Decode before admission: consuming the body lets net/http
		// surface client disconnects through the request context while
		// the request waits for a worker slot; the expensive work
		// (textq parsing, the check itself) stays inside the slot.
		var req Req
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if !s.admit() {
			obs.ServeRejections.Inc("queue-full")
			s.retryAfterHeader(w)
			writeError(w, id, http.StatusTooManyRequests,
				"admission queue is full (capacity %d); retry later", s.capacity)
			return
		}
		s.wg.Add(1)
		defer s.release()
		start := time.Now()
		if obs.Tracing() {
			obs.Emit("http_request", map[string]any{"id": id, "endpoint": endpoint})
		}

		// Wait for an execution slot; a client that goes away while
		// queued releases its admission slot without running. The
		// occupancy gauge covers exactly this wait, so its value is the
		// admitted-but-not-yet-executing count.
		ctx := r.Context()
		obs.ServeQueueOccupancy.Add(1)
		select {
		case s.sem <- struct{}{}:
			obs.ServeQueueOccupancy.Add(-1)
		case <-ctx.Done():
			obs.ServeQueueOccupancy.Add(-1)
			obs.ServeRejections.Inc("abandoned")
			return
		}
		defer func() { <-s.sem }()
		if s.beforeCheck != nil {
			s.beforeCheck()
		}

		serve(ctx, id, &req, w, r)
		obs.ServeSeconds.Observe(time.Since(start).Seconds())
	}
}

// checkHandler builds one single-check endpoint on the shared
// admission machinery; run executes the already-resolved check.
func (s *Server) checkHandler(endpoint string, run func(ctx context.Context, in *checkInput) (*CheckResponse, error)) http.HandlerFunc {
	return handleAdmitted(s, endpoint, func(ctx context.Context, id string, req *CheckRequest, w http.ResponseWriter, _ *http.Request) {
		resp, err := s.process(ctx, req, run)
		status := http.StatusOK
		verdict := ""
		if err != nil {
			status = statusOf(err)
			writeError(w, id, status, "%s", err.Error())
		} else {
			resp.RequestID = id
			verdict = resp.Verdict
			obs.ServeVerdicts.Inc(verdict)
			writeJSON(w, http.StatusOK, resp)
		}
		if obs.Tracing() {
			f := map[string]any{"id": id, "endpoint": endpoint, "status": status}
			if verdict != "" {
				f["verdict"] = verdict
			}
			obs.Emit("http_response", f)
		}
	})
}

// statusOf maps a processing error to its HTTP status: explicit
// httpErrors keep theirs, anything else is a 422 (the request was
// well-formed but the check could not run on it).
func statusOf(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusUnprocessableEntity
}

// process resolves and runs one admitted check request.
func (s *Server) process(ctx context.Context, req *CheckRequest, run func(ctx context.Context, in *checkInput) (*CheckResponse, error)) (*CheckResponse, error) {
	in, err := s.resolve(req)
	if err != nil {
		return nil, err
	}
	if in.release != nil {
		defer in.release()
	}
	return run(ctx, in)
}

// resolve turns a decoded request into parsed problem parts and the
// effective, ceiling-clamped budget.
func (s *Server) resolve(req *CheckRequest) (*checkInput, error) {
	return s.resolveWith(req, false)
}

// resolveWith is resolve with one extra behavior for the approximation
// endpoints: when residentDefault is set, a catalog-backed request with
// an empty db field runs against the entry's resident database (the
// state the mutation endpoints maintain) instead of an empty one. The
// check endpoints keep residentDefault off — their empty db has always
// meant the empty database, and changing that would change verdicts.
func (s *Server) resolveWith(req *CheckRequest, residentDefault bool) (*checkInput, error) {
	if req.Query == "" {
		return nil, httpErrorf(http.StatusBadRequest, "query is required")
	}
	in := &checkInput{req: req, budget: s.effectiveBudget(req.Budget)}
	if req.Catalog != "" {
		if req.Schemas != "" || req.MasterSchemas != "" || req.Master != "" || req.Constraints != "" {
			return nil, httpErrorf(http.StatusBadRequest,
				"catalog %q conflicts with inline schemas/master/constraints", req.Catalog)
		}
		e := s.catalog.Get(req.Catalog)
		if e == nil {
			return nil, httpErrorf(http.StatusNotFound, "catalog %q is not registered", req.Catalog)
		}
		// Hold the entry's read side until the check releases it, so a
		// concurrent mutation cannot patch Dm or V mid-search.
		e.mu.RLock()
		var d *relation.Database
		var err error
		if residentDefault && req.DB == "" {
			d = e.D
		} else if d, err = textq.ParseFacts(req.DB, e.Schemas); err != nil {
			e.mu.RUnlock()
			return nil, httpErrorf(http.StatusBadRequest, "db: %v", err)
		}
		q, err := e.Query(req.Query)
		if err != nil {
			e.mu.RUnlock()
			return nil, httpErrorf(http.StatusBadRequest, "query: %v", err)
		}
		in.schemas, in.d, in.dm, in.v, in.q = e.Schemas, d, e.Dm, e.V, q
		in.release = e.mu.RUnlock
		return in, nil
	}
	p, err := textq.ParseProblem(textq.ProblemSource{
		Schemas:       req.Schemas,
		MasterSchemas: req.MasterSchemas,
		DB:            req.DB,
		Master:        req.Master,
		Constraints:   req.Constraints,
		Query:         req.Query,
	})
	if err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	in.schemas, in.d, in.dm, in.v, in.q = p.Schemas, p.D, p.Dm, p.V, p.Q
	return in, nil
}

// effectiveBudget overlays the request's overrides on the server
// defaults and clamps the result to the operator ceilings.
func (s *Server) effectiveBudget(o *BudgetOverride) core.Budget {
	b := s.cfg.DefaultBudget
	if o != nil {
		if o.TimeoutMS > 0 {
			b.Timeout = time.Duration(o.TimeoutMS) * time.Millisecond
		}
		if o.MaxValuations > 0 {
			b.MaxValuations = o.MaxValuations
		}
		if o.MaxJoinRows > 0 {
			b.MaxJoinRows = o.MaxJoinRows
		}
		if o.MaxTuples > 0 {
			b.MaxTuples = o.MaxTuples
		}
	}
	return b.Clamp(s.cfg.MaxBudget)
}

// decidable guards the exact endpoints: RCDP/RCQP are undecidable
// beyond monotone queries and constraints (Theorems 3.1/4.1).
func decidable(in *checkInput) error {
	switch {
	case !in.q.Lang().Monotone() && !in.v.AllMonotone():
		return httpErrorf(http.StatusUnprocessableEntity,
			"undecidable fragment (%v query, non-monotone constraints): use /v1/bounded", in.q.Lang())
	case !in.q.Lang().Monotone():
		return httpErrorf(http.StatusUnprocessableEntity,
			"undecidable fragment (%v query): use /v1/bounded", in.q.Lang())
	case !in.v.AllMonotone():
		return httpErrorf(http.StatusUnprocessableEntity,
			"undecidable fragment (non-monotone constraints): use /v1/bounded")
	}
	return nil
}

func (s *Server) runRCDP(ctx context.Context, in *checkInput) (*CheckResponse, error) {
	if err := decidable(in); err != nil {
		return nil, err
	}
	ck := core.Checker{Workers: s.cfg.CheckWorkers, Budget: in.budget}
	res, err := ck.RCDPCtx(ctx, in.q, in.d, in.dm, in.v)
	if err != nil {
		return nil, err
	}
	out := &CheckResponse{
		Verdict: res.Verdict.String(),
		Reason:  res.Reason.String(),
		Stats:   statsJSON(res.Stats),
	}
	if res.Verdict == core.VerdictIncomplete {
		out.Extension = textq.FormatDatabase(res.Extension)
		out.NewTuple = tupleJSON(res.NewTuple)
	}
	if in.req != nil && in.req.Degree {
		dg, err := s.runDegree(ctx, in)
		if err != nil {
			return nil, err
		}
		out.Degree = dg
	}
	return out, nil
}

// runDegree measures the quantitative completeness score for a
// degree-requesting /v1/rcdp call. The degree enumeration reuses the
// request's effective budget except for its valuation dimension, which
// is governed separately: the request's degree_valuations clamped to
// the operator's MaxDegreeValuations ceiling.
func (s *Server) runDegree(ctx context.Context, in *checkInput) (*DegreeJSON, error) {
	budget := in.budget
	dv := in.req.DegreeValuations
	if dv <= 0 || dv > s.cfg.MaxDegreeValuations {
		dv = s.cfg.MaxDegreeValuations
	}
	budget.MaxValuations = dv
	ck := core.Checker{Workers: s.cfg.CheckWorkers, Budget: budget}
	res, err := ck.DegreeCtx(ctx, in.q, in.d, in.dm, in.v)
	if err != nil {
		return nil, err
	}
	out := &DegreeJSON{
		Value:           res.Degree,
		Lo:              res.Lo,
		Hi:              res.Hi,
		Exact:           res.Exact,
		Verdict:         res.Verdict.String(),
		Candidates:      res.Candidates,
		Counterexamples: res.Counterexamples,
	}
	if res.Reason != core.ReasonNone {
		out.Reason = res.Reason.String()
	}
	return out, nil
}

func (s *Server) runRCQP(ctx context.Context, in *checkInput) (*CheckResponse, error) {
	if err := decidable(in); err != nil {
		return nil, err
	}
	ck := core.QPChecker{Checker: core.Checker{Workers: s.cfg.CheckWorkers, Budget: in.budget}}
	res, err := ck.RCQPCtx(ctx, in.q, in.dm, in.v, in.schemas)
	if err != nil {
		return nil, err
	}
	out := &CheckResponse{
		Verdict: res.Status.String(),
		Reason:  res.Reason.String(),
		Stats:   statsJSON(res.Stats),
		Method:  res.Method,
		Detail:  res.Detail,
	}
	if res.Witness != nil {
		out.Witness = textq.FormatDatabase(res.Witness)
	}
	return out, nil
}

func (s *Server) runBounded(ctx context.Context, in *checkInput) (*CheckResponse, error) {
	opts := core.BoundedOpts{
		MaxAdd:      in.req.MaxAdd,
		FreshValues: in.req.FreshValues,
		Workers:     s.cfg.CheckWorkers,
		Budget:      in.budget,
	}
	res, err := core.BoundedRCDPCtx(ctx, in.q, in.d, in.dm, in.v, opts)
	if err != nil {
		return nil, err
	}
	out := &CheckResponse{
		Verdict:  res.Verdict.String(),
		Reason:   res.Reason.String(),
		Stats:    statsJSON(res.Stats),
		Explored: res.Explored,
		MaxAdd:   res.MaxAdd,
	}
	if res.Incomplete {
		out.Extension = textq.FormatDatabase(res.Extension)
		out.NewTuple = tupleJSON(res.NewTuple)
	}
	return out, nil
}

// CatalogRequest registers a master-data context under a name. DB
// seeds the entry's resident database (the state mutation endpoints
// patch; entries without DB facts start empty) and Queries seeds the
// watched queries whose verdicts the entry maintains across mutations
// (see mutation.go).
type CatalogRequest struct {
	Name          string   `json:"name"`
	Schemas       string   `json:"schemas"`
	MasterSchemas string   `json:"master_schemas,omitempty"`
	DB            string   `json:"db,omitempty"`
	Master        string   `json:"master,omitempty"`
	Constraints   string   `json:"constraints,omitempty"`
	Queries       []string `json:"queries,omitempty"`
}

// CatalogInfo describes one registered entry.
type CatalogInfo struct {
	Name          string `json:"name"`
	Relations     int    `json:"relations"`
	DBTuples      int    `json:"db_tuples"`
	MasterTuples  int    `json:"master_tuples"`
	Constraints   int    `json:"constraints"`
	CachedQueries int    `json:"cached_queries"`
	Watched       int    `json:"watched,omitempty"`
	Version       uint64 `json:"version,omitempty"`
}

// catalogHandler registers entries (POST) and lists them (GET).
func (s *Server) catalogHandler(w http.ResponseWriter, r *http.Request) {
	obs.ServeRequests.Inc("catalog")
	id := s.nextRequestID()
	w.Header().Set("X-Request-Id", id)
	switch r.Method {
	case http.MethodGet:
		names := s.catalog.Names()
		infos := make([]CatalogInfo, 0, len(names))
		for _, n := range names {
			infos = append(infos, catalogInfo(s.catalog.Get(n)))
		}
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		if s.Draining() {
			s.refuseDraining(w, id)
			return
		}
		var req CatalogRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, id, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		e, err := s.catalog.Register(req.Name, textq.ProblemSource{
			Schemas:       req.Schemas,
			MasterSchemas: req.MasterSchemas,
			DB:            req.DB,
			Master:        req.Master,
			Constraints:   req.Constraints,
		})
		if err != nil {
			status := http.StatusBadRequest
			if s.catalog.Get(req.Name) != nil {
				status = http.StatusConflict
			}
			writeError(w, id, status, "%v", err)
			return
		}
		if len(req.Queries) > 0 {
			ck := &core.Checker{Workers: s.cfg.CheckWorkers, Budget: s.effectiveBudget(nil)}
			if err := e.Watch(r.Context(), ck, req.Queries); err != nil {
				s.catalog.drop(req.Name)
				writeError(w, id, http.StatusBadRequest, "%v", err)
				return
			}
		}
		writeJSON(w, http.StatusCreated, catalogInfo(e))
	default:
		writeError(w, id, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func catalogInfo(e *Entry) CatalogInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	count := func(db *relation.Database) int {
		n := 0
		if db != nil {
			for _, name := range db.Relations() {
				n += db.Instance(name).Len()
			}
		}
		return n
	}
	return CatalogInfo{
		Name:          e.Name,
		Relations:     len(e.Schemas),
		DBTuples:      count(e.D),
		MasterTuples:  count(e.Dm),
		Constraints:   e.V.Len(),
		CachedQueries: e.CachedQueries(),
		Watched:       len(e.watched),
		Version:       e.version,
	}
}

func tupleJSON(t relation.Tuple) []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = string(v)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, id string, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{RequestID: id, Error: fmt.Sprintf(format, args...)})
}
