package server

import (
	"context"
	"net/http"
	"strings"

	"repro/internal/cc"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/textq"
)

// POST /v1/mine wraps internal/mine behind the shared serving
// machinery: propose containment constraints from evidence pairs,
// score them, and (in the default complete oracle mode) emit only
// candidates certified by the exact checker. Evidence arrives in one
// of two shapes:
//
//   - inline: the request carries an "evidence" document in the
//     internal/mine grammar (schemas + pairs);
//   - catalog-backed: the request names a registered catalog and a
//     list of db-facts documents ("dbs"); each document is parsed
//     against the entry's schemas and paired with the entry's master
//     data, so evidence pairs share the catalog's memoized Dm.
//
// The candidate budget is clamped to the operator's
// -max-mine-candidates ceiling, like the approximation endpoints'
// -max-approx-candidates.

// MineRequest is the body of POST /v1/mine.
type MineRequest struct {
	// Evidence is a full evidence document (mine grammar). Mutually
	// exclusive with Catalog/DBs.
	Evidence string `json:"evidence,omitempty"`

	// Catalog names a registered entry; DBs carries one textq facts
	// document per evidence database, each paired with the entry's Dm.
	Catalog string   `json:"catalog,omitempty"`
	DBs     []string `json:"dbs,omitempty"`

	// Mining knobs; zero keeps the engine defaults, and max_candidates
	// is additionally clamped to the operator ceiling.
	MinSupport      float64 `json:"min_support,omitempty"`
	MinConfidence   float64 `json:"min_confidence,omitempty"`
	MaxSelectorCard int     `json:"max_selector_card,omitempty"`
	MaxConstants    int     `json:"max_constants,omitempty"`
	MaxCandidates   int     `json:"max_candidates,omitempty"`
	// Oracle is "complete" (default: emit checker-certified constraints
	// only) or "closure" (confidence survivors, validated=false).
	Oracle string `json:"oracle,omitempty"`

	// Budget governs each oracle check (override of the server default,
	// clamped to the operator ceilings).
	Budget *BudgetOverride `json:"budget,omitempty"`
}

// MinedJSON is one emitted constraint.
type MinedJSON struct {
	Name       string  `json:"name"`
	Constraint string  `json:"constraint"`
	Signature  string  `json:"signature"`
	Support    float64 `json:"support"`
	Confidence float64 `json:"confidence"`
	Validated  bool    `json:"validated"`
}

// MineResponse is the body of a successful /v1/mine call.
type MineResponse struct {
	RequestID   string      `json:"request_id"`
	Constraints []MinedJSON `json:"constraints"`
	Pairs       int         `json:"pairs"`
	Enumerated  int         `json:"enumerated"`
	Survivors   int         `json:"survivors"`
	Subsumed    int         `json:"subsumed"`
	Rejected    int         `json:"oracle_rejected"`
	Truncated   bool        `json:"truncated,omitempty"`
}

// minePairs resolves the request's evidence shape into pairs. The
// returned release function, when non-nil, holds the catalog entry's
// read lock for the duration of the mining run.
func (s *Server) minePairs(req *MineRequest) ([]mine.Pair, func(), error) {
	if req.Evidence != "" {
		if req.Catalog != "" || len(req.DBs) > 0 {
			return nil, nil, httpErrorf(http.StatusBadRequest,
				"evidence conflicts with catalog/dbs")
		}
		pairs, err := mine.ParseEvidence(req.Evidence)
		if err != nil {
			return nil, nil, httpErrorf(http.StatusBadRequest, "%v", err)
		}
		return pairs, nil, nil
	}
	if req.Catalog == "" {
		return nil, nil, httpErrorf(http.StatusBadRequest,
			"either evidence or catalog+dbs is required")
	}
	if len(req.DBs) == 0 {
		return nil, nil, httpErrorf(http.StatusBadRequest,
			"catalog mining needs at least one dbs document")
	}
	e := s.catalog.Get(req.Catalog)
	if e == nil {
		return nil, nil, httpErrorf(http.StatusNotFound, "catalog %q is not registered", req.Catalog)
	}
	e.mu.RLock()
	pairs := make([]mine.Pair, 0, len(req.DBs))
	for i, src := range req.DBs {
		d, err := textq.ParseFacts(src, e.Schemas)
		if err != nil {
			e.mu.RUnlock()
			return nil, nil, httpErrorf(http.StatusBadRequest, "dbs[%d]: %v", i, err)
		}
		pairs = append(pairs, mine.Pair{D: d, Dm: e.Dm})
	}
	return pairs, e.mu.RUnlock, nil
}

// serveMine handles POST /v1/mine.
func (s *Server) serveMine(ctx context.Context, id string, req *MineRequest, w http.ResponseWriter, _ *http.Request) {
	pairs, release, err := s.minePairs(req)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	if release != nil {
		defer release()
	}
	maxCand := req.MaxCandidates
	if maxCand <= 0 || maxCand > s.cfg.MaxMineCandidates {
		maxCand = s.cfg.MaxMineCandidates
	}
	opt := mine.Options{
		MinSupport:      req.MinSupport,
		MinConfidence:   req.MinConfidence,
		MaxSelectorCard: req.MaxSelectorCard,
		MaxConstants:    req.MaxConstants,
		MaxCandidates:   maxCand,
		Oracle:          mine.OracleMode(req.Oracle),
		Workers:         s.cfg.CheckWorkers,
		Budget:          s.effectiveBudget(req.Budget),
	}
	res, err := mine.Mine(ctx, pairs, opt)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	out := &MineResponse{
		RequestID:   id,
		Constraints: []MinedJSON{},
		Pairs:       res.Stats.Pairs,
		Enumerated:  res.Stats.Enumerated,
		Survivors:   res.Stats.Survivors,
		Subsumed:    res.Stats.Subsumed,
		Rejected:    res.Stats.OracleRejected,
		Truncated:   res.Stats.Truncated,
	}
	for _, m := range res.Mined {
		text := ""
		if src, err := textq.FormatConstraints(cc.NewSet(m.Constraint)); err == nil {
			text = strings.TrimRight(src, "\n")
		}
		out.Constraints = append(out.Constraints, MinedJSON{
			Name:       m.Constraint.Name,
			Constraint: text,
			Signature:  m.Signature,
			Support:    m.Support,
			Confidence: m.Confidence,
			Validated:  m.Validated,
		})
	}
	obs.ServeVerdicts.Inc("mined")
	writeJSON(w, http.StatusOK, out)
}
