package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"

	"repro/internal/core"
)

// The /v1/partial shared-ledger registry.
//
// A coordinator that wants its K-way fan-out to exhaust the valuation
// budget like a single process mints one budget-group token per check
// and stamps it on every slice request. Slices of one group that land
// on the same backend process share one core.SharedBudget through this
// registry, so their per-disjunct MaxValuations spend is pooled; the
// merged verdict then reproduces the sequential Unknown/valuations
// surface instead of granting each slice its own cap (the per-slice
// divergence core.TestPartitionBudgetClaim pins).
//
// The pooling is exact only for slices the router co-locates: slices
// of one group on different backends still charge separate ledgers,
// because a literally-shared atomic across processes would put a
// network round-trip in the innermost search loop. A group whose
// slices scatter across backends therefore degrades gracefully toward
// the old per-slice behavior — never worse, exact when co-located.
//
// Lifecycle: a group is created on first sight with the fan-out width
// as its leg count and dropped when that many legs have completed on
// this backend. Groups whose remaining legs ran elsewhere can never
// drain, so the registry is bounded: beyond maxBudgetGroups the oldest
// group is evicted (its ledger is single-use garbage by then).
const maxBudgetGroups = 256

type budgetGroups struct {
	mu     sync.Mutex
	groups map[string]*budgetGroup
	order  []string // insertion order, for bounded eviction
}

type budgetGroup struct {
	ledger *core.SharedBudget
	left   int // slice legs not yet completed on this backend
}

// acquire returns the shared ledger registered under token, creating
// it with `slices` outstanding legs on first sight. Every acquire must
// be paired with a release.
func (g *budgetGroups) acquire(token string, slices int) *core.SharedBudget {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.groups == nil {
		g.groups = make(map[string]*budgetGroup)
	}
	if bg, ok := g.groups[token]; ok {
		return bg.ledger
	}
	bg := &budgetGroup{ledger: core.NewSharedBudget(), left: slices}
	g.groups[token] = bg
	g.order = append(g.order, token)
	for len(g.groups) > maxBudgetGroups && len(g.order) > 0 {
		oldest := g.order[0]
		g.order = g.order[1:]
		delete(g.groups, oldest) // no-op when already drained
	}
	return bg.ledger
}

// release marks one slice leg of the group complete, dropping the
// group when all legs this backend will ever see are done.
func (g *budgetGroups) release(token string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	bg, ok := g.groups[token]
	if !ok {
		return
	}
	bg.left--
	if bg.left <= 0 {
		delete(g.groups, token)
	}
}

// newBudgetGroupToken mints a process-independent unique group token
// for one coordinator fan-out.
func newBudgetGroupToken() string {
	var b [10]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero token
		// would only collide budgets across concurrent checks, which is
		// a throughput hazard, not a soundness one.
		return "bg-fallback"
	}
	return "bg-" + hex.EncodeToString(b[:])
}
