package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/core"
)

// Coordinator scatters one RCDP check across a set of backends as
// partition slices (POST /v1/partial, one slice per backend) and
// merges the results with core.MergeSlices, so the merged verdict,
// witness and enumeration-relevant stats are byte-identical to a
// single process running the whole check (see internal/core
// partition.go for the determinism argument). Each scatter leg is
// retried once on connection failure; an HTTP-level failure (a
// backend refusing or erroring) fails the whole fan-out — a missing
// slice leaves the merge unsound.
type Coordinator struct {
	// Backends are the base URLs the slices go to; len(Backends) is K.
	Backends []string
	// Client is the HTTP client for the scatter legs (default
	// http.DefaultClient).
	Client *http.Client
}

// client resolves the HTTP client.
func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Check fans req out as len(Backends) partition slices and merges the
// results into the CheckResponse a single backend would have produced
// for POST /v1/rcdp. The returned status is the HTTP status the
// caller should relay (200, or 502/5xx on fan-out failure).
func (c *Coordinator) Check(ctx context.Context, req *CheckRequest) (*CheckResponse, int, error) {
	k := len(c.Backends)
	if k == 0 {
		return nil, http.StatusBadGateway, fmt.Errorf("coordinator: no backends")
	}
	partials := make([]*PartialResponse, k)
	errs := make([]error, k)
	// One budget-group token per check: slices the cluster co-locates
	// pool their valuation budget (see budgetgroup.go), so the fan-out
	// exhausts MaxValuations like a single process would.
	group := newBudgetGroupToken()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preq := &PartialRequest{CheckRequest: *req, Slices: k, Slice: i, BudgetGroup: group}
			partials[i], errs[i] = c.scatter(ctx, c.Backends[i], preq)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, http.StatusBadGateway, fmt.Errorf("slice %d (%s): %w", i, c.Backends[i], err)
		}
	}
	return mergePartials(partials)
}

// scatter posts one slice request to a backend, retrying once on
// connection failure (the request is idempotent and the body is
// buffered). HTTP error statuses are not retried — the backend is
// alive and has spoken.
func (c *Coordinator) scatter(ctx context.Context, backend string, preq *PartialRequest) (*PartialResponse, error) {
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, err
	}
	resp, err := c.post(ctx, backend+"/v1/partial", body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		resp, err = c.post(ctx, backend+"/v1/partial", body)
		if err != nil {
			return nil, err
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return nil, fmt.Errorf("backend status %d: %s", resp.StatusCode, e.Error)
	}
	var out PartialResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("bad partial response: %w", err)
	}
	return &out, nil
}

func (c *Coordinator) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.client().Do(req)
}

// mergePartials converts the wire-form slices back to core slice
// results, merges them, and reassembles the winning slice's witness
// JSON (the extension text round-trips verbatim — re-parsing it on the
// coordinator would need the catalog schemas the coordinator does not
// hold).
func mergePartials(partials []*PartialResponse) (*CheckResponse, int, error) {
	slices := make([]*core.SliceResult, len(partials))
	for i, p := range partials {
		sr, err := p.sliceResult()
		if err != nil {
			return nil, http.StatusBadGateway, fmt.Errorf("slice %d: %w", p.Slice, err)
		}
		slices[i] = sr
	}
	merged, err := core.MergeSlices(slices)
	if err != nil {
		return nil, http.StatusBadGateway, err
	}
	out := &CheckResponse{
		Verdict: merged.Verdict.String(),
		Reason:  merged.Reason.String(),
		Stats:   statsJSON(merged.Stats),
	}
	if merged.Verdict == core.VerdictIncomplete {
		// The winning slice is the one whose claim is the minimum —
		// exactly what MergeSlices arbitrated on.
		winner := partials[0]
		for _, p := range partials[1:] {
			if p.Claim < winner.Claim {
				winner = p
			}
		}
		if winner.Witness == nil {
			return nil, http.StatusBadGateway, fmt.Errorf("merged incomplete but winning slice carries no witness")
		}
		out.Extension = winner.Witness.Extension
		out.NewTuple = winner.Witness.NewTuple
	}
	return out, http.StatusOK, nil
}
