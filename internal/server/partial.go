package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/textq"
)

// PartialRequest is the body of POST /v1/partial: one partition slice
// of an RCDP check. The problem parts are a plain CheckRequest; Slices
// and Slice name the slice of the K-way deterministic split this
// backend should evaluate (core.PartitionPlan). BudgetGroup, when
// non-empty, names the check's shared valuation ledger: slices
// carrying the same token that land on the same backend pool their
// MaxValuations spend (see budgetgroup.go), so the fan-out exhausts
// like a single process instead of granting each slice its own cap.
type PartialRequest struct {
	CheckRequest
	Slices      int    `json:"slices"`
	Slice       int    `json:"slice"`
	BudgetGroup string `json:"budget_group,omitempty"`
}

// WitnessJSON is a slice's incompleteness counterexample.
type WitnessJSON struct {
	Extension string   `json:"extension"`
	NewTuple  []string `json:"new_tuple,omitempty"`
	Disjunct  int      `json:"disjunct"`
}

// PartialResponse is the wire form of one core.SliceResult. Claim is
// the slice's smallest arbitration key (core.NoClaim when none) — an
// int64 that survives the JSON round-trip exactly, which is what the
// coordinator's min-merge relies on. Setup and Branches carry the
// stats fragments MergeSlices reassembles into the single-process
// totals.
type PartialResponse struct {
	RequestID string             `json:"request_id"`
	Slices    int                `json:"slices"`
	Slice     int                `json:"slice"`
	Claim     int64              `json:"claim"`
	Verdict   string             `json:"verdict"`
	Reason    string             `json:"reason,omitempty"`
	Setup     *StatsJSON         `json:"setup,omitempty"`
	Branches  []core.BranchStats `json:"branches,omitempty"`
	Witness   *WitnessJSON       `json:"witness,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// servePartial evaluates one partition slice. Only RCDP fans out this
// way (RCQP/bounded have no branch-keyed arbitration), and the slice
// runs sequentially — the cluster's parallelism is across slices.
func (s *Server) servePartial(ctx context.Context, id string, req *PartialRequest, w http.ResponseWriter, _ *http.Request) {
	plan := core.PartitionPlan{Slices: req.Slices, Slice: req.Slice}
	if err := plan.Validate(); err != nil {
		writeError(w, id, http.StatusBadRequest, "%v", err)
		return
	}
	in, err := s.resolve(&req.CheckRequest)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	if in.release != nil {
		defer in.release()
	}
	if err := decidable(in); err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	ck := core.Checker{Workers: 1, Budget: in.budget}
	if req.BudgetGroup != "" {
		ck.SliceBudget = s.partialGroups.acquire(req.BudgetGroup, req.Slices)
		defer s.partialGroups.release(req.BudgetGroup)
	}
	res, err := ck.RCDPSliceCtx(ctx, in.q, in.d, in.dm, in.v, plan)
	if err != nil {
		writeError(w, id, statusOf(err), "%s", err.Error())
		return
	}
	obs.ServeVerdicts.Inc(res.Verdict.String())
	writeJSON(w, http.StatusOK, partialResponse(id, res))
}

// partialResponse converts a slice result to its wire form.
func partialResponse(id string, res *core.SliceResult) *PartialResponse {
	out := &PartialResponse{
		RequestID: id,
		Slices:    res.Plan.Slices,
		Slice:     res.Plan.Slice,
		Claim:     res.Claim,
		Verdict:   res.Verdict.String(),
		Reason:    res.Reason.String(),
		Setup:     statsJSON(res.Setup),
		Branches:  res.Branches,
		ElapsedMS: float64(res.Elapsed) / 1e6,
	}
	if res.Witness != nil {
		out.Witness = &WitnessJSON{
			Extension: textq.FormatDatabase(res.Witness.Extension),
			NewTuple:  tupleJSON(res.Witness.NewTuple),
			Disjunct:  res.Witness.Disjunct,
		}
	}
	return out
}

// sliceResult converts a wire-form partial response back into the
// core.SliceResult skeleton MergeSlices arbitrates on. The witness
// Extension/NewTuple stay in their wire form (the coordinator reuses
// the winning slice's JSON verbatim); only the merge-relevant fields —
// plan, claim, verdict, reason, stats fragments and the witness
// disjunct — are reconstructed.
func (p *PartialResponse) sliceResult() (*core.SliceResult, error) {
	verdict, err := verdictFromString(p.Verdict)
	if err != nil {
		return nil, err
	}
	reason, err := reasonFromString(p.Reason)
	if err != nil {
		return nil, err
	}
	out := &core.SliceResult{
		Plan:     core.PartitionPlan{Slices: p.Slices, Slice: p.Slice},
		Claim:    p.Claim,
		Verdict:  verdict,
		Reason:   reason,
		Branches: p.Branches,
		Elapsed:  time.Duration(p.ElapsedMS * float64(time.Millisecond)),
	}
	if p.Setup != nil {
		out.Setup = core.BudgetStats{
			Valuations: p.Setup.Valuations,
			JoinRows:   p.Setup.JoinRows,
			Tuples:     p.Setup.Tuples,
		}
	}
	if p.Witness != nil {
		out.Witness = &core.RCDPResult{Verdict: core.VerdictIncomplete, Disjunct: p.Witness.Disjunct}
	}
	return out, nil
}

// verdictFromString parses the wire verdict vocabulary.
func verdictFromString(s string) (core.Verdict, error) {
	switch s {
	case "complete":
		return core.VerdictComplete, nil
	case "incomplete":
		return core.VerdictIncomplete, nil
	case "unknown":
		return core.VerdictUnknown, nil
	default:
		return 0, fmt.Errorf("unknown verdict %q", s)
	}
}

// reasonFromString parses the wire reason vocabulary.
func reasonFromString(s string) (core.Reason, error) {
	switch s {
	case "":
		return core.ReasonNone, nil
	case "cancelled":
		return core.ReasonCancelled, nil
	case "deadline":
		return core.ReasonDeadline, nil
	case "valuations":
		return core.ReasonValuations, nil
	case "join-rows":
		return core.ReasonJoinRows, nil
	case "tuples":
		return core.ReasonTuples, nil
	default:
		return 0, fmt.Errorf("unknown reason %q", s)
	}
}
